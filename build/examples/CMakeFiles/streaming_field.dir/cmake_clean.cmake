file(REMOVE_RECURSE
  "CMakeFiles/streaming_field.dir/streaming_field.cpp.o"
  "CMakeFiles/streaming_field.dir/streaming_field.cpp.o.d"
  "streaming_field"
  "streaming_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
