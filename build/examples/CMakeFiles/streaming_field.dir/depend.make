# Empty dependencies file for streaming_field.
# This may be replaced when dependencies are built.
