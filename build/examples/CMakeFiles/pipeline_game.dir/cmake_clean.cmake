file(REMOVE_RECURSE
  "CMakeFiles/pipeline_game.dir/pipeline_game.cpp.o"
  "CMakeFiles/pipeline_game.dir/pipeline_game.cpp.o.d"
  "pipeline_game"
  "pipeline_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
