# Empty dependencies file for pipeline_game.
# This may be replaced when dependencies are built.
