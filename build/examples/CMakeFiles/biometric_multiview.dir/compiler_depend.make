# Empty compiler generated dependencies file for biometric_multiview.
# This may be replaced when dependencies are built.
