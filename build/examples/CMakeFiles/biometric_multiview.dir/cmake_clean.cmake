file(REMOVE_RECURSE
  "CMakeFiles/biometric_multiview.dir/biometric_multiview.cpp.o"
  "CMakeFiles/biometric_multiview.dir/biometric_multiview.cpp.o.d"
  "biometric_multiview"
  "biometric_multiview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/biometric_multiview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
