file(REMOVE_RECURSE
  "CMakeFiles/smart_field.dir/smart_field.cpp.o"
  "CMakeFiles/smart_field.dir/smart_field.cpp.o.d"
  "smart_field"
  "smart_field.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_field.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
