# Empty dependencies file for smart_field.
# This may be replaced when dependencies are built.
