# Empty compiler generated dependencies file for phone_fleet.
# This may be replaced when dependencies are built.
