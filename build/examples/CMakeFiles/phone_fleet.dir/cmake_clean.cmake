file(REMOVE_RECURSE
  "CMakeFiles/phone_fleet.dir/phone_fleet.cpp.o"
  "CMakeFiles/phone_fleet.dir/phone_fleet.cpp.o.d"
  "phone_fleet"
  "phone_fleet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phone_fleet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
