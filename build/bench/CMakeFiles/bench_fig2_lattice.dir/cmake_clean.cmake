file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_lattice.dir/bench_fig2_lattice.cpp.o"
  "CMakeFiles/bench_fig2_lattice.dir/bench_fig2_lattice.cpp.o.d"
  "bench_fig2_lattice"
  "bench_fig2_lattice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
