# Empty compiler generated dependencies file for bench_roughsets.
# This may be replaced when dependencies are built.
