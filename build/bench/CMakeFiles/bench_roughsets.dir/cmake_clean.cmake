file(REMOVE_RECURSE
  "CMakeFiles/bench_roughsets.dir/bench_roughsets.cpp.o"
  "CMakeFiles/bench_roughsets.dir/bench_roughsets.cpp.o.d"
  "bench_roughsets"
  "bench_roughsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_roughsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
