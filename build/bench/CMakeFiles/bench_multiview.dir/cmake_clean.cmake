file(REMOVE_RECURSE
  "CMakeFiles/bench_multiview.dir/bench_multiview.cpp.o"
  "CMakeFiles/bench_multiview.dir/bench_multiview.cpp.o.d"
  "bench_multiview"
  "bench_multiview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multiview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
