# Empty dependencies file for bench_stirling.
# This may be replaced when dependencies are built.
