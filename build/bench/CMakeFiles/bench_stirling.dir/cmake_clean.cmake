file(REMOVE_RECURSE
  "CMakeFiles/bench_stirling.dir/bench_stirling.cpp.o"
  "CMakeFiles/bench_stirling.dir/bench_stirling.cpp.o.d"
  "bench_stirling"
  "bench_stirling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stirling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
