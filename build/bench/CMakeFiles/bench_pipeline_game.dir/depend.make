# Empty dependencies file for bench_pipeline_game.
# This may be replaced when dependencies are built.
