file(REMOVE_RECURSE
  "CMakeFiles/bench_pipeline_game.dir/bench_pipeline_game.cpp.o"
  "CMakeFiles/bench_pipeline_game.dir/bench_pipeline_game.cpp.o.d"
  "bench_pipeline_game"
  "bench_pipeline_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pipeline_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
