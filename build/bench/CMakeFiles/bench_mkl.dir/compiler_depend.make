# Empty compiler generated dependencies file for bench_mkl.
# This may be replaced when dependencies are built.
