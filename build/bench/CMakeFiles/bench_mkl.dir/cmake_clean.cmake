file(REMOVE_RECURSE
  "CMakeFiles/bench_mkl.dir/bench_mkl.cpp.o"
  "CMakeFiles/bench_mkl.dir/bench_mkl.cpp.o.d"
  "bench_mkl"
  "bench_mkl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mkl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
