file(REMOVE_RECURSE
  "CMakeFiles/bench_lattice_search.dir/bench_lattice_search.cpp.o"
  "CMakeFiles/bench_lattice_search.dir/bench_lattice_search.cpp.o.d"
  "bench_lattice_search"
  "bench_lattice_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lattice_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
