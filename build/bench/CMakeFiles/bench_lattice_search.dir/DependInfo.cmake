
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_lattice_search.cpp" "bench/CMakeFiles/bench_lattice_search.dir/bench_lattice_search.cpp.o" "gcc" "bench/CMakeFiles/bench_lattice_search.dir/bench_lattice_search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iotml_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_multiview.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_adversarial.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_pipeline.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_game.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_learners.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_roughsets.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_combinatorics.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
