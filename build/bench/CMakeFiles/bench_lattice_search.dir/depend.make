# Empty dependencies file for bench_lattice_search.
# This may be replaced when dependencies are built.
