file(REMOVE_RECURSE
  "CMakeFiles/bench_missing_models.dir/bench_missing_models.cpp.o"
  "CMakeFiles/bench_missing_models.dir/bench_missing_models.cpp.o.d"
  "bench_missing_models"
  "bench_missing_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_missing_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
