# Empty compiler generated dependencies file for bench_missing_models.
# This may be replaced when dependencies are built.
