# Empty dependencies file for iotml_adversarial.
# This may be replaced when dependencies are built.
