
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/adversarial/gan.cpp" "src/CMakeFiles/iotml_adversarial.dir/adversarial/gan.cpp.o" "gcc" "src/CMakeFiles/iotml_adversarial.dir/adversarial/gan.cpp.o.d"
  "/root/repo/src/adversarial/perturbation.cpp" "src/CMakeFiles/iotml_adversarial.dir/adversarial/perturbation.cpp.o" "gcc" "src/CMakeFiles/iotml_adversarial.dir/adversarial/perturbation.cpp.o.d"
  "/root/repo/src/adversarial/training.cpp" "src/CMakeFiles/iotml_adversarial.dir/adversarial/training.cpp.o" "gcc" "src/CMakeFiles/iotml_adversarial.dir/adversarial/training.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iotml_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_learners.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
