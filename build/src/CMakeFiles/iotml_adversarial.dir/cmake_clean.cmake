file(REMOVE_RECURSE
  "CMakeFiles/iotml_adversarial.dir/adversarial/gan.cpp.o"
  "CMakeFiles/iotml_adversarial.dir/adversarial/gan.cpp.o.d"
  "CMakeFiles/iotml_adversarial.dir/adversarial/perturbation.cpp.o"
  "CMakeFiles/iotml_adversarial.dir/adversarial/perturbation.cpp.o.d"
  "CMakeFiles/iotml_adversarial.dir/adversarial/training.cpp.o"
  "CMakeFiles/iotml_adversarial.dir/adversarial/training.cpp.o.d"
  "libiotml_adversarial.a"
  "libiotml_adversarial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotml_adversarial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
