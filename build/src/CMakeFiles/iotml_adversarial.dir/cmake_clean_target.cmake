file(REMOVE_RECURSE
  "libiotml_adversarial.a"
)
