# Empty compiler generated dependencies file for iotml_data.
# This may be replaced when dependencies are built.
