
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/csv.cpp" "src/CMakeFiles/iotml_data.dir/data/csv.cpp.o" "gcc" "src/CMakeFiles/iotml_data.dir/data/csv.cpp.o.d"
  "/root/repo/src/data/dataset.cpp" "src/CMakeFiles/iotml_data.dir/data/dataset.cpp.o" "gcc" "src/CMakeFiles/iotml_data.dir/data/dataset.cpp.o.d"
  "/root/repo/src/data/encoding.cpp" "src/CMakeFiles/iotml_data.dir/data/encoding.cpp.o" "gcc" "src/CMakeFiles/iotml_data.dir/data/encoding.cpp.o.d"
  "/root/repo/src/data/metrics.cpp" "src/CMakeFiles/iotml_data.dir/data/metrics.cpp.o" "gcc" "src/CMakeFiles/iotml_data.dir/data/metrics.cpp.o.d"
  "/root/repo/src/data/split.cpp" "src/CMakeFiles/iotml_data.dir/data/split.cpp.o" "gcc" "src/CMakeFiles/iotml_data.dir/data/split.cpp.o.d"
  "/root/repo/src/data/synthetic.cpp" "src/CMakeFiles/iotml_data.dir/data/synthetic.cpp.o" "gcc" "src/CMakeFiles/iotml_data.dir/data/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iotml_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
