file(REMOVE_RECURSE
  "libiotml_data.a"
)
