file(REMOVE_RECURSE
  "CMakeFiles/iotml_data.dir/data/csv.cpp.o"
  "CMakeFiles/iotml_data.dir/data/csv.cpp.o.d"
  "CMakeFiles/iotml_data.dir/data/dataset.cpp.o"
  "CMakeFiles/iotml_data.dir/data/dataset.cpp.o.d"
  "CMakeFiles/iotml_data.dir/data/encoding.cpp.o"
  "CMakeFiles/iotml_data.dir/data/encoding.cpp.o.d"
  "CMakeFiles/iotml_data.dir/data/metrics.cpp.o"
  "CMakeFiles/iotml_data.dir/data/metrics.cpp.o.d"
  "CMakeFiles/iotml_data.dir/data/split.cpp.o"
  "CMakeFiles/iotml_data.dir/data/split.cpp.o.d"
  "CMakeFiles/iotml_data.dir/data/synthetic.cpp.o"
  "CMakeFiles/iotml_data.dir/data/synthetic.cpp.o.d"
  "libiotml_data.a"
  "libiotml_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotml_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
