
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/game/bimatrix.cpp" "src/CMakeFiles/iotml_game.dir/game/bimatrix.cpp.o" "gcc" "src/CMakeFiles/iotml_game.dir/game/bimatrix.cpp.o.d"
  "/root/repo/src/game/matrix_game.cpp" "src/CMakeFiles/iotml_game.dir/game/matrix_game.cpp.o" "gcc" "src/CMakeFiles/iotml_game.dir/game/matrix_game.cpp.o.d"
  "/root/repo/src/game/pareto.cpp" "src/CMakeFiles/iotml_game.dir/game/pareto.cpp.o" "gcc" "src/CMakeFiles/iotml_game.dir/game/pareto.cpp.o.d"
  "/root/repo/src/game/repeated.cpp" "src/CMakeFiles/iotml_game.dir/game/repeated.cpp.o" "gcc" "src/CMakeFiles/iotml_game.dir/game/repeated.cpp.o.d"
  "/root/repo/src/game/sequential.cpp" "src/CMakeFiles/iotml_game.dir/game/sequential.cpp.o" "gcc" "src/CMakeFiles/iotml_game.dir/game/sequential.cpp.o.d"
  "/root/repo/src/game/stackelberg.cpp" "src/CMakeFiles/iotml_game.dir/game/stackelberg.cpp.o" "gcc" "src/CMakeFiles/iotml_game.dir/game/stackelberg.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iotml_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_la.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
