# Empty dependencies file for iotml_game.
# This may be replaced when dependencies are built.
