file(REMOVE_RECURSE
  "libiotml_game.a"
)
