file(REMOVE_RECURSE
  "CMakeFiles/iotml_game.dir/game/bimatrix.cpp.o"
  "CMakeFiles/iotml_game.dir/game/bimatrix.cpp.o.d"
  "CMakeFiles/iotml_game.dir/game/matrix_game.cpp.o"
  "CMakeFiles/iotml_game.dir/game/matrix_game.cpp.o.d"
  "CMakeFiles/iotml_game.dir/game/pareto.cpp.o"
  "CMakeFiles/iotml_game.dir/game/pareto.cpp.o.d"
  "CMakeFiles/iotml_game.dir/game/repeated.cpp.o"
  "CMakeFiles/iotml_game.dir/game/repeated.cpp.o.d"
  "CMakeFiles/iotml_game.dir/game/sequential.cpp.o"
  "CMakeFiles/iotml_game.dir/game/sequential.cpp.o.d"
  "CMakeFiles/iotml_game.dir/game/stackelberg.cpp.o"
  "CMakeFiles/iotml_game.dir/game/stackelberg.cpp.o.d"
  "libiotml_game.a"
  "libiotml_game.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotml_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
