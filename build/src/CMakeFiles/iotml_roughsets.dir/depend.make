# Empty dependencies file for iotml_roughsets.
# This may be replaced when dependencies are built.
