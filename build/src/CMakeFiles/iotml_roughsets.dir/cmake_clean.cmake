file(REMOVE_RECURSE
  "CMakeFiles/iotml_roughsets.dir/roughsets/roughsets.cpp.o"
  "CMakeFiles/iotml_roughsets.dir/roughsets/roughsets.cpp.o.d"
  "libiotml_roughsets.a"
  "libiotml_roughsets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotml_roughsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
