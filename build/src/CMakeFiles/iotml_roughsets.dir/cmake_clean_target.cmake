file(REMOVE_RECURSE
  "libiotml_roughsets.a"
)
