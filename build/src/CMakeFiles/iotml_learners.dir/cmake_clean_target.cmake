file(REMOVE_RECURSE
  "libiotml_learners.a"
)
