
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/learners/classifier.cpp" "src/CMakeFiles/iotml_learners.dir/learners/classifier.cpp.o" "gcc" "src/CMakeFiles/iotml_learners.dir/learners/classifier.cpp.o.d"
  "/root/repo/src/learners/decision_tree.cpp" "src/CMakeFiles/iotml_learners.dir/learners/decision_tree.cpp.o" "gcc" "src/CMakeFiles/iotml_learners.dir/learners/decision_tree.cpp.o.d"
  "/root/repo/src/learners/knn.cpp" "src/CMakeFiles/iotml_learners.dir/learners/knn.cpp.o" "gcc" "src/CMakeFiles/iotml_learners.dir/learners/knn.cpp.o.d"
  "/root/repo/src/learners/logistic.cpp" "src/CMakeFiles/iotml_learners.dir/learners/logistic.cpp.o" "gcc" "src/CMakeFiles/iotml_learners.dir/learners/logistic.cpp.o.d"
  "/root/repo/src/learners/naive_bayes.cpp" "src/CMakeFiles/iotml_learners.dir/learners/naive_bayes.cpp.o" "gcc" "src/CMakeFiles/iotml_learners.dir/learners/naive_bayes.cpp.o.d"
  "/root/repo/src/learners/online.cpp" "src/CMakeFiles/iotml_learners.dir/learners/online.cpp.o" "gcc" "src/CMakeFiles/iotml_learners.dir/learners/online.cpp.o.d"
  "/root/repo/src/learners/pattern_ensemble.cpp" "src/CMakeFiles/iotml_learners.dir/learners/pattern_ensemble.cpp.o" "gcc" "src/CMakeFiles/iotml_learners.dir/learners/pattern_ensemble.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iotml_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
