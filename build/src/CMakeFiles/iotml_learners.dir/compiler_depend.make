# Empty compiler generated dependencies file for iotml_learners.
# This may be replaced when dependencies are built.
