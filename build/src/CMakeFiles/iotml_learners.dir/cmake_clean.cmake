file(REMOVE_RECURSE
  "CMakeFiles/iotml_learners.dir/learners/classifier.cpp.o"
  "CMakeFiles/iotml_learners.dir/learners/classifier.cpp.o.d"
  "CMakeFiles/iotml_learners.dir/learners/decision_tree.cpp.o"
  "CMakeFiles/iotml_learners.dir/learners/decision_tree.cpp.o.d"
  "CMakeFiles/iotml_learners.dir/learners/knn.cpp.o"
  "CMakeFiles/iotml_learners.dir/learners/knn.cpp.o.d"
  "CMakeFiles/iotml_learners.dir/learners/logistic.cpp.o"
  "CMakeFiles/iotml_learners.dir/learners/logistic.cpp.o.d"
  "CMakeFiles/iotml_learners.dir/learners/naive_bayes.cpp.o"
  "CMakeFiles/iotml_learners.dir/learners/naive_bayes.cpp.o.d"
  "CMakeFiles/iotml_learners.dir/learners/online.cpp.o"
  "CMakeFiles/iotml_learners.dir/learners/online.cpp.o.d"
  "CMakeFiles/iotml_learners.dir/learners/pattern_ensemble.cpp.o"
  "CMakeFiles/iotml_learners.dir/learners/pattern_ensemble.cpp.o.d"
  "libiotml_learners.a"
  "libiotml_learners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotml_learners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
