
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pipeline/integration.cpp" "src/CMakeFiles/iotml_pipeline.dir/pipeline/integration.cpp.o" "gcc" "src/CMakeFiles/iotml_pipeline.dir/pipeline/integration.cpp.o.d"
  "/root/repo/src/pipeline/preparation.cpp" "src/CMakeFiles/iotml_pipeline.dir/pipeline/preparation.cpp.o" "gcc" "src/CMakeFiles/iotml_pipeline.dir/pipeline/preparation.cpp.o.d"
  "/root/repo/src/pipeline/privacy.cpp" "src/CMakeFiles/iotml_pipeline.dir/pipeline/privacy.cpp.o" "gcc" "src/CMakeFiles/iotml_pipeline.dir/pipeline/privacy.cpp.o.d"
  "/root/repo/src/pipeline/reduction.cpp" "src/CMakeFiles/iotml_pipeline.dir/pipeline/reduction.cpp.o" "gcc" "src/CMakeFiles/iotml_pipeline.dir/pipeline/reduction.cpp.o.d"
  "/root/repo/src/pipeline/sensors.cpp" "src/CMakeFiles/iotml_pipeline.dir/pipeline/sensors.cpp.o" "gcc" "src/CMakeFiles/iotml_pipeline.dir/pipeline/sensors.cpp.o.d"
  "/root/repo/src/pipeline/stage.cpp" "src/CMakeFiles/iotml_pipeline.dir/pipeline/stage.cpp.o" "gcc" "src/CMakeFiles/iotml_pipeline.dir/pipeline/stage.cpp.o.d"
  "/root/repo/src/pipeline/stages.cpp" "src/CMakeFiles/iotml_pipeline.dir/pipeline/stages.cpp.o" "gcc" "src/CMakeFiles/iotml_pipeline.dir/pipeline/stages.cpp.o.d"
  "/root/repo/src/pipeline/trust.cpp" "src/CMakeFiles/iotml_pipeline.dir/pipeline/trust.cpp.o" "gcc" "src/CMakeFiles/iotml_pipeline.dir/pipeline/trust.cpp.o.d"
  "/root/repo/src/pipeline/uncertainty.cpp" "src/CMakeFiles/iotml_pipeline.dir/pipeline/uncertainty.cpp.o" "gcc" "src/CMakeFiles/iotml_pipeline.dir/pipeline/uncertainty.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iotml_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_learners.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
