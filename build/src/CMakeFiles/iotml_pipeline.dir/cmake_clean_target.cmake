file(REMOVE_RECURSE
  "libiotml_pipeline.a"
)
