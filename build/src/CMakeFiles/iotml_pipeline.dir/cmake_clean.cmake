file(REMOVE_RECURSE
  "CMakeFiles/iotml_pipeline.dir/pipeline/integration.cpp.o"
  "CMakeFiles/iotml_pipeline.dir/pipeline/integration.cpp.o.d"
  "CMakeFiles/iotml_pipeline.dir/pipeline/preparation.cpp.o"
  "CMakeFiles/iotml_pipeline.dir/pipeline/preparation.cpp.o.d"
  "CMakeFiles/iotml_pipeline.dir/pipeline/privacy.cpp.o"
  "CMakeFiles/iotml_pipeline.dir/pipeline/privacy.cpp.o.d"
  "CMakeFiles/iotml_pipeline.dir/pipeline/reduction.cpp.o"
  "CMakeFiles/iotml_pipeline.dir/pipeline/reduction.cpp.o.d"
  "CMakeFiles/iotml_pipeline.dir/pipeline/sensors.cpp.o"
  "CMakeFiles/iotml_pipeline.dir/pipeline/sensors.cpp.o.d"
  "CMakeFiles/iotml_pipeline.dir/pipeline/stage.cpp.o"
  "CMakeFiles/iotml_pipeline.dir/pipeline/stage.cpp.o.d"
  "CMakeFiles/iotml_pipeline.dir/pipeline/stages.cpp.o"
  "CMakeFiles/iotml_pipeline.dir/pipeline/stages.cpp.o.d"
  "CMakeFiles/iotml_pipeline.dir/pipeline/trust.cpp.o"
  "CMakeFiles/iotml_pipeline.dir/pipeline/trust.cpp.o.d"
  "CMakeFiles/iotml_pipeline.dir/pipeline/uncertainty.cpp.o"
  "CMakeFiles/iotml_pipeline.dir/pipeline/uncertainty.cpp.o.d"
  "libiotml_pipeline.a"
  "libiotml_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotml_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
