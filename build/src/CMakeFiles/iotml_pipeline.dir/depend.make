# Empty dependencies file for iotml_pipeline.
# This may be replaced when dependencies are built.
