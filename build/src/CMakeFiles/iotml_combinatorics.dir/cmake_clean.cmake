file(REMOVE_RECURSE
  "CMakeFiles/iotml_combinatorics.dir/combinatorics/boolean_lattice.cpp.o"
  "CMakeFiles/iotml_combinatorics.dir/combinatorics/boolean_lattice.cpp.o.d"
  "CMakeFiles/iotml_combinatorics.dir/combinatorics/counting.cpp.o"
  "CMakeFiles/iotml_combinatorics.dir/combinatorics/counting.cpp.o.d"
  "CMakeFiles/iotml_combinatorics.dir/combinatorics/ldd.cpp.o"
  "CMakeFiles/iotml_combinatorics.dir/combinatorics/ldd.cpp.o.d"
  "CMakeFiles/iotml_combinatorics.dir/combinatorics/partition.cpp.o"
  "CMakeFiles/iotml_combinatorics.dir/combinatorics/partition.cpp.o.d"
  "CMakeFiles/iotml_combinatorics.dir/combinatorics/partition_lattice.cpp.o"
  "CMakeFiles/iotml_combinatorics.dir/combinatorics/partition_lattice.cpp.o.d"
  "libiotml_combinatorics.a"
  "libiotml_combinatorics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotml_combinatorics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
