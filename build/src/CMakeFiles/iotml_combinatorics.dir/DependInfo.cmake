
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/combinatorics/boolean_lattice.cpp" "src/CMakeFiles/iotml_combinatorics.dir/combinatorics/boolean_lattice.cpp.o" "gcc" "src/CMakeFiles/iotml_combinatorics.dir/combinatorics/boolean_lattice.cpp.o.d"
  "/root/repo/src/combinatorics/counting.cpp" "src/CMakeFiles/iotml_combinatorics.dir/combinatorics/counting.cpp.o" "gcc" "src/CMakeFiles/iotml_combinatorics.dir/combinatorics/counting.cpp.o.d"
  "/root/repo/src/combinatorics/ldd.cpp" "src/CMakeFiles/iotml_combinatorics.dir/combinatorics/ldd.cpp.o" "gcc" "src/CMakeFiles/iotml_combinatorics.dir/combinatorics/ldd.cpp.o.d"
  "/root/repo/src/combinatorics/partition.cpp" "src/CMakeFiles/iotml_combinatorics.dir/combinatorics/partition.cpp.o" "gcc" "src/CMakeFiles/iotml_combinatorics.dir/combinatorics/partition.cpp.o.d"
  "/root/repo/src/combinatorics/partition_lattice.cpp" "src/CMakeFiles/iotml_combinatorics.dir/combinatorics/partition_lattice.cpp.o" "gcc" "src/CMakeFiles/iotml_combinatorics.dir/combinatorics/partition_lattice.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iotml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
