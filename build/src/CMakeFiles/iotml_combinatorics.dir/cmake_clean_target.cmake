file(REMOVE_RECURSE
  "libiotml_combinatorics.a"
)
