# Empty dependencies file for iotml_combinatorics.
# This may be replaced when dependencies are built.
