file(REMOVE_RECURSE
  "CMakeFiles/iotml_util.dir/util/error.cpp.o"
  "CMakeFiles/iotml_util.dir/util/error.cpp.o.d"
  "CMakeFiles/iotml_util.dir/util/rng.cpp.o"
  "CMakeFiles/iotml_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/iotml_util.dir/util/strings.cpp.o"
  "CMakeFiles/iotml_util.dir/util/strings.cpp.o.d"
  "libiotml_util.a"
  "libiotml_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotml_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
