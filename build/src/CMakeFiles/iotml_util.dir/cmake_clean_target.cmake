file(REMOVE_RECURSE
  "libiotml_util.a"
)
