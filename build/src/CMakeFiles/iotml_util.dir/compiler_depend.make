# Empty compiler generated dependencies file for iotml_util.
# This may be replaced when dependencies are built.
