# Empty dependencies file for iotml_kernels.
# This may be replaced when dependencies are built.
