file(REMOVE_RECURSE
  "libiotml_kernels.a"
)
