
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/kernel.cpp" "src/CMakeFiles/iotml_kernels.dir/kernels/kernel.cpp.o" "gcc" "src/CMakeFiles/iotml_kernels.dir/kernels/kernel.cpp.o.d"
  "/root/repo/src/kernels/krr.cpp" "src/CMakeFiles/iotml_kernels.dir/kernels/krr.cpp.o" "gcc" "src/CMakeFiles/iotml_kernels.dir/kernels/krr.cpp.o.d"
  "/root/repo/src/kernels/mkl.cpp" "src/CMakeFiles/iotml_kernels.dir/kernels/mkl.cpp.o" "gcc" "src/CMakeFiles/iotml_kernels.dir/kernels/mkl.cpp.o.d"
  "/root/repo/src/kernels/multiclass.cpp" "src/CMakeFiles/iotml_kernels.dir/kernels/multiclass.cpp.o" "gcc" "src/CMakeFiles/iotml_kernels.dir/kernels/multiclass.cpp.o.d"
  "/root/repo/src/kernels/svm.cpp" "src/CMakeFiles/iotml_kernels.dir/kernels/svm.cpp.o" "gcc" "src/CMakeFiles/iotml_kernels.dir/kernels/svm.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iotml_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
