file(REMOVE_RECURSE
  "CMakeFiles/iotml_kernels.dir/kernels/kernel.cpp.o"
  "CMakeFiles/iotml_kernels.dir/kernels/kernel.cpp.o.d"
  "CMakeFiles/iotml_kernels.dir/kernels/krr.cpp.o"
  "CMakeFiles/iotml_kernels.dir/kernels/krr.cpp.o.d"
  "CMakeFiles/iotml_kernels.dir/kernels/mkl.cpp.o"
  "CMakeFiles/iotml_kernels.dir/kernels/mkl.cpp.o.d"
  "CMakeFiles/iotml_kernels.dir/kernels/multiclass.cpp.o"
  "CMakeFiles/iotml_kernels.dir/kernels/multiclass.cpp.o.d"
  "CMakeFiles/iotml_kernels.dir/kernels/svm.cpp.o"
  "CMakeFiles/iotml_kernels.dir/kernels/svm.cpp.o.d"
  "libiotml_kernels.a"
  "libiotml_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotml_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
