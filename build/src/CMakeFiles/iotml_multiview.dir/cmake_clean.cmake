file(REMOVE_RECURSE
  "CMakeFiles/iotml_multiview.dir/multiview/cca.cpp.o"
  "CMakeFiles/iotml_multiview.dir/multiview/cca.cpp.o.d"
  "CMakeFiles/iotml_multiview.dir/multiview/cotraining.cpp.o"
  "CMakeFiles/iotml_multiview.dir/multiview/cotraining.cpp.o.d"
  "CMakeFiles/iotml_multiview.dir/multiview/subspace.cpp.o"
  "CMakeFiles/iotml_multiview.dir/multiview/subspace.cpp.o.d"
  "CMakeFiles/iotml_multiview.dir/multiview/views.cpp.o"
  "CMakeFiles/iotml_multiview.dir/multiview/views.cpp.o.d"
  "libiotml_multiview.a"
  "libiotml_multiview.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotml_multiview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
