file(REMOVE_RECURSE
  "libiotml_multiview.a"
)
