# Empty dependencies file for iotml_multiview.
# This may be replaced when dependencies are built.
