
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/multiview/cca.cpp" "src/CMakeFiles/iotml_multiview.dir/multiview/cca.cpp.o" "gcc" "src/CMakeFiles/iotml_multiview.dir/multiview/cca.cpp.o.d"
  "/root/repo/src/multiview/cotraining.cpp" "src/CMakeFiles/iotml_multiview.dir/multiview/cotraining.cpp.o" "gcc" "src/CMakeFiles/iotml_multiview.dir/multiview/cotraining.cpp.o.d"
  "/root/repo/src/multiview/subspace.cpp" "src/CMakeFiles/iotml_multiview.dir/multiview/subspace.cpp.o" "gcc" "src/CMakeFiles/iotml_multiview.dir/multiview/subspace.cpp.o.d"
  "/root/repo/src/multiview/views.cpp" "src/CMakeFiles/iotml_multiview.dir/multiview/views.cpp.o" "gcc" "src/CMakeFiles/iotml_multiview.dir/multiview/views.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/iotml_data.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_la.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_learners.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/iotml_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
