# Empty compiler generated dependencies file for iotml_la.
# This may be replaced when dependencies are built.
