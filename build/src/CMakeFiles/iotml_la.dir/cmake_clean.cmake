file(REMOVE_RECURSE
  "CMakeFiles/iotml_la.dir/la/matrix.cpp.o"
  "CMakeFiles/iotml_la.dir/la/matrix.cpp.o.d"
  "libiotml_la.a"
  "libiotml_la.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotml_la.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
