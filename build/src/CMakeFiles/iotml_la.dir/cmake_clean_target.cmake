file(REMOVE_RECURSE
  "libiotml_la.a"
)
