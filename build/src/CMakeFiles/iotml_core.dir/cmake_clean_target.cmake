file(REMOVE_RECURSE
  "libiotml_core.a"
)
