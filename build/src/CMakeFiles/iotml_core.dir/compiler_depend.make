# Empty compiler generated dependencies file for iotml_core.
# This may be replaced when dependencies are built.
