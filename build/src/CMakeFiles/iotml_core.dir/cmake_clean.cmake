file(REMOVE_RECURSE
  "CMakeFiles/iotml_core.dir/core/faceted_learner.cpp.o"
  "CMakeFiles/iotml_core.dir/core/faceted_learner.cpp.o.d"
  "CMakeFiles/iotml_core.dir/core/lattice_search.cpp.o"
  "CMakeFiles/iotml_core.dir/core/lattice_search.cpp.o.d"
  "CMakeFiles/iotml_core.dir/core/partition_kernels.cpp.o"
  "CMakeFiles/iotml_core.dir/core/partition_kernels.cpp.o.d"
  "CMakeFiles/iotml_core.dir/core/pipeline_game.cpp.o"
  "CMakeFiles/iotml_core.dir/core/pipeline_game.cpp.o.d"
  "libiotml_core.a"
  "libiotml_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iotml_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
