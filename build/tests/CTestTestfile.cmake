# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_la[1]_include.cmake")
include("/root/repo/build/tests/test_partition[1]_include.cmake")
include("/root/repo/build/tests/test_counting[1]_include.cmake")
include("/root/repo/build/tests/test_boolean_lattice[1]_include.cmake")
include("/root/repo/build/tests/test_ldd[1]_include.cmake")
include("/root/repo/build/tests/test_partition_lattice[1]_include.cmake")
include("/root/repo/build/tests/test_data[1]_include.cmake")
include("/root/repo/build/tests/test_roughsets[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_learners[1]_include.cmake")
include("/root/repo/build/tests/test_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_game[1]_include.cmake")
include("/root/repo/build/tests/test_multiview[1]_include.cmake")
include("/root/repo/build/tests/test_adversarial[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_multiclass_subspace[1]_include.cmake")
include("/root/repo/build/tests/test_integration_e2e[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_trust_smushing[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
include("/root/repo/build/tests/test_online[1]_include.cmake")
include("/root/repo/build/tests/test_repeated[1]_include.cmake")
include("/root/repo/build/tests/test_coverage_corners[1]_include.cmake")
