file(REMOVE_RECURSE
  "CMakeFiles/test_roughsets.dir/test_roughsets.cpp.o"
  "CMakeFiles/test_roughsets.dir/test_roughsets.cpp.o.d"
  "test_roughsets"
  "test_roughsets.pdb"
  "test_roughsets[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_roughsets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
