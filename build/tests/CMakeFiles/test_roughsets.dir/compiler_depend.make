# Empty compiler generated dependencies file for test_roughsets.
# This may be replaced when dependencies are built.
