# Empty compiler generated dependencies file for test_multiview.
# This may be replaced when dependencies are built.
