file(REMOVE_RECURSE
  "CMakeFiles/test_multiview.dir/test_multiview.cpp.o"
  "CMakeFiles/test_multiview.dir/test_multiview.cpp.o.d"
  "test_multiview"
  "test_multiview.pdb"
  "test_multiview[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
