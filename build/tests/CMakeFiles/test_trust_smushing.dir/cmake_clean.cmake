file(REMOVE_RECURSE
  "CMakeFiles/test_trust_smushing.dir/test_trust_smushing.cpp.o"
  "CMakeFiles/test_trust_smushing.dir/test_trust_smushing.cpp.o.d"
  "test_trust_smushing"
  "test_trust_smushing.pdb"
  "test_trust_smushing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_trust_smushing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
