# Empty dependencies file for test_trust_smushing.
# This may be replaced when dependencies are built.
