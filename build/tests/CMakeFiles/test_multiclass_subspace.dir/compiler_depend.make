# Empty compiler generated dependencies file for test_multiclass_subspace.
# This may be replaced when dependencies are built.
