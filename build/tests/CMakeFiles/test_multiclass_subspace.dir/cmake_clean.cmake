file(REMOVE_RECURSE
  "CMakeFiles/test_multiclass_subspace.dir/test_multiclass_subspace.cpp.o"
  "CMakeFiles/test_multiclass_subspace.dir/test_multiclass_subspace.cpp.o.d"
  "test_multiclass_subspace"
  "test_multiclass_subspace.pdb"
  "test_multiclass_subspace[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multiclass_subspace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
