file(REMOVE_RECURSE
  "CMakeFiles/test_game.dir/test_game.cpp.o"
  "CMakeFiles/test_game.dir/test_game.cpp.o.d"
  "test_game"
  "test_game.pdb"
  "test_game[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_game.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
