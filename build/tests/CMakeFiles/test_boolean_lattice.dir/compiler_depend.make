# Empty compiler generated dependencies file for test_boolean_lattice.
# This may be replaced when dependencies are built.
