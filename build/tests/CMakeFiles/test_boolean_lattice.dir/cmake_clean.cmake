file(REMOVE_RECURSE
  "CMakeFiles/test_boolean_lattice.dir/test_boolean_lattice.cpp.o"
  "CMakeFiles/test_boolean_lattice.dir/test_boolean_lattice.cpp.o.d"
  "test_boolean_lattice"
  "test_boolean_lattice.pdb"
  "test_boolean_lattice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_boolean_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
