# Empty dependencies file for test_coverage_corners.
# This may be replaced when dependencies are built.
