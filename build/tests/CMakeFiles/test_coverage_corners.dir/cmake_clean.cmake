file(REMOVE_RECURSE
  "CMakeFiles/test_coverage_corners.dir/test_coverage_corners.cpp.o"
  "CMakeFiles/test_coverage_corners.dir/test_coverage_corners.cpp.o.d"
  "test_coverage_corners"
  "test_coverage_corners.pdb"
  "test_coverage_corners[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coverage_corners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
