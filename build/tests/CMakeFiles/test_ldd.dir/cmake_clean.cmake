file(REMOVE_RECURSE
  "CMakeFiles/test_ldd.dir/test_ldd.cpp.o"
  "CMakeFiles/test_ldd.dir/test_ldd.cpp.o.d"
  "test_ldd"
  "test_ldd.pdb"
  "test_ldd[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ldd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
