# Empty dependencies file for test_ldd.
# This may be replaced when dependencies are built.
