file(REMOVE_RECURSE
  "CMakeFiles/test_learners.dir/test_learners.cpp.o"
  "CMakeFiles/test_learners.dir/test_learners.cpp.o.d"
  "test_learners"
  "test_learners.pdb"
  "test_learners[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_learners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
