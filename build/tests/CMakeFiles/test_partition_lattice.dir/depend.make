# Empty dependencies file for test_partition_lattice.
# This may be replaced when dependencies are built.
