file(REMOVE_RECURSE
  "CMakeFiles/test_partition_lattice.dir/test_partition_lattice.cpp.o"
  "CMakeFiles/test_partition_lattice.dir/test_partition_lattice.cpp.o.d"
  "test_partition_lattice"
  "test_partition_lattice.pdb"
  "test_partition_lattice[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_partition_lattice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
