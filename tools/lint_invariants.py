#!/usr/bin/env python3
"""Repo-specific invariant lint for iotml (registered as CTest test `lint.invariants`).

Generic tools (clang-tidy, compiler warnings) cannot see iotml's own
conventions, so this script enforces them:

R1  precondition-checks   Any declaration in src/**/*.hpp whose doc comment
                          documents a precondition ("throws InvalidArgument")
                          must enforce it in every located definition body via
                          IOTML_CHECK (or an explicit `throw InvalidArgument`
                          for lookup-style failures that are not expressible
                          as a single boolean check).
R2  no-naked-std-throws   `throw std::...` is forbidden in src/** outside
                          src/util/error.* — library code signals errors
                          through the iotml::Error hierarchy so callers can
                          catch library failures distinctly.
R3  no-include-cycles     The `#include "..."` graph over src/** must be
                          acyclic.
R4  rng-discipline        rand()/srand(), std::random_device,
                          std::default_random_engine, direct std::mt19937
                          construction, and time()-based seeding are forbidden
                          outside src/util/rng.* — every stochastic component
                          draws from a seedable iotml::Rng so experiments are
                          reproducible (DESIGN.md).
R5  pragma-once           Every header in src/** starts with #pragma once.
R6  timing-discipline     Raw clock reads (std::chrono::steady_clock /
                          system_clock / high_resolution_clock, clock_gettime,
                          gettimeofday) are forbidden outside src/obs/ — all
                          timing flows through obs::now_us() so spans, stage
                          wall times and bench reports share one clock and the
                          no-op fast path stays the single place that decides
                          whether time is read at all. Applies to src/, bench/,
                          examples/ and tests/.
R7  serialization-casts   reinterpret_cast is forbidden in src/, bench/,
                          examples/ and tests/ except inside the shared codec
                          core src/util/bytes.* (or the legacy shim
                          src/deploy/codec.*) on lines carrying a
                          `// codec-sanctioned` comment, and bare narrowing
                          static_casts (to [u]int8_t/[u]int16_t) are forbidden
                          in the serialization trees src/deploy/ and src/tdf/
                          outside the codec core — wire bytes go through the
                          checked ByteWriter/ByteReader/narrow_* helpers so
                          the formats stay endian-stable and a value that
                          does not fit throws instead of silently wrapping
                          (golden bytes are pinned in tests/golden/).
R8  transport-discipline  Direct Link transmit calls (`.transmit(` /
                          `->transmit(`) are forbidden outside src/net/ in
                          src/, bench/ and examples/ — every simulator send
                          goes through net::Channel so transport policy
                          (ack/retry, backpressure, checksum accounting) is
                          applied in exactly one place. tests/ are exempt:
                          they exercise the Link primitive directly.
R9  float-equality        Bare `==` / `!=` against a floating-point literal is
                          forbidden in tests/ and bench/ — exact comparison is
                          representation-fragile (a value recomputed through a
                          different codepath or optimization level rounds
                          differently). Compare with EXPECT_NEAR / an explicit
                          std::abs tolerance, or restructure the check over
                          integers (e.g. loop indices instead of the float
                          values they select).

Exit code 0 when clean; 1 with one line per violation otherwise.

Usage: lint_invariants.py [--root REPO_ROOT] [--self-test]

--self-test runs the built-in per-rule unit corpus (each rule exercised with
one violating and one clean snippet in a temp tree) and exits 0/1.
"""

from __future__ import annotations

import argparse
import re
import sys
from pathlib import Path

PRECONDITION_DOC = re.compile(r"[Tt]hrows\s+InvalidArgument")
THROW_STD = re.compile(r"\bthrow\s+std::")
PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\s*$", re.MULTILINE)
LOCAL_INCLUDE = re.compile(r'^\s*#\s*include\s+"([^"]+)"', re.MULTILINE)
BANNED_RNG = [
    (re.compile(r"(?<![\w.])s?rand\s*\("), "rand()/srand()"),
    (re.compile(r"\bstd::random_device\b"), "std::random_device"),
    (re.compile(r"\bstd::default_random_engine\b"), "std::default_random_engine"),
    (re.compile(r"\bstd::mt19937(_64)?\s*\{"), "direct std::mt19937 construction"),
    (re.compile(r"\bstd::mt19937(_64)?\s+\w+\s*[({=]"), "direct std::mt19937 construction"),
    (re.compile(r"\btime\s*\(\s*(nullptr|NULL|0)\s*\)"), "time()-based seeding"),
]


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j == -1 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    j += 1
                    break
                j += 1
            out.append(quote + " " * (j - i - 2) + quote if j - i >= 2 else text[i:j])
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def extract_brace_block(text: str, open_idx: int) -> str:
    """Return the {...} block starting at text[open_idx] == '{' (best effort)."""
    depth = 0
    for j in range(open_idx, len(text)):
        if text[j] == "{":
            depth += 1
        elif text[j] == "}":
            depth -= 1
            if depth == 0:
                return text[open_idx : j + 1]
    return text[open_idx:]


def function_definition_bodies(code: str, name: str) -> list[str]:
    """Find bodies of definitions of `name` in comment-stripped code."""
    bodies = []
    for m in re.finditer(rf"\b{re.escape(name)}\s*\(", code):
        # Walk past the parameter list.
        depth = 0
        j = m.end() - 1
        while j < len(code):
            if code[j] == "(":
                depth += 1
            elif code[j] == ")":
                depth -= 1
                if depth == 0:
                    break
            j += 1
        # Skip qualifiers (const, noexcept, trailing return, initializer lists
        # are rare here) up to the first ';' or '{'.
        k = j + 1
        while k < len(code) and code[k] not in ";{":
            k += 1
        if k < len(code) and code[k] == "{":
            bodies.append(extract_brace_block(code, k))
    return bodies


def check_preconditions(src: Path) -> list[str]:
    """R1: documented preconditions are enforced in the definition bodies."""
    problems = []
    for hpp in sorted(src.rglob("*.hpp")):
        raw = hpp.read_text()
        lines = raw.splitlines()
        module_dir = hpp.parent
        for idx, line in enumerate(lines):
            stripped = line.strip()
            if not stripped.startswith("///") or not PRECONDITION_DOC.search(stripped):
                continue
            # The doc block may span several /// lines; find the declaration
            # that follows it.
            decl_start = idx + 1
            while decl_start < len(lines) and lines[decl_start].strip().startswith("///"):
                decl_start += 1
            # Doc on a macro definition (e.g. IOTML_CHECK itself), not a function.
            if decl_start < len(lines) and lines[decl_start].lstrip().startswith("#"):
                continue
            decl = ""
            for j in range(decl_start, min(decl_start + 6, len(lines))):
                decl += lines[j] + "\n"
                if ";" in lines[j] or "{" in lines[j]:
                    break
            sig = decl.split("(")[0]
            words = re.findall(r"[A-Za-z_]\w*", sig)
            if not words:
                continue
            name = words[-1]
            loc = f"{hpp.relative_to(src.parent)}:{idx + 1}"
            # Pure-virtual declarations push the obligation onto overriders,
            # which live in the same module directory.
            candidates = []
            header_code = strip_comments_and_strings(raw)
            candidates.extend(function_definition_bodies(header_code, name))
            for cpp in sorted(module_dir.glob("*.cpp")):
                cpp_code = strip_comments_and_strings(cpp.read_text())
                candidates.extend(function_definition_bodies(cpp_code, name))
            if not candidates:
                problems.append(
                    f"{loc}: R1 documented precondition on `{name}` but no definition "
                    f"found in {module_dir.name}/ to enforce it"
                )
                continue
            unchecked = [
                b
                for b in candidates
                if "IOTML_CHECK" not in b and "throw InvalidArgument" not in b
            ]
            if len(unchecked) == len(candidates):
                problems.append(
                    f"{loc}: R1 `{name}` documents 'throws InvalidArgument' but no "
                    f"definition uses IOTML_CHECK (or throws InvalidArgument)"
                )
    return problems


def check_naked_std_throws(src: Path) -> list[str]:
    """R2: throw std::... only inside src/util/error.*."""
    problems = []
    for f in sorted(list(src.rglob("*.cpp")) + list(src.rglob("*.hpp"))):
        if f.parent.name == "util" and f.stem == "error":
            continue
        code = strip_comments_and_strings(f.read_text())
        for lineno, line in enumerate(code.splitlines(), start=1):
            if THROW_STD.search(line):
                problems.append(
                    f"{f.relative_to(src.parent)}:{lineno}: R2 naked `throw std::` — "
                    f"use IOTML_CHECK / the iotml::Error hierarchy (src/util/error.hpp)"
                )
    return problems


def check_include_cycles(src: Path) -> list[str]:
    """R3: the quoted-include graph over src/** is acyclic."""
    files = sorted(list(src.rglob("*.hpp")) + list(src.rglob("*.cpp")))
    known = {str(f.relative_to(src)) for f in files}
    graph: dict[str, list[str]] = {}
    for f in files:
        rel = str(f.relative_to(src))
        deps = []
        for inc in LOCAL_INCLUDE.findall(f.read_text()):
            if inc in known:
                deps.append(inc)
        graph[rel] = deps

    WHITE, GRAY, BLACK = 0, 1, 2
    color = {node: WHITE for node in graph}
    problems = []

    def dfs(node: str, stack: list[str]) -> None:
        color[node] = GRAY
        stack.append(node)
        for dep in graph.get(node, []):
            if color.get(dep, WHITE) == GRAY:
                cycle = stack[stack.index(dep) :] + [dep]
                problems.append(f"src: R3 include cycle: {' -> '.join(cycle)}")
            elif color.get(dep, WHITE) == WHITE:
                dfs(dep, stack)
        stack.pop()
        color[node] = BLACK

    for node in graph:
        if color[node] == WHITE:
            dfs(node, [])
    return problems


def check_rng_discipline(src: Path) -> list[str]:
    """R4: no unseeded/global RNG outside src/util/rng.*."""
    problems = []
    for f in sorted(list(src.rglob("*.cpp")) + list(src.rglob("*.hpp"))):
        if f.parent.name == "util" and f.stem == "rng":
            continue
        code = strip_comments_and_strings(f.read_text())
        for lineno, line in enumerate(code.splitlines(), start=1):
            for pattern, what in BANNED_RNG:
                if pattern.search(line):
                    problems.append(
                        f"{f.relative_to(src.parent)}:{lineno}: R4 {what} — draw from a "
                        f"seedable iotml::Rng (src/util/rng.hpp) instead"
                    )
    return problems


BANNED_CLOCKS = [
    (re.compile(r"\bstd::chrono::steady_clock\b"), "std::chrono::steady_clock"),
    (re.compile(r"\bstd::chrono::system_clock\b"), "std::chrono::system_clock"),
    (re.compile(r"\bstd::chrono::high_resolution_clock\b"),
     "std::chrono::high_resolution_clock"),
    (re.compile(r"\bclock_gettime\s*\("), "clock_gettime()"),
    (re.compile(r"\bgettimeofday\s*\("), "gettimeofday()"),
]


def check_timing_discipline(root: Path) -> list[str]:
    """R6: raw clock reads only inside src/obs/."""
    problems = []
    files: list[Path] = []
    for sub in ("src", "bench", "examples", "tests"):
        d = root / sub
        if d.is_dir():
            files.extend(sorted(list(d.rglob("*.cpp")) + list(d.rglob("*.hpp"))))
    for f in files:
        if f.parent.name == "obs" and f.parent.parent.name == "src":
            continue
        code = strip_comments_and_strings(f.read_text())
        for lineno, line in enumerate(code.splitlines(), start=1):
            for pattern, what in BANNED_CLOCKS:
                if pattern.search(line):
                    problems.append(
                        f"{f.relative_to(root)}:{lineno}: R6 {what} — time through "
                        f"obs::now_us() (src/obs/clock.hpp) so all timing shares one clock"
                    )
    return problems


REINTERPRET_CAST = re.compile(r"\breinterpret_cast\b")
NARROWING_CAST = re.compile(r"\bstatic_cast<\s*(?:std::)?u?int(?:8|16)_t\s*>")
CODEC_SANCTION = re.compile(r"//\s*codec-sanctioned")


def check_serialization_casts(root: Path) -> list[str]:
    """R7: byte-level casts only through the codec core src/util/bytes.*."""
    problems = []
    files: list[Path] = []
    for sub in ("src", "bench", "examples", "tests"):
        d = root / sub
        if d.is_dir():
            files.extend(sorted(list(d.rglob("*.cpp")) + list(d.rglob("*.hpp"))))
    for f in files:
        rel = f.relative_to(root)
        in_codec = (f.parent.name == "util" and f.stem == "bytes") or (
            f.parent.name == "deploy" and f.stem == "codec"
        )
        in_serialization = (
            "deploy" in f.parts or "tdf" in f.parts
        ) and f.suffix in (".cpp", ".hpp")
        raw_lines = f.read_text().splitlines()
        code = strip_comments_and_strings(f.read_text())
        for lineno, line in enumerate(code.splitlines(), start=1):
            if REINTERPRET_CAST.search(line):
                raw = raw_lines[lineno - 1] if lineno <= len(raw_lines) else ""
                if in_codec and CODEC_SANCTION.search(raw):
                    continue
                problems.append(
                    f"{rel}:{lineno}: R7 reinterpret_cast — byte views belong in "
                    f"src/util/bytes.* (mark with `// codec-sanctioned`)"
                )
            if in_serialization and not in_codec and NARROWING_CAST.search(line):
                problems.append(
                    f"{rel}:{lineno}: R7 bare narrowing static_cast in serialization "
                    f"code — use util::narrow_u8/u16/u32/i8/i16 or enum_u8 "
                    f"(src/util/bytes.hpp) so overflow throws instead of wrapping"
                )
    return problems


DIRECT_TRANSMIT = re.compile(r"(?:\.|->)\s*transmit\s*\(")


def check_transport_discipline(root: Path) -> list[str]:
    """R8: Link::transmit calls only inside src/net/ (tests exempt)."""
    problems = []
    files: list[Path] = []
    for sub in ("src", "bench", "examples"):
        d = root / sub
        if d.is_dir():
            files.extend(sorted(list(d.rglob("*.cpp")) + list(d.rglob("*.hpp"))))
    for f in files:
        if f.parent.name == "net" and f.parent.parent.name == "src":
            continue
        code = strip_comments_and_strings(f.read_text())
        for lineno, line in enumerate(code.splitlines(), start=1):
            if DIRECT_TRANSMIT.search(line):
                problems.append(
                    f"{f.relative_to(root)}:{lineno}: R8 direct Link transmit — send "
                    f"through net::Channel (src/net/channel.hpp) so transport policy "
                    f"and accounting stay in one place"
                )
    return problems


FLOAT_LITERAL = r"(?:\d+\.\d*|\.\d+)(?:[eE][-+]?\d+)?f?"
FLOAT_EQ = re.compile(
    rf"(?:[=!]=\s*[-+]?{FLOAT_LITERAL})|(?:{FLOAT_LITERAL}\s*[=!]=)"
)


def check_float_equality(root: Path) -> list[str]:
    """R9: no bare float-literal == / != in tests/ and bench/."""
    problems = []
    files: list[Path] = []
    for sub in ("tests", "bench"):
        d = root / sub
        if d.is_dir():
            files.extend(sorted(list(d.rglob("*.cpp")) + list(d.rglob("*.hpp"))))
    for f in files:
        code = strip_comments_and_strings(f.read_text())
        for lineno, line in enumerate(code.splitlines(), start=1):
            if FLOAT_EQ.search(line):
                problems.append(
                    f"{f.relative_to(root)}:{lineno}: R9 bare float-literal equality — "
                    f"exact ==/!= on floating literals is representation-fragile; use "
                    f"EXPECT_NEAR / a std::abs tolerance, or compare on integers"
                )
    return problems


def check_pragma_once(src: Path) -> list[str]:
    """R5: every header uses #pragma once."""
    problems = []
    for hpp in sorted(src.rglob("*.hpp")):
        if not PRAGMA_ONCE.search(hpp.read_text()):
            problems.append(f"{hpp.relative_to(src.parent)}:1: R5 missing #pragma once")
    return problems


def self_test() -> int:
    """Per-rule unit corpus: one violating and one clean snippet per rule."""
    import tempfile

    failures: list[str] = []

    def case(name: str, should_flag: bool, files: dict[str, str],
             check, *, scope: str = "root") -> None:
        with tempfile.TemporaryDirectory() as td:
            root = Path(td)
            for rel, content in files.items():
                p = root / rel
                p.parent.mkdir(parents=True, exist_ok=True)
                p.write_text(content)
            problems = check(root / "src" if scope == "src" else root)
            if bool(problems) != should_flag:
                want = "a violation" if should_flag else "clean"
                failures.append(f"{name}: expected {want}, got {problems!r}")

    case("R1-flag", True,
         {"src/m/a.hpp": "#pragma once\n/// Throws InvalidArgument if n == 0.\nvoid f(int n);\n",
          "src/m/a.cpp": "void f(int n) { (void)n; }\n"},
         check_preconditions, scope="src")
    case("R1-clean", False,
         {"src/m/a.hpp": "#pragma once\n/// Throws InvalidArgument if n == 0.\nvoid f(int n);\n",
          "src/m/a.cpp": "void f(int n) { IOTML_CHECK(n != 0, \"n\"); }\n"},
         check_preconditions, scope="src")
    case("R2-flag", True, {"src/a.cpp": "void f() { throw std::runtime_error(\"x\"); }\n"},
         check_naked_std_throws, scope="src")
    case("R2-clean", False,
         {"src/util/error.cpp": "void f() { throw std::runtime_error(\"x\"); }\n"},
         check_naked_std_throws, scope="src")
    case("R3-flag", True,
         {"src/a.hpp": "#pragma once\n#include \"b.hpp\"\n",
          "src/b.hpp": "#pragma once\n#include \"a.hpp\"\n"},
         check_include_cycles, scope="src")
    case("R3-clean", False,
         {"src/a.hpp": "#pragma once\n#include \"b.hpp\"\n",
          "src/b.hpp": "#pragma once\n"},
         check_include_cycles, scope="src")
    case("R4-flag", True, {"src/a.cpp": "#include <random>\nstd::random_device rd;\n"},
         check_rng_discipline, scope="src")
    case("R4-clean", False, {"src/util/rng.cpp": "std::random_device rd;\n"},
         check_rng_discipline, scope="src")
    case("R5-flag", True, {"src/a.hpp": "struct A {};\n"}, check_pragma_once, scope="src")
    case("R5-clean", False, {"src/a.hpp": "#pragma once\nstruct A {};\n"},
         check_pragma_once, scope="src")
    case("R6-flag", True,
         {"src/a.cpp": "auto t = std::chrono::steady_clock::now();\n"},
         check_timing_discipline)
    case("R6-clean", False,
         {"src/obs/clock.cpp": "auto t = std::chrono::steady_clock::now();\n"},
         check_timing_discipline)
    case("R7-flag", True,
         {"src/a.cpp": "auto* p = reinterpret_cast<char*>(q);\n"},
         check_serialization_casts)
    case("R7-flag-narrow-tdf", True,
         {"src/tdf/codec.cpp": "auto b = static_cast<std::uint8_t>(n);\n"},
         check_serialization_casts)
    case("R7-clean", False,
         {"src/util/bytes.cpp":
          "auto* p = reinterpret_cast<char*>(q);  // codec-sanctioned\n"},
         check_serialization_casts)
    case("R7-clean-legacy-shim", False,
         {"src/deploy/codec.cpp":
          "auto* p = reinterpret_cast<char*>(q);  // codec-sanctioned\n"},
         check_serialization_casts)
    case("R8-flag", True, {"src/sim/a.cpp": "link.transmit(msg);\n"},
         check_transport_discipline)
    case("R8-clean", False, {"src/net/channel.cpp": "link_.transmit(msg);\n"},
         check_transport_discipline)
    case("R9-flag", True, {"tests/t.cpp": "EXPECT_TRUE(v == 5.0);\n"},
         check_float_equality)
    case("R9-flag-mirrored", True, {"bench/b.cpp": "if (0.2 == eps) {}\n"},
         check_float_equality)
    case("R9-clean-near", False,
         {"tests/t.cpp": "EXPECT_NEAR(v, 5.0, 1e-9);\nif (x <= 5.0) {}\n"},
         check_float_equality)
    case("R9-clean-int", False, {"tests/t.cpp": "EXPECT_TRUE(n == 5);\n"},
         check_float_equality)
    case("R9-clean-src-out-of-scope", False, {"src/a.cpp": "bool b = v == 5.0;\n"},
         check_float_equality)

    if failures:
        for f in failures:
            print(f"self-test FAIL {f}")
        print(f"lint_invariants --self-test: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("lint_invariants --self-test: all per-rule cases passed")
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent,
                        help="repository root (containing src/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the built-in per-rule unit corpus and exit")
    args = parser.parse_args()
    if args.self_test:
        return self_test()
    src = args.root / "src"
    if not src.is_dir():
        print(f"lint_invariants: no src/ under {args.root}", file=sys.stderr)
        return 2

    problems = []
    problems += check_preconditions(src)
    problems += check_naked_std_throws(src)
    problems += check_include_cycles(src)
    problems += check_rng_discipline(src)
    problems += check_pragma_once(src)
    problems += check_timing_discipline(args.root)
    problems += check_serialization_casts(args.root)
    problems += check_transport_discipline(args.root)
    problems += check_float_equality(args.root)

    if problems:
        for p in problems:
            print(p)
        print(f"lint_invariants: {len(problems)} violation(s)", file=sys.stderr)
        return 1
    print("lint_invariants: clean (R1 preconditions, R2 throws, R3 cycles, R4 rng, "
          "R5 pragma, R6 timing, R7 serialization casts, R8 transport, "
          "R9 float equality)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
