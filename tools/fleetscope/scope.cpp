#include "scope.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <istream>
#include <set>
#include <sstream>

namespace iotml::fleetscope {

// ---- Minimal JSON ----------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string& error) : text_(text), error_(error) {}

  bool parse(Json& out) {
    skip_ws();
    if (!value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing characters after value");
    return true;
  }

 private:
  bool fail(const std::string& what) {
    std::ostringstream msg;
    msg << what << " at offset " << pos_;
    error_ = msg.str();
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool value(Json& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    if (c == '{') return object(out);
    if (c == '[') return array(out);
    if (c == '"') {
      out.kind = Json::Kind::kString;
      return string(out.str);
    }
    if (c == 't' || c == 'f') return boolean(out);
    if (c == 'n') return null(out);
    return number(out);
  }

  bool literal(const char* word) {
    const std::size_t n = std::string(word).size();
    if (text_.compare(pos_, n, word) != 0) return fail("bad literal");
    pos_ += n;
    return true;
  }

  bool boolean(Json& out) {
    out.kind = Json::Kind::kBool;
    out.boolean = text_[pos_] == 't';
    return literal(out.boolean ? "true" : "false");
  }

  bool null(Json& out) {
    out.kind = Json::Kind::kNull;
    return literal("null");
  }

  bool number(Json& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return fail("expected a number");
    const std::string token = text_.substr(start, pos_ - start);
    try {
      out.number = std::stod(token);
    } catch (...) {
      return fail("unparseable number '" + token + "'");
    }
    out.kind = Json::Kind::kNumber;
    out.integer = 0;
    if (integral && token[0] != '-') {
      try {
        out.integer = std::stoull(token);
      } catch (...) {
        out.integer = static_cast<std::uint64_t>(out.number);
      }
    } else {
      out.integer = static_cast<std::uint64_t>(out.number < 0 ? 0 : out.number);
    }
    return true;
  }

  bool string(std::string& out) {
    ++pos_;  // opening quote
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) break;
      const char esc = text_[pos_++];
      switch (esc) {
        case 'n': out.push_back('\n'); break;
        case 't': out.push_back('\t'); break;
        case 'r': out.push_back('\r'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'u': {
          // The artifacts only escape control characters; decode BMP scalars
          // to UTF-8 and reject surrogate fiddling as malformed.
          if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return fail("bad \\u escape digit");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
    return fail("unterminated string");
  }

  bool array(Json& out) {
    out.kind = Json::Kind::kArray;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      Json elem;
      skip_ws();
      if (!value(elem)) return false;
      out.arr.push_back(std::move(elem));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool object(Json& out) {
    out.kind = Json::Kind::kObject;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      std::string key;
      if (!string(key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      Json val;
      if (!value(val)) return false;
      out.obj.emplace_back(std::move(key), std::move(val));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string& error_;
  std::size_t pos_ = 0;
};

std::string read_all(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

}  // namespace

const Json* Json::find(const std::string& key) const {
  for (const auto& [k, v] : obj) {
    if (k == key) return &v;
  }
  return nullptr;
}

double Json::num_or(const std::string& key, double fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->number : fallback;
}

std::uint64_t Json::u64_or(const std::string& key, std::uint64_t fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->kind == Kind::kNumber ? v->integer : fallback;
}

std::string Json::str_or(const std::string& key, const std::string& fallback) const {
  const Json* v = find(key);
  return v != nullptr && v->kind == Kind::kString ? v->str : fallback;
}

bool parse_json(const std::string& text, Json& out, std::string& error) {
  out = Json{};
  Parser p(text, error);
  return p.parse(out);
}

// ---- Artifact parsers ------------------------------------------------------

bool parse_journeys(std::istream& in, JourneyFile& out, std::string& error) {
  out = JourneyFile{};
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    Json row;
    if (!parse_json(line, row, error)) {
      error = "journeys.jsonl line " + std::to_string(line_no) + ": " + error;
      return false;
    }
    if (const Json* meta = row.find("meta"); meta != nullptr) {
      out.meta_present = true;
      out.meta_records = meta->u64_or("records", 0);
      out.meta_dropped = meta->u64_or("dropped", 0);
      continue;
    }
    ScopeRecord rec;
    rec.trace = row.u64_or("trace", 0);
    rec.hop = static_cast<std::uint32_t>(row.u64_or("hop", 0));
    rec.kind = row.str_or("kind", "");
    rec.stream = row.str_or("stream", "");
    rec.src = static_cast<std::size_t>(row.u64_or("src", 0));
    rec.dst = static_cast<std::size_t>(row.u64_or("dst", 0));
    rec.t0_s = row.num_or("t0", 0.0);
    rec.t1_s = row.num_or("t1", 0.0);
    rec.rows = static_cast<std::size_t>(row.u64_or("rows", 0));
    rec.bytes = static_cast<std::size_t>(row.u64_or("bytes", 0));
    rec.attempts = static_cast<std::uint32_t>(row.u64_or("attempts", 0));
    rec.outcome = row.str_or("outcome", "");
    if (const Json* parents = row.find("parents");
        parents != nullptr && parents->kind == Json::Kind::kArray) {
      for (const Json& p : parents->arr) rec.parents.push_back(p.integer);
    }
    out.records.push_back(std::move(rec));
  }
  return true;
}

bool parse_timeseries(std::istream& in, SeriesFile& out, std::string& error) {
  out = SeriesFile{};
  Json root;
  if (!parse_json(read_all(in), root, error)) {
    error = "timeseries.json: " + error;
    return false;
  }
  out.capacity = static_cast<std::size_t>(root.u64_or("capacity", 0));
  const Json* series = root.find("series");
  if (series == nullptr || series->kind != Json::Kind::kArray) {
    error = "timeseries.json: missing \"series\" array";
    return false;
  }
  for (const Json& row : series->arr) {
    SeriesEntry entry;
    entry.metric = row.str_or("metric", "");
    entry.entity = row.str_or("entity", "");
    entry.tier = row.str_or("tier", "");
    entry.total = row.u64_or("total", 0);
    if (const Json* samples = row.find("samples");
        samples != nullptr && samples->kind == Json::Kind::kArray) {
      for (const Json& pair : samples->arr) {
        if (pair.kind != Json::Kind::kArray || pair.arr.size() != 2) {
          error = "timeseries.json: sample is not a [t, value] pair";
          return false;
        }
        entry.samples.emplace_back(pair.arr[0].number, pair.arr[1].number);
      }
    }
    out.series.push_back(std::move(entry));
  }
  return true;
}

bool parse_flightrec(std::istream& in, FlightFile& out, std::string& error) {
  out = FlightFile{};
  Json root;
  if (!parse_json(read_all(in), root, error)) {
    error = "flightrec.json: " + error;
    return false;
  }
  out.ring_capacity = static_cast<std::size_t>(root.u64_or("ring_capacity", 0));
  const Json* entities = root.find("entities");
  if (entities == nullptr || entities->kind != Json::Kind::kArray) {
    error = "flightrec.json: missing \"entities\" array";
    return false;
  }
  for (const Json& row : entities->arr) {
    FlightEntity entity;
    entity.entity = static_cast<std::size_t>(row.u64_or("entity", 0));
    entity.total = row.u64_or("total", 0);
    if (const Json* events = row.find("events");
        events != nullptr && events->kind == Json::Kind::kArray) {
      for (const Json& ev : events->arr) {
        std::ostringstream line;
        char t_buf[64];
        std::snprintf(t_buf, sizeof t_buf, "%.17g", ev.num_or("t", 0.0));
        line << "t=" << t_buf << " " << ev.str_or("kind", "?") << " a="
             << ev.u64_or("a", 0) << " b=" << ev.u64_or("b", 0);
        entity.lines.push_back(line.str());
      }
    }
    out.entities.push_back(std::move(entity));
  }
  return true;
}

bool parse_ota(std::istream& in, OtaFile& out, std::string& error) {
  out = OtaFile{};
  Json root;
  if (!parse_json(read_all(in), root, error)) {
    error = "ota.json: " + error;
    return false;
  }
  const Json* enabled = root.find("enabled");
  out.enabled = enabled != nullptr && enabled->boolean;
  out.epochs = root.u64_or("epochs", 0);
  out.versions_published = root.u64_or("versions_published", 0);
  if (const Json* bytes = root.find("bytes"); bytes != nullptr) {
    out.delta_downlink_bytes = bytes->u64_or("delta_downlink", 0);
    out.full_broadcast_bytes = bytes->u64_or("full_broadcast_counterfactual", 0);
    out.probe_uplink_bytes = bytes->u64_or("probe_uplink", 0);
  }
  out.promotions = root.u64_or("promotions", 0);
  out.rollbacks = root.u64_or("rollbacks", 0);
  out.last_commit_t_s = root.num_or("last_commit_t_s", 0.0);
  if (const Json* devices = root.find("devices"); devices != nullptr) {
    out.devices_on_head = devices->u64_or("on_head", 0);
    out.devices_behind = devices->u64_or("behind", 0);
    out.devices_unprovisioned = devices->u64_or("unprovisioned", 0);
    out.devices_stuck = devices->u64_or("stuck", 0);
  }
  const Json* verified = root.find("all_devices_verified");
  out.all_devices_verified = verified != nullptr && verified->boolean;
  if (const Json* histogram = root.find("version_histogram");
      histogram != nullptr && histogram->kind == Json::Kind::kObject) {
    for (const auto& [id, count] : histogram->obj) {
      std::uint32_t version = 0;
      try {
        version = static_cast<std::uint32_t>(std::stoul(id));
      } catch (...) {
        error = "ota.json: non-numeric version_histogram key '" + id + "'";
        return false;
      }
      out.version_histogram.emplace_back(version, count.integer);
    }
  }
  if (const Json* log = root.find("epochs_log");
      log != nullptr && log->kind == Json::Kind::kArray) {
    for (const Json& row : log->arr) {
      OtaEpoch e;
      e.epoch = row.u64_or("epoch", 0);
      e.t_s = row.num_or("t_s", 0.0);
      e.version_id = static_cast<std::uint32_t>(row.u64_or("version_id", 0));
      e.outcome = row.str_or("outcome", "");
      e.train_rows = row.u64_or("train_rows", 0);
      e.image_bytes = row.u64_or("image_bytes", 0);
      e.patch_bytes = row.u64_or("patch_bytes", 0);
      e.delta_downlink_bytes = row.u64_or("delta_downlink_bytes", 0);
      e.full_broadcast_bytes = row.u64_or("full_broadcast_bytes", 0);
      e.canary_devices = row.u64_or("canary_devices", 0);
      e.devices_reporting = row.u64_or("devices_reporting", 0);
      e.accuracy_old = row.num_or("accuracy_old", 0.0);
      e.accuracy_new = row.num_or("accuracy_new", 0.0);
      e.devices_updated = row.u64_or("devices_updated", 0);
      e.devices_rolled_back = row.u64_or("devices_rolled_back", 0);
      e.full_fallbacks = row.u64_or("full_fallbacks", 0);
      e.devices_stuck = row.u64_or("devices_stuck", 0);
      out.epochs_log.push_back(std::move(e));
    }
  }
  return true;
}

bool parse_degradation(std::istream& in, DegradeFile& out, std::string& error) {
  out = DegradeFile{};
  Json root;
  if (!parse_json(read_all(in), root, error)) {
    error = "degradation.json: " + error;
    return false;
  }
  const Json* enabled = root.find("enabled");
  out.enabled = enabled != nullptr && enabled->boolean;
  out.pin_level = static_cast<int>(root.num_or("pin_level", -1.0));
  out.duration_s = root.num_or("duration_s", 0.0);
  if (const Json* rows = root.find("rows"); rows != nullptr) {
    out.rows_exact = rows->u64_or("exact", 0);
    out.rows_approx = rows->u64_or("approx", 0);
    out.rows_sampled_out = rows->u64_or("sampled_out", 0);
  }
  if (const Json* windows = root.find("windows"); windows != nullptr) {
    out.windows_exact = windows->u64_or("exact", 0);
    out.windows_sampled = windows->u64_or("sampled", 0);
    out.windows_sketch = windows->u64_or("sketch", 0);
    out.windows_summary = windows->u64_or("summary", 0);
  }
  if (const Json* transitions = root.find("transitions"); transitions != nullptr) {
    out.transitions_up = transitions->u64_or("up", 0);
    out.transitions_down = transitions->u64_or("down", 0);
  }
  if (const Json* summaries = root.find("summaries"); summaries != nullptr) {
    out.summaries_sent = summaries->u64_or("sent", 0);
    out.summaries_delivered = summaries->u64_or("delivered", 0);
    out.summary_bytes = summaries->u64_or("bytes", 0);
    out.artifact_relays_skipped = summaries->u64_or("artifact_relays_skipped", 0);
  }
  if (const Json* ci = root.find("ci"); ci != nullptr) {
    out.ci_windows = ci->u64_or("windows", 0);
    out.ci_covered = ci->u64_or("covered", 0);
    out.coverage = ci->num_or("coverage", 0.0);
    out.mean_half_width = ci->num_or("mean_half_width", 0.0);
    out.mean_abs_error = ci->num_or("mean_abs_error", 0.0);
    out.max_abs_error = ci->num_or("max_abs_error", 0.0);
  }
  out.windows_truncated = root.u64_or("windows_truncated", 0);
  if (const Json* edges = root.find("edges");
      edges != nullptr && edges->kind == Json::Kind::kArray) {
    for (const Json& row : edges->arr) {
      DegradeEdge e;
      e.edge = static_cast<std::size_t>(row.u64_or("edge", 0));
      e.final_level = static_cast<int>(row.num_or("final_level", 0.0));
      if (const Json* times = row.find("time_at_level_s");
          times != nullptr && times->kind == Json::Kind::kArray) {
        for (std::size_t i = 0; i < times->arr.size() && i < 4; ++i) {
          e.time_at_level_s[i] = times->arr[i].number;
        }
      }
      if (const Json* moves = row.find("transitions");
          moves != nullptr && moves->kind == Json::Kind::kArray) {
        for (const Json& move : moves->arr) {
          DegradeTransition t;
          t.t_s = move.num_or("t_s", 0.0);
          t.from = static_cast<int>(move.num_or("from", 0.0));
          t.to = static_cast<int>(move.num_or("to", 0.0));
          e.transitions.push_back(t);
        }
      }
      out.edges.push_back(std::move(e));
    }
  }
  if (const Json* estimates = root.find("window_estimates");
      estimates != nullptr && estimates->kind == Json::Kind::kArray) {
    for (const Json& row : estimates->arr) {
      DegradeWindow w;
      w.edge = static_cast<std::size_t>(row.u64_or("edge", 0));
      w.t_s = row.num_or("t_s", 0.0);
      w.level = static_cast<int>(row.num_or("level", 0.0));
      w.rows_window = row.u64_or("rows_window", 0);
      w.rows_used = row.u64_or("rows_used", 0);
      w.estimate = row.num_or("estimate", 0.0);
      w.half_width = row.num_or("half_width", 0.0);
      w.exact = row.num_or("exact", 0.0);
      const Json* covered = row.find("covered");
      w.covered = covered != nullptr && covered->boolean;
      out.windows.push_back(w);
    }
  }
  return true;
}

// ---- Journey reconstruction ------------------------------------------------

double Journey::end_to_end_s() const noexcept {
  if (!complete()) return 0.0;
  return core_arrival->t1_s - origin_rec->t0_s;
}

double Completeness::origin_fraction() const noexcept {
  return origins_delivered == 0
             ? 1.0
             : static_cast<double>(origins_complete) /
                   static_cast<double>(origins_delivered);
}

double Completeness::row_fraction() const noexcept {
  return rows_delivered == 0 ? 1.0
                             : static_cast<double>(rows_complete) /
                                   static_cast<double>(rows_delivered);
}

Reconstruction::Reconstruction(const JourneyFile& file) {
  std::map<std::uint64_t, const ScopeRecord*> origins;
  // Per origin id, the row-stream sends carrying it, split by wire hop.
  std::map<std::uint64_t, std::vector<const ScopeRecord*>> hop0_sends;
  std::map<std::uint64_t, std::vector<const ScopeRecord*>> hop1_sends;
  std::map<std::uint64_t, std::size_t> failed_frames;
  // Frame trace -> its accepted arrival record.
  std::map<std::uint64_t, const ScopeRecord*> accepted;

  for (const ScopeRecord& rec : file.records) {
    outcome_counts_[rec.stream][rec.kind + "/" + rec.outcome] += 1;
    if (rec.stream != "rows") continue;
    if (rec.kind == "origin") {
      origins.emplace(rec.trace, &rec);
      ++completeness_.origins_total;
    } else if (rec.kind == "send") {
      auto& by_hop = rec.hop == 0 ? hop0_sends : hop1_sends;
      for (const std::uint64_t parent : rec.parents) {
        if (rec.outcome == "delivered") {
          by_hop[parent].push_back(&rec);
        } else {
          failed_frames[parent] += 1;
        }
      }
    } else if (rec.kind == "arrive" && rec.outcome == "accepted") {
      accepted.emplace(rec.trace, &rec);
    }
  }

  // An origin window was delivered iff a delivered hop-1 frame naming it as a
  // parent was accepted at the core. std::map iteration keeps the journey
  // list in origin-trace order, so output is deterministic.
  for (const auto& [origin, sends] : hop1_sends) {
    Journey j;
    j.origin = origin;
    for (const ScopeRecord* send : sends) {
      const auto it = accepted.find(send->trace);
      if (it != accepted.end()) {
        j.hop1 = send;
        j.core_arrival = it->second;
        break;
      }
    }
    if (j.hop1 == nullptr) continue;  // never accepted at the core
    const auto origin_it = origins.find(origin);
    if (origin_it != origins.end()) j.origin_rec = origin_it->second;
    const auto h0 = hop0_sends.find(origin);
    if (h0 != hop0_sends.end()) {
      for (const ScopeRecord* send : h0->second) {
        if (accepted.count(send->trace) != 0) {
          j.hop0 = send;
          break;
        }
      }
    }
    const auto failed = failed_frames.find(origin);
    j.failed_frames = failed == failed_frames.end() ? 0 : failed->second;

    ++completeness_.origins_delivered;
    const std::uint64_t weight =
        j.origin_rec != nullptr ? static_cast<std::uint64_t>(j.origin_rec->rows) : 1;
    completeness_.rows_delivered += weight;
    if (j.complete()) {
      ++completeness_.origins_complete;
      completeness_.rows_complete += weight;
    }
    journeys_.push_back(j);
  }
}

// ---- Rendering -------------------------------------------------------------

namespace {

std::string format_seconds(double s) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3fs", s);
  return buf;
}

void render_leg(std::ostream& out, const char* label, const ScopeRecord* send) {
  out << "  " << label << " ";
  if (send == nullptr) {
    out << "(missing: chain breaks here)\n";
    return;
  }
  out << "node" << send->src << " -> node" << send->dst << "  sent t="
      << format_seconds(send->t0_s) << "  arrived t=" << format_seconds(send->t1_s)
      << "  (+" << format_seconds(send->t1_s - send->t0_s) << ", attempts="
      << send->attempts << ", " << send->rows << " rows, " << send->bytes
      << " bytes)\n";
}

}  // namespace

std::string render_journeys(const Reconstruction& recon, std::size_t limit) {
  std::ostringstream out;
  const auto& journeys = recon.journeys();
  out << "journeys (" << journeys.size() << " delivered origin windows, showing "
      << std::min(limit, journeys.size()) << ")\n";
  std::size_t shown = 0;
  for (const Journey& j : journeys) {
    if (shown++ >= limit) break;
    out << "journey origin#" << j.origin;
    if (j.origin_rec != nullptr) {
      out << "  (device node" << j.origin_rec->src << ", flushed t="
          << format_seconds(j.origin_rec->t0_s) << ", " << j.origin_rec->rows
          << " rows)";
    } else {
      out << "  (origin record missing)";
    }
    out << "\n";
    render_leg(out, "hop0", j.hop0);
    render_leg(out, "hop1", j.hop1);
    if (j.complete()) {
      out << "  end-to-end " << format_seconds(j.end_to_end_s());
      if (j.failed_frames > 0) out << "  (" << j.failed_frames << " failed frames)";
      out << "\n";
    } else {
      out << "  incomplete journey";
      if (j.failed_frames > 0) out << "  (" << j.failed_frames << " failed frames)";
      out << "\n";
    }
  }
  return out.str();
}

std::string render_heatmap(const SeriesFile& series, std::size_t columns) {
  static const char kRamp[] = " .:-=+*#%@";
  constexpr std::size_t kRampMax = sizeof(kRamp) - 2;  // index of densest glyph
  std::ostringstream out;

  // Group entries by metric; each metric gets its own table.
  std::map<std::string, std::vector<const SeriesEntry*>> by_metric;
  for (const SeriesEntry& entry : series.series) {
    by_metric[entry.metric].push_back(&entry);
  }
  for (const auto& [metric, entries] : by_metric) {
    double t_min = 0.0;
    double t_max = 0.0;
    double v_max = 0.0;
    bool any = false;
    for (const SeriesEntry* entry : entries) {
      for (const auto& [t, v] : entry->samples) {
        if (!any) {
          t_min = t_max = t;
          any = true;
        }
        t_min = std::min(t_min, t);
        t_max = std::max(t_max, t);
        v_max = std::max(v_max, std::fabs(v));
      }
    }
    out << "metric " << metric << "  (t=" << format_seconds(t_min) << " .. "
        << format_seconds(t_max) << ", max=" << v_max << ")\n";
    const double span = t_max > t_min ? t_max - t_min : 1.0;
    for (const SeriesEntry* entry : entries) {
      std::vector<double> sums(columns, 0.0);
      std::vector<std::uint64_t> counts(columns, 0);
      for (const auto& [t, v] : entry->samples) {
        auto col = static_cast<std::size_t>((t - t_min) / span *
                                            static_cast<double>(columns));
        col = std::min(col, columns - 1);
        sums[col] += std::fabs(v);
        counts[col] += 1;
      }
      std::string heat(columns, ' ');
      for (std::size_t c = 0; c < columns; ++c) {
        if (counts[c] == 0) continue;
        const double mean = sums[c] / static_cast<double>(counts[c]);
        const double frac = v_max > 0.0 ? mean / v_max : 0.0;
        const auto idx = static_cast<std::size_t>(frac * static_cast<double>(kRampMax));
        heat[c] = kRamp[1 + std::min(idx, kRampMax - 1)];
      }
      char label[96];
      std::snprintf(label, sizeof label, "  %-12s %-7s |%s|  total=%llu",
                    entry->entity.c_str(), entry->tier.c_str(), heat.c_str(),
                    static_cast<unsigned long long>(entry->total));
      out << label << "\n";
    }
    out << "\n";
  }
  return out.str();
}

std::string render_health(const JourneyFile& file, const Reconstruction& recon,
                          const FlightFile& flight) {
  std::ostringstream out;
  out << "health\n";
  out << "  journey log: " << file.records.size() << " records";
  if (file.meta_present) out << " (writer claims " << file.meta_records << ")";
  out << ", " << file.meta_dropped << " dropped\n";
  for (const auto& [stream, kinds] : recon.outcome_counts()) {
    out << "  stream " << stream << ":";
    for (const auto& [key, count] : kinds) out << "  " << key << "=" << count;
    out << "\n";
  }
  const Completeness& c = recon.completeness();
  char pct[128];
  std::snprintf(pct, sizeof pct,
                "  completeness: %zu/%zu delivered origins reconstruct (%.2f%%), "
                "%llu/%llu rows (%.2f%%)",
                c.origins_complete, c.origins_delivered, 100.0 * c.origin_fraction(),
                static_cast<unsigned long long>(c.rows_complete),
                static_cast<unsigned long long>(c.rows_delivered),
                100.0 * c.row_fraction());
  out << pct << "\n";
  std::uint64_t flight_total = 0;
  for (const FlightEntity& e : flight.entities) flight_total += e.total;
  out << "  flight recorder: " << flight.entities.size() << " active entities, "
      << flight_total << " events noted (ring=" << flight.ring_capacity << ")\n";
  return out.str();
}

std::string render_flight(const FlightFile& flight, std::size_t limit) {
  std::ostringstream out;
  out << "flight rings (showing " << std::min(limit, flight.entities.size()) << " of "
      << flight.entities.size() << " active entities)\n";
  std::size_t shown = 0;
  for (const FlightEntity& e : flight.entities) {
    if (shown++ >= limit) break;
    out << "  entity " << e.entity << " (" << e.total << " events total):\n";
    for (const std::string& line : e.lines) out << "    " << line << "\n";
  }
  return out.str();
}

std::string render_versions(const OtaFile& ota) {
  std::ostringstream out;
  if (!ota.enabled) {
    out << "ota versions: OTA was not enabled for this run\n";
    return out.str();
  }
  char head[160];
  const double saved =
      ota.full_broadcast_bytes > 0
          ? 100.0 * (1.0 - static_cast<double>(ota.delta_downlink_bytes) /
                               static_cast<double>(ota.full_broadcast_bytes))
          : 0.0;
  std::snprintf(head, sizeof head,
                "ota versions (%llu epochs, %llu promoted, %llu rolled back; "
                "downlink %llu B vs %llu B counterfactual, %.1f%% saved)",
                static_cast<unsigned long long>(ota.epochs),
                static_cast<unsigned long long>(ota.promotions),
                static_cast<unsigned long long>(ota.rollbacks),
                static_cast<unsigned long long>(ota.delta_downlink_bytes),
                static_cast<unsigned long long>(ota.full_broadcast_bytes), saved);
  out << head << "\n";

  out << "timeline\n";
  for (const OtaEpoch& e : ota.epochs_log) {
    char line[192];
    std::snprintf(line, sizeof line, "  epoch %llu  t=%-8s v%-3u %-11s",
                  static_cast<unsigned long long>(e.epoch),
                  format_seconds(e.t_s).c_str(), e.version_id,
                  e.outcome.c_str());
    out << line;
    if (e.canary_devices > 0) {
      char canary[128];
      std::snprintf(canary, sizeof canary,
                    " canary %llu/%llu reporting, acc %.3f -> %.3f,",
                    static_cast<unsigned long long>(e.devices_reporting),
                    static_cast<unsigned long long>(e.canary_devices),
                    e.accuracy_old, e.accuracy_new);
      out << canary;
    }
    out << " " << e.devices_updated << " updated";
    if (e.devices_rolled_back > 0) out << ", " << e.devices_rolled_back << " rolled back";
    if (e.full_fallbacks > 0) out << ", " << e.full_fallbacks << " full fallbacks";
    if (e.devices_stuck > 0) out << ", " << e.devices_stuck << " STUCK";
    out << "\n";
  }

  out << "fleet versions\n";
  std::uint64_t max_count = 1;
  std::uint64_t total = 0;
  std::uint32_t head_id = 0;
  for (const auto& [id, count] : ota.version_histogram) {
    max_count = std::max(max_count, count);
    total += count;
    head_id = std::max(head_id, id);
  }
  constexpr std::size_t kBarWidth = 24;
  for (const auto& [id, count] : ota.version_histogram) {
    const auto width = static_cast<std::size_t>(
        static_cast<double>(count) / static_cast<double>(max_count) *
        static_cast<double>(kBarWidth));
    char label[32];
    if (id == 0) {
      std::snprintf(label, sizeof label, "  none");
    } else {
      std::snprintf(label, sizeof label, "  v%-4u", id);
    }
    out << label << " " << std::string(std::max<std::size_t>(width, 1), '#')
        << std::string(kBarWidth - std::max<std::size_t>(width, 1), ' ') << " "
        << count << " devices" << (id != 0 && id == head_id ? "  (head)" : "")
        << "\n";
  }
  char tail[192];
  std::snprintf(tail, sizeof tail,
                "  %llu devices: on-head %llu, behind %llu, unprovisioned %llu, "
                "stuck %llu; last commit t=%s; verified %s",
                static_cast<unsigned long long>(total),
                static_cast<unsigned long long>(ota.devices_on_head),
                static_cast<unsigned long long>(ota.devices_behind),
                static_cast<unsigned long long>(ota.devices_unprovisioned),
                static_cast<unsigned long long>(ota.devices_stuck),
                format_seconds(ota.last_commit_t_s).c_str(),
                ota.all_devices_verified ? "yes" : "NO");
  out << tail << "\n";
  return out.str();
}

std::string render_degradation(const DegradeFile& d) {
  std::ostringstream out;
  if (!d.enabled) {
    out << "degradation: the ladder was not enabled for this run\n";
    return out.str();
  }
  char head[224];
  std::snprintf(
      head, sizeof head,
      "degradation ladder (%s; windows exact %llu / sampled %llu / sketch "
      "%llu / summary %llu; %llu up, %llu down)",
      d.pin_level >= 0
          ? ("pinned L" + std::to_string(d.pin_level)).c_str()
          : "free-running",
      static_cast<unsigned long long>(d.windows_exact),
      static_cast<unsigned long long>(d.windows_sampled),
      static_cast<unsigned long long>(d.windows_sketch),
      static_cast<unsigned long long>(d.windows_summary),
      static_cast<unsigned long long>(d.transitions_up),
      static_cast<unsigned long long>(d.transitions_down));
  out << head << "\n";

  // Per-edge ladder strips: one character per time bucket, deeper rungs
  // darker (L0 '.', L1 '-', L2 '=', L3 '#'). The horizon covers the settle
  // tail, so a healthy edge always ends in '.'.
  double horizon = d.duration_s;
  for (const DegradeEdge& e : d.edges) {
    for (const DegradeTransition& t : e.transitions) {
      horizon = std::max(horizon, t.t_s);
    }
  }
  constexpr std::size_t kStripWidth = 48;
  constexpr char kLevelChar[4] = {'.', '-', '=', '#'};
  out << "ladder timeline (0.." << format_seconds(horizon) << ")\n";
  for (const DegradeEdge& e : d.edges) {
    std::string strip(kStripWidth, kLevelChar[0]);
    // Walk the step function transition by transition; the level before the
    // first move is that move's `from` rung.
    int level = e.transitions.empty() ? e.final_level : e.transitions.front().from;
    std::size_t bucket = 0;
    for (const DegradeTransition& t : e.transitions) {
      const auto until = horizon > 0.0
          ? std::min(kStripWidth, static_cast<std::size_t>(
                t.t_s / horizon * static_cast<double>(kStripWidth)))
          : kStripWidth;
      for (; bucket < until; ++bucket) {
        strip[bucket] = kLevelChar[std::clamp(level, 0, 3)];
      }
      level = t.to;
    }
    for (; bucket < kStripWidth; ++bucket) {
      strip[bucket] = kLevelChar[std::clamp(level, 0, 3)];
    }
    char line[224];
    std::snprintf(line, sizeof line,
                  "  edge %-3zu %s final L%d  t@[%s %s %s %s] %zu moves",
                  e.edge, strip.c_str(), e.final_level,
                  format_seconds(e.time_at_level_s[0]).c_str(),
                  format_seconds(e.time_at_level_s[1]).c_str(),
                  format_seconds(e.time_at_level_s[2]).c_str(),
                  format_seconds(e.time_at_level_s[3]).c_str(),
                  e.transitions.size());
    out << line << "\n";
  }

  char rows[224];
  std::snprintf(rows, sizeof rows,
                "rows: exact %llu, approx %llu (%llu sampled out); summaries "
                "%llu sent / %llu delivered, %llu B, %llu relays skipped",
                static_cast<unsigned long long>(d.rows_exact),
                static_cast<unsigned long long>(d.rows_approx),
                static_cast<unsigned long long>(d.rows_sampled_out),
                static_cast<unsigned long long>(d.summaries_sent),
                static_cast<unsigned long long>(d.summaries_delivered),
                static_cast<unsigned long long>(d.summary_bytes),
                static_cast<unsigned long long>(d.artifact_relays_skipped));
  out << rows << "\n";
  if (d.ci_windows > 0) {
    char ci[224];
    std::snprintf(ci, sizeof ci,
                  "error bound: 95%% CI covered %llu/%llu windows (%.1f%%), "
                  "mean half-width %.4f, mean |err| %.4f, max |err| %.4f",
                  static_cast<unsigned long long>(d.ci_covered),
                  static_cast<unsigned long long>(d.ci_windows),
                  100.0 * d.coverage, d.mean_half_width, d.mean_abs_error,
                  d.max_abs_error);
    out << ci << "\n";
  }
  if (!d.windows.empty()) {
    out << "window estimates";
    if (d.windows_truncated > 0) {
      out << " (first " << d.windows.size() << "; "
          << d.windows_truncated << " more truncated)";
    }
    out << "\n";
    constexpr std::size_t kWindowLimit = 8;
    for (std::size_t i = 0; i < d.windows.size() && i < kWindowLimit; ++i) {
      const DegradeWindow& w = d.windows[i];
      char line[224];
      std::snprintf(line, sizeof line,
                    "  t=%-8s edge %-3zu L%d %llu/%llu rows  est %.4f +/- "
                    "%.4f  exact %.4f  %s",
                    format_seconds(w.t_s).c_str(), w.edge, w.level,
                    static_cast<unsigned long long>(w.rows_used),
                    static_cast<unsigned long long>(w.rows_window),
                    w.estimate, w.half_width, w.exact,
                    w.covered ? "covered" : "MISSED");
      out << line << "\n";
    }
  }
  return out.str();
}

}  // namespace iotml::fleetscope
