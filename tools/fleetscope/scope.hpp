#pragma once

// fleetscope — offline reader for the fleet observatory's artifacts
// (timeseries.json, journeys.jsonl, flightrec.json; see DESIGN.md §13).
// Parses what src/obs wrote, reconstructs per-row device -> edge -> core
// journeys from the hop records, and renders operator-facing tables. The
// parsing layer is a deliberately small JSON reader: the artifacts are
// machine-written with fixed key order, but the reader tolerates any order.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace iotml::fleetscope {

// ---- Minimal JSON ----------------------------------------------------------

/// One parsed JSON value. Objects keep insertion order; numbers are doubles
/// (the artifacts never need 2^53+ integers except trace ids, which are
/// re-parsed from the raw text via u64 accessors below).
struct Json {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::uint64_t integer = 0;  ///< exact value when the literal was integral
  std::string str;
  std::vector<Json> arr;
  std::vector<std::pair<std::string, Json>> obj;

  const Json* find(const std::string& key) const;
  double num_or(const std::string& key, double fallback) const;
  std::uint64_t u64_or(const std::string& key, std::uint64_t fallback) const;
  std::string str_or(const std::string& key, const std::string& fallback) const;
};

/// Parse one JSON value from `text`. Returns false (and fills `error`) on
/// malformed input; trailing whitespace is allowed, trailing garbage is not.
bool parse_json(const std::string& text, Json& out, std::string& error);

// ---- Artifact models -------------------------------------------------------

/// One journeys.jsonl hop record (mirrors obs::HopRecord, strings for enums).
struct ScopeRecord {
  std::uint64_t trace = 0;
  std::uint32_t hop = 0;
  std::string kind;     ///< "origin" | "send" | "arrive"
  std::string stream;   ///< "rows" | "artifact" | "predictions"
  std::size_t src = 0;
  std::size_t dst = 0;
  double t0_s = 0.0;
  double t1_s = 0.0;
  std::size_t rows = 0;
  std::size_t bytes = 0;
  std::uint32_t attempts = 0;
  std::string outcome;
  std::vector<std::uint64_t> parents;
};

struct JourneyFile {
  bool meta_present = false;
  std::uint64_t meta_records = 0;  ///< records the writer claims it stored
  std::uint64_t meta_dropped = 0;  ///< appends shed past capacity
  std::vector<ScopeRecord> records;
};

/// Parse journeys.jsonl. Returns false (and fills `error`) if any line is
/// malformed; an empty stream is valid and yields an empty file.
bool parse_journeys(std::istream& in, JourneyFile& out, std::string& error);

/// One (metric, entity, tier) series from timeseries.json.
struct SeriesEntry {
  std::string metric;
  std::string entity;
  std::string tier;
  std::uint64_t total = 0;  ///< samples ever recorded (ring may have shed)
  std::vector<std::pair<double, double>> samples;  ///< (t_s, value), oldest first
};

struct SeriesFile {
  std::size_t capacity = 0;
  std::vector<SeriesEntry> series;
};

bool parse_timeseries(std::istream& in, SeriesFile& out, std::string& error);

/// One entity's flight-recorder ring from flightrec.json.
struct FlightEntity {
  std::size_t entity = 0;
  std::uint64_t total = 0;
  std::vector<std::string> lines;  ///< "t=<sec> <kind> a=<a> b=<b>", oldest first
};

struct FlightFile {
  std::size_t ring_capacity = 0;
  std::vector<FlightEntity> entities;
};

bool parse_flightrec(std::istream& in, FlightFile& out, std::string& error);

/// One per-epoch entry of ota.json's "epochs_log" (mirrors sim::OtaEpochEntry).
struct OtaEpoch {
  std::uint64_t epoch = 0;
  double t_s = 0.0;
  std::uint32_t version_id = 0;
  std::string outcome;  ///< provision|promote|rollback|no-change|...
  std::uint64_t train_rows = 0;
  std::uint64_t image_bytes = 0;
  std::uint64_t patch_bytes = 0;
  std::uint64_t delta_downlink_bytes = 0;
  std::uint64_t full_broadcast_bytes = 0;
  std::uint64_t canary_devices = 0;
  std::uint64_t devices_reporting = 0;
  double accuracy_old = 0.0;
  double accuracy_new = 0.0;
  std::uint64_t devices_updated = 0;
  std::uint64_t devices_rolled_back = 0;
  std::uint64_t full_fallbacks = 0;
  std::uint64_t devices_stuck = 0;
};

/// The OTA deploy ledger written as ota.json by a FleetSim run with
/// ota.enabled (the `versions` view's input).
struct OtaFile {
  bool enabled = false;
  std::uint64_t epochs = 0;
  std::uint64_t versions_published = 0;
  std::uint64_t delta_downlink_bytes = 0;
  std::uint64_t full_broadcast_bytes = 0;
  std::uint64_t probe_uplink_bytes = 0;
  std::uint64_t promotions = 0;
  std::uint64_t rollbacks = 0;
  double last_commit_t_s = 0.0;
  std::uint64_t devices_on_head = 0;
  std::uint64_t devices_behind = 0;
  std::uint64_t devices_unprovisioned = 0;
  std::uint64_t devices_stuck = 0;
  bool all_devices_verified = false;
  /// version id -> device count at end of run, ascending ids (0 = none).
  std::vector<std::pair<std::uint32_t, std::uint64_t>> version_histogram;
  std::vector<OtaEpoch> epochs_log;
};

bool parse_ota(std::istream& in, OtaFile& out, std::string& error);

/// One ladder move from degradation.json's per-edge timelines (mirrors
/// sim::DegradeTransitionEntry).
struct DegradeTransition {
  double t_s = 0.0;
  int from = 0;
  int to = 0;
};

/// One edge's ladder timeline (mirrors sim::EdgeDegradeTimeline).
struct DegradeEdge {
  std::size_t edge = 0;
  int final_level = 0;
  double time_at_level_s[4] = {0.0, 0.0, 0.0, 0.0};
  std::vector<DegradeTransition> transitions;
};

/// One ledgered approximate window answer (mirrors sim::WindowEstimate).
struct DegradeWindow {
  std::size_t edge = 0;
  double t_s = 0.0;
  int level = 0;
  std::uint64_t rows_window = 0;
  std::uint64_t rows_used = 0;
  double estimate = 0.0;
  double half_width = 0.0;
  double exact = 0.0;
  bool covered = false;
};

/// The graceful-degradation ledger written as degradation.json by a FleetSim
/// run with degrade.enabled (the `degradation` view's input; DESIGN.md §16).
struct DegradeFile {
  bool enabled = false;
  int pin_level = -1;
  double duration_s = 0.0;
  std::uint64_t rows_exact = 0;
  std::uint64_t rows_approx = 0;
  std::uint64_t rows_sampled_out = 0;
  std::uint64_t windows_exact = 0;
  std::uint64_t windows_sampled = 0;
  std::uint64_t windows_sketch = 0;
  std::uint64_t windows_summary = 0;
  std::uint64_t transitions_up = 0;
  std::uint64_t transitions_down = 0;
  std::uint64_t summaries_sent = 0;
  std::uint64_t summaries_delivered = 0;
  std::uint64_t summary_bytes = 0;
  std::uint64_t artifact_relays_skipped = 0;
  std::uint64_t ci_windows = 0;
  std::uint64_t ci_covered = 0;
  double coverage = 0.0;
  double mean_half_width = 0.0;
  double mean_abs_error = 0.0;
  double max_abs_error = 0.0;
  std::uint64_t windows_truncated = 0;
  std::vector<DegradeEdge> edges;
  std::vector<DegradeWindow> windows;
};

bool parse_degradation(std::istream& in, DegradeFile& out, std::string& error);

// ---- Journey reconstruction ------------------------------------------------

/// One origin window's reconstructed path through the tree. `hop0`/`hop1`
/// point at the delivered send that actually carried the window's rows on
/// that wire hop (null when the chain is broken there); `failed_frames`
/// counts sends carrying this window that did not deliver (timeouts, drops,
/// corruption, dead letters) — the retry/loss story of the journey.
struct Journey {
  std::uint64_t origin = 0;
  const ScopeRecord* origin_rec = nullptr;
  const ScopeRecord* hop0 = nullptr;
  const ScopeRecord* hop1 = nullptr;
  const ScopeRecord* core_arrival = nullptr;
  std::size_t failed_frames = 0;
  bool complete() const noexcept {
    return origin_rec != nullptr && hop0 != nullptr && hop1 != nullptr &&
           core_arrival != nullptr;
  }
  /// Flush-to-core latency; 0 unless complete.
  double end_to_end_s() const noexcept;
};

/// Row-stream completeness over the whole log. "Delivered" means the origin
/// window's rows reached an accepted core arrival; "complete" additionally
/// means every hop of the journey reconstructs (origin record + delivered,
/// accepted hop-0 and hop-1 sends naming the origin in their parents).
struct Completeness {
  std::size_t origins_total = 0;
  std::size_t origins_delivered = 0;
  std::size_t origins_complete = 0;
  std::uint64_t rows_delivered = 0;  ///< row-weighted, by origin window size
  std::uint64_t rows_complete = 0;

  double origin_fraction() const noexcept;
  double row_fraction() const noexcept;
};

/// Index over a parsed journey log. Holds pointers into the JourneyFile
/// passed to the constructor, which must outlive the reconstruction.
class Reconstruction {
 public:
  explicit Reconstruction(const JourneyFile& file);

  /// Delivered origin windows in trace-id order.
  const std::vector<Journey>& journeys() const noexcept { return journeys_; }
  const Completeness& completeness() const noexcept { return completeness_; }

  /// Count of (kind, outcome) pairs per stream, for the health table.
  const std::map<std::string, std::map<std::string, std::uint64_t>>& outcome_counts()
      const noexcept {
    return outcome_counts_;
  }

 private:
  std::vector<Journey> journeys_;
  Completeness completeness_;
  std::map<std::string, std::map<std::string, std::uint64_t>> outcome_counts_;
};

// ---- Rendering -------------------------------------------------------------

/// Human-readable journey chains for the first `limit` delivered origins.
std::string render_journeys(const Reconstruction& recon, std::size_t limit);

/// Per-metric heatmap: one row per (entity, tier), `columns` time buckets,
/// cell intensity proportional to the bucket's mean value relative to the
/// metric-wide max.
std::string render_heatmap(const SeriesFile& series, std::size_t columns);

/// Outcome counts, completeness fractions and flight-recorder totals.
std::string render_health(const JourneyFile& file, const Reconstruction& recon,
                          const FlightFile& flight);

/// Flight rings, newest `limit` entities with events.
std::string render_flight(const FlightFile& flight, std::size_t limit);

/// The `versions` view: per-epoch canary promote/rollback timeline plus the
/// end-of-run version-chain histogram, from the OTA deploy ledger.
std::string render_versions(const OtaFile& ota);

/// The `degradation` view: per-edge ladder timeline strips (one character
/// per time bucket, deeper rungs darker), the exact-vs-approximate window
/// split, CI coverage, and the first ledgered window estimates.
std::string render_degradation(const DegradeFile& degrade);

}  // namespace iotml::fleetscope
