// fleetscope — operator console for the fleet observatory (DESIGN.md §13).
//
//   fleetscope <artifact-dir> [--journeys N] [--flight N] [--columns N]
//       Read timeseries.json / journeys.jsonl / flightrec.json written by a
//       FleetSim run (ObservatoryConfig::artifact_dir) and print the health
//       summary, reconstructed device -> edge -> core journeys, per-tier
//       heatmap tables and flight-recorder rings.
//
//   fleetscope --self-check
//       Run a small compound-chaos fleet (partition + edge crash + 10%
//       corruption storm, ack transport, store-and-forward, checkpoints)
//       in-process with the observatory on, write its artifacts, read them
//       back through the same parsers the offline mode uses and verify that
//       at least 99% of delivered rows reconstruct a complete per-hop
//       journey. Exits non-zero on any failure — wired into ctest as
//       tools.fleetscope_selfcheck.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>

#include "scope.hpp"
#include "sim/fleet.hpp"

namespace {

using namespace iotml;

int usage() {
  std::fprintf(stderr,
               "usage: fleetscope <artifact-dir> [--journeys N] [--flight N] "
               "[--columns N]\n"
               "       fleetscope versions <artifact-dir>\n"
               "       fleetscope degradation <artifact-dir>\n"
               "       fleetscope --self-check\n");
  return 2;
}

bool load_artifacts(const std::string& dir, fleetscope::JourneyFile& journeys,
                    fleetscope::SeriesFile& series, fleetscope::FlightFile& flight) {
  std::string error;
  {
    std::ifstream in(dir + "/journeys.jsonl");
    if (!in) {
      std::fprintf(stderr, "fleetscope: cannot open %s/journeys.jsonl\n", dir.c_str());
      return false;
    }
    if (!fleetscope::parse_journeys(in, journeys, error)) {
      std::fprintf(stderr, "fleetscope: %s\n", error.c_str());
      return false;
    }
  }
  {
    std::ifstream in(dir + "/timeseries.json");
    if (!in) {
      std::fprintf(stderr, "fleetscope: cannot open %s/timeseries.json\n", dir.c_str());
      return false;
    }
    if (!fleetscope::parse_timeseries(in, series, error)) {
      std::fprintf(stderr, "fleetscope: %s\n", error.c_str());
      return false;
    }
  }
  {
    std::ifstream in(dir + "/flightrec.json");
    if (!in) {
      std::fprintf(stderr, "fleetscope: cannot open %s/flightrec.json\n", dir.c_str());
      return false;
    }
    if (!fleetscope::parse_flightrec(in, flight, error)) {
      std::fprintf(stderr, "fleetscope: %s\n", error.c_str());
      return false;
    }
  }
  return true;
}

// The `versions` view: render the OTA version-chain histogram and the
// canary promote/rollback timeline from <dir>/ota.json.
int scope_versions(const std::string& dir) {
  std::ifstream in(dir + "/ota.json");
  if (!in) {
    std::fprintf(stderr, "fleetscope: cannot open %s/ota.json (was the run "
                 "configured with ota.enabled?)\n", dir.c_str());
    return 1;
  }
  fleetscope::OtaFile ota;
  std::string error;
  if (!fleetscope::parse_ota(in, ota, error)) {
    std::fprintf(stderr, "fleetscope: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s", fleetscope::render_versions(ota).c_str());
  return 0;
}

// The `degradation` view: render the per-edge ladder timeline and the
// bounded-error ledger from <dir>/degradation.json.
int scope_degradation(const std::string& dir) {
  std::ifstream in(dir + "/degradation.json");
  if (!in) {
    std::fprintf(stderr, "fleetscope: cannot open %s/degradation.json (was "
                 "the run configured with degrade.enabled?)\n", dir.c_str());
    return 1;
  }
  fleetscope::DegradeFile degrade;
  std::string error;
  if (!fleetscope::parse_degradation(in, degrade, error)) {
    std::fprintf(stderr, "fleetscope: %s\n", error.c_str());
    return 1;
  }
  std::printf("%s", fleetscope::render_degradation(degrade).c_str());
  return 0;
}

int scope_dir(const std::string& dir, std::size_t journey_limit,
              std::size_t flight_limit, std::size_t columns) {
  fleetscope::JourneyFile journeys;
  fleetscope::SeriesFile series;
  fleetscope::FlightFile flight;
  if (!load_artifacts(dir, journeys, series, flight)) return 1;
  const fleetscope::Reconstruction recon(journeys);
  std::printf("%s\n", fleetscope::render_health(journeys, recon, flight).c_str());
  std::printf("%s\n", fleetscope::render_journeys(recon, journey_limit).c_str());
  std::printf("%s", fleetscope::render_heatmap(series, columns).c_str());
  std::printf("%s", fleetscope::render_flight(flight, flight_limit).c_str());
  return 0;
}

bool check(bool ok, const char* what) {
  std::printf("  [%s] %s\n", ok ? "ok" : "FAIL", what);
  return ok;
}

int self_check() {
  std::printf("fleetscope --self-check: compound chaos journey reconstruction\n");

  // The chaos mix from the acceptance criteria: a core partition, an edge
  // crash cycle and a 10% corruption storm, with the fault-tolerance stack
  // (ack transport, store-and-forward, checkpoints) turned on so rows keep
  // flowing through retries and drains — the hardest paths for provenance.
  sim::FleetConfig config;
  config.devices = 20;
  config.edges = 2;
  config.duration_s = 20.0;
  config.seed = 7;
  config.faults.edge_crashes = 1.0;
  config.faults.edge_downtime_mean_s = 3.0;
  config.chaos.partitions = 1.0;
  config.chaos.partition_mean_s = 4.0;
  config.chaos.corruption_storms = 1.0;
  config.chaos.storm_mean_s = 5.0;
  config.chaos.storm_corrupt_prob = 0.1;
  config.channel.mode = net::ChannelMode::kAckRetry;
  config.channel.ack_timeout_s = 0.1;
  config.channel.max_attempts = 6;
  config.checkpoint_interval_s = 2.0;
  config.device_buffer_rows = 4096;
  // The epochal OTA loop rides along so the `versions` view is exercised
  // against a ledger produced under the same chaos. Tight flush cadence so
  // the core has rows before the first epoch fires.
  config.device_flush_s = 2.0;
  config.edge_flush_s = 3.0;
  config.ota.enabled = true;
  config.ota.epochs = 3;
  config.observatory.enabled = true;
  const std::string dir = "fleetscope_selfcheck.artifacts";
  config.observatory.artifact_dir = dir;

  sim::FleetSim fleet(config);
  const sim::FleetReport report = fleet.run();

  bool ok = true;
  ok &= check(report.rows_delivered > 0, "run delivered rows");
  ok &= check(report.rows_conserved(), "row conservation held");
  ok &= check(report.faults.edge_crashes + report.faults.partitions +
                      report.faults.corruption_storms >
                  0,
              "chaos actually fired");

  fleetscope::JourneyFile journeys;
  fleetscope::SeriesFile series;
  fleetscope::FlightFile flight;
  ok &= check(load_artifacts(dir, journeys, series, flight),
              "artifacts parse through the offline readers");
  if (!ok) return 1;

  ok &= check(journeys.meta_present && journeys.meta_dropped == 0,
              "journey log shed no records");
  ok &= check(journeys.meta_records == journeys.records.size(),
              "journey record count matches the writer's meta line");
  ok &= check(!series.series.empty(), "time-series artifact has series");
  ok &= check(!flight.entities.empty(), "flight recorder noted events");
  ok &= check(!report.faults.flight_dumps.empty(),
              "fault triggers dumped flight rings into the report");

  const fleetscope::Reconstruction recon(journeys);
  const fleetscope::Completeness& c = recon.completeness();
  std::printf(
      "  journeys: %zu origins, %zu delivered, %zu complete "
      "(rows %llu/%llu = %.2f%%)\n",
      c.origins_total, c.origins_delivered, c.origins_complete,
      static_cast<unsigned long long>(c.rows_complete),
      static_cast<unsigned long long>(c.rows_delivered), 100.0 * c.row_fraction());
  ok &= check(c.origins_delivered > 0, "delivered origins exist to reconstruct");
  ok &= check(c.row_fraction() >= 0.99,
              "at least 99% of delivered rows reconstruct a full journey");

  // The versions view parses the same ota.json the offline mode reads and
  // must agree with the in-process ledger.
  fleetscope::OtaFile ota;
  {
    std::ifstream in(dir + "/ota.json");
    std::string error;
    ok &= check(static_cast<bool>(in), "ota.json written");
    ok &= check(static_cast<bool>(in) && fleetscope::parse_ota(in, ota, error),
                "ota.json parses through the offline reader");
  }
  const sim::OtaSummary& ledger = report.deploy.ota;
  ok &= check(ota.enabled, "ota ledger marked enabled");
  ok &= check(ota.epochs_log.size() == static_cast<std::size_t>(ledger.epochs),
              "versions view sees one entry per epoch");
  std::uint64_t histogram_devices = 0;
  for (const auto& [id, count] : ota.version_histogram) histogram_devices += count;
  ok &= check(histogram_devices == config.devices,
              "version histogram accounts for every device");
  ok &= check(ota.all_devices_verified,
              "every device ends on a checksum-verified version");
  ok &= check(ota.delta_downlink_bytes == ledger.delta_downlink_bytes &&
                  ota.promotions == ledger.promotions &&
                  ota.rollbacks == ledger.rollbacks,
              "versions view agrees with the in-process ledger");

  std::printf("%s", fleetscope::render_health(journeys, recon, flight).c_str());
  std::printf("%s", fleetscope::render_versions(ota).c_str());

  // A second small fleet exercises the degradation ladder (DESIGN.md §16):
  // a load storm over a shallow ack queue with bands tight enough that the
  // ladder must move, then the offline degradation.json reader is checked
  // against the in-process ledger field by field.
  {
    sim::FleetConfig dcfg;
    dcfg.devices = 20;
    dcfg.edges = 2;
    dcfg.duration_s = 30.0;
    dcfg.seed = 7;
    dcfg.channel.mode = net::ChannelMode::kAckRetry;
    dcfg.channel.queue_capacity = 2;
    dcfg.checkpoint_interval_s = 2.0;
    dcfg.device_buffer_rows = 4096;
    dcfg.chaos.partitions = 1.0;
    dcfg.chaos.partition_mean_s = 4.0;
    dcfg.chaos.loss_bursts = 1.0;
    dcfg.chaos.burst_mean_s = 3.0;
    dcfg.chaos.load_storms = 3.0;
    dcfg.chaos.load_storm_mean_s = 6.0;
    dcfg.chaos.load_storm_factor = 6.0;
    dcfg.degrade.enabled = true;
    dcfg.degrade.dead_letter_rate_ref = 0.25;
    dcfg.degrade.thresholds.up = {0.2, 0.6, 1.2};
    dcfg.degrade.thresholds.down = {0.1, 0.4, 0.9};
    dcfg.degrade.thresholds.dwell_s = 3.0;
    dcfg.observatory.enabled = true;
    const std::string ddir = "fleetscope_selfcheck.degrade.artifacts";
    dcfg.observatory.artifact_dir = ddir;
    sim::FleetSim dfleet(dcfg);
    const sim::FleetReport dreport = dfleet.run();
    const sim::DegradationLedger& dledger = dreport.degradation;

    fleetscope::DegradeFile degrade;
    {
      std::ifstream in(ddir + "/degradation.json");
      std::string error;
      ok &= check(static_cast<bool>(in), "degradation.json written");
      ok &= check(static_cast<bool>(in) &&
                      fleetscope::parse_degradation(in, degrade, error),
                  "degradation.json parses through the offline reader");
    }
    ok &= check(dreport.rows_conserved(),
                "degraded run's conservation ledger closes");
    ok &= check(dledger.transitions_up > 0, "the ladder actually moved");
    ok &= check(degrade.enabled, "degradation ledger marked enabled");
    std::uint64_t moves = 0;
    for (const fleetscope::DegradeEdge& e : degrade.edges) {
      moves += e.transitions.size();
    }
    ok &= check(degrade.edges.size() == dledger.edges.size() &&
                    moves == dledger.transitions_up + dledger.transitions_down,
                "degradation view sees every ladder move");
    ok &= check(degrade.rows_exact == dledger.rows_exact &&
                    degrade.rows_approx == dledger.rows_approx &&
                    degrade.rows_sampled_out == dledger.rows_sampled_out &&
                    degrade.transitions_up == dledger.transitions_up &&
                    degrade.transitions_down == dledger.transitions_down &&
                    degrade.summaries_sent == dledger.summaries_sent &&
                    degrade.ci_windows == dledger.ci_windows &&
                    degrade.ci_covered == dledger.ci_covered &&
                    degrade.windows.size() == dledger.windows.size(),
                "degradation view agrees with the in-process ledger");
    bool settled = true;
    for (const fleetscope::DegradeEdge& e : degrade.edges) {
      settled = settled && e.final_level == 0;
    }
    ok &= check(settled, "every edge settled back to L0");
    std::printf("%s", fleetscope::render_degradation(degrade).c_str());
  }

  std::printf("self-check %s\n", ok ? "PASSED" : "FAILED");
  return ok ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  std::size_t journey_limit = 3;
  std::size_t flight_limit = 4;
  std::size_t columns = 40;
  bool run_self_check = false;
  bool versions_view = false;
  bool degradation_view = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_size = [&](std::size_t& out) {
      if (i + 1 >= argc) return false;
      out = static_cast<std::size_t>(std::strtoull(argv[++i], nullptr, 10));
      return out > 0;
    };
    if (arg == "--self-check") {
      run_self_check = true;
    } else if (arg == "versions" && !versions_view && !degradation_view &&
               dir.empty()) {
      versions_view = true;
    } else if (arg == "degradation" && !versions_view && !degradation_view &&
               dir.empty()) {
      degradation_view = true;
    } else if (arg == "--journeys") {
      if (!next_size(journey_limit)) return usage();
    } else if (arg == "--flight") {
      if (!next_size(flight_limit)) return usage();
    } else if (arg == "--columns") {
      if (!next_size(columns)) return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (dir.empty()) {
      dir = arg;
    } else {
      return usage();
    }
  }

  if (run_self_check) return self_check();
  if (dir.empty()) return usage();
  if (versions_view) return scope_versions(dir);
  if (degradation_view) return scope_degradation(dir);
  return scope_dir(dir, journey_limit, flight_limit, columns);
}
