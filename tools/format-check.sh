#!/usr/bin/env bash
# Check that all tracked C++ sources match .clang-format (no files modified).
#
#   tools/format-check.sh          report drift, exit 1 if any
#   tools/format-check.sh --fix    rewrite files in place instead
#
# Exits 77 (conventional SKIP) when clang-format is not installed, so local
# minimal containers are not blocked; CI installs clang-format and treats any
# non-zero exit as a failure.
set -euo pipefail

cd "$(dirname "$0")/.."

CLANG_FORMAT=""
for candidate in clang-format clang-format-19 clang-format-18 clang-format-17 \
                 clang-format-16 clang-format-15; do
  if command -v "$candidate" > /dev/null 2>&1; then
    CLANG_FORMAT="$candidate"
    break
  fi
done

if [[ -z "$CLANG_FORMAT" ]]; then
  echo "format-check: clang-format not installed; skipping" >&2
  exit 77
fi

# tests/detlint/cases/ holds fixture *inputs* whose golden diagnostics pin
# exact line numbers; reformatting them would silently invalidate the goldens.
mapfile -t files < <(git ls-files '*.cpp' '*.hpp' ':!:tests/detlint/cases/*')
if [[ ${#files[@]} -eq 0 ]]; then
  echo "format-check: no C++ sources tracked" >&2
  exit 0
fi

if [[ "${1:-}" == "--fix" ]]; then
  "$CLANG_FORMAT" -i "${files[@]}"
  echo "format-check: reformatted ${#files[@]} files"
  exit 0
fi

# --dry-run --Werror makes clang-format exit non-zero per drifting file.
status=0
for f in "${files[@]}"; do
  if ! "$CLANG_FORMAT" --dry-run --Werror "$f" > /dev/null 2>&1; then
    echo "format-check: needs formatting: $f"
    status=1
  fi
done

if [[ $status -eq 0 ]]; then
  echo "format-check: ${#files[@]} files clean"
else
  echo "format-check: run tools/format-check.sh --fix" >&2
fi
exit $status
