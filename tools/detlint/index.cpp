#include "index.hpp"

#include <algorithm>
#include <cstddef>
#include <deque>

namespace detlint {

namespace {

const std::set<std::string> kUnorderedNames = {"unordered_map", "unordered_set",
                                               "unordered_multimap", "unordered_multiset"};
const std::set<std::string> kFloatNames = {"float", "double"};
const std::set<std::string> kPostQualifiers = {"const", "noexcept", "override",
                                               "final", "mutable", "constexpr"};

bool is_punct(const Token& t, const char* s) { return t.kind == Tok::kPunct && t.text == s; }
bool is_ident(const Token& t, const char* s) { return t.kind == Tok::kIdent && t.text == s; }

std::string trim(const std::string& s) {
  std::size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  std::size_t e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

/// Index of the token after the group opened at `open` (handles '(', '{',
/// '[' and '<'; '>>' closes two angle levels). Returns tokens.size() when
/// unbalanced; for '<' also bails at ';' (relational operator, not a
/// template argument list).
std::size_t skip_group(const std::vector<Token>& toks, std::size_t open) {
  const std::string& o = toks[open].text;
  const bool angle = o == "<";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (toks[i].kind != Tok::kPunct) continue;
    if (t == o || (angle && t == "<")) {
      ++depth;
    } else if (!angle && ((o == "(" && t == ")") || (o == "{" && t == "}") ||
                          (o == "[" && t == "]"))) {
      if (--depth == 0) return i + 1;
    } else if (angle && t == ">") {
      if (--depth == 0) return i + 1;
    } else if (angle && t == ">>") {
      depth -= 2;
      if (depth <= 0) return i + 1;
    } else if (angle && (t == ";" || t == "{")) {
      return i;  // was a comparison after all
    }
  }
  return toks.size();
}

/// After a type name (and its template argument list), step over the
/// ref/pointer/const decorations and any template closers to land on the
/// declared identifier, if the shape is a declaration.
std::size_t skip_decoration(const std::vector<Token>& toks, std::size_t i) {
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (is_punct(t, ">") || is_punct(t, ">>") || is_punct(t, "&") || is_punct(t, "*") ||
        is_ident(t, "const")) {
      ++i;
      continue;
    }
    break;
  }
  return i;
}

bool decl_terminator(const Token& t) {
  return is_punct(t, ";") || is_punct(t, "=") || is_punct(t, ",") || is_punct(t, ")") ||
         is_punct(t, "{") || is_punct(t, "(") || is_punct(t, ":");
}

}  // namespace

const std::set<std::string>& report_type_names() {
  static const std::set<std::string> names = {"BenchReport", "FleetReport", "StageReport",
                                              "FaultLedger", "DeploySummary", "LinkReport",
                                              "LatencySummary"};
  return names;
}

FileIndex index_file(LexedFile lx) {
  FileIndex out;
  out.lx = std::move(lx);
  const std::vector<Token>& toks = out.lx.tokens;

  // Annotations, straight off the comment stream.
  for (const Comment& c : out.lx.comments) {
    const std::string body = trim(c.text);
    if (body.rfind("rng-stream:", 0) == 0) {
      std::string rest = trim(body.substr(11));
      const std::size_t sp = rest.find_first_of(" \t");
      out.rng_streams.push_back(RngAnnotation{c.line, sp == std::string::npos
                                                          ? rest
                                                          : rest.substr(0, sp)});
    } else if (body.rfind("det-sanctioned", 0) == 0) {
      std::string reason;
      bool malformed = true;
      const std::size_t colon = body.find(':');
      if (colon != std::string::npos) {
        reason = trim(body.substr(colon + 1));
        malformed = reason.empty();
      }
      out.sanctions.push_back(Sanction{c.line, reason, malformed});
    }
  }

  // Declarations: coarse type tags for unordered containers, floats and
  // report types. A nested `vector<unordered_set<...>>` tags the outer
  // variable — order still leaks through element iteration.
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    const std::string& name = toks[i].text;
    TypeTag tag = TypeTag::kNone;
    if (kUnorderedNames.count(name) != 0) {
      tag = TypeTag::kUnordered;
    } else if (kFloatNames.count(name) != 0) {
      tag = TypeTag::kFloat;
    } else if (report_type_names().count(name) != 0) {
      if (i > 0 && (is_ident(toks[i - 1], "class") || is_ident(toks[i - 1], "struct"))) continue;
      tag = TypeTag::kReport;
    }
    if (tag == TypeTag::kNone) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && is_punct(toks[j], "<")) j = skip_group(toks, j);
    j = skip_decoration(toks, j);
    if (j + 1 >= toks.size() || toks[j].kind != Tok::kIdent) continue;
    if (decl_terminator(toks[j + 1])) {
      VarDecl decl{tag, tag == TypeTag::kReport ? name : "", toks[j].line};
      if (is_punct(toks[j + 1], "(")) {
        // `T name(...)` — a function returning T (or a paren-init variable;
        // either way, iterating its result iterates a T).
        out.returns[toks[j].text] = decl;
      } else {
        out.vars[toks[j].text] = decl;
        if (tag == TypeTag::kUnordered) out.unordered_decl_lines.push_back(toks[j].line);
      }
    }
  }

  // Functions. One linear scan; recorded bodies are skipped whole so nested
  // constructs (lambdas, local classes) attribute to the enclosing function.
  struct ClassScope {
    std::string name;
    int depth = 0;
  };
  std::vector<ClassScope> classes;
  int depth = 0;
  std::size_t i = 0;
  while (i < toks.size()) {
    const Token& t = toks[i];
    if (is_punct(t, "{")) {
      ++depth;
      ++i;
      continue;
    }
    if (is_punct(t, "}")) {
      --depth;
      while (!classes.empty() && classes.back().depth > depth) classes.pop_back();
      ++i;
      continue;
    }
    if ((is_ident(t, "class") || is_ident(t, "struct")) && i + 1 < toks.size() &&
        toks[i + 1].kind == Tok::kIdent) {
      const bool enum_class = i > 0 && is_ident(toks[i - 1], "enum");
      const bool template_param =
          i > 0 && (is_punct(toks[i - 1], "<") || is_punct(toks[i - 1], ","));
      if (!enum_class && !template_param) {
        // Scan past the base clause for the class body '{' (or ';' fwd decl).
        std::size_t j = i + 2;
        while (j < toks.size() && !is_punct(toks[j], "{") && !is_punct(toks[j], ";")) {
          if (is_punct(toks[j], "<") || is_punct(toks[j], "(")) {
            j = skip_group(toks, j);
            continue;
          }
          ++j;
        }
        if (j < toks.size() && is_punct(toks[j], "{")) {
          classes.push_back(ClassScope{toks[i + 1].text, depth + 1});
        }
      }
      ++i;
      continue;
    }

    // Candidate function head: identifier immediately followed by '('.
    if (t.kind == Tok::kIdent && !is_control_keyword(t.text) && i + 1 < toks.size() &&
        is_punct(toks[i + 1], "(") &&
        !(i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")))) {
      const std::size_t after_params = skip_group(toks, i + 1);
      std::size_t j = after_params;
      bool saw_colon = false;
      std::size_t body = 0;
      for (int steps = 0; j < toks.size() && steps < 200; ++steps) {
        const Token& p = toks[j];
        if (is_punct(p, ";") || is_punct(p, "=")) break;  // declaration / = default
        if (is_punct(p, "(")) {
          j = skip_group(toks, j);
          continue;
        }
        if (is_punct(p, "{")) {
          // In a ctor-init list, `member{...}` braces belong to an
          // initializer when they follow the member's identifier.
          if (saw_colon && j > 0 && toks[j - 1].kind == Tok::kIdent &&
              kPostQualifiers.count(toks[j - 1].text) == 0) {
            j = skip_group(toks, j);
            continue;
          }
          body = j;
          break;
        }
        if (is_punct(p, ":")) saw_colon = true;
        ++j;
      }
      if (body != 0) {
        Function fn;
        fn.name = t.text;
        fn.line = t.line;
        fn.head = i;
        fn.body_begin = body;
        fn.body_end = skip_group(toks, body) - 1;
        if (i >= 2 && is_punct(toks[i - 1], "::") && toks[i - 2].kind == Tok::kIdent) {
          fn.klass = toks[i - 2].text;
        } else if (!classes.empty()) {
          fn.klass = classes.back().name;
        }
        for (std::size_t k = fn.body_begin + 1; k < fn.body_end && k + 1 < toks.size(); ++k) {
          if (toks[k].kind == Tok::kIdent && !is_control_keyword(toks[k].text) &&
              is_punct(toks[k + 1], "(")) {
            fn.calls.push_back(CallSite{toks[k].text, toks[k].line});
          }
        }
        out.functions.push_back(std::move(fn));
        i = out.functions.back().body_end + 1;  // bodies are opaque to head scan
        continue;
      }
    }
    ++i;
  }
  return out;
}

void RepoIndex::build(const std::vector<std::pair<std::string, std::string>>& sources) {
  files_.reserve(sources.size());
  for (const auto& [path, content] : sources) {
    by_path_[path] = static_cast<int>(files_.size());
    files_.push_back(index_file(lex_file(path, content)));
  }
  for (int id = 0; id < static_cast<int>(files_.size()); ++id) {
    for (std::size_t f = 0; f < files_[id].functions.size(); ++f) {
      by_name_[files_[id].functions[f].name].push_back({id, static_cast<int>(f)});
    }
  }
  // Cycle-tolerant BFS include closures.
  closures_.resize(files_.size());
  for (int id = 0; id < static_cast<int>(files_.size()); ++id) {
    std::set<int> seen{id};
    std::deque<int> queue{id};
    while (!queue.empty()) {
      const int cur = queue.front();
      queue.pop_front();
      closures_[id].push_back(cur);
      for (const std::string& inc : files_[cur].lx.includes) {
        const int dep = resolve_include(cur, inc);
        if (dep >= 0 && seen.insert(dep).second) queue.push_back(dep);
      }
    }
  }
}

int RepoIndex::resolve_include(int from, const std::string& inc) const {
  const std::string& path = files_[from].lx.path;
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "" : path.substr(0, slash + 1);
  for (const std::string& candidate : {dir + inc, "src/" + inc, inc}) {
    const auto it = by_path_.find(candidate);
    if (it != by_path_.end()) return it->second;
  }
  return -1;
}

VarDecl RepoIndex::lookup_var(int file_id, const std::string& name) const {
  for (int id : closures_[file_id]) {
    const auto it = files_[id].vars.find(name);
    if (it != files_[id].vars.end()) return it->second;
  }
  return VarDecl{};
}

VarDecl RepoIndex::lookup_return(int file_id, const std::string& name) const {
  for (int id : closures_[file_id]) {
    const auto it = files_[id].returns.find(name);
    if (it != files_[id].returns.end()) return it->second;
  }
  return VarDecl{};
}

const std::vector<std::pair<int, int>>& RepoIndex::functions_named(const std::string& name) const {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? empty_ : it->second;
}

const Sanction* RepoIndex::sanction_for(int file_id, int line) const {
  for (const Sanction& s : files_[file_id].sanctions) {
    if (!s.malformed && (s.line == line || s.line == line - 1)) return &s;
  }
  return nullptr;
}

}  // namespace detlint
