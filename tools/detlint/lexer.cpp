#include "lexer.hpp"

#include <cctype>
#include <cstddef>
#include <set>

namespace detlint {

namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

// Multi-character operators the rules care about. Longest-match first; any
// other punctuation is emitted one character at a time.
const char* const kMultiOps[] = {"::", "->", "+=", "-=", "*=", "/=", "==", "!=",
                                 "<=", ">=", "&&", "||", "<<", ">>", "++", "--"};

void push_comment_lines(LexedFile& out, int line, const std::string& body) {
  // Split a (possibly multi-line) comment body into per-line Comment records.
  std::size_t start = 0;
  int l = line;
  while (start <= body.size()) {
    const std::size_t nl = body.find('\n', start);
    const std::size_t end = nl == std::string::npos ? body.size() : nl;
    out.comments.push_back(Comment{l, body.substr(start, end - start)});
    if (nl == std::string::npos) break;
    start = nl + 1;
    ++l;
  }
}

}  // namespace

bool is_control_keyword(const std::string& ident) {
  static const std::set<std::string> kw = {"if", "for", "while", "switch", "catch", "return",
                                           "sizeof", "throw", "new", "delete", "alignof",
                                           "decltype", "static_assert", "noexcept"};
  return kw.count(ident) != 0;
}

LexedFile lex_file(const std::string& path, const std::string& content) {
  LexedFile out;
  out.path = path;
  const std::size_t n = content.size();
  std::size_t i = 0;
  int line = 1;

  auto advance_over = [&](std::size_t to) {
    for (; i < to && i < n; ++i) {
      if (content[i] == '\n') ++line;
    }
  };

  while (i < n) {
    const char c = content[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }

    // Preprocessor directive: record quoted includes, swallow the rest of the
    // (continuation-extended) line. Directives never reach the token stream.
    if (c == '#') {
      const int start_line = line;
      std::size_t j = i + 1;
      while (j < n && (content[j] == ' ' || content[j] == '\t')) ++j;
      std::size_t k = j;
      while (k < n && ident_char(content[k])) ++k;
      const std::string directive = content.substr(j, k - j);
      // Find the directive end, honoring backslash continuations.
      std::size_t end = i;
      while (end < n) {
        if (content[end] == '\n' && (end == 0 || content[end - 1] != '\\')) break;
        ++end;
      }
      if (directive == "include") {
        std::size_t q = k;
        while (q < end && content[q] != '"' && content[q] != '<') ++q;
        if (q < end && content[q] == '"') {
          const std::size_t close = content.find('"', q + 1);
          if (close != std::string::npos && close < end) {
            out.includes.push_back(content.substr(q + 1, close - q - 1));
            out.include_lines.push_back(start_line);
          }
        }
      }
      advance_over(end);
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '/') {
      std::size_t end = content.find('\n', i);
      if (end == std::string::npos) end = n;
      out.comments.push_back(Comment{line, content.substr(i + 2, end - i - 2)});
      i = end;
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < n && content[i + 1] == '*') {
      std::size_t end = content.find("*/", i + 2);
      const std::size_t body_end = end == std::string::npos ? n : end;
      push_comment_lines(out, line, content.substr(i + 2, body_end - i - 2));
      advance_over(end == std::string::npos ? n : end + 2);
      continue;
    }

    // Raw string literal: R"delim( ... )delim" (with optional prefixes).
    if (c == 'R' && i + 1 < n && content[i + 1] == '"') {
      std::size_t d = i + 2;
      while (d < n && content[d] != '(' && content[d] != '\n') ++d;
      if (d < n && content[d] == '(') {
        const std::string delim = ")" + content.substr(i + 2, d - i - 2) + "\"";
        std::size_t end = content.find(delim, d + 1);
        const std::size_t body_end = end == std::string::npos ? n : end;
        const std::size_t close = end == std::string::npos ? n : end + delim.size();
        out.tokens.push_back(Token{Tok::kString, content.substr(d + 1, body_end - d - 1), line});
        advance_over(close);
        continue;
      }
    }

    // Ordinary string / char literal (handles \" and \\ escapes).
    if (c == '"' || c == '\'') {
      const int start_line = line;
      std::size_t j = i + 1;
      while (j < n) {
        if (content[j] == '\\') {
          j += 2;
          continue;
        }
        if (content[j] == c) break;
        if (content[j] == '\n') break;  // unterminated: close at EOL
        ++j;
      }
      const std::size_t close = j < n ? j + 1 : n;
      out.tokens.push_back(Token{c == '"' ? Tok::kString : Tok::kChar,
                                 content.substr(i + 1, (j < n ? j : n) - i - 1), start_line});
      advance_over(close);
      continue;
    }

    // Identifier / keyword (also catches string-literal prefixes like u8"...":
    // the prefix lexes as an identifier, the literal as a string — harmless).
    if (ident_start(c)) {
      std::size_t j = i;
      while (j < n && ident_char(content[j])) ++j;
      out.tokens.push_back(Token{Tok::kIdent, content.substr(i, j - i), line});
      i = j;
      continue;
    }

    // Number: digits plus the usual literal alphabet (hex, exponents, digit
    // separators, suffixes). Sign characters only after an exponent marker.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(content[i + 1])))) {
      std::size_t j = i;
      while (j < n) {
        const char d = content[j];
        if (ident_char(d) || d == '.' || d == '\'') {
          ++j;
          continue;
        }
        if ((d == '+' || d == '-') && j > i) {
          const char prev = content[j - 1];
          if (prev == 'e' || prev == 'E' || prev == 'p' || prev == 'P') {
            ++j;
            continue;
          }
        }
        break;
      }
      out.tokens.push_back(Token{Tok::kNumber, content.substr(i, j - i), line});
      i = j;
      continue;
    }

    // Punctuation: longest known multi-char operator wins.
    std::string op(1, c);
    for (const char* multi : kMultiOps) {
      const std::size_t len = std::char_traits<char>::length(multi);
      if (content.compare(i, len, multi) == 0) {
        op = multi;
        break;
      }
    }
    out.tokens.push_back(Token{Tok::kPunct, op, line});
    i += op.size();
  }
  return out;
}

}  // namespace detlint
