#pragma once

// detlint index — per-file symbol/function extraction and the repo-wide
// quoted-include graph + translation-unit closures the rules run over.
//
// The index is deliberately heuristic (no preprocessor, no template
// instantiation): it tracks exactly the coarse facts the determinism rules
// need — which names are unordered containers / floats / report types, where
// functions begin and end, what each function calls, and which annotation
// comments anchor to which line. Anything it cannot classify it leaves
// untagged, and the rules treat untagged as "not proven nondeterministic".

#include <cstddef>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace detlint {

struct CallSite {
  std::string name;
  int line = 0;
};

struct Function {
  std::string name;   ///< unqualified name
  std::string klass;  ///< qualifying or enclosing class name ("" if free)
  int line = 0;
  std::size_t head = 0;        ///< token index of the name
  std::size_t body_begin = 0;  ///< token index of the opening '{'
  std::size_t body_end = 0;    ///< token index of the matching '}'
  std::vector<CallSite> calls;
};

/// `// rng-stream: <name> [free-form note]` annotation.
struct RngAnnotation {
  int line = 0;
  std::string name;
};

/// `// det-sanctioned: <reason>` annotation. A sanction with an empty reason
/// is recorded with malformed=true — it suppresses nothing and draws DET0.
struct Sanction {
  int line = 0;
  std::string reason;
  bool malformed = false;
};

/// Coarse type tags the rules dispatch on.
enum class TypeTag { kNone, kUnordered, kFloat, kReport };

struct VarDecl {
  TypeTag tag = TypeTag::kNone;
  std::string type_name;  ///< the concrete report type for kReport
  int line = 0;
};

struct FileIndex {
  LexedFile lx;
  std::vector<Function> functions;
  std::vector<RngAnnotation> rng_streams;
  std::vector<Sanction> sanctions;
  std::map<std::string, VarDecl> vars;       ///< declared names -> coarse tag
  std::map<std::string, VarDecl> returns;    ///< function name -> return tag
  std::vector<int> unordered_decl_lines;     ///< every unordered decl site
};

class RepoIndex {
 public:
  /// Index the given (path, content) pairs; paths are root-relative.
  void build(const std::vector<std::pair<std::string, std::string>>& sources);

  const std::vector<FileIndex>& files() const { return files_; }

  /// Transitive quoted-include closure of file `id` (cycle-tolerant),
  /// including the file itself.
  const std::vector<int>& closure(int id) const { return closures_[id]; }

  /// Look `name` up across the closure of `file_id`. Tagged declarations win
  /// over untagged ones so a TU-wide search never loses the one decl that
  /// matters.
  VarDecl lookup_var(int file_id, const std::string& name) const;
  VarDecl lookup_return(int file_id, const std::string& name) const;

  /// All indexed functions named `name` as (file id, function index) pairs.
  const std::vector<std::pair<int, int>>& functions_named(const std::string& name) const;

  /// Sanction anchored at `line` or the line above (own-line comment form).
  const Sanction* sanction_for(int file_id, int line) const;

 private:
  int resolve_include(int from, const std::string& inc) const;

  std::vector<FileIndex> files_;
  std::map<std::string, int> by_path_;
  std::vector<std::vector<int>> closures_;
  std::map<std::string, std::vector<std::pair<int, int>>> by_name_;
  std::vector<std::pair<int, int>> empty_;
};

/// Extract functions, declarations, calls and annotations from one lexed
/// file. Exposed for the indexer and for unit-style fixtures.
FileIndex index_file(LexedFile lx);

/// Report types whose instances must stay a pure function of (config, seed).
const std::set<std::string>& report_type_names();

}  // namespace detlint
