#pragma once

// detlint — a real C++ lexer (comments, strings, raw strings, char literals,
// preprocessor lines all handled correctly, unlike the regex rules in
// tools/lint_invariants.py). Produces a token stream plus a separate comment
// stream: the rules read code structure from the tokens and annotations
// (`// det-sanctioned: ...`, `// rng-stream: ...`) from the comments, so an
// annotation inside a string literal can never sanction anything.

#include <string>
#include <vector>

namespace detlint {

enum class Tok {
  kIdent,   // identifiers and keywords
  kNumber,  // numeric literals (integer/float, any base/suffix)
  kString,  // "..." and R"delim(...)delim" (text excludes the quotes)
  kChar,    // '...'
  kPunct,   // operators and punctuation, multi-char ops kept together
};

struct Token {
  Tok kind = Tok::kPunct;
  std::string text;
  int line = 0;
};

/// One // or /* */ comment; text is the body without the comment markers,
/// with a multi-line /* */ body contributing one Comment per line so
/// line-anchored annotations stay line-accurate.
struct Comment {
  int line = 0;
  std::string text;
};

/// A lexed translation-unit fragment (one source file).
struct LexedFile {
  std::string path;                   ///< as given to lex_file (repo-relative)
  std::vector<Token> tokens;          ///< code tokens, comments stripped
  std::vector<Comment> comments;      ///< comment bodies, line-anchored
  std::vector<std::string> includes;  ///< quoted-include operands, in order
  std::vector<int> include_lines;     ///< matching 1-based line numbers
};

/// Lex `content`. Never throws on malformed input: an unterminated literal or
/// comment is closed at end-of-file (detlint must tolerate any source the
/// compiler itself would reject, since it runs pre-build).
LexedFile lex_file(const std::string& path, const std::string& content);

/// True for C++ keywords that can precede `(` without being a call or a
/// function definition head (if/for/while/switch/catch/return/sizeof/...).
bool is_control_keyword(const std::string& ident);

}  // namespace detlint
