#pragma once

// detlint rules — flow-aware determinism checks over the repo index.
//
//   DET0  malformed annotation (det-sanctioned without a reason)
//   DET1  unordered-container order leaking toward report/JSON emission
//   DET2  Rng stream discipline (annotation, uniqueness, append-only order)
//   DET3  clock taint reaching report fields outside deterministic-mode
//   DET4  float reduction inside unordered iteration
//
// A `// det-sanctioned: <reason>` comment on the finding's line (or the line
// above) suppresses it; the reason is mandatory.

#include <map>
#include <string>
#include <vector>

#include "index.hpp"

namespace detlint {

struct Diagnostic {
  std::string file;
  int line = 0;
  int rule = 0;  // 0..4
  std::string message;
};

struct RuleOptions {
  /// rng-stream manifest: context key ("file::Class::function" or
  /// "file::<decls>") -> pinned ordered stream names. Empty map = no
  /// manifest loaded, append-only ordering not checked.
  std::map<std::string, std::vector<std::string>> rng_manifest;
  bool have_manifest = false;
};

/// Run every rule; returns diagnostics sorted by (file, line, rule, message)
/// and deduplicated, so output is byte-stable for golden comparison.
std::vector<Diagnostic> run_rules(const RepoIndex& idx, const RuleOptions& opt);

/// Current ordered rng-stream names per context, for --update-rng-manifest.
std::map<std::string, std::vector<std::string>> collect_rng_streams(const RepoIndex& idx);

/// Human-oriented documentation of every rule (--explain).
std::string rule_explanations();

}  // namespace detlint
