// detlint — flow-aware determinism & invariant analyzer for the fleet runtime.
//
// Usage:
//   detlint [--root DIR] [--json] [--explain]
//           [--rng-manifest FILE] [--update-rng-manifest]
//
// Scans DIR/src, DIR/bench and DIR/examples (root-relative, sorted order) and
// prints `file:line: DET<n> <message>` diagnostics. Exit codes: 0 clean,
// 1 findings, 2 usage or I/O error.

#include <algorithm>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "index.hpp"
#include "lexer.hpp"
#include "rules.hpp"

namespace fs = std::filesystem;

namespace {

bool is_source_file(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".hpp" || ext == ".cpp" || ext == ".h" || ext == ".cc";
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Manifest line format: `<context> <name> <name> ...` — context keys never
/// contain spaces. '#' lines and blank lines are ignored.
bool load_manifest(const fs::path& path, std::map<std::string, std::vector<std::string>>* out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    std::string context;
    ss >> context;
    std::vector<std::string> names;
    std::string name;
    while (ss >> name) names.push_back(name);
    if (!context.empty()) (*out)[context] = std::move(names);
  }
  return true;
}

int write_manifest(const fs::path& path,
                   const std::map<std::string, std::vector<std::string>>& streams) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::cerr << "detlint: cannot write manifest " << path << "\n";
    return 2;
  }
  out << "# detlint rng-stream manifest — pins the append-only order of named Rng\n"
         "# streams per run-path. Regenerate (after review!) with:\n"
         "#   detlint --update-rng-manifest\n";
  for (const auto& [ctx, names] : streams) {
    out << ctx;
    for (const std::string& n : names) out << ' ' << n;
    out << '\n';
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  fs::path root = ".";
  fs::path manifest_path;
  bool as_json = false;
  bool update_manifest = false;

  for (int a = 1; a < argc; ++a) {
    const std::string arg = argv[a];
    if (arg == "--explain") {
      std::cout << detlint::rule_explanations();
      return 0;
    } else if (arg == "--json") {
      as_json = true;
    } else if (arg == "--update-rng-manifest") {
      update_manifest = true;
    } else if (arg == "--root" && a + 1 < argc) {
      root = argv[++a];
    } else if (arg == "--rng-manifest" && a + 1 < argc) {
      manifest_path = argv[++a];
    } else {
      std::cerr << "detlint: unknown argument '" << arg << "'\n"
                << "usage: detlint [--root DIR] [--json] [--explain]\n"
                << "               [--rng-manifest FILE] [--update-rng-manifest]\n";
      return 2;
    }
  }
  if (!fs::is_directory(root)) {
    std::cerr << "detlint: root '" << root.string() << "' is not a directory\n";
    return 2;
  }
  if (manifest_path.empty()) {
    const fs::path standard = root / "tools" / "detlint" / "rng_streams.txt";
    if (update_manifest || fs::exists(standard)) manifest_path = standard;
  }

  // Collect sources in sorted root-relative order so runs are byte-stable.
  std::vector<std::string> paths;
  for (const char* top : {"src", "bench", "examples"}) {
    const fs::path dir = root / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (entry.is_regular_file() && is_source_file(entry.path())) {
        paths.push_back(fs::relative(entry.path(), root).generic_string());
      }
    }
  }
  std::sort(paths.begin(), paths.end());

  std::vector<std::pair<std::string, std::string>> sources;
  sources.reserve(paths.size());
  for (const std::string& p : paths) sources.emplace_back(p, slurp(root / p));

  detlint::RepoIndex idx;
  idx.build(sources);

  if (update_manifest) {
    return write_manifest(manifest_path, detlint::collect_rng_streams(idx));
  }

  detlint::RuleOptions opt;
  if (!manifest_path.empty() && fs::exists(manifest_path)) {
    opt.have_manifest = load_manifest(manifest_path, &opt.rng_manifest);
  }

  const std::vector<detlint::Diagnostic> diags = detlint::run_rules(idx, opt);

  if (as_json) {
    std::cout << "{\n  \"tool\": \"detlint\",\n  \"findings\": [";
    for (std::size_t i = 0; i < diags.size(); ++i) {
      const detlint::Diagnostic& d = diags[i];
      std::cout << (i == 0 ? "\n" : ",\n")
                << "    {\"file\": \"" << json_escape(d.file) << "\", \"line\": " << d.line
                << ", \"rule\": \"DET" << d.rule << "\", \"message\": \""
                << json_escape(d.message) << "\"}";
    }
    std::cout << (diags.empty() ? "" : "\n  ") << "],\n  \"count\": " << diags.size()
              << "\n}\n";
  } else {
    for (const detlint::Diagnostic& d : diags) {
      std::cout << d.file << ":" << d.line << ": DET" << d.rule << " " << d.message << "\n";
    }
    if (!diags.empty()) {
      std::cerr << "detlint: " << diags.size() << " finding" << (diags.size() == 1 ? "" : "s")
                << " (run with --explain for rule documentation)\n";
    }
  }
  return diags.empty() ? 0 : 1;
}
