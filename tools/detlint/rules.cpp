#include "rules.hpp"

#include <algorithm>
#include <cstddef>
#include <deque>
#include <set>

namespace detlint {

namespace {

bool is_punct(const Token& t, const char* s) { return t.kind == Tok::kPunct && t.text == s; }
bool is_ident(const Token& t, const char* s) { return t.kind == Tok::kIdent && t.text == s; }

bool starts_with(const std::string& s, const char* prefix) { return s.rfind(prefix, 0) == 0; }
bool in_src(const std::string& path) { return starts_with(path, "src/"); }
bool is_rng_impl(const std::string& path) {
  return path == "src/util/rng.hpp" || path == "src/util/rng.cpp";
}

std::size_t skip_group_fwd(const std::vector<Token>& toks, std::size_t open);

/// Token index just past the balanced group opened at `open` ('(', '{', '[').
std::size_t skip_group_fwd(const std::vector<Token>& toks, std::size_t open) {
  const std::string& o = toks[open].text;
  const std::string close = o == "(" ? ")" : o == "{" ? "}" : "]";
  int depth = 0;
  for (std::size_t i = open; i < toks.size(); ++i) {
    if (toks[i].kind != Tok::kPunct) continue;
    if (toks[i].text == o) ++depth;
    if (toks[i].text == close && --depth == 0) return i + 1;
  }
  return toks.size();
}

/// One parsed `lhs = rhs;` / `lhs += rhs;` inside a function body.
struct Assignment {
  std::vector<std::string> chain;  ///< lhs as a.b.c (through . and ->)
  int line = 0;                    ///< line of the assignment operator
  std::size_t rhs_begin = 0;
  std::size_t rhs_end = 0;  ///< exclusive, the terminating ';'
  bool compound = false;    ///< '+=' rather than '='
};

std::vector<Assignment> find_assignments(const std::vector<Token>& toks, std::size_t begin,
                                         std::size_t end) {
  std::vector<Assignment> out;
  std::size_t i = begin;
  while (i < end) {
    if (toks[i].kind != Tok::kIdent) {
      ++i;
      continue;
    }
    std::vector<std::string> chain{toks[i].text};
    std::size_t j = i + 1;
    while (j + 1 < end && (is_punct(toks[j], ".") || is_punct(toks[j], "->")) &&
           toks[j + 1].kind == Tok::kIdent) {
      chain.push_back(toks[j + 1].text);
      j += 2;
    }
    if (j < end && (is_punct(toks[j], "=") || is_punct(toks[j], "+="))) {
      Assignment a;
      a.chain = std::move(chain);
      a.line = toks[j].line;
      a.compound = toks[j].text == "+=";
      a.rhs_begin = j + 1;
      int depth = 0;
      std::size_t k = j + 1;
      for (; k < end; ++k) {
        const Token& t = toks[k];
        if (is_punct(t, "(") || is_punct(t, "{") || is_punct(t, "[")) ++depth;
        if (is_punct(t, ")") || is_punct(t, "}") || is_punct(t, "]")) --depth;
        if (depth <= 0 && (is_punct(t, ";") || is_punct(t, ","))) break;
        if (depth < 0) break;
      }
      a.rhs_end = k;
      out.push_back(std::move(a));
      i = k;
      continue;
    }
    i = j;
  }
  return out;
}

/// Ctor-initializer entries `member(expr)` / `member{expr}` of a function
/// whose head looks like a constructor.
struct CtorInit {
  std::string member;
  int line = 0;
  std::size_t expr_begin = 0;
  std::size_t expr_end = 0;
};

std::vector<CtorInit> find_ctor_inits(const std::vector<Token>& toks, const Function& fn) {
  std::vector<CtorInit> out;
  if (fn.head + 1 >= toks.size() || !is_punct(toks[fn.head + 1], "(")) return out;
  std::size_t i = skip_group_fwd(toks, fn.head + 1);
  bool in_list = false;
  while (i < fn.body_begin && i < toks.size()) {
    if (is_punct(toks[i], ":")) in_list = true;
    if (in_list && toks[i].kind == Tok::kIdent && i + 1 < toks.size() &&
        (is_punct(toks[i + 1], "(") || is_punct(toks[i + 1], "{"))) {
      const std::size_t close = skip_group_fwd(toks, i + 1);
      out.push_back(CtorInit{toks[i].text, toks[i].line, i + 2, close - 1});
      i = close;
      continue;
    }
    ++i;
  }
  return out;
}

/// Expression classifier for D3: does [begin, end) mention the clock?
bool expr_tainted(const std::vector<Token>& toks, std::size_t begin, std::size_t end,
                  const std::set<std::string>& clock_fns, const std::set<std::string>& vars,
                  const std::set<std::string>& members) {
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind != Tok::kIdent) continue;
    const std::string& name = toks[i].text;
    if (i + 1 < end && is_punct(toks[i + 1], "(") && clock_fns.count(name) != 0) return true;
    if (vars.count(name) != 0 || members.count(name) != 0) return true;
  }
  return false;
}

bool expr_deterministic_guarded(const std::vector<Token>& toks, std::size_t begin,
                                std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) {
    if (toks[i].kind == Tok::kIdent &&
        toks[i].text.find("deterministic") != std::string::npos) {
      return true;
    }
  }
  return false;
}

/// The symbol a range-for's range expression iterates: callee name for
/// `f(...)`, base for `x[i]`, otherwise the last identifier.
struct RangeBase {
  std::string name;
  bool is_call = false;
};

RangeBase range_base(const std::vector<Token>& toks, std::size_t begin, std::size_t end) {
  RangeBase out;
  for (std::size_t i = begin; i < end; ++i) {
    if (is_punct(toks[i], "(") && i > begin && toks[i - 1].kind == Tok::kIdent) {
      return RangeBase{toks[i - 1].text, true};
    }
    if (is_punct(toks[i], "[") && i > begin && toks[i - 1].kind == Tok::kIdent) {
      return RangeBase{toks[i - 1].text, false};
    }
  }
  for (std::size_t i = end; i > begin; --i) {
    if (toks[i - 1].kind == Tok::kIdent) return RangeBase{toks[i - 1].text, false};
  }
  return out;
}

struct Engine {
  const RepoIndex& idx;
  const RuleOptions& opt;
  std::vector<Diagnostic> diags;

  // D1 reachability: function key -> name of the emission sink it reaches.
  std::map<const Function*, std::string> reaches_emission;
  // D3 fixpoint state.
  std::set<std::string> clock_fns{"now_us", "unix_time_ms"};
  std::map<int, std::set<std::string>> tainted_members;  // file id -> names

  explicit Engine(const RepoIndex& repo, const RuleOptions& options)
      : idx(repo), opt(options) {}

  void emit(int file_id, int line, int rule, std::string message) {
    if (idx.sanction_for(file_id, line) != nullptr) return;
    diags.push_back(Diagnostic{idx.files()[file_id].lx.path, line, rule, std::move(message)});
  }

  const Function* enclosing(int file_id, std::size_t token_idx) const {
    for (const Function& fn : idx.files()[file_id].functions) {
      if (token_idx > fn.body_begin && token_idx < fn.body_end) return &fn;
    }
    return nullptr;
  }

  std::set<std::string> tu_members(int file_id) const {
    std::set<std::string> out;
    for (int id : idx.closure(file_id)) {
      const auto it = tainted_members.find(id);
      if (it != tainted_members.end()) out.insert(it->second.begin(), it->second.end());
    }
    return out;
  }

  // ---- emission reachability (D1) -------------------------------------

  bool is_sink(int file_id, const Function& fn) const {
    if (fn.name == "to_json" || fn.name == "write_json") return true;
    for (const CallSite& c : fn.calls) {
      if (c.name == "json_escape" || c.name == "json_number") return true;
    }
    const std::vector<Token>& toks = idx.files()[file_id].lx.tokens;
    for (std::size_t i = fn.body_begin; i < fn.body_end; ++i) {
      if (is_ident(toks[i], "log_")) return true;  // scheduler event log
    }
    for (const Assignment& a :
         find_assignments(toks, fn.body_begin + 1, fn.body_end)) {
      if (a.chain.size() >= 2 &&
          idx.lookup_var(file_id, a.chain.front()).tag == TypeTag::kReport) {
        return true;
      }
      if (a.chain.size() == 1 && report_type_names().count(fn.klass) != 0) return true;
    }
    return false;
  }

  void compute_reachability() {
    // name -> caller functions, for reverse BFS from the sinks.
    std::map<std::string, std::vector<const Function*>> callers;
    std::deque<const Function*> queue;
    for (int id = 0; id < static_cast<int>(idx.files().size()); ++id) {
      for (const Function& fn : idx.files()[id].functions) {
        std::set<std::string> seen;
        for (const CallSite& c : fn.calls) {
          if (seen.insert(c.name).second) callers[c.name].push_back(&fn);
        }
        if (is_sink(id, fn)) {
          reaches_emission[&fn] = fn.name;
          queue.push_back(&fn);
        }
      }
    }
    while (!queue.empty()) {
      const Function* fn = queue.front();
      queue.pop_front();
      const auto it = callers.find(fn->name);
      if (it == callers.end()) continue;
      for (const Function* caller : it->second) {
        if (reaches_emission.emplace(caller, reaches_emission[fn]).second) {
          queue.push_back(caller);
        }
      }
    }
  }

  // ---- D1 + D4 ---------------------------------------------------------

  void check_unordered(int file_id) {
    const FileIndex& file = idx.files()[file_id];
    const std::vector<Token>& toks = file.lx.tokens;

    // Declaration discipline: an unordered container declared under src/
    // must carry a det-sanctioned reason why its order cannot leak.
    if (in_src(file.lx.path)) {
      for (int line : file.unordered_decl_lines) {
        emit(file_id, line, 1,
             "unordered container declaration — iteration order is hash/pointer-dependent; "
             "use an ordered container or annotate `// det-sanctioned: <why order cannot "
             "leak>`");
      }
    }

    for (const Function& fn : file.functions) {
      const auto reach = reaches_emission.find(&fn);
      for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
        // Iterator-style: x.begin() / x.cbegin() on an unordered symbol.
        if ((is_ident(toks[i], "begin") || is_ident(toks[i], "cbegin")) && i >= 2 &&
            (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) &&
            toks[i - 2].kind == Tok::kIdent && reach != reaches_emission.end() &&
            idx.lookup_var(file_id, toks[i - 2].text).tag == TypeTag::kUnordered) {
          emit(file_id, toks[i].line, 1,
               "iteration over unordered container '" + toks[i - 2].text + "' in '" +
                   fn.name + "' reaches report/event-log emission (via '" + reach->second +
                   "') — iterate a sorted copy or a stable index instead");
        }
        if (!is_ident(toks[i], "for") || i + 1 >= fn.body_end || !is_punct(toks[i + 1], "(")) {
          continue;
        }
        const std::size_t close = skip_group_fwd(toks, i + 1) - 1;
        std::size_t colon = 0;
        int depth = 0;
        for (std::size_t j = i + 1; j < close; ++j) {
          if (is_punct(toks[j], "(") || is_punct(toks[j], "{") || is_punct(toks[j], "[")) {
            ++depth;
          }
          if (is_punct(toks[j], ")") || is_punct(toks[j], "}") || is_punct(toks[j], "]")) {
            --depth;
          }
          if (depth == 1 && is_punct(toks[j], ":")) {
            colon = j;
            break;
          }
        }
        if (colon == 0) continue;
        const RangeBase base = range_base(toks, colon + 1, close);
        if (base.name.empty()) continue;
        const VarDecl decl = base.is_call ? idx.lookup_return(file_id, base.name)
                                          : idx.lookup_var(file_id, base.name);
        if (decl.tag != TypeTag::kUnordered) continue;

        if (reach != reaches_emission.end()) {
          emit(file_id, toks[i].line, 1,
               "iteration over unordered container '" + base.name + "' in '" + fn.name +
                   "' reaches report/event-log emission (via '" + reach->second +
                   "') — iterate a sorted copy or a stable index instead");
        }

        // D4: float accumulation inside this loop body.
        std::size_t body_begin = close + 1;
        std::size_t body_end = body_begin;
        if (body_begin < fn.body_end && is_punct(toks[body_begin], "{")) {
          body_end = skip_group_fwd(toks, body_begin);
        } else {
          while (body_end < fn.body_end && !is_punct(toks[body_end], ";")) ++body_end;
        }
        for (std::size_t j = body_begin; j < body_end; ++j) {
          if (toks[j].kind == Tok::kIdent && j + 1 < body_end && is_punct(toks[j + 1], "+=") &&
              idx.lookup_var(file_id, toks[j].text).tag == TypeTag::kFloat) {
            emit(file_id, toks[j].line, 4,
                 "float accumulation '" + toks[j].text + " +=' inside iteration over "
                 "unordered container '" + base.name +
                 "' — reduction order is nondeterministic; accumulate over a sorted order");
          }
        }
      }
    }
  }

  // ---- D2 --------------------------------------------------------------

  struct RngSite {
    int line = 0;
    std::size_t token = 0;
  };

  static std::string context_name(const Function* fn) {
    if (fn == nullptr) return "<decls>";
    return fn->klass.empty() ? fn->name : fn->klass + "::" + fn->name;
  }

  std::vector<RngSite> rng_sites(int file_id) const {
    const std::vector<Token>& toks = idx.files()[file_id].lx.tokens;
    std::vector<RngSite> sites;
    std::set<int> lines;
    for (std::size_t i = 0; i < toks.size(); ++i) {
      bool site = false;
      std::size_t at = i;
      if (is_ident(toks[i], "Rng") && i + 1 < toks.size() && toks[i + 1].kind == Tok::kIdent) {
        const bool qualified_use =
            i > 0 && (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->"));
        const bool type_intro = i > 0 && (is_ident(toks[i - 1], "class") ||
                                          is_ident(toks[i - 1], "struct") ||
                                          is_ident(toks[i - 1], "explicit"));
        if (!qualified_use && !type_intro && i + 2 < toks.size()) {
          const Token& after = toks[i + 2];
          if (is_punct(after, "{") || is_punct(after, ";") || is_punct(after, "=")) {
            site = true;
            at = i + 1;
          } else if (is_punct(after, "(") && i + 3 < toks.size() && !is_punct(toks[i + 3], ")")) {
            site = true;  // paren construction with arguments (not a fn decl)
            at = i + 1;
          }
        }
      }
      if (!site && is_ident(toks[i], "split") && i > 0 &&
          (is_punct(toks[i - 1], ".") || is_punct(toks[i - 1], "->")) && i + 2 < toks.size() &&
          is_punct(toks[i + 1], "(") && is_punct(toks[i + 2], ")")) {
        site = true;
        at = i;
      }
      if (site && lines.insert(toks[at].line).second) {
        sites.push_back(RngSite{toks[at].line, at});
      }
    }
    return sites;
  }

  const RngAnnotation* annotation_for(int file_id, int line,
                                      const std::set<int>& site_lines) const {
    // Same-line annotation wins; the line above counts only as the own-line
    // comment form — a previous site's trailing annotation is not reusable.
    const RngAnnotation* above = nullptr;
    for (const RngAnnotation& a : idx.files()[file_id].rng_streams) {
      if (a.line == line) return &a;
      if (a.line == line - 1 && site_lines.count(line - 1) == 0) above = &a;
    }
    return above;
  }

  void check_rng(int file_id, std::map<std::string, std::vector<std::string>>* streams,
                 std::map<std::string, std::vector<int>>* stream_lines) {
    const FileIndex& file = idx.files()[file_id];
    if (is_rng_impl(file.lx.path)) return;
    std::map<std::string, std::set<std::string>> seen_names;
    const std::vector<RngSite> sites = rng_sites(file_id);
    std::set<int> site_lines;
    for (const RngSite& site : sites) site_lines.insert(site.line);
    for (const RngSite& site : sites) {
      const std::string ctx = file.lx.path + "::" + context_name(enclosing(file_id, site.token));
      const RngAnnotation* ann = annotation_for(file_id, site.line, site_lines);
      if (ann == nullptr || ann->name.empty()) {
        emit(file_id, site.line, 2,
             "Rng construction/fork without an ordered `// rng-stream: <name>` annotation — "
             "every stream must be named so append-only stream order is checkable");
        continue;
      }
      if (!seen_names[ctx].insert(ann->name).second) {
        emit(file_id, site.line, 2,
             "duplicate rng-stream name '" + ann->name + "' in '" + ctx +
                 "' — stream names must be unique per run-path");
        continue;
      }
      (*streams)[ctx].push_back(ann->name);
      (*stream_lines)[ctx].push_back(site.line);
    }
  }

  void check_rng_manifest(const std::map<std::string, std::vector<std::string>>& streams,
                          const std::map<std::string, std::vector<int>>& stream_lines) {
    if (!opt.have_manifest) return;
    for (const auto& [ctx, pinned] : opt.rng_manifest) {
      const std::string path = ctx.substr(0, ctx.find("::"));
      int file_id = -1;
      for (int id = 0; id < static_cast<int>(idx.files().size()); ++id) {
        if (idx.files()[id].lx.path == path) file_id = id;
      }
      if (file_id < 0) continue;  // file gone: manifest refresh, not a lint error
      const auto cur_it = streams.find(ctx);
      const std::vector<std::string> empty_names;
      const std::vector<std::string>& cur =
          cur_it == streams.end() ? empty_names : cur_it->second;
      const auto lines_it = stream_lines.find(ctx);
      for (std::size_t i = 0; i < pinned.size(); ++i) {
        if (i >= cur.size()) {
          emit(file_id, 1, 2,
               "rng-stream '" + pinned[i] + "' pinned in the manifest for '" + ctx +
                   "' is gone — removing or reordering streams breaks seed compatibility");
          break;
        }
        if (cur[i] != pinned[i]) {
          emit(file_id, lines_it->second[i], 2,
               "rng-stream order changed in '" + ctx + "': manifest pins '" + pinned[i] +
                   "' at position " + std::to_string(i + 1) + ", found '" + cur[i] +
                   "' — new streams must be appended after existing ones "
                   "(detlint --update-rng-manifest after review)");
          break;
        }
      }
    }
  }

  // ---- D3 --------------------------------------------------------------

  void taint_fixpoint() {
    for (int round = 0; round < 5; ++round) {
      bool changed = false;
      for (int id = 0; id < static_cast<int>(idx.files().size()); ++id) {
        const FileIndex& file = idx.files()[id];
        const std::vector<Token>& toks = file.lx.tokens;
        const std::set<std::string> members = tu_members(id);
        for (const Function& fn : file.functions) {
          std::set<std::string> vars;
          for (const Assignment& a : find_assignments(toks, fn.body_begin + 1, fn.body_end)) {
            if (!expr_tainted(toks, a.rhs_begin, a.rhs_end, clock_fns, vars, members)) continue;
            if (a.chain.size() != 1) continue;
            const std::string& name = a.chain.front();
            if (!name.empty() && name.back() == '_') {
              changed |= tainted_members[id].insert(name).second;
            } else {
              vars.insert(name);
            }
          }
          for (const CtorInit& init : find_ctor_inits(toks, fn)) {
            if (fn.name == fn.klass &&
                expr_tainted(toks, init.expr_begin, init.expr_end, clock_fns, vars, members)) {
              changed |= tainted_members[id].insert(init.member).second;
            }
          }
          // A function whose return expression is clock-tainted becomes a
          // clock source itself (elapsed_s, throughput, ...).
          for (std::size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
            if (!is_ident(toks[i], "return")) continue;
            std::size_t end = i;
            while (end < fn.body_end && !is_punct(toks[end], ";")) ++end;
            if (expr_tainted(toks, i + 1, end, clock_fns, vars, members)) {
              changed |= clock_fns.insert(fn.name).second;
            }
          }
        }
      }
      if (!changed) break;
    }
  }

  void check_clock(int file_id) {
    const FileIndex& file = idx.files()[file_id];
    const std::vector<Token>& toks = file.lx.tokens;
    const std::set<std::string> members = tu_members(file_id);

    bool tu_deterministic = false;
    for (const Function& fn : file.functions) {
      for (const CallSite& c : fn.calls) {
        if (c.name == "deterministic") tu_deterministic = true;
      }
    }

    for (const Function& fn : file.functions) {
      std::set<std::string> vars;
      for (const Assignment& a : find_assignments(toks, fn.body_begin + 1, fn.body_end)) {
        const bool tainted =
            expr_tainted(toks, a.rhs_begin, a.rhs_end, clock_fns, vars, members);
        if (!tainted) continue;
        if (a.chain.size() == 1) {
          const std::string& name = a.chain.front();
          if (name.empty() || name.back() != '_') {
            vars.insert(name);
          } else if (report_type_names().count(fn.klass) != 0 &&
                     !expr_deterministic_guarded(toks, a.rhs_begin, a.rhs_end)) {
            emit(file_id, a.line, 3,
                 "clock-derived value assigned to " + fn.klass + "::" + name +
                     " without a deterministic-mode exclusion — gate on the deterministic "
                     "flag or det-sanction with the exclusion that keeps artifacts "
                     "byte-stable");
          }
          continue;
        }
        const VarDecl base = idx.lookup_var(file_id, a.chain.front());
        if (base.tag == TypeTag::kReport &&
            !expr_deterministic_guarded(toks, a.rhs_begin, a.rhs_end)) {
          emit(file_id, a.line, 3,
               "clock-derived value assigned to report field '" + a.chain.front() + "." +
                   a.chain.back() + "' (" + base.type_name +
                   ") without a deterministic-mode exclusion — measured time belongs in obs "
                   "metrics, not in deterministic artifacts");
        }
      }
      for (const CtorInit& init : find_ctor_inits(toks, fn)) {
        if (fn.name == fn.klass && report_type_names().count(fn.klass) != 0 &&
            expr_tainted(toks, init.expr_begin, init.expr_end, clock_fns, {}, members) &&
            !expr_deterministic_guarded(toks, init.expr_begin, init.expr_end)) {
          emit(file_id, init.line, 3,
               "clock-derived value initializes " + fn.klass + "::" + init.member +
                   " — det-sanction with the deterministic-mode exclusion that zeroes it");
        }
      }
      // Deterministic-artifact TUs must not feed measured time into metrics.
      if (!tu_deterministic) continue;
      for (std::size_t i = fn.body_begin + 1; i + 1 < fn.body_end; ++i) {
        if (!is_ident(toks[i], "metric") || !is_punct(toks[i + 1], "(")) continue;
        if (i < 2 || (!is_punct(toks[i - 1], ".") && !is_punct(toks[i - 1], "->"))) continue;
        if (idx.lookup_var(file_id, toks[i - 2].text).tag != TypeTag::kReport) continue;
        const std::size_t close = skip_group_fwd(toks, i + 1);
        if (expr_tainted(toks, i + 2, close - 1, clock_fns, {}, members) &&
            !expr_deterministic_guarded(toks, i + 2, close - 1)) {
          emit(file_id, toks[i].line, 3,
               "clock-derived value recorded as a metric of a deterministic-mode report in '" +
                   fn.name + "' — deterministic artifacts must exclude measured time");
        }
      }
    }
  }

  // ---- DET0 ------------------------------------------------------------

  void check_annotations(int file_id) {
    for (const Sanction& s : idx.files()[file_id].sanctions) {
      if (s.malformed) {
        diags.push_back(Diagnostic{idx.files()[file_id].lx.path, s.line, 0,
                                   "det-sanctioned annotation without a reason — write "
                                   "`// det-sanctioned: <why this cannot break determinism>`"});
      }
    }
  }
};

}  // namespace

std::vector<Diagnostic> run_rules(const RepoIndex& idx, const RuleOptions& opt) {
  Engine engine(idx, opt);
  engine.compute_reachability();
  engine.taint_fixpoint();
  std::map<std::string, std::vector<std::string>> streams;
  std::map<std::string, std::vector<int>> stream_lines;
  for (int id = 0; id < static_cast<int>(idx.files().size()); ++id) {
    engine.check_annotations(id);
    engine.check_unordered(id);
    engine.check_rng(id, &streams, &stream_lines);
    engine.check_clock(id);
  }
  engine.check_rng_manifest(streams, stream_lines);

  std::sort(engine.diags.begin(), engine.diags.end(),
            [](const Diagnostic& a, const Diagnostic& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              if (a.rule != b.rule) return a.rule < b.rule;
              return a.message < b.message;
            });
  engine.diags.erase(std::unique(engine.diags.begin(), engine.diags.end(),
                                 [](const Diagnostic& a, const Diagnostic& b) {
                                   return a.file == b.file && a.line == b.line &&
                                          a.rule == b.rule && a.message == b.message;
                                 }),
                     engine.diags.end());
  return engine.diags;
}

std::map<std::string, std::vector<std::string>> collect_rng_streams(const RepoIndex& idx) {
  RuleOptions opt;
  Engine engine(idx, opt);
  std::map<std::string, std::vector<std::string>> streams;
  std::map<std::string, std::vector<int>> stream_lines;
  for (int id = 0; id < static_cast<int>(idx.files().size()); ++id) {
    engine.check_rng(id, &streams, &stream_lines);
  }
  return streams;
}

std::string rule_explanations() {
  return
      "detlint rules (suppress any finding with `// det-sanctioned: <reason>` on the same\n"
      "line or the line above; the reason is mandatory):\n"
      "\n"
      "DET0  malformed annotation\n"
      "      A det-sanctioned comment without `: <reason>` suppresses nothing and is\n"
      "      itself a finding — suppressions must record why determinism is safe.\n"
      "\n"
      "DET1  unordered-container order leaking toward emission\n"
      "      Iterating std::unordered_map/unordered_set visits elements in hash/pointer\n"
      "      order, which varies across libstdc++ versions, ASLR and insertion history.\n"
      "      detlint flags (a) any such iteration inside a function that can reach\n"
      "      report/ledger/event-log/JSON emission through the call graph, and (b) any\n"
      "      unordered-container declaration under src/ that does not carry a\n"
      "      det-sanctioned reason why its order cannot leak (e.g. membership-only use).\n"
      "      Fix: iterate a sorted copy or a stable index; sanction only when provably\n"
      "      order-insensitive.\n"
      "\n"
      "DET2  Rng stream discipline\n"
      "      Every iotml::Rng construction or .split() fork must carry an ordered\n"
      "      `// rng-stream: <name>` annotation (same line or the line above). Stream\n"
      "      names must be unique per run-path, and the manifest\n"
      "      (tools/detlint/rng_streams.txt) pins the existing order: new streams may\n"
      "      only be appended after existing ones, so old seeds keep drawing identical\n"
      "      sequences. Regenerate after review with --update-rng-manifest.\n"
      "\n"
      "DET3  clock taint into report fields\n"
      "      obs::now_us()/unix_time_ms() values (directly, via tainted locals/members,\n"
      "      or via clock-returning helpers like elapsed_s) must not be assigned into\n"
      "      BenchReport/FleetReport/StageReport/... fields unless the expression is\n"
      "      excluded from deterministic mode (mentions the deterministic flag) or the\n"
      "      line det-sanctions the exclusion that keeps artifacts byte-stable. In TUs\n"
      "      that call .deterministic(), measured time must not enter metric() either.\n"
      "\n"
      "DET4  unordered float reduction\n"
      "      float/double `+=` accumulation inside a loop over an unordered container\n"
      "      makes the reduction order — and therefore the rounded sum — run-dependent.\n"
      "      Accumulate over a sorted order (or an integer domain) instead.\n";
}

}  // namespace detlint
