#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "deploy/compiled_model.hpp"

namespace iotml::deploy {

/// Arena-style interpreter for a CompiledModel on the device tier.
///
/// bind() resolves the artifact's feature schema against a local dataset —
/// columns matched by name, categorical dictionaries remapped to
/// training-time indices — and sizes every scratch buffer. After bind,
/// predict_row()/score_row() perform no heap allocation: tree walks follow
/// the flat child-index pool, linear scores accumulate over the weight
/// tensor, and naive Bayes scores into a pre-sized class buffer using
/// Gaussian terms precomputed at bind time.
///
/// Semantics mirror the training-side learners: missing numeric NB cells are
/// marginalized out, categories unseen at training time contribute nothing
/// (NB) or fall back to the node's majority label (tree) or the impute value
/// (linear), and linear classification thresholds the raw score at zero.
class DeviceRuntime {
 public:
  /// Takes ownership of the artifact; validates it. Throws InvalidArgument
  /// on a structurally invalid model.
  explicit DeviceRuntime(CompiledModel model);

  /// Resolve the artifact against `ds`'s schema and allocate all scratch.
  /// Throws InvalidArgument when a schema column is absent from `ds` or has
  /// the wrong kind. Rebinding against a new dataset is allowed.
  void bind(const data::Dataset& ds);

  bool bound() const noexcept { return bound_; }
  const CompiledModel& model() const noexcept { return model_; }

  /// Classify one row. Allocation-free. Throws InvalidArgument before
  /// bind() or for regression artifacts (use score_row).
  int predict_row(const data::Dataset& ds, std::size_t row) const;

  /// Raw linear score (w.x + b) of one row — the regression output, or the
  /// pre-sigmoid logit for classification heads. Allocation-free. Throws
  /// InvalidArgument before bind() or for non-linear artifact kinds.
  double score_row(const data::Dataset& ds, std::size_t row) const;

 private:
  static constexpr std::uint32_t kUnseenCategory = 0xFFFFFFFFU;

  int tree_predict(const data::Dataset& ds, std::size_t row) const;
  double linear_score(const data::Dataset& ds, std::size_t row) const;
  int nb_predict(const data::Dataset& ds, std::size_t row) const;

  /// Training-time category index of a local cell, or kUnseenCategory.
  std::uint32_t remap_category(std::size_t feature, std::size_t local_index) const;

  CompiledModel model_;
  std::vector<std::size_t> column_of_;  ///< feature -> bound dataset column
  /// Per categorical feature: local category index -> training index.
  std::vector<std::vector<std::uint32_t>> cat_remap_;
  /// Naive-Bayes Gaussian terms, precomputed at bind from the (possibly
  /// quantized) tensors: score += log_norm - (v - mean)^2 * inv_2var.
  std::vector<std::vector<double>> nb_mean_, nb_log_norm_, nb_inv_2var_;
  mutable std::vector<double> class_score_;  ///< NB scratch, [num_classes]
  bool bound_ = false;
};

}  // namespace iotml::deploy
