#include "deploy/compile.hpp"

#include "deploy/codec.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace iotml::deploy {

namespace {

Tensor f32_tensor(std::vector<float> values) {
  Tensor t;
  t.precision = Precision::kFloat32;
  t.f = std::move(values);
  return t;
}

std::uint16_t label_classes(const data::Dataset& train) {
  return narrow_u16(train.num_classes(), "class count");
}

void finish_compile_span(obs::Span& span, const CompiledModel& model) {
  if (!span.active()) return;
  span.arg("kind", model_kind_name(model.kind));
  span.arg("features", static_cast<std::uint64_t>(model.features.size()));
  span.arg("bytes", static_cast<std::uint64_t>(model.size_bytes()));
}

}  // namespace

std::vector<FeatureSchema> schema_of(const data::Dataset& ds) {
  std::vector<FeatureSchema> schema;
  schema.reserve(ds.num_columns());
  for (std::size_t c = 0; c < ds.num_columns(); ++c) {
    FeatureSchema fs;
    fs.name = ds.column(c).name();
    fs.categorical = ds.column(c).type() == data::ColumnType::kCategorical;
    if (fs.categorical) fs.categories = ds.column(c).categories();
    schema.push_back(std::move(fs));
  }
  return schema;
}

CompiledModel compile(const learners::DecisionTree& tree, const data::Dataset& train) {
  obs::Span span("deploy.compile", "deploy");
  obs::registry().counter("deploy.compiles").add();

  const std::vector<learners::ExportedTreeNode> exported = tree.export_nodes();
  IOTML_CHECK(tree.train_category_labels().size() == train.num_columns(),
              "deploy::compile(tree): schema does not match the fit dataset");

  CompiledModel model;
  model.kind = ModelKind::kTree;
  model.num_classes = label_classes(train);
  model.features = schema_of(train);

  model.tree.nodes.reserve(exported.size());
  std::vector<float> thresholds;
  thresholds.reserve(exported.size());
  for (const learners::ExportedTreeNode& n : exported) {
    TreeNode node;
    node.flags = narrow_u8((n.leaf ? 1U : 0U) | (n.numeric ? 2U : 0U), "TreeNode.flags");
    node.label = narrow_u8(static_cast<std::size_t>(n.label), "tree leaf label");
    thresholds.push_back(n.leaf || !n.numeric ? 0.0F
                                              : static_cast<float>(n.threshold));
    if (!n.leaf) {
      node.feature = narrow_u16(n.feature, "tree split feature");
      node.child_base = narrow_u16(model.tree.child_index.size(), "tree child pool");
      node.child_count = narrow_u8(n.children.size(), "tree children per split");
      node.missing_slot = narrow_u8(n.missing_slot, "tree missing slot");
      for (std::size_t child : n.children) {
        model.tree.child_index.push_back(
            child == learners::ExportedTreeNode::kNoNode
                ? kNoChild
                : narrow_u16(child, "tree child id"));
      }
    }
    model.tree.nodes.push_back(node);
  }
  IOTML_CHECK(model.tree.nodes.size() <= 0xFFFF,
              "deploy::compile(tree): too many nodes for the artifact format");
  model.tree.thresholds = f32_tensor(std::move(thresholds));
  model.validate();
  finish_compile_span(span, model);
  return model;
}

CompiledModel compile(const learners::LogisticRegression& lr, const data::Dataset& train) {
  obs::Span span("deploy.compile", "deploy");
  obs::registry().counter("deploy.compiles").add();

  IOTML_CHECK(lr.fitted(), "deploy::compile(logistic): call fit() first");
  IOTML_CHECK(lr.weights().size() == train.num_columns(),
              "deploy::compile(logistic): schema does not match the fit dataset");

  CompiledModel model;
  model.kind = ModelKind::kLinear;
  model.num_classes = 2;
  model.features = schema_of(train);

  // Fold the training standardization into the artifact: the device scores
  //   z = b' + sum_j w'_j * x_j   with   w'_j = w_j / s_j,
  //   b' = b - sum_j w'_j * m_j,
  // which equals the trained b + sum_j w_j (x_j - m_j) / s_j. A missing cell
  // substitutes the impute value m_j and so contributes exactly 0, matching
  // the trainer's mean imputation.
  const std::size_t d = lr.weights().size();
  std::vector<float> weights(d), impute(d);
  double bias = lr.bias();
  for (std::size_t j = 0; j < d; ++j) {
    const double folded = lr.weights()[j] / lr.feature_scales()[j];
    weights[j] = static_cast<float>(folded);
    impute[j] = static_cast<float>(lr.feature_means()[j]);
    bias -= folded * lr.feature_means()[j];
  }
  model.linear.weights = f32_tensor(std::move(weights));
  model.linear.impute = f32_tensor(std::move(impute));
  model.linear.bias = static_cast<float>(bias);
  model.linear.regression = 0;
  model.validate();
  finish_compile_span(span, model);
  return model;
}

CompiledModel compile(const learners::NaiveBayes& nbc, const data::Dataset& train) {
  obs::Span span("deploy.compile", "deploy");
  obs::registry().counter("deploy.compiles").add();

  IOTML_CHECK(nbc.fitted(), "deploy::compile(naive-bayes): call fit() first");
  IOTML_CHECK(nbc.column_kinds().size() == train.num_columns(),
              "deploy::compile(naive-bayes): schema does not match the fit dataset");

  CompiledModel model;
  model.kind = ModelKind::kNaiveBayes;
  model.num_classes = narrow_u16(nbc.class_count(), "class count");
  model.features = schema_of(train);

  std::vector<float> priors;
  priors.reserve(nbc.log_priors().size());
  for (double p : nbc.log_priors()) priors.push_back(static_cast<float>(p));
  model.nb.log_prior = f32_tensor(std::move(priors));

  model.nb.features.resize(model.features.size());
  for (std::size_t fi = 0; fi < model.features.size(); ++fi) {
    NaiveBayesFeature& out = model.nb.features[fi];
    if (model.features[fi].categorical) {
      const auto& table = nbc.categorical_tables()[fi];  // [class][category]
      std::vector<float> flat;
      flat.reserve(static_cast<std::size_t>(model.num_classes) *
                   model.features[fi].categories.size());
      for (const std::vector<double>& per_class : table) {
        for (double v : per_class) flat.push_back(static_cast<float>(v));
      }
      out.log_likelihood = f32_tensor(std::move(flat));
    } else {
      const auto& gaussians = nbc.gaussians()[fi];  // [class]
      std::vector<float> mean, variance;
      mean.reserve(gaussians.size());
      variance.reserve(gaussians.size());
      out.class_present.reserve(gaussians.size());
      for (const auto& g : gaussians) {
        mean.push_back(static_cast<float>(g.mean));
        variance.push_back(static_cast<float>(g.variance));
        out.class_present.push_back(g.count > 0 ? 1 : 0);
      }
      out.mean = f32_tensor(std::move(mean));
      out.variance = f32_tensor(std::move(variance));
    }
  }
  model.validate();
  finish_compile_span(span, model);
  return model;
}

CompiledModel compile(const kernels::KernelRidge& krr,
                      const std::vector<std::string>& feature_names) {
  obs::Span span("deploy.compile", "deploy");
  obs::registry().counter("deploy.compiles").add();

  IOTML_CHECK(krr.fitted(), "deploy::compile(krr): call fit() first");
  IOTML_CHECK(krr.kernel_fn().name() == "linear",
              "deploy::compile(krr): only linear-kernel KRR compiles to a "
              "weight vector (nonlinear kernels need the training set)");
  const la::Matrix& x = krr.train_inputs();
  IOTML_CHECK(feature_names.size() == x.cols(),
              "deploy::compile(krr): feature name count != trained dimension");

  CompiledModel model;
  model.kind = ModelKind::kLinear;
  model.num_classes = 1;
  model.features.reserve(feature_names.size());
  for (const std::string& name : feature_names) {
    model.features.push_back(FeatureSchema{name, false, {}});
  }

  // w = X^T alpha: the dual collapses to a primal weight vector.
  std::vector<float> weights(x.cols(), 0.0F);
  const std::vector<double>& alpha = krr.dual_coefficients();
  for (std::size_t j = 0; j < x.cols(); ++j) {
    double w = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i) w += alpha[i] * x(i, j);
    weights[j] = static_cast<float>(w);
  }
  model.linear.weights = f32_tensor(std::move(weights));
  model.linear.impute = f32_tensor(std::vector<float>(x.cols(), 0.0F));
  model.linear.bias = 0.0F;
  model.linear.regression = 1;
  model.validate();
  finish_compile_span(span, model);
  return model;
}

}  // namespace iotml::deploy
