#pragma once

#include "util/bytes.hpp"

namespace iotml::deploy {

/// The artifact codec core now lives in src/util/bytes.* so deploy, ota and
/// the tdf telemetry codec share one implementation (and lint rule R7 has a
/// single sanctioned home for byte-level casts). These aliases keep every
/// deploy/ota call site and the pinned golden artifact bytes unchanged —
/// the hoist moved code, not behavior.
using util::ByteReader;
using util::ByteWriter;
using util::enum_u8;
using util::fnv1a;
using util::narrow_i16;
using util::narrow_i8;
using util::narrow_u16;
using util::narrow_u32;
using util::narrow_u8;

}  // namespace iotml::deploy
