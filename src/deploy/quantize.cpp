#include "deploy/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "deploy/codec.hpp"
#include "deploy/runtime.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace iotml::deploy {

namespace {

Tensor quantize_tensor(const Tensor& t, Precision target) {
  IOTML_CHECK(t.precision == Precision::kFloat32,
              "deploy::quantize: tensor is already quantized");
  const long long qmax = target == Precision::kInt8 ? 127 : 32767;

  float max_abs = 0.0F;
  for (float v : t.f) max_abs = std::max(max_abs, std::abs(v));

  Tensor out;
  out.precision = target;
  out.scale = max_abs > 0.0F ? max_abs / static_cast<float>(qmax) : 1.0F;
  out.q.reserve(t.f.size());
  for (float v : t.f) {
    long long q = std::llround(static_cast<double>(v) / static_cast<double>(out.scale));
    q = std::clamp(q, -qmax, qmax);
    out.q.push_back(narrow_i16(q, "quantized tensor value"));
  }
  return out;
}

}  // namespace

CompiledModel quantize(const CompiledModel& model, Precision target) {
  obs::Span span("deploy.quantize", "deploy");
  obs::registry().counter("deploy.quantizations").add();

  IOTML_CHECK(target == Precision::kInt16 || target == Precision::kInt8,
              "deploy::quantize: target must be int16 or int8");
  IOTML_CHECK(model.precision == Precision::kFloat32,
              "deploy::quantize: model is already quantized");

  CompiledModel out = model;
  out.precision = target;
  switch (model.kind) {
    case ModelKind::kTree:
      out.tree.thresholds = quantize_tensor(model.tree.thresholds, target);
      break;
    case ModelKind::kLinear:
      out.linear.weights = quantize_tensor(model.linear.weights, target);
      out.linear.impute = quantize_tensor(model.linear.impute, target);
      break;
    case ModelKind::kNaiveBayes:
      out.nb.log_prior = quantize_tensor(model.nb.log_prior, target);
      for (std::size_t f = 0; f < out.nb.features.size(); ++f) {
        NaiveBayesFeature& feat = out.nb.features[f];
        if (model.features[f].categorical) {
          feat.log_likelihood = quantize_tensor(feat.log_likelihood, target);
        } else {
          feat.mean = quantize_tensor(feat.mean, target);
          feat.variance = quantize_tensor(feat.variance, target);
        }
      }
      break;
  }
  out.validate();
  if (span.active()) {
    span.arg("kind", model_kind_name(out.kind));
    span.arg("precision", precision_name(target));
    span.arg("bytes", static_cast<std::uint64_t>(out.size_bytes()));
  }
  return out;
}

double holdout_accuracy(const CompiledModel& model, const data::Dataset& holdout) {
  IOTML_CHECK(holdout.has_labels(), "deploy::holdout_accuracy: unlabeled holdout");
  IOTML_CHECK(holdout.rows() >= 1, "deploy::holdout_accuracy: empty holdout");
  DeviceRuntime runtime(model);
  runtime.bind(holdout);
  std::size_t correct = 0;
  for (std::size_t r = 0; r < holdout.rows(); ++r) {
    if (runtime.predict_row(holdout, r) == holdout.label(r)) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(holdout.rows());
}

QuantizationReport quantize_with_report(const CompiledModel& model, Precision target,
                                        const data::Dataset& holdout,
                                        CompiledModel* quantized_out) {
  IOTML_CHECK(holdout.rows() > 0, "quantize_with_report: empty holdout");
  CompiledModel quantized = quantize(model, target);

  QuantizationReport report;
  report.precision = target;
  report.float32_bytes = model.size_bytes();
  report.quantized_bytes = quantized.size_bytes();
  report.footprint_ratio = static_cast<double>(report.float32_bytes) /
                           static_cast<double>(report.quantized_bytes);
  report.holdout_rows = holdout.rows();
  report.holdout_accuracy_float = holdout_accuracy(model, holdout);
  report.holdout_accuracy_quantized = holdout_accuracy(quantized, holdout);
  report.accuracy_delta_points =
      100.0 * (report.holdout_accuracy_quantized - report.holdout_accuracy_float);

  if (quantized_out != nullptr) *quantized_out = std::move(quantized);
  return report;
}

}  // namespace iotml::deploy
