#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "deploy/compiled_model.hpp"
#include "kernels/krr.hpp"
#include "learners/decision_tree.hpp"
#include "learners/logistic.hpp"
#include "learners/naive_bayes.hpp"

namespace iotml::deploy {

/// Binding schema of a dataset: column names, kinds and category
/// dictionaries, in column order. Pass the dataset the learner was fitted
/// on (or one that is schema-identical) so the artifact can be bound by
/// name on any device holding the same columns.
std::vector<FeatureSchema> schema_of(const data::Dataset& ds);

/// Lower a trained decision tree to the flat array-packed artifact.
/// `train` must be schema-identical to the fit dataset. Throws
/// InvalidArgument before fit(), on a schema mismatch, or when the tree
/// exceeds the format's limits (65535 nodes, 255 children per split,
/// 256 classes).
CompiledModel compile(const learners::DecisionTree& tree, const data::Dataset& train);

/// Lower trained logistic regression to a linear artifact. The training
/// standardization is folded into the weights and bias, and the per-feature
/// imputation value (training column mean) rides along, so devices score
/// raw, unstandardized rows — with missing cells — directly. Throws
/// InvalidArgument before fit() or on a schema mismatch.
CompiledModel compile(const learners::LogisticRegression& model,
                      const data::Dataset& train);

/// Lower trained naive Bayes to log-prior + per-feature likelihood tables.
/// Throws InvalidArgument before fit() or on a schema mismatch.
CompiledModel compile(const learners::NaiveBayes& model, const data::Dataset& train);

/// Lower linear-kernel KRR to a regression weight vector (w = X^T alpha).
/// `feature_names` labels the matrix columns for device-side binding.
/// Throws InvalidArgument before fit(), for non-linear kernels, or when
/// the name count does not match the trained dimension.
CompiledModel compile(const kernels::KernelRidge& model,
                      const std::vector<std::string>& feature_names);

}  // namespace iotml::deploy
