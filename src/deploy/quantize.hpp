#pragma once

#include <cstddef>

#include "data/dataset.hpp"
#include "deploy/compiled_model.hpp"

namespace iotml::deploy {

/// Lower every float32 tensor of `model` to symmetric fixed point at the
/// target precision (per-tensor scale = max|v| / qmax, value = scale * q).
/// The scalar bias stays float32. Throws InvalidArgument when `model` is not
/// float32 or `target` is not a quantized precision.
CompiledModel quantize(const CompiledModel& model, Precision target);

/// Fraction of `holdout` rows the artifact classifies correctly, scored by
/// DeviceRuntime exactly as a device would. Throws InvalidArgument for
/// unlabeled holdouts, empty holdouts or regression artifacts.
double holdout_accuracy(const CompiledModel& model, const data::Dataset& holdout);

/// Footprint and accuracy effect of quantizing one artifact.
struct QuantizationReport {
  Precision precision = Precision::kInt8;
  std::size_t float32_bytes = 0;   ///< encoded size before quantization
  std::size_t quantized_bytes = 0; ///< encoded size after
  double footprint_ratio = 1.0;    ///< float32_bytes / quantized_bytes
  std::size_t holdout_rows = 0;
  double holdout_accuracy_float = 0.0;
  double holdout_accuracy_quantized = 0.0;
  /// Percentage points lost (negative) or gained by quantization.
  double accuracy_delta_points = 0.0;
};

/// Quantize `model` to `target` and measure both artifacts on `holdout`.
/// When `quantized_out` is non-null the quantized artifact is returned
/// through it (so callers deploy the exact model that was measured).
/// Throws InvalidArgument under the same conditions as quantize() and
/// holdout_accuracy().
QuantizationReport quantize_with_report(const CompiledModel& model, Precision target,
                                        const data::Dataset& holdout,
                                        CompiledModel* quantized_out = nullptr);

}  // namespace iotml::deploy
