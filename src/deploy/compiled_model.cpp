#include "deploy/compiled_model.hpp"

#include <algorithm>

#include "deploy/codec.hpp"
#include "util/error.hpp"

namespace iotml::deploy {

namespace {

constexpr std::uint8_t kMagic[4] = {'I', 'O', 'M', 'L'};
constexpr std::uint16_t kFormatVersion = 1;

void encode_tensor(ByteWriter& w, const Tensor& t) {
  w.u8(enum_u8(t.precision));
  w.f32(t.scale);
  w.u32(narrow_u32(t.size(), "tensor length"));
  switch (t.precision) {
    case Precision::kFloat32:
      for (float v : t.f) w.f32(v);
      break;
    case Precision::kInt16:
      for (std::int16_t v : t.q) w.i16(v);
      break;
    case Precision::kInt8:
      for (std::int16_t v : t.q) w.i8(narrow_i8(v, "int8 tensor value"));
      break;
  }
}

Tensor decode_tensor(ByteReader& r) {
  Tensor t;
  const std::uint8_t p = r.u8();
  IOTML_CHECK(p <= enum_u8(Precision::kInt8),
              "CompiledModel::decode: bad tensor precision tag");
  t.precision = static_cast<Precision>(p);
  t.scale = r.f32();
  const std::uint32_t n = r.u32();
  switch (t.precision) {
    case Precision::kFloat32:
      t.f.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) t.f.push_back(r.f32());
      break;
    case Precision::kInt16:
      t.q.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) t.q.push_back(r.i16());
      break;
    case Precision::kInt8:
      t.q.reserve(n);
      for (std::uint32_t i = 0; i < n; ++i) t.q.push_back(r.i8());
      break;
  }
  return t;
}

/// Worst-case (comparisons, lookups) on any root-to-leaf path.
void tree_path_cost(const TreeModel& tree, std::uint16_t node_id,
                    std::uint64_t comparisons, std::uint64_t lookups,
                    InferenceCost& worst) {
  const TreeNode& node = tree.nodes[node_id];
  if (node.leaf()) {
    if (comparisons + lookups > worst.comparisons + worst.table_lookups) {
      worst.comparisons = comparisons;
      worst.table_lookups = lookups;
    }
    return;
  }
  const std::uint64_t c = comparisons + (node.numeric() ? 1 : 0);
  const std::uint64_t l = lookups + (node.numeric() ? 0 : 1);
  bool any_child = false;
  for (std::size_t s = 0; s < node.child_count; ++s) {
    const std::uint16_t child = tree.child_index[node.child_base + s];
    if (child == kNoChild) continue;
    any_child = true;
    tree_path_cost(tree, child, c, l, worst);
  }
  if (!any_child && c + l > worst.comparisons + worst.table_lookups) {
    worst.comparisons = c;
    worst.table_lookups = l;
  }
}

}  // namespace

std::string model_kind_name(ModelKind kind) {
  switch (kind) {
    case ModelKind::kTree: return "tree";
    case ModelKind::kLinear: return "linear";
    case ModelKind::kNaiveBayes: return "naive-bayes";
  }
  return "?";
}

std::string precision_name(Precision p) {
  switch (p) {
    case Precision::kFloat32: return "float32";
    case Precision::kInt16: return "int16";
    case Precision::kInt8: return "int8";
  }
  return "?";
}

std::vector<std::uint8_t> CompiledModel::encode() const {
  validate();
  ByteWriter w;
  for (std::uint8_t m : kMagic) w.u8(m);
  w.u16(version);
  w.u8(enum_u8(kind));
  w.u8(enum_u8(precision));
  w.u16(num_classes);
  w.u16(narrow_u16(features.size(), "feature count"));
  for (const FeatureSchema& fs : features) {
    w.str(fs.name);
    w.u8(fs.categorical ? 1 : 0);
    w.u16(narrow_u16(fs.categories.size(), "category count"));
    for (const std::string& c : fs.categories) w.str(c);
  }

  switch (kind) {
    case ModelKind::kTree: {
      w.u16(narrow_u16(tree.nodes.size(), "tree node count"));
      w.u16(narrow_u16(tree.child_index.size(), "tree child pool size"));
      for (const TreeNode& n : tree.nodes) {
        w.u8(n.flags);
        w.u8(n.label);
        w.u16(n.feature);
        w.u16(n.child_base);
        w.u8(n.child_count);
        w.u8(n.missing_slot);
      }
      for (std::uint16_t c : tree.child_index) w.u16(c);
      encode_tensor(w, tree.thresholds);
      break;
    }
    case ModelKind::kLinear: {
      encode_tensor(w, linear.weights);
      w.f32(linear.bias);
      encode_tensor(w, linear.impute);
      w.u8(linear.regression);
      break;
    }
    case ModelKind::kNaiveBayes: {
      encode_tensor(w, nb.log_prior);
      for (std::size_t fi = 0; fi < features.size(); ++fi) {
        const NaiveBayesFeature& f = nb.features[fi];
        if (features[fi].categorical) {
          encode_tensor(w, f.log_likelihood);
        } else {
          encode_tensor(w, f.mean);
          encode_tensor(w, f.variance);
          for (std::uint8_t present : f.class_present) w.u8(present);
        }
      }
      break;
    }
  }

  const std::uint32_t checksum = fnv1a(w.bytes().data(), w.size());
  w.u32(checksum);
  return w.take();
}

CompiledModel CompiledModel::decode(const std::vector<std::uint8_t>& bytes) {
  IOTML_CHECK(bytes.size() >= 14, "CompiledModel::decode: artifact too short");
  const std::uint32_t expect = fnv1a(bytes.data(), bytes.size() - 4);
  ByteReader trailer(bytes.data() + bytes.size() - 4, 4);
  IOTML_CHECK(trailer.u32() == expect,
              "CompiledModel::decode: checksum mismatch (corrupt artifact)");

  ByteReader r(bytes.data(), bytes.size() - 4);
  for (std::uint8_t m : kMagic) {
    IOTML_CHECK(r.u8() == m, "CompiledModel::decode: bad magic");
  }
  CompiledModel model;
  model.version = r.u16();
  IOTML_CHECK(model.version == kFormatVersion,
              "CompiledModel::decode: unsupported artifact version");
  const std::uint8_t kind_tag = r.u8();
  IOTML_CHECK(kind_tag >= 1 && kind_tag <= 3, "CompiledModel::decode: bad kind tag");
  model.kind = static_cast<ModelKind>(kind_tag);
  const std::uint8_t prec_tag = r.u8();
  IOTML_CHECK(prec_tag <= 2, "CompiledModel::decode: bad precision tag");
  model.precision = static_cast<Precision>(prec_tag);
  model.num_classes = r.u16();
  const std::uint16_t n_features = r.u16();
  model.features.reserve(n_features);
  for (std::uint16_t i = 0; i < n_features; ++i) {
    FeatureSchema fs;
    fs.name = r.str();
    fs.categorical = r.u8() != 0;
    const std::uint16_t n_cats = r.u16();
    fs.categories.reserve(n_cats);
    for (std::uint16_t c = 0; c < n_cats; ++c) fs.categories.push_back(r.str());
    model.features.push_back(std::move(fs));
  }

  switch (model.kind) {
    case ModelKind::kTree: {
      const std::uint16_t n_nodes = r.u16();
      const std::uint16_t n_children = r.u16();
      model.tree.nodes.reserve(n_nodes);
      for (std::uint16_t i = 0; i < n_nodes; ++i) {
        TreeNode n;
        n.flags = r.u8();
        n.label = r.u8();
        n.feature = r.u16();
        n.child_base = r.u16();
        n.child_count = r.u8();
        n.missing_slot = r.u8();
        model.tree.nodes.push_back(n);
      }
      model.tree.child_index.reserve(n_children);
      for (std::uint16_t i = 0; i < n_children; ++i) {
        model.tree.child_index.push_back(r.u16());
      }
      model.tree.thresholds = decode_tensor(r);
      break;
    }
    case ModelKind::kLinear: {
      model.linear.weights = decode_tensor(r);
      model.linear.bias = r.f32();
      model.linear.impute = decode_tensor(r);
      model.linear.regression = r.u8();
      break;
    }
    case ModelKind::kNaiveBayes: {
      model.nb.log_prior = decode_tensor(r);
      model.nb.features.resize(model.features.size());
      for (std::size_t fi = 0; fi < model.features.size(); ++fi) {
        NaiveBayesFeature& f = model.nb.features[fi];
        if (model.features[fi].categorical) {
          f.log_likelihood = decode_tensor(r);
        } else {
          f.mean = decode_tensor(r);
          f.variance = decode_tensor(r);
          f.class_present.reserve(model.num_classes);
          for (std::uint16_t c = 0; c < model.num_classes; ++c) {
            f.class_present.push_back(r.u8());
          }
        }
      }
      break;
    }
  }
  IOTML_CHECK(r.done(), "CompiledModel::decode: trailing bytes after body");
  model.validate();
  return model;
}

std::size_t CompiledModel::size_bytes() const { return encode().size(); }

InferenceCost CompiledModel::cost_per_row() const {
  InferenceCost cost;
  switch (kind) {
    case ModelKind::kTree:
      if (!tree.nodes.empty()) tree_path_cost(tree, 0, 0, 0, cost);
      break;
    case ModelKind::kLinear:
      cost.multiply_adds = linear.weights.size();
      cost.comparisons = linear.regression != 0 ? 0 : 1;
      break;
    case ModelKind::kNaiveBayes: {
      for (std::size_t fi = 0; fi < features.size(); ++fi) {
        if (features[fi].categorical) {
          // One dictionary probe, then one add per class.
          cost.table_lookups += 1;
          cost.multiply_adds += num_classes;
        } else {
          // (v - mean)^2 * inv_2var + bias add, per class.
          cost.multiply_adds += 2ULL * num_classes;
        }
      }
      // argmax over the class scores.
      cost.comparisons += num_classes > 0 ? num_classes - 1U : 0U;
      break;
    }
  }
  return cost;
}

void CompiledModel::validate() const {
  IOTML_CHECK(num_classes >= 1, "CompiledModel: num_classes must be >= 1");
  IOTML_CHECK(!features.empty(), "CompiledModel: no features");
  switch (kind) {
    case ModelKind::kTree: {
      IOTML_CHECK(!tree.nodes.empty(), "CompiledModel: tree has no nodes");
      IOTML_CHECK(tree.thresholds.size() == tree.nodes.size(),
                  "CompiledModel: thresholds/nodes length mismatch");
      for (const TreeNode& n : tree.nodes) {
        IOTML_CHECK(n.label < num_classes, "CompiledModel: tree label out of range");
        if (n.leaf()) continue;
        IOTML_CHECK(n.feature < features.size(),
                    "CompiledModel: tree split feature out of range");
        IOTML_CHECK(n.child_count >= 1, "CompiledModel: internal node with no children");
        IOTML_CHECK(static_cast<std::size_t>(n.child_base) + n.child_count <=
                        tree.child_index.size(),
                    "CompiledModel: tree child slots out of range");
        IOTML_CHECK(n.missing_slot < n.child_count,
                    "CompiledModel: missing_slot out of range");
        for (std::size_t s = 0; s < n.child_count; ++s) {
          const std::uint16_t child = tree.child_index[n.child_base + s];
          IOTML_CHECK(child == kNoChild || child < tree.nodes.size(),
                      "CompiledModel: tree child id out of range");
        }
      }
      break;
    }
    case ModelKind::kLinear:
      IOTML_CHECK(linear.weights.size() == features.size(),
                  "CompiledModel: weights/features length mismatch");
      IOTML_CHECK(linear.impute.size() == features.size(),
                  "CompiledModel: impute/features length mismatch");
      break;
    case ModelKind::kNaiveBayes: {
      IOTML_CHECK(nb.log_prior.size() == num_classes,
                  "CompiledModel: log_prior/classes length mismatch");
      IOTML_CHECK(nb.features.size() == features.size(),
                  "CompiledModel: nb features/schema length mismatch");
      for (std::size_t fi = 0; fi < features.size(); ++fi) {
        const NaiveBayesFeature& f = nb.features[fi];
        if (features[fi].categorical) {
          IOTML_CHECK(f.log_likelihood.size() ==
                          static_cast<std::size_t>(num_classes) *
                              features[fi].categories.size(),
                      "CompiledModel: nb table size mismatch");
        } else {
          IOTML_CHECK(f.mean.size() == num_classes && f.variance.size() == num_classes &&
                          f.class_present.size() == num_classes,
                      "CompiledModel: nb gaussian size mismatch");
        }
      }
      break;
    }
  }
}

}  // namespace iotml::deploy
