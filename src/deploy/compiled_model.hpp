#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace iotml::deploy {

/// Which learner family a compiled artifact encodes.
enum class ModelKind : std::uint8_t {
  kTree = 1,       ///< flat array-packed decision tree
  kLinear = 2,     ///< weight vector + bias (logistic head or KRR regression)
  kNaiveBayes = 3  ///< log-prior + per-feature likelihood tables
};

std::string model_kind_name(ModelKind kind);

/// Storage precision of a model's numeric constants. Quantized tensors hold
/// fixed-point values q with dequantization value = scale * q.
enum class Precision : std::uint8_t { kFloat32 = 0, kInt16 = 1, kInt8 = 2 };

std::string precision_name(Precision p);

/// A flat vector of model constants in the artifact's storage precision.
/// Float32 models fill `f`; quantized models fill `q` (int8 values are held
/// in int16 storage but encode as one byte each). The in-memory tensor
/// mirrors the encoded bytes exactly, so encode(decode(bytes)) == bytes.
struct Tensor {
  Precision precision = Precision::kFloat32;
  float scale = 1.0F;  ///< dequantization step (unused for float32)
  std::vector<float> f;
  std::vector<std::int16_t> q;

  std::size_t size() const noexcept {
    return precision == Precision::kFloat32 ? f.size() : q.size();
  }
  /// Dequantized read.
  float at(std::size_t i) const {
    return precision == Precision::kFloat32 ? f[i]
                                            : scale * static_cast<float>(q[i]);
  }
  /// Encoded payload bytes (excluding the precision/scale/count header).
  std::size_t value_bytes() const noexcept {
    switch (precision) {
      case Precision::kFloat32: return 4 * f.size();
      case Precision::kInt16: return 2 * q.size();
      case Precision::kInt8: return q.size();
    }
    return 0;
  }
};

/// Binding schema of one model input: the feature's training-time name, kind
/// and (for categorical features) category dictionary. The device runtime
/// matches these against its local dataset columns by name, so an artifact
/// is portable across devices whose schemas share the trained columns.
struct FeatureSchema {
  std::string name;
  bool categorical = false;
  std::vector<std::string> categories;  ///< training-time dictionary
};

inline constexpr std::uint16_t kNoChild = 0xFFFF;

/// One node of a flat array-packed tree. Children live in a shared
/// `child_index` pool: slots [child_base, child_base + child_count) hold
/// node ids (kNoChild for branches that were empty at training time).
/// Numeric splits have two slots (<= threshold, > threshold); categorical
/// splits have one slot per training-time category (plus possibly a
/// dedicated missing slot). `missing_slot` routes rows whose split feature
/// is missing. Leaves carry only `label`; internal nodes also carry it as
/// the local-majority fallback for unseen categories.
struct TreeNode {
  std::uint8_t flags = 0;  ///< bit0 = leaf, bit1 = numeric split
  std::uint8_t label = 0;
  std::uint16_t feature = 0;
  std::uint16_t child_base = 0;
  std::uint8_t child_count = 0;
  std::uint8_t missing_slot = 0;

  bool leaf() const noexcept { return (flags & 1U) != 0U; }
  bool numeric() const noexcept { return (flags & 2U) != 0U; }
};

struct TreeModel {
  std::vector<TreeNode> nodes;  ///< pre-order; nodes[0] is the root
  std::vector<std::uint16_t> child_index;
  Tensor thresholds;  ///< one per node (0 for leaves and categorical splits)
};

/// w.x + b over the schema features; missing cells substitute `impute`
/// (the training column mean, in raw units). Classification heads threshold
/// the score at 0; regression heads return it as-is.
struct LinearModel {
  Tensor weights;
  float bias = 0.0F;
  Tensor impute;
  std::uint8_t regression = 0;
};

/// Per-feature naive-Bayes statistics. Numeric features score per-class
/// Gaussians (class_present masks classes with no training data);
/// categorical features index a [class x category] log-likelihood table.
struct NaiveBayesFeature {
  Tensor mean;            ///< numeric: [C]
  Tensor variance;        ///< numeric: [C]
  std::vector<std::uint8_t> class_present;  ///< numeric: [C]
  Tensor log_likelihood;  ///< categorical: [C * categories]
};

struct NaiveBayesModel {
  Tensor log_prior;  ///< [C]
  std::vector<NaiveBayesFeature> features;
};

/// Deterministic per-inference cost of a compiled model, in primitive device
/// operations. Tree costs are worst-case root-to-leaf; linear and NB costs
/// are exact per row. This is the currency the paper's cost/accuracy
/// trade-off is priced in on the device tier.
struct InferenceCost {
  std::uint64_t multiply_adds = 0;
  std::uint64_t comparisons = 0;
  std::uint64_t table_lookups = 0;

  InferenceCost& operator+=(const InferenceCost& o) {
    multiply_adds += o.multiply_adds;
    comparisons += o.comparisons;
    table_lookups += o.table_lookups;
    return *this;
  }
};

/// A trained learner lowered to a compact, versioned, byte-exact artifact:
/// flat arrays, no pointers, every numeric constant in a Tensor whose
/// storage precision the quantizer can lower. `encode` produces the stable
/// little-endian wire format ("IOML", version, kind, schema, body, FNV-1a
/// trailer); `decode` round-trips it byte-exactly, so artifact bytes — not
/// an in-memory proxy — are what the fleet's links charge for.
struct CompiledModel {
  std::uint16_t version = 1;
  ModelKind kind = ModelKind::kTree;
  Precision precision = Precision::kFloat32;
  std::uint16_t num_classes = 2;
  std::vector<FeatureSchema> features;

  TreeModel tree;
  LinearModel linear;
  NaiveBayesModel nb;

  std::vector<std::uint8_t> encode() const;

  /// Parse an encoded artifact. Throws InvalidArgument on bad magic, an
  /// unsupported version, a checksum mismatch or any truncation.
  static CompiledModel decode(const std::vector<std::uint8_t>& bytes);

  /// Encoded artifact size in bytes (== encode().size()).
  std::size_t size_bytes() const;

  /// Worst-case cost of scoring one row.
  InferenceCost cost_per_row() const;

  /// Structural sanity of the flat arrays (ids in range, tensor sizes
  /// consistent). Throws InvalidArgument on violation; decode() runs this.
  void validate() const;
};

}  // namespace iotml::deploy
