#include "deploy/runtime.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace iotml::deploy {

DeviceRuntime::DeviceRuntime(CompiledModel model) : model_(std::move(model)) {
  IOTML_CHECK(!model_.features.empty(), "DeviceRuntime: artifact binds no features");
  model_.validate();
}

void DeviceRuntime::bind(const data::Dataset& ds) {
  const std::size_t nf = model_.features.size();
  std::vector<std::size_t> column_of(nf);
  std::vector<std::vector<std::uint32_t>> cat_remap(nf);
  for (std::size_t i = 0; i < nf; ++i) {
    const FeatureSchema& fs = model_.features[i];
    column_of[i] = ds.column_index(fs.name);  // throws when absent
    const data::Column& col = ds.column(column_of[i]);
    const bool local_categorical = col.type() == data::ColumnType::kCategorical;
    IOTML_CHECK(local_categorical == fs.categorical,
                "DeviceRuntime::bind: column kind mismatch for feature '" + fs.name + "'");
    if (fs.categorical) {
      cat_remap[i].assign(col.categories().size(), kUnseenCategory);
      for (std::size_t local = 0; local < col.categories().size(); ++local) {
        for (std::size_t train = 0; train < fs.categories.size(); ++train) {
          if (col.categories()[local] == fs.categories[train]) {
            cat_remap[i][local] = static_cast<std::uint32_t>(train);
            break;
          }
        }
      }
    }
  }
  column_of_ = std::move(column_of);
  cat_remap_ = std::move(cat_remap);

  nb_mean_.assign(nf, {});
  nb_log_norm_.assign(nf, {});
  nb_inv_2var_.assign(nf, {});
  class_score_.assign(model_.num_classes, 0.0);
  if (model_.kind == ModelKind::kNaiveBayes) {
    for (std::size_t f = 0; f < nf; ++f) {
      if (model_.features[f].categorical) continue;
      const NaiveBayesFeature& feat = model_.nb.features[f];
      const std::size_t classes = feat.class_present.size();
      nb_mean_[f].resize(classes);
      nb_log_norm_[f].resize(classes);
      nb_inv_2var_[f].resize(classes);
      for (std::size_t c = 0; c < classes; ++c) {
        // Quantization can round tiny variances to zero; re-apply the
        // trainer's degenerate-feature floor after dequantizing.
        const double variance =
            std::max(static_cast<double>(feat.variance.at(c)), 1e-9);
        nb_mean_[f][c] = static_cast<double>(feat.mean.at(c));
        nb_log_norm_[f][c] = -0.5 * std::log(2.0 * std::numbers::pi * variance);
        nb_inv_2var_[f][c] = 1.0 / (2.0 * variance);
      }
    }
  }
  bound_ = true;
}

std::uint32_t DeviceRuntime::remap_category(std::size_t feature,
                                            std::size_t local_index) const {
  // Categories interned into the local dataset after bind() have no remap
  // entry; treat them as unseen rather than reallocating on the hot path.
  const std::vector<std::uint32_t>& remap = cat_remap_[feature];
  return local_index < remap.size() ? remap[local_index] : kUnseenCategory;
}

int DeviceRuntime::predict_row(const data::Dataset& ds, std::size_t row) const {
  IOTML_CHECK(bound_, "DeviceRuntime::predict_row: call bind() first");
  switch (model_.kind) {
    case ModelKind::kTree: return tree_predict(ds, row);
    case ModelKind::kNaiveBayes: return nb_predict(ds, row);
    case ModelKind::kLinear: break;
  }
  IOTML_CHECK(model_.linear.regression == 0,
              "DeviceRuntime::predict_row: regression artifact (use score_row)");
  return linear_score(ds, row) >= 0.0 ? 1 : 0;
}

double DeviceRuntime::score_row(const data::Dataset& ds, std::size_t row) const {
  IOTML_CHECK(bound_, "DeviceRuntime::score_row: call bind() first");
  IOTML_CHECK(model_.kind == ModelKind::kLinear,
              "DeviceRuntime::score_row: only linear artifacts have a raw score");
  return linear_score(ds, row);
}

int DeviceRuntime::tree_predict(const data::Dataset& ds, std::size_t row) const {
  std::size_t node_id = 0;
  // Pre-order flattening makes every child id greater than its parent's, so
  // the walk takes at most nodes.size() steps; the guard turns a corrupt
  // artifact into a catchable error instead of a hang.
  for (std::size_t steps = 0; steps <= model_.tree.nodes.size(); ++steps) {
    const TreeNode& node = model_.tree.nodes[node_id];
    if (node.leaf()) return node.label;

    const data::Column& col = ds.column(column_of_[node.feature]);
    std::size_t slot;
    if (col.is_missing(row)) {
      slot = node.missing_slot;
    } else if (node.numeric()) {
      const double threshold =
          static_cast<double>(model_.tree.thresholds.at(node_id));
      slot = col.numeric(row) <= threshold ? 0 : 1;
    } else {
      const std::uint32_t train = remap_category(node.feature, col.category(row));
      if (train == kUnseenCategory || train >= node.child_count) return node.label;
      slot = train;
    }
    const std::uint16_t child =
        model_.tree.child_index[node.child_base + slot];
    if (child == kNoChild) return node.label;  // branch empty at training time
    node_id = child;
  }
  IOTML_CHECK(false, "DeviceRuntime: tree walk did not reach a leaf");
  return 0;
}

double DeviceRuntime::linear_score(const data::Dataset& ds, std::size_t row) const {
  double z = static_cast<double>(model_.linear.bias);
  for (std::size_t f = 0; f < model_.features.size(); ++f) {
    const data::Column& col = ds.column(column_of_[f]);
    double value;
    if (col.is_missing(row)) {
      value = static_cast<double>(model_.linear.impute.at(f));
    } else if (model_.features[f].categorical) {
      const std::uint32_t train = remap_category(f, col.category(row));
      value = train == kUnseenCategory
                  ? static_cast<double>(model_.linear.impute.at(f))
                  : static_cast<double>(train);
    } else {
      value = col.numeric(row);
    }
    z += static_cast<double>(model_.linear.weights.at(f)) * value;
  }
  return z;
}

int DeviceRuntime::nb_predict(const data::Dataset& ds, std::size_t row) const {
  for (std::size_t c = 0; c < class_score_.size(); ++c) {
    class_score_[c] = static_cast<double>(model_.nb.log_prior.at(c));
  }
  for (std::size_t f = 0; f < model_.features.size(); ++f) {
    const data::Column& col = ds.column(column_of_[f]);
    if (col.is_missing(row)) continue;  // marginalize the feature out
    const NaiveBayesFeature& feat = model_.nb.features[f];
    if (model_.features[f].categorical) {
      const std::uint32_t train = remap_category(f, col.category(row));
      if (train == kUnseenCategory) continue;  // uniform across classes
      const std::size_t cats = model_.features[f].categories.size();
      for (std::size_t c = 0; c < class_score_.size(); ++c) {
        class_score_[c] += static_cast<double>(feat.log_likelihood.at(c * cats + train));
      }
    } else {
      const double v = col.numeric(row);
      for (std::size_t c = 0; c < class_score_.size(); ++c) {
        if (feat.class_present[c] == 0) continue;
        const double d = v - nb_mean_[f][c];
        class_score_[c] += nb_log_norm_[f][c] - d * d * nb_inv_2var_[f][c];
      }
    }
  }
  return static_cast<int>(
      std::max_element(class_score_.begin(), class_score_.end()) -
      class_score_.begin());
}

}  // namespace iotml::deploy
