#include "multiview/cca.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace iotml::multiview {

namespace {

/// Symmetric inverse square root via eigendecomposition (with eigenvalue
/// floor for stability).
la::Matrix inverse_sqrt(const la::Matrix& a) {
  const la::EigenResult e = la::eigen_symmetric(a);
  la::Matrix d(a.rows(), a.cols());
  for (std::size_t i = 0; i < e.values.size(); ++i) {
    d(i, i) = 1.0 / std::sqrt(std::max(e.values[i], 1e-12));
  }
  return e.vectors * d * e.vectors.transpose();
}

la::Matrix centered(const la::Matrix& x, const la::Vector& mean) {
  la::Matrix out = x;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) out(r, c) -= mean[c];
  }
  return out;
}

}  // namespace

CcaResult fit_cca(const la::Matrix& x, const la::Matrix& y, std::size_t components,
                  double reg) {
  IOTML_CHECK(x.rows() == y.rows(), "fit_cca: row count mismatch");
  IOTML_CHECK(x.rows() >= 3, "fit_cca: need at least 3 paired samples");
  IOTML_CHECK(components >= 1, "fit_cca: components must be >= 1");
  IOTML_CHECK(reg >= 0.0, "fit_cca: reg must be >= 0");
  const std::size_t k = std::min({components, x.cols(), y.cols()});

  CcaResult out;
  out.mean_x = la::column_means(x);
  out.mean_y = la::column_means(y);

  la::Matrix sxx = la::covariance(x);
  la::Matrix syy = la::covariance(y);
  const la::Matrix sxy = la::cross_covariance(x, y);
  for (std::size_t i = 0; i < sxx.rows(); ++i) sxx(i, i) += reg;
  for (std::size_t i = 0; i < syy.rows(); ++i) syy(i, i) += reg;

  // M = Sxx^{-1/2} Sxy Syy^{-1} Syx Sxx^{-1/2} is symmetric PSD with
  // eigenvalues rho_i^2 and eigenvectors u_i; wx_i = Sxx^{-1/2} u_i.
  const la::Matrix sxx_isqrt = inverse_sqrt(sxx);
  const la::Matrix syy_inv = la::inverse(syy);
  const la::Matrix m =
      sxx_isqrt * sxy * syy_inv * sxy.transpose() * sxx_isqrt;
  // Symmetrize against numeric drift before the eigensolver.
  la::Matrix m_sym = m;
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      m_sym(i, j) = 0.5 * (m(i, j) + m(j, i));
    }
  }
  const la::EigenResult e = la::eigen_symmetric(m_sym);

  out.wx = la::Matrix(x.cols(), k);
  out.wy = la::Matrix(y.cols(), k);
  out.correlations.resize(k);
  for (std::size_t c = 0; c < k; ++c) {
    const double rho2 = std::max(e.values[c], 0.0);
    out.correlations[c] = std::sqrt(rho2);

    la::Vector u(x.cols());
    for (std::size_t r = 0; r < x.cols(); ++r) u[r] = e.vectors(r, c);
    const la::Vector wx = sxx_isqrt * u;
    for (std::size_t r = 0; r < x.cols(); ++r) out.wx(r, c) = wx[r];

    // wy proportional to Syy^{-1} Syx wx; normalize to unit Syy-variance.
    la::Vector wy = syy_inv * (sxy.transpose() * wx);
    double variance = 0.0;
    for (std::size_t i = 0; i < wy.size(); ++i) {
      for (std::size_t j = 0; j < wy.size(); ++j) variance += wy[i] * syy(i, j) * wy[j];
    }
    if (variance > 1e-15) {
      const double scale = 1.0 / std::sqrt(variance);
      for (double& v : wy) v *= scale;
    }
    for (std::size_t r = 0; r < y.cols(); ++r) out.wy(r, c) = wy[r];
  }
  return out;
}

la::Matrix cca_project_x(const CcaResult& cca, const la::Matrix& x) {
  IOTML_CHECK(x.cols() == cca.wx.rows(), "cca_project_x: dimension mismatch");
  return centered(x, cca.mean_x) * cca.wx;
}

la::Matrix cca_project_y(const CcaResult& cca, const la::Matrix& y) {
  IOTML_CHECK(y.cols() == cca.wy.rows(), "cca_project_y: dimension mismatch");
  return centered(y, cca.mean_y) * cca.wy;
}

double canonical_correlation(const CcaResult& cca, const la::Matrix& x,
                             const la::Matrix& y, std::size_t component) {
  IOTML_CHECK(component < cca.correlations.size(),
              "canonical_correlation: component out of range");
  const la::Matrix px = cca_project_x(cca, x);
  const la::Matrix py = cca_project_y(cca, y);
  const std::size_t n = px.rows();
  IOTML_CHECK(n >= 2, "canonical_correlation: need >= 2 samples");

  double mean_a = 0.0, mean_b = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    mean_a += px(r, component);
    mean_b += py(r, component);
  }
  mean_a /= static_cast<double>(n);
  mean_b /= static_cast<double>(n);
  double cov = 0.0, var_a = 0.0, var_b = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const double da = px(r, component) - mean_a;
    const double db = py(r, component) - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  const double denom = std::sqrt(var_a * var_b);
  return denom > 1e-15 ? cov / denom : 0.0;
}

}  // namespace iotml::multiview
