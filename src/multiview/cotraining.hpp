#pragma once

#include <memory>

#include "learners/naive_bayes.hpp"
#include "multiview/views.hpp"
#include "util/rng.hpp"

namespace iotml::multiview {

/// Co-training (the multi-view technique named in Section I: "co-training
/// algorithms pursue agreement between models trained on distinct views").
///
/// Two naive-Bayes learners are trained on two views of a small labeled set;
/// each round, each learner pseudo-labels the unlabeled examples it is most
/// confident about and those are added to the *other* learner's training
/// pool, growing agreement between the views.
struct CoTrainingParams {
  std::size_t rounds = 15;
  std::size_t additions_per_class = 2;   ///< per learner per round
  double min_confidence = 0.7;           ///< posterior threshold for adoption
};

class CoTrainer {
 public:
  explicit CoTrainer(View view_a, View view_b, CoTrainingParams params = {});

  /// Train from `labeled` plus the unlabeled feature matrix.
  void fit(const data::Samples& labeled, const la::Matrix& unlabeled);

  /// Predict by summing the two views' log posteriors (agreement voting).
  std::vector<int> predict(const la::Matrix& x) const;
  double accuracy(const data::Samples& test) const;

  /// How many unlabeled examples ended up pseudo-labeled.
  std::size_t pseudo_labeled_count() const noexcept { return pseudo_labeled_; }

 private:
  View view_a_, view_b_;
  CoTrainingParams params_;
  learners::NaiveBayes model_a_, model_b_;
  std::size_t pseudo_labeled_ = 0;
  std::size_t num_classes_ = 0;
  bool fitted_ = false;
};

}  // namespace iotml::multiview
