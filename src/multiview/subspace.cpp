#include "multiview/subspace.hpp"

#include "util/error.hpp"

namespace iotml::multiview {

SubspaceClassifier::SubspaceClassifier(View view_a, View view_b,
                                       std::size_t components, double cca_reg)
    : view_a_(std::move(view_a)),
      view_b_(std::move(view_b)),
      components_(components),
      cca_reg_(cca_reg) {
  IOTML_CHECK(!view_a_.empty() && !view_b_.empty(), "SubspaceClassifier: empty view");
  IOTML_CHECK(components >= 1, "SubspaceClassifier: components must be >= 1");
}

data::Dataset SubspaceClassifier::project_to_subspace(
    const la::Matrix& x, const std::vector<int>& labels) const {
  data::Samples probe;
  probe.x = x;
  const la::Matrix pa = cca_project_x(cca_, project(probe, view_a_).x);
  const la::Matrix pb = cca_project_y(cca_, project(probe, view_b_).x);

  data::Dataset out;
  for (std::size_t c = 0; c < pa.cols(); ++c) {
    data::Column& col = out.add_numeric_column("za" + std::to_string(c));
    for (std::size_t r = 0; r < pa.rows(); ++r) col.push_numeric(pa(r, c));
  }
  for (std::size_t c = 0; c < pb.cols(); ++c) {
    data::Column& col = out.add_numeric_column("zb" + std::to_string(c));
    for (std::size_t r = 0; r < pb.rows(); ++r) col.push_numeric(pb(r, c));
  }
  if (!labels.empty()) out.set_labels(labels);
  return out;
}

void SubspaceClassifier::fit(const data::Samples& labeled,
                             const la::Matrix& subspace_pool) {
  IOTML_CHECK(!labeled.y.empty(), "SubspaceClassifier::fit: unlabeled training set");
  IOTML_CHECK(subspace_pool.rows() >= 3,
              "SubspaceClassifier::fit: subspace pool needs >= 3 rows");

  data::Samples pool;
  pool.x = subspace_pool;
  cca_ = fit_cca(project(pool, view_a_).x, project(pool, view_b_).x, components_,
                 cca_reg_);

  classifier_ = learners::LogisticRegression();
  classifier_.fit(project_to_subspace(labeled.x, labeled.y));
  fitted_ = true;
}

std::vector<int> SubspaceClassifier::predict(const la::Matrix& x) const {
  IOTML_CHECK(fitted_, "SubspaceClassifier::predict: call fit() first");
  const data::Dataset projected = project_to_subspace(x, {});
  std::vector<int> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out.push_back(classifier_.predict_row(projected, r));
  }
  return out;
}

double SubspaceClassifier::accuracy(const data::Samples& test) const {
  IOTML_CHECK(!test.y.empty(), "SubspaceClassifier::accuracy: unlabeled test set");
  const auto predictions = predict(test.x);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == test.y[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

const CcaResult& SubspaceClassifier::subspace() const {
  IOTML_CHECK(fitted_, "SubspaceClassifier::subspace: call fit() first");
  return cca_;
}

}  // namespace iotml::multiview
