#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"

namespace iotml::multiview {

/// A view is a subset of feature columns — one facet of the feature set
/// (Section I: "a feature-set, collected by many different sensors ... will
/// have natively a faceted structure").
using View = std::vector<std::size_t>;

/// Restrict samples to one view's features.
data::Samples project(const data::Samples& s, const View& view);

/// Split the feature set [0, dim) into `count` contiguous views of (near)
/// equal size — a default facetting when none is known.
std::vector<View> contiguous_views(std::size_t dim, std::size_t count);

/// Order features so that highly correlated features are adjacent: greedy
/// chaining on |Pearson correlation| computed from the samples. Used by the
/// chain-based lattice search so that suffix-merging chains group related
/// features first.
std::vector<std::size_t> correlation_order(const data::Samples& s);

/// Pairwise |Pearson correlation| matrix of the features.
la::Matrix abs_correlation(const la::Matrix& x);

}  // namespace iotml::multiview
