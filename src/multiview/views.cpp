#include "multiview/views.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace iotml::multiview {

data::Samples project(const data::Samples& s, const View& view) {
  IOTML_CHECK(!view.empty(), "project: empty view");
  data::Samples out;
  out.x = la::Matrix(s.size(), view.size());
  out.y = s.y;
  for (std::size_t r = 0; r < s.size(); ++r) {
    for (std::size_t c = 0; c < view.size(); ++c) {
      IOTML_CHECK(view[c] < s.dim(), "project: feature index out of range");
      out.x(r, c) = s.x(r, view[c]);
    }
  }
  return out;
}

std::vector<View> contiguous_views(std::size_t dim, std::size_t count) {
  IOTML_CHECK(count >= 1 && count <= dim, "contiguous_views: bad view count");
  std::vector<View> views(count);
  for (std::size_t f = 0; f < dim; ++f) {
    views[f * count / dim].push_back(f);
  }
  return views;
}

la::Matrix abs_correlation(const la::Matrix& x) {
  const la::Matrix cov = la::covariance(x);
  la::Matrix corr(cov.rows(), cov.cols());
  for (std::size_t i = 0; i < cov.rows(); ++i) {
    for (std::size_t j = 0; j < cov.cols(); ++j) {
      const double denom = std::sqrt(cov(i, i) * cov(j, j));
      corr(i, j) = denom > 1e-12 ? std::fabs(cov(i, j)) / denom : 0.0;
    }
  }
  return corr;
}

std::vector<std::size_t> correlation_order(const data::Samples& s) {
  const std::size_t d = s.dim();
  IOTML_CHECK(d >= 1, "correlation_order: no features");
  if (d == 1) return {0};
  const la::Matrix corr = abs_correlation(s.x);

  // Start from the feature with the highest total correlation, then greedily
  // append the unused feature most correlated with the chain's tail.
  std::vector<bool> used(d, false);
  std::size_t start = 0;
  double best_total = -1.0;
  for (std::size_t i = 0; i < d; ++i) {
    double total = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      if (j != i) total += corr(i, j);
    }
    if (total > best_total) {
      best_total = total;
      start = i;
    }
  }

  std::vector<std::size_t> order{start};
  used[start] = true;
  while (order.size() < d) {
    const std::size_t tail = order.back();
    std::size_t next = 0;
    double best = -1.0;
    for (std::size_t j = 0; j < d; ++j) {
      if (!used[j] && corr(tail, j) > best) {
        best = corr(tail, j);
        next = j;
      }
    }
    order.push_back(next);
    used[next] = true;
  }
  return order;
}

}  // namespace iotml::multiview
