#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "multiview/views.hpp"

namespace iotml::multiview {

/// Canonical correlation analysis between two views — the "subspace learning"
/// of Section I: "identify a latent subspace shared by multiple views by
/// assuming that the input views are generated from it".
struct CcaResult {
  la::Matrix wx;  ///< x-side projection (dx x k), column per component
  la::Matrix wy;  ///< y-side projection (dy x k)
  std::vector<double> correlations;  ///< canonical correlations, descending
  la::Vector mean_x, mean_y;         ///< training means (projection centers)
};

/// Fit CCA with ridge regularization `reg` added to both covariance blocks.
/// `components` is capped at min(dx, dy). Rows of x and y are paired samples.
CcaResult fit_cca(const la::Matrix& x, const la::Matrix& y, std::size_t components,
                  double reg = 1e-6);

/// Project (centered) data through one side of the CCA.
la::Matrix cca_project_x(const CcaResult& cca, const la::Matrix& x);
la::Matrix cca_project_y(const CcaResult& cca, const la::Matrix& y);

/// Empirical correlation between the i-th canonical projections of paired
/// data (diagnostic; approximately equals correlations[i] on training data).
double canonical_correlation(const CcaResult& cca, const la::Matrix& x,
                             const la::Matrix& y, std::size_t component);

}  // namespace iotml::multiview
