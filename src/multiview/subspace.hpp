#pragma once

#include "learners/logistic.hpp"
#include "multiview/cca.hpp"
#include "multiview/views.hpp"

namespace iotml::multiview {

/// Subspace-learning classifier (Section I: "subspace learning algorithms
/// try to identify a latent subspace shared by multiple views"): fit CCA
/// between two views on (possibly unlabeled) data, project each view into
/// the shared subspace, and train a logistic classifier on the concatenated
/// projections of the labeled data.
///
/// The subspace can be learned from far more data than is labeled — the
/// semi-supervised advantage this classifier demonstrates.
class SubspaceClassifier {
 public:
  SubspaceClassifier(View view_a, View view_b, std::size_t components,
                     double cca_reg = 1e-4);

  /// Learn the shared subspace from `subspace_pool` (labels ignored; may be
  /// the labeled data itself) and the classifier from `labeled`.
  void fit(const data::Samples& labeled, const la::Matrix& subspace_pool);

  std::vector<int> predict(const la::Matrix& x) const;
  double accuracy(const data::Samples& test) const;

  const CcaResult& subspace() const;

 private:
  View view_a_, view_b_;
  std::size_t components_;
  double cca_reg_;
  CcaResult cca_;
  learners::LogisticRegression classifier_;
  bool fitted_ = false;

  data::Dataset project_to_subspace(const la::Matrix& x,
                                    const std::vector<int>& labels) const;
};

}  // namespace iotml::multiview
