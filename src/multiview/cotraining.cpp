#include "multiview/cotraining.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace iotml::multiview {

namespace {

/// Softmax confidence of the argmax class from log posteriors.
std::pair<int, double> confident_class(const std::vector<double>& log_posterior) {
  const double max_lp = *std::max_element(log_posterior.begin(), log_posterior.end());
  double total = 0.0;
  for (double lp : log_posterior) total += std::exp(lp - max_lp);
  const auto arg = static_cast<int>(
      std::max_element(log_posterior.begin(), log_posterior.end()) -
      log_posterior.begin());
  return {arg, 1.0 / total};  // exp(0) / sum
}

}  // namespace

CoTrainer::CoTrainer(View view_a, View view_b, CoTrainingParams params)
    : view_a_(std::move(view_a)), view_b_(std::move(view_b)), params_(params) {
  IOTML_CHECK(!view_a_.empty() && !view_b_.empty(), "CoTrainer: empty view");
  IOTML_CHECK(params.rounds >= 1, "CoTrainer: rounds must be >= 1");
  IOTML_CHECK(params.min_confidence > 0.0 && params.min_confidence < 1.0,
              "CoTrainer: min_confidence must be in (0, 1)");
}

void CoTrainer::fit(const data::Samples& labeled, const la::Matrix& unlabeled) {
  IOTML_CHECK(!labeled.y.empty(), "CoTrainer::fit: labeled set has no labels");
  IOTML_CHECK(unlabeled.cols() == labeled.dim() || unlabeled.rows() == 0,
              "CoTrainer::fit: unlabeled feature dimension mismatch");

  // Working pools: samples + labels per learner (start identical).
  data::Samples pool_a = labeled;
  data::Samples pool_b = labeled;
  num_classes_ = 0;
  for (int y : labeled.y) {
    num_classes_ = std::max(num_classes_, static_cast<std::size_t>(y) + 1);
  }
  pseudo_labeled_ = 0;

  std::vector<bool> consumed(unlabeled.rows(), false);

  auto train_pair = [&]() {
    model_a_ = learners::NaiveBayes();
    model_b_ = learners::NaiveBayes();
    model_a_.fit(data::samples_to_dataset(project(pool_a, view_a_)));
    model_b_.fit(data::samples_to_dataset(project(pool_b, view_b_)));
  };
  train_pair();

  auto append_row = [&](data::Samples& pool, const la::Matrix& x, std::size_t row,
                        int label) {
    la::Matrix grown(pool.size() + 1, pool.dim());
    for (std::size_t r = 0; r < pool.size(); ++r) {
      for (std::size_t c = 0; c < pool.dim(); ++c) grown(r, c) = pool.x(r, c);
    }
    for (std::size_t c = 0; c < pool.dim(); ++c) grown(pool.size(), c) = x(row, c);
    pool.x = std::move(grown);
    pool.y.push_back(label);
  };

  for (std::size_t round = 0; round < params_.rounds && unlabeled.rows() > 0; ++round) {
    bool any_added = false;

    // Each learner nominates its most confident unlabeled rows per class;
    // adopted rows feed the *other* learner.
    for (int which = 0; which < 2; ++which) {
      const learners::NaiveBayes& teacher = which == 0 ? model_a_ : model_b_;
      const View& teacher_view = which == 0 ? view_a_ : view_b_;
      data::Samples& student_pool = which == 0 ? pool_b : pool_a;

      data::Samples unl;
      unl.x = unlabeled;
      data::Dataset unl_view = data::samples_to_dataset(project(unl, teacher_view));

      // (confidence, row, label), best first, per class.
      std::vector<std::vector<std::pair<double, std::size_t>>> nominees(num_classes_);
      for (std::size_t r = 0; r < unlabeled.rows(); ++r) {
        if (consumed[r]) continue;
        const auto [label, confidence] = confident_class(teacher.log_posterior(unl_view, r));
        if (confidence >= params_.min_confidence) {
          nominees[static_cast<std::size_t>(label)].emplace_back(confidence, r);
        }
      }
      for (std::size_t c = 0; c < num_classes_; ++c) {
        auto& list = nominees[c];
        std::sort(list.begin(), list.end(), std::greater<>());
        for (std::size_t k = 0; k < std::min(params_.additions_per_class, list.size());
             ++k) {
          const std::size_t row = list[k].second;
          if (consumed[row]) continue;
          append_row(student_pool, unlabeled, row, static_cast<int>(c));
          consumed[row] = true;
          ++pseudo_labeled_;
          any_added = true;
        }
      }
    }
    if (!any_added) break;
    train_pair();
  }
  fitted_ = true;
}

std::vector<int> CoTrainer::predict(const la::Matrix& x) const {
  IOTML_CHECK(fitted_, "CoTrainer::predict: call fit() first");
  data::Samples probe;
  probe.x = x;
  const data::Dataset da = data::samples_to_dataset(project(probe, view_a_));
  const data::Dataset db = data::samples_to_dataset(project(probe, view_b_));

  std::vector<int> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto lp_a = model_a_.log_posterior(da, r);
    const auto lp_b = model_b_.log_posterior(db, r);
    int best = 0;
    double best_score = -std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < lp_a.size(); ++c) {
      const double score = lp_a[c] + lp_b[c];
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(c);
      }
    }
    out[r] = best;
  }
  return out;
}

double CoTrainer::accuracy(const data::Samples& test) const {
  IOTML_CHECK(!test.y.empty(), "CoTrainer::accuracy: unlabeled test set");
  const auto predictions = predict(test.x);
  std::size_t hits = 0;
  for (std::size_t i = 0; i < predictions.size(); ++i) {
    if (predictions[i] == test.y[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(predictions.size());
}

}  // namespace iotml::multiview
