#pragma once

#include <cstddef>
#include <vector>

#include "la/matrix.hpp"

namespace iotml::game {

/// A general-sum two-player game in normal form: `a(i, j)` is the row
/// player's payoff, `b(i, j)` the column player's, both maximizing. This is
/// the paper's many-players setting (Section IV.B): compatible but
/// non-aligned objectives.
struct Bimatrix {
  la::Matrix a;  ///< row player payoffs
  la::Matrix b;  ///< column player payoffs

  void validate() const;
  std::size_t rows() const noexcept { return a.rows(); }
  std::size_t cols() const noexcept { return a.cols(); }
};

struct PureProfile {
  std::size_t row = 0;
  std::size_t col = 0;

  bool operator==(const PureProfile&) const = default;
};

/// All pure-strategy Nash equilibria (mutual best responses).
std::vector<PureProfile> pure_nash(const Bimatrix& game);

/// Best-response dynamics from a starting profile; returns the profile
/// reached (a pure Nash when converged = true).
struct BestResponseResult {
  PureProfile profile;
  bool converged = false;
  std::size_t steps = 0;
};
BestResponseResult best_response_dynamics(const Bimatrix& game, PureProfile start,
                                          std::size_t max_steps = 1000);

/// A mixed-strategy equilibrium candidate.
struct MixedProfile {
  std::vector<double> row;
  std::vector<double> col;
  double row_payoff = 0.0;
  double col_payoff = 0.0;
};

/// Support enumeration for mixed Nash equilibria with supports up to
/// `max_support` (feasible for small strategy sets). Includes pure equilibria
/// (support size 1). Returns equilibria verified to tolerance `tol`.
std::vector<MixedProfile> mixed_nash(const Bimatrix& game, std::size_t max_support = 3,
                                     double tol = 1e-9);

/// Joint (utilitarian) welfare a(i,j) + b(i,j) of a pure profile.
double social_welfare(const Bimatrix& game, PureProfile profile);

/// The profile a single controller of both stages would pick: maximizes
/// social welfare (the paper's single-player optimization baseline).
PureProfile social_optimum(const Bimatrix& game);

}  // namespace iotml::game
