#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "la/matrix.hpp"

namespace iotml::game {

/// Solution of a two-player zero-sum matrix game. `payoff(i, j)` is what the
/// column player pays the row player when row plays i and column plays j
/// (row maximizes, column minimizes).
struct ZeroSumSolution {
  std::vector<double> row_strategy;  ///< mixed strategy over rows
  std::vector<double> col_strategy;  ///< mixed strategy over columns
  double value = 0.0;                ///< game value (row's guarantee)
  double gap = 0.0;                  ///< duality gap of the returned pair
  std::size_t iterations = 0;
};

/// A pure saddle point (i, j): entry that is simultaneously a row maximum of
/// its column and a column minimum of its row.
std::optional<std::pair<std::size_t, std::size_t>> pure_saddle_point(
    const la::Matrix& payoff);

/// Expected payoff of a mixed-strategy pair.
double expected_payoff(const la::Matrix& payoff, const std::vector<double>& row,
                       const std::vector<double>& col);

/// Best-response value of the row player against a column mixture, and vice
/// versa (used for duality-gap certificates).
double row_best_response_value(const la::Matrix& payoff, const std::vector<double>& col);
double col_best_response_value(const la::Matrix& payoff, const std::vector<double>& row);

/// Solve by fictitious play (guaranteed to converge for zero-sum games),
/// stopping when the duality gap of the empirical mixtures drops below `tol`.
/// The returned `value` is the midpoint of the certified interval.
ZeroSumSolution solve_zero_sum(const la::Matrix& payoff, double tol = 1e-3,
                               std::size_t max_iterations = 200000);

}  // namespace iotml::game
