#pragma once

#include "game/bimatrix.hpp"

namespace iotml::game {

/// Stackelberg (leader-follower) solution of a bimatrix game: the row player
/// commits first, the column player observes and best-responds. This models
/// the paper's sequential pipeline: the preprocessing operator publishes its
/// strategy, the analytics operator adapts (Section IV.B).
struct StackelbergSolution {
  std::size_t leader_action = 0;
  std::size_t follower_action = 0;
  double leader_payoff = 0.0;
  double follower_payoff = 0.0;
};

/// Solve with the leader as the row player. `optimistic` selects how the
/// follower breaks ties among its best responses: in the leader's favor
/// (strong Stackelberg, true) or against it (weak/pessimistic, false).
StackelbergSolution solve_stackelberg(const Bimatrix& game, bool optimistic = true);

/// Same with roles swapped (column player commits first). In the returned
/// solution, leader_action indexes the original game's *columns* and
/// follower_action its *rows*; payoffs refer to leader/follower roles.
StackelbergSolution solve_stackelberg_column_leader(const Bimatrix& game,
                                                    bool optimistic = true);

}  // namespace iotml::game
