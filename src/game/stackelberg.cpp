#include "game/stackelberg.hpp"

#include <limits>

#include "util/error.hpp"

namespace iotml::game {

StackelbergSolution solve_stackelberg(const Bimatrix& game, bool optimistic) {
  game.validate();
  StackelbergSolution best;
  double best_leader = -std::numeric_limits<double>::infinity();

  for (std::size_t i = 0; i < game.rows(); ++i) {
    // Follower best-response set to leader action i.
    double follower_best = -std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < game.cols(); ++j) {
      follower_best = std::max(follower_best, game.b(i, j));
    }
    // Tie-break over the best-response set.
    std::size_t chosen = 0;
    double chosen_leader = optimistic ? -std::numeric_limits<double>::infinity()
                                      : std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < game.cols(); ++j) {
      if (game.b(i, j) < follower_best - 1e-12) continue;
      const bool better = optimistic ? game.a(i, j) > chosen_leader
                                     : game.a(i, j) < chosen_leader;
      if (better) {
        chosen_leader = game.a(i, j);
        chosen = j;
      }
    }
    if (chosen_leader > best_leader) {
      best_leader = chosen_leader;
      best = {i, chosen, game.a(i, chosen), game.b(i, chosen)};
    }
  }
  return best;
}

StackelbergSolution solve_stackelberg_column_leader(const Bimatrix& game,
                                                    bool optimistic) {
  game.validate();
  // Swap roles by transposing both payoff matrices.
  Bimatrix swapped{game.b.transpose(), game.a.transpose()};
  // In the swapped game the leader is the original column player, so the
  // returned leader_action indexes the original game's columns and
  // follower_action its rows; payoffs already refer to leader/follower roles.
  return solve_stackelberg(swapped, optimistic);
}

}  // namespace iotml::game
