#pragma once

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "game/bimatrix.hpp"
#include "game/matrix_game.hpp"

namespace iotml::game {

/// A node of a two-player extensive-form game tree with information sets —
/// the "sequential games of imperfect information" frame of Section IV.B.
struct GameNode {
  enum class Type { kChance, kDecision, kTerminal };

  Type type = Type::kTerminal;

  // kTerminal: payoffs[0] = player 0, payoffs[1] = player 1.
  std::array<double, 2> payoffs{0.0, 0.0};

  // kDecision: which player moves and which information set the node belongs
  // to. Nodes sharing an information_set are indistinguishable to the mover,
  // so a pure strategy must pick the same action at all of them (and they
  // must offer the same number of actions).
  int player = 0;
  std::string information_set;

  // kChance: probability per child (must sum to 1).
  std::vector<double> chance_probs;

  std::vector<std::unique_ptr<GameNode>> children;

  static std::unique_ptr<GameNode> terminal(double p0, double p1);
  static std::unique_ptr<GameNode> decision(int player, std::string information_set,
                                            std::vector<std::unique_ptr<GameNode>> kids);
  static std::unique_ptr<GameNode> chance(std::vector<double> probs,
                                          std::vector<std::unique_ptr<GameNode>> kids);
};

/// A two-player extensive-form game. Solved by conversion to normal form:
/// pure strategies are assignments information_set -> action, enumerated per
/// player (exponential in information sets — intended for the small strategic
/// models of pipeline interactions, not poker).
class ExtensiveGame {
 public:
  explicit ExtensiveGame(std::unique_ptr<GameNode> root);

  /// Information sets per player, in discovery order, with action counts.
  const std::vector<std::pair<std::string, std::size_t>>& information_sets(
      int player) const;

  /// Number of pure strategies of a player (product of action counts).
  std::size_t num_pure_strategies(int player) const;

  /// Expected payoffs when players follow the given pure strategies
  /// (strategy = action index per information set, in information_sets()
  /// order).
  std::array<double, 2> expected_payoffs(const std::vector<std::size_t>& strategy0,
                                         const std::vector<std::size_t>& strategy1) const;

  /// The induced normal form (rows = player 0 pure strategies in
  /// lexicographic order, columns = player 1's).
  Bimatrix to_normal_form() const;

  /// Decode a pure-strategy index into per-information-set actions.
  std::vector<std::size_t> decode_strategy(int player, std::size_t index) const;

  /// Solve the zero-sum case (requires payoffs to satisfy p0 + p1 == 0
  /// everywhere, checked): value is for player 0.
  ZeroSumSolution solve_zero_sum_game(double tol = 1e-3) const;

 private:
  std::unique_ptr<GameNode> root_;
  std::vector<std::vector<std::pair<std::string, std::size_t>>> info_sets_;  // [player]
  std::vector<std::map<std::string, std::size_t>> info_index_;               // [player]

  void discover(const GameNode& node);
  double evaluate(const GameNode& node, const std::vector<std::size_t>& s0,
                  const std::vector<std::size_t>& s1, int payoff_player) const;
};

}  // namespace iotml::game
