#include "game/sequential.hpp"

#include <cmath>

#include "util/error.hpp"

namespace iotml::game {

std::unique_ptr<GameNode> GameNode::terminal(double p0, double p1) {
  auto node = std::make_unique<GameNode>();
  node->type = Type::kTerminal;
  node->payoffs = {p0, p1};
  return node;
}

std::unique_ptr<GameNode> GameNode::decision(
    int player, std::string information_set,
    std::vector<std::unique_ptr<GameNode>> kids) {
  IOTML_CHECK(player == 0 || player == 1, "GameNode::decision: player must be 0/1");
  IOTML_CHECK(!kids.empty(), "GameNode::decision: needs at least one action");
  IOTML_CHECK(!information_set.empty(), "GameNode::decision: empty information set id");
  auto node = std::make_unique<GameNode>();
  node->type = Type::kDecision;
  node->player = player;
  node->information_set = std::move(information_set);
  node->children = std::move(kids);
  return node;
}

std::unique_ptr<GameNode> GameNode::chance(std::vector<double> probs,
                                           std::vector<std::unique_ptr<GameNode>> kids) {
  IOTML_CHECK(probs.size() == kids.size(), "GameNode::chance: probability count mismatch");
  IOTML_CHECK(!kids.empty(), "GameNode::chance: needs at least one outcome");
  double total = 0.0;
  for (double p : probs) {
    IOTML_CHECK(p >= 0.0, "GameNode::chance: negative probability");
    total += p;
  }
  IOTML_CHECK(std::fabs(total - 1.0) < 1e-9, "GameNode::chance: probabilities must sum to 1");
  auto node = std::make_unique<GameNode>();
  node->type = Type::kChance;
  node->chance_probs = std::move(probs);
  node->children = std::move(kids);
  return node;
}

ExtensiveGame::ExtensiveGame(std::unique_ptr<GameNode> root) : root_(std::move(root)) {
  IOTML_CHECK(root_ != nullptr, "ExtensiveGame: null root");
  info_sets_.resize(2);
  info_index_.resize(2);
  discover(*root_);
}

void ExtensiveGame::discover(const GameNode& node) {
  if (node.type == GameNode::Type::kDecision) {
    auto& index = info_index_[node.player];
    auto it = index.find(node.information_set);
    if (it == index.end()) {
      index.emplace(node.information_set, info_sets_[node.player].size());
      info_sets_[node.player].emplace_back(node.information_set, node.children.size());
    } else {
      IOTML_CHECK(info_sets_[node.player][it->second].second == node.children.size(),
                  "ExtensiveGame: information set '" + node.information_set +
                      "' has inconsistent action counts");
    }
  }
  for (const auto& child : node.children) discover(*child);
}

const std::vector<std::pair<std::string, std::size_t>>& ExtensiveGame::information_sets(
    int player) const {
  IOTML_CHECK(player == 0 || player == 1, "information_sets: player must be 0/1");
  return info_sets_[player];
}

std::size_t ExtensiveGame::num_pure_strategies(int player) const {
  IOTML_CHECK(player == 0 || player == 1, "num_pure_strategies: player must be 0/1");
  std::size_t count = 1;
  for (const auto& [id, actions] : info_sets_[player]) count *= actions;
  return count;
}

std::vector<std::size_t> ExtensiveGame::decode_strategy(int player,
                                                        std::size_t index) const {
  IOTML_CHECK(index < num_pure_strategies(player), "decode_strategy: index out of range");
  std::vector<std::size_t> actions;
  actions.reserve(info_sets_[player].size());
  for (const auto& [id, count] : info_sets_[player]) {
    actions.push_back(index % count);
    index /= count;
  }
  return actions;
}

double ExtensiveGame::evaluate(const GameNode& node, const std::vector<std::size_t>& s0,
                               const std::vector<std::size_t>& s1,
                               int payoff_player) const {
  switch (node.type) {
    case GameNode::Type::kTerminal:
      return node.payoffs[static_cast<std::size_t>(payoff_player)];
    case GameNode::Type::kChance: {
      double total = 0.0;
      for (std::size_t c = 0; c < node.children.size(); ++c) {
        if (node.chance_probs[c] == 0.0) continue;
        total += node.chance_probs[c] *
                 evaluate(*node.children[c], s0, s1, payoff_player);
      }
      return total;
    }
    case GameNode::Type::kDecision: {
      const auto& strategy = node.player == 0 ? s0 : s1;
      const std::size_t set_index =
          info_index_[node.player].at(node.information_set);
      const std::size_t action = strategy[set_index];
      return evaluate(*node.children[action], s0, s1, payoff_player);
    }
  }
  throw InternalError("ExtensiveGame::evaluate: unknown node type");
}

std::array<double, 2> ExtensiveGame::expected_payoffs(
    const std::vector<std::size_t>& strategy0,
    const std::vector<std::size_t>& strategy1) const {
  IOTML_CHECK(strategy0.size() == info_sets_[0].size(),
              "expected_payoffs: player 0 strategy size mismatch");
  IOTML_CHECK(strategy1.size() == info_sets_[1].size(),
              "expected_payoffs: player 1 strategy size mismatch");
  return {evaluate(*root_, strategy0, strategy1, 0),
          evaluate(*root_, strategy0, strategy1, 1)};
}

Bimatrix ExtensiveGame::to_normal_form() const {
  const std::size_t m = num_pure_strategies(0);
  const std::size_t n = num_pure_strategies(1);
  IOTML_CHECK(m * n <= 1u << 20, "to_normal_form: strategy space too large");
  Bimatrix game{la::Matrix(m, n), la::Matrix(m, n)};
  for (std::size_t i = 0; i < m; ++i) {
    const auto s0 = decode_strategy(0, i);
    for (std::size_t j = 0; j < n; ++j) {
      const auto s1 = decode_strategy(1, j);
      const auto payoffs = expected_payoffs(s0, s1);
      game.a(i, j) = payoffs[0];
      game.b(i, j) = payoffs[1];
    }
  }
  return game;
}

ZeroSumSolution ExtensiveGame::solve_zero_sum_game(double tol) const {
  Bimatrix normal = to_normal_form();
  for (std::size_t i = 0; i < normal.rows(); ++i) {
    for (std::size_t j = 0; j < normal.cols(); ++j) {
      IOTML_CHECK(std::fabs(normal.a(i, j) + normal.b(i, j)) < 1e-9,
                  "solve_zero_sum_game: game is not zero-sum");
    }
  }
  return solve_zero_sum(normal.a, tol);
}

}  // namespace iotml::game
