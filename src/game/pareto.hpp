#pragma once

#include <cstddef>
#include <vector>

namespace iotml::game {

/// Multi-objective utilities for the paper's single-player setting (Section
/// IV.A): one controller trades off objectives like prediction accuracy vs
/// the cost of learning many models. All objectives are MAXIMIZED; negate
/// costs before calling.

/// True iff `a` Pareto-dominates `b`: >= on every objective, > on at least one.
bool dominates(const std::vector<double>& a, const std::vector<double>& b);

/// Indices of the non-dominated points (the Pareto front), in input order.
std::vector<std::size_t> pareto_front(const std::vector<std::vector<double>>& points);

/// Index of the point maximizing the weighted sum of objectives (weighted-sum
/// scalarization — always picks a Pareto-optimal point for positive weights).
std::size_t weighted_sum_best(const std::vector<std::vector<double>>& points,
                              const std::vector<double>& weights);

/// Index of the best point by the Chebyshev (min-max regret to the ideal)
/// scalarization, which can reach non-convex parts of the front.
std::size_t chebyshev_best(const std::vector<std::vector<double>>& points,
                           const std::vector<double>& weights);

}  // namespace iotml::game
