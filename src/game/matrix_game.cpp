#include "game/matrix_game.hpp"

#include <algorithm>
#include <limits>

#include "game/bimatrix.hpp"
#include "util/error.hpp"

namespace iotml::game {

std::optional<std::pair<std::size_t, std::size_t>> pure_saddle_point(
    const la::Matrix& payoff) {
  IOTML_CHECK(!payoff.empty(), "pure_saddle_point: empty game");
  for (std::size_t i = 0; i < payoff.rows(); ++i) {
    for (std::size_t j = 0; j < payoff.cols(); ++j) {
      bool row_min = true, col_max = true;
      for (std::size_t jj = 0; jj < payoff.cols(); ++jj) {
        if (payoff(i, jj) < payoff(i, j)) row_min = false;
      }
      for (std::size_t ii = 0; ii < payoff.rows(); ++ii) {
        if (payoff(ii, j) > payoff(i, j)) col_max = false;
      }
      if (row_min && col_max) return std::make_pair(i, j);
    }
  }
  return std::nullopt;
}

double expected_payoff(const la::Matrix& payoff, const std::vector<double>& row,
                       const std::vector<double>& col) {
  IOTML_CHECK(row.size() == payoff.rows() && col.size() == payoff.cols(),
              "expected_payoff: strategy size mismatch");
  double total = 0.0;
  for (std::size_t i = 0; i < payoff.rows(); ++i) {
    if (row[i] == 0.0) continue;
    double inner = 0.0;
    for (std::size_t j = 0; j < payoff.cols(); ++j) inner += payoff(i, j) * col[j];
    total += row[i] * inner;
  }
  return total;
}

double row_best_response_value(const la::Matrix& payoff,
                               const std::vector<double>& col) {
  IOTML_CHECK(col.size() == payoff.cols(), "row_best_response_value: size mismatch");
  double best = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < payoff.rows(); ++i) {
    double v = 0.0;
    for (std::size_t j = 0; j < payoff.cols(); ++j) v += payoff(i, j) * col[j];
    best = std::max(best, v);
  }
  return best;
}

double col_best_response_value(const la::Matrix& payoff,
                               const std::vector<double>& row) {
  IOTML_CHECK(row.size() == payoff.rows(), "col_best_response_value: size mismatch");
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t j = 0; j < payoff.cols(); ++j) {
    double v = 0.0;
    for (std::size_t i = 0; i < payoff.rows(); ++i) v += payoff(i, j) * row[i];
    best = std::min(best, v);
  }
  return best;
}

ZeroSumSolution solve_zero_sum(const la::Matrix& payoff, double tol,
                               std::size_t max_iterations) {
  IOTML_CHECK(!payoff.empty(), "solve_zero_sum: empty game");
  IOTML_CHECK(tol > 0.0, "solve_zero_sum: tol must be positive");
  const std::size_t m = payoff.rows();
  const std::size_t n = payoff.cols();

  ZeroSumSolution sol;

  // Shortcut: a pure saddle point is an exact solution.
  if (auto saddle = pure_saddle_point(payoff)) {
    sol.row_strategy.assign(m, 0.0);
    sol.col_strategy.assign(n, 0.0);
    sol.row_strategy[saddle->first] = 1.0;
    sol.col_strategy[saddle->second] = 1.0;
    sol.value = payoff(saddle->first, saddle->second);
    sol.gap = 0.0;
    return sol;
  }

  // Small games: exact equilibrium by support enumeration over (A, -A).
  // Fictitious play converges only as O(1/sqrt(t)), so an exact method is
  // worth it whenever feasible.
  if (m <= 10 && n <= 10) {
    Bimatrix zero_sum{payoff, payoff.scaled(-1.0)};
    const auto equilibria = mixed_nash(zero_sum, std::min(m, n));
    ZeroSumSolution best;
    best.gap = std::numeric_limits<double>::infinity();
    for (const MixedProfile& e : equilibria) {
      const double lower = col_best_response_value(payoff, e.row);
      const double upper = row_best_response_value(payoff, e.col);
      if (upper - lower < best.gap) {
        best.row_strategy = e.row;
        best.col_strategy = e.col;
        best.value = 0.5 * (upper + lower);
        best.gap = upper - lower;
      }
    }
    if (best.gap <= tol) return best;
    // Degenerate game (no equal-support equilibrium found): fall through.
  }

  // Fictitious play: each player best-responds to the opponent's empirical
  // mixture; cumulative payoff vectors make each step O(m + n).
  std::vector<double> row_counts(m, 0.0), col_counts(n, 0.0);
  std::vector<double> row_payoff_acc(m, 0.0);  // sum over col plays of payoff(i, j_t)
  std::vector<double> col_payoff_acc(n, 0.0);  // sum over row plays of payoff(i_t, j)

  std::size_t current_row = 0, current_col = 0;
  for (std::size_t t = 0; t < max_iterations; ++t) {
    ++sol.iterations;
    row_counts[current_row] += 1.0;
    col_counts[current_col] += 1.0;
    for (std::size_t i = 0; i < m; ++i) row_payoff_acc[i] += payoff(i, current_col);
    for (std::size_t j = 0; j < n; ++j) col_payoff_acc[j] += payoff(current_row, j);

    // Best responses to the empirical mixtures.
    current_row = static_cast<std::size_t>(
        std::max_element(row_payoff_acc.begin(), row_payoff_acc.end()) -
        row_payoff_acc.begin());
    current_col = static_cast<std::size_t>(
        std::min_element(col_payoff_acc.begin(), col_payoff_acc.end()) -
        col_payoff_acc.begin());

    // Convergence check on a decimating schedule (the check is O(mn)).
    if (t < 100 || t % 64 == 0) {
      const double total = static_cast<double>(t + 1);
      std::vector<double> row_mix(m), col_mix(n);
      for (std::size_t i = 0; i < m; ++i) row_mix[i] = row_counts[i] / total;
      for (std::size_t j = 0; j < n; ++j) col_mix[j] = col_counts[j] / total;
      const double lower = col_best_response_value(payoff, row_mix);  // row guarantee
      const double upper = row_best_response_value(payoff, col_mix);  // col guarantee
      if (upper - lower <= tol) {
        sol.row_strategy = std::move(row_mix);
        sol.col_strategy = std::move(col_mix);
        sol.value = 0.5 * (upper + lower);
        sol.gap = upper - lower;
        return sol;
      }
    }
  }

  // Return the best certified pair found at the horizon.
  const double total = static_cast<double>(max_iterations);
  sol.row_strategy.resize(m);
  sol.col_strategy.resize(n);
  for (std::size_t i = 0; i < m; ++i) sol.row_strategy[i] = row_counts[i] / total;
  for (std::size_t j = 0; j < n; ++j) sol.col_strategy[j] = col_counts[j] / total;
  const double lower = col_best_response_value(payoff, sol.row_strategy);
  const double upper = row_best_response_value(payoff, sol.col_strategy);
  sol.value = 0.5 * (upper + lower);
  sol.gap = upper - lower;
  return sol;
}

}  // namespace iotml::game
