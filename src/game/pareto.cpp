#include "game/pareto.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace iotml::game {

bool dominates(const std::vector<double>& a, const std::vector<double>& b) {
  IOTML_CHECK(a.size() == b.size() && !a.empty(), "dominates: dimension mismatch");
  bool strictly = false;
  for (std::size_t k = 0; k < a.size(); ++k) {
    if (a[k] < b[k]) return false;
    if (a[k] > b[k]) strictly = true;
  }
  return strictly;
}

std::vector<std::size_t> pareto_front(const std::vector<std::vector<double>>& points) {
  IOTML_CHECK(!points.empty(), "pareto_front: no points");
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i != j && dominates(points[j], points[i])) dominated = true;
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

std::size_t weighted_sum_best(const std::vector<std::vector<double>>& points,
                              const std::vector<double>& weights) {
  IOTML_CHECK(!points.empty(), "weighted_sum_best: no points");
  IOTML_CHECK(points.front().size() == weights.size(),
              "weighted_sum_best: weight dimension mismatch");
  std::size_t best = 0;
  double best_score = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < points.size(); ++i) {
    double score = 0.0;
    for (std::size_t k = 0; k < weights.size(); ++k) score += weights[k] * points[i][k];
    if (score > best_score) {
      best_score = score;
      best = i;
    }
  }
  return best;
}

std::size_t chebyshev_best(const std::vector<std::vector<double>>& points,
                           const std::vector<double>& weights) {
  IOTML_CHECK(!points.empty(), "chebyshev_best: no points");
  const std::size_t dims = weights.size();
  IOTML_CHECK(points.front().size() == dims, "chebyshev_best: weight dimension mismatch");

  // Ideal point: per-objective maximum.
  std::vector<double> ideal(dims, -std::numeric_limits<double>::infinity());
  for (const auto& p : points) {
    IOTML_CHECK(p.size() == dims, "chebyshev_best: ragged points");
    for (std::size_t k = 0; k < dims; ++k) ideal[k] = std::max(ideal[k], p[k]);
  }

  std::size_t best = 0;
  double best_score = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < points.size(); ++i) {
    double regret = 0.0;
    for (std::size_t k = 0; k < dims; ++k) {
      regret = std::max(regret, weights[k] * (ideal[k] - points[i][k]));
    }
    if (regret < best_score) {
      best_score = regret;
      best = i;
    }
  }
  return best;
}

}  // namespace iotml::game
