#include "game/repeated.hpp"

#include <limits>

#include "util/error.hpp"

namespace iotml::game {

FixedAction::FixedAction(std::size_t action, std::string label)
    : action_(action), label_(std::move(label)) {}

std::size_t FixedAction::act(const std::vector<std::size_t>&,
                             const std::vector<std::size_t>&) {
  return action_;
}

GrimTrigger::GrimTrigger(std::size_t cooperative, std::size_t punishment,
                         std::size_t opponent_cooperative)
    : cooperative_(cooperative),
      punishment_(punishment),
      opponent_cooperative_(opponent_cooperative) {}

std::size_t GrimTrigger::act(const std::vector<std::size_t>&,
                             const std::vector<std::size_t>& opponent) {
  if (!triggered_ && !opponent.empty() &&
      opponent.back() != opponent_cooperative_) {
    triggered_ = true;
  }
  return triggered_ ? punishment_ : cooperative_;
}

TitForTat::TitForTat(std::size_t cooperative,
                     std::function<std::size_t(std::size_t)> mirror)
    : cooperative_(cooperative), mirror_(std::move(mirror)) {
  IOTML_CHECK(mirror_ != nullptr, "TitForTat: null mirror");
}

std::size_t TitForTat::act(const std::vector<std::size_t>&,
                           const std::vector<std::size_t>& opponent) {
  if (opponent.empty()) return cooperative_;
  return mirror_(opponent.back());
}

RepeatedOutcome play_repeated(const Bimatrix& stage, RepeatedStrategy& row,
                              RepeatedStrategy& col, std::size_t rounds,
                              double delta) {
  stage.validate();
  IOTML_CHECK(rounds >= 1, "play_repeated: rounds must be >= 1");
  IOTML_CHECK(delta >= 0.0 && delta < 1.0, "play_repeated: delta must be in [0, 1)");

  row.reset();
  col.reset();
  RepeatedOutcome out;
  double discount = 1.0;
  for (std::size_t t = 0; t < rounds; ++t) {
    // Note the argument order: each strategy sees (own history, opponent
    // history).
    const std::size_t i = row.act(out.row_actions, out.col_actions);
    const std::size_t j = col.act(out.col_actions, out.row_actions);
    IOTML_CHECK(i < stage.rows() && j < stage.cols(),
                "play_repeated: strategy returned out-of-range action");
    out.row_actions.push_back(i);
    out.col_actions.push_back(j);
    out.row_discounted += discount * stage.a(i, j);
    out.col_discounted += discount * stage.b(i, j);
    out.row_average += stage.a(i, j);
    out.col_average += stage.b(i, j);
    discount *= delta;
  }
  out.row_average /= static_cast<double>(rounds);
  out.col_average /= static_cast<double>(rounds);
  return out;
}

double grim_trigger_min_discount(const Bimatrix& stage, PureProfile target,
                                 PureProfile punishment) {
  stage.validate();
  IOTML_CHECK(target.row < stage.rows() && target.col < stage.cols(),
              "grim_trigger_min_discount: target out of range");
  IOTML_CHECK(punishment.row < stage.rows() && punishment.col < stage.cols(),
              "grim_trigger_min_discount: punishment out of range");

  const double cooperate = stage.a(target.row, target.col);
  const double punish = stage.a(punishment.row, punishment.col);

  // Best one-shot deviation while the column player still cooperates.
  double deviation = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < stage.rows(); ++i) {
    if (i != target.row) deviation = std::max(deviation, stage.a(i, target.col));
  }
  if (deviation <= cooperate) return 0.0;          // no temptation at all
  if (punish >= cooperate) return 1.0;             // punishment doesn't bite
  // Standard condition: (1-delta) * deviation + delta * punish <= cooperate.
  return (deviation - cooperate) / (deviation - punish);
}

}  // namespace iotml::game
