#include "game/bimatrix.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>

#include "util/error.hpp"

namespace iotml::game {

void Bimatrix::validate() const {
  IOTML_CHECK(!a.empty(), "Bimatrix: empty game");
  IOTML_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "Bimatrix: payoff shape mismatch");
}

namespace {

std::size_t row_best_response(const Bimatrix& game, std::size_t col) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < game.rows(); ++i) {
    if (game.a(i, col) > game.a(best, col)) best = i;
  }
  return best;
}

std::size_t col_best_response(const Bimatrix& game, std::size_t row) {
  std::size_t best = 0;
  for (std::size_t j = 1; j < game.cols(); ++j) {
    if (game.b(row, j) > game.b(row, best)) best = j;
  }
  return best;
}

}  // namespace

std::vector<PureProfile> pure_nash(const Bimatrix& game) {
  game.validate();
  std::vector<PureProfile> out;
  for (std::size_t i = 0; i < game.rows(); ++i) {
    for (std::size_t j = 0; j < game.cols(); ++j) {
      bool row_br = true, col_br = true;
      for (std::size_t ii = 0; ii < game.rows(); ++ii) {
        if (game.a(ii, j) > game.a(i, j)) row_br = false;
      }
      for (std::size_t jj = 0; jj < game.cols(); ++jj) {
        if (game.b(i, jj) > game.b(i, j)) col_br = false;
      }
      if (row_br && col_br) out.push_back({i, j});
    }
  }
  return out;
}

BestResponseResult best_response_dynamics(const Bimatrix& game, PureProfile start,
                                          std::size_t max_steps) {
  game.validate();
  IOTML_CHECK(start.row < game.rows() && start.col < game.cols(),
              "best_response_dynamics: start profile out of range");
  BestResponseResult result;
  result.profile = start;
  for (std::size_t step = 0; step < max_steps; ++step) {
    const std::size_t new_row = row_best_response(game, result.profile.col);
    const std::size_t new_col = col_best_response(game, new_row);
    ++result.steps;
    if (new_row == result.profile.row && new_col == result.profile.col) {
      result.converged = true;
      return result;
    }
    result.profile = {new_row, new_col};
  }
  // One last stability check at the horizon.
  result.converged =
      row_best_response(game, result.profile.col) == result.profile.row &&
      col_best_response(game, result.profile.row) == result.profile.col;
  return result;
}

namespace {

/// Enumerate all k-subsets of [0, n).
void for_each_subset(std::size_t n, std::size_t k,
                     const std::function<void(const std::vector<std::size_t>&)>& visit) {
  std::vector<std::size_t> subset(k);
  std::function<void(std::size_t, std::size_t)> rec = [&](std::size_t start,
                                                          std::size_t depth) {
    if (depth == k) {
      visit(subset);
      return;
    }
    for (std::size_t i = start; i + (k - depth) <= n; ++i) {
      subset[depth] = i;
      rec(i + 1, depth + 1);
    }
  };
  rec(0, 0);
}

/// Solve for a mixture over `support` of the opponent making the player
/// indifferent across the player's support, i.e. for the column mixture q:
/// sum_j a(i, j) q_j = v for all i in row support, sum q = 1.
/// Returns empty when the system is singular or the mixture is invalid.
std::vector<double> indifference_mixture(const la::Matrix& payoff,
                                         const std::vector<std::size_t>& own_support,
                                         const std::vector<std::size_t>& opp_support,
                                         bool payoff_rows_are_own, double& value_out) {
  const std::size_t k = own_support.size();
  IOTML_CHECK(opp_support.size() == k, "indifference_mixture: support size mismatch");
  // Unknowns: q over opp_support (k of them) + value v.
  la::Matrix system(k + 1, k + 1);
  la::Vector rhs(k + 1, 0.0);
  for (std::size_t r = 0; r < k; ++r) {
    for (std::size_t c = 0; c < k; ++c) {
      system(r, c) = payoff_rows_are_own ? payoff(own_support[r], opp_support[c])
                                         : payoff(opp_support[c], own_support[r]);
    }
    system(r, k) = -1.0;  // - v
  }
  for (std::size_t c = 0; c < k; ++c) system(k, c) = 1.0;  // sum q = 1
  rhs[k] = 1.0;

  la::Vector solution;
  try {
    solution = la::solve_lu(system, rhs);
  } catch (const NumericError&) {
    return {};
  }
  for (std::size_t c = 0; c < k; ++c) {
    if (solution[c] < -1e-9) return {};
  }
  value_out = solution[k];
  std::vector<double> q(solution.begin(), solution.begin() + static_cast<std::ptrdiff_t>(k));
  for (double& v : q) v = std::max(v, 0.0);
  return q;
}

bool verify_equilibrium(const Bimatrix& game, const MixedProfile& profile, double tol) {
  // No pure deviation may improve either player.
  double row_value = 0.0, col_value = 0.0;
  for (std::size_t i = 0; i < game.rows(); ++i) {
    for (std::size_t j = 0; j < game.cols(); ++j) {
      row_value += profile.row[i] * profile.col[j] * game.a(i, j);
      col_value += profile.row[i] * profile.col[j] * game.b(i, j);
    }
  }
  for (std::size_t i = 0; i < game.rows(); ++i) {
    double dev = 0.0;
    for (std::size_t j = 0; j < game.cols(); ++j) dev += profile.col[j] * game.a(i, j);
    if (dev > row_value + tol) return false;
  }
  for (std::size_t j = 0; j < game.cols(); ++j) {
    double dev = 0.0;
    for (std::size_t i = 0; i < game.rows(); ++i) dev += profile.row[i] * game.b(i, j);
    if (dev > col_value + tol) return false;
  }
  return true;
}

}  // namespace

std::vector<MixedProfile> mixed_nash(const Bimatrix& game, std::size_t max_support,
                                     double tol) {
  game.validate();
  IOTML_CHECK(max_support >= 1, "mixed_nash: max_support must be >= 1");
  std::vector<MixedProfile> found;

  const std::size_t limit =
      std::min({max_support, game.rows(), game.cols()});
  for (std::size_t k = 1; k <= limit; ++k) {
    for_each_subset(game.rows(), k, [&](const std::vector<std::size_t>& rs) {
      for_each_subset(game.cols(), k, [&](const std::vector<std::size_t>& cs) {
        // Column mixture makes the row player indifferent over rs;
        // row mixture makes the column player indifferent over cs.
        double va = 0.0, vb = 0.0;
        std::vector<double> q = indifference_mixture(game.a, rs, cs, true, va);
        if (q.empty()) return;
        std::vector<double> p = indifference_mixture(game.b, cs, rs, false, vb);
        if (p.empty()) return;

        MixedProfile profile;
        profile.row.assign(game.rows(), 0.0);
        profile.col.assign(game.cols(), 0.0);
        for (std::size_t idx = 0; idx < k; ++idx) {
          profile.row[rs[idx]] = p[idx];
          profile.col[cs[idx]] = q[idx];
        }
        if (!verify_equilibrium(game, profile, std::max(tol, 1e-7))) return;

        profile.row_payoff = 0.0;
        profile.col_payoff = 0.0;
        for (std::size_t i = 0; i < game.rows(); ++i) {
          for (std::size_t j = 0; j < game.cols(); ++j) {
            profile.row_payoff += profile.row[i] * profile.col[j] * game.a(i, j);
            profile.col_payoff += profile.row[i] * profile.col[j] * game.b(i, j);
          }
        }
        // Deduplicate near-identical equilibria.
        for (const MixedProfile& other : found) {
          double diff = 0.0;
          for (std::size_t i = 0; i < profile.row.size(); ++i) {
            diff += std::fabs(profile.row[i] - other.row[i]);
          }
          for (std::size_t j = 0; j < profile.col.size(); ++j) {
            diff += std::fabs(profile.col[j] - other.col[j]);
          }
          if (diff < 1e-6) return;
        }
        found.push_back(std::move(profile));
      });
    });
  }
  return found;
}

double social_welfare(const Bimatrix& game, PureProfile profile) {
  game.validate();
  IOTML_CHECK(profile.row < game.rows() && profile.col < game.cols(),
              "social_welfare: profile out of range");
  return game.a(profile.row, profile.col) + game.b(profile.row, profile.col);
}

PureProfile social_optimum(const Bimatrix& game) {
  game.validate();
  PureProfile best{0, 0};
  double best_welfare = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < game.rows(); ++i) {
    for (std::size_t j = 0; j < game.cols(); ++j) {
      const double w = game.a(i, j) + game.b(i, j);
      if (w > best_welfare) {
        best_welfare = w;
        best = {i, j};
      }
    }
  }
  return best;
}

}  // namespace iotml::game
