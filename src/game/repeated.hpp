#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "game/bimatrix.hpp"

namespace iotml::game {

/// Repeated play of a stage bimatrix game — the natural frame for the
/// paper's pipeline players, who interact on every batch, not once. With
/// repetition, cooperation at a non-equilibrium profile (e.g. the pipeline's
/// social optimum) can be self-enforcing via trigger strategies when players
/// are patient enough (the folk-theorem mechanism).

/// A (behavioral) strategy for repeated play: chooses this round's action
/// from the full history of both players' past actions.
class RepeatedStrategy {
 public:
  virtual ~RepeatedStrategy() = default;

  /// `own`/`opponent` are the past action sequences (same length).
  virtual std::size_t act(const std::vector<std::size_t>& own,
                          const std::vector<std::size_t>& opponent) = 0;
  virtual std::string name() const = 0;
  virtual void reset() {}
};

/// Always play one fixed action.
class FixedAction final : public RepeatedStrategy {
 public:
  explicit FixedAction(std::size_t action, std::string label = "fixed");
  std::size_t act(const std::vector<std::size_t>&,
                  const std::vector<std::size_t>&) override;
  std::string name() const override { return label_; }

 private:
  std::size_t action_;
  std::string label_;
};

/// Cooperate (play `cooperative`) until the opponent deviates from its own
/// cooperative action once, then play `punishment` forever (grim trigger).
class GrimTrigger final : public RepeatedStrategy {
 public:
  GrimTrigger(std::size_t cooperative, std::size_t punishment,
              std::size_t opponent_cooperative);
  std::size_t act(const std::vector<std::size_t>& own,
                  const std::vector<std::size_t>& opponent) override;
  std::string name() const override { return "grim-trigger"; }
  void reset() override { triggered_ = false; }

 private:
  std::size_t cooperative_, punishment_, opponent_cooperative_;
  bool triggered_ = false;
};

/// Play `cooperative` first, then mirror the opponent's previous action
/// through a caller-provided mapping (tit-for-tat generalized to asymmetric
/// action sets).
class TitForTat final : public RepeatedStrategy {
 public:
  TitForTat(std::size_t cooperative,
            std::function<std::size_t(std::size_t)> mirror);
  std::size_t act(const std::vector<std::size_t>& own,
                  const std::vector<std::size_t>& opponent) override;
  std::string name() const override { return "tit-for-tat"; }

 private:
  std::size_t cooperative_;
  std::function<std::size_t(std::size_t)> mirror_;
};

/// Outcome of a repeated-play simulation.
struct RepeatedOutcome {
  std::vector<std::size_t> row_actions;
  std::vector<std::size_t> col_actions;
  double row_discounted = 0.0;  ///< sum_t delta^t * a(i_t, j_t)
  double col_discounted = 0.0;
  double row_average = 0.0;     ///< per-round mean payoff
  double col_average = 0.0;
};

/// Play `rounds` rounds of `stage` with discount factor `delta` in [0, 1).
RepeatedOutcome play_repeated(const Bimatrix& stage, RepeatedStrategy& row,
                              RepeatedStrategy& col, std::size_t rounds,
                              double delta);

/// The folk-theorem patience threshold for sustaining profile `target`
/// against grim-trigger punishment at `punishment` (a stage Nash): the row
/// player prefers cooperation iff
///   delta >= (best_deviation - target) / (best_deviation - punishment).
/// Returns the minimal delta for the row player (symmetric call with the
/// transposed game gives the column player's).
double grim_trigger_min_discount(const Bimatrix& stage, PureProfile target,
                                 PureProfile punishment);

}  // namespace iotml::game
