#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/fnv.hpp"

namespace iotml::ota {

/// Binary delta between two CompiledModel artifacts (or any two byte
/// images). A patch is a list of copy/data ops that rebuild the target from
/// the base, plus enough integrity metadata to make applying it safe on a
/// device that cannot afford a torn image: the base and target image
/// checksums pin the version chain link (base -> target), and the stable
/// little-endian wire format ("IOTP", via the deploy ByteWriter/ByteReader)
/// carries an FNV-1a trailer like every other artifact in the repo.
///
/// A *full image* is the degenerate patch against the empty base — one data
/// op covering the whole target. Initial provisioning and the bounded
/// fall-back after repeated resume failures both ship exactly that, so the
/// transfer/resume machinery (see transfer.hpp) has one code path.

/// FNV-1a32 of a byte image; the version chain's identity for an artifact.
/// The empty image hashes to the FNV offset basis (see kEmptyImageChecksum).
std::uint32_t image_checksum(const std::vector<std::uint8_t>& image);

/// Checksum of the empty (absent) base image: what a never-provisioned
/// device reports, and what a full-image patch lists as its base.
inline constexpr std::uint32_t kEmptyImageChecksum = kFnv32Basis;

enum class OpKind : std::uint8_t {
  kCopy = 1,  ///< copy `length` bytes from base at `base_offset`
  kData = 2   ///< append `data` literally
};

struct PatchOp {
  OpKind kind = OpKind::kData;
  std::uint32_t base_offset = 0;  ///< kCopy only
  std::uint32_t length = 0;       ///< target bytes this op produces
  std::vector<std::uint8_t> data; ///< kData only (data.size() == length)
};

/// Tuning of the greedy byte-level differ. The defaults favour small
/// artifacts (hundreds of bytes to a few KB): every base position is
/// indexed, matches extend greedily and anything shorter than a copy op's
/// own encoding stays literal.
struct DiffParams {
  std::size_t seed_bytes = 4;   ///< match seed width (>= 1)
  std::size_t min_match = 12;   ///< shortest run worth a copy op (>= seed)
};

struct Patch {
  std::uint16_t version = 1;          ///< wire format version
  std::uint32_t base_checksum = kEmptyImageChecksum;
  std::uint32_t target_checksum = kEmptyImageChecksum;
  std::uint32_t target_size = 0;
  std::vector<PatchOp> ops;

  /// True when this patch rebuilds the target without a base image.
  bool full_image() const noexcept { return base_checksum == kEmptyImageChecksum; }

  /// Target bytes produced by data ops (the irreducible literal payload).
  std::size_t literal_bytes() const noexcept;

  /// Stable little-endian encoding: "IOTP", version, checksums, size, ops,
  /// FNV-1a trailer. Byte-identical across architectures (golden-pinned).
  std::vector<std::uint8_t> encode() const;

  /// Parse an encoded patch. Throws InvalidArgument on bad magic, an
  /// unsupported version, a checksum mismatch or any truncation.
  static Patch decode(const std::vector<std::uint8_t>& bytes);

  /// Encoded size in bytes (== encode().size()).
  std::size_t size_bytes() const;

  /// Rebuild the target from `base`. Throws InvalidArgument when the base
  /// does not hash to base_checksum, an op reads out of range, or the
  /// rebuilt image does not hash to target_checksum — a patch can never
  /// silently produce a wrong image.
  std::vector<std::uint8_t> apply(const std::vector<std::uint8_t>& base) const;
};

/// Greedy byte-level diff: seed-indexed longest-match search over `base`,
/// literal bytes where no match clears params.min_match. diff(empty, target)
/// yields the full-image patch. Throws InvalidArgument when params are
/// nonsensical (zero seed, min_match < seed_bytes) or either image exceeds
/// the u32 wire range.
Patch diff(const std::vector<std::uint8_t>& base,
           const std::vector<std::uint8_t>& target, DiffParams params = {});

}  // namespace iotml::ota
