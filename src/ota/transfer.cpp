#include "ota/transfer.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/fnv.hpp"

namespace iotml::ota {

ChunkedPatch::ChunkedPatch(std::vector<std::uint8_t> patch_bytes,
                           std::size_t chunk_bytes, std::uint32_t version_id)
    : bytes_(std::move(patch_bytes)),
      chunk_bytes_(chunk_bytes),
      version_id_(version_id) {
  IOTML_CHECK(chunk_bytes_ > 0, "ChunkedPatch: chunk_bytes must be > 0");
  IOTML_CHECK(!bytes_.empty(), "ChunkedPatch: empty patch");
  num_chunks_ = (bytes_.size() + chunk_bytes_ - 1) / chunk_bytes_;
}

ChunkFrame ChunkedPatch::frame(std::size_t index) const {
  IOTML_CHECK(index < num_chunks_, "ChunkedPatch::frame: index out of range");
  const std::size_t begin = index * chunk_bytes_;
  const std::size_t end = std::min(begin + chunk_bytes_, bytes_.size());
  ChunkFrame f;
  f.version_id = version_id_;
  f.index = static_cast<std::uint32_t>(index);
  f.total = static_cast<std::uint32_t>(num_chunks_);
  f.patch_size = static_cast<std::uint32_t>(bytes_.size());
  f.payload.assign(bytes_.begin() + static_cast<std::ptrdiff_t>(begin),
                   bytes_.begin() + static_cast<std::ptrdiff_t>(end));
  f.checksum = fnv1a32(f.payload.data(), f.payload.size());
  return f;
}

std::size_t ChunkedPatch::total_wire_bytes() const noexcept {
  return bytes_.size() + num_chunks_ * kChunkFramingBytes;
}

PatchApplier::Accept PatchApplier::accept(const ChunkFrame& frame) {
  if (frame.total == 0 || frame.index >= frame.total ||
      frame.patch_size == 0) {
    return Accept::kShapeMismatch;
  }
  if (started()) {
    if (frame.version_id != version_id_ || frame.total != total_ ||
        frame.patch_size != patch_size_) {
      return Accept::kShapeMismatch;
    }
  }
  if (fnv1a32(frame.payload.data(), frame.payload.size()) != frame.checksum) {
    return Accept::kChecksumMismatch;
  }
  // Every chunk except the last carries the sender's fixed chunk size and
  // the last carries the remainder; the sizes must sum to patch_size. The
  // fixed size is not on the wire — it is learned from the first accepted
  // frame and cross-checked against every later one.
  const std::size_t total = frame.total;
  const std::size_t size = frame.patch_size;
  const std::size_t got = frame.payload.size();
  const bool last = frame.index + 1 == total;
  std::size_t whole = whole_;
  if (total == 1) {
    if (got != size) return Accept::kShapeMismatch;
    whole = got;
  } else if (!last) {
    if (whole == 0) {
      // This size must leave the last chunk between 1 and `got` bytes.
      if (got == 0 || got * (total - 1) >= size || got * total < size) {
        return Accept::kShapeMismatch;
      }
      whole = got;
    } else if (got != whole) {
      return Accept::kShapeMismatch;
    }
  } else {
    if (whole == 0) {
      // Infer the fixed size from the remainder: it must divide the rest
      // evenly and be at least as large as the remainder it leaves.
      if (got == 0 || got > size || (size - got) % (total - 1) != 0) {
        return Accept::kShapeMismatch;
      }
      whole = (size - got) / (total - 1);
      if (whole < got) return Accept::kShapeMismatch;
    } else if (got != size - whole * (total - 1)) {
      return Accept::kShapeMismatch;
    }
  }

  if (!started()) {
    version_id_ = frame.version_id;
    total_ = total;
    patch_size_ = size;
    have_.assign(total_, 0);
    chunks_.assign(total_, {});
  }
  if (have_[frame.index]) return Accept::kDuplicate;
  whole_ = whole;
  have_[frame.index] = 1;
  chunks_[frame.index] = frame.payload;
  ++verified_;
  return Accept::kAccepted;
}

void PatchApplier::reset() {
  version_id_ = 0;
  total_ = 0;
  patch_size_ = 0;
  whole_ = 0;
  verified_ = 0;
  have_.clear();
  chunks_.clear();
}

std::vector<std::size_t> PatchApplier::missing() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < total_; ++i) {
    if (!have_[i]) out.push_back(i);
  }
  return out;
}

std::vector<std::uint8_t> PatchApplier::assemble() const {
  IOTML_CHECK(complete(), "PatchApplier::assemble: transfer incomplete");
  std::vector<std::uint8_t> out;
  out.reserve(patch_size_);
  for (const auto& c : chunks_) out.insert(out.end(), c.begin(), c.end());
  IOTML_INTERNAL_CHECK(out.size() == patch_size_,
                       "PatchApplier::assemble: reassembled size mismatch");
  return out;
}

}  // namespace iotml::ota
