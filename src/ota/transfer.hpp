#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iotml::ota {

/// Chunked transport of an encoded patch. The sender splits the patch byte
/// stream into fixed-size chunks, each framed with the target version id,
/// its index, the chunk count, the total patch size and an FNV-1a32 over
/// the payload — so every chunk is independently verifiable and a transfer
/// interrupted at any point resumes from exactly the chunks that are still
/// missing. The device never touches its current image until the whole
/// patch has been reassembled, decoded and applied (see DeviceImageStore),
/// which is what makes a mid-patch crash harmless: the staged chunks are
/// either resumed or discarded, the running image is never torn.

/// Per-chunk framing bytes on the wire: version id + index + count +
/// patch size + payload checksum, each u32.
inline constexpr std::size_t kChunkFramingBytes = 20;

/// One chunk frame. `payload` is patch bytes [index*chunk, ...); `checksum`
/// is FNV-1a32 over the payload, verified by the applier before the chunk
/// is accepted.
struct ChunkFrame {
  std::uint32_t version_id = 0;   ///< target version this chunk belongs to
  std::uint32_t index = 0;
  std::uint32_t total = 0;        ///< chunk count of the whole patch
  std::uint32_t patch_size = 0;   ///< encoded patch bytes overall
  std::vector<std::uint8_t> payload;
  std::uint32_t checksum = 0;

  std::size_t wire_bytes() const noexcept {
    return kChunkFramingBytes + payload.size();
  }
};

/// Sender-side view of an encoded patch split into fixed-size chunks.
/// Throws InvalidArgument when chunk_bytes == 0 or the patch is empty.
class ChunkedPatch {
 public:
  ChunkedPatch() = default;
  ChunkedPatch(std::vector<std::uint8_t> patch_bytes, std::size_t chunk_bytes,
               std::uint32_t version_id);

  std::size_t num_chunks() const noexcept { return num_chunks_; }
  std::size_t chunk_bytes() const noexcept { return chunk_bytes_; }
  std::uint32_t version_id() const noexcept { return version_id_; }
  const std::vector<std::uint8_t>& patch_bytes() const noexcept { return bytes_; }
  bool empty() const noexcept { return bytes_.empty(); }

  /// Build the frame for chunk `index` (checksum included). Throws
  /// InvalidArgument when index is out of range.
  ChunkFrame frame(std::size_t index) const;

  /// Wire bytes of every chunk frame summed — what one loss-free transfer
  /// of this patch costs on a single hop.
  std::size_t total_wire_bytes() const noexcept;

 private:
  std::vector<std::uint8_t> bytes_;
  std::size_t chunk_bytes_ = 0;
  std::size_t num_chunks_ = 0;
  std::uint32_t version_id_ = 0;
};

/// Receiver-side resumable reassembly. Chunks arrive in any order, possibly
/// duplicated, possibly corrupt; the applier verifies each frame's checksum
/// and consistency with the announced transfer shape before accepting it.
/// `missing()` drives resume rounds; `complete()` gates the commit.
class PatchApplier {
 public:
  PatchApplier() = default;

  enum class Accept : std::uint8_t {
    kAccepted,          ///< fresh chunk, checksum verified, stored
    kDuplicate,         ///< already held (idempotent)
    kChecksumMismatch,  ///< payload does not hash to the stamped checksum
    kShapeMismatch      ///< frame disagrees with the announced transfer
  };

  /// Feed one chunk frame. The first accepted frame fixes the transfer
  /// shape (version id, chunk count, patch size); later frames must agree.
  Accept accept(const ChunkFrame& frame);

  /// Drop all staged state (a canceled or superseded transfer). The
  /// device's running image is untouched by construction.
  void reset();

  bool started() const noexcept { return total_ > 0; }
  std::uint32_t version_id() const noexcept { return version_id_; }
  std::size_t verified_chunks() const noexcept { return verified_; }
  std::size_t total_chunks() const noexcept { return total_; }
  bool complete() const noexcept { return total_ > 0 && verified_ == total_; }

  /// Chunk indices not yet verified, ascending. Empty before the first
  /// accepted frame (the shape is unknown) and when complete.
  std::vector<std::size_t> missing() const;

  /// The reassembled patch bytes. Throws InvalidArgument unless complete().
  std::vector<std::uint8_t> assemble() const;

 private:
  std::uint32_t version_id_ = 0;
  std::size_t total_ = 0;
  std::size_t patch_size_ = 0;
  std::size_t whole_ = 0;  ///< sender's fixed chunk size, learned from frames
  std::size_t verified_ = 0;
  std::vector<std::uint8_t> have_;           ///< per-chunk verified flag
  std::vector<std::vector<std::uint8_t>> chunks_;
};

}  // namespace iotml::ota
