#include "ota/version.hpp"

#include <utility>

#include "util/error.hpp"

namespace iotml::ota {

void VersionChain::append(std::uint32_t id, std::uint32_t target_checksum,
                          std::uint32_t image_bytes, std::uint32_t patch_bytes) {
  IOTML_CHECK(id != 0, "VersionChain::append: id 0 is reserved");
  IOTML_CHECK(id > head_id(), "VersionChain::append: ids must be monotone");
  VersionLink link;
  link.id = id;
  link.base_checksum = head_checksum();
  link.target_checksum = target_checksum;
  link.image_bytes = image_bytes;
  link.patch_bytes = patch_bytes;
  links_.push_back(link);
}

void VersionChain::retire_head() {
  IOTML_CHECK(!links_.empty(), "VersionChain::retire_head: chain is empty");
  links_.pop_back();
}

std::uint32_t VersionChain::head_checksum() const noexcept {
  return links_.empty() ? kEmptyImageChecksum : links_.back().target_checksum;
}

std::uint32_t VersionChain::head_id() const noexcept {
  return links_.empty() ? 0 : links_.back().id;
}

const VersionLink* VersionChain::find_by_checksum(
    std::uint32_t target_checksum) const noexcept {
  for (const VersionLink& link : links_) {
    if (link.target_checksum == target_checksum) return &link;
  }
  return nullptr;
}

const VersionLink* VersionChain::find_by_id(std::uint32_t id) const noexcept {
  for (const VersionLink& link : links_) {
    if (link.id == id) return &link;
  }
  return nullptr;
}

std::uint32_t DeviceImageStore::current_checksum() const noexcept {
  return current_id_ == 0 ? kEmptyImageChecksum : image_checksum(current_);
}

void DeviceImageStore::commit(std::uint32_t id, std::vector<std::uint8_t> image,
                              std::uint32_t expected_checksum) {
  IOTML_CHECK(id != 0, "DeviceImageStore::commit: id 0 is reserved");
  IOTML_CHECK(image_checksum(image) == expected_checksum,
              "DeviceImageStore::commit: image fails its checksum");
  previous_ = std::move(current_);
  previous_id_ = current_id_;
  current_ = std::move(image);
  current_id_ = id;
}

void DeviceImageStore::rollback() {
  IOTML_CHECK(has_previous(), "DeviceImageStore::rollback: no previous image");
  std::swap(current_, previous_);
  std::swap(current_id_, previous_id_);
}

}  // namespace iotml::ota
