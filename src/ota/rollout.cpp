#include "ota/rollout.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace iotml::ota {

std::vector<std::uint32_t> pick_canaries(std::size_t device_count,
                                         const OtaConfig& cfg, Rng& rng) {
  IOTML_CHECK(device_count > 0, "pick_canaries: empty fleet");
  IOTML_CHECK(cfg.canary_fraction >= 0.0 && cfg.canary_fraction <= 1.0,
              "pick_canaries: canary_fraction out of [0, 1]");
  std::size_t want = static_cast<std::size_t>(
      std::llround(cfg.canary_fraction * static_cast<double>(device_count)));
  want = std::max(want, cfg.min_canary_devices);
  want = std::min(want, device_count);
  std::vector<std::size_t> picked = rng.sample_without_replacement(device_count, want);
  std::sort(picked.begin(), picked.end());
  std::vector<std::uint32_t> out;
  out.reserve(picked.size());
  for (std::size_t i : picked) out.push_back(static_cast<std::uint32_t>(i));
  return out;
}

CanaryVerdict judge(std::uint32_t version_id, int epoch,
                    const std::vector<CanaryProbe>& probes,
                    const OtaConfig& cfg) {
  CanaryVerdict v;
  v.version_id = version_id;
  v.epoch = epoch;
  v.devices_reporting = probes.size();
  std::size_t correct_old = 0;
  std::size_t correct_new = 0;
  for (const CanaryProbe& p : probes) {
    v.pooled_rows += p.rows;
    correct_old += p.correct_old;
    correct_new += p.correct_new;
  }
  if (v.pooled_rows == 0) {
    // No canary evidence (cohort unreachable, or no scored rows yet):
    // refuse to promote rather than gamble the fleet.
    v.promoted = false;
    return v;
  }
  v.accuracy_old =
      static_cast<double>(correct_old) / static_cast<double>(v.pooled_rows);
  v.accuracy_new =
      static_cast<double>(correct_new) / static_cast<double>(v.pooled_rows);
  v.promoted = v.accuracy_new >= v.accuracy_old - cfg.regression_tolerance;
  return v;
}

}  // namespace iotml::ota
