#include "ota/patch.hpp"

#include <limits>
#include <unordered_map>

#include "deploy/codec.hpp"
#include "util/error.hpp"

namespace iotml::ota {

using deploy::ByteReader;
using deploy::ByteWriter;
using deploy::narrow_u32;

namespace {

constexpr std::uint8_t kMagic[4] = {'I', 'O', 'T', 'P'};
constexpr std::uint16_t kWireVersion = 1;

std::uint32_t seed_key(const std::uint8_t* p, std::size_t n) {
  // Little-endian packing of up to 4 seed bytes; seeds are only compared
  // for equality so any stable injective packing works.
  std::uint32_t k = 0;
  for (std::size_t i = 0; i < n; ++i) {
    k |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return k;
}

}  // namespace

std::uint32_t image_checksum(const std::vector<std::uint8_t>& image) {
  return fnv1a32(image.data(), image.size());
}

std::size_t Patch::literal_bytes() const noexcept {
  std::size_t total = 0;
  for (const PatchOp& op : ops) {
    if (op.kind == OpKind::kData) total += op.length;
  }
  return total;
}

std::vector<std::uint8_t> Patch::encode() const {
  ByteWriter w;
  for (std::uint8_t m : kMagic) w.u8(m);
  w.u16(version);
  w.u32(base_checksum);
  w.u32(target_checksum);
  w.u32(target_size);
  w.u32(narrow_u32(ops.size(), "patch op count"));
  for (const PatchOp& op : ops) {
    w.u8(deploy::enum_u8(op.kind));
    w.u32(op.length);
    if (op.kind == OpKind::kCopy) {
      w.u32(op.base_offset);
    } else {
      IOTML_INTERNAL_CHECK(op.data.size() == op.length,
                           "Patch::encode: data op length mismatch");
      for (std::uint8_t b : op.data) w.u8(b);
    }
  }
  const std::uint32_t trailer = fnv1a32(w.bytes().data(), w.size());
  w.u32(trailer);
  return w.take();
}

Patch Patch::decode(const std::vector<std::uint8_t>& bytes) {
  IOTML_CHECK(bytes.size() >= 22, "Patch::decode: truncated patch");
  const std::uint32_t expect = fnv1a32(bytes.data(), bytes.size() - 4);
  ByteReader trailer(bytes.data() + bytes.size() - 4, 4);
  IOTML_CHECK(trailer.u32() == expect,
              "Patch::decode: checksum mismatch (corrupt patch)");

  ByteReader r(bytes.data(), bytes.size() - 4);
  for (std::uint8_t m : kMagic) {
    IOTML_CHECK(r.u8() == m, "Patch::decode: bad magic (not an IOTP patch)");
  }
  Patch p;
  p.version = r.u16();
  IOTML_CHECK(p.version == kWireVersion, "Patch::decode: unsupported patch version");
  p.base_checksum = r.u32();
  p.target_checksum = r.u32();
  p.target_size = r.u32();
  const std::uint32_t count = r.u32();
  p.ops.reserve(count);
  std::uint64_t produced = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    PatchOp op;
    const std::uint8_t kind = r.u8();
    IOTML_CHECK(kind == deploy::enum_u8(OpKind::kCopy) ||
                    kind == deploy::enum_u8(OpKind::kData),
                "Patch::decode: unknown op kind");
    op.kind = kind == deploy::enum_u8(OpKind::kCopy) ? OpKind::kCopy : OpKind::kData;
    op.length = r.u32();
    if (op.kind == OpKind::kCopy) {
      op.base_offset = r.u32();
    } else {
      op.data.reserve(op.length);
      for (std::uint32_t b = 0; b < op.length; ++b) op.data.push_back(r.u8());
    }
    produced += op.length;
    p.ops.push_back(std::move(op));
  }
  IOTML_CHECK(r.done(), "Patch::decode: trailing bytes after ops");
  IOTML_CHECK(produced == p.target_size,
              "Patch::decode: ops do not produce target_size bytes");
  return p;
}

std::size_t Patch::size_bytes() const {
  // Header (magic 4 + version 2 + checksums 8 + size 4 + count 4) + ops +
  // trailer 4; each op is kind 1 + length 4 + (offset 4 | data).
  std::size_t bytes = 4 + 2 + 4 + 4 + 4 + 4 + 4;
  for (const PatchOp& op : ops) {
    bytes += 1 + 4 + (op.kind == OpKind::kCopy ? 4 : op.data.size());
  }
  return bytes;
}

std::vector<std::uint8_t> Patch::apply(const std::vector<std::uint8_t>& base) const {
  IOTML_CHECK(image_checksum(base) == base_checksum,
              "Patch::apply: base image does not match the patch's base checksum");
  std::vector<std::uint8_t> target;
  target.reserve(target_size);
  for (const PatchOp& op : ops) {
    if (op.kind == OpKind::kCopy) {
      IOTML_CHECK(static_cast<std::uint64_t>(op.base_offset) + op.length <= base.size(),
                  "Patch::apply: copy op reads past the base image");
      target.insert(target.end(), base.begin() + op.base_offset,
                    base.begin() + op.base_offset + op.length);
    } else {
      target.insert(target.end(), op.data.begin(), op.data.end());
    }
  }
  IOTML_CHECK(target.size() == target_size,
              "Patch::apply: rebuilt image has the wrong size");
  IOTML_CHECK(image_checksum(target) == target_checksum,
              "Patch::apply: rebuilt image fails the target checksum");
  return target;
}

Patch diff(const std::vector<std::uint8_t>& base,
           const std::vector<std::uint8_t>& target, DiffParams params) {
  IOTML_CHECK(params.seed_bytes >= 1 && params.seed_bytes <= 4,
              "ota::diff: seed_bytes must be in [1, 4]");
  IOTML_CHECK(params.min_match >= params.seed_bytes,
              "ota::diff: min_match must be >= seed_bytes");
  IOTML_CHECK(base.size() <= std::numeric_limits<std::uint32_t>::max() &&
                  target.size() <= std::numeric_limits<std::uint32_t>::max(),
              "ota::diff: image exceeds the u32 wire range");

  Patch p;
  p.base_checksum = image_checksum(base);
  p.target_checksum = image_checksum(target);
  p.target_size = narrow_u32(target.size(), "patch target size");

  // Index every base position by its seed window. Positions are kept in
  // ascending order; candidate lists are scanned newest-first so long
  // repeated regions prefer nearby (cache-friendly) copies.
  // det-sanctioned: key-lookup only, never iterated; per-key position lists are append-ordered
  std::unordered_map<std::uint32_t, std::vector<std::uint32_t>> index;
  if (base.size() >= params.seed_bytes) {
    for (std::size_t i = 0; i + params.seed_bytes <= base.size(); ++i) {
      index[seed_key(base.data() + i, params.seed_bytes)].push_back(
          narrow_u32(i, "diff base offset"));
    }
  }

  std::vector<std::uint8_t> pending;  // literal run being accumulated
  auto flush_pending = [&]() {
    if (pending.empty()) return;
    PatchOp op;
    op.kind = OpKind::kData;
    op.length = narrow_u32(pending.size(), "diff literal length");
    op.data = std::move(pending);
    pending.clear();
    p.ops.push_back(std::move(op));
  };

  std::size_t t = 0;
  while (t < target.size()) {
    std::size_t best_len = 0;
    std::size_t best_off = 0;
    if (t + params.seed_bytes <= target.size() && !index.empty()) {
      const auto it = index.find(seed_key(target.data() + t, params.seed_bytes));
      if (it != index.end()) {
        // Cap candidate scanning so pathological inputs (one repeated byte)
        // stay linear; 16 candidates is plenty for artifact-sized images.
        std::size_t scanned = 0;
        for (auto cand = it->second.rbegin();
             cand != it->second.rend() && scanned < 16; ++cand, ++scanned) {
          const std::size_t b = *cand;
          std::size_t len = 0;
          while (b + len < base.size() && t + len < target.size() &&
                 base[b + len] == target[t + len]) {
            ++len;
          }
          if (len > best_len) {
            best_len = len;
            best_off = b;
          }
        }
      }
    }
    if (best_len >= params.min_match) {
      flush_pending();
      PatchOp op;
      op.kind = OpKind::kCopy;
      op.base_offset = narrow_u32(best_off, "diff copy offset");
      op.length = narrow_u32(best_len, "diff copy length");
      p.ops.push_back(op);
      t += best_len;
    } else {
      pending.push_back(target[t]);
      ++t;
    }
  }
  flush_pending();
  return p;
}

}  // namespace iotml::ota
