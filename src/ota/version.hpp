#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "ota/patch.hpp"

namespace iotml::ota {

/// One link of the fleet's version chain: version `id` was built by patching
/// the image whose checksum is `base_checksum` into the image whose checksum
/// is `target_checksum`. The chain starts at the empty image (checksum
/// kEmptyImageChecksum), so a device can always report where it stands with
/// a single checksum and the core can always tell which patch — if any —
/// moves it forward.
struct VersionLink {
  std::uint32_t id = 0;
  std::uint32_t base_checksum = kEmptyImageChecksum;
  std::uint32_t target_checksum = kEmptyImageChecksum;
  std::uint32_t image_bytes = 0;   ///< size of the target image
  std::uint32_t patch_bytes = 0;   ///< encoded delta size (vs. this base)
};

/// Core-side append-only history of *promoted* versions. Candidate ids are
/// allocated by the rollout controller before the canary verdict; only a
/// promoted candidate enters the chain, so ids may skip (a gap is a rolled
/// back or superseded candidate). Id 0 is reserved for "unprovisioned" (the
/// empty image).
class VersionChain {
 public:
  /// Append a promoted version built against the current head. Throws
  /// InvalidArgument unless `id` is nonzero and greater than the head's
  /// (ids are monotone along the chain).
  void append(std::uint32_t id, std::uint32_t target_checksum,
              std::uint32_t image_bytes, std::uint32_t patch_bytes);

  /// Drop the head link (a promoted version later found bad). The id is
  /// retired, never reused, so the deploy ledger's version histogram stays
  /// unambiguous.
  void retire_head();

  bool empty() const noexcept { return links_.empty(); }
  std::size_t size() const noexcept { return links_.size(); }
  const std::vector<VersionLink>& links() const noexcept { return links_; }

  /// Checksum of the current head image (kEmptyImageChecksum when empty).
  std::uint32_t head_checksum() const noexcept;
  /// Id of the current head (0 when empty).
  std::uint32_t head_id() const noexcept;

  /// Find a link by target checksum; nullptr when unknown.
  const VersionLink* find_by_checksum(std::uint32_t target_checksum) const noexcept;
  /// Find a link by id; nullptr when unknown (or retired).
  const VersionLink* find_by_id(std::uint32_t id) const noexcept;

 private:
  std::vector<VersionLink> links_;
};

/// Device-side image storage with commit-after-verification semantics: the
/// running image only ever changes in commit(), which requires a fully
/// checksum-verified replacement — so a crash or interrupted transfer at any
/// moment leaves the device on a consistent, verified version. The previous
/// image is retained, making rollback a local operation with zero downlink
/// cost.
class DeviceImageStore {
 public:
  bool provisioned() const noexcept { return current_id_ != 0; }
  std::uint32_t current_id() const noexcept { return current_id_; }
  std::uint32_t current_checksum() const noexcept;
  const std::vector<std::uint8_t>& current_image() const noexcept { return current_; }
  bool has_previous() const noexcept { return previous_id_ != 0; }
  std::uint32_t previous_id() const noexcept { return previous_id_; }

  /// Atomically install `image` as version `id`. Throws InvalidArgument
  /// unless the image hashes to `expected_checksum` — an unverified image
  /// can never become the running one.
  void commit(std::uint32_t id, std::vector<std::uint8_t> image,
              std::uint32_t expected_checksum);

  /// Swap back to the retained previous image. Throws InvalidArgument when
  /// there is none. The abandoned image becomes the new "previous" so a
  /// re-promote is equally free.
  void rollback();

 private:
  std::uint32_t current_id_ = 0;
  std::uint32_t previous_id_ = 0;
  std::vector<std::uint8_t> current_;
  std::vector<std::uint8_t> previous_;
};

}  // namespace iotml::ota
