#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace iotml::ota {

/// Tuning of the epochal OTA loop (see DESIGN.md §14). Defaults are sized
/// for the fleet simulator's compiled-model artifacts (hundreds of bytes to
/// a few KB) and its second-scale learning windows.
struct OtaConfig {
  bool enabled = false;

  /// Retrain epochs fired *during* the learning window, at
  /// t_e = duration_s * (e + 1) / (epochs + 1) — so chaos plans genuinely
  /// overlap patch transfers. Epoch 0 provisions the fleet (full image).
  int epochs = 3;

  /// Fraction of the fleet sampled (seeded, without replacement) into the
  /// canary cohort each epoch, floored at min_canary_devices.
  double canary_fraction = 0.2;
  std::size_t min_canary_devices = 2;

  /// Patch chunk payload size on the wire. Small enough that a loss burst
  /// costs one chunk retransmit, large enough that framing stays < 20%.
  std::size_t chunk_bytes = 96;

  /// Resume rounds (re-request of missing chunks) per device per version
  /// before falling back to a full-image transfer, and full-image rounds
  /// before the device is ledgered as stuck for that epoch.
  int max_resume_rounds = 3;
  int max_full_rounds = 2;

  /// A canary verdict promotes unless pooled new-model accuracy drops more
  /// than this below pooled old-model accuracy on the same probe rows.
  double regression_tolerance = 0.02;

  /// Recent rows each canary device scores with both models for the probe.
  std::size_t probe_rows = 32;

  /// Per-transfer resume timer: after this long the core re-sends a
  /// device's still-missing chunks (the sim's stand-in for a NACK round).
  double resume_timeout_s = 2.0;

  /// Canary verdict fires this long after the rollout starts — enough for
  /// chunks, commits and probe reports to cross the tree once.
  double verdict_delay_s = 6.0;

  /// Deterministic per-epoch retrain jitter drawn from the `epoch` rng
  /// stream, desynchronizing retrains from the flush schedule.
  double epoch_jitter_s = 0.5;

  /// An epoch without at least this many labeled core rows builds nothing
  /// (outcome "no-data" in the ledger).
  std::size_t min_train_rows = 8;
};

/// One canary device's A/B probe result: the same `rows` recent rows scored
/// by the running (old) and the candidate (new) model. Pooling counts across
/// the cohort compares the two models on identical data — per-device
/// accuracies on different windows would not be comparable.
struct CanaryProbe {
  std::uint32_t device = 0;
  std::size_t rows = 0;
  std::size_t correct_old = 0;
  std::size_t correct_new = 0;
};

/// Pooled cohort verdict for one candidate version.
struct CanaryVerdict {
  std::uint32_t version_id = 0;
  int epoch = 0;
  std::size_t devices_reporting = 0;
  std::size_t pooled_rows = 0;
  double accuracy_old = 0.0;
  double accuracy_new = 0.0;
  bool promoted = false;
};

/// Sample the canary cohort for an epoch: seeded draw without replacement
/// from [0, device_count), ascending. Cohort size is
/// max(min_canary_devices, round(fraction * device_count)) clamped to the
/// fleet. Throws InvalidArgument when device_count == 0.
std::vector<std::uint32_t> pick_canaries(std::size_t device_count,
                                         const OtaConfig& cfg, Rng& rng);

/// Pool probes and decide. Promotes when pooled new accuracy >= pooled old
/// accuracy - regression_tolerance. With no probes (cohort unreachable under
/// chaos) the verdict is conservative: not promoted.
CanaryVerdict judge(std::uint32_t version_id, int epoch,
                    const std::vector<CanaryProbe>& probes,
                    const OtaConfig& cfg);

}  // namespace iotml::ota
