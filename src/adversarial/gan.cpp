#include "adversarial/gan.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace iotml::adversarial {

namespace {

double sigmoid(double z) {
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

ToyGan::ToyGan(GanParams params) : params_(params) {
  IOTML_CHECK(params.iterations >= 1, "ToyGan: iterations must be >= 1");
  IOTML_CHECK(params.batch_size >= 8, "ToyGan: batch_size must be >= 8");
  IOTML_CHECK(params.init_sigma > 0.0, "ToyGan: init_sigma must be positive");
}

double ToyGan::discriminate(double x) const {
  return sigmoid(w0_ + w1_ * x + w2_ * x * x);
}

void ToyGan::train_discriminator(const std::vector<double>& real,
                                 const std::vector<double>& fake) {
  // Logistic regression on (1, x, x^2); real = 1, fake = 0. Features are
  // standardized by the pooled scale for stable steps.
  double scale = 1e-6;
  for (double v : real) scale = std::max(scale, std::fabs(v));
  for (double v : fake) scale = std::max(scale, std::fabs(v));

  for (std::size_t epoch = 0; epoch < params_.discriminator_epochs; ++epoch) {
    double g0 = 0.0, g1 = 0.0, g2 = 0.0;
    auto accumulate = [&](double x, double label) {
      const double xs = x / scale;
      const double err = sigmoid(w0_ + w1_ * xs + w2_ * xs * xs) - label;
      g0 += err;
      g1 += err * xs;
      g2 += err * xs * xs;
    };
    for (double v : real) accumulate(v, 1.0);
    for (double v : fake) accumulate(v, 0.0);
    const double n = static_cast<double>(real.size() + fake.size());
    w0_ -= params_.discriminator_lr * g0 / n;
    w1_ -= params_.discriminator_lr * g1 / n;
    w2_ -= params_.discriminator_lr * g2 / n;
  }
  // Note: w1_/w2_ are in standardized coordinates; discriminate() is used on
  // standardized values internally, so fold the scale back in.
  w1_ /= scale;
  w2_ /= scale * scale;
}

void ToyGan::fit(double target_mu, double target_sigma, Rng& rng) {
  IOTML_CHECK(target_sigma > 0.0, "ToyGan::fit: target_sigma must be positive");
  mu_ = params_.init_mu;
  sigma_ = params_.init_sigma;
  history_.clear();

  for (std::size_t it = 0; it < params_.iterations; ++it) {
    // Fresh batches.
    std::vector<double> real(params_.batch_size), noise(params_.batch_size);
    for (std::size_t i = 0; i < params_.batch_size; ++i) {
      real[i] = rng.normal(target_mu, target_sigma);
      noise[i] = rng.normal();
    }
    std::vector<double> fake(params_.batch_size);
    for (std::size_t i = 0; i < params_.batch_size; ++i) {
      fake[i] = mu_ + sigma_ * noise[i];
    }

    // Discriminator step (reset weights each round: the model is tiny).
    w0_ = w1_ = w2_ = 0.0;
    train_discriminator(real, fake);

    // Generator step: ascend E_z[log D(G(z))] by the pathwise gradient.
    // d/dmu log D = D'(..)/D(..) * dD_input/dx; with logistic D over
    // (1, x, x^2): dlogD/dx = (1 - D) * (w1 + 2 w2 x).
    double grad_mu = 0.0, grad_sigma = 0.0;
    for (std::size_t i = 0; i < params_.batch_size; ++i) {
      const double x = mu_ + sigma_ * noise[i];
      const double d = discriminate(x);
      const double dlogd_dx = (1.0 - d) * (w1_ + 2.0 * w2_ * x);
      grad_mu += dlogd_dx;
      grad_sigma += dlogd_dx * noise[i];
    }
    const double n = static_cast<double>(params_.batch_size);
    mu_ += params_.generator_lr * grad_mu / n;
    sigma_ += params_.generator_lr * grad_sigma / n;
    sigma_ = std::max(sigma_, 1e-3);

    GanTrace trace;
    trace.mu = mu_;
    trace.sigma = sigma_;
    for (std::size_t i = 0; i < params_.batch_size; ++i) {
      trace.discriminator_real_mean += discriminate(real[i]);
      trace.discriminator_fake_mean += discriminate(mu_ + sigma_ * noise[i]);
    }
    trace.discriminator_real_mean /= n;
    trace.discriminator_fake_mean /= n;
    history_.push_back(trace);
  }
}

double ToyGan::sample(Rng& rng) const { return mu_ + sigma_ * rng.normal(); }

}  // namespace iotml::adversarial
