#pragma once

#include <functional>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace iotml::adversarial {

/// Perturbation models for the adversarial pipeline view (Section II.B /
/// IV): untrusted or hostile stages are modeled as sources of structured
/// corruption of the data they hand downstream.

/// Flip each label with probability `rate` (binary labels assumed 0/1).
/// Returns the number of flips.
std::size_t flip_labels(data::Samples& s, double rate, Rng& rng);

/// Add iid Gaussian noise to every feature. Models a degraded/noisy stage.
void add_feature_noise(data::Samples& s, double stddev, Rng& rng);

/// Zero out each feature cell with probability `rate` (sensor knockout).
std::size_t knock_out_features(data::Samples& s, double rate, Rng& rng);

/// A trained model's real-valued decision function (positive = class 1).
using DecisionFn = std::function<double(std::span<const double>)>;

/// Adversarial example within an L-infinity ball: move each coordinate by
/// +/- epsilon in the direction that most reduces the true class's margin
/// (coordinate-wise sign of a central-difference gradient — exact for linear
/// models, a strong heuristic otherwise).
std::vector<double> linf_attack(const DecisionFn& decision,
                                std::span<const double> x, int true_label,
                                double epsilon);

/// Attack every row of a sample set; returns the attacked copy.
data::Samples linf_attack_all(const DecisionFn& decision, const data::Samples& s,
                              double epsilon);

/// Accuracy of `predict` on adversarially perturbed inputs (the standard
/// robustness metric).
double robust_accuracy(const DecisionFn& decision, const data::Samples& test,
                       double epsilon);

}  // namespace iotml::adversarial
