#include "adversarial/training.hpp"

#include "data/metrics.hpp"
#include "util/error.hpp"

namespace iotml::adversarial {

AdversarialTrainer::AdversarialTrainer(std::unique_ptr<kernels::Kernel> kernel,
                                       AdversarialTrainingParams params)
    : kernel_(std::move(kernel)), params_(params) {
  IOTML_CHECK(kernel_ != nullptr, "AdversarialTrainer: null kernel");
  IOTML_CHECK(params.epsilon >= 0.0, "AdversarialTrainer: epsilon must be >= 0");
  IOTML_CHECK(params.rounds >= 1, "AdversarialTrainer: rounds must be >= 1");
}

void AdversarialTrainer::retrain() {
  model_ = std::make_unique<kernels::KernelSvmClassifier>(kernel_->clone(), params_.svm);
  data::Samples current;
  current.x = train_x_;
  current.y = train_y_;
  model_->fit(current);
}

void AdversarialTrainer::fit(const data::Samples& train) {
  IOTML_CHECK(!train.y.empty(), "AdversarialTrainer::fit: unlabeled training set");
  train_x_ = train.x;
  train_y_ = train.y;
  history_.clear();
  retrain();

  for (std::size_t round = 0; round < params_.rounds; ++round) {
    RoundLog log;
    log.training_size = train_y_.size();

    data::Samples original = train;
    log.clean_train_accuracy =
        data::accuracy(original.y, model_->predict(original.x));

    // Attacker best-responds to the current model on the *original* points.
    const data::Samples attacked = linf_attack_all(decision(), original, params_.epsilon);
    log.adversarial_train_accuracy =
        data::accuracy(attacked.y, model_->predict(attacked.x));
    history_.push_back(log);

    if (round + 1 == params_.rounds) break;

    // Defender augments with the adversarial examples and retrains.
    la::Matrix grown(train_x_.rows() + attacked.size(), train_x_.cols());
    for (std::size_t r = 0; r < train_x_.rows(); ++r) {
      for (std::size_t c = 0; c < train_x_.cols(); ++c) grown(r, c) = train_x_(r, c);
    }
    for (std::size_t r = 0; r < attacked.size(); ++r) {
      for (std::size_t c = 0; c < train_x_.cols(); ++c) {
        grown(train_x_.rows() + r, c) = attacked.x(r, c);
      }
    }
    train_x_ = std::move(grown);
    train_y_.insert(train_y_.end(), attacked.y.begin(), attacked.y.end());
    retrain();
  }
}

DecisionFn AdversarialTrainer::decision() const {
  IOTML_CHECK(model_ != nullptr, "AdversarialTrainer::decision: call fit() first");
  // Capture by pointer: the returned closure is only valid while *this lives.
  const kernels::KernelSvmClassifier* model = model_.get();
  const la::Matrix* train_x = &train_x_;
  const kernels::Kernel* kernel = kernel_.get();
  return [model, train_x, kernel](std::span<const double> x) {
    std::vector<double> k_row(train_x->rows());
    for (std::size_t i = 0; i < train_x->rows(); ++i) {
      k_row[i] = (*kernel)(train_x->row_span(i), x);
    }
    return model->model().decision(k_row);
  };
}

std::vector<int> AdversarialTrainer::predict(const la::Matrix& x) const {
  IOTML_CHECK(model_ != nullptr, "AdversarialTrainer::predict: call fit() first");
  return model_->predict(x);
}

double AdversarialTrainer::clean_accuracy(const data::Samples& test) const {
  return data::accuracy(test.y, predict(test.x));
}

double AdversarialTrainer::attacked_accuracy(const data::Samples& test,
                                             double epsilon) const {
  return robust_accuracy(decision(), test, epsilon);
}

}  // namespace iotml::adversarial
