#include "adversarial/perturbation.hpp"

#include <cmath>

#include "util/error.hpp"

namespace iotml::adversarial {

std::size_t flip_labels(data::Samples& s, double rate, Rng& rng) {
  IOTML_CHECK(rate >= 0.0 && rate <= 1.0, "flip_labels: rate must be in [0, 1]");
  std::size_t flips = 0;
  for (int& y : s.y) {
    IOTML_CHECK(y == 0 || y == 1, "flip_labels: labels must be 0/1");
    if (rng.bernoulli(rate)) {
      y = 1 - y;
      ++flips;
    }
  }
  return flips;
}

void add_feature_noise(data::Samples& s, double stddev, Rng& rng) {
  IOTML_CHECK(stddev >= 0.0, "add_feature_noise: stddev must be >= 0");
  for (std::size_t r = 0; r < s.size(); ++r) {
    for (std::size_t c = 0; c < s.dim(); ++c) {
      s.x(r, c) += rng.normal(0.0, stddev);
    }
  }
}

std::size_t knock_out_features(data::Samples& s, double rate, Rng& rng) {
  IOTML_CHECK(rate >= 0.0 && rate <= 1.0, "knock_out_features: rate must be in [0, 1]");
  std::size_t knocked = 0;
  for (std::size_t r = 0; r < s.size(); ++r) {
    for (std::size_t c = 0; c < s.dim(); ++c) {
      if (rng.bernoulli(rate)) {
        s.x(r, c) = 0.0;
        ++knocked;
      }
    }
  }
  return knocked;
}

std::vector<double> linf_attack(const DecisionFn& decision,
                                std::span<const double> x, int true_label,
                                double epsilon) {
  IOTML_CHECK(epsilon >= 0.0, "linf_attack: epsilon must be >= 0");
  IOTML_CHECK(true_label == 0 || true_label == 1, "linf_attack: labels must be 0/1");
  std::vector<double> attacked(x.begin(), x.end());
  if (epsilon == 0.0) return attacked;

  // Central-difference gradient of the decision value.
  const double h = std::max(1e-6, epsilon * 1e-3);
  std::vector<double> probe(attacked);
  const double sign = true_label == 1 ? -1.0 : 1.0;  // reduce margin of truth
  for (std::size_t c = 0; c < attacked.size(); ++c) {
    probe[c] = attacked[c] + h;
    const double up = decision(probe);
    probe[c] = attacked[c] - h;
    const double down = decision(probe);
    probe[c] = attacked[c];
    const double grad = (up - down) / (2.0 * h);
    // Step epsilon in the harmful direction (FGSM with an exact linear case).
    if (grad > 0.0) {
      attacked[c] += sign * epsilon;
    } else if (grad < 0.0) {
      attacked[c] -= sign * epsilon;
    }
  }
  return attacked;
}

data::Samples linf_attack_all(const DecisionFn& decision, const data::Samples& s,
                              double epsilon) {
  IOTML_CHECK(!s.y.empty(), "linf_attack_all: samples must be labeled");
  data::Samples out = s;
  for (std::size_t r = 0; r < s.size(); ++r) {
    const auto attacked = linf_attack(decision, s.x.row_span(r), s.y[r], epsilon);
    for (std::size_t c = 0; c < s.dim(); ++c) out.x(r, c) = attacked[c];
  }
  return out;
}

double robust_accuracy(const DecisionFn& decision, const data::Samples& test,
                       double epsilon) {
  IOTML_CHECK(!test.y.empty(), "robust_accuracy: unlabeled test set");
  std::size_t hits = 0;
  for (std::size_t r = 0; r < test.size(); ++r) {
    const auto attacked = linf_attack(decision, test.x.row_span(r), test.y[r], epsilon);
    const int predicted = decision(attacked) >= 0.0 ? 1 : 0;
    if (predicted == test.y[r]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(test.size());
}

}  // namespace iotml::adversarial
