#pragma once

#include <vector>

#include "util/rng.hpp"

namespace iotml::adversarial {

/// A deliberately small generative adversarial pair (Goodfellow et al.,
/// Section II.B): a two-parameter Gaussian generator G(z) = mu + sigma * z
/// against a logistic discriminator on the features (x, x^2). The generator
/// converges to the data distribution when training balances — the zero-sum
/// game the paper cites as the archetype of adversarial learning.
struct GanParams {
  std::size_t iterations = 600;
  std::size_t batch_size = 128;
  std::size_t discriminator_epochs = 150;
  double discriminator_lr = 1.0;
  double generator_lr = 0.15;
  double init_mu = 0.0;
  double init_sigma = 1.0;
};

struct GanTrace {
  double mu = 0.0;
  double sigma = 0.0;
  double discriminator_real_mean = 0.0;  ///< mean D(x) on real data
  double discriminator_fake_mean = 0.0;  ///< mean D(x) on generated data
};

class ToyGan {
 public:
  explicit ToyGan(GanParams params = {});

  /// Learn to imitate N(target_mu, target_sigma^2).
  void fit(double target_mu, double target_sigma, Rng& rng);

  double mu() const noexcept { return mu_; }
  double sigma() const noexcept { return sigma_; }

  /// Sample from the trained generator.
  double sample(Rng& rng) const;

  /// Discriminator probability that x is real.
  double discriminate(double x) const;

  const std::vector<GanTrace>& history() const noexcept { return history_; }

 private:
  GanParams params_;
  double mu_ = 0.0;
  double sigma_ = 1.0;
  // Discriminator weights over (1, x, x^2).
  double w0_ = 0.0, w1_ = 0.0, w2_ = 0.0;
  std::vector<GanTrace> history_;

  void train_discriminator(const std::vector<double>& real,
                           const std::vector<double>& fake);
};

}  // namespace iotml::adversarial
