#pragma once

#include <memory>
#include <vector>

#include "adversarial/perturbation.hpp"
#include "kernels/mkl.hpp"

namespace iotml::adversarial {

/// Adversarial training of a kernel SVM: alternate between training the
/// defender and letting the attacker (Huang et al.'s adversarial-opponent
/// model, Section II.B) craft worst-case L-infinity perturbations of the
/// training data, which are appended for the next round.
struct AdversarialTrainingParams {
  double epsilon = 0.2;       ///< attacker budget (L-infinity)
  std::size_t rounds = 4;     ///< attack-retrain iterations
  kernels::SvmParams svm{};
};

struct RoundLog {
  double clean_train_accuracy = 0.0;
  double adversarial_train_accuracy = 0.0;  ///< under attack, before retraining
  std::size_t training_size = 0;
};

class AdversarialTrainer {
 public:
  AdversarialTrainer(std::unique_ptr<kernels::Kernel> kernel,
                     AdversarialTrainingParams params = {});

  void fit(const data::Samples& train);

  /// The robustified model's decision function.
  DecisionFn decision() const;

  std::vector<int> predict(const la::Matrix& x) const;
  double clean_accuracy(const data::Samples& test) const;
  double attacked_accuracy(const data::Samples& test, double epsilon) const;

  const std::vector<RoundLog>& history() const noexcept { return history_; }

 private:
  std::unique_ptr<kernels::Kernel> kernel_;
  AdversarialTrainingParams params_;
  std::unique_ptr<kernels::KernelSvmClassifier> model_;
  la::Matrix train_x_;               // final (augmented) training features
  std::vector<int> train_y_;
  std::vector<RoundLog> history_;

  void retrain();
};

}  // namespace iotml::adversarial
