#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <vector>

namespace iotml::la {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
///
/// This is deliberately a small, dependency-free implementation sized for the
/// library's needs (kernel Gram matrices, covariance matrices, CCA): O(n^3)
/// factorizations on matrices up to a few thousand rows.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(std::initializer_list<std::initializer_list<double>> values);

  static Matrix identity(std::size_t n);

  std::size_t rows() const noexcept { return rows_; }
  std::size_t cols() const noexcept { return cols_; }
  bool empty() const noexcept { return rows_ == 0 || cols_ == 0; }

  double& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  double operator()(std::size_t r, std::size_t c) const { return data_[r * cols_ + c]; }

  /// Checked element access.
  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  const std::vector<double>& data() const noexcept { return data_; }

  Matrix transpose() const;
  Matrix operator*(const Matrix& rhs) const;
  Vector operator*(const Vector& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix& operator+=(const Matrix& rhs);
  Matrix& operator*=(double scalar);
  Matrix scaled(double scalar) const;

  Vector row(std::size_t r) const;
  Vector col(std::size_t c) const;

  /// Zero-copy view of row r (rows are stored contiguously).
  std::span<const double> row_span(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Trace (square matrices only).
  double trace() const;

  /// Max |a_ij - b_ij|; matrices must have identical shape.
  double max_abs_diff(const Matrix& other) const;

  bool is_square() const noexcept { return rows_ == cols_; }
  bool is_symmetric(double tol = 1e-10) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

// ---- Vector helpers ------------------------------------------------------

double dot(const Vector& a, const Vector& b);
double norm2(const Vector& a);
Vector axpy(double alpha, const Vector& x, const Vector& y);  // alpha*x + y
Vector scale(double alpha, const Vector& x);
Vector sub(const Vector& a, const Vector& b);
Vector add(const Vector& a, const Vector& b);

// ---- Factorizations ------------------------------------------------------

/// Solve A x = b via LU with partial pivoting. Throws NumericError if A is
/// (numerically) singular.
Vector solve_lu(Matrix a, Vector b);

/// Solve A X = B column-by-column.
Matrix solve_lu(Matrix a, const Matrix& b);

/// Cholesky factor L with A = L L^T for symmetric positive-definite A.
/// Throws NumericError if A is not positive definite (beyond `jitter` rescue:
/// if the first attempt fails and jitter > 0, retries once with
/// A + jitter * I, which is the standard regularization for kernel matrices).
Matrix cholesky(const Matrix& a, double jitter = 0.0);

/// Solve A x = b given the Cholesky factor L of A.
Vector cholesky_solve(const Matrix& l, const Vector& b);

/// Determinant via LU (sign-aware).
double determinant(Matrix a);

/// Inverse via LU; throws NumericError when singular.
Matrix inverse(const Matrix& a);

/// Result of a symmetric eigendecomposition.
struct EigenResult {
  Vector values;   ///< eigenvalues, descending
  Matrix vectors;  ///< column i is the eigenvector for values[i]
};

/// Jacobi rotation eigensolver for symmetric matrices. Robust and simple;
/// O(n^3) per sweep, fine for the few-hundred-dimensional problems here.
EigenResult eigen_symmetric(const Matrix& a, int max_sweeps = 64, double tol = 1e-12);

/// Column-wise mean of a data matrix (rows = samples).
Vector column_means(const Matrix& x);

/// Sample covariance of a data matrix (rows = samples), denominator n-1.
Matrix covariance(const Matrix& x);

/// Cross-covariance between two sample matrices with equal row counts.
Matrix cross_covariance(const Matrix& x, const Matrix& y);

}  // namespace iotml::la
