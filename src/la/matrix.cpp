#include "la/matrix.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/error.hpp"

namespace iotml::la {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> values) {
  rows_ = values.size();
  cols_ = rows_ == 0 ? 0 : values.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : values) {
    IOTML_CHECK(row.size() == cols_, "Matrix: ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  IOTML_CHECK(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  IOTML_CHECK(r < rows_ && c < cols_, "Matrix::at: index out of range");
  return data_[r * cols_ + c];
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  return t;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  IOTML_CHECK(cols_ == rhs.rows_, "Matrix::operator*: shape mismatch");
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j) {
        out(i, j) += aik * rhs(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::operator*(const Vector& rhs) const {
  IOTML_CHECK(cols_ == rhs.size(), "Matrix::operator*(Vector): shape mismatch");
  Vector out(rows_, 0.0);
  for (std::size_t i = 0; i < rows_; ++i) {
    double acc = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) acc += (*this)(i, j) * rhs[j];
    out[i] = acc;
  }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  IOTML_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix::operator+: shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  IOTML_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix::operator-: shape mismatch");
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= rhs.data_[i];
  return out;
}

Matrix& Matrix::operator+=(const Matrix& rhs) {
  IOTML_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_, "Matrix::operator+=: shape mismatch");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += rhs.data_[i];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

Matrix Matrix::scaled(double scalar) const {
  Matrix out = *this;
  out *= scalar;
  return out;
}

Vector Matrix::row(std::size_t r) const {
  IOTML_CHECK(r < rows_, "Matrix::row: index out of range");
  return Vector(data_.begin() + static_cast<std::ptrdiff_t>(r * cols_),
                data_.begin() + static_cast<std::ptrdiff_t>((r + 1) * cols_));
}

Vector Matrix::col(std::size_t c) const {
  IOTML_CHECK(c < cols_, "Matrix::col: index out of range");
  Vector out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

double Matrix::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Matrix::trace() const {
  IOTML_CHECK(is_square(), "Matrix::trace: matrix not square");
  double acc = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) acc += (*this)(i, i);
  return acc;
}

double Matrix::max_abs_diff(const Matrix& other) const {
  IOTML_CHECK(rows_ == other.rows_ && cols_ == other.cols_,
              "Matrix::max_abs_diff: shape mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i) {
    worst = std::max(worst, std::fabs(data_[i] - other.data_[i]));
  }
  return worst;
}

bool Matrix::is_symmetric(double tol) const {
  if (!is_square()) return false;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i + 1; j < cols_; ++j)
      if (std::fabs((*this)(i, j) - (*this)(j, i)) > tol) return false;
  return true;
}

// ---- Vector helpers ------------------------------------------------------

double dot(const Vector& a, const Vector& b) {
  IOTML_CHECK(a.size() == b.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

Vector axpy(double alpha, const Vector& x, const Vector& y) {
  IOTML_CHECK(x.size() == y.size(), "axpy: size mismatch");
  Vector out(y);
  for (std::size_t i = 0; i < x.size(); ++i) out[i] += alpha * x[i];
  return out;
}

Vector scale(double alpha, const Vector& x) {
  Vector out(x);
  for (double& v : out) v *= alpha;
  return out;
}

Vector sub(const Vector& a, const Vector& b) {
  IOTML_CHECK(a.size() == b.size(), "sub: size mismatch");
  Vector out(a);
  for (std::size_t i = 0; i < b.size(); ++i) out[i] -= b[i];
  return out;
}

Vector add(const Vector& a, const Vector& b) {
  IOTML_CHECK(a.size() == b.size(), "add: size mismatch");
  Vector out(a);
  for (std::size_t i = 0; i < b.size(); ++i) out[i] += b[i];
  return out;
}

// ---- LU ------------------------------------------------------------------

namespace {

/// In-place LU with partial pivoting. Returns the permutation's row order and
/// the parity of the permutation; throws on singularity.
struct LuResult {
  std::vector<std::size_t> perm;
  int sign = 1;
};

LuResult lu_decompose_inplace(Matrix& a) {
  IOTML_CHECK(a.is_square(), "LU: matrix not square");
  const std::size_t n = a.rows();
  LuResult result;
  result.perm.resize(n);
  std::iota(result.perm.begin(), result.perm.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    std::size_t pivot = k;
    double best = std::fabs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      double v = std::fabs(a(i, k));
      if (v > best) {
        best = v;
        pivot = i;
      }
    }
    if (best < 1e-13) throw NumericError("LU: matrix is numerically singular");
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(pivot, j));
      std::swap(result.perm[k], result.perm[pivot]);
      result.sign = -result.sign;
    }
    for (std::size_t i = k + 1; i < n; ++i) {
      a(i, k) /= a(k, k);
      const double lik = a(i, k);
      if (lik == 0.0) continue;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= lik * a(k, j);
    }
  }
  return result;
}

Vector lu_solve_factored(const Matrix& lu, const std::vector<std::size_t>& perm,
                         const Vector& b) {
  const std::size_t n = lu.rows();
  Vector x(n);
  // Forward substitution with permuted b (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[perm[i]];
    for (std::size_t j = 0; j < i; ++j) acc -= lu(i, j) * x[j];
    x[i] = acc;
  }
  // Back substitution.
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu(ii, j) * x[j];
    x[ii] = acc / lu(ii, ii);
  }
  return x;
}

}  // namespace

Vector solve_lu(Matrix a, Vector b) {
  IOTML_CHECK(a.rows() == b.size(), "solve_lu: shape mismatch");
  LuResult f = lu_decompose_inplace(a);
  return lu_solve_factored(a, f.perm, b);
}

Matrix solve_lu(Matrix a, const Matrix& b) {
  IOTML_CHECK(a.rows() == b.rows(), "solve_lu: shape mismatch");
  LuResult f = lu_decompose_inplace(a);
  Matrix x(b.rows(), b.cols());
  for (std::size_t c = 0; c < b.cols(); ++c) {
    Vector xc = lu_solve_factored(a, f.perm, b.col(c));
    for (std::size_t r = 0; r < b.rows(); ++r) x(r, c) = xc[r];
  }
  return x;
}

double determinant(Matrix a) {
  LuResult f;
  try {
    f = lu_decompose_inplace(a);
  } catch (const NumericError&) {
    return 0.0;
  }
  double det = f.sign;
  for (std::size_t i = 0; i < a.rows(); ++i) det *= a(i, i);
  return det;
}

Matrix inverse(const Matrix& a) {
  IOTML_CHECK(a.is_square(), "inverse: matrix not square");
  return solve_lu(a, Matrix::identity(a.rows()));
}

// ---- Cholesky --------------------------------------------------------------

namespace {

bool try_cholesky(const Matrix& a, Matrix& l) {
  const std::size_t n = a.rows();
  l = Matrix(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double acc = a(i, j);
      for (std::size_t k = 0; k < j; ++k) acc -= l(i, k) * l(j, k);
      if (i == j) {
        if (acc <= 0.0) return false;
        l(i, j) = std::sqrt(acc);
      } else {
        l(i, j) = acc / l(j, j);
      }
    }
  }
  return true;
}

}  // namespace

Matrix cholesky(const Matrix& a, double jitter) {
  IOTML_CHECK(a.is_square(), "cholesky: matrix not square");
  Matrix l;
  if (try_cholesky(a, l)) return l;
  if (jitter > 0.0) {
    Matrix regularized = a;
    for (std::size_t i = 0; i < a.rows(); ++i) regularized(i, i) += jitter;
    if (try_cholesky(regularized, l)) return l;
  }
  throw NumericError("cholesky: matrix is not positive definite");
}

Vector cholesky_solve(const Matrix& l, const Vector& b) {
  const std::size_t n = l.rows();
  IOTML_CHECK(b.size() == n, "cholesky_solve: shape mismatch");
  Vector y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= l(i, j) * y[j];
    y[i] = acc / l(i, i);
  }
  Vector x(n);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= l(j, ii) * x[j];
    x[ii] = acc / l(ii, ii);
  }
  return x;
}

// ---- Jacobi eigensolver ----------------------------------------------------

EigenResult eigen_symmetric(const Matrix& a, int max_sweeps, double tol) {
  IOTML_CHECK(a.is_square(), "eigen_symmetric: matrix not square");
  IOTML_CHECK(a.is_symmetric(1e-8), "eigen_symmetric: matrix not symmetric");
  const std::size_t n = a.rows();
  Matrix d = a;
  Matrix v = Matrix::identity(n);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += d(i, j) * d(i, j);
    if (off < tol * tol) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        if (std::fabs(d(p, q)) < 1e-300) continue;
        const double theta = (d(q, q) - d(p, p)) / (2.0 * d(p, q));
        const double t = (theta >= 0 ? 1.0 : -1.0) /
                         (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;

        for (std::size_t k = 0; k < n; ++k) {
          const double dkp = d(k, p);
          const double dkq = d(k, q);
          d(k, p) = c * dkp - s * dkq;
          d(k, q) = s * dkp + c * dkq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double dpk = d(p, k);
          const double dqk = d(q, k);
          d(p, k) = c * dpk - s * dqk;
          d(q, k) = s * dpk + c * dqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Sort eigenpairs descending by eigenvalue.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t i, std::size_t j) { return d(i, i) > d(j, j); });

  EigenResult result;
  result.values.resize(n);
  result.vectors = Matrix(n, n);
  for (std::size_t c = 0; c < n; ++c) {
    result.values[c] = d(order[c], order[c]);
    for (std::size_t r = 0; r < n; ++r) result.vectors(r, c) = v(r, order[c]);
  }
  return result;
}

// ---- Statistics helpers ----------------------------------------------------

Vector column_means(const Matrix& x) {
  IOTML_CHECK(x.rows() > 0, "column_means: empty matrix");
  Vector mean(x.cols(), 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r)
    for (std::size_t c = 0; c < x.cols(); ++c) mean[c] += x(r, c);
  for (double& m : mean) m /= static_cast<double>(x.rows());
  return mean;
}

Matrix covariance(const Matrix& x) {
  IOTML_CHECK(x.rows() > 1, "covariance: need at least 2 samples");
  const Vector mean = column_means(x);
  Matrix cov(x.cols(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t i = 0; i < x.cols(); ++i) {
      const double di = x(r, i) - mean[i];
      for (std::size_t j = i; j < x.cols(); ++j) {
        cov(i, j) += di * (x(r, j) - mean[j]);
      }
    }
  }
  const double denom = static_cast<double>(x.rows() - 1);
  for (std::size_t i = 0; i < x.cols(); ++i)
    for (std::size_t j = i; j < x.cols(); ++j) {
      cov(i, j) /= denom;
      cov(j, i) = cov(i, j);
    }
  return cov;
}

Matrix cross_covariance(const Matrix& x, const Matrix& y) {
  IOTML_CHECK(x.rows() == y.rows(), "cross_covariance: row mismatch");
  IOTML_CHECK(x.rows() > 1, "cross_covariance: need at least 2 samples");
  const Vector mx = column_means(x);
  const Vector my = column_means(y);
  Matrix cov(x.cols(), y.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t i = 0; i < x.cols(); ++i) {
      const double di = x(r, i) - mx[i];
      for (std::size_t j = 0; j < y.cols(); ++j) {
        cov(i, j) += di * (y(r, j) - my[j]);
      }
    }
  }
  const double denom = static_cast<double>(x.rows() - 1);
  cov *= 1.0 / denom;
  return cov;
}

}  // namespace iotml::la
