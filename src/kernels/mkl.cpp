#include "kernels/mkl.hpp"

#include <algorithm>
#include <cmath>

#include "data/metrics.hpp"
#include "data/split.hpp"
#include "util/error.hpp"

namespace iotml::kernels {

la::Matrix combine_grams(const std::vector<la::Matrix>& grams,
                         const std::vector<double>& weights) {
  IOTML_CHECK(!grams.empty(), "combine_grams: no grams");
  IOTML_CHECK(grams.size() == weights.size(), "combine_grams: weight count mismatch");
  la::Matrix out(grams.front().rows(), grams.front().cols());
  for (std::size_t m = 0; m < grams.size(); ++m) {
    IOTML_CHECK(grams[m].rows() == out.rows() && grams[m].cols() == out.cols(),
                "combine_grams: gram shape mismatch");
    IOTML_CHECK(weights[m] >= 0.0, "combine_grams: negative weight");
    if (weights[m] == 0.0) continue;
    for (std::size_t i = 0; i < out.rows(); ++i) {
      for (std::size_t j = 0; j < out.cols(); ++j) {
        out(i, j) += weights[m] * grams[m](i, j);
      }
    }
  }
  return out;
}

std::vector<double> uniform_weights(std::size_t count) {
  IOTML_CHECK(count >= 1, "uniform_weights: count must be >= 1");
  return std::vector<double>(count, 1.0 / static_cast<double>(count));
}

namespace {

std::vector<double> normalized_or_uniform(std::vector<double> w) {
  double total = 0.0;
  for (double v : w) total += v;
  if (total <= 1e-12) return uniform_weights(w.size());
  for (double& v : w) v /= total;
  return w;
}

}  // namespace

std::vector<double> alignment_weights(const std::vector<la::Matrix>& grams,
                                      const std::vector<int>& y01) {
  IOTML_CHECK(!grams.empty(), "alignment_weights: no grams");
  std::vector<double> w(grams.size());
  for (std::size_t m = 0; m < grams.size(); ++m) {
    w[m] = std::max(0.0, target_alignment(grams[m], y01));
  }
  return normalized_or_uniform(std::move(w));
}

std::vector<double> optimize_alignment_weights(const std::vector<la::Matrix>& grams,
                                               const std::vector<int>& y01,
                                               std::size_t rounds,
                                               std::size_t grid_points) {
  IOTML_CHECK(!grams.empty(), "optimize_alignment_weights: no grams");
  IOTML_CHECK(grid_points >= 2, "optimize_alignment_weights: need >= 2 grid points");

  // Precompute centered grams and the target for fast alignment of linear
  // combinations: alignment(sum w_m Kc_m, Y).
  std::vector<la::Matrix> centered;
  centered.reserve(grams.size());
  for (const auto& g : grams) centered.push_back(center_gram(g));

  const std::size_t n = y01.size();
  la::Matrix target(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double yi = y01[i] == 1 ? 1.0 : -1.0;
    for (std::size_t j = 0; j < n; ++j) target(i, j) = yi * (y01[j] == 1 ? 1.0 : -1.0);
  }

  // <Kc_a, Kc_b>_F and <Kc_a, Y>_F tables make each candidate O(M^2).
  const std::size_t m_count = grams.size();
  la::Matrix kk(m_count, m_count);
  std::vector<double> ky(m_count);
  for (std::size_t a = 0; a < m_count; ++a) {
    ky[a] = frobenius_inner(centered[a], target);
    for (std::size_t b = a; b < m_count; ++b) {
      kk(a, b) = frobenius_inner(centered[a], centered[b]);
      kk(b, a) = kk(a, b);
    }
  }
  const double y_norm = target.frobenius_norm();

  auto alignment_of = [&](const std::vector<double>& w) {
    double num = 0.0, denom2 = 0.0;
    for (std::size_t a = 0; a < m_count; ++a) {
      num += w[a] * ky[a];
      for (std::size_t b = 0; b < m_count; ++b) denom2 += w[a] * w[b] * kk(a, b);
    }
    if (denom2 <= 1e-300 || y_norm <= 1e-300) return 0.0;
    return num / (std::sqrt(denom2) * y_norm);
  };

  std::vector<double> w = alignment_weights(grams, y01);
  double best = alignment_of(w);
  for (std::size_t round = 0; round < rounds; ++round) {
    for (std::size_t m = 0; m < m_count; ++m) {
      const double original = w[m];
      double best_value = original;
      for (std::size_t g = 0; g < grid_points; ++g) {
        // Geometric grid over [0, ~2]: 0 plus 2^-(grid-2) .. 2.
        const double candidate =
            g == 0 ? 0.0 : std::ldexp(2.0, -static_cast<int>(grid_points - 1 - g));
        w[m] = candidate;
        const double a = alignment_of(w);
        if (a > best + 1e-12) {
          best = a;
          best_value = candidate;
        }
      }
      w[m] = best_value;
    }
  }
  return normalized_or_uniform(std::move(w));
}

// ---- KernelSvmClassifier -----------------------------------------------------

KernelSvmClassifier::KernelSvmClassifier(std::unique_ptr<Kernel> kernel,
                                         SvmParams params)
    : kernel_(std::move(kernel)), params_(params) {
  IOTML_CHECK(kernel_ != nullptr, "KernelSvmClassifier: null kernel");
}

void KernelSvmClassifier::fit(const data::Samples& train) {
  IOTML_CHECK(!train.y.empty(), "KernelSvmClassifier::fit: unlabeled samples");
  train_x_ = train.x;
  model_ = train_svm(gram(*kernel_, train_x_), train.y, params_);
  fitted_ = true;
}

std::vector<int> KernelSvmClassifier::predict(const la::Matrix& x) const {
  IOTML_CHECK(fitted_, "KernelSvmClassifier::predict: call fit() first");
  return model_.predict(cross_gram(*kernel_, x, train_x_));
}

double KernelSvmClassifier::accuracy(const data::Samples& test) const {
  return data::accuracy(test.y, predict(test.x));
}

const SvmModel& KernelSvmClassifier::model() const {
  IOTML_CHECK(fitted_, "KernelSvmClassifier::model: call fit() first");
  return model_;
}

// ---- Cross validation -----------------------------------------------------------

double cv_accuracy_precomputed(const la::Matrix& gram, const std::vector<int>& y01,
                               std::size_t folds, Rng& rng, const SvmParams& params) {
  IOTML_CHECK(gram.is_square(), "cv_accuracy_precomputed: gram must be square");
  IOTML_CHECK(gram.rows() == y01.size(), "cv_accuracy_precomputed: label size mismatch");
  data::KFold kfold(y01.size(), folds, rng);

  std::size_t hits = 0, total = 0;
  for (std::size_t f = 0; f < folds; ++f) {
    const auto train_idx = kfold.train_indices(f);
    const auto test_idx = kfold.test_indices(f);

    la::Matrix train_gram(train_idx.size(), train_idx.size());
    std::vector<int> train_y(train_idx.size());
    for (std::size_t i = 0; i < train_idx.size(); ++i) {
      train_y[i] = y01[train_idx[i]];
      for (std::size_t j = 0; j < train_idx.size(); ++j) {
        train_gram(i, j) = gram(train_idx[i], train_idx[j]);
      }
    }
    // A fold can end up one-class on tiny datasets; skip it rather than fail.
    const bool has_both = std::count(train_y.begin(), train_y.end(), 1) > 0 &&
                          std::count(train_y.begin(), train_y.end(), 0) > 0;
    if (!has_both) continue;

    SvmModel model = train_svm(train_gram, train_y, params);
    for (std::size_t t : test_idx) {
      std::vector<double> k_row(train_idx.size());
      for (std::size_t j = 0; j < train_idx.size(); ++j) k_row[j] = gram(t, train_idx[j]);
      hits += model.predict(k_row) == y01[t] ? 1 : 0;
      ++total;
    }
  }
  IOTML_CHECK(total > 0, "cv_accuracy_precomputed: no usable folds");
  return static_cast<double>(hits) / static_cast<double>(total);
}

}  // namespace iotml::kernels
