#pragma once

#include <memory>
#include <vector>

#include "kernels/kernel.hpp"
#include "la/matrix.hpp"

namespace iotml::kernels {

/// Kernel ridge regression: alpha = (K + lambda I)^{-1} y; f(x) = k(x, X) alpha.
///
/// Used as the regression-side counterpart of the SVM (e.g. sensor-value
/// reconstruction in the pipeline experiments) and as a cheap differentiable
/// evaluator for kernel quality.
class KernelRidge {
 public:
  KernelRidge(std::unique_ptr<Kernel> kernel, double lambda);

  void fit(const la::Matrix& x, const std::vector<double>& y);
  double predict_one(std::span<const double> x) const;
  std::vector<double> predict(const la::Matrix& x) const;

  /// In-sample training RMSE (fit quality diagnostic).
  double training_rmse() const noexcept { return training_rmse_; }

  /// Export accessors for deployment compilation: with a linear kernel the
  /// dual solution collapses to the primal weight vector w = X^T alpha, so
  /// the whole model ships as one weight tensor (src/deploy/).
  bool fitted() const noexcept { return fitted_; }
  const Kernel& kernel_fn() const noexcept { return *kernel_; }
  const std::vector<double>& dual_coefficients() const noexcept { return alpha_; }
  const la::Matrix& train_inputs() const noexcept { return train_x_; }

 private:
  std::unique_ptr<Kernel> kernel_;
  double lambda_;
  la::Matrix train_x_;
  std::vector<double> alpha_;
  double training_rmse_ = 0.0;
  bool fitted_ = false;
};

}  // namespace iotml::kernels
