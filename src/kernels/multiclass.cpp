#include "kernels/multiclass.hpp"

#include <algorithm>

#include "data/metrics.hpp"
#include "util/error.hpp"

namespace iotml::kernels {

OneVsOneSvm::OneVsOneSvm(std::unique_ptr<Kernel> kernel, SvmParams params)
    : kernel_(std::move(kernel)), params_(params) {
  IOTML_CHECK(kernel_ != nullptr, "OneVsOneSvm: null kernel");
}

void OneVsOneSvm::fit(const data::Samples& train) {
  IOTML_CHECK(!train.y.empty(), "OneVsOneSvm::fit: unlabeled training set");
  train_x_ = train.x;
  num_classes_ = 0;
  for (int y : train.y) {
    IOTML_CHECK(y >= 0, "OneVsOneSvm::fit: labels must be non-negative");
    num_classes_ = std::max(num_classes_, static_cast<std::size_t>(y) + 1);
  }
  IOTML_CHECK(num_classes_ >= 2, "OneVsOneSvm::fit: need at least 2 classes");

  // One full Gram over all training points; every pair model indexes into it.
  const la::Matrix full_gram = gram(*kernel_, train_x_);

  pairs_.clear();
  for (int a = 0; a < static_cast<int>(num_classes_); ++a) {
    for (int b = a + 1; b < static_cast<int>(num_classes_); ++b) {
      PairModel pm;
      pm.negative = a;
      pm.positive = b;
      std::vector<int> pair_labels;
      for (std::size_t r = 0; r < train.y.size(); ++r) {
        if (train.y[r] == a || train.y[r] == b) {
          pm.rows.push_back(r);
          pair_labels.push_back(train.y[r] == b ? 1 : 0);
        }
      }
      if (pm.rows.size() < 2 ||
          std::count(pair_labels.begin(), pair_labels.end(), 1) == 0 ||
          std::count(pair_labels.begin(), pair_labels.end(), 0) == 0) {
        continue;  // a class absent from the sample: skip the pair
      }
      la::Matrix pair_gram(pm.rows.size(), pm.rows.size());
      for (std::size_t i = 0; i < pm.rows.size(); ++i) {
        for (std::size_t j = 0; j < pm.rows.size(); ++j) {
          pair_gram(i, j) = full_gram(pm.rows[i], pm.rows[j]);
        }
      }
      pm.model = train_svm(pair_gram, pair_labels, params_);
      pairs_.push_back(std::move(pm));
    }
  }
  IOTML_CHECK(!pairs_.empty(), "OneVsOneSvm::fit: no trainable class pair");
  fitted_ = true;
}

std::vector<int> OneVsOneSvm::predict(const la::Matrix& x) const {
  IOTML_CHECK(fitted_, "OneVsOneSvm::predict: call fit() first");
  const la::Matrix cross = cross_gram(*kernel_, x, train_x_);

  std::vector<int> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    std::vector<double> votes(num_classes_, 0.0);
    for (const PairModel& pm : pairs_) {
      std::vector<double> k_row(pm.rows.size());
      for (std::size_t i = 0; i < pm.rows.size(); ++i) {
        k_row[i] = cross(r, pm.rows[i]);
      }
      const double decision = pm.model.decision(k_row);
      // Vote with a soft margin weight so ties break sensibly.
      if (decision >= 0.0) {
        votes[pm.positive] += 1.0 + std::min(decision, 1.0) * 1e-3;
      } else {
        votes[pm.negative] += 1.0 + std::min(-decision, 1.0) * 1e-3;
      }
    }
    out[r] = static_cast<int>(
        std::max_element(votes.begin(), votes.end()) - votes.begin());
  }
  return out;
}

double OneVsOneSvm::accuracy(const data::Samples& test) const {
  IOTML_CHECK(!test.y.empty(), "OneVsOneSvm::accuracy: unlabeled test set");
  return data::accuracy(test.y, predict(test.x));
}

}  // namespace iotml::kernels
