#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace iotml::kernels {

/// A positive-semidefinite kernel function over dense feature vectors.
///
/// Kernels are small immutable value-like objects; `clone()` supports storing
/// heterogeneous kernels polymorphically (e.g. one per partition block).
class Kernel {
 public:
  virtual ~Kernel() = default;

  /// Evaluate k(x, y). Vectors must have equal length.
  virtual double operator()(std::span<const double> x,
                            std::span<const double> y) const = 0;

  virtual std::unique_ptr<Kernel> clone() const = 0;
  virtual std::string name() const = 0;
};

/// Linear kernel k(x, y) = <x, y>.
class LinearKernel final : public Kernel {
 public:
  double operator()(std::span<const double> x, std::span<const double> y) const override;
  std::unique_ptr<Kernel> clone() const override;
  std::string name() const override { return "linear"; }
};

/// Polynomial kernel k(x, y) = (scale * <x, y> + offset)^degree.
class PolynomialKernel final : public Kernel {
 public:
  PolynomialKernel(unsigned degree, double scale = 1.0, double offset = 1.0);
  double operator()(std::span<const double> x, std::span<const double> y) const override;
  std::unique_ptr<Kernel> clone() const override;
  std::string name() const override;

 private:
  unsigned degree_;
  double scale_;
  double offset_;
};

/// Gaussian RBF kernel k(x, y) = exp(-gamma * ||x - y||^2).
///
/// Note the factorization the paper's Section III exploits: an RBF over a
/// feature block equals the *product* of per-feature RBFs, so "aggregating by
/// multiplication the elements in a block" is exactly a block RBF.
class RbfKernel final : public Kernel {
 public:
  explicit RbfKernel(double gamma);
  double operator()(std::span<const double> x, std::span<const double> y) const override;
  std::unique_ptr<Kernel> clone() const override;
  std::string name() const override;
  double gamma() const noexcept { return gamma_; }

 private:
  double gamma_;
};

/// Restriction of a base kernel to a feature subset: evaluates the base on
/// the projected subvectors. This is the "kernel of one partition block".
class SubsetKernel final : public Kernel {
 public:
  SubsetKernel(std::unique_ptr<Kernel> base, std::vector<std::size_t> features);
  double operator()(std::span<const double> x, std::span<const double> y) const override;
  std::unique_ptr<Kernel> clone() const override;
  std::string name() const override;
  const std::vector<std::size_t>& features() const noexcept { return features_; }

 private:
  std::unique_ptr<Kernel> base_;
  std::vector<std::size_t> features_;
};

/// Product of kernels: k(x,y) = prod_i k_i(x,y). Products of PSD kernels are
/// PSD (Schur product theorem).
class ProductKernel final : public Kernel {
 public:
  explicit ProductKernel(std::vector<std::unique_ptr<Kernel>> factors);
  double operator()(std::span<const double> x, std::span<const double> y) const override;
  std::unique_ptr<Kernel> clone() const override;
  std::string name() const override;

 private:
  std::vector<std::unique_ptr<Kernel>> factors_;
};

/// Non-negative weighted sum of kernels (the standard linear MKL combination).
class SumKernel final : public Kernel {
 public:
  SumKernel(std::vector<std::unique_ptr<Kernel>> terms, std::vector<double> weights);
  double operator()(std::span<const double> x, std::span<const double> y) const override;
  std::unique_ptr<Kernel> clone() const override;
  std::string name() const override;
  const std::vector<double>& weights() const noexcept { return weights_; }

 private:
  std::vector<std::unique_ptr<Kernel>> terms_;
  std::vector<double> weights_;
};

// ---- Gram utilities --------------------------------------------------------

/// Symmetric Gram matrix K_ij = k(x_i, x_j) over the rows of `x`.
la::Matrix gram(const Kernel& kernel, const la::Matrix& x);

/// Rectangular cross-Gram K_ij = k(a_i, b_j).
la::Matrix cross_gram(const Kernel& kernel, const la::Matrix& a, const la::Matrix& b);

/// Center a Gram matrix in feature space: K <- H K H, H = I - 11^T/n.
la::Matrix center_gram(const la::Matrix& k);

/// Cosine normalization: K_ij / sqrt(K_ii K_jj). Diagonal zeros map to 0.
la::Matrix normalize_gram(const la::Matrix& k);

/// Frobenius inner product <A, B>_F.
double frobenius_inner(const la::Matrix& a, const la::Matrix& b);

/// Kernel alignment A(K1, K2) = <K1,K2>_F / (||K1||_F ||K2||_F) in [-1, 1].
double alignment(const la::Matrix& k1, const la::Matrix& k2);

/// Centered kernel-target alignment against labels (+1/-1 from 0/1 labels):
/// alignment(HKH, yy^T). The standard cheap surrogate for kernel quality.
double target_alignment(const la::Matrix& k, const std::vector<int>& y01);

/// Median-of-pairwise-squared-distances heuristic for the RBF bandwidth:
/// gamma = 1 / (2 * median ||x_i - x_j||^2) over the given feature subset.
/// Returns a fallback of 1.0 when the median distance is ~0.
double median_heuristic_gamma(const la::Matrix& x, const std::vector<std::size_t>& features);

}  // namespace iotml::kernels
