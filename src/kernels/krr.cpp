#include "kernels/krr.hpp"

#include <cmath>

#include "util/error.hpp"

namespace iotml::kernels {

KernelRidge::KernelRidge(std::unique_ptr<Kernel> kernel, double lambda)
    : kernel_(std::move(kernel)), lambda_(lambda) {
  IOTML_CHECK(kernel_ != nullptr, "KernelRidge: null kernel");
  IOTML_CHECK(lambda > 0.0, "KernelRidge: lambda must be positive");
}

void KernelRidge::fit(const la::Matrix& x, const std::vector<double>& y) {
  IOTML_CHECK(x.rows() == y.size(), "KernelRidge::fit: label size mismatch");
  IOTML_CHECK(x.rows() >= 1, "KernelRidge::fit: empty training set");
  train_x_ = x;
  la::Matrix k = gram(*kernel_, x);
  for (std::size_t i = 0; i < k.rows(); ++i) k(i, i) += lambda_;
  // K + lambda I is SPD; Cholesky with a jitter fallback for near-singular K.
  la::Matrix l = la::cholesky(k, 1e-8);
  alpha_ = la::cholesky_solve(l, y);
  fitted_ = true;

  double se = 0.0;
  const std::vector<double> fit_values = predict(x);
  for (std::size_t i = 0; i < y.size(); ++i) {
    se += (fit_values[i] - y[i]) * (fit_values[i] - y[i]);
  }
  training_rmse_ = std::sqrt(se / static_cast<double>(y.size()));
}

double KernelRidge::predict_one(std::span<const double> x) const {
  IOTML_CHECK(fitted_, "KernelRidge::predict_one: call fit() first");
  double f = 0.0;
  for (std::size_t i = 0; i < train_x_.rows(); ++i) {
    f += alpha_[i] * (*kernel_)(train_x_.row_span(i), x);
  }
  return f;
}

std::vector<double> KernelRidge::predict(const la::Matrix& x) const {
  IOTML_CHECK(fitted_, "KernelRidge::predict: call fit() first");
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) out[r] = predict_one(x.row_span(r));
  return out;
}

}  // namespace iotml::kernels
