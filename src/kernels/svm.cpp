#include "kernels/svm.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace iotml::kernels {

double SvmModel::decision(const std::vector<double>& k_train) const {
  IOTML_CHECK(k_train.size() == alpha_.size(), "SvmModel::decision: kernel row size mismatch");
  double f = b_;
  for (std::size_t i = 0; i < alpha_.size(); ++i) {
    if (alpha_[i] > 0.0) f += alpha_[i] * y_[i] * k_train[i];
  }
  return f;
}

int SvmModel::predict(const std::vector<double>& k_train) const {
  return decision(k_train) >= 0.0 ? 1 : 0;
}

std::vector<int> SvmModel::predict(const la::Matrix& cross_gram_test_train) const {
  IOTML_CHECK(cross_gram_test_train.cols() == alpha_.size(),
              "SvmModel::predict: cross-gram column mismatch");
  std::vector<int> out(cross_gram_test_train.rows());
  for (std::size_t r = 0; r < cross_gram_test_train.rows(); ++r) {
    out[r] = predict(cross_gram_test_train.row(r));
  }
  return out;
}

std::size_t SvmModel::num_support_vectors() const {
  return static_cast<std::size_t>(
      std::count_if(alpha_.begin(), alpha_.end(), [](double a) { return a > 1e-12; }));
}

SvmModel train_svm(const la::Matrix& gram, const std::vector<int>& y01,
                   const SvmParams& params) {
  IOTML_CHECK(gram.is_square(), "train_svm: gram must be square");
  const std::size_t n = gram.rows();
  IOTML_CHECK(n >= 2, "train_svm: need at least 2 samples");
  IOTML_CHECK(y01.size() == n, "train_svm: label size mismatch");
  IOTML_CHECK(params.c > 0.0, "train_svm: C must be positive");

  SvmModel model;
  model.alpha_.assign(n, 0.0);
  model.y_.resize(n);
  bool has_pos = false, has_neg = false;
  for (std::size_t i = 0; i < n; ++i) {
    IOTML_CHECK(y01[i] == 0 || y01[i] == 1, "train_svm: labels must be 0/1");
    model.y_[i] = y01[i] == 1 ? 1.0 : -1.0;
    (y01[i] == 1 ? has_pos : has_neg) = true;
  }
  IOTML_CHECK(has_pos && has_neg, "train_svm: both classes must be present");

  const double c = params.c;
  auto& alpha = model.alpha_;
  const auto& y = model.y_;
  double& b = model.b_;

  // Cached decision errors E_i = f(x_i) - y_i, recomputed lazily.
  auto f_of = [&](std::size_t i) {
    double f = b;
    for (std::size_t j = 0; j < n; ++j) {
      if (alpha[j] > 0.0) f += alpha[j] * y[j] * gram(j, i);
    }
    return f;
  };

  Rng rng(params.seed);  // rng-stream: smo-shuffle
  std::size_t passes = 0;
  std::size_t iterations = 0;

  while (passes < params.max_passes && iterations < params.max_iterations) {
    std::size_t changed = 0;
    for (std::size_t i = 0; i < n && iterations < params.max_iterations; ++i) {
      ++iterations;
      const double e_i = f_of(i) - y[i];
      // KKT violation check for example i.
      if (!((y[i] * e_i < -params.tol && alpha[i] < c) ||
            (y[i] * e_i > params.tol && alpha[i] > 0.0))) {
        continue;
      }
      // Pick a random partner j != i.
      std::size_t j = rng.index(n - 1);
      if (j >= i) ++j;
      const double e_j = f_of(j) - y[j];

      const double alpha_i_old = alpha[i];
      const double alpha_j_old = alpha[j];

      double lo, hi;
      if (y[i] != y[j]) {
        lo = std::max(0.0, alpha[j] - alpha[i]);
        hi = std::min(c, c + alpha[j] - alpha[i]);
      } else {
        lo = std::max(0.0, alpha[i] + alpha[j] - c);
        hi = std::min(c, alpha[i] + alpha[j]);
      }
      if (hi - lo < 1e-12) continue;

      const double eta = 2.0 * gram(i, j) - gram(i, i) - gram(j, j);
      if (eta >= -1e-12) continue;  // non-positive curvature: skip

      double alpha_j_new = alpha_j_old - y[j] * (e_i - e_j) / eta;
      alpha_j_new = std::clamp(alpha_j_new, lo, hi);
      if (std::fabs(alpha_j_new - alpha_j_old) < 1e-7) continue;

      alpha[j] = alpha_j_new;
      alpha[i] = alpha_i_old + y[i] * y[j] * (alpha_j_old - alpha_j_new);

      // Bias update (Platt's rules).
      const double b1 = b - e_i - y[i] * (alpha[i] - alpha_i_old) * gram(i, i) -
                        y[j] * (alpha[j] - alpha_j_old) * gram(i, j);
      const double b2 = b - e_j - y[i] * (alpha[i] - alpha_i_old) * gram(i, j) -
                        y[j] * (alpha[j] - alpha_j_old) * gram(j, j);
      if (alpha[i] > 0.0 && alpha[i] < c) {
        b = b1;
      } else if (alpha[j] > 0.0 && alpha[j] < c) {
        b = b2;
      } else {
        b = 0.5 * (b1 + b2);
      }
      ++changed;
    }
    passes = changed == 0 ? passes + 1 : 0;
  }
  model.iterations_ = iterations;
  static obs::Counter& svm_trains = obs::registry().counter("kernels.svm_trains");
  static obs::Counter& svm_iterations = obs::registry().counter("kernels.svm_iterations");
  svm_trains.add();
  svm_iterations.add(iterations);
  return model;
}

}  // namespace iotml::kernels
