#pragma once

#include <vector>

#include "la/matrix.hpp"
#include "util/rng.hpp"

namespace iotml::kernels {

/// C-SVM hyperparameters.
struct SvmParams {
  double c = 1.0;            ///< box constraint
  double tol = 1e-3;         ///< KKT violation tolerance
  std::size_t max_passes = 10;   ///< consecutive full passes without change before stopping
  std::size_t max_iterations = 20000;  ///< hard cap on SMO iterations
  std::uint64_t seed = 7;    ///< seed for the SMO partner-choice randomization
};

/// A trained binary soft-margin SVM over a *precomputed* Gram matrix.
///
/// Working on precomputed kernels is deliberate: the partition-lattice search
/// evaluates many kernel combinations over the same samples, and block Gram
/// matrices can be computed once and combined by weights without touching the
/// raw features again.
class SvmModel {
 public:
  /// Decision value f(x) = sum_i alpha_i y_i k(x_i, x) + b, where k_train[i]
  /// holds k(x_i, x) for every training point i.
  double decision(const std::vector<double>& k_train) const;

  /// Class in {0, 1} from the decision sign.
  int predict(const std::vector<double>& k_train) const;

  /// Batch prediction given a cross-Gram matrix (rows = test, cols = train).
  std::vector<int> predict(const la::Matrix& cross_gram_test_train) const;

  const std::vector<double>& alphas() const noexcept { return alpha_; }
  double bias() const noexcept { return b_; }
  std::size_t num_support_vectors() const;
  std::size_t iterations_used() const noexcept { return iterations_; }

 private:
  friend SvmModel train_svm(const la::Matrix&, const std::vector<int>&, const SvmParams&);

  std::vector<double> alpha_;  ///< per-training-point multipliers
  std::vector<double> y_;      ///< labels mapped to +/-1
  double b_ = 0.0;
  std::size_t iterations_ = 0;
};

/// Train a binary C-SVM with simplified SMO (Platt) on a precomputed Gram.
/// Labels are 0/1 (mapped internally to -1/+1). Both classes must be present.
SvmModel train_svm(const la::Matrix& gram, const std::vector<int>& y01,
                   const SvmParams& params = {});

}  // namespace iotml::kernels
