#include "kernels/kernel.hpp"

#include <algorithm>
#include <cmath>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace iotml::kernels {

namespace {

double dot_span(std::span<const double> x, std::span<const double> y) {
  IOTML_CHECK(x.size() == y.size(), "Kernel: vector length mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

}  // namespace

// ---- LinearKernel ----------------------------------------------------------

double LinearKernel::operator()(std::span<const double> x,
                                std::span<const double> y) const {
  return dot_span(x, y);
}

std::unique_ptr<Kernel> LinearKernel::clone() const {
  return std::make_unique<LinearKernel>();
}

// ---- PolynomialKernel ------------------------------------------------------

PolynomialKernel::PolynomialKernel(unsigned degree, double scale, double offset)
    : degree_(degree), scale_(scale), offset_(offset) {
  IOTML_CHECK(degree >= 1, "PolynomialKernel: degree must be >= 1");
  IOTML_CHECK(scale > 0.0, "PolynomialKernel: scale must be positive");
  IOTML_CHECK(offset >= 0.0, "PolynomialKernel: offset must be non-negative");
}

double PolynomialKernel::operator()(std::span<const double> x,
                                    std::span<const double> y) const {
  return std::pow(scale_ * dot_span(x, y) + offset_, static_cast<double>(degree_));
}

std::unique_ptr<Kernel> PolynomialKernel::clone() const {
  return std::make_unique<PolynomialKernel>(degree_, scale_, offset_);
}

std::string PolynomialKernel::name() const {
  return "poly(d=" + std::to_string(degree_) + ")";
}

// ---- RbfKernel ---------------------------------------------------------------

RbfKernel::RbfKernel(double gamma) : gamma_(gamma) {
  IOTML_CHECK(gamma > 0.0, "RbfKernel: gamma must be positive");
}

double RbfKernel::operator()(std::span<const double> x,
                             std::span<const double> y) const {
  IOTML_CHECK(x.size() == y.size(), "RbfKernel: vector length mismatch");
  double dist2 = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    dist2 += d * d;
  }
  return std::exp(-gamma_ * dist2);
}

std::unique_ptr<Kernel> RbfKernel::clone() const {
  return std::make_unique<RbfKernel>(gamma_);
}

std::string RbfKernel::name() const { return "rbf"; }

// ---- SubsetKernel ------------------------------------------------------------

SubsetKernel::SubsetKernel(std::unique_ptr<Kernel> base,
                           std::vector<std::size_t> features)
    : base_(std::move(base)), features_(std::move(features)) {
  IOTML_CHECK(base_ != nullptr, "SubsetKernel: null base kernel");
  IOTML_CHECK(!features_.empty(), "SubsetKernel: empty feature subset");
}

double SubsetKernel::operator()(std::span<const double> x,
                                std::span<const double> y) const {
  std::vector<double> px(features_.size()), py(features_.size());
  for (std::size_t i = 0; i < features_.size(); ++i) {
    IOTML_CHECK(features_[i] < x.size() && features_[i] < y.size(),
                "SubsetKernel: feature index out of range");
    px[i] = x[features_[i]];
    py[i] = y[features_[i]];
  }
  return (*base_)(px, py);
}

std::unique_ptr<Kernel> SubsetKernel::clone() const {
  return std::make_unique<SubsetKernel>(base_->clone(), features_);
}

std::string SubsetKernel::name() const {
  return base_->name() + "[|B|=" + std::to_string(features_.size()) + "]";
}

// ---- ProductKernel -----------------------------------------------------------

ProductKernel::ProductKernel(std::vector<std::unique_ptr<Kernel>> factors)
    : factors_(std::move(factors)) {
  IOTML_CHECK(!factors_.empty(), "ProductKernel: no factors");
  for (const auto& f : factors_) IOTML_CHECK(f != nullptr, "ProductKernel: null factor");
}

double ProductKernel::operator()(std::span<const double> x,
                                 std::span<const double> y) const {
  double acc = 1.0;
  for (const auto& f : factors_) acc *= (*f)(x, y);
  return acc;
}

std::unique_ptr<Kernel> ProductKernel::clone() const {
  std::vector<std::unique_ptr<Kernel>> copies;
  copies.reserve(factors_.size());
  for (const auto& f : factors_) copies.push_back(f->clone());
  return std::make_unique<ProductKernel>(std::move(copies));
}

std::string ProductKernel::name() const {
  return "product(" + std::to_string(factors_.size()) + ")";
}

// ---- SumKernel ---------------------------------------------------------------

SumKernel::SumKernel(std::vector<std::unique_ptr<Kernel>> terms,
                     std::vector<double> weights)
    : terms_(std::move(terms)), weights_(std::move(weights)) {
  IOTML_CHECK(!terms_.empty(), "SumKernel: no terms");
  IOTML_CHECK(terms_.size() == weights_.size(), "SumKernel: weight count mismatch");
  for (const auto& t : terms_) IOTML_CHECK(t != nullptr, "SumKernel: null term");
  for (double w : weights_) IOTML_CHECK(w >= 0.0, "SumKernel: negative weight");
}

double SumKernel::operator()(std::span<const double> x,
                             std::span<const double> y) const {
  double acc = 0.0;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    acc += weights_[i] * (*terms_[i])(x, y);
  }
  return acc;
}

std::unique_ptr<Kernel> SumKernel::clone() const {
  std::vector<std::unique_ptr<Kernel>> copies;
  copies.reserve(terms_.size());
  for (const auto& t : terms_) copies.push_back(t->clone());
  return std::make_unique<SumKernel>(std::move(copies), weights_);
}

std::string SumKernel::name() const {
  return "sum(" + std::to_string(terms_.size()) + ")";
}

// ---- Gram utilities ------------------------------------------------------------

la::Matrix gram(const Kernel& kernel, const la::Matrix& x) {
  static obs::Counter& gram_builds = obs::registry().counter("kernels.gram_builds");
  gram_builds.add();
  const std::size_t n = x.rows();
  la::Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(x.row_span(i), x.row_span(j));
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

la::Matrix cross_gram(const Kernel& kernel, const la::Matrix& a, const la::Matrix& b) {
  static obs::Counter& cross_builds = obs::registry().counter("kernels.cross_gram_builds");
  cross_builds.add();
  la::Matrix k(a.rows(), b.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.rows(); ++j) {
      k(i, j) = kernel(a.row_span(i), b.row_span(j));
    }
  }
  return k;
}

la::Matrix center_gram(const la::Matrix& k) {
  IOTML_CHECK(k.is_square(), "center_gram: matrix not square");
  const std::size_t n = k.rows();
  const double nf = static_cast<double>(n);
  std::vector<double> row_mean(n, 0.0);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) row_mean[i] += k(i, j);
    row_mean[i] /= nf;
    total += row_mean[i];
  }
  total /= nf;
  la::Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      out(i, j) = k(i, j) - row_mean[i] - row_mean[j] + total;
    }
  }
  return out;
}

la::Matrix normalize_gram(const la::Matrix& k) {
  IOTML_CHECK(k.is_square(), "normalize_gram: matrix not square");
  const std::size_t n = k.rows();
  la::Matrix out(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const double denom = std::sqrt(k(i, i) * k(j, j));
      out(i, j) = denom > 1e-300 ? k(i, j) / denom : 0.0;
    }
  }
  return out;
}

double frobenius_inner(const la::Matrix& a, const la::Matrix& b) {
  IOTML_CHECK(a.rows() == b.rows() && a.cols() == b.cols(),
              "frobenius_inner: shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) acc += a(i, j) * b(i, j);
  }
  return acc;
}

double alignment(const la::Matrix& k1, const la::Matrix& k2) {
  const double denom = k1.frobenius_norm() * k2.frobenius_norm();
  if (denom < 1e-300) return 0.0;
  return frobenius_inner(k1, k2) / denom;
}

double target_alignment(const la::Matrix& k, const std::vector<int>& y01) {
  IOTML_CHECK(k.rows() == y01.size(), "target_alignment: label size mismatch");
  const std::size_t n = y01.size();
  la::Matrix target(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double yi = y01[i] == 1 ? 1.0 : -1.0;
    for (std::size_t j = 0; j < n; ++j) {
      target(i, j) = yi * (y01[j] == 1 ? 1.0 : -1.0);
    }
  }
  return alignment(center_gram(k), target);
}

double median_heuristic_gamma(const la::Matrix& x,
                              const std::vector<std::size_t>& features) {
  IOTML_CHECK(x.rows() >= 2, "median_heuristic_gamma: need >= 2 samples");
  IOTML_CHECK(!features.empty(), "median_heuristic_gamma: empty feature subset");
  // Subsample pairs for large n to keep this O(n) in practice.
  const std::size_t n = x.rows();
  std::vector<double> dist2;
  const std::size_t max_pairs = 2000;
  const std::size_t total_pairs = n * (n - 1) / 2;
  const std::size_t stride = std::max<std::size_t>(1, total_pairs / max_pairs);
  std::size_t counter = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (counter++ % stride != 0) continue;
      double d2 = 0.0;
      for (std::size_t f : features) {
        const double d = x(i, f) - x(j, f);
        d2 += d * d;
      }
      dist2.push_back(d2);
    }
  }
  auto mid = dist2.begin() + static_cast<std::ptrdiff_t>(dist2.size() / 2);
  std::nth_element(dist2.begin(), mid, dist2.end());
  const double median = *mid;
  return median > 1e-12 ? 1.0 / (2.0 * median) : 1.0;
}

}  // namespace iotml::kernels
