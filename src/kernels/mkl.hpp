#pragma once

#include <memory>
#include <vector>

#include "data/dataset.hpp"
#include "kernels/kernel.hpp"
#include "kernels/svm.hpp"
#include "la/matrix.hpp"

namespace iotml::kernels {

/// Weighted sum of precomputed Gram matrices: K = sum_m w_m K_m.
la::Matrix combine_grams(const std::vector<la::Matrix>& grams,
                         const std::vector<double>& weights);

/// Equal weights summing to 1.
std::vector<double> uniform_weights(std::size_t count);

/// Independent centered kernel-target alignment per kernel, negative values
/// clipped to 0, normalized to sum 1 (Cortes-style heuristic weighting). If
/// every kernel aligns non-positively, falls back to uniform.
std::vector<double> alignment_weights(const std::vector<la::Matrix>& grams,
                                      const std::vector<int>& y01);

/// Coordinate-ascent maximization of the *combination's* centered target
/// alignment over the simplex: round-robin line search on each weight with a
/// geometric grid. Deterministic. Returns weights summing to 1.
std::vector<double> optimize_alignment_weights(const std::vector<la::Matrix>& grams,
                                               const std::vector<int>& y01,
                                               std::size_t rounds = 4,
                                               std::size_t grid_points = 9);

/// An SVM classifier bound to an explicit kernel object: computes Grams on
/// fit/predict. The convenient front door for library users; the search code
/// uses precomputed Grams directly.
class KernelSvmClassifier {
 public:
  explicit KernelSvmClassifier(std::unique_ptr<Kernel> kernel, SvmParams params = {});

  void fit(const data::Samples& train);
  std::vector<int> predict(const la::Matrix& x) const;
  double accuracy(const data::Samples& test) const;

  const Kernel& kernel() const noexcept { return *kernel_; }
  const SvmModel& model() const;

 private:
  std::unique_ptr<Kernel> kernel_;
  SvmParams params_;
  la::Matrix train_x_;
  SvmModel model_;
  bool fitted_ = false;
};

/// k-fold cross-validated SVM accuracy over a precomputed Gram matrix. The
/// Gram covers all samples; folds index into it, so the kernel is evaluated
/// exactly once regardless of fold count — the workhorse of the lattice
/// search.
double cv_accuracy_precomputed(const la::Matrix& gram, const std::vector<int>& y01,
                               std::size_t folds, Rng& rng,
                               const SvmParams& params = {});

}  // namespace iotml::kernels
