#pragma once

#include <memory>
#include <vector>

#include "kernels/mkl.hpp"

namespace iotml::kernels {

/// One-vs-one multi-class SVM: one binary classifier per class pair, vote at
/// prediction. Extends the binary machinery to the multi-class problems IoT
/// analytics actually poses (device-type identification, activity classes).
class OneVsOneSvm {
 public:
  explicit OneVsOneSvm(std::unique_ptr<Kernel> kernel, SvmParams params = {});

  void fit(const data::Samples& train);

  std::vector<int> predict(const la::Matrix& x) const;
  double accuracy(const data::Samples& test) const;

  std::size_t num_classes() const noexcept { return num_classes_; }
  std::size_t num_pairs() const noexcept { return pairs_.size(); }

 private:
  struct PairModel {
    int negative = 0;  ///< class mapped to 0
    int positive = 1;  ///< class mapped to 1
    SvmModel model;
    std::vector<std::size_t> rows;  ///< training rows used (into train_x_)
  };

  std::unique_ptr<Kernel> kernel_;
  SvmParams params_;
  la::Matrix train_x_;
  std::size_t num_classes_ = 0;
  std::vector<PairModel> pairs_;
  bool fitted_ = false;
};

}  // namespace iotml::kernels
