#include "tdf/codec.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <utility>

#include "util/bytes.hpp"
#include "util/error.hpp"

namespace iotml::tdf {

namespace {

using util::ByteReader;
using util::ByteWriter;

/// Column-block encoding tags. A tag is chosen per column per frame: the
/// scaled paths need every present value to be an exact multiple of
/// 2^-scale_bits (what tdf::quantize produces); anything else — full-
/// precision doubles, NaN payloads — takes the lossless raw-bits path.
constexpr std::uint8_t kTagScaledDelta = 1;  ///< varint zigzag deltas of scaled ints
constexpr std::uint8_t kTagScaledDod = 2;    ///< second-order deltas (timestamps)
constexpr std::uint8_t kTagRawBits = 3;      ///< varint of bitcast u64 XOR previous
constexpr std::uint8_t kTagCategorical = 4;  ///< inline dictionary + varint codes

/// Largest magnitude the scaled-integer paths accept: dyadic rationals up
/// to 2^53 round-trip through a double exactly.
constexpr double kMaxScaled = 9007199254740992.0;  // 2^53

bool scaled_exactly(double v, std::uint8_t scale_bits, std::int64_t& out) {
  if (!std::isfinite(v)) return false;
  const double s = std::ldexp(v, scale_bits);
  if (!(std::fabs(s) <= kMaxScaled)) return false;
  const double r = std::nearbyint(s);
  if (r != s) return false;
  out = static_cast<std::int64_t>(r);
  // Exactness both ways: unscaling the integer must reproduce v bit-for-bit.
  return std::ldexp(static_cast<double>(out), -static_cast<int>(scale_bits)) == v;
}

/// Encode one stream of present values; returns the tag and payload bytes.
/// Scaled candidates are built only when every value is representable; the
/// smaller of delta / delta-of-delta wins (ties prefer plain delta).
std::pair<std::uint8_t, std::vector<std::uint8_t>> encode_stream(
    const std::vector<double>& values, std::uint8_t scale_bits) {
  std::vector<std::int64_t> scaled;
  scaled.reserve(values.size());
  bool exact = true;
  for (double v : values) {
    std::int64_t s = 0;
    if (!scaled_exactly(v, scale_bits, s)) {
      exact = false;
      break;
    }
    scaled.push_back(s);
  }
  if (exact) {
    ByteWriter delta;
    ByteWriter dod;
    std::int64_t prev = 0;
    std::int64_t prev_delta = 0;
    for (std::size_t i = 0; i < scaled.size(); ++i) {
      const std::int64_t d = scaled[i] - prev;
      delta.varint_i64(d);
      dod.varint_i64(i < 2 ? d : d - prev_delta);
      prev_delta = d;
      prev = scaled[i];
    }
    return dod.size() < delta.size()
               ? std::make_pair(kTagScaledDod, dod.take())
               : std::make_pair(kTagScaledDelta, delta.take());
  }
  ByteWriter raw;
  std::uint64_t prev_bits = 0;
  for (double v : values) {
    const std::uint64_t bits = std::bit_cast<std::uint64_t>(v);
    raw.varint_u64(bits ^ prev_bits);
    prev_bits = bits;
  }
  return {kTagRawBits, raw.take()};
}

std::vector<double> decode_stream(ByteReader& r, std::uint8_t tag,
                                  std::uint8_t scale_bits, std::size_t count) {
  std::vector<double> values;
  values.reserve(count);
  if (tag == kTagRawBits) {
    std::uint64_t prev_bits = 0;
    for (std::size_t i = 0; i < count; ++i) {
      prev_bits ^= r.varint_u64();
      values.push_back(std::bit_cast<double>(prev_bits));
    }
    return values;
  }
  IOTML_CHECK(tag == kTagScaledDelta || tag == kTagScaledDod,
              "tdf: unknown numeric stream tag");
  std::int64_t prev = 0;
  std::int64_t prev_delta = 0;
  for (std::size_t i = 0; i < count; ++i) {
    std::int64_t d = r.varint_i64();
    if (tag == kTagScaledDod && i >= 2) d += prev_delta;
    prev_delta = d;
    prev += d;
    values.push_back(std::ldexp(static_cast<double>(prev), -static_cast<int>(scale_bits)));
  }
  return values;
}

/// A numeric cell is absent on the wire when flagged missing or NaN-valued:
/// both decode back to a missing cell (see tdf::quantize) and both cost one
/// presence bit — the same price net::wire_size_bytes charges the legacy
/// model for them.
bool cell_absent(const data::Column& col, std::size_t row) {
  if (col.is_missing(row)) return true;
  return col.type() == data::ColumnType::kNumeric && std::isnan(col.numeric(row));
}

void write_presence(ByteWriter& w, const std::vector<bool>& absent,
                    std::size_t absent_count) {
  if (absent_count == 0) {
    w.u8(0);
    return;
  }
  w.u8(1);
  std::size_t acc = 0;
  for (std::size_t i = 0; i < absent.size(); ++i) {
    if (!absent[i]) acc |= std::size_t{1} << (i % 8);
    if (i % 8 == 7 || i + 1 == absent.size()) {
      w.u8(util::narrow_u8(acc, "presence bitmap byte"));
      acc = 0;
    }
  }
}

std::vector<bool> read_presence(ByteReader& r, std::size_t rows) {
  const std::uint8_t mode = r.u8();
  IOTML_CHECK(mode <= 1, "tdf: bad presence mode");
  std::vector<bool> present(rows, true);
  if (mode == 0) return present;
  for (std::size_t base = 0; base < rows; base += 8) {
    const std::uint8_t byte = r.u8();
    for (std::size_t bit = 0; bit < 8 && base + bit < rows; ++bit) {
      present[base + bit] = ((byte >> bit) & 1U) != 0;
    }
  }
  return present;
}

void check_schema_match(const Schema& schema, const data::Dataset& ds) {
  IOTML_CHECK(!ds.has_labels(), "tdf: telemetry frames never carry labels");
  IOTML_CHECK(schema.size() == ds.num_columns(),
              "tdf: dataset column count does not match schema");
  for (std::size_t c = 0; c < schema.size(); ++c) {
    const FieldSpec& f = schema.fields()[c];
    IOTML_CHECK(f.name == ds.column(c).name(), "tdf: column name mismatch");
    IOTML_CHECK(f.type == ds.column(c).type(), "tdf: column type mismatch");
  }
}

}  // namespace

double quantize_value(double v, std::uint8_t scale_bits) {
  if (!std::isfinite(v)) return v;
  const double s = std::round(std::ldexp(v, scale_bits));
  if (!(std::fabs(s) <= kMaxScaled)) return v;  // too wide to scale: keep raw
  return std::ldexp(s, -static_cast<int>(scale_bits));
}

void quantize(data::Dataset& ds, std::uint8_t scale_bits) {
  IOTML_CHECK(scale_bits <= 52, "tdf: scale_bits exceeds double mantissa");
  for (std::size_t c = 0; c < ds.num_columns(); ++c) {
    data::Column& col = ds.column(c);
    if (col.type() != data::ColumnType::kNumeric) continue;
    for (std::size_t r = 0; r < col.size(); ++r) {
      if (col.is_missing(r)) continue;
      const double v = col.numeric(r);
      if (std::isnan(v)) {
        col.set_missing(r);  // NaN carries no reading: normalize to missing
      } else {
        col.set_numeric(r, quantize_value(v, scale_bits));
      }
    }
  }
}

std::vector<std::uint8_t> encode_frame(const Schema& schema,
                                       const data::Dataset& ds,
                                       const std::vector<double>& origin_s,
                                       std::uint32_t device_id, std::uint32_t seq,
                                       bool include_schema) {
  check_schema_match(schema, ds);
  const std::size_t rows = ds.rows();
  IOTML_CHECK(rows <= 0xFFFF, "tdf: frame row count exceeds the u16 field");

  ByteWriter w;
  for (std::uint8_t m : kFrameMagic) w.u8(m);
  w.u8(kFrameVersion);
  w.u8(include_schema ? kFlagSchemaInline : 0);
  w.u32(schema.id());
  w.u32(device_id);
  w.u32(seq);
  w.u16(util::narrow_u16(rows, "frame row count"));
  w.u16(util::narrow_u16(schema.size(), "frame column count"));
  if (include_schema) {
    const std::vector<std::uint8_t>& blob = schema.encoded();
    w.u16(util::narrow_u16(blob.size(), "schema blob length"));
    for (std::uint8_t b : blob) w.u8(b);
  }

  for (std::size_t c = 0; c < schema.size(); ++c) {
    const data::Column& col = ds.column(c);
    const FieldSpec& field = schema.fields()[c];
    w.u8(util::narrow_u8(c, "column id"));

    std::vector<bool> absent(rows, false);
    std::size_t absent_count = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      absent[r] = cell_absent(col, r);
      if (absent[r]) ++absent_count;
    }

    if (field.type == data::ColumnType::kCategorical) {
      w.u8(kTagCategorical);
      write_presence(w, absent, absent_count);
      const std::vector<std::string>& dict = col.categories();
      w.u16(util::narrow_u16(dict.size(), "category dictionary size"));
      for (const std::string& label : dict) {
        w.u8(util::narrow_u8(label.size(), "category label length"));
        for (char ch : label) {
          w.u8(util::narrow_u8(static_cast<unsigned char>(ch), "label byte"));
        }
      }
      for (std::size_t r = 0; r < rows; ++r) {
        if (!absent[r]) w.varint_u64(col.category(r));
      }
      continue;
    }

    std::vector<double> present_values;
    present_values.reserve(rows - absent_count);
    for (std::size_t r = 0; r < rows; ++r) {
      if (!absent[r]) present_values.push_back(col.numeric(r));
    }
    auto [tag, payload] = encode_stream(present_values, field.scale_bits);
    w.u8(tag);
    write_presence(w, absent, absent_count);
    for (std::uint8_t b : payload) w.u8(b);
  }

  // Provenance timestamps ride delta-encoded at the widest field scale —
  // the 8-bytes-per-origin the legacy wire model charges collapses to ~1.
  std::uint8_t origin_scale = 0;
  for (const FieldSpec& f : schema.fields()) {
    if (f.scale_bits > origin_scale) origin_scale = f.scale_bits;
  }
  w.u32(util::narrow_u32(origin_s.size(), "origin count"));
  w.u8(origin_scale);
  auto [origin_tag, origin_payload] = encode_stream(origin_s, origin_scale);
  w.u8(origin_tag);
  for (std::uint8_t b : origin_payload) w.u8(b);

  const std::uint32_t trailer = util::fnv1a(w.bytes().data(), w.size());
  w.u32(trailer);
  return w.take();
}

bool frame_intact(const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() < kFrameOverheadBytes) return false;
  for (std::size_t i = 0; i < 4; ++i) {
    if (bytes[i] != kFrameMagic[i]) return false;
  }
  if (bytes[4] != kFrameVersion) return false;
  const std::size_t body = bytes.size() - 4;
  std::uint32_t stamped = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    stamped |= static_cast<std::uint32_t>(bytes[body + i]) << (8 * i);
  }
  return util::fnv1a(bytes.data(), body) == stamped;
}

Frame decode_frame(const std::vector<std::uint8_t>& bytes, SchemaRegistry& registry) {
  IOTML_CHECK(frame_intact(bytes),
              "tdf: damaged frame (bad magic, version or checksum)");
  ByteReader r(bytes.data(), bytes.size() - 4);  // trailer verified above

  Frame frame;
  for (std::size_t i = 0; i < 4; ++i) r.u8();  // magic
  r.u8();                                      // version
  const std::uint8_t flags = r.u8();
  IOTML_CHECK((flags & ~kFlagSchemaInline) == 0, "tdf: unknown frame flags");
  frame.schema_inline = (flags & kFlagSchemaInline) != 0;
  frame.schema_id = r.u32();
  frame.device_id = r.u32();
  frame.seq = r.u32();
  const std::size_t rows = r.u16();
  const std::size_t cols = r.u16();

  const Schema* schema = nullptr;
  Schema inline_schema;
  if (frame.schema_inline) {
    const std::size_t blob_len = r.u16();
    inline_schema = Schema::decode(r, blob_len);
    IOTML_CHECK(inline_schema.id() == frame.schema_id,
                "tdf: inline schema does not hash to the frame's schema id");
    registry.add(inline_schema);  // idempotent session open
    schema = &inline_schema;
  } else {
    schema = registry.find(frame.schema_id);
    IOTML_CHECK(schema != nullptr, "tdf: frame references an unnegotiated schema");
  }
  IOTML_CHECK(schema->size() == cols, "tdf: frame column count disagrees with schema");

  for (std::size_t c = 0; c < cols; ++c) {
    const FieldSpec& field = schema->fields()[c];
    const std::size_t column_id = r.u8();
    IOTML_CHECK(column_id == c, "tdf: column blocks out of order");
    const std::uint8_t tag = r.u8();

    data::Column& col = field.type == data::ColumnType::kNumeric
                            ? frame.rows.add_numeric_column(field.name)
                            : frame.rows.add_categorical_column(field.name);
    const std::vector<bool> present = read_presence(r, rows);
    std::size_t present_count = 0;
    for (std::size_t i = 0; i < rows; ++i) {
      if (present[i]) ++present_count;
    }

    if (field.type == data::ColumnType::kCategorical) {
      IOTML_CHECK(tag == kTagCategorical, "tdf: bad tag for categorical column");
      const std::size_t dict_size = r.u16();
      std::vector<std::string> dict;
      dict.reserve(dict_size);
      for (std::size_t i = 0; i < dict_size; ++i) {
        const std::size_t len = r.u8();
        std::string label;
        label.reserve(len);
        for (std::size_t j = 0; j < len; ++j) label.push_back(static_cast<char>(r.u8()));
        // Re-intern in dictionary order so category codes replay exactly.
        const std::size_t code = col.intern(label);
        IOTML_CHECK(code == i, "tdf: duplicate category label in dictionary");
        dict.push_back(std::move(label));
      }
      for (std::size_t row = 0; row < rows; ++row) {
        if (!present[row]) {
          col.push_missing();
          continue;
        }
        const std::uint64_t code = r.varint_u64();
        IOTML_CHECK(code < dict.size(), "tdf: category code outside dictionary");
        col.push_category(dict[static_cast<std::size_t>(code)]);
      }
      continue;
    }

    const std::vector<double> values =
        decode_stream(r, tag, field.scale_bits, present_count);
    std::size_t next = 0;
    for (std::size_t row = 0; row < rows; ++row) {
      if (present[row]) {
        col.push_numeric(values[next++]);
      } else {
        col.push_missing();
      }
    }
  }

  const std::size_t origin_count = r.u32();
  const std::uint8_t origin_scale = r.u8();
  const std::uint8_t origin_tag = r.u8();
  frame.origin_s = decode_stream(r, origin_tag, origin_scale, origin_count);
  IOTML_CHECK(r.done(), "tdf: trailing bytes after frame body");
  return frame;
}

}  // namespace iotml::tdf
