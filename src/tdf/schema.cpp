#include "tdf/schema.hpp"

#include <utility>

#include "util/error.hpp"

namespace iotml::tdf {

namespace {

std::vector<std::uint8_t> encode_fields(const std::vector<FieldSpec>& fields) {
  util::ByteWriter w;
  w.u8(util::narrow_u8(fields.size(), "schema field count"));
  for (const FieldSpec& f : fields) {
    IOTML_CHECK(!f.name.empty(), "Schema: empty field name");
    w.u8(util::narrow_u8(f.name.size(), "schema field name length"));
    for (char c : f.name) w.u8(util::narrow_u8(static_cast<unsigned char>(c), "name byte"));
    w.u8(f.type == data::ColumnType::kNumeric ? 1 : 2);
    w.u8(f.scale_bits);
  }
  return w.take();
}

}  // namespace

Schema::Schema(std::vector<FieldSpec> fields) : fields_(std::move(fields)) {
  blob_ = encode_fields(fields_);
  id_ = util::fnv1a(blob_.data(), blob_.size());
}

Schema Schema::infer(const data::Dataset& ds, std::uint8_t scale_bits) {
  std::vector<FieldSpec> fields;
  fields.reserve(ds.num_columns());
  for (std::size_t c = 0; c < ds.num_columns(); ++c) {
    const data::Column& col = ds.column(c);
    FieldSpec f;
    f.name = col.name();
    f.type = col.type();
    f.scale_bits = col.type() == data::ColumnType::kNumeric ? scale_bits : 0;
    fields.push_back(std::move(f));
  }
  return Schema(std::move(fields));
}

Schema Schema::decode(util::ByteReader& reader, std::size_t blob_size) {
  const std::size_t end = reader.position() + blob_size;
  IOTML_CHECK(blob_size <= reader.remaining(), "Schema: truncated blob");
  const std::size_t count = reader.u8();
  std::vector<FieldSpec> fields;
  fields.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    FieldSpec f;
    const std::size_t name_len = reader.u8();
    f.name.reserve(name_len);
    for (std::size_t j = 0; j < name_len; ++j) {
      f.name.push_back(static_cast<char>(reader.u8()));
    }
    const std::uint8_t type = reader.u8();
    IOTML_CHECK(type == 1 || type == 2, "Schema: unknown field type tag");
    f.type = type == 1 ? data::ColumnType::kNumeric : data::ColumnType::kCategorical;
    f.scale_bits = reader.u8();
    IOTML_CHECK(f.scale_bits <= 52, "Schema: scale_bits exceeds double mantissa");
    fields.push_back(std::move(f));
  }
  IOTML_CHECK(reader.position() == end, "Schema: blob length mismatch");
  return Schema(std::move(fields));
}

bool SchemaRegistry::add(const Schema& schema) {
  IOTML_CHECK(schema.size() > 0, "SchemaRegistry: empty schema");
  return schemas_.emplace(schema.id(), schema).second;
}

const Schema* SchemaRegistry::find(std::uint32_t id) const {
  const auto it = schemas_.find(id);
  return it == schemas_.end() ? nullptr : &it->second;
}

}  // namespace iotml::tdf
