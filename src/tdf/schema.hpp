#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "util/bytes.hpp"

namespace iotml::tdf {

/// One tagged column of the telemetry schema: what a field is called, how
/// its cells are typed and — for numeric fields — the binary fixed-point
/// resolution the device quantizes to before encoding (cells are kept to
/// multiples of 2^-scale_bits, which is what lets the frame codec pack
/// readings as small varint deltas instead of 8-byte doubles).
struct FieldSpec {
  std::string name;
  data::ColumnType type = data::ColumnType::kNumeric;
  std::uint8_t scale_bits = 0;
};

/// A telemetry schema: the ordered field list one device session reports
/// against. Negotiated once per session (the first frame of a session
/// carries the encoded schema inline; every later frame references it by
/// id), so rows never pay for per-row self-description — the move from
/// "each message describes its columns" to tagged data format.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<FieldSpec> fields);

  /// Derive a schema from a dataset's column layout, quantizing every
  /// numeric field at `scale_bits`.
  static Schema infer(const data::Dataset& ds, std::uint8_t scale_bits);

  const std::vector<FieldSpec>& fields() const noexcept { return fields_; }
  std::size_t size() const noexcept { return fields_.size(); }

  /// FNV-1a32 of the encoded blob — the stable id frames reference.
  std::uint32_t id() const noexcept { return id_; }

  /// The negotiation blob: field count, then per field name/type/scale.
  const std::vector<std::uint8_t>& encoded() const noexcept { return blob_; }

  /// Inverse of encoded(); throws InvalidArgument on malformed blobs.
  static Schema decode(util::ByteReader& reader, std::size_t blob_size);

 private:
  std::vector<FieldSpec> fields_;
  std::vector<std::uint8_t> blob_;
  std::uint32_t id_ = 0;
};

/// Edge-side registry of negotiated schemas, keyed by id. A decoder looks
/// the frame's schema id up here; frames carrying an inline schema register
/// it first (idempotently), which is how a session opens.
class SchemaRegistry {
 public:
  /// Returns true when the schema was new (first negotiation).
  bool add(const Schema& schema);

  /// nullptr when the id was never negotiated.
  const Schema* find(std::uint32_t id) const;

  std::size_t size() const noexcept { return schemas_.size(); }

 private:
  std::map<std::uint32_t, Schema> schemas_;
};

}  // namespace iotml::tdf
