#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/dataset.hpp"
#include "tdf/schema.hpp"

namespace iotml::tdf {

/// "IOTF" frame magic, little-endian on the wire like every other format in
/// the tree ("IOTP" ota patches, deploy artifacts).
inline constexpr std::uint8_t kFrameMagic[4] = {'I', 'O', 'T', 'F'};
inline constexpr std::uint8_t kFrameVersion = 1;

/// Frame flag bits.
inline constexpr std::uint8_t kFlagSchemaInline = 0x01;

/// Fixed frame cost before the column blocks: magic(4) + version(1) +
/// flags(1) + schema id(4) + device(4) + seq(4) + rows(2) + cols(2), plus
/// the FNV-1a32 trailer(4).
inline constexpr std::size_t kFrameOverheadBytes = 26;

/// What a frame decodes back to.
struct Frame {
  std::uint32_t schema_id = 0;
  std::uint32_t device_id = 0;
  std::uint32_t seq = 0;
  bool schema_inline = false;
  data::Dataset rows;
  std::vector<double> origin_s;
};

/// Quantize a dataset in place to the wire resolution: every numeric cell
/// is rounded to the nearest multiple of 2^-scale_bits (half away from
/// zero), and NaN-valued cells are normalized to missing — a NaN reading
/// carries no more telemetry than no reading, so the codec charges both
/// one presence bit (net::wire_size_bytes prices the legacy model the same
/// way, keeping the counterfactual ledger like-with-like). Quantized values
/// are dyadic rationals, exactly representable in a double: re-quantizing
/// is the identity, and the frame codec's scaled-integer fast path engages.
void quantize(data::Dataset& ds, std::uint8_t scale_bits);

/// Quantize one value (NaN and infinities pass through untouched; the
/// encoder handles non-finite cells via the raw-bits path or the missing
/// bitmap).
double quantize_value(double v, std::uint8_t scale_bits);

/// Encode one batch of rows as a TDF frame. Column blocks are tagged per
/// column per frame: scaled varint deltas (or delta-of-deltas — whichever
/// is smaller; timestamps collapse to ~1 byte/row this way) when every
/// present value is representable at the schema's fixed-point scale, a
/// lossless XOR-of-previous raw-bits varint stream otherwise, and an
/// inline dictionary + varint codes for categorical columns. Missing cells
/// cost one presence-bitmap bit; all-present columns skip the bitmap.
///
/// `origin_s` rides in the frame (delta-encoded) so the wire carries the
/// provenance timestamps the simulator otherwise prices at 8 bytes each.
/// When `include_schema` is set the negotiation blob is embedded — the
/// once-per-session handshake. The dataset's columns must match the schema
/// field-for-field; labels must be absent (device telemetry never uplinks
/// ground truth). Throws InvalidArgument on mismatch.
std::vector<std::uint8_t> encode_frame(const Schema& schema,
                                       const data::Dataset& ds,
                                       const std::vector<double>& origin_s,
                                       std::uint32_t device_id, std::uint32_t seq,
                                       bool include_schema);

/// Decode a frame. Inline schemas are registered into `registry`
/// (idempotently); frames referencing an unknown schema id throw. Any
/// structural damage — bad magic, truncation, a flipped bit anywhere (the
/// FNV-1a32 trailer is verified first) — throws InvalidArgument, so corrupt
/// frames are rejected before a single cell is materialized.
Frame decode_frame(const std::vector<std::uint8_t>& bytes, SchemaRegistry& registry);

/// Cheap structural check: magic, version and trailer checksum only. What a
/// receiver uses to reject a damaged frame without attempting a decode.
bool frame_intact(const std::vector<std::uint8_t>& bytes);

}  // namespace iotml::tdf
