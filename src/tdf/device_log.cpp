#include "tdf/device_log.hpp"

#include "util/error.hpp"

namespace iotml::tdf {

DeviceLog::DeviceLog(std::size_t capacity_bytes) : capacity_(capacity_bytes) {
  IOTML_CHECK(capacity_bytes > 0, "DeviceLog: capacity must be positive");
}

std::vector<DeviceLog::Entry> DeviceLog::append(std::size_t bytes, std::size_t rows) {
  entries_.push_back({bytes, rows});
  bytes_ += bytes;
  rows_ += rows;
  std::vector<Entry> evicted;
  while (bytes_ > capacity_ && entries_.size() > 1) {
    Entry& oldest = entries_.front();
    bytes_ -= oldest.bytes;
    rows_ -= oldest.rows;
    ++frames_evicted_;
    rows_evicted_ += oldest.rows;
    evicted.push_back(oldest);
    entries_.pop_front();
  }
  // Post-eviction: the highwater reports what the ring actually retained,
  // not the transient overshoot the eviction pass immediately reclaimed.
  if (bytes_ > highwater_) highwater_ = bytes_;
  return evicted;
}

DeviceLog::Entry DeviceLog::pop_oldest() {
  IOTML_CHECK(!entries_.empty(), "DeviceLog: pop from an empty log");
  const Entry e = entries_.front();
  entries_.pop_front();
  bytes_ -= e.bytes;
  rows_ -= e.rows;
  return e;
}

void DeviceLog::clear() {
  entries_.clear();
  bytes_ = 0;
  rows_ = 0;
}

}  // namespace iotml::tdf
