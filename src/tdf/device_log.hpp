#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace iotml::tdf {

/// A bounded on-device ring log of encoded telemetry frames — the
/// data_logger layer of the TDF stack. A device appends every frame it
/// cannot ship immediately (offline at flush, failed reliable send) and
/// drains the backlog oldest-first on reconnect, so the log is what makes
/// store-and-forward a *byte* budget instead of an abstract row count.
///
/// Capacity is in encoded bytes. When an append overflows, whole frames are
/// evicted oldest-first until the new frame fits — a frame is the atom of
/// the log (a real flash ring cannot ship half a frame), so the newest
/// entry always survives intact even when it alone exceeds the capacity.
class DeviceLog {
 public:
  struct Entry {
    std::size_t bytes = 0;
    std::size_t rows = 0;
  };

  /// Throws InvalidArgument when capacity_bytes is zero.
  explicit DeviceLog(std::size_t capacity_bytes);

  /// Append one encoded frame; returns the entries evicted to make room,
  /// oldest first (empty when it fit).
  std::vector<Entry> append(std::size_t bytes, std::size_t rows);

  /// Remove and return the oldest entry. Throws InvalidArgument when empty.
  Entry pop_oldest();

  /// Drop every entry (a full drain into one uplink message).
  void clear();

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t frames() const noexcept { return entries_.size(); }
  std::size_t bytes() const noexcept { return bytes_; }
  std::size_t rows() const noexcept { return rows_; }
  std::size_t capacity_bytes() const noexcept { return capacity_; }

  /// Largest total occupancy the log ever reached, in bytes — the sizing
  /// signal the telemetry ledger reports fleet-wide.
  std::size_t highwater_bytes() const noexcept { return highwater_; }

  std::uint64_t frames_evicted() const noexcept { return frames_evicted_; }
  std::uint64_t rows_evicted() const noexcept { return rows_evicted_; }

 private:
  std::size_t capacity_;
  std::size_t bytes_ = 0;
  std::size_t rows_ = 0;
  std::size_t highwater_ = 0;
  std::uint64_t frames_evicted_ = 0;
  std::uint64_t rows_evicted_ = 0;
  std::deque<Entry> entries_;
};

}  // namespace iotml::tdf
