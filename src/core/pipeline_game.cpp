#include "core/pipeline_game.hpp"

#include <memory>

#include "learners/decision_tree.hpp"
#include "learners/knn.hpp"
#include "learners/logistic.hpp"
#include "learners/naive_bayes.hpp"
#include "util/error.hpp"

namespace iotml::core {

std::vector<PreprocessorStrategy> default_preprocessor_strategies() {
  using pipeline::ImputeStrategy;
  return {
      {"mean", ImputeStrategy::kMean, false, 1.0},
      {"median+outliers", ImputeStrategy::kMedian, true, 1.8},
      {"locf", ImputeStrategy::kLocf, false, 1.2},
      {"linear", ImputeStrategy::kLinear, false, 1.5},
      {"knn+outliers", ImputeStrategy::kKnn, true, 4.0},
  };
}

std::vector<AnalystStrategy> default_analyst_strategies() {
  return {
      {"naive-bayes", AnalystModel::kNaiveBayes, 1.0},
      {"decision-tree", AnalystModel::kDecisionTree, 2.0},
      {"knn", AnalystModel::kKnn, 3.0},
      {"logistic", AnalystModel::kLogistic, 1.5},
  };
}

namespace {

std::unique_ptr<learners::Classifier> make_model(AnalystModel model) {
  switch (model) {
    case AnalystModel::kDecisionTree:
      return std::make_unique<learners::DecisionTree>();
    case AnalystModel::kNaiveBayes:
      return std::make_unique<learners::NaiveBayes>();
    case AnalystModel::kKnn:
      return std::make_unique<learners::KnnClassifier>(5);
    case AnalystModel::kLogistic:
      return std::make_unique<learners::LogisticRegression>();
  }
  throw InternalError("make_model: unknown analyst model");
}

/// Apply one preprocessor strategy to a dataset copy; returns residual
/// missing rate.
double preprocess(data::Dataset& ds, const PreprocessorStrategy& strategy, Rng& rng) {
  if (strategy.suppress_outliers) {
    for (std::size_t f = 0; f < ds.num_columns(); ++f) {
      if (ds.column(f).type() != data::ColumnType::kNumeric) continue;
      pipeline::suppress_outliers(
          ds, f, pipeline::detect_outliers_hampel(ds.column(f), 4.0));
    }
  }
  pipeline::impute(ds, strategy.impute, rng);
  return ds.missing_rate();
}

}  // namespace

PipelineGameResult build_pipeline_game(const data::Dataset& corrupted_train,
                                       const data::Dataset& corrupted_test,
                                       const PipelineGameConfig& config, Rng& rng) {
  IOTML_CHECK(!config.preprocessor.empty() && !config.analyst.empty(),
              "build_pipeline_game: empty strategy set");
  IOTML_CHECK(corrupted_train.has_labels() && corrupted_test.has_labels(),
              "build_pipeline_game: datasets must be labeled");

  const std::size_t m = config.preprocessor.size();
  const std::size_t n = config.analyst.size();
  PipelineGameResult result;
  result.game.a = la::Matrix(m, n);
  result.game.b = la::Matrix(m, n);
  result.accuracy = la::Matrix(m, n);
  result.residual_missing = la::Matrix(m, n);

  for (std::size_t i = 0; i < m; ++i) {
    // Preprocess once per preprocessor strategy (deterministic per profile:
    // a fixed-seed child generator so hot-deck draws don't leak across
    // profiles).
    Rng prep_rng(1000 + i);  // rng-stream: prep
    data::Dataset train = corrupted_train;
    data::Dataset test = corrupted_test;
    const double residual_train = preprocess(train, config.preprocessor[i], prep_rng);
    const double residual_test = preprocess(test, config.preprocessor[i], prep_rng);
    const double residual = 0.5 * (residual_train + residual_test);

    const double prep_payoff =
        config.completeness_weight * (1.0 - residual) -
        config.preprocessor[i].effort_cost;

    for (std::size_t j = 0; j < n; ++j) {
      auto model = make_model(config.analyst[j].model);
      model->fit(train);
      const double acc = model->accuracy(test);

      result.accuracy(i, j) = acc;
      result.residual_missing(i, j) = residual;
      // The completeness term ignores accuracy — that is the misalignment —
      // while shared_stake couples the players per Section IV.B.
      result.game.a(i, j) =
          prep_payoff + config.shared_stake * config.accuracy_weight * acc;
      result.game.b(i, j) =
          config.accuracy_weight * acc - config.analyst[j].effort_cost;
    }
  }
  (void)rng;

  // Solution concepts.
  const auto nash_set = game::pure_nash(result.game);
  if (!nash_set.empty()) {
    result.nash = nash_set.front();
    result.has_pure_nash = true;
  } else {
    // Fall back to best-response dynamics' resting point.
    result.nash = game::best_response_dynamics(result.game, {0, 0}).profile;
  }
  result.stackelberg = game::solve_stackelberg(result.game);
  result.social = game::social_optimum(result.game);
  return result;
}

}  // namespace iotml::core
