#pragma once

#include <map>
#include <memory>
#include <vector>

#include "combinatorics/partition.hpp"
#include "data/dataset.hpp"
#include "kernels/kernel.hpp"
#include "kernels/mkl.hpp"

namespace iotml::core {

/// How block kernels are weighted when combined across partition blocks.
enum class WeightRule {
  kUniform,    ///< 1/B each
  kAlignment,  ///< independent centered target alignment (clipped, normalized)
  kOptimized   ///< coordinate-ascent alignment maximization
};

/// Cache of block Gram matrices over a fixed sample matrix.
///
/// Every partition evaluated during the lattice search reuses the Grams of
/// the blocks it shares with previously seen partitions — neighbouring
/// partitions in the lattice differ in few blocks, which is what makes the
/// search affordable. A block's kernel is an RBF over the block's features
/// with a median-heuristic bandwidth (equivalently: the *product* of
/// per-feature RBFs, the paper's aggregation-by-multiplication).
class BlockGramCache {
 public:
  explicit BlockGramCache(const la::Matrix& x);

  /// Gram of one block (features need not be sorted; the key is canonical).
  const la::Matrix& gram_for(const std::vector<std::size_t>& block);

  /// The median-heuristic bandwidth chosen for a block.
  double gamma_for(const std::vector<std::size_t>& block);

  /// Number of distinct block Grams actually computed (cache misses). Each
  /// miss costs O(n^2 |block|) kernel work — the search-cost currency.
  std::size_t block_grams_computed() const noexcept { return misses_; }

  /// Total cache lookups.
  std::size_t lookups() const noexcept { return lookups_; }

  const la::Matrix& samples() const noexcept { return x_; }

 private:
  struct Entry {
    la::Matrix gram;
    double gamma = 1.0;
  };
  const la::Matrix x_;  // owned copy: cache outlives callers' temporaries
  std::map<std::vector<std::size_t>, Entry> cache_;
  std::size_t misses_ = 0;
  std::size_t lookups_ = 0;

  const Entry& entry_for(const std::vector<std::size_t>& block);
};

/// The combined Gram of a feature partition: weighted sum of its block Grams.
/// Returns the weights used through `weights_out` when non-null.
la::Matrix partition_gram(BlockGramCache& cache, const comb::SetPartition& partition,
                          const std::vector<int>& y, WeightRule rule,
                          std::vector<double>* weights_out = nullptr);

/// Build the equivalent explicit kernel object (SumKernel of block-restricted
/// RBFs) for out-of-sample prediction with the chosen partition.
std::unique_ptr<kernels::Kernel> partition_kernel(BlockGramCache& cache,
                                                  const comb::SetPartition& partition,
                                                  const std::vector<double>& weights);

}  // namespace iotml::core
