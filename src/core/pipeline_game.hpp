#pragma once

#include <string>
#include <vector>

#include "data/dataset.hpp"
#include "game/bimatrix.hpp"
#include "game/stackelberg.hpp"
#include "pipeline/preparation.hpp"
#include "util/rng.hpp"

namespace iotml::core {

/// The Section IV adversarial-pipeline model made concrete: the
/// *preprocessor* player chooses how to repair the data, the *analyst*
/// player chooses what to learn from it. Interests are compatible but not
/// aligned — the preprocessor pays for repair effort and is judged on data
/// completeness (it serves many downstream consumers, Section IV.B), while
/// the analyst is judged on predictive accuracy.

struct PreprocessorStrategy {
  std::string name;
  pipeline::ImputeStrategy impute = pipeline::ImputeStrategy::kMean;
  bool suppress_outliers = false;
  double effort_cost = 1.0;  ///< what this strategy costs the preprocessor
};

enum class AnalystModel { kDecisionTree, kNaiveBayes, kKnn, kLogistic };

struct AnalystStrategy {
  std::string name;
  AnalystModel model = AnalystModel::kNaiveBayes;
  double effort_cost = 1.0;
};

/// Reasonable default strategy menus (used by bench_pipeline_game).
std::vector<PreprocessorStrategy> default_preprocessor_strategies();
std::vector<AnalystStrategy> default_analyst_strategies();

struct PipelineGameConfig {
  std::vector<PreprocessorStrategy> preprocessor = default_preprocessor_strategies();
  std::vector<AnalystStrategy> analyst = default_analyst_strategies();

  /// Preprocessor payoff = completeness_weight * (1 - residual missing rate)
  ///                       + shared_stake * accuracy_weight * accuracy
  ///                       - effort_cost.
  double completeness_weight = 5.0;
  /// Analyst payoff = accuracy_weight * test accuracy - effort_cost.
  double accuracy_weight = 20.0;
  /// The players "share some parts of one another's goals" (Section IV.B):
  /// the fraction of the analyst's accuracy reward the preprocessor also
  /// receives. 0 = fully decoupled, 1 = fully aligned.
  double shared_stake = 0.15;
};

/// The measured game: payoffs come from actually running every strategy
/// profile through the pipeline (empirical game construction — the
/// "integrated design process" of Section I.B).
struct PipelineGameResult {
  game::Bimatrix game;   ///< a = preprocessor payoffs, b = analyst payoffs
  la::Matrix accuracy;   ///< raw test accuracy per profile
  la::Matrix residual_missing;  ///< missing rate left after preprocessing

  /// Solution concepts over the measured game.
  game::PureProfile nash;       ///< first pure Nash (best-response stable)
  bool has_pure_nash = false;
  game::StackelbergSolution stackelberg;  ///< preprocessor commits first
  game::PureProfile social;     ///< single-player (welfare) optimum

  double accuracy_at(game::PureProfile p) const { return accuracy(p.row, p.col); }
};

/// Build and solve the empirical pipeline game. `corrupted_train` and
/// `corrupted_test` carry missing values/outliers from upstream acquisition;
/// every profile (i, j) preprocesses copies of both with strategy i and
/// scores model j on the repaired test set.
PipelineGameResult build_pipeline_game(const data::Dataset& corrupted_train,
                                       const data::Dataset& corrupted_test,
                                       const PipelineGameConfig& config, Rng& rng);

}  // namespace iotml::core
