#include "core/partition_kernels.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace iotml::core {

BlockGramCache::BlockGramCache(const la::Matrix& x) : x_(x) {
  IOTML_CHECK(x_.rows() >= 2, "BlockGramCache: need at least 2 samples");
  IOTML_CHECK(x_.cols() >= 1, "BlockGramCache: need at least 1 feature");
}

const BlockGramCache::Entry& BlockGramCache::entry_for(
    const std::vector<std::size_t>& block) {
  IOTML_CHECK(!block.empty(), "BlockGramCache: empty block");
  std::vector<std::size_t> key = block;
  std::sort(key.begin(), key.end());
  IOTML_CHECK(key.back() < x_.cols(), "BlockGramCache: feature out of range");

  ++lookups_;
  static obs::Counter& lookups = obs::registry().counter("lattice.block_gram_lookups");
  lookups.add();
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++misses_;
    static obs::Counter& builds = obs::registry().counter("lattice.block_gram_builds");
    builds.add();
    Entry entry;
    entry.gamma = kernels::median_heuristic_gamma(x_, key);
    kernels::SubsetKernel kernel(std::make_unique<kernels::RbfKernel>(entry.gamma), key);
    entry.gram = kernels::gram(kernel, x_);
    it = cache_.emplace(std::move(key), std::move(entry)).first;
  }
  return it->second;
}

const la::Matrix& BlockGramCache::gram_for(const std::vector<std::size_t>& block) {
  return entry_for(block).gram;
}

double BlockGramCache::gamma_for(const std::vector<std::size_t>& block) {
  return entry_for(block).gamma;
}

la::Matrix partition_gram(BlockGramCache& cache, const comb::SetPartition& partition,
                          const std::vector<int>& y, WeightRule rule,
                          std::vector<double>* weights_out) {
  IOTML_CHECK(partition.ground_size() == cache.samples().cols(),
              "partition_gram: partition ground set != feature count");
  const auto blocks = partition.blocks();

  std::vector<la::Matrix> grams;
  grams.reserve(blocks.size());
  for (const auto& block : blocks) grams.push_back(cache.gram_for(block));

  std::vector<double> weights;
  switch (rule) {
    case WeightRule::kUniform:
      weights = kernels::uniform_weights(grams.size());
      break;
    case WeightRule::kAlignment:
      weights = kernels::alignment_weights(grams, y);
      break;
    case WeightRule::kOptimized:
      weights = kernels::optimize_alignment_weights(grams, y);
      break;
  }
  if (weights_out != nullptr) *weights_out = weights;
  return kernels::combine_grams(grams, weights);
}

std::unique_ptr<kernels::Kernel> partition_kernel(BlockGramCache& cache,
                                                  const comb::SetPartition& partition,
                                                  const std::vector<double>& weights) {
  const auto blocks = partition.blocks();
  IOTML_CHECK(weights.size() == blocks.size(), "partition_kernel: weight count mismatch");
  std::vector<std::unique_ptr<kernels::Kernel>> terms;
  terms.reserve(blocks.size());
  for (const auto& block : blocks) {
    terms.push_back(std::make_unique<kernels::SubsetKernel>(
        std::make_unique<kernels::RbfKernel>(cache.gamma_for(block)), block));
  }
  return std::make_unique<kernels::SumKernel>(std::move(terms), weights);
}

}  // namespace iotml::core
