#include "core/lattice_search.hpp"

#include <algorithm>
#include <numeric>

#include "combinatorics/counting.hpp"
#include "obs/obs.hpp"
#include "util/error.hpp"

namespace iotml::core {

PartitionEvaluator::PartitionEvaluator(const data::Samples& train,
                                       SearchOptions options)
    : train_(train), options_(options), cache_(train.x) {
  IOTML_CHECK(!train_.y.empty(), "PartitionEvaluator: unlabeled training set");
  IOTML_CHECK(options_.cv_folds >= 2, "PartitionEvaluator: cv_folds must be >= 2");
}

double PartitionEvaluator::score(const comb::SetPartition& partition) {
  ++evaluations_;
  // Each score is one node of the lattice expanded: a combined Gram plus a
  // full CV round of SVM trainings.
  static obs::Counter& nodes_expanded = obs::registry().counter("lattice.nodes_expanded");
  nodes_expanded.add();
  const la::Matrix combined =
      partition_gram(cache_, partition, train_.y, options_.weights);
  Rng cv_rng(options_.cv_seed);  // rng-stream: cv-folds (identical folds for every candidate)
  return kernels::cv_accuracy_precomputed(combined, train_.y, options_.cv_folds,
                                          cv_rng, options_.svm);
}

std::vector<double> PartitionEvaluator::weights_for(
    const comb::SetPartition& partition) {
  std::vector<double> weights;
  partition_gram(cache_, partition, train_.y, options_.weights, &weights);
  return weights;
}

SearchCone make_cone(std::size_t dim, const std::vector<std::size_t>& k_block) {
  IOTML_CHECK(dim >= 1, "make_cone: no features");
  std::vector<bool> in_k(dim, false);
  for (std::size_t f : k_block) {
    IOTML_CHECK(f < dim, "make_cone: K feature out of range");
    IOTML_CHECK(!in_k[f], "make_cone: duplicate K feature");
    in_k[f] = true;
  }
  SearchCone cone;
  cone.k_block = k_block;
  for (std::size_t f = 0; f < dim; ++f) {
    if (!in_k[f]) cone.rest.push_back(f);
  }
  IOTML_CHECK(!cone.rest.empty(), "make_cone: K covers every feature");
  return cone;
}

comb::SetPartition lift_to_features(const SearchCone& cone,
                                    const comb::SetPartition& rho) {
  IOTML_CHECK(rho.ground_size() == cone.rest.size(),
              "lift_to_features: rho ground size != |rest|");
  const std::size_t dim = cone.k_block.size() + cone.rest.size();
  std::vector<int> assignment(dim, -1);
  // K is one block (label = rho.num_blocks(), any unused label works).
  for (std::size_t f : cone.k_block) {
    assignment[f] = static_cast<int>(rho.num_blocks());
  }
  for (std::size_t pos = 0; pos < cone.rest.size(); ++pos) {
    assignment[cone.rest[pos]] = rho.block_of(pos);
  }
  return comb::SetPartition::from_assignment(assignment);
}

namespace {

SearchResult finalize(PartitionEvaluator& evaluator, SearchResult result, obs::Span& span,
                      std::uint64_t cones_pruned) {
  result.partitions_evaluated = evaluator.evaluations();
  result.block_grams_computed = evaluator.cache().block_grams_computed();
  result.best_weights = evaluator.weights_for(result.best);
  obs::registry().counter("lattice.searches_run").add();
  obs::registry().counter("lattice.cones_pruned").add(cones_pruned);
  span.arg("partitions_evaluated", static_cast<std::uint64_t>(result.partitions_evaluated));
  span.arg("block_grams_computed", static_cast<std::uint64_t>(result.block_grams_computed));
  span.arg("cones_pruned", cones_pruned);
  span.arg("best_score", result.best_score);
  span.arg("best_blocks", static_cast<std::uint64_t>(result.best.num_blocks()));
  return result;
}

}  // namespace

SearchResult exhaustive_cone_search(PartitionEvaluator& evaluator,
                                    const SearchCone& cone) {
  const std::size_t m = cone.rest.size();
  IOTML_CHECK(m <= 14, "exhaustive_cone_search: |S - K| too large to enumerate");
  const std::uint64_t cone_size = comb::bell_number(static_cast<unsigned>(m));
  IOTML_CHECK(cone_size <= evaluator.options().max_exhaustive,
              "exhaustive_cone_search: cone larger than options.max_exhaustive");

  obs::Span span("lattice.exhaustive_cone_search", "core");
  SearchResult result;
  result.best_score = -1.0;
  comb::PartitionEnumerator enumerate(m);
  while (enumerate.has_next()) {
    const comb::SetPartition rho = enumerate.next();
    const comb::SetPartition candidate = lift_to_features(cone, rho);
    const double s = evaluator.score(candidate);
    result.trajectory.push_back({candidate, s});
    if (s > result.best_score) {
      result.best_score = s;
      result.best = candidate;
    }
  }
  // Exhaustive enumeration prunes nothing by definition.
  return finalize(evaluator, std::move(result), span, 0);
}

namespace {

/// Covers below rho restricted to feasible split enumeration: all 2-way
/// splits for blocks up to 12 elements, contiguous (exploration-order)
/// prefix splits beyond that.
std::vector<comb::SetPartition> feasible_downward_covers(const comb::SetPartition& rho) {
  constexpr std::size_t kFullSplitLimit = 12;
  std::vector<comb::SetPartition> out;
  const auto blocks = rho.blocks();
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    const auto& block = blocks[b];
    if (block.size() < 2) continue;
    if (block.size() <= kFullSplitLimit) {
      const std::uint64_t limit = std::uint64_t{1} << (block.size() - 1);
      for (std::uint64_t mask = 1; mask < limit; ++mask) {
        std::vector<int> assignment = rho.rgs();
        const int fresh = static_cast<int>(rho.num_blocks());
        for (std::size_t j = 1; j < block.size(); ++j) {
          if (mask & (std::uint64_t{1} << (j - 1))) assignment[block[j]] = fresh;
        }
        out.push_back(comb::SetPartition::from_assignment(assignment));
      }
    } else {
      for (std::size_t cut = 1; cut < block.size(); ++cut) {
        std::vector<int> assignment = rho.rgs();
        const int fresh = static_cast<int>(rho.num_blocks());
        for (std::size_t j = cut; j < block.size(); ++j) assignment[block[j]] = fresh;
        out.push_back(comb::SetPartition::from_assignment(assignment));
      }
    }
  }
  return out;
}

}  // namespace

SearchResult greedy_refinement_search(PartitionEvaluator& evaluator,
                                      const SearchCone& cone) {
  obs::Span span("lattice.greedy_refinement_search", "core");
  SearchResult result;
  std::uint64_t cones_pruned = 0;  // evaluated covers whose sub-cones we never descend into

  // Start at the paper's two-block partition (K, S-K) — rho = one block.
  comb::SetPartition rho = comb::SetPartition::indiscrete(cone.rest.size());
  comb::SetPartition current = lift_to_features(cone, rho);
  double current_score = evaluator.score(current);
  result.trajectory.push_back({current, current_score});
  result.best = current;
  result.best_score = current_score;

  while (true) {
    const auto candidates = feasible_downward_covers(rho);
    if (candidates.empty()) break;

    double best_candidate_score = -1.0;
    std::size_t best_index = 0;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
      const comb::SetPartition lifted = lift_to_features(cone, candidates[i]);
      const double s = evaluator.score(lifted);
      result.trajectory.push_back({lifted, s});
      if (s > best_candidate_score) {
        best_candidate_score = s;
        best_index = i;
      }
    }
    if (best_candidate_score <
        current_score + evaluator.options().min_improvement) {
      cones_pruned += candidates.size();  // no cover descended into
      break;  // adding another kernel does not improve the system
    }
    cones_pruned += candidates.size() - 1;  // all covers but the chosen one
    rho = candidates[best_index];
    current = lift_to_features(cone, rho);
    current_score = best_candidate_score;
    if (current_score > result.best_score) {
      result.best = current;
      result.best_score = current_score;
    }
  }
  return finalize(evaluator, std::move(result), span, cones_pruned);
}

SearchResult chain_search(PartitionEvaluator& evaluator, const SearchCone& cone) {
  obs::Span span("lattice.chain_search", "core");
  const std::size_t m = cone.rest.size();
  SearchResult result;
  std::uint64_t cones_pruned = 0;

  // The C1-type saturated chain: rho_k isolates the first k features of R
  // (in exploration order) as singletons and keeps the suffix together.
  // rho_0 = {R} (the paper's (K, S-K) start), rho_{m-1} = discrete.
  std::size_t without_improvement = 0;
  result.best_score = -1.0;
  for (std::size_t k = 0; k < m; ++k) {
    std::vector<int> assignment(m, 0);
    for (std::size_t pos = 0; pos < m; ++pos) {
      assignment[pos] = static_cast<int>(std::min(pos, k));
    }
    const comb::SetPartition candidate =
        lift_to_features(cone, comb::SetPartition::from_assignment(assignment));
    const double s = evaluator.score(candidate);
    result.trajectory.push_back({candidate, s});
    if (s > result.best_score + evaluator.options().min_improvement) {
      result.best_score = s;
      result.best = candidate;
      without_improvement = 0;
    } else {
      if (s > result.best_score) {
        result.best_score = s;
        result.best = candidate;
      }
      ++without_improvement;
      if (without_improvement > evaluator.options().patience) {
        cones_pruned += static_cast<std::uint64_t>(m - 1 - k);  // chain steps never walked
        break;
      }
    }
  }
  return finalize(evaluator, std::move(result), span, cones_pruned);
}

SearchResult smushing_search(PartitionEvaluator& evaluator, const SearchCone& cone) {
  obs::Span span("lattice.smushing_search", "core");
  const std::size_t m = cone.rest.size();
  SearchResult result;
  result.best_score = -1.0;
  std::uint64_t cones_pruned = 0;

  // Current partition of R as block lists over rest *positions*.
  std::vector<std::vector<std::size_t>> blocks(m);
  for (std::size_t i = 0; i < m; ++i) blocks[i] = {i};

  auto to_partition = [&]() {
    std::vector<int> assignment(m, 0);
    for (std::size_t b = 0; b < blocks.size(); ++b) {
      for (std::size_t pos : blocks[b]) assignment[pos] = static_cast<int>(b);
    }
    return comb::SetPartition::from_assignment(assignment);
  };
  auto features_of = [&](const std::vector<std::size_t>& positions) {
    std::vector<std::size_t> features;
    features.reserve(positions.size());
    for (std::size_t pos : positions) features.push_back(cone.rest[pos]);
    return features;
  };

  std::size_t without_improvement = 0;
  while (true) {
    const comb::SetPartition candidate = lift_to_features(cone, to_partition());
    const double s = evaluator.score(candidate);
    result.trajectory.push_back({candidate, s});
    if (s > result.best_score + evaluator.options().min_improvement) {
      result.best_score = s;
      result.best = candidate;
      without_improvement = 0;
    } else {
      if (s > result.best_score) {
        result.best_score = s;
        result.best = candidate;
      }
      if (++without_improvement > evaluator.options().patience) {
        if (blocks.size() > 1) {
          cones_pruned += static_cast<std::uint64_t>(blocks.size() - 1);  // merges never tried
        }
        break;
      }
    }
    if (blocks.size() <= 1) break;

    // Smush the most mutually aligned pair of blocks (cheap Gram alignment,
    // no SVM). This is the lattice join with the atom identifying that pair.
    double best_alignment = -2.0;
    std::size_t merge_a = 0, merge_b = 1;
    for (std::size_t a = 0; a < blocks.size(); ++a) {
      const la::Matrix& gram_a = evaluator.cache().gram_for(features_of(blocks[a]));
      for (std::size_t b = a + 1; b < blocks.size(); ++b) {
        const la::Matrix& gram_b = evaluator.cache().gram_for(features_of(blocks[b]));
        const double alignment = kernels::alignment(gram_a, gram_b);
        if (alignment > best_alignment) {
          best_alignment = alignment;
          merge_a = a;
          merge_b = b;
        }
      }
    }
    blocks[merge_a].insert(blocks[merge_a].end(), blocks[merge_b].begin(),
                           blocks[merge_b].end());
    blocks.erase(blocks.begin() + static_cast<std::ptrdiff_t>(merge_b));
  }
  return finalize(evaluator, std::move(result), span, cones_pruned);
}

}  // namespace iotml::core
