#pragma once

#include <vector>

#include "core/partition_kernels.hpp"
#include "data/dataset.hpp"
#include "kernels/svm.hpp"

namespace iotml::core {

/// Options shared by all lattice search strategies.
struct SearchOptions {
  WeightRule weights = WeightRule::kAlignment;
  std::size_t cv_folds = 4;
  kernels::SvmParams svm{};
  std::uint64_t cv_seed = 17;       ///< one seed -> same folds for every candidate
  double min_improvement = 1e-4;    ///< the paper's stopping rule threshold
  std::size_t patience = 2;         ///< chain search: non-improving steps allowed
  std::uint64_t max_exhaustive = 21147;  ///< refuse exhaustive cones beyond Bell(9)
};

/// One scored partition along the search trajectory.
struct EvaluatedPartition {
  comb::SetPartition partition;
  double score = 0.0;
};

struct SearchResult {
  comb::SetPartition best;
  double best_score = 0.0;
  std::size_t partitions_evaluated = 0;   ///< SVM cross-validations run
  std::size_t block_grams_computed = 0;   ///< distinct block Grams built
  std::vector<EvaluatedPartition> trajectory;
  std::vector<double> best_weights;       ///< block weights of `best`
};

/// Shared scoring machinery: CV accuracy of the partition-MKL SVM over a
/// fixed fold assignment (same folds for every candidate, so scores are
/// comparable).
class PartitionEvaluator {
 public:
  PartitionEvaluator(const data::Samples& train, SearchOptions options);

  /// k-fold CV accuracy of the partition's combined kernel.
  double score(const comb::SetPartition& partition);

  std::size_t evaluations() const noexcept { return evaluations_; }
  BlockGramCache& cache() noexcept { return cache_; }
  const data::Samples& train() const noexcept { return train_; }
  const SearchOptions& options() const noexcept { return options_; }

  /// Weights the rule assigns to a partition's blocks (for the final model).
  std::vector<double> weights_for(const comb::SetPartition& partition);

 private:
  data::Samples train_;
  SearchOptions options_;
  BlockGramCache cache_;
  std::size_t evaluations_ = 0;
};

/// The search cone of Section III: partitions of the full feature set that
/// keep the distinguished block K intact and partition the remaining
/// features R = S - K freely. K may be empty (search all of Pi(S)).
struct SearchCone {
  std::vector<std::size_t> k_block;   ///< features frozen together (may be empty)
  std::vector<std::size_t> rest;      ///< R = S - K, in exploration order
};

/// Build the cone from a chosen K over `dim` features; `rest` keeps
/// ascending feature order (reorder with multiview::correlation_order for
/// the chain strategy).
SearchCone make_cone(std::size_t dim, const std::vector<std::size_t>& k_block);

/// Lift a partition rho of `cone.rest` (by position) to a partition of the
/// full feature set with K as an extra block (when non-empty).
comb::SetPartition lift_to_features(const SearchCone& cone,
                                    const comb::SetPartition& rho);

/// Exhaustive cone exploration: every partition of R (Bell(|R|) candidates;
/// guarded by options.max_exhaustive). The paper's complexity strawman.
SearchResult exhaustive_cone_search(PartitionEvaluator& evaluator,
                                    const SearchCone& cone);

/// Greedy downward refinement: start at (K, R); repeatedly evaluate all
/// covers obtained by splitting one block of rho in two, move to the best
/// while it improves by min_improvement ("adding an additional kernel will
/// not improve the performance of the system" = stop). Blocks larger than
/// 12 features only consider splits contiguous in exploration order.
SearchResult greedy_refinement_search(PartitionEvaluator& evaluator,
                                      const SearchCone& cone);

/// Chain-decomposition-guided search: walk the saturated symmetric chain of
/// Pi(R) that peels one feature of R at a time off the big block, in
/// exploration order (see [11]'s C1-type chain). Exactly |R| candidate
/// evaluations in the worst case — the linear-cost strategy claimed in
/// Section III. Stops after `patience` non-improving steps.
SearchResult chain_search(PartitionEvaluator& evaluator, const SearchCone& cone);

/// "Smushing" search (the paper's term, from [6], [7]): start from the
/// discrete partition of R and repeatedly apply the lattice *join* that
/// merges the pair of blocks whose kernels are most mutually aligned —
/// agglomerative clustering in kernel space. This walks one data-driven
/// saturated chain from bottom to top (|R| SVM evaluations) but chooses the
/// chain from pairwise alignments instead of a fixed feature order; the
/// alignment computations are O(|R|^2) cheap Gram operations, no SVM.
/// Stops after `patience` non-improving merges.
SearchResult smushing_search(PartitionEvaluator& evaluator, const SearchCone& cone);

}  // namespace iotml::core
