#pragma once

#include <memory>
#include <optional>

#include "core/lattice_search.hpp"
#include "kernels/mkl.hpp"

namespace iotml::core {

/// Which lattice exploration strategy the learner runs.
enum class SearchStrategy { kExhaustive, kGreedyRefinement, kChain, kSmushing };

std::string strategy_name(SearchStrategy s);

struct FacetedLearnerConfig {
  SearchStrategy strategy = SearchStrategy::kChain;
  SearchOptions search{};

  /// Choose the distinguished block K with rough sets (Section III: "select
  /// K dynamically, based on the approximation accuracy on benchmark
  /// concepts"). Features are discretized into `rough_bins` equal-frequency
  /// bins, then every subset up to `rough_max_k` features is scored against
  /// the labels. When false, K is empty and the whole lattice cone is Pi(S).
  bool rough_select_k = false;
  std::size_t rough_bins = 3;
  std::size_t rough_max_k = 2;

  /// Reorder S - K so correlated features are adjacent before chain/greedy
  /// exploration (recommended: the chain strategy merges suffixes).
  bool correlation_ordering = true;
};

/// The paper's IoT-friendly learning model, end to end: pick K (rough sets),
/// explore the partition lattice of the feature set for the best multiple
/// kernel configuration, and train the final partition-MKL SVM.
///
///   FacetedLearner learner;                 // defaults: chain search
///   learner.fit(train_samples);
///   auto predictions = learner.predict(test_x);
///   learner.partition().to_string();        // the chosen facet structure
class FacetedLearner {
 public:
  explicit FacetedLearner(FacetedLearnerConfig config = {});

  void fit(const data::Samples& train);

  std::vector<int> predict(const la::Matrix& x) const;
  double accuracy(const data::Samples& test) const;

  /// The partition of the feature set the search settled on.
  const comb::SetPartition& partition() const;
  /// Search accounting (evaluations, gram computations, trajectory).
  const SearchResult& search_result() const;
  /// The distinguished block K that anchored the search (possibly empty).
  const std::vector<std::size_t>& k_block() const noexcept { return k_block_; }

 private:
  FacetedLearnerConfig config_;
  std::vector<std::size_t> k_block_;
  std::optional<SearchResult> search_;
  std::unique_ptr<kernels::KernelSvmClassifier> model_;
};

}  // namespace iotml::core
