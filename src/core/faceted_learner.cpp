#include "core/faceted_learner.hpp"

#include <algorithm>

#include "data/metrics.hpp"
#include "multiview/views.hpp"
#include "pipeline/reduction.hpp"
#include "roughsets/roughsets.hpp"
#include "util/error.hpp"

namespace iotml::core {

std::string strategy_name(SearchStrategy s) {
  switch (s) {
    case SearchStrategy::kExhaustive: return "exhaustive";
    case SearchStrategy::kGreedyRefinement: return "greedy-refinement";
    case SearchStrategy::kChain: return "chain";
    case SearchStrategy::kSmushing: return "smushing";
  }
  return "?";
}

FacetedLearner::FacetedLearner(FacetedLearnerConfig config)
    : config_(std::move(config)) {
  IOTML_CHECK(config_.rough_bins >= 2, "FacetedLearner: rough_bins must be >= 2");
  IOTML_CHECK(config_.rough_max_k >= 1, "FacetedLearner: rough_max_k must be >= 1");
}

void FacetedLearner::fit(const data::Samples& train) {
  IOTML_CHECK(!train.y.empty(), "FacetedLearner::fit: unlabeled training set");
  IOTML_CHECK(train.dim() >= 2, "FacetedLearner::fit: need at least 2 features");

  // 1. Distinguished block K via rough sets on a discretized copy.
  k_block_.clear();
  if (config_.rough_select_k && train.dim() >= 3) {
    data::Dataset discretized = data::samples_to_dataset(train);
    pipeline::discretize_all(discretized, pipeline::DiscretizeKind::kEqualFrequency,
                             config_.rough_bins);
    const rough::KSelection selection = rough::select_k(
        discretized, config_.rough_max_k, rough::KScore::kMeanAccuracy);
    // K must leave at least one feature to partition.
    if (selection.features.size() < train.dim()) k_block_ = selection.features;
  }

  // 2. Exploration order of S - K.
  SearchCone cone = make_cone(train.dim(), k_block_);
  if (config_.correlation_ordering && cone.rest.size() >= 3) {
    // Order the *rest* features by correlation chaining (indices are into
    // the projected submatrix; map back to feature ids).
    data::Samples rest_view = multiview::project(train, cone.rest);
    const std::vector<std::size_t> order = multiview::correlation_order(rest_view);
    std::vector<std::size_t> reordered(cone.rest.size());
    for (std::size_t i = 0; i < order.size(); ++i) reordered[i] = cone.rest[order[i]];
    cone.rest = std::move(reordered);
  }

  // 3. Lattice search.
  PartitionEvaluator evaluator(train, config_.search);
  switch (config_.strategy) {
    case SearchStrategy::kExhaustive:
      search_ = exhaustive_cone_search(evaluator, cone);
      break;
    case SearchStrategy::kGreedyRefinement:
      search_ = greedy_refinement_search(evaluator, cone);
      break;
    case SearchStrategy::kChain:
      search_ = chain_search(evaluator, cone);
      break;
    case SearchStrategy::kSmushing:
      search_ = smushing_search(evaluator, cone);
      break;
  }

  // 4. Final model on the chosen partition.
  IOTML_CHECK(search_.has_value(),
              "FacetedLearner::fit: unknown search strategy produced no result");
  auto kernel =
      partition_kernel(evaluator.cache(), search_->best, search_->best_weights);
  model_ = std::make_unique<kernels::KernelSvmClassifier>(std::move(kernel),
                                                          config_.search.svm);
  model_->fit(train);
}

std::vector<int> FacetedLearner::predict(const la::Matrix& x) const {
  IOTML_CHECK(model_ != nullptr, "FacetedLearner::predict: call fit() first");
  return model_->predict(x);
}

double FacetedLearner::accuracy(const data::Samples& test) const {
  IOTML_CHECK(!test.y.empty(), "FacetedLearner::accuracy: unlabeled test set");
  return data::accuracy(test.y, predict(test.x));
}

const comb::SetPartition& FacetedLearner::partition() const {
  IOTML_CHECK(search_.has_value(), "FacetedLearner::partition: call fit() first");
  return search_->best;
}

const SearchResult& FacetedLearner::search_result() const {
  IOTML_CHECK(search_.has_value(), "FacetedLearner::search_result: call fit() first");
  return *search_;
}

}  // namespace iotml::core
