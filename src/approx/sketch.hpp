#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace iotml::approx {

/// Count-min sketch over 64-bit keys: `depth` rows of `width` counters,
/// each row hashed with an independent seed-derived function. Estimates
/// overcount by at most epsilon() * total() with high probability and
/// never undercount. Merging two sketches built with the same shape and
/// seed is exact counter-wise addition, so merges commute and associate
/// and the encoded bytes are independent of merge order.
class CountMinSketch {
 public:
  /// Throws InvalidArgument unless width >= 1 and depth >= 1.
  CountMinSketch(std::size_t width, std::size_t depth, std::uint64_t seed);

  void add(std::uint64_t key, std::uint64_t count = 1);

  /// Upper-biased point estimate: min over rows of the hashed counter.
  std::uint64_t estimate(std::uint64_t key) const;

  /// Counter-wise addition. Throws InvalidArgument unless `other` has the
  /// same width, depth, and seed.
  void merge(const CountMinSketch& other);

  /// Total weight added (sum of `count` arguments across add() calls).
  std::uint64_t total() const noexcept { return total_; }

  /// Additive error bound as a fraction of total(): e / width.
  double epsilon() const noexcept;

  std::size_t width() const noexcept { return width_; }
  std::size_t depth() const noexcept { return depth_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Canonical little-endian byte image (shape, seed, total, counters).
  /// Byte-stable across merge orders for a fixed multiset of adds.
  std::vector<std::uint8_t> encode() const;

 private:
  std::size_t row_index(std::size_t row, std::uint64_t key) const;

  std::size_t width_;
  std::size_t depth_;
  std::uint64_t seed_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> counters_;  // depth_ rows of width_ each
};

/// Mergeable quantile sketch via coordinated bottom-k hash sampling: every
/// (key, value) pair gets a rank from a seed-keyed hash of the key, and the
/// sketch keeps the k pairs with the smallest ranks. Because the rank
/// depends only on (seed, key), two sketches over disjoint streams agree on
/// which survivors to keep, so merges are exactly "union then truncate to
/// k" — commutative, associative, and byte-stable regardless of merge
/// order. The retained values are a uniform sample of the stream, so they
/// double as the input to normal-approximation confidence intervals.
class QuantileSketch {
 public:
  /// Throws InvalidArgument unless capacity >= 1.
  QuantileSketch(std::size_t capacity, std::uint64_t seed);

  /// `key` must be unique per stream element (the fleet uses
  /// node-id << 32 | per-node sequence); duplicate keys collapse to one
  /// retained entry and would bias the sample.
  void add(std::uint64_t key, double value);

  /// Union-then-truncate. Throws InvalidArgument unless `other` has the
  /// same capacity and seed.
  void merge(const QuantileSketch& other);

  /// Empirical quantile of the retained sample, q in [0, 1] (clamped).
  /// Throws InvalidArgument when the sketch is empty.
  double quantile(double q) const;

  /// Stream length (number of adds across all merged inputs).
  std::uint64_t count() const noexcept { return count_; }

  /// Number of retained entries (min(count, capacity) barring rank ties).
  std::size_t retained() const noexcept { return entries_.size(); }

  /// Retained values in canonical entry order — a uniform sample of the
  /// stream suitable for mean/CI estimation.
  std::vector<double> sample_values() const;

  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t seed() const noexcept { return seed_; }

  /// Canonical little-endian byte image (shape, seed, count, entries in
  /// (rank, value-bits, key) order). Byte-stable across merge orders.
  std::vector<std::uint8_t> encode() const;

 private:
  struct Entry {
    std::uint64_t rank;
    std::uint64_t value_bits;  // IEEE-754 image; total-orders ties exactly
    std::uint64_t key;
  };

  void truncate();

  std::size_t capacity_;
  std::uint64_t seed_;
  std::uint64_t count_ = 0;
  std::vector<Entry> entries_;  // sorted by (rank, value_bits, key)
};

}  // namespace iotml::approx
