#include "approx/degradation.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace iotml::approx {

const char* degrade_level_name(DegradeLevel level) noexcept {
  switch (level) {
    case DegradeLevel::kExact: return "exact";
    case DegradeLevel::kSampled: return "sampled";
    case DegradeLevel::kSketch: return "sketch";
    case DegradeLevel::kSummary: return "summary";
  }
  return "unknown";
}

double DegradeSignals::pressure() const noexcept {
  return std::max(std::max(queue_fraction, dead_letter_rate),
                  std::max(sf_occupancy, checkpoint_lag));
}

DegradationController::DegradationController(
    const DegradeThresholds& thresholds, int pin_level)
    : thresholds_(thresholds), pin_level_(pin_level) {
  IOTML_CHECK(pin_level >= -1 && pin_level <= 3,
              "DegradationController: pin_level must be in [-1, 3]");
  IOTML_CHECK(thresholds.dwell_s > 0.0,
              "DegradationController: dwell_s must be > 0");
  for (std::size_t i = 0; i < 3; ++i) {
    IOTML_CHECK(thresholds.down[i] < thresholds.up[i],
                "DegradationController: down band must sit below up band");
    if (i > 0) {
      IOTML_CHECK(thresholds.up[i - 1] < thresholds.up[i],
                  "DegradationController: up thresholds must increase");
      IOTML_CHECK(thresholds.down[i - 1] < thresholds.down[i],
                  "DegradationController: down thresholds must increase");
    }
  }
  if (pin_level_ >= 0) level_ = static_cast<DegradeLevel>(pin_level_);
}

void DegradationController::move_to(double now_s, DegradeLevel to) {
  if (to == level_) return;
  transitions_.push_back(LevelTransition{now_s, level_, to});
  level_ = to;
  calm_ = false;
}

DegradeLevel DegradationController::update(double now_s,
                                           const DegradeSignals& signals) {
  IOTML_CHECK(now_s >= last_update_s_,
              "DegradationController: virtual time moved backwards");
  time_at_level_[static_cast<std::size_t>(level_)] += now_s - last_update_s_;
  last_update_s_ = now_s;
  if (pin_level_ >= 0) return level_;

  const double pressure = signals.pressure();
  const auto current = static_cast<int>(level_);

  // Escalate immediately to the highest level whose up band is crossed.
  int target = current;
  for (int i = 2; i >= current; --i) {
    if (pressure >= thresholds_.up[static_cast<std::size_t>(i)]) {
      target = i + 1;
      break;
    }
  }
  if (target > current) {
    move_to(now_s, static_cast<DegradeLevel>(target));
    return level_;
  }

  // De-escalate one level only after a full calm dwell below the band.
  if (current > 0) {
    const double band = thresholds_.down[static_cast<std::size_t>(current - 1)];
    if (pressure < band) {
      if (!calm_) {
        calm_ = true;
        calm_since_s_ = now_s;
      } else if (now_s - calm_since_s_ >= thresholds_.dwell_s) {
        move_to(now_s, static_cast<DegradeLevel>(current - 1));
        // A fresh dwell must elapse before the next step down.
      }
    } else {
      calm_ = false;
    }
  }
  return level_;
}

}  // namespace iotml::approx
