#include "approx/sample.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace iotml::approx {

ReservoirSampler::ReservoirSampler(std::size_t capacity) : capacity_(capacity) {
  IOTML_CHECK(capacity >= 1, "ReservoirSampler: capacity must be >= 1");
  sample_.reserve(capacity);
}

void ReservoirSampler::offer(double value, Rng& rng) {
  ++seen_;
  if (sample_.size() < capacity_) {
    sample_.push_back(value);
    return;
  }
  const std::size_t slot = rng.index(static_cast<std::size_t>(seen_));
  if (slot < capacity_) sample_[slot] = value;
}

std::vector<std::size_t> stratified_indices(const std::vector<Stratum>& strata,
                                            double rate, Rng& rng) {
  IOTML_CHECK(rate > 0.0 && rate <= 1.0,
              "stratified_indices: rate must lie in (0, 1]");
  std::vector<std::size_t> picked;
  for (const Stratum& s : strata) {
    if (s.count == 0) continue;
    const auto want = static_cast<std::size_t>(
        std::ceil(rate * static_cast<double>(s.count)));
    const std::size_t k = std::min(std::max<std::size_t>(want, 1), s.count);
    Rng stratum_rng = rng.split();  // rng-stream: stratum
    std::vector<std::size_t> local =
        stratum_rng.sample_without_replacement(s.count, k);
    for (std::size_t offset : local) picked.push_back(s.begin + offset);
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

std::vector<std::size_t> stratified_indices(
    const std::vector<std::vector<std::size_t>>& strata, double rate,
    Rng& rng) {
  IOTML_CHECK(rate > 0.0 && rate <= 1.0,
              "stratified_indices: rate must lie in (0, 1]");
  std::vector<std::size_t> picked;
  for (const std::vector<std::size_t>& rows : strata) {
    if (rows.empty()) continue;
    const auto want = static_cast<std::size_t>(
        std::ceil(rate * static_cast<double>(rows.size())));
    const std::size_t k = std::min(std::max<std::size_t>(want, 1), rows.size());
    Rng stratum_rng = rng.split();  // rng-stream: stratum-live
    std::vector<std::size_t> local =
        stratum_rng.sample_without_replacement(rows.size(), k);
    for (std::size_t offset : local) picked.push_back(rows[offset]);
  }
  std::sort(picked.begin(), picked.end());
  return picked;
}

}  // namespace iotml::approx
