#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace iotml::approx {

/// Classic algorithm-R reservoir over a stream of doubles: after `offer`ing
/// n values the reservoir holds a uniform sample of min(n, capacity) of
/// them, using exactly one Rng draw per offer once the reservoir is full.
/// Deterministic per (seed, offer order) — the fleet feeds it from a
/// manifest-pinned stream, so two runs sample byte-identical reservoirs.
class ReservoirSampler {
 public:
  /// Throws InvalidArgument unless capacity >= 1.
  explicit ReservoirSampler(std::size_t capacity);

  /// Consider one stream value. Draws from `rng` only when the reservoir is
  /// already full (the accept/replace decision).
  void offer(double value, Rng& rng);

  /// Values currently held, in slot order (not sorted).
  const std::vector<double>& sample() const noexcept { return sample_; }

  /// Stream length so far.
  std::uint64_t seen() const noexcept { return seen_; }

  std::size_t capacity() const noexcept { return capacity_; }

 private:
  std::size_t capacity_;
  std::uint64_t seen_ = 0;
  std::vector<double> sample_;
};

/// One stratum of an edge flush window: a contiguous run of buffered rows
/// that arrived from the same origin (`key` is the sending node id). The
/// edge buffer records these runs as messages land, so stratified sampling
/// can keep every device represented instead of letting one chatty device
/// crowd the sample.
struct Stratum {
  std::uint32_t key = 0;    ///< origin node id of the run
  std::size_t begin = 0;    ///< first row index in the buffer
  std::size_t count = 0;    ///< rows in the run
};

/// Proportional stratified row selection over a flush window: from each
/// stratum keep ceil(rate * count) rows (at least one per non-empty
/// stratum), sampled without replacement. Returns the selected buffer row
/// indices in ascending order, so downstream integration sees rows in their
/// original arrival order. One child Rng is split per stratum, keeping the
/// per-stratum draw sequences independent of other strata's sizes.
/// Throws InvalidArgument unless rate lies in (0, 1].
std::vector<std::size_t> stratified_indices(const std::vector<Stratum>& strata,
                                            double rate, Rng& rng);

/// Stratified selection over explicit per-stratum row lists instead of
/// contiguous runs: from each non-empty list keep ceil(rate * size) entries
/// (at least one), sampled without replacement, returned merged and
/// ascending. The fleet uses this to sample only live (non-missing) rows —
/// with contiguous runs a one-row stratum whose row happens to be missing
/// contributes nothing, and since storm-compressed strata are both small
/// and value-drifted, those silent dropouts bias the window estimate.
/// Same split-per-stratum draw discipline as the contiguous overload.
/// Throws InvalidArgument unless rate lies in (0, 1].
std::vector<std::size_t> stratified_indices(
    const std::vector<std::vector<std::size_t>>& strata, double rate, Rng& rng);

}  // namespace iotml::approx
