#include "approx/confidence.hpp"

#include <cmath>

#include "util/error.hpp"

namespace iotml::approx {

Interval mean_interval(const std::vector<double>& sample,
                       std::size_t population, double z) {
  IOTML_CHECK(population == 0 || sample.size() <= population,
              "mean_interval: sample larger than population");
  Interval ci;
  ci.n = sample.size();
  ci.population = population;
  if (sample.empty()) return ci;

  double sum = 0.0;
  for (double v : sample) sum += v;
  const auto n = static_cast<double>(sample.size());
  ci.estimate = sum / n;
  if (sample.size() <= 1) return ci;

  double ss = 0.0;
  for (double v : sample) {
    const double d = v - ci.estimate;
    ss += d * d;
  }
  const double var = ss / (n - 1.0);
  double fpc = 1.0;
  if (population > 1) {
    const auto big_n = static_cast<double>(population);
    fpc = std::sqrt(std::max(0.0, (big_n - n) / (big_n - 1.0)));
  }
  ci.half_width = z * std::sqrt(var / n) * fpc;
  return ci;
}

Interval stratified_mean_interval(const std::vector<StratumSample>& strata,
                                  double z) {
  Interval ci;
  double weight_total = 0.0;
  double pooled_ss = 0.0;       // sum over strata of (n_h - 1) * s_h^2
  double pooled_df = 0.0;       // sum over strata of (n_h - 1)
  struct Part {
    double population;
    double n;
    double mean;
    double var;   ///< s_h^2, or a negative sentinel when n_h < 2
  };
  std::vector<Part> parts;
  parts.reserve(strata.size());
  for (const StratumSample& s : strata) {
    IOTML_CHECK(s.population == 0 || s.values.size() <= s.population,
                "stratified_mean_interval: sample larger than stratum");
    if (s.values.empty()) continue;
    const auto n_h = static_cast<double>(s.values.size());
    const auto big_n = static_cast<double>(
        s.population > 0 ? s.population : s.values.size());
    double sum = 0.0;
    for (double v : s.values) sum += v;
    const double mean = sum / n_h;
    double var = -1.0;
    if (s.values.size() >= 2) {
      double ss = 0.0;
      for (double v : s.values) {
        const double d = v - mean;
        ss += d * d;
      }
      var = ss / (n_h - 1.0);
      pooled_ss += ss;
      pooled_df += n_h - 1.0;
    }
    parts.push_back({big_n, n_h, mean, var});
    ci.n += s.values.size();
    ci.population += s.population > 0 ? s.population : s.values.size();
    weight_total += big_n;
  }
  if (parts.empty() || weight_total <= 0.0) return ci;

  for (const Part& p : parts) {
    ci.estimate += (p.population / weight_total) * p.mean;
  }

  // Singleton strata borrow the pooled within-stratum variance. If every
  // stratum is a singleton there is no within-stratum signal at all; fall
  // back to the variance of the singleton values around their pooled mean.
  // That folds the between-stratum spread into the width — conservative
  // (wider than the true stratified variance), never degenerate.
  double pooled_var = 0.0;
  if (pooled_df > 0.0) {
    pooled_var = pooled_ss / pooled_df;
  } else if (ci.n >= 2) {
    double sum = 0.0;
    std::size_t count = 0;
    for (const StratumSample& s : strata) {
      for (double v : s.values) {
        sum += v;
        ++count;
      }
    }
    const double mean = sum / static_cast<double>(count);
    double ss = 0.0;
    for (const StratumSample& s : strata) {
      for (double v : s.values) {
        const double d = v - mean;
        ss += d * d;
      }
    }
    pooled_var = ss / (static_cast<double>(count) - 1.0);
  }
  double variance = 0.0;
  for (const Part& p : parts) {
    const double w = p.population / weight_total;
    const double s2 = p.var >= 0.0 ? p.var : pooled_var;
    const double fpc =
        p.population > 0.0
            ? std::max(0.0, (p.population - p.n) / p.population)
            : 0.0;
    variance += w * w * fpc * s2 / p.n;
  }
  ci.half_width = z * std::sqrt(std::max(0.0, variance));
  return ci;
}

}  // namespace iotml::approx
