#include "approx/sketch.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/error.hpp"

namespace iotml::approx {
namespace {

// splitmix64 finalizer: cheap, well-mixed 64-bit hash used for both the
// count-min row functions and the quantile rank. Not cryptographic — the
// determinism contract only needs seed-keyed uniformity.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

}  // namespace

CountMinSketch::CountMinSketch(std::size_t width, std::size_t depth,
                               std::uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  IOTML_CHECK(width >= 1, "CountMinSketch: width must be >= 1");
  IOTML_CHECK(depth >= 1, "CountMinSketch: depth must be >= 1");
  counters_.assign(width_ * depth_, 0);
}

std::size_t CountMinSketch::row_index(std::size_t row, std::uint64_t key) const {
  const std::uint64_t h = mix64(key ^ mix64(seed_ + row));
  return static_cast<std::size_t>(h % width_);
}

void CountMinSketch::add(std::uint64_t key, std::uint64_t count) {
  for (std::size_t row = 0; row < depth_; ++row) {
    counters_[row * width_ + row_index(row, key)] += count;
  }
  total_ += count;
}

std::uint64_t CountMinSketch::estimate(std::uint64_t key) const {
  std::uint64_t best = counters_[row_index(0, key)];
  for (std::size_t row = 1; row < depth_; ++row) {
    best = std::min(best, counters_[row * width_ + row_index(row, key)]);
  }
  return best;
}

void CountMinSketch::merge(const CountMinSketch& other) {
  IOTML_CHECK(other.width_ == width_ && other.depth_ == depth_ &&
                  other.seed_ == seed_,
              "CountMinSketch::merge: incompatible sketch shape or seed");
  for (std::size_t i = 0; i < counters_.size(); ++i) {
    counters_[i] += other.counters_[i];
  }
  total_ += other.total_;
}

double CountMinSketch::epsilon() const noexcept {
  return std::exp(1.0) / static_cast<double>(width_);
}

std::vector<std::uint8_t> CountMinSketch::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(32 + counters_.size() * 8);
  put_u64(out, static_cast<std::uint64_t>(width_));
  put_u64(out, static_cast<std::uint64_t>(depth_));
  put_u64(out, seed_);
  put_u64(out, total_);
  for (std::uint64_t c : counters_) put_u64(out, c);
  return out;
}

QuantileSketch::QuantileSketch(std::size_t capacity, std::uint64_t seed)
    : capacity_(capacity), seed_(seed) {
  IOTML_CHECK(capacity >= 1, "QuantileSketch: capacity must be >= 1");
  entries_.reserve(capacity + 1);
}

void QuantileSketch::add(std::uint64_t key, double value) {
  Entry e;
  e.rank = mix64(seed_ ^ key);
  std::memcpy(&e.value_bits, &value, sizeof(e.value_bits));
  e.key = key;
  const auto less = [](const Entry& a, const Entry& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    if (a.value_bits != b.value_bits) return a.value_bits < b.value_bits;
    return a.key < b.key;
  };
  entries_.insert(std::upper_bound(entries_.begin(), entries_.end(), e, less), e);
  ++count_;
  truncate();
}

void QuantileSketch::truncate() {
  if (entries_.size() > capacity_) entries_.resize(capacity_);
}

void QuantileSketch::merge(const QuantileSketch& other) {
  IOTML_CHECK(other.capacity_ == capacity_ && other.seed_ == seed_,
              "QuantileSketch::merge: incompatible sketch shape or seed");
  std::vector<Entry> merged;
  merged.reserve(entries_.size() + other.entries_.size());
  const auto less = [](const Entry& a, const Entry& b) {
    if (a.rank != b.rank) return a.rank < b.rank;
    if (a.value_bits != b.value_bits) return a.value_bits < b.value_bits;
    return a.key < b.key;
  };
  std::merge(entries_.begin(), entries_.end(), other.entries_.begin(),
             other.entries_.end(), std::back_inserter(merged), less);
  entries_ = std::move(merged);
  count_ += other.count_;
  truncate();
}

double QuantileSketch::quantile(double q) const {
  IOTML_CHECK(!entries_.empty(), "QuantileSketch::quantile: empty sketch");
  std::vector<double> values = sample_values();
  std::sort(values.begin(), values.end());
  const double clamped = std::min(1.0, std::max(0.0, q));
  const auto idx = static_cast<std::size_t>(
      clamped * static_cast<double>(values.size() - 1) + 0.5);
  return values[idx];
}

std::vector<double> QuantileSketch::sample_values() const {
  std::vector<double> values;
  values.reserve(entries_.size());
  for (const Entry& e : entries_) {
    double v = 0.0;
    std::memcpy(&v, &e.value_bits, sizeof(v));
    values.push_back(v);
  }
  return values;
}

std::vector<std::uint8_t> QuantileSketch::encode() const {
  std::vector<std::uint8_t> out;
  out.reserve(32 + entries_.size() * 24);
  put_u64(out, static_cast<std::uint64_t>(capacity_));
  put_u64(out, seed_);
  put_u64(out, count_);
  put_u64(out, static_cast<std::uint64_t>(entries_.size()));
  for (const Entry& e : entries_) {
    put_u64(out, e.rank);
    put_u64(out, e.value_bits);
    put_u64(out, e.key);
  }
  return out;
}

}  // namespace iotml::approx
