#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace iotml::approx {

/// z-score for a two-sided 95% normal confidence interval.
inline constexpr double kZ95 = 1.959963984540054;

/// A normal-approximation confidence interval around a sampled estimate.
/// `population` records the window size the sample was drawn from (0 when
/// unknown); when n == population the interval collapses to a point.
struct Interval {
  double estimate = 0.0;
  double half_width = 0.0;
  std::size_t n = 0;           ///< sample size behind the estimate
  std::size_t population = 0;  ///< rows in the window the sample represents

  double lo() const noexcept { return estimate - half_width; }
  double hi() const noexcept { return estimate + half_width; }
  bool covers(double exact) const noexcept {
    // Slack absorbs float summation-order rounding, not statistics: a
    // census interval (n == population) is a zero-width point whose
    // estimate may differ from an exact mean computed in a different
    // accumulation order by a few ulps.
    const double slack = 1e-12 * (1.0 + std::abs(exact));
    return exact >= lo() - slack && exact <= hi() + slack;
  }
};

/// CI on the mean of `sample` taken without replacement from a window of
/// `population` rows: half-width = z * s/sqrt(n) * fpc, with the finite-
/// population correction fpc = sqrt((N - n) / (N - 1)). With n <= 1 the
/// interval is degenerate (half_width 0, a point estimate at best).
/// Throws InvalidArgument when population > 0 and sample.size() > population.
Interval mean_interval(const std::vector<double>& sample,
                       std::size_t population, double z = kZ95);

/// One stratum's contribution to a stratified window estimate: how many
/// rows the stratum holds in the full window and the values actually
/// sampled from it.
struct StratumSample {
  std::size_t population = 0;   ///< rows of this stratum in the full window
  std::vector<double> values;   ///< values sampled from the stratum
};

/// CI on the population mean from a stratified sample with per-stratum
/// weighting: estimate = sum_h (N_h / N) * mean(sample_h). The per-stratum
/// sampler rounds its draw up (ceil(rate * N_h), floor 1), so small strata
/// carry higher sampling fractions than large ones — a pooled unweighted
/// mean is biased whenever value correlates with stratum size, which is
/// exactly the load-storm shape (compressed flushes are small, late, and
/// drifted). Weighting by N_h restores unbiasedness.
///
/// Variance is the standard stratified form sum_h W_h^2 (1 - f_h) s_h^2 / n_h
/// with per-stratum fpc; strata too small to estimate s_h^2 (n_h < 2) borrow
/// the pooled within-stratum variance, and when every stratum is a
/// singleton the variance of the singleton values around their pooled mean
/// stands in (conservative — it folds the between-stratum spread into the
/// width). Strata with no sampled values are excluded from both the
/// estimate and the weight total. A census (every
/// stratum fully sampled) collapses to a zero-width point at the exact mean.
/// Throws InvalidArgument when any stratum samples more values than its
/// population.
Interval stratified_mean_interval(const std::vector<StratumSample>& strata,
                                  double z = kZ95);

}  // namespace iotml::approx
