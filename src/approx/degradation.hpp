#pragma once

#include <array>
#include <cstddef>
#include <vector>

namespace iotml::approx {

/// The four rungs of the graceful-degradation ladder. Higher levels trade
/// accuracy for edge-side cost and uplink bytes; every level still closes
/// the row-conservation ledger.
enum class DegradeLevel : int {
  kExact = 0,    ///< L0: full integration + pipeline, rows uplinked
  kSampled = 1,  ///< L1: stratified sample integrated, rest sampled out
  kSketch = 2,   ///< L2: sketch-only reduce, summary-only uplink
  kSummary = 3,  ///< L3: stale artifact + count-only summary uplink
};

const char* degrade_level_name(DegradeLevel level) noexcept;

/// Normalized backpressure signals an edge observes on the virtual clock.
/// The caller scales each so 1.0 means "at the reference saturation point";
/// the controller takes the max as its composite pressure, so any one
/// saturated signal is enough to climb the ladder.
struct DegradeSignals {
  double queue_fraction = 0.0;    ///< uplink in-flight depth / queue capacity
  double dead_letter_rate = 0.0;  ///< dead-letter growth vs reference rate
  double sf_occupancy = 0.0;      ///< store-and-forward rows / capacity
  double checkpoint_lag = 0.0;    ///< rows past last checkpoint / reference

  double pressure() const noexcept;
};

/// Hysteresis bands for the ladder. up[i] is the pressure at which the
/// controller jumps from level <= i to at least level i+1 (evaluated
/// highest first, so a big spike can jump straight to L3). down[i] is the
/// band the pressure must stay below, continuously for dwell_s, before the
/// controller steps down ONE level from i+1. up[i] > down[i] keeps a noisy
/// pressure signal from flapping across a boundary.
struct DegradeThresholds {
  std::array<double, 3> up{0.75, 1.5, 3.0};
  std::array<double, 3> down{0.35, 0.75, 1.5};
  double dwell_s = 4.0;
};

/// One ledgered ladder move.
struct LevelTransition {
  double t_s = 0.0;
  DegradeLevel from = DegradeLevel::kExact;
  DegradeLevel to = DegradeLevel::kExact;
};

/// Per-edge hysteresis state machine over the 4-level ladder. Driven
/// entirely by update() calls on the virtual clock — it never reads a real
/// clock — so transitions are deterministic per event schedule. Escalation
/// is immediate (pressure crossing up[i] jumps to the highest indicated
/// level); de-escalation requires pressure to sit below the current
/// level's down band for a full dwell window and then descends a single
/// level, restarting the dwell for the next step. A pinned controller
/// (pin_level >= 0) never moves — L0-pinned runs are the byte-identity
/// baseline.
class DegradationController {
 public:
  /// Throws InvalidArgument unless thresholds are ordered (up strictly
  /// increasing, down[i] < up[i], dwell_s > 0) and pin_level is in [-1, 3].
  explicit DegradationController(const DegradeThresholds& thresholds,
                                 int pin_level = -1);

  /// Feed one observation at virtual time now_s (must be non-decreasing
  /// across calls; throws InvalidArgument otherwise). Returns the level in
  /// force after the observation.
  DegradeLevel update(double now_s, const DegradeSignals& signals);

  DegradeLevel level() const noexcept { return level_; }
  bool pinned() const noexcept { return pin_level_ >= 0; }

  const std::vector<LevelTransition>& transitions() const noexcept {
    return transitions_;
  }

  /// Virtual seconds spent at each level so far (updated lazily on
  /// update(); call update() at end-of-run to close the books).
  const std::array<double, 4>& time_at_level() const noexcept {
    return time_at_level_;
  }

 private:
  void move_to(double now_s, DegradeLevel to);

  DegradeThresholds thresholds_;
  int pin_level_;
  DegradeLevel level_ = DegradeLevel::kExact;
  double last_update_s_ = 0.0;
  double calm_since_s_ = 0.0;  ///< when pressure last dropped below the band
  bool calm_ = false;
  std::array<double, 4> time_at_level_{0.0, 0.0, 0.0, 0.0};
  std::vector<LevelTransition> transitions_;
};

}  // namespace iotml::approx
