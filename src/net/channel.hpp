#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/link.hpp"
#include "util/rng.hpp"

namespace iotml::net {

/// How a channel moves a payload across its link.
enum class ChannelMode {
  kFireAndForget,  ///< legacy: link-level retransmits, no acks, no queue redo
  kAckRetry        ///< stop-and-wait ack with exponential backoff + checksums
};

std::string channel_mode_name(ChannelMode mode);

/// Policy of one reliable channel. All times are virtual seconds.
struct ChannelParams {
  ChannelMode mode = ChannelMode::kFireAndForget;
  double ack_timeout_s = 0.25;       ///< grace past the attempt before a timeout
  double backoff_base_s = 0.05;      ///< first retransmit wait
  double backoff_cap_s = 2.0;        ///< backoff ceiling
  double backoff_jitter = 0.2;       ///< wait *= 1 + uniform[0, jitter) (seeded)
  std::size_t max_attempts = 4;      ///< total payload transmissions (>= 1)
  std::size_t queue_capacity = 64;   ///< bounded in-flight sends (backpressure)
};

/// Channel counters, aggregated into FleetReport::channels and mirrored as
/// net.channel.* obs counters.
struct ChannelStats {
  std::uint64_t sends = 0;            ///< payloads accepted onto the queue
  std::uint64_t delivered = 0;        ///< payloads that reached the receiver
  std::uint64_t acks = 0;             ///< ack frames that made it back
  std::uint64_t timeouts = 0;         ///< attempts that expired unacknowledged
  std::uint64_t retransmits = 0;      ///< payload re-sends after a timeout
  std::uint64_t backoff_waits = 0;    ///< backoff sleeps taken
  double backoff_wait_s = 0.0;        ///< total virtual time spent backing off
  std::uint64_t dead_letters = 0;     ///< sends refused by a full queue
  std::uint64_t corrupt_rejected = 0; ///< frames discarded on checksum mismatch
};

/// Outcome of one Channel::send, computed at send time like Link::transmit.
struct ChannelOutcome {
  bool accepted = false;      ///< false: dead-lettered by backpressure
  bool delivered = false;     ///< payload reached the receiver intact
  bool corrupted = false;     ///< delivered but checksum-rejected (FF mode only)
  double arrival_s = 0.0;     ///< first intact arrival (delivered only)
  bool duplicated = false;    ///< link-level straggler copy exists
  double duplicate_arrival_s = 0.0;
  std::size_t attempts = 0;   ///< payload transmissions made
};

/// A reliable(-able) transport over one Link. In kFireAndForget mode it is a
/// thin veneer over Link::transmit, preserving the legacy byte-identical
/// behaviour. In kAckRetry mode the channel owns the retry policy: each
/// payload attempt is a single wire try, the receiver checks the payload
/// checksum and acks intact frames over the reverse path (modelled with the
/// same loss probability), and the sender retransmits after a timeout with
/// capped exponential backoff and deterministic seeded jitter. Corrupt
/// frames are therefore *repaired* by ack mode and merely *detected* (and
/// rejected) in fire-and-forget mode. A bounded in-flight queue applies
/// backpressure: sends beyond `queue_capacity` are dead-lettered without
/// touching the wire. All simulator traffic goes through this API — direct
/// Link transmits outside src/net/ are banned by lint rule R8.
class Channel {
 public:
  /// Throws InvalidArgument unless max_attempts >= 1, queue_capacity >= 1,
  /// ack_timeout/backoffs are non-negative and backoff_jitter is in [0, 1].
  Channel(Link& link, ChannelParams params);

  const Link& link() const noexcept { return *link_; }
  const ChannelParams& params() const noexcept { return params_; }
  const ChannelStats& stats() const noexcept { return stats_; }
  ChannelMode mode() const noexcept { return params_.mode; }

  /// Sends still occupying the channel (wire time not yet elapsed) at `now_s`.
  std::size_t in_flight(double now_s) const;

  /// Deepest the in-flight queue has ever been, measured right after each
  /// accepted send. A backpressure watermark: high-water near
  /// `queue_capacity` means the channel has been skirting dead-letter
  /// territory even if nothing was refused yet.
  std::size_t in_flight_highwater() const noexcept { return in_flight_highwater_; }

  /// Lifetime dead-letter count (sends refused by the bounded queue) —
  /// convenience mirror of stats().dead_letters for ladder controllers.
  std::uint64_t dead_letters() const noexcept { return stats_.dead_letters; }

  /// Move `bytes` across the link at `now_s`. Deterministic given the Rng
  /// state; updates channel stats, the link's stats and net.channel.*
  /// counters.
  ChannelOutcome send(double now_s, std::size_t bytes, Rng& rng);

 private:
  ChannelOutcome send_ack_retry(double now_s, std::size_t bytes, Rng& rng);

  Link* link_;
  ChannelParams params_;
  ChannelStats stats_;
  std::vector<double> completion_s_;  ///< in-flight send completion times
  std::size_t in_flight_highwater_ = 0;
};

}  // namespace iotml::net
