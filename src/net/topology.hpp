#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/link.hpp"
#include "pipeline/stage.hpp"

namespace iotml::net {

using NodeId = std::size_t;

/// One node of the fleet topology. `up` is toggled by device-churn fault
/// events; a device that is down at flush time loses that window's data.
struct NodeInfo {
  NodeId id = 0;
  std::string name;
  pipeline::Tier tier = pipeline::Tier::kDevice;
  bool up = true;
};

/// The paper's Fig. 1 topology as a graph: N devices at the periphery, each
/// uplinked to one of M edge nodes, every edge uplinked to the single core.
/// Node ids are assigned contiguously — devices [0, N), edges [N, N+M),
/// core N+M — so per-node simulator state can live in flat vectors.
class Topology {
 public:
  /// Build the fleet star-of-stars. Device i uplinks to edge (i mod M).
  /// Throws InvalidArgument unless 1 <= n_edges <= n_devices.
  static Topology fleet(std::size_t n_devices, std::size_t n_edges,
                        const LinkParams& device_edge, const LinkParams& edge_core);

  std::size_t num_devices() const noexcept { return n_devices_; }
  std::size_t num_edges() const noexcept { return n_edges_; }
  std::size_t num_nodes() const noexcept { return nodes_.size(); }
  std::size_t num_links() const noexcept { return links_.size(); }

  /// Node id of the i-th device / j-th edge / the core. The index-based
  /// accessors throw InvalidArgument when out of range.
  NodeId device(std::size_t i) const;
  NodeId edge(std::size_t j) const;
  NodeId core() const noexcept { return n_devices_ + n_edges_; }

  /// Throws InvalidArgument when `id` is out of range.
  NodeInfo& node(NodeId id);
  const NodeInfo& node(NodeId id) const;

  /// Throws InvalidArgument when `index` is out of range.
  Link& link(std::size_t index);
  const Link& link(std::size_t index) const;

  /// The uplink carrying a node's traffic toward the core. Throws
  /// InvalidArgument for the core itself (it has no uplink).
  Link& uplink(NodeId from);
  std::size_t uplink_index(NodeId from) const;
  NodeId next_hop(NodeId from) const;

  /// Materialize the broadcast direction: one edge->device link per device
  /// and one core->edge link per edge. Downlinks are appended *after* every
  /// uplink, so existing link indices (and any per-index RNG assignment)
  /// are untouched. Built on demand because pre-deployment fleets only ever
  /// send toward the core. Throws InvalidArgument on a second call.
  void add_downlinks(const LinkParams& edge_device, const LinkParams& core_edge);
  bool has_downlinks() const noexcept { return has_downlinks_; }

  /// The downlink carrying broadcast traffic *to* a device or edge node.
  /// Throws InvalidArgument before add_downlinks() or for the core (nothing
  /// is broadcast to the core).
  Link& downlink(NodeId to);
  std::size_t downlink_index(NodeId to) const;

 private:
  std::vector<NodeInfo> nodes_;
  std::vector<Link> links_;
  std::vector<std::size_t> uplink_of_;  ///< per node; npos for the core
  std::vector<std::size_t> downlink_of_;  ///< per node; npos until materialized
  std::vector<NodeId> next_hop_;
  std::size_t n_devices_ = 0;
  std::size_t n_edges_ = 0;
  bool has_downlinks_ = false;

  static constexpr std::size_t kNoLink = static_cast<std::size_t>(-1);
};

}  // namespace iotml::net
