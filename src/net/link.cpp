#include "net/link.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace iotml::net {

Link::Link(std::string name, LinkParams params)
    : name_(std::move(name)), params_(params) {
  IOTML_CHECK(!name_.empty(), "Link: empty name");
  IOTML_CHECK(params.bandwidth_bytes_per_s > 0.0, "Link: bandwidth must be positive");
  IOTML_CHECK(params.latency_s >= 0.0, "Link: negative latency");
  IOTML_CHECK(params.jitter_s >= 0.0, "Link: negative jitter");
  IOTML_CHECK(params.retry_backoff_s >= 0.0, "Link: negative retry backoff");
  IOTML_CHECK(params.retry_backoff_cap_s >= 0.0, "Link: negative retry backoff cap");
  IOTML_CHECK(params.drop_prob >= 0.0 && params.drop_prob <= 1.0,
              "Link: drop_prob outside [0, 1]");
  IOTML_CHECK(params.corrupt_prob >= 0.0 && params.corrupt_prob <= 1.0,
              "Link: corrupt_prob outside [0, 1]");
  IOTML_CHECK(params.duplicate_prob >= 0.0 && params.duplicate_prob <= 1.0,
              "Link: duplicate_prob outside [0, 1]");
}

void Link::set_drop_prob(double p) {
  IOTML_CHECK(p >= 0.0 && p <= 1.0, "Link::set_drop_prob: outside [0, 1]");
  params_.drop_prob = p;
}

void Link::set_corrupt_prob(double p) {
  IOTML_CHECK(p >= 0.0 && p <= 1.0, "Link::set_corrupt_prob: outside [0, 1]");
  params_.corrupt_prob = p;
}

void Link::record_delivery(std::size_t bytes) noexcept {
  ++stats_.messages;
  stats_.bytes += bytes;
}

Attempt Link::try_transmit(double now_s, std::size_t bytes, Rng& rng) {
  Attempt attempt;
  const double tx_s = static_cast<double>(bytes) / params_.bandwidth_bytes_per_s;
  const double start_s = std::max(now_s, busy_until_s_);
  attempt.done_s = start_s + tx_s;
  busy_until_s_ = attempt.done_s;
  if (rng.bernoulli(params_.drop_prob)) return attempt;
  attempt.delivered = true;
  double arrival_s = attempt.done_s + params_.latency_s;
  if (params_.jitter_s > 0.0) arrival_s += rng.uniform(0.0, params_.jitter_s);
  attempt.arrival_s = arrival_s;
  if (params_.corrupt_prob > 0.0 && rng.bernoulli(params_.corrupt_prob)) {
    attempt.corrupted = true;
    ++stats_.corrupted;
  }
  return attempt;
}

Delivery Link::transmit(double now_s, std::size_t bytes, Rng& rng) {
  Delivery delivery;
  if (!up_) {
    ++stats_.drops;
    return delivery;
  }
  double start_s = now_s;
  for (std::size_t attempt = 0; attempt <= params_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++stats_.retransmits;
      ++delivery.retransmits;
    }
    const Attempt wire = try_transmit(start_s, bytes, rng);
    if (wire.delivered) {
      delivery.delivered = true;
      delivery.corrupted = wire.corrupted;
      delivery.arrival_s = wire.arrival_s;
      ++stats_.messages;
      stats_.bytes += bytes;
      if (params_.duplicate_prob > 0.0 && rng.bernoulli(params_.duplicate_prob)) {
        // A straggler copy one extra propagation delay behind the original —
        // the receiver is expected to deduplicate by message id.
        delivery.duplicated = true;
        delivery.duplicate_arrival_s = wire.arrival_s + params_.latency_s;
        ++stats_.duplicates;
      }
      return delivery;
    }
    // Capped exponential backoff: retry k waits base * 2^k, never more than
    // the cap (clamped to at least the base so a small cap cannot shrink the
    // first wait) — a lossy wire must not be hammered at a fixed cadence.
    const double cap_s = std::max(params_.retry_backoff_cap_s, params_.retry_backoff_s);
    const double backoff_s = std::min(
        params_.retry_backoff_s *
            static_cast<double>(std::uint64_t{1} << std::min<std::size_t>(attempt, 32)),
        cap_s);
    start_s = wire.done_s + backoff_s;
  }
  ++stats_.drops;
  return delivery;
}

}  // namespace iotml::net
