#include "net/link.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace iotml::net {

Link::Link(std::string name, LinkParams params)
    : name_(std::move(name)), params_(params) {
  IOTML_CHECK(!name_.empty(), "Link: empty name");
  IOTML_CHECK(params.bandwidth_bytes_per_s > 0.0, "Link: bandwidth must be positive");
  IOTML_CHECK(params.latency_s >= 0.0, "Link: negative latency");
  IOTML_CHECK(params.jitter_s >= 0.0, "Link: negative jitter");
  IOTML_CHECK(params.retry_backoff_s >= 0.0, "Link: negative retry backoff");
  IOTML_CHECK(params.drop_prob >= 0.0 && params.drop_prob <= 1.0,
              "Link: drop_prob outside [0, 1]");
  IOTML_CHECK(params.duplicate_prob >= 0.0 && params.duplicate_prob <= 1.0,
              "Link: duplicate_prob outside [0, 1]");
}

Delivery Link::transmit(double now_s, std::size_t bytes, Rng& rng) {
  Delivery delivery;
  if (!up_) {
    ++stats_.drops;
    return delivery;
  }
  const double tx_s = static_cast<double>(bytes) / params_.bandwidth_bytes_per_s;
  double start_s = std::max(now_s, busy_until_s_);
  for (std::size_t attempt = 0; attempt <= params_.max_retries; ++attempt) {
    if (attempt > 0) {
      ++stats_.retransmits;
      ++delivery.retransmits;
    }
    const double done_s = start_s + tx_s;
    busy_until_s_ = done_s;
    if (!rng.bernoulli(params_.drop_prob)) {
      double arrival_s = done_s + params_.latency_s;
      if (params_.jitter_s > 0.0) arrival_s += rng.uniform(0.0, params_.jitter_s);
      delivery.delivered = true;
      delivery.arrival_s = arrival_s;
      ++stats_.messages;
      stats_.bytes += bytes;
      if (params_.duplicate_prob > 0.0 && rng.bernoulli(params_.duplicate_prob)) {
        // A straggler copy one extra propagation delay behind the original —
        // the receiver is expected to deduplicate by message id.
        delivery.duplicated = true;
        delivery.duplicate_arrival_s = arrival_s + params_.latency_s;
        ++stats_.duplicates;
      }
      return delivery;
    }
    start_s = done_s + params_.retry_backoff_s;
  }
  ++stats_.drops;
  return delivery;
}

}  // namespace iotml::net
