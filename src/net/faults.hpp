#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace iotml::net {

/// What a scheduled fault does when its time comes. Churn (device down/up)
/// silences a node but keeps its memory; a crash (edge/core) additionally
/// wipes volatile state — an edge restart recovers only what its last
/// checkpoint persisted (see DESIGN.md §11).
enum class FaultKind {
  kLinkDown,
  kLinkUp,
  kDeviceDown,
  kDeviceUp,
  kEdgeCrash,    ///< target = edge index; buffer lost past the checkpoint
  kEdgeRestart,  ///< target = edge index; buffer restored from checkpoint
  kCoreCrash,    ///< core unreachable; edges hold and serve stale artifacts
  kCoreRestart
};

std::string fault_kind_name(FaultKind kind);

/// One scheduled fault. `target` is a link index for link faults, a node
/// id for device churn and an edge index for edge crashes.
struct Fault {
  double time_s = 0.0;
  FaultKind kind = FaultKind::kLinkDown;
  std::size_t target = 0;
};

/// Intensity of the injected faults, expressed per entity over the whole
/// simulated window so the same params mean the same stress at any duration.
struct FaultParams {
  double link_outages = 0.0;          ///< expected outages per link
  double link_outage_mean_s = 5.0;    ///< mean outage length (exponential)
  double device_churns = 0.0;         ///< expected offline periods per device
  double device_offtime_mean_s = 10.0;
  double edge_crashes = 0.0;          ///< expected crash-restart cycles per edge
  double edge_downtime_mean_s = 5.0;
  double core_crashes = 0.0;          ///< expected crash-restart cycles of the core
  double core_downtime_mean_s = 5.0;
};

/// Sample a reproducible fault plan over [0, duration_s): exponential
/// inter-arrival times per link/device/edge (and the core), exponential
/// outage lengths, every down/crash paired with its up/restart. Sorted by
/// (time, kind, target). Throws InvalidArgument unless duration_s > 0 and
/// the rates and mean durations are non-negative (a zero rate simply
/// injects nothing).
std::vector<Fault> make_fault_plan(const Topology& topo, const FaultParams& params,
                                   double duration_s, Rng& rng);

}  // namespace iotml::net
