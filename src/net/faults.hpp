#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace iotml::net {

/// What a scheduled fault does when its time comes.
enum class FaultKind { kLinkDown, kLinkUp, kDeviceDown, kDeviceUp };

std::string fault_kind_name(FaultKind kind);

/// One scheduled fault. `target` is a link index for link faults and a node
/// id for device churn.
struct Fault {
  double time_s = 0.0;
  FaultKind kind = FaultKind::kLinkDown;
  std::size_t target = 0;
};

/// Intensity of the injected faults, expressed per entity over the whole
/// simulated window so the same params mean the same stress at any duration.
struct FaultParams {
  double link_outages = 0.0;          ///< expected outages per link
  double link_outage_mean_s = 5.0;    ///< mean outage length (exponential)
  double device_churns = 0.0;         ///< expected offline periods per device
  double device_offtime_mean_s = 10.0;
};

/// Sample a reproducible fault plan over [0, duration_s): exponential
/// inter-arrival times per link/device, exponential outage lengths, every
/// down paired with its up. Sorted by (time, kind, target). Throws
/// InvalidArgument unless duration_s > 0 and the rates and mean durations
/// are non-negative (a zero rate simply injects nothing).
std::vector<Fault> make_fault_plan(const Topology& topo, const FaultParams& params,
                                   double duration_s, Rng& rng);

}  // namespace iotml::net
