#include "net/faults.hpp"

#include <algorithm>
#include <tuple>

#include "util/error.hpp"

namespace iotml::net {

std::string fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link-down";
    case FaultKind::kLinkUp: return "link-up";
    case FaultKind::kDeviceDown: return "device-down";
    case FaultKind::kDeviceUp: return "device-up";
    case FaultKind::kEdgeCrash: return "edge-crash";
    case FaultKind::kEdgeRestart: return "edge-restart";
    case FaultKind::kCoreCrash: return "core-crash";
    case FaultKind::kCoreRestart: return "core-restart";
  }
  return "?";
}

namespace {

/// Sample alternating down/up pairs for one entity over [0, duration_s).
void sample_outages(std::vector<Fault>& plan, double expected_outages,
                    double mean_outage_s, double duration_s, FaultKind down,
                    FaultKind up, std::size_t target, Rng& rng) {
  if (expected_outages <= 0.0 || mean_outage_s <= 0.0) return;
  const double arrival_rate = expected_outages / duration_s;
  double t = rng.exponential(arrival_rate);
  while (t < duration_s) {
    const double outage_s = rng.exponential(1.0 / mean_outage_s);
    plan.push_back({t, down, target});
    // The up event may land past the window end; the scheduler still
    // processes it, which keeps every down paired with an up.
    plan.push_back({t + outage_s, up, target});
    t += outage_s + rng.exponential(arrival_rate);
  }
}

}  // namespace

std::vector<Fault> make_fault_plan(const Topology& topo, const FaultParams& params,
                                   double duration_s, Rng& rng) {
  IOTML_CHECK(duration_s > 0.0, "make_fault_plan: duration must be positive");
  IOTML_CHECK(params.link_outages >= 0.0 && params.device_churns >= 0.0 &&
                  params.edge_crashes >= 0.0 && params.core_crashes >= 0.0,
              "make_fault_plan: negative fault rate");
  IOTML_CHECK(params.link_outage_mean_s >= 0.0 && params.device_offtime_mean_s >= 0.0 &&
                  params.edge_downtime_mean_s >= 0.0 && params.core_downtime_mean_s >= 0.0,
              "make_fault_plan: negative outage duration");
  std::vector<Fault> plan;
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    sample_outages(plan, params.link_outages, params.link_outage_mean_s, duration_s,
                   FaultKind::kLinkDown, FaultKind::kLinkUp, l, rng);
  }
  for (std::size_t d = 0; d < topo.num_devices(); ++d) {
    sample_outages(plan, params.device_churns, params.device_offtime_mean_s, duration_s,
                   FaultKind::kDeviceDown, FaultKind::kDeviceUp, topo.device(d), rng);
  }
  for (std::size_t e = 0; e < topo.num_edges(); ++e) {
    sample_outages(plan, params.edge_crashes, params.edge_downtime_mean_s, duration_s,
                   FaultKind::kEdgeCrash, FaultKind::kEdgeRestart, e, rng);
  }
  sample_outages(plan, params.core_crashes, params.core_downtime_mean_s, duration_s,
                 FaultKind::kCoreCrash, FaultKind::kCoreRestart, 0, rng);
  std::stable_sort(plan.begin(), plan.end(), [](const Fault& a, const Fault& b) {
    return std::tie(a.time_s, a.kind, a.target) < std::tie(b.time_s, b.kind, b.target);
  });
  return plan;
}

}  // namespace iotml::net
