#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "data/dataset.hpp"

namespace iotml::net {

/// Fixed per-message framing overhead (ids, addresses, timestamps). The
/// trace context (8-byte trace id + 2-byte hop index, see TraceContext)
/// rides inside this allowance — real telemetry headers pack alongside the
/// addressing fields, so tracing adds no marginal wire cost and enabling it
/// changes no simulated number.
inline constexpr std::size_t kMessageHeaderBytes = 24;

/// Causal trace tag carried on every message. `id` names this frame in the
/// journey log; `hop` counts wire hops from the stream's originator (0 for
/// device->edge uplink or core->edge downlink, 1 for the second hop).
/// Retransmits of a frame keep its context — a retry is the same causal
/// step, just a later attempt.
struct TraceContext {
  std::uint64_t id = 0;
  std::uint16_t hop = 0;
};

/// On-the-wire byte cost of a TraceContext (id + hop), accounted inside
/// kMessageHeaderBytes.
inline constexpr std::size_t kTraceContextBytes = 10;
static_assert(kTraceContextBytes < kMessageHeaderBytes,
              "trace context must fit inside the fixed header allowance");

/// One dataset chunk in flight between tiers. Payloads are moved, never
/// copied per hop; `origin_s` carries the virtual creation time of every
/// device chunk folded into the payload, so the core can account a full
/// end-to-end latency distribution even after edge-side batching.
struct Message {
  std::uint64_t id = 0;
  std::size_t src = 0;
  std::size_t dst = 0;
  double sent_s = 0.0;
  std::uint64_t checksum = 0;  ///< payload_checksum() stamped at send time
  TraceContext trace;          ///< causal tag, preserved across retries
  std::vector<double> origin_s;
  data::Dataset payload;

  /// When non-empty, this message's rows crossed the wire as an encoded
  /// TDF telemetry frame (src/tdf/) instead of the abstract payload model:
  /// the link is charged header + frame bytes (origins ride inside the
  /// frame), and the receiver decodes the frame back to rows. `payload`
  /// then holds the device-encoded rows the decode must reproduce
  /// byte-for-byte — simulator-side ground truth, not wire bytes.
  std::vector<std::uint8_t> tdf_frame;
};

/// FNV-1a over the payload's shape, column names, presence bitmap, labels
/// and cell bits. Senders stamp Message::checksum with this; receivers
/// recompute and reject any frame whose stored and recomputed sums differ —
/// a corrupted payload is detected, never silently scored.
std::uint64_t payload_checksum(const data::Dataset& ds);

/// Serialization cost model for a dataset on the wire: a small per-column
/// header (name + type tag), 8 bytes per numeric cell, 2 bytes per
/// categorical cell (dictionary index), and a presence bitmap of one bit
/// per cell. NaN-valued numeric cells are charged as missing (bitmap bit
/// only) — the real telemetry codec normalizes NaN readings to missing on
/// the wire, and the counterfactual ledger must compare like with like.
/// This is what a compact row-batch encoding costs, and it is what the
/// link bandwidth model charges.
std::size_t wire_size_bytes(const data::Dataset& ds);

/// Full wire size of a message: header + payload + 8 bytes per origin
/// stamp — or header + encoded frame when the message carries a TDF frame
/// (whose origins ride inside it).
std::size_t wire_size_bytes(const Message& m);

}  // namespace iotml::net
