#include "net/channel.hpp"

#include <algorithm>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace iotml::net {

std::string channel_mode_name(ChannelMode mode) {
  switch (mode) {
    case ChannelMode::kFireAndForget: return "fire-and-forget";
    case ChannelMode::kAckRetry: return "ack-retry";
  }
  return "?";
}

Channel::Channel(Link& link, ChannelParams params) : link_(&link), params_(params) {
  IOTML_CHECK(params.max_attempts >= 1, "Channel: max_attempts must be >= 1");
  IOTML_CHECK(params.queue_capacity >= 1, "Channel: queue_capacity must be >= 1");
  IOTML_CHECK(params.ack_timeout_s >= 0.0, "Channel: negative ack timeout");
  IOTML_CHECK(params.backoff_base_s >= 0.0 && params.backoff_cap_s >= 0.0,
              "Channel: negative backoff");
  IOTML_CHECK(params.backoff_jitter >= 0.0 && params.backoff_jitter <= 1.0,
              "Channel: backoff_jitter outside [0, 1]");
}

std::size_t Channel::in_flight(double now_s) const {
  std::size_t n = 0;
  for (double done : completion_s_) {
    if (done > now_s) ++n;
  }
  return n;
}

ChannelOutcome Channel::send(double now_s, std::size_t bytes, Rng& rng) {
  // Backpressure: prune finished sends, then refuse (dead-letter) when the
  // bounded queue is full — the caller decides whether to buffer or drop.
  // Fire-and-forget has no queue to fill: the legacy sender blasts onto the
  // medium without tracking outstanding sends, which is exactly its failure
  // mode, so the bound applies only to the reliable mode.
  completion_s_.erase(
      std::remove_if(completion_s_.begin(), completion_s_.end(),
                     [now_s](double done) { return done <= now_s; }),
      completion_s_.end());
  ChannelOutcome outcome;
  if (params_.mode == ChannelMode::kAckRetry &&
      completion_s_.size() >= params_.queue_capacity) {
    ++stats_.dead_letters;
    obs::registry().counter("net.channel.dead_letters").add();
    return outcome;
  }
  outcome.accepted = true;
  ++stats_.sends;

  if (params_.mode == ChannelMode::kAckRetry) {
    ChannelOutcome acked = send_ack_retry(now_s, bytes, rng);
    acked.accepted = true;
    completion_s_.push_back(link_->busy_until_s());
    in_flight_highwater_ = std::max(in_flight_highwater_, completion_s_.size());
    return acked;
  }

  // Fire-and-forget: the legacy link behaviour, byte-identical Rng draws.
  // A corrupted frame is delivered on the wire but fails its checksum at
  // the receiver — detected and rejected, never silently scored.
  const Delivery d = link_->transmit(now_s, bytes, rng);
  completion_s_.push_back(link_->busy_until_s());
  in_flight_highwater_ = std::max(in_flight_highwater_, completion_s_.size());
  outcome.attempts = 1 + d.retransmits;
  outcome.delivered = d.delivered && !d.corrupted;
  outcome.corrupted = d.delivered && d.corrupted;
  outcome.arrival_s = d.arrival_s;
  outcome.duplicated = d.duplicated;
  outcome.duplicate_arrival_s = d.duplicate_arrival_s;
  if (outcome.delivered) ++stats_.delivered;
  if (outcome.corrupted) {
    ++stats_.corrupt_rejected;
    obs::registry().counter("net.channel.corrupt_rejected").add();
  }
  return outcome;
}

ChannelOutcome Channel::send_ack_retry(double now_s, std::size_t bytes, Rng& rng) {
  ChannelOutcome outcome;
  if (!link_->up()) {
    // The radio cannot even open the wire: an immediate timeout, so the
    // caller can store-and-forward instead of pretending the send happened.
    ++stats_.timeouts;
    obs::registry().counter("net.channel.timeouts").add();
    link_->record_drop();
    return outcome;
  }

  const LinkParams& lp = link_->params();
  double first_arrival_s = -1.0;
  double start_s = now_s;
  for (std::size_t attempt = 1; attempt <= params_.max_attempts; ++attempt) {
    ++outcome.attempts;
    if (attempt > 1) {
      ++stats_.retransmits;
      link_->record_retransmit();
      obs::registry().counter("net.channel.retransmits").add();
    }
    const Attempt wire = link_->try_transmit(start_s, bytes, rng);
    bool acked = false;
    if (wire.delivered && !wire.corrupted) {
      if (first_arrival_s < 0.0) {
        first_arrival_s = wire.arrival_s;
        if (lp.duplicate_prob > 0.0 && rng.bernoulli(lp.duplicate_prob)) {
          outcome.duplicated = true;
          outcome.duplicate_arrival_s = wire.arrival_s + lp.latency_s;
          link_->record_duplicate();
        }
      } else {
        // A retransmit of a payload the receiver already holds (its ack was
        // lost): deduplicated on arrival, accounted as a link duplicate.
        link_->record_duplicate();
      }
      // The ack crosses the reverse path, modelled with the same loss
      // probability; its serialization time only extends the exchange.
      if (!rng.bernoulli(lp.drop_prob)) {
        acked = true;
        ++stats_.acks;
        obs::registry().counter("net.channel.acks").add();
      }
    } else if (wire.delivered && wire.corrupted) {
      // Receiver recomputes the payload checksum, rejects the frame and
      // stays silent — the sender sees a timeout and retransmits, so ack
      // mode *repairs* corruption instead of merely detecting it.
      ++stats_.corrupt_rejected;
      obs::registry().counter("net.channel.corrupt_rejected").add();
    }
    if (acked) break;
    ++stats_.timeouts;
    obs::registry().counter("net.channel.timeouts").add();
    if (attempt < params_.max_attempts) {
      // Capped exponential backoff with deterministic seeded jitter: retry k
      // waits min(base * 2^(k-1), cap) * (1 + uniform[0, jitter)).
      double wait_s = std::min(
          params_.backoff_base_s *
              static_cast<double>(std::uint64_t{1} << std::min<std::size_t>(attempt - 1, 32)),
          std::max(params_.backoff_cap_s, params_.backoff_base_s));
      if (params_.backoff_jitter > 0.0) {
        wait_s *= 1.0 + rng.uniform(0.0, params_.backoff_jitter);
      }
      ++stats_.backoff_waits;
      stats_.backoff_wait_s += wait_s;
      obs::registry().counter("net.channel.backoff_waits").add();
      start_s = wire.done_s + params_.ack_timeout_s + wait_s;
    }
  }

  if (first_arrival_s >= 0.0) {
    // The payload reached the receiver intact at least once — it is
    // delivered even if every ack was lost and the sender gave up.
    outcome.delivered = true;
    outcome.arrival_s = first_arrival_s;
    ++stats_.delivered;
    link_->record_delivery(bytes);
  } else {
    link_->record_drop();
  }
  return outcome;
}

}  // namespace iotml::net
