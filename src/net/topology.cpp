#include "net/topology.hpp"

#include "util/error.hpp"

namespace iotml::net {

Topology Topology::fleet(std::size_t n_devices, std::size_t n_edges,
                         const LinkParams& device_edge, const LinkParams& edge_core) {
  IOTML_CHECK(n_devices >= 1, "Topology::fleet: need at least one device");
  IOTML_CHECK(n_edges >= 1 && n_edges <= n_devices,
              "Topology::fleet: need 1 <= edges <= devices");
  Topology topo;
  topo.n_devices_ = n_devices;
  topo.n_edges_ = n_edges;

  for (std::size_t i = 0; i < n_devices; ++i) {
    topo.nodes_.push_back({i, "dev" + std::to_string(i), pipeline::Tier::kDevice, true});
  }
  for (std::size_t j = 0; j < n_edges; ++j) {
    topo.nodes_.push_back(
        {n_devices + j, "edge" + std::to_string(j), pipeline::Tier::kEdge, true});
  }
  topo.nodes_.push_back({topo.core(), "core", pipeline::Tier::kCore, true});

  topo.uplink_of_.assign(topo.nodes_.size(), kNoLink);
  topo.next_hop_.assign(topo.nodes_.size(), topo.core());
  for (std::size_t i = 0; i < n_devices; ++i) {
    const NodeId to = topo.edge(i % n_edges);
    topo.uplink_of_[i] = topo.links_.size();
    topo.next_hop_[i] = to;
    topo.links_.emplace_back(topo.nodes_[i].name + "->" + topo.nodes_[to].name,
                             device_edge);
  }
  for (std::size_t j = 0; j < n_edges; ++j) {
    const NodeId from = topo.edge(j);
    topo.uplink_of_[from] = topo.links_.size();
    topo.next_hop_[from] = topo.core();
    topo.links_.emplace_back(topo.nodes_[from].name + "->core", edge_core);
  }
  return topo;
}

NodeId Topology::device(std::size_t i) const {
  IOTML_CHECK(i < n_devices_, "Topology::device: index out of range");
  return i;
}

NodeId Topology::edge(std::size_t j) const {
  IOTML_CHECK(j < n_edges_, "Topology::edge: index out of range");
  return n_devices_ + j;
}

NodeInfo& Topology::node(NodeId id) {
  IOTML_CHECK(id < nodes_.size(), "Topology::node: id out of range");
  return nodes_[id];
}

const NodeInfo& Topology::node(NodeId id) const {
  IOTML_CHECK(id < nodes_.size(), "Topology::node: id out of range");
  return nodes_[id];
}

Link& Topology::link(std::size_t index) {
  IOTML_CHECK(index < links_.size(), "Topology::link: index out of range");
  return links_[index];
}

const Link& Topology::link(std::size_t index) const {
  IOTML_CHECK(index < links_.size(), "Topology::link: index out of range");
  return links_[index];
}

std::size_t Topology::uplink_index(NodeId from) const {
  IOTML_CHECK(from < nodes_.size() && uplink_of_[from] != kNoLink,
              "Topology::uplink: node has no uplink");
  return uplink_of_[from];
}

Link& Topology::uplink(NodeId from) { return links_[uplink_index(from)]; }

NodeId Topology::next_hop(NodeId from) const {
  IOTML_CHECK(from < nodes_.size() && uplink_of_[from] != kNoLink,
              "Topology::next_hop: node has no uplink");
  return next_hop_[from];
}

void Topology::add_downlinks(const LinkParams& edge_device, const LinkParams& core_edge) {
  IOTML_CHECK(!has_downlinks_, "Topology::add_downlinks: already materialized");
  downlink_of_.assign(nodes_.size(), kNoLink);
  for (std::size_t i = 0; i < n_devices_; ++i) {
    const NodeId from = edge(i % n_edges_);
    downlink_of_[i] = links_.size();
    links_.emplace_back(nodes_[from].name + "->" + nodes_[i].name, edge_device);
  }
  for (std::size_t j = 0; j < n_edges_; ++j) {
    const NodeId to = edge(j);
    downlink_of_[to] = links_.size();
    links_.emplace_back("core->" + nodes_[to].name, core_edge);
  }
  has_downlinks_ = true;
}

std::size_t Topology::downlink_index(NodeId to) const {
  IOTML_CHECK(has_downlinks_, "Topology::downlink: call add_downlinks() first");
  IOTML_CHECK(to < nodes_.size() && downlink_of_[to] != kNoLink,
              "Topology::downlink: node has no downlink");
  return downlink_of_[to];
}

Link& Topology::downlink(NodeId to) {
  IOTML_CHECK(has_downlinks_, "Topology::downlink: call add_downlinks() first");
  return links_[downlink_index(to)];
}

}  // namespace iotml::net
