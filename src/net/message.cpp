#include "net/message.hpp"

#include <bit>
#include <cmath>

#include "util/fnv.hpp"

namespace iotml::net {

namespace {

inline void fnv1a(std::uint64_t& h, std::uint64_t v) { h = fnv1a64_word(h, v); }

}  // namespace

std::uint64_t payload_checksum(const data::Dataset& ds) {
  std::uint64_t h = kFnv64Basis;
  fnv1a(h, ds.rows());
  fnv1a(h, ds.num_columns());
  for (std::size_t c = 0; c < ds.num_columns(); ++c) {
    const data::Column& col = ds.column(c);
    for (char ch : col.name()) fnv1a(h, static_cast<unsigned char>(ch));
    fnv1a(h, col.type() == data::ColumnType::kNumeric ? 1U : 2U);
    for (std::size_t r = 0; r < col.size(); ++r) {
      if (col.is_missing(r)) {
        fnv1a(h, 0x4d495353U);  // "MISS"
      } else if (col.type() == data::ColumnType::kNumeric) {
        fnv1a(h, std::bit_cast<std::uint64_t>(col.numeric(r)));
      } else {
        fnv1a(h, col.category(r));
      }
    }
  }
  if (ds.has_labels()) {
    for (int label : ds.labels()) fnv1a(h, static_cast<std::uint64_t>(label));
  }
  return h;
}

std::size_t wire_size_bytes(const data::Dataset& ds) {
  std::size_t bytes = 8;  // row count + column count
  for (std::size_t c = 0; c < ds.num_columns(); ++c) {
    const data::Column& col = ds.column(c);
    bytes += col.name().size() + 2;             // name + type tag
    bytes += (col.size() + 7) / 8;              // presence bitmap
    std::size_t present = col.size() - col.missing_count();
    if (col.type() == data::ColumnType::kNumeric) {
      // A NaN reading carries no information the presence bitmap does not:
      // every codec (the abstract model here, the real tdf frames) ships it
      // as an absent cell, so the model must not charge it 8 value bytes.
      for (std::size_t r = 0; r < col.size(); ++r) {
        if (!col.is_missing(r) && std::isnan(col.numeric(r))) --present;
      }
    }
    bytes += present * (col.type() == data::ColumnType::kNumeric ? 8 : 2);
  }
  if (ds.has_labels()) bytes += ds.labels().size();  // small-int labels
  return bytes;
}

std::size_t wire_size_bytes(const Message& m) {
  if (!m.tdf_frame.empty()) {
    // Telemetry messages: the frame is the payload, origins ride inside it.
    return kMessageHeaderBytes + m.tdf_frame.size();
  }
  return kMessageHeaderBytes + wire_size_bytes(m.payload) + 8 * m.origin_s.size();
}

}  // namespace iotml::net
