#include "net/message.hpp"

namespace iotml::net {

std::size_t wire_size_bytes(const data::Dataset& ds) {
  std::size_t bytes = 8;  // row count + column count
  for (std::size_t c = 0; c < ds.num_columns(); ++c) {
    const data::Column& col = ds.column(c);
    bytes += col.name().size() + 2;             // name + type tag
    bytes += (col.size() + 7) / 8;              // presence bitmap
    const std::size_t present = col.size() - col.missing_count();
    bytes += present * (col.type() == data::ColumnType::kNumeric ? 8 : 2);
  }
  if (ds.has_labels()) bytes += ds.labels().size();  // small-int labels
  return bytes;
}

std::size_t wire_size_bytes(const Message& m) {
  return kMessageHeaderBytes + wire_size_bytes(m.payload) + 8 * m.origin_s.size();
}

}  // namespace iotml::net
