#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace iotml::net {

/// Behavioural model of one lossy, bandwidth-limited link between tiers.
/// All times are virtual-clock seconds — the fleet simulator never reads a
/// wall clock (lint rule R6), so a link's timing is fully determined by its
/// parameters, its traffic and the seeded Rng it is given.
struct LinkParams {
  double latency_s = 0.01;            ///< propagation delay per delivery
  double jitter_s = 0.0;              ///< uniform [0, jitter_s) extra delay
  double bandwidth_bytes_per_s = 1e6; ///< serialization rate (must be > 0)
  double drop_prob = 0.0;             ///< per-attempt loss probability
  double corrupt_prob = 0.0;          ///< per-delivery payload corruption prob
  double duplicate_prob = 0.0;        ///< per-delivery chance of a late copy
  std::size_t max_retries = 0;        ///< retransmit attempts after a loss
  double retry_backoff_s = 0.05;      ///< base delay before a retransmit
  double retry_backoff_cap_s = 2.0;   ///< backoff ceiling (exponential growth)
};

/// Transport counters, aggregated per link for the FleetReport.
struct LinkStats {
  std::uint64_t messages = 0;     ///< delivered first copies
  std::uint64_t bytes = 0;        ///< wire bytes of delivered messages
  std::uint64_t drops = 0;        ///< messages lost (incl. link-down sends)
  std::uint64_t corrupted = 0;    ///< frames delivered with a flipped payload
  std::uint64_t duplicates = 0;   ///< extra copies generated
  std::uint64_t retransmits = 0;  ///< retransmission attempts made
};

/// Outcome of one send, computed at transmit time (the discrete-event
/// scheduler turns arrival times into delivery events).
struct Delivery {
  bool delivered = false;
  bool corrupted = false;   ///< frame arrived but fails its payload checksum
  bool duplicated = false;
  double arrival_s = 0.0;
  double duplicate_arrival_s = 0.0;
  std::size_t retransmits = 0;
};

/// One wire attempt: the primitive the ack/retry Channel composes. The
/// frame occupies the wire for its serialization time whether or not it
/// survives; a delivered frame may still arrive corrupted.
struct Attempt {
  bool delivered = false;
  bool corrupted = false;
  double done_s = 0.0;     ///< when the wire frees up after this attempt
  double arrival_s = 0.0;  ///< meaningful only when delivered
};

/// One directed link. The wire is serial: a transmission starts no earlier
/// than the previous one finished, so bandwidth contention shows up as
/// queueing delay without any explicit queue object.
class Link {
 public:
  /// Throws InvalidArgument unless bandwidth > 0, latency/jitter/backoff are
  /// non-negative and the probabilities lie in [0, 1].
  Link(std::string name, LinkParams params);

  const std::string& name() const noexcept { return name_; }
  const LinkParams& params() const noexcept { return params_; }

  bool up() const noexcept { return up_; }
  void set_up(bool up) noexcept { up_ = up; }

  /// Chaos-harness overrides (loss bursts, corruption storms). Throws
  /// InvalidArgument unless the probability lies in [0, 1].
  void set_drop_prob(double p);
  void set_corrupt_prob(double p);

  const LinkStats& stats() const noexcept { return stats_; }

  /// Time the wire frees up (for tests and queue-depth introspection).
  double busy_until_s() const noexcept { return busy_until_s_; }

  /// Plan the delivery of `bytes` handed to the link at `now_s`. Applies
  /// serialization time, queueing behind earlier transmissions, latency,
  /// jitter, loss with bounded retransmits under capped exponential backoff
  /// (retry k waits min(retry_backoff_s * 2^k, retry_backoff_cap_s)),
  /// corruption, and duplication. A corrupted frame still consumes the
  /// delivery — a fire-and-forget sender has no way to know the receiver
  /// rejected it. Updates the link stats; deterministic given the Rng state.
  Delivery transmit(double now_s, std::size_t bytes, Rng& rng);

  /// One wire attempt with no retry policy: serialize (queueing behind the
  /// busy wire), draw loss and corruption, land one latency (+jitter) later.
  /// Stats for messages/bytes/drops are NOT updated — the caller owns the
  /// retry policy and the final accounting (see net::Channel); only the
  /// corrupted counter is bumped here because corruption is per-frame.
  Attempt try_transmit(double now_s, std::size_t bytes, Rng& rng);

  /// Accounting hooks for composed transports (net::Channel): record the
  /// final fate of a send so per-link stats stay truthful regardless of
  /// which retry policy drove the wire.
  void record_delivery(std::size_t bytes) noexcept;
  void record_drop() noexcept { ++stats_.drops; }
  void record_retransmit() noexcept { ++stats_.retransmits; }
  void record_duplicate() noexcept { ++stats_.duplicates; }

 private:
  std::string name_;
  LinkParams params_;
  bool up_ = true;
  double busy_until_s_ = 0.0;
  LinkStats stats_;
};

}  // namespace iotml::net
