#include "sim/scheduler.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace iotml::sim {

std::string event_kind_name(EventKind kind) {
  switch (kind) {
    case EventKind::kDeviceFlush: return "device-flush";
    case EventKind::kEdgeFlush: return "edge-flush";
    case EventKind::kArrival: return "arrival";
    case EventKind::kLinkDown: return "link-down";
    case EventKind::kLinkUp: return "link-up";
    case EventKind::kDeviceDown: return "device-down";
    case EventKind::kDeviceUp: return "device-up";
    case EventKind::kDeployBroadcast: return "deploy-broadcast";
    case EventKind::kArtifactArrival: return "artifact-arrival";
    case EventKind::kPredictionArrival: return "prediction-arrival";
    case EventKind::kEdgeCrash: return "edge-crash";
    case EventKind::kEdgeRestart: return "edge-restart";
    case EventKind::kCoreCrash: return "core-crash";
    case EventKind::kCoreRestart: return "core-restart";
    case EventKind::kPartitionStart: return "partition-start";
    case EventKind::kPartitionEnd: return "partition-end";
    case EventKind::kLossBurstStart: return "loss-burst-start";
    case EventKind::kLossBurstEnd: return "loss-burst-end";
    case EventKind::kCorruptionStart: return "corruption-start";
    case EventKind::kCorruptionEnd: return "corruption-end";
    case EventKind::kCheckpoint: return "checkpoint";
    case EventKind::kCorruptArrival: return "corrupt-arrival";
    case EventKind::kOtaEpoch: return "ota-epoch";
    case EventKind::kOtaChunkArrival: return "ota-chunk-arrival";
    case EventKind::kOtaResume: return "ota-resume";
    case EventKind::kOtaReportArrival: return "ota-report-arrival";
    case EventKind::kOtaVerdict: return "ota-verdict";
    case EventKind::kOtaControlArrival: return "ota-control-arrival";
    case EventKind::kLoadStormStart: return "load-storm-start";
    case EventKind::kLoadStormEnd: return "load-storm-end";
    case EventKind::kStormFlush: return "storm-flush";
    case EventKind::kSummaryArrival: return "summary-arrival";
  }
  return "?";
}

void Scheduler::push(double time_s, EventKind kind, std::size_t target,
                     std::size_t message) {
  IOTML_CHECK(time_s >= now_s_, "Scheduler::push: event scheduled into the past");
  queue_.push({time_s, next_seq_++, kind, target, message});
}

Event Scheduler::pop() {
  IOTML_CHECK(!queue_.empty(), "Scheduler::pop: queue is empty");
  Event event = queue_.top();
  queue_.pop();
  now_s_ = event.time_s;
  ++processed_;

  char line[128];
  if (event.message == kNoMessage) {
    std::snprintf(line, sizeof(line), "t=%.6f #%llu %s target=%zu", event.time_s,
                  static_cast<unsigned long long>(event.seq),
                  event_kind_name(event.kind).c_str(), event.target);
  } else {
    std::snprintf(line, sizeof(line), "t=%.6f #%llu %s target=%zu msg=%zu",
                  event.time_s, static_cast<unsigned long long>(event.seq),
                  event_kind_name(event.kind).c_str(), event.target, event.message);
  }
  log_.emplace_back(line);
  return event;
}

}  // namespace iotml::sim
