#include "sim/chaos.hpp"

#include <algorithm>
#include <tuple>

#include "util/error.hpp"

namespace iotml::sim {

std::string chaos_kind_name(ChaosKind kind) {
  switch (kind) {
    case ChaosKind::kPartitionStart: return "partition-start";
    case ChaosKind::kPartitionEnd: return "partition-end";
    case ChaosKind::kLossBurstStart: return "loss-burst-start";
    case ChaosKind::kLossBurstEnd: return "loss-burst-end";
    case ChaosKind::kCorruptionStart: return "corruption-start";
    case ChaosKind::kCorruptionEnd: return "corruption-end";
    case ChaosKind::kLoadStormStart: return "load-storm-start";
    case ChaosKind::kLoadStormEnd: return "load-storm-end";
  }
  return "?";
}

namespace {

/// Sample alternating start/end pairs for one fleet-wide scenario over
/// [0, duration_s). Mirrors net::make_fault_plan's outage sampler so the
/// two plans share statistics and determinism discipline.
void sample_windows(std::vector<ChaosEvent>& plan, double expected_windows,
                    double mean_window_s, double duration_s, ChaosKind start,
                    ChaosKind end, Rng& rng) {
  if (expected_windows <= 0.0 || mean_window_s <= 0.0) return;
  const double arrival_rate = expected_windows / duration_s;
  double t = rng.exponential(arrival_rate);
  while (t < duration_s) {
    const double window_s = rng.exponential(1.0 / mean_window_s);
    plan.push_back({t, start, 0});
    // The end event may land past the window end; the scheduler still
    // processes it, which keeps every start paired with an end.
    plan.push_back({t + window_s, end, 0});
    t += window_s + rng.exponential(arrival_rate);
  }
}

}  // namespace

std::vector<ChaosEvent> make_chaos_plan(const net::Topology& topo,
                                        const ChaosParams& params,
                                        double duration_s, Rng& rng) {
  (void)topo;  // scenarios are fleet-wide; topology kept for future targeting
  IOTML_CHECK(duration_s > 0.0, "make_chaos_plan: duration must be positive");
  IOTML_CHECK(params.partitions >= 0.0 && params.loss_bursts >= 0.0 &&
                  params.corruption_storms >= 0.0,
              "make_chaos_plan: negative scenario rate");
  IOTML_CHECK(params.partition_mean_s >= 0.0 && params.burst_mean_s >= 0.0 &&
                  params.storm_mean_s >= 0.0,
              "make_chaos_plan: negative scenario duration");
  IOTML_CHECK(params.burst_drop_prob >= 0.0 && params.burst_drop_prob <= 1.0,
              "make_chaos_plan: burst_drop_prob outside [0, 1]");
  IOTML_CHECK(params.storm_corrupt_prob >= 0.0 && params.storm_corrupt_prob <= 1.0,
              "make_chaos_plan: storm_corrupt_prob outside [0, 1]");
  IOTML_CHECK(params.broadcast_crash_downtime_s >= 0.0,
              "make_chaos_plan: negative broadcast crash downtime");
  IOTML_CHECK(params.load_storms >= 0.0,
              "make_chaos_plan: negative scenario rate");
  IOTML_CHECK(params.load_storm_mean_s >= 0.0,
              "make_chaos_plan: negative scenario duration");
  IOTML_CHECK(params.load_storms <= 0.0 || params.load_storm_factor > 1.0,
              "make_chaos_plan: load_storm_factor must exceed 1");
  std::vector<ChaosEvent> plan;
  sample_windows(plan, params.partitions, params.partition_mean_s, duration_s,
                 ChaosKind::kPartitionStart, ChaosKind::kPartitionEnd, rng);
  sample_windows(plan, params.loss_bursts, params.burst_mean_s, duration_s,
                 ChaosKind::kLossBurstStart, ChaosKind::kLossBurstEnd, rng);
  sample_windows(plan, params.corruption_storms, params.storm_mean_s, duration_s,
                 ChaosKind::kCorruptionStart, ChaosKind::kCorruptionEnd, rng);
  // Load storms sample strictly after every legacy scenario so plans with
  // load_storms == 0 replay the historical draw sequence byte-for-byte.
  sample_windows(plan, params.load_storms, params.load_storm_mean_s, duration_s,
                 ChaosKind::kLoadStormStart, ChaosKind::kLoadStormEnd, rng);
  std::stable_sort(plan.begin(), plan.end(), [](const ChaosEvent& a, const ChaosEvent& b) {
    return std::tie(a.time_s, a.kind, a.target) < std::tie(b.time_s, b.kind, b.target);
  });
  return plan;
}

}  // namespace iotml::sim
