#include "sim/placement.hpp"

namespace iotml::sim {

TierPipelines split_by_tier(pipeline::Pipeline&& full) {
  TierPipelines tiers;
  for (auto& stage : full.take_stages()) {
    switch (stage->tier()) {
      case pipeline::Tier::kDevice: tiers.device.add(std::move(stage)); break;
      case pipeline::Tier::kEdge: tiers.edge.add(std::move(stage)); break;
      case pipeline::Tier::kCore: tiers.core.add(std::move(stage)); break;
    }
  }
  return tiers;
}

}  // namespace iotml::sim
