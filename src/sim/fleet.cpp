#include "sim/fleet.hpp"

#include <algorithm>
#include <fstream>
#include <limits>
#include <numbers>
#include <numeric>
#include <utility>

#include "approx/confidence.hpp"
#include "deploy/codec.hpp"
#include "deploy/compile.hpp"
#include "deploy/quantize.hpp"
#include "learners/decision_tree.hpp"
#include "learners/logistic.hpp"
#include "learners/naive_bayes.hpp"
#include "obs/obs.hpp"
#include "pipeline/integration.hpp"
#include "pipeline/preparation.hpp"
#include "pipeline/reduction.hpp"
#include "util/error.hpp"

namespace iotml::sim {

using pipeline::StageReport;
using pipeline::Tier;

namespace {

// Device tier: clean the freshly acquired window before it costs uplink
// bytes — gross outliers are suppressed to missing so the edge can repair
// them alongside genuine sensor dropout.
void add_clean_stage(pipeline::Pipeline& full) {
  full.add("clean(hampel)", [](data::Dataset& ds, Rng&) {
    std::size_t suppressed = 0;
    for (std::size_t f = 1; f < ds.num_columns(); ++f) {
      suppressed += pipeline::suppress_outliers(
          ds, f, pipeline::detect_outliers_hampel(ds.column(f), 4.0));
    }
    return 0.2 + 0.01 * static_cast<double>(suppressed);
  }, "device", Tier::kDevice);
}

// Edge tier: preparation over the integrated multi-device record stream.
void add_impute_stage(pipeline::Pipeline& full) {
  full.add("prepare(impute-linear)", [](data::Dataset& ds, Rng& rng) {
    const pipeline::ImputeReport r =
        pipeline::impute(ds, pipeline::ImputeStrategy::kLinear, rng);
    return 1.0 + 0.002 * static_cast<double>(r.cells_imputed);
  }, "edge-operator", Tier::kEdge);
}

void add_zscore_stage(pipeline::Pipeline& full) {
  full.add("prepare(normalize-zscore)", [](data::Dataset& ds, Rng&) {
    // Keep the timestamp column raw; normalize sensor columns only.
    std::vector<std::size_t> sensor_cols;
    for (std::size_t c = 1; c < ds.num_columns(); ++c) sensor_cols.push_back(c);
    if (sensor_cols.empty() || ds.rows() == 0) return 0.5;
    data::Dataset sensors_only = ds.select_columns(sensor_cols);
    pipeline::normalize(sensors_only, pipeline::NormalizeKind::kZScore);
    for (std::size_t c = 1; c < ds.num_columns(); ++c) {
      for (std::size_t r = 0; r < ds.rows(); ++r) {
        if (!sensors_only.column(c - 1).is_missing(r)) {
          ds.column(c).set_numeric(r, sensors_only.column(c - 1).numeric(r));
        }
      }
    }
    return 0.5;
  }, "edge-operator", Tier::kEdge);
}

// Core tier: data reduction before the learner.
void add_reduce_stage(pipeline::Pipeline& full, std::size_t keep) {
  full.add("reduce(mi-top" + std::to_string(keep) + ")",
           [keep](data::Dataset& ds, Rng&) {
    if (ds.has_labels() && ds.rows() > 0 && ds.num_columns() > keep) {
      ds = ds.select_columns(pipeline::select_by_mutual_information(ds, keep));
    }
    return 1.0;
  }, "core-operator", Tier::kCore);
}

}  // namespace

pipeline::Pipeline default_fleet_pipeline(const FleetConfig& config) {
  pipeline::Pipeline full;
  add_clean_stage(full);
  add_impute_stage(full);
  add_zscore_stage(full);
  add_reduce_stage(full, config.feature_keep);
  return full;
}

pipeline::Pipeline default_deploy_pipeline(const FleetConfig& config) {
  pipeline::Pipeline full;
  add_clean_stage(full);
  add_impute_stage(full);
  add_reduce_stage(full, config.feature_keep);
  return full;
}

FleetSim::FleetSim(FleetConfig config)
    : FleetSim(config, config.deploy.enabled ? default_deploy_pipeline(config)
                                             : default_fleet_pipeline(config)) {}

FleetSim::FleetSim(FleetConfig config, pipeline::Pipeline full_pipeline)
    : config_(config),
      topo_(net::Topology::fleet(config.devices, config.edges,
                                 config.device_edge_link, config.edge_core_link)),
      tiers_(split_by_tier(std::move(full_pipeline))) {
  IOTML_CHECK(config.duration_s > 0.0, "FleetSim: duration must be positive");
  IOTML_CHECK(config.device_flush_s > 0.0 && config.edge_flush_s > 0.0,
              "FleetSim: flush intervals must be positive");
  IOTML_CHECK(config.sensor_period_s > 0.0, "FleetSim: sensor period must be positive");
  IOTML_CHECK(config.sensor_dropout >= 0.0 && config.sensor_dropout <= 1.0,
              "FleetSim: sensor dropout outside [0, 1]");
  IOTML_CHECK(config.feature_keep >= 1, "FleetSim: feature_keep must be >= 1");
  IOTML_CHECK(config.checkpoint_interval_s >= 0.0,
              "FleetSim: negative checkpoint interval");
  if (config.deploy.enabled) {
    IOTML_CHECK(config.deploy.score_window_s > 0.0,
                "FleetSim: deploy score window must be positive");
  }
  if (config.ota.enabled) {
    IOTML_CHECK(config.ota.epochs >= 1, "FleetSim: ota.epochs must be >= 1");
    IOTML_CHECK(config.ota.chunk_bytes >= 1, "FleetSim: ota.chunk_bytes must be >= 1");
    IOTML_CHECK(config.ota.canary_fraction >= 0.0 && config.ota.canary_fraction <= 1.0,
                "FleetSim: ota.canary_fraction outside [0, 1]");
    IOTML_CHECK(config.ota.resume_timeout_s > 0.0 && config.ota.verdict_delay_s > 0.0,
                "FleetSim: ota timeouts must be positive");
    IOTML_CHECK(config.ota.epoch_jitter_s >= 0.0, "FleetSim: negative ota epoch jitter");
  }
  if (config.telemetry.enabled) {
    IOTML_CHECK(config.telemetry.scale_bits <= 52,
                "FleetSim: telemetry.scale_bits must be <= 52");
    IOTML_CHECK(config.telemetry.device_log_bytes >= 1,
                "FleetSim: telemetry.device_log_bytes must be >= 1");
  }
  if (config.degrade.enabled) {
    IOTML_CHECK(config.degrade.pin_level >= -1 && config.degrade.pin_level <= 3,
                "FleetSim: degrade.pin_level outside [-1, 3]");
    IOTML_CHECK(config.degrade.sample_rate > 0.0 && config.degrade.sample_rate <= 1.0,
                "FleetSim: degrade.sample_rate outside (0, 1]");
    IOTML_CHECK(config.degrade.sketch_capacity >= 1 &&
                    config.degrade.countmin_width >= 1 &&
                    config.degrade.countmin_depth >= 1,
                "FleetSim: degrade sketch shapes must be >= 1");
    IOTML_CHECK(config.degrade.dead_letter_rate_ref > 0.0,
                "FleetSim: degrade.dead_letter_rate_ref must be positive");
    IOTML_CHECK(config.degrade.checkpoint_lag_rows >= 1,
                "FleetSim: degrade.checkpoint_lag_rows must be >= 1");
    IOTML_CHECK(config.degrade.sketch_cost_base >= 0.0 &&
                    config.degrade.sketch_cost_per_row >= 0.0,
                "FleetSim: negative degrade sketch cost");
  }
  if (config.deploy.enabled || config.ota.enabled) {
    // Downlinks append after every uplink, so in the split loop below the
    // uplinks draw exactly the Rng streams a non-deploy run would assign.
    // OTA-only runs reuse the deploy link parameters for the return path.
    topo_.add_downlinks(config.deploy.edge_device_link, config.deploy.core_edge_link);
  }

  // Fixed derivation order: every stream of randomness is split off the
  // master seed before the event loop starts, so event handlers can draw in
  // any interleaving without perturbing each other's sequences.
  Rng master(config.seed);         // rng-stream: master
  Rng fault_rng = master.split();  // rng-stream: fault
  device_rngs_.reserve(config.devices);
  // rng-stream: device (one split per device, in device-id order)
  for (std::size_t d = 0; d < config.devices; ++d) device_rngs_.push_back(master.split());
  edge_rngs_.reserve(config.edges);
  // rng-stream: edge (one split per edge, in edge-id order)
  for (std::size_t e = 0; e < config.edges; ++e) edge_rngs_.push_back(master.split());
  core_rng_ = master.split();  // rng-stream: core
  link_rngs_.reserve(topo_.num_links());
  // rng-stream: link (one split per link, in link-id order)
  for (std::size_t l = 0; l < topo_.num_links(); ++l) link_rngs_.push_back(master.split());
  // The chaos stream splits off *after* every legacy stream, so a run with
  // chaos disabled draws exactly the sequences the pre-chaos runtime drew.
  chaos_rng_ = master.split();  // rng-stream: chaos
  // The OTA streams split off after every earlier stream (appended to the
  // manifest in this order), so prior-seed event logs stay byte-identical
  // when OTA is off.
  canary_rng_ = master.split();  // rng-stream: canary
  epoch_rng_ = master.split();  // rng-stream: epoch
  // The degradation-sampling stream splits off after every earlier stream,
  // so L0-only and degrade-off runs replay historical draw sequences.
  degrade_rng_ = master.split();  // rng-stream: degrade

  // One transport per link. The topology is final here (downlinks included),
  // so the Link references the channels capture stay stable.
  channels_.reserve(topo_.num_links());
  core_link_.assign(topo_.num_links(), 0);
  base_drop_prob_.reserve(topo_.num_links());
  base_corrupt_prob_.reserve(topo_.num_links());
  for (std::size_t l = 0; l < topo_.num_links(); ++l) {
    channels_.emplace_back(topo_.link(l), config.channel);
    base_drop_prob_.push_back(topo_.link(l).params().drop_prob);
    base_corrupt_prob_.push_back(topo_.link(l).params().corrupt_prob);
  }
  for (std::size_t j = 0; j < config.edges; ++j) {
    core_link_[topo_.uplink_index(topo_.edge(j))] = 1;
    if (topo_.has_downlinks()) core_link_[topo_.downlink_index(topo_.edge(j))] = 1;
  }

  // Temperature starts the window cold (phase -pi/2) and cycles fast enough
  // that even a short run sees both comfortable and uncomfortable spells —
  // the analytics labels must never collapse to a single class.
  truths_.push_back(
      pipeline::sine_signal(22.0, 6.0, 40.0, -std::numbers::pi / 2.0));
  truths_.push_back(pipeline::composite_signal(
      {pipeline::sine_signal(55.0, 10.0, 500.0), pipeline::trend_signal(0.0, -0.01)}));
  truths_.push_back(pipeline::sine_signal(4.0, 3.0, 120.0));

  report_.devices = config.devices;
  report_.edges = config.edges;
  report_.duration_s = config.duration_s;

  edge_buffers_.resize(config.edges);
  edge_checkpoints_.resize(config.edges);
  device_sf_.resize(config.devices);
  device_scored_.assign(config.devices, 0);
  seen_.resize(topo_.num_nodes());
  artifact_seen_.assign(topo_.num_nodes(), 0);
  pred_seen_.resize(topo_.num_nodes());
  if (config.ota.enabled) {
    ota_stores_.resize(config.devices);
    ota_active_transfer_.assign(config.devices, kNoMessage);
    ota_report_seen_.resize(topo_.num_nodes());
  }
  if (config.degrade.enabled) {
    degrade_ctrl_.reserve(config.edges);
    for (std::size_t e = 0; e < config.edges; ++e) {
      degrade_ctrl_.emplace_back(config.degrade.thresholds, config.degrade.pin_level);
    }
    degrade_signal_t_.assign(config.edges, 0.0);
    degrade_dead_letters_.assign(config.edges, 0);
    degrade_dead_letters_seen_.assign(config.edges, 0);
    degrade_queue_hint_.assign(config.edges, 0.0);
    degrade_sf_highwater_.assign(config.edges, 0);
    report_.degradation.enabled = true;
    report_.degradation.pin_level = config.degrade.pin_level;
    report_.degradation.duration_s = config.duration_s;
  }
  if (config.telemetry.enabled) {
    tdf_session_open_.assign(config.devices, 0);
    tdf_seq_.assign(config.devices, 0);
    device_logs_.reserve(config.devices);
    for (std::size_t d = 0; d < config.devices; ++d) {
      device_logs_.emplace_back(config.telemetry.device_log_bytes);
    }
    report_.telemetry.enabled = true;
  }

  if (config_.observatory.enabled) {
    obs::ObservatoryOptions opts;
    opts.series_capacity = config_.observatory.series_capacity;
    opts.flight_ring = config_.observatory.flight_ring;
    opts.journey_capacity = config_.observatory.journey_capacity;
    obsy_.emplace(topo_.num_nodes(), opts);
  }

  generate_device_data();

  const std::vector<net::Fault> plan =
      net::make_fault_plan(topo_, config.faults, config.duration_s, fault_rng);
  schedule_initial_events();
  for (const net::Fault& f : plan) {
    EventKind kind = EventKind::kLinkDown;
    switch (f.kind) {
      case net::FaultKind::kLinkDown: kind = EventKind::kLinkDown; break;
      case net::FaultKind::kLinkUp: kind = EventKind::kLinkUp; break;
      case net::FaultKind::kDeviceDown: kind = EventKind::kDeviceDown; break;
      case net::FaultKind::kDeviceUp: kind = EventKind::kDeviceUp; break;
      case net::FaultKind::kEdgeCrash: kind = EventKind::kEdgeCrash; break;
      case net::FaultKind::kEdgeRestart: kind = EventKind::kEdgeRestart; break;
      case net::FaultKind::kCoreCrash: kind = EventKind::kCoreCrash; break;
      case net::FaultKind::kCoreRestart: kind = EventKind::kCoreRestart; break;
    }
    sched_.push(f.time_s, kind, f.target);
  }

  const std::vector<ChaosEvent> chaos =
      make_chaos_plan(topo_, config.chaos, config.duration_s, chaos_rng_);
  for (const ChaosEvent& c : chaos) {
    EventKind kind = EventKind::kPartitionStart;
    switch (c.kind) {
      case ChaosKind::kPartitionStart: kind = EventKind::kPartitionStart; break;
      case ChaosKind::kPartitionEnd: kind = EventKind::kPartitionEnd; break;
      case ChaosKind::kLossBurstStart: kind = EventKind::kLossBurstStart; break;
      case ChaosKind::kLossBurstEnd: kind = EventKind::kLossBurstEnd; break;
      case ChaosKind::kCorruptionStart: kind = EventKind::kCorruptionStart; break;
      case ChaosKind::kCorruptionEnd: kind = EventKind::kCorruptionEnd; break;
      case ChaosKind::kLoadStormStart: kind = EventKind::kLoadStormStart; break;
      case ChaosKind::kLoadStormEnd: kind = EventKind::kLoadStormEnd; break;
    }
    sched_.push(c.time_s, kind, c.target);
  }

  if (config.checkpoint_interval_s > 0.0) {
    for (std::size_t e = 0; e < config.edges; ++e) {
      for (double t = config.checkpoint_interval_s; t < config.duration_s;
           t += config.checkpoint_interval_s) {
        sched_.push(t, EventKind::kCheckpoint, e);
      }
    }
  }

  if (config.ota.enabled) schedule_ota_epochs();
}

void FleetSim::generate_device_data() {
  static const char* kQuantity[3] = {"temperature", "humidity", "wind"};
  static constexpr double kNoiseScale[3] = {1.0, 2.5, 1.5};
  device_data_.resize(config_.devices);
  device_cursor_.assign(config_.devices, 0);
  // Deploy runs keep sensing past the learning window: those extra rows are
  // never flushed upstream — they are the data the deployed artifact scores.
  const double horizon_s =
      config_.duration_s +
      (config_.deploy.enabled ? config_.deploy.score_window_s : 0.0);
  for (std::size_t d = 0; d < config_.devices; ++d) {
    Rng& rng = device_rngs_[d];
    const std::int64_t start_us = obs::now_us();
    std::vector<pipeline::SensorStream> streams;
    std::size_t readings = 0;
    for (std::size_t q = 0; q < 3; ++q) {
      pipeline::SensorSpec spec;
      spec.name = kQuantity[q];
      spec.period_s = config_.sensor_period_s * rng.uniform(0.9, 1.1);
      spec.clock_jitter_s = 0.02;
      spec.noise_std = config_.sensor_noise * kNoiseScale[q];
      spec.dropout_prob = config_.sensor_dropout;
      streams.push_back(
          pipeline::simulate_sensor(spec, truths_[q], horizon_s, rng));
      readings += streams.back().readings.size();
    }
    pipeline::IntegrationResult integ = pipeline::integrate_streams(
        streams, {.merge_tolerance_s = 0.45 * config_.sensor_period_s});
    report_.rows_generated += integ.records.rows();

    StageReport acq;
    acq.stage_name = "acquisition";
    acq.player = "device";
    acq.tier = Tier::kDevice;
    acq.rows_in = readings;
    acq.rows_out = integ.records.rows();
    acq.columns_out = integ.records.num_columns();
    acq.missing_rate_out = integ.records.missing_rate();
    acq.cost = 0.05 + 0.01 * static_cast<double>(readings);
    // det-sanctioned: wall_time_us is observability-only; to_json and the event log omit it
    acq.wall_time_us = static_cast<std::uint64_t>(obs::now_us() - start_us);
    report_.stage_reports.push_back(std::move(acq));

    device_data_[d] = std::move(integ.records);
  }
}

void FleetSim::schedule_initial_events() {
  for (std::size_t d = 0; d < config_.devices; ++d) {
    // Stagger flush phases deterministically so a big fleet does not report
    // in lockstep (real fleets desynchronize; ties would be FIFO anyway).
    const double phase =
        config_.device_flush_s * (static_cast<double>(d % 16) / 64.0);
    for (double t = phase + config_.device_flush_s; t < config_.duration_s;
         t += config_.device_flush_s) {
      sched_.push(t, EventKind::kDeviceFlush, topo_.device(d));
    }
    // Final flush drains whatever the window schedule left behind.
    sched_.push(config_.duration_s, EventKind::kDeviceFlush, topo_.device(d));
  }
  for (std::size_t e = 0; e < config_.edges; ++e) {
    for (double t = config_.edge_flush_s; t < config_.duration_s;
         t += config_.edge_flush_s) {
      sched_.push(t, EventKind::kEdgeFlush, topo_.edge(e));
    }
  }
}

FleetReport FleetSim::run() {
  IOTML_CHECK(!ran_, "FleetSim::run: already ran (FleetSim is one-shot)");
  ran_ = true;
  obs::Span run_span("sim.fleet_run", "sim");

  while (!sched_.empty()) handle(sched_.pop());

  // Drain: one last edge flush each, after every in-flight message has
  // landed, so late arrivals are not silently stranded by the periodic
  // schedule. Anything still buffered after this (an edge cut off by a
  // down link) is reported as stranded, not dropped on the floor.
  const double drain_s = std::max(sched_.now_s(), config_.duration_s);
  for (std::size_t e = 0; e < config_.edges; ++e) handle_edge_flush(e, drain_s);
  while (!sched_.empty()) handle(sched_.pop());

  if (degrade_on()) degrade_settle(std::max(sched_.now_s(), drain_s));

  finalize();
  if (degrade_on()) finalize_degradation();
  if (config_.deploy.enabled) run_deploy_phase();
  if (config_.ota.enabled) finalize_ota();

  report_.events = sched_.processed();
  for (std::size_t l = 0; l < topo_.num_links(); ++l) {
    report_.links.push_back({topo_.link(l).name(), topo_.link(l).stats()});
  }
  for (const net::Channel& ch : channels_) {
    const net::ChannelStats& s = ch.stats();
    report_.channels.sends += s.sends;
    report_.channels.delivered += s.delivered;
    report_.channels.acks += s.acks;
    report_.channels.timeouts += s.timeouts;
    report_.channels.retransmits += s.retransmits;
    report_.channels.backoff_waits += s.backoff_waits;
    report_.channels.backoff_wait_s += s.backoff_wait_s;
    report_.channels.dead_letters += s.dead_letters;
    report_.channels.corrupt_rejected += s.corrupt_rejected;
  }
  report_.latency = LatencySummary::from_histogram(lat_end_to_end_);
  report_.latency_tiers["device-edge"] = LatencyBreakdown::from_histogram(lat_device_edge_);
  report_.latency_tiers["edge-core"] = LatencyBreakdown::from_histogram(lat_edge_core_);
  report_.latency_tiers["end-to-end"] = LatencyBreakdown::from_histogram(lat_end_to_end_);
  IOTML_INTERNAL_CHECK(report_.rows_conserved(),
                       "FleetSim: row-conservation ledger out of balance");
  if (run_span.active()) {
    run_span.arg("events", static_cast<std::uint64_t>(report_.events));
    run_span.arg("rows_delivered", static_cast<std::uint64_t>(report_.rows_delivered));
  }
  if (obsy_ && !config_.observatory.artifact_dir.empty()) {
    // Best-effort: an unwritable artifact dir must not fail a finished run.
    obsy_->write_artifacts(config_.observatory.artifact_dir, sched_.log());
    if (config_.ota.enabled) {
      std::ofstream ota_out(config_.observatory.artifact_dir + "/ota.json");
      if (ota_out) ota_out << ota_to_json(report_.deploy.ota);
    }
    if (degrade_on()) {
      std::ofstream deg_out(config_.observatory.artifact_dir + "/degradation.json");
      if (deg_out) deg_out << degradation_to_json(report_.degradation);
    }
  }
  return report_;
}

void FleetSim::handle(const Event& event) {
  obs::Span span("sim.event:" + event_kind_name(event.kind), "sim");
  if (span.active()) {
    span.arg("t_s", event.time_s);
    span.arg("target", static_cast<std::uint64_t>(event.target));
  }
  obs::registry().counter("sim.events").add();
  switch (event.kind) {
    case EventKind::kDeviceFlush:
      handle_device_flush(event);
      break;
    case EventKind::kEdgeFlush:
      handle_edge_flush(event.target - config_.devices, event.time_s);
      break;
    case EventKind::kArrival:
      handle_arrival(event);
      break;
    case EventKind::kLinkDown:
      topo_.link(event.target).set_up(false);
      obs::registry().counter("sim.faults.link_down").add();
      break;
    case EventKind::kLinkUp:
      // A partition owns the edge<->core links while active; an overlapping
      // link-outage recovery must not punch through it.
      if (!(partitioned_ && core_link_[event.target] != 0)) {
        topo_.link(event.target).set_up(true);
      }
      break;
    case EventKind::kDeviceDown:
      topo_.node(event.target).up = false;
      obs::registry().counter("sim.faults.device_down").add();
      break;
    case EventKind::kDeviceUp:
      topo_.node(event.target).up = true;
      // Reconnect: drain the store-and-forward buffer right away instead of
      // waiting out the periodic flush schedule.
      if (config_.device_buffer_rows > 0 && !device_sf_[event.target].empty()) {
        sched_.push(event.time_s, EventKind::kDeviceFlush, event.target);
      }
      break;
    case EventKind::kDeployBroadcast:
      handle_deploy_broadcast(event);
      break;
    case EventKind::kArtifactArrival:
      handle_artifact_arrival(event);
      break;
    case EventKind::kPredictionArrival:
      handle_prediction_arrival(event);
      break;
    case EventKind::kEdgeCrash:
      handle_edge_crash(event.target);
      break;
    case EventKind::kEdgeRestart:
      handle_edge_restart(event.target);
      break;
    case EventKind::kCoreCrash:
      if (topo_.node(topo_.core()).up) {
        topo_.node(topo_.core()).up = false;
        ++report_.faults.core_crashes;
        obs::registry().counter("sim.faults.core_crash").add();
        flight_dump(topo_.core(), "core-crash", event.time_s);
      }
      break;
    case EventKind::kCoreRestart:
      // The core's stored data is durable (a datacenter write-ahead log);
      // a crash only makes it unreachable, so restart is just liveness.
      topo_.node(topo_.core()).up = true;
      break;
    case EventKind::kPartitionStart:
      set_partition(true);
      break;
    case EventKind::kPartitionEnd:
      set_partition(false);
      break;
    case EventKind::kLossBurstStart:
      set_loss_burst(true);
      break;
    case EventKind::kLossBurstEnd:
      set_loss_burst(false);
      break;
    case EventKind::kCorruptionStart:
      set_corruption_storm(true);
      break;
    case EventKind::kCorruptionEnd:
      set_corruption_storm(false);
      break;
    case EventKind::kCheckpoint:
      handle_checkpoint(event.target);
      break;
    case EventKind::kCorruptArrival:
      handle_corrupt_arrival(event);
      break;
    case EventKind::kOtaEpoch:
      handle_ota_epoch(event);
      break;
    case EventKind::kOtaChunkArrival:
      handle_ota_chunk_arrival(event);
      break;
    case EventKind::kOtaResume:
      handle_ota_resume(event);
      break;
    case EventKind::kOtaReportArrival:
      handle_ota_report_arrival(event);
      break;
    case EventKind::kOtaVerdict:
      handle_ota_verdict(event);
      break;
    case EventKind::kOtaControlArrival:
      handle_ota_control_arrival(event);
      break;
    case EventKind::kLoadStormStart:
      set_load_storm(true, event.time_s);
      break;
    case EventKind::kLoadStormEnd:
      set_load_storm(false, event.time_s);
      break;
    case EventKind::kStormFlush:
      handle_storm_flush(event);
      break;
    case EventKind::kSummaryArrival:
      handle_summary_arrival(event);
      break;
  }
}

void FleetSim::handle_device_flush(const Event& event) {
  const net::NodeId d = event.target;
  const data::Dataset& all = device_data_[d];
  const bool final_flush = event.time_s >= config_.duration_s;
  // The final flush drains everything — except in deploy mode, where rows
  // sensed after the learning window stay on the device for local scoring.
  const double cutoff =
      !final_flush ? event.time_s
      : config_.deploy.enabled ? config_.duration_s
                               : std::numeric_limits<double>::infinity();
  const std::size_t begin = device_cursor_[d];
  std::size_t end = begin;
  while (end < all.rows() && all.column(0).numeric(end) < cutoff) ++end;
  device_cursor_[d] = end;
  const std::size_t count = end - begin;
  const bool sf = config_.device_buffer_rows > 0;
  if (count == 0 && (!sf || device_sf_[d].empty())) return;
  if (!topo_.node(d).up && !sf) {
    // Churn, legacy accounting: the device was offline when its report
    // window closed and has no store-and-forward buffer — the window's
    // rows are gone.
    report_.rows_skipped += count;
    return;
  }

  Buffer out;
  if (count > 0) {
    std::vector<std::size_t> idx(count);
    std::iota(idx.begin(), idx.end(), begin);
    data::Dataset chunk = all.select_rows(idx);
    // Local compute is unaffected by connectivity: the device cleans its
    // window even when offline, then persists the result.
    chunk = tiers_.device.run(std::move(chunk), device_rngs_[d]);
    for (const StageReport& r : tiers_.device.reports()) {
      report_.stage_reports.push_back(r);
    }
    out.row_count = chunk.rows();
    out.rows = std::move(chunk);
    out.origin_s = {event.time_s};
    // The window's birth certificate: every downstream frame carrying these
    // rows lists this id in its parents, which is what lets fleetscope
    // reconstruct the device -> edge -> core journey after batching.
    out.parents = {next_trace_++};
    if (obsy_) {
      obs::HopRecord origin;
      origin.trace = out.parents.front();
      origin.kind = obs::HopKind::kOrigin;
      origin.src = d;
      origin.dst = d;
      origin.t0_s = event.time_s;
      origin.t1_s = event.time_s;
      origin.rows = out.row_count;
      obsy_->journeys().record(std::move(origin));
      obsy_->flight().note(d, event.time_s, "flush", out.row_count);
      obsy_->series()
          .series("flush.rows", "fleet", "device")
          .record(event.time_s, static_cast<double>(out.row_count));
    }
  }
  if (!topo_.node(d).up) {
    // Reaching here offline implies sf: the bufferless case returned above.
    if (out.row_count > 0) {
      if (telemetry_on()) {
        telemetry_store(d, std::move(out));
      } else {
        store_and_forward(d, std::move(out));
      }
    }
    return;
  }

  // Online: drain the store-and-forward backlog (oldest first) together
  // with the fresh window as one uplink message.
  Buffer merged;
  if (sf) {
    while (!device_sf_[d].empty()) {
      Buffer& pending = device_sf_[d].front();
      merged.rows.append_rows(pending.rows);
      merged.origin_s.insert(merged.origin_s.end(), pending.origin_s.begin(),
                             pending.origin_s.end());
      merged.parents.insert(merged.parents.end(), pending.parents.begin(),
                            pending.parents.end());
      merged.row_count += pending.row_count;
      device_sf_[d].pop_front();
    }
    if (obsy_ && merged.row_count > 0) {
      obsy_->flight().note(d, event.time_s, "sf-drain", merged.row_count);
    }
    // A full drain empties the ring log with it: the backlog leaves as one
    // merged frame, re-encoded by send().
    if (telemetry_on()) device_logs_[d].clear();
  }
  if (out.row_count > 0) {
    merged.rows.append_rows(out.rows);
    merged.origin_s.insert(merged.origin_s.end(), out.origin_s.begin(),
                           out.origin_s.end());
    merged.parents.insert(merged.parents.end(), out.parents.begin(), out.parents.end());
    merged.row_count += out.row_count;
  }
  if (merged.row_count == 0) return;
  send(d, std::move(merged), event.time_s);
}

void FleetSim::handle_edge_flush(std::size_t edge_index, double now_s) {
  Buffer& buf = edge_buffers_[edge_index];
  if (buf.row_count == 0) return;
  const net::NodeId e = topo_.edge(edge_index);
  if (obsy_) {
    obsy_->series()
        .series("buffer.rows", topo_.node(e).name, "edge")
        .record(now_s, static_cast<double>(buf.row_count));
  }
  if (!topo_.node(e).up) return;  // hold the buffer until the edge recovers

  // Ladder decision (DESIGN.md §16): the controller steps on the edge's own
  // backpressure *before* the hold guard, so pressure accumulated during a
  // partition (checkpoint lag, store-and-forward occupancy) still escalates
  // the level instead of being invisible until the wire heals.
  int degrade_level = 0;
  if (degrade_on()) {
    degrade_level =
        degrade_update(edge_index, now_s, degrade_signals(edge_index, now_s));
    if (degrade_level >= 2) {
      // L2/L3 answer the window locally and shed every row; only a
      // fixed-size summary goes upstream, so a dead uplink cannot make the
      // edge hoard rows.
      degrade_summary_flush(edge_index, now_s, degrade_level);
      return;
    }
  }

  if (config_.channel.mode == net::ChannelMode::kAckRetry &&
      (!topo_.node(topo_.core()).up || !topo_.uplink(e).up())) {
    // Degraded mode: a stop-and-wait edge knows its uplink (or the core) is
    // unreachable and holds the batch for the next flush instead of burning
    // retransmits into a dead wire. Fire-and-forget edges cannot know and
    // transmit anyway (the frame dies at the dead receiver).
    obs::registry().counter("sim.recovery.edge_holds").add();
    return;
  }

  if (degrade_level == 1) {
    // L1: a seeded stratified sample of the window rides the normal
    // integrate -> pipeline -> uplink path below; the rest is shed with a
    // ledgered confidence interval standing in for them.
    degrade_sample_window(edge_index, now_s);
  } else if (degrade_on()) {
    report_.degradation.rows_exact += buf.row_count;
    ++report_.degradation.windows_exact;
  }

  // Integration: merge the per-device chunks into one time-ordered record
  // stream (the §IV "ordered list of time-stamps" step, here across devices).
  const std::int64_t start_us = obs::now_us();
  std::vector<std::size_t> order(buf.row_count);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const data::Column& ts = buf.rows.column(0);
  std::stable_sort(order.begin(), order.end(), [&ts](std::size_t a, std::size_t b) {
    return ts.numeric(a) < ts.numeric(b);
  });
  data::Dataset merged = buf.rows.select_rows(order);

  StageReport integ;
  integ.stage_name = "integration";
  integ.player = "edge-operator";
  integ.tier = Tier::kEdge;
  integ.rows_in = buf.row_count;
  integ.rows_out = merged.rows();
  integ.columns_out = merged.num_columns();
  integ.missing_rate_in = merged.missing_rate();
  integ.missing_rate_out = merged.missing_rate();
  integ.cost = 0.2 + 0.001 * static_cast<double>(merged.rows());
  // det-sanctioned: wall_time_us is observability-only; to_json and the event log omit it
  integ.wall_time_us = static_cast<std::uint64_t>(obs::now_us() - start_us);
  report_.stage_reports.push_back(std::move(integ));

  merged = tiers_.edge.run(std::move(merged), edge_rngs_[edge_index]);
  for (const StageReport& r : tiers_.edge.reports()) {
    report_.stage_reports.push_back(r);
  }

  Buffer out;
  out.row_count = merged.rows();
  out.rows = std::move(merged);
  out.origin_s = std::move(buf.origin_s);
  out.parents = std::move(buf.parents);
  if (obsy_) obsy_->flight().note(e, now_s, "edge-flush", out.row_count);
  buf = Buffer{};
  // The flush ships these rows upstream, so the checkpoint covering them is
  // retired with the buffer — a later restore must never resurrect rows
  // that already left the edge.
  edge_checkpoints_[edge_index] = Buffer{};
  send(e, std::move(out), now_s);
}

// ---- Graceful-degradation ladder (DESIGN.md §16) --------------------------

approx::DegradeSignals FleetSim::degrade_signals(std::size_t edge_index,
                                                 double now_s) {
  approx::DegradeSignals s;
  const net::NodeId e = topo_.edge(edge_index);

  // Channel congestion: the uplink's depth right now, or the deepest
  // fraction any of the edge's channels hit since the last update.
  const auto cap = static_cast<double>(config_.channel.queue_capacity);
  const std::size_t uplink = topo_.uplink_index(e);
  const double now_frac =
      static_cast<double>(channels_[uplink].in_flight(now_s)) / cap;
  s.queue_fraction = std::max(now_frac, degrade_queue_hint_[edge_index]);
  degrade_queue_hint_[edge_index] = 0.0;

  // Dead-letter growth since the last update, against the reference rate.
  const double elapsed = now_s - degrade_signal_t_[edge_index];
  const std::uint64_t letters = degrade_dead_letters_[edge_index];
  const std::uint64_t fresh = letters - degrade_dead_letters_seen_[edge_index];
  if (fresh > 0) {
    s.dead_letter_rate = (static_cast<double>(fresh) / std::max(elapsed, 1e-9)) /
                         config_.degrade.dead_letter_rate_ref;
  }
  degrade_dead_letters_seen_[edge_index] = letters;

  // Store-and-forward occupancy across the edge's devices (device i
  // belongs to edge i % edges; see Topology::fleet).
  if (config_.device_buffer_rows > 0) {
    std::uint64_t total = 0;
    std::size_t fleet = 0;
    for (std::size_t i = edge_index; i < config_.devices; i += config_.edges) {
      total += stored_rows(topo_.device(i));
      ++fleet;
    }
    degrade_sf_highwater_[edge_index] =
        std::max<std::uint64_t>(degrade_sf_highwater_[edge_index], total);
    if (fleet > 0) {
      s.sf_occupancy = static_cast<double>(total) /
                       (static_cast<double>(config_.device_buffer_rows) *
                        static_cast<double>(fleet));
    }
  }

  // Checkpoint lag: rows buffered beyond what the last checkpoint covers.
  if (config_.checkpoint_interval_s > 0.0) {
    const std::size_t buffered = edge_buffers_[edge_index].row_count;
    const std::size_t persisted = edge_checkpoints_[edge_index].row_count;
    const std::size_t lag = buffered > persisted ? buffered - persisted : 0;
    s.checkpoint_lag = static_cast<double>(lag) /
                       static_cast<double>(config_.degrade.checkpoint_lag_rows);
  }
  degrade_signal_t_[edge_index] = now_s;
  return s;
}

int FleetSim::degrade_update(std::size_t edge_index, double now_s,
                             const approx::DegradeSignals& signals) {
  approx::DegradationController& ctrl = degrade_ctrl_[edge_index];
  const approx::DegradeLevel before = ctrl.level();
  const approx::DegradeLevel after = ctrl.update(now_s, signals);
  if (after != before) {
    auto& d = report_.degradation;
    if (static_cast<int>(after) > static_cast<int>(before)) {
      ++d.transitions_up;
    } else {
      ++d.transitions_down;
    }
    obs::registry().counter("sim.degrade.transitions").add();
    const net::NodeId e = topo_.edge(edge_index);
    if (obsy_) {
      obsy_->flight().note(e, now_s, "degrade-level",
                           static_cast<std::size_t>(before),
                           static_cast<std::size_t>(after));
      obsy_->series()
          .series("degrade.level", topo_.node(e).name, "edge")
          .record(now_s, static_cast<double>(static_cast<int>(after)));
    }
  }
  return static_cast<int>(after);
}

namespace {

/// Mean of a column over [0, rows), skipping missing cells; the number of
/// contributing cells comes back through `n`.
double column_mean(const data::Column& col, std::size_t rows, std::size_t& n) {
  double sum = 0.0;
  n = 0;
  for (std::size_t r = 0; r < rows; ++r) {
    if (col.is_missing(r)) continue;
    sum += col.numeric(r);
    ++n;
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace

void FleetSim::degrade_sample_window(std::size_t edge_index, double now_s) {
  Buffer& buf = edge_buffers_[edge_index];
  const std::size_t population = buf.row_count;
  auto& d = report_.degradation;

  // Strata must tile the buffer exactly; anything else (defensive — e.g. a
  // window restored from a pre-ladder checkpoint) collapses to one stratum.
  std::size_t tiled = 0;
  for (const approx::Stratum& s : buf.strata) tiled += s.count;
  std::vector<approx::Stratum> strata = buf.strata;
  if (strata.empty() || tiled != population) {
    strata.assign(1, approx::Stratum{static_cast<std::uint32_t>(edge_index), 0,
                                     population});
  }

  // Sample live rows only, stratum by stratum. Missing cells carry no
  // analytic value (downstream would impute them), and with contiguous-run
  // sampling a tiny stratum whose only draw lands on a missing cell drops
  // out of the estimate entirely — storm-compressed strata are small, late,
  // and drifted, so those dropouts are a systematic bias, not noise.
  const data::Column& col = buf.rows.column(1);
  std::vector<std::vector<std::size_t>> live(strata.size());
  for (std::size_t i = 0; i < strata.size(); ++i) {
    const approx::Stratum& s = strata[i];
    for (std::size_t r = s.begin; r < s.begin + s.count; ++r) {
      if (!col.is_missing(r)) live[i].push_back(r);
    }
  }

  const std::int64_t start_us = obs::now_us();
  const std::vector<std::size_t> keep =
      approx::stratified_indices(live, config_.degrade.sample_rate,
                                 degrade_rng_);

  // The bounded-error contract: the realized error of the sampled window
  // mean (first measured quantity) against the exact full-window answer,
  // which the simulator can still compute out of band. The per-stratum
  // sampler rounds draws up, so small strata carry higher sampling
  // fractions; the self-weighted stratified estimator keeps that from
  // biasing the window mean (a pooled mean over `keep` would drift high).
  std::size_t exact_n = 0;
  const double exact = column_mean(col, population, exact_n);
  std::vector<approx::StratumSample> samples(strata.size());
  for (std::size_t i = 0; i < strata.size(); ++i) {
    samples[i].population = live[i].size();
  }
  std::size_t cursor = 0;
  for (std::size_t r : keep) {
    while (cursor + 1 < strata.size() &&
           r >= strata[cursor].begin + strata[cursor].count) {
      ++cursor;
    }
    samples[cursor].values.push_back(col.numeric(r));
  }
  const approx::Interval ci = approx::stratified_mean_interval(samples);
  const bool covered = exact_n == 0 || ci.covers(exact);

  ++d.windows_sampled;
  d.rows_approx += population;
  d.rows_sampled_out += population - keep.size();
  ++d.ci_windows;
  if (covered) ++d.ci_covered;
  d.ci_half_width_sum += ci.half_width;
  const double err = std::abs(ci.estimate - exact);
  d.abs_error_sum += err;
  d.max_abs_error = std::max(d.max_abs_error, err);
  if (d.windows.size() < kMaxWindowEstimates) {
    d.windows.push_back({edge_index, now_s, 1, population, keep.size(),
                         ci.estimate, ci.half_width, exact, covered});
  } else {
    ++d.windows_truncated;
  }

  StageReport st;
  st.stage_name = "degrade(sample)";
  st.player = "edge-operator";
  st.tier = Tier::kEdge;
  st.rows_in = population;
  st.rows_out = keep.size();
  st.columns_out = buf.rows.num_columns();
  st.missing_rate_in = buf.rows.missing_rate();
  st.cost = 0.05 + 0.0002 * static_cast<double>(population);
  // det-sanctioned: wall_time_us is observability-only; to_json and the event log omit it
  st.wall_time_us = static_cast<std::uint64_t>(obs::now_us() - start_us);

  Buffer kept;
  kept.rows = buf.rows.select_rows(keep);
  kept.row_count = keep.size();
  kept.origin_s = std::move(buf.origin_s);
  kept.parents = std::move(buf.parents);
  buf = std::move(kept);  // the sampled window is one run now; strata reset
  st.missing_rate_out = buf.rows.missing_rate();
  report_.stage_reports.push_back(std::move(st));

  const net::NodeId e = topo_.edge(edge_index);
  if (obsy_) {
    obsy_->flight().note(e, now_s, "degrade-sample", population, keep.size());
    obsy_->series()
        .series("degrade.sampled_rows", topo_.node(e).name, "edge")
        .record(now_s, static_cast<double>(keep.size()));
  }
}

void FleetSim::degrade_summary_flush(std::size_t edge_index, double now_s,
                                     int level) {
  Buffer& buf = edge_buffers_[edge_index];
  const std::size_t population = buf.row_count;
  const net::NodeId e = topo_.edge(edge_index);
  auto& d = report_.degradation;
  const std::int64_t start_us = obs::now_us();

  // Count + level + window stamp ride in every summary.
  std::size_t wire_bytes = net::kMessageHeaderBytes + 24;

  StageReport st;
  st.player = "edge-operator";
  st.tier = Tier::kEdge;
  st.rows_in = population;
  st.rows_out = 0;
  st.columns_out = 0;
  st.missing_rate_in = buf.rows.missing_rate();

  if (level == 2) {
    // L2 sketch-only reduce: the window collapses to a count-min tally of
    // rows per sender plus a bottom-k quantile sample of the first measured
    // quantity. Both are mergeable and byte-stable, so the core could fold
    // summaries from many edges in any order; the retained sample doubles
    // as the CI input.
    approx::CountMinSketch tally(config_.degrade.countmin_width,
                                 config_.degrade.countmin_depth, config_.seed);
    std::size_t tiled = 0;
    for (const approx::Stratum& s : buf.strata) tiled += s.count;
    if (!buf.strata.empty() && tiled == population) {
      for (const approx::Stratum& s : buf.strata) tally.add(s.key, s.count);
    } else {
      tally.add(e, population);
    }
    approx::QuantileSketch quant(config_.degrade.sketch_capacity, config_.seed);
    const data::Column& col = buf.rows.column(1);
    const std::uint64_t key_base = static_cast<std::uint64_t>(e) << 32;
    for (std::size_t r = 0; r < population; ++r) {
      if (col.is_missing(r)) continue;
      quant.add(key_base | static_cast<std::uint64_t>(r), col.numeric(r));
    }

    std::size_t exact_n = 0;
    const double exact = column_mean(col, population, exact_n);
    const approx::Interval ci =
        approx::mean_interval(quant.sample_values(), exact_n);
    const bool covered = exact_n == 0 || ci.covers(exact);
    ++d.ci_windows;
    if (covered) ++d.ci_covered;
    d.ci_half_width_sum += ci.half_width;
    const double err = std::abs(ci.estimate - exact);
    d.abs_error_sum += err;
    d.max_abs_error = std::max(d.max_abs_error, err);
    if (d.windows.size() < kMaxWindowEstimates) {
      d.windows.push_back({edge_index, now_s, 2, population, quant.retained(),
                           ci.estimate, ci.half_width, exact, covered});
    } else {
      ++d.windows_truncated;
    }

    wire_bytes += tally.encode().size() + quant.encode().size();
    ++d.windows_sketch;
    st.stage_name = "degrade(sketch-reduce)";
    st.cost = config_.degrade.sketch_cost_base +
              config_.degrade.sketch_cost_per_row * static_cast<double>(population);
  } else {
    // L3 summary-only: the edge reports a bare row count and sheds the
    // window; fresh deploy artifacts also stop relaying through it (see
    // handle_artifact_arrival).
    ++d.windows_summary;
    st.stage_name = "degrade(summary-only)";
    st.cost = 0.01;
  }
  d.rows_approx += population;
  d.rows_sampled_out += population;
  st.missing_rate_out = 0.0;
  // det-sanctioned: wall_time_us is observability-only; to_json and the event log omit it
  st.wall_time_us = static_cast<std::uint64_t>(obs::now_us() - start_us);
  report_.stage_reports.push_back(std::move(st));

  if (obsy_) {
    obsy_->flight().note(e, now_s, "degrade-shed", population,
                         static_cast<std::size_t>(level));
    obsy_->series()
        .series("degrade.shed_rows", topo_.node(e).name, "edge")
        .record(now_s, static_cast<double>(population));
  }

  // Summary uplink: fixed-size, fire-and-forget semantics even on ack
  // channels — a lost summary only costs observability, never rows, so the
  // edge never burns a retry schedule on it when the wire is known dead.
  const std::size_t index = degrade_summaries_.size();
  degrade_summaries_.push_back({edge_index, level, wire_bytes,
                                static_cast<std::uint64_t>(population), false});
  ++d.summaries_sent;
  d.summary_bytes += wire_bytes;
  const bool ack = config_.channel.mode == net::ChannelMode::kAckRetry;
  if (!(ack && (!topo_.node(topo_.core()).up || !topo_.uplink(e).up()))) {
    const std::size_t link_index = topo_.uplink_index(e);
    const net::ChannelOutcome out =
        channels_[link_index].send(now_s, wire_bytes, link_rngs_[link_index]);
    if (out.accepted && out.delivered && !out.corrupted) {
      sched_.push(out.arrival_s, EventKind::kSummaryArrival, topo_.core(), index);
      if (out.duplicated) {
        sched_.push(out.duplicate_arrival_s, EventKind::kSummaryArrival,
                    topo_.core(), index);
      }
    }
  }

  // The window is answered: its rows leave the ledger as sampled-out, and
  // the checkpoint that covered them retires with the buffer.
  buf = Buffer{};
  edge_checkpoints_[edge_index] = Buffer{};
}

void FleetSim::handle_summary_arrival(const Event& event) {
  DegradeSummary& s = degrade_summaries_[event.message];
  if (s.delivered) return;  // duplicated frame
  if (!topo_.node(topo_.core()).up) return;  // nobody listening; summary dies
  s.delivered = true;
  ++report_.degradation.summaries_delivered;
  if (obsy_) {
    obsy_->flight().note(topo_.core(), event.time_s, "rx-summary",
                         static_cast<std::size_t>(s.rows_represented),
                         static_cast<std::size_t>(s.level));
  }
}

void FleetSim::set_load_storm(bool on, double now_s) {
  if (load_storm_ == on) return;  // overlapping storm windows
  load_storm_ = on;
  if (!on) return;
  ++report_.faults.load_storms;
  ++storm_epoch_;
  obs::registry().counter("sim.chaos.load_storms").add();
  // Compress every device's flush schedule: one storm-paced extra flush
  // chain per device. The chain carries the storm epoch, so flushes queued
  // by an already-ended storm die instead of reviving under a newer one.
  const double step = config_.device_flush_s / config_.chaos.load_storm_factor;
  for (std::size_t i = 0; i < config_.devices; ++i) {
    sched_.push(now_s + step, EventKind::kStormFlush, topo_.device(i),
                storm_epoch_);
  }
}

void FleetSim::handle_storm_flush(const Event& event) {
  if (!load_storm_ || event.message != storm_epoch_) return;  // storm over
  handle_device_flush(event);
  const double next =
      event.time_s + config_.device_flush_s / config_.chaos.load_storm_factor;
  if (next < config_.duration_s) {
    sched_.push(next, EventKind::kStormFlush, event.target, storm_epoch_);
  }
}

void FleetSim::degrade_settle(double now_s) {
  // Calm updates past the drain: each de-escalation rung needs a calm mark
  // plus a full dwell, so 2 updates per rung and 3 rungs = 6; run 8 for
  // margin. Controller-side only — no events, no draws, no wire bytes — so
  // L0-pinned and never-escalated runs are unaffected.
  for (int k = 1; k <= 8; ++k) {
    const double t =
        now_s + static_cast<double>(k) * config_.degrade.thresholds.dwell_s;
    for (std::size_t e = 0; e < config_.edges; ++e) {
      degrade_update(e, t, approx::DegradeSignals{});
    }
  }
}

void FleetSim::finalize_degradation() {
  auto& d = report_.degradation;
  for (std::size_t e = 0; e < config_.edges; ++e) {
    const approx::DegradationController& ctrl = degrade_ctrl_[e];
    EdgeDegradeTimeline timeline;
    timeline.edge = e;
    timeline.final_level = static_cast<int>(ctrl.level());
    for (std::size_t l = 0; l < 4; ++l) {
      timeline.time_at_level_s[l] = ctrl.time_at_level()[l];
    }
    for (const approx::LevelTransition& tr : ctrl.transitions()) {
      timeline.transitions.push_back(
          {e, tr.t_s, static_cast<int>(tr.from), static_cast<int>(tr.to)});
    }
    d.edges.push_back(std::move(timeline));
  }

  // Per-edge backpressure gauges — the raw signals behind the ladder,
  // visible even in pinned runs.
  for (std::size_t e = 0; e < config_.edges; ++e) {
    BackpressureGauge g;
    g.edge = e;
    const net::Channel& up = channels_[topo_.uplink_index(topo_.edge(e))];
    g.uplink_in_flight_highwater = up.in_flight_highwater();
    g.uplink_dead_letters = up.dead_letters();
    for (std::size_t i = e; i < config_.devices; i += config_.edges) {
      const net::Channel& ch = channels_[topo_.uplink_index(topo_.device(i))];
      g.device_in_flight_highwater =
          std::max(g.device_in_flight_highwater, ch.in_flight_highwater());
      g.device_dead_letters += ch.dead_letters();
    }
    g.sf_rows_highwater = static_cast<std::size_t>(degrade_sf_highwater_[e]);
    report_.faults.edge_gauges.push_back(g);
  }
}

void FleetSim::send(net::NodeId from, Buffer&& chunk, double now_s) {
  const std::size_t link_index = topo_.uplink_index(from);
  net::Link& link = topo_.link(link_index);
  const net::NodeId to = topo_.next_hop(from);
  const std::size_t rows = chunk.row_count;
  const bool from_device = from < config_.devices;
  const bool ack = config_.channel.mode == net::ChannelMode::kAckRetry;

  std::vector<std::uint64_t> parents = std::move(chunk.parents);

  net::Message msg;
  msg.src = from;
  msg.dst = to;
  msg.sent_s = now_s;
  msg.trace.id = next_trace_++;
  msg.trace.hop = from_device ? 0 : 1;
  msg.origin_s = std::move(chunk.origin_s);
  msg.payload = std::move(chunk.rows);
  bool tdf_open = false;
  std::size_t tdf_legacy_bytes = 0;
  if (telemetry_on() && from_device) {
    // The device-side codec: quantize to the wire resolution (idempotent —
    // rows resent from store-and-forward are already quantized), price the
    // counterfactual legacy model over the same rows, then encode the real
    // frame. The checksum is stamped over the quantized rows, which is what
    // the edge's decode must reproduce byte-for-byte.
    tdf::quantize(msg.payload, config_.telemetry.scale_bits);
    for (double& o : msg.origin_s) {
      o = tdf::quantize_value(o, config_.telemetry.scale_bits);
    }
    tdf_legacy_bytes = net::kMessageHeaderBytes +
                       net::wire_size_bytes(msg.payload) +
                       8 * msg.origin_s.size();
    tdf_open = tdf_session_open_[from] == 0;
    msg.tdf_frame = telemetry_encode(from, msg.payload, msg.origin_s);
  }
  msg.checksum = net::payload_checksum(msg.payload);
  const std::size_t bytes = net::wire_size_bytes(msg);

  // One journey record per send, whatever its fate. Copies `parents` —
  // keep_rows may still need to hand them back to a buffer.
  auto record_send = [&](const char* outcome, double t1_s, std::uint32_t attempts) {
    if (!obsy_) return;
    obs::HopRecord r;
    r.trace = msg.trace.id;
    r.hop = msg.trace.hop;
    r.kind = obs::HopKind::kSend;
    r.src = from;
    r.dst = to;
    r.t0_s = now_s;
    r.t1_s = t1_s;
    r.rows = rows;
    r.bytes = bytes;
    r.attempts = attempts;
    r.outcome = outcome;
    r.parents = parents;
    obsy_->journeys().record(std::move(r));
    obsy_->flight().note(from, now_s, outcome, rows, bytes);
  };

  // Put the rows back where they can survive after a failed reliable send:
  // a device store-and-forwards (or loses the window without a buffer), an
  // edge re-appends to its batch buffer for the next flush.
  auto keep_rows = [&](bool dead_letter) {
    if (from_device) {
      if (config_.device_buffer_rows > 0) {
        Buffer back;
        back.row_count = rows;
        back.rows = std::move(msg.payload);
        back.origin_s = std::move(msg.origin_s);
        back.parents = std::move(parents);
        if (telemetry_on()) {
          telemetry_store(from, std::move(back));
        } else {
          store_and_forward(from, std::move(back));
        }
      } else if (dead_letter) {
        report_.faults.rows_buffer_evicted += rows;
      } else {
        report_.rows_lost += rows;
      }
    } else {
      Buffer& buf = edge_buffers_[from - config_.devices];
      buf.rows.append_rows(msg.payload);
      buf.origin_s.insert(buf.origin_s.end(), msg.origin_s.begin(), msg.origin_s.end());
      buf.parents.insert(buf.parents.end(), parents.begin(), parents.end());
      if (degrade_on()) {
        buf.strata.push_back(
            {static_cast<std::uint32_t>(from), buf.row_count, rows});
      }
      buf.row_count += rows;
    }
  };

  // A stop-and-wait sender cannot complete a handshake with a crashed
  // receiver: fail fast and keep the rows rather than burning the full
  // retry schedule into a dead node. Fire-and-forget cannot know — it
  // transmits and the frame dies at the receiver (see handle_arrival).
  if (ack && !topo_.node(to).up) {
    record_send("receiver_down", 0.0, 0);
    keep_rows(false);
    return;
  }

  const bool tdf_msg = !msg.tdf_frame.empty();
  // Ack-mode channels repair corrupt frames internally (reject + retransmit
  // before the outcome surfaces); snapshot the stats so those repairs land
  // in the telemetry ledger.
  std::uint64_t tdf_pre_rejects = 0;
  std::uint64_t tdf_pre_retrans = 0;
  if (tdf_msg && ack) {
    tdf_pre_rejects = channels_[link_index].stats().corrupt_rejected;
    tdf_pre_retrans = channels_[link_index].stats().retransmits;
  }
  const net::ChannelOutcome out =
      channels_[link_index].send(now_s, bytes, link_rngs_[link_index]);
  if (degrade_on()) {
    // Fold the post-send queue depth into the owning edge's congestion
    // hint; its controller reads (and resets) the max at its next update.
    const std::size_t ei = (from_device ? to : from) - config_.devices;
    const double frac =
        static_cast<double>(channels_[link_index].in_flight(now_s)) /
        static_cast<double>(config_.channel.queue_capacity);
    degrade_queue_hint_[ei] = std::max(degrade_queue_hint_[ei], frac);
  }
  if (tdf_msg && ack) {
    report_.telemetry.frames_rejected +=
        channels_[link_index].stats().corrupt_rejected - tdf_pre_rejects;
    report_.telemetry.frames_retransmitted +=
        channels_[link_index].stats().retransmits - tdf_pre_retrans;
  }
  ++report_.messages_sent;
  obs::registry().counter("sim.net.messages").add();
  obs::registry().counter("sim.net.bytes").add(bytes);
  obs::registry().counter("net.link." + link.name() + ".bytes").add(bytes);
  if (!out.accepted) {
    // Backpressure: the bounded send queue refused the message.
    ++report_.messages_dropped;
    obs::registry().counter("sim.net.dropped").add();
    record_send("dead_letter", 0.0, out.attempts);
    flight_dump(from, "dead-letter", now_s);
    if (degrade_on()) {
      ++degrade_dead_letters_[(from_device ? to : from) - config_.devices];
    }
    keep_rows(true);
    return;
  }
  if (tdf_msg) {
    // The channel accepted the frame: the wire is charged whatever its fate,
    // and the counterfactual ledger charges the legacy model the same rows.
    auto& t = report_.telemetry;
    ++t.frames_sent;
    t.rows_encoded += rows;
    t.encoded_wire_bytes += bytes;
    t.legacy_wire_bytes += tdf_legacy_bytes;
    if (tdf_open) {
      // Session negotiation: the schema rides inline (2-byte length prefix +
      // blob) until one frame is known delivered intact.
      ++t.schema_negotiations;
      t.schema_bytes += 2 + tdf_schema_->encoded().size();
      if (out.delivered) tdf_session_open_[from] = 1;
    }
  }
  if (!out.delivered && !out.corrupted) {
    ++report_.messages_dropped;
    obs::registry().counter("sim.net.dropped").add();
    record_send(ack ? "timeout" : "dropped", 0.0, out.attempts);
    if (ack) {
      keep_rows(false);
    } else {
      report_.rows_lost += rows;
    }
    return;
  }
  const std::size_t index = messages_.size();
  msg.id = index;
  if (out.corrupted) {
    // Fire-and-forget only: the frame lands, but the wire flipped bits, so
    // the stamped checksum no longer matches what the receiver recomputes.
    record_send("corrupt", out.arrival_s, out.attempts);
    if (tdf_msg) {
      // Wire damage hits the frame bytes themselves; the FNV-1a32 trailer
      // no longer matches and the edge rejects without decoding a cell.
      msg.tdf_frame[msg.tdf_frame.size() / 2] ^= 0x10;
    }
    msg.checksum ^= 1;
    messages_.push_back(std::move(msg));
    msg_parents_.push_back(std::move(parents));
    sched_.push(out.arrival_s, EventKind::kCorruptArrival, to, index);
    if (out.duplicated) {
      sched_.push(out.duplicate_arrival_s, EventKind::kCorruptArrival, to, index);
    }
    return;
  }
  record_send("delivered", out.arrival_s, out.attempts);
  messages_.push_back(std::move(msg));
  msg_parents_.push_back(std::move(parents));
  sched_.push(out.arrival_s, EventKind::kArrival, to, index);
  if (out.duplicated) {
    sched_.push(out.duplicate_arrival_s, EventKind::kArrival, to, index);
  }
}

void FleetSim::handle_arrival(const Event& event) {
  const net::NodeId node = event.target;
  const net::Message& msg = messages_[event.message];
  if (!seen_[node].insert(msg.id).second) {
    ++report_.duplicates_discarded;
    obs::registry().counter("sim.net.duplicates_discarded").add();
    journey_arrive(msg.trace.id, obs::HopStream::kRows, msg.trace.hop, node,
                   event.time_s, msg.payload.rows(), "duplicate");
    return;
  }
  // Receivers verify every frame: an intact arrival must re-hash to its
  // stamped checksum (corrupt frames come in as kCorruptArrival instead).
  IOTML_INTERNAL_CHECK(net::payload_checksum(msg.payload) == msg.checksum,
                       "FleetSim: intact arrival failed checksum verification");
  if (!topo_.node(node).up) {
    // The receiver crashed while the frame was in flight: nobody is
    // listening, and the rows die with the dead node.
    report_.faults.rows_lost_to_crash += msg.payload.rows();
    obs::registry().counter("sim.faults.rows_lost_to_crash").add(msg.payload.rows());
    journey_arrive(msg.trace.id, obs::HopStream::kRows, msg.trace.hop, node,
                   event.time_s, msg.payload.rows(), "dead_receiver");
    return;
  }
  const double hop_latency_s = event.time_s - msg.sent_s;
  journey_arrive(msg.trace.id, obs::HopStream::kRows, msg.trace.hop, node,
                 event.time_s, msg.payload.rows(), "accepted");
  if (node == topo_.core()) {
    lat_edge_core_.record(hop_latency_s);
    for (double origin : msg.origin_s) lat_end_to_end_.record(event.time_s - origin);
    if (obsy_) {
      obsy_->flight().note(node, event.time_s, "rx-rows", msg.payload.rows(), msg.trace.id);
      obsy_->series()
          .series("uplink.latency_s", "core", "core")
          .record(event.time_s, hop_latency_s);
      obsy_->series()
          .series("uplink.rows", "core", "core")
          .record(event.time_s, static_cast<double>(msg.payload.rows()));
    }
    report_.rows_delivered += msg.payload.rows();
    core_buffer_.rows.append_rows(msg.payload);
    core_buffer_.row_count += msg.payload.rows();
  } else {
    lat_device_edge_.record(hop_latency_s);
    if (obsy_) {
      const std::string& entity = topo_.node(node).name;
      obsy_->flight().note(node, event.time_s, "rx-rows", msg.payload.rows(), msg.trace.id);
      obsy_->series()
          .series("uplink.latency_s", entity, "edge")
          .record(event.time_s, hop_latency_s);
      obsy_->series()
          .series("uplink.rows", entity, "edge")
          .record(event.time_s, static_cast<double>(msg.payload.rows()));
    }
    Buffer& buf = edge_buffers_[node - config_.devices];
    if (!msg.tdf_frame.empty()) {
      // The decode is load-bearing: the edge reconstructs the rows from the
      // wire bytes and feeds *those* into its sub-pipeline. The
      // reconstruction must hash to the checksum the device stamped over
      // what it encoded — decode errors can never slip downstream.
      tdf::Frame f = tdf::decode_frame(msg.tdf_frame, tdf_registry_);
      IOTML_INTERNAL_CHECK(
          net::payload_checksum(f.rows) == msg.checksum,
          "FleetSim: TDF decode does not reproduce the device's rows");
      ++report_.telemetry.frames_delivered;
      report_.telemetry.rows_decoded += f.rows.rows();
      buf.rows.append_rows(f.rows);
      buf.origin_s.insert(buf.origin_s.end(), f.origin_s.begin(),
                          f.origin_s.end());
    } else {
      buf.rows.append_rows(msg.payload);
      buf.origin_s.insert(buf.origin_s.end(), msg.origin_s.begin(), msg.origin_s.end());
    }
    buf.parents.insert(buf.parents.end(), msg_parents_[msg.id].begin(),
                       msg_parents_[msg.id].end());
    if (degrade_on()) {
      buf.strata.push_back({static_cast<std::uint32_t>(msg.src), buf.row_count,
                            msg.payload.rows()});
    }
    buf.row_count += msg.payload.rows();
  }
}

void FleetSim::handle_corrupt_arrival(const Event& event) {
  const net::NodeId node = event.target;
  const net::Message& msg = messages_[event.message];
  if (!seen_[node].insert(msg.id).second) {
    ++report_.duplicates_discarded;
    obs::registry().counter("sim.net.duplicates_discarded").add();
    journey_arrive(msg.trace.id, obs::HopStream::kRows, msg.trace.hop, node,
                   event.time_s, msg.payload.rows(), "duplicate");
    return;
  }
  // The receiver recomputes the checksum over what the wire delivered and
  // rejects the frame on mismatch: corrupt rows are counted, never scored.
  IOTML_INTERNAL_CHECK(net::payload_checksum(msg.payload) != msg.checksum,
                       "FleetSim: corrupt arrival passed checksum verification");
  if (!msg.tdf_frame.empty()) {
    // The damage lives in the frame bytes: the trailer checksum must catch
    // it before a decode is even attempted.
    IOTML_INTERNAL_CHECK(!tdf::frame_intact(msg.tdf_frame),
                         "FleetSim: corrupt TDF frame passed its trailer check");
    ++report_.telemetry.frames_rejected;
  }
  report_.faults.rows_corrupt_rejected += msg.payload.rows();
  obs::registry().counter("sim.net.rows_corrupt_rejected").add(msg.payload.rows());
  journey_arrive(msg.trace.id, obs::HopStream::kRows, msg.trace.hop, node,
                 event.time_s, msg.payload.rows(), "corrupt_rejected");
  if (obsy_) {
    obsy_->flight().note(node, event.time_s, "rx-corrupt", msg.payload.rows(), msg.trace.id);
  }
}

void FleetSim::handle_checkpoint(std::size_t edge_index) {
  if (!topo_.node(topo_.edge(edge_index)).up) return;  // crashed edges can't persist
  const Buffer& buf = edge_buffers_[edge_index];
  Buffer snap;
  snap.rows = buf.rows;
  snap.origin_s = buf.origin_s;
  snap.row_count = buf.row_count;
  snap.parents = buf.parents;
  snap.strata = buf.strata;
  edge_checkpoints_[edge_index] = std::move(snap);
  ++report_.faults.checkpoints_written;
  obs::registry().counter("sim.recovery.checkpoints_written").add();
  if (obsy_) {
    obsy_->flight().note(topo_.edge(edge_index), sched_.now_s(), "checkpoint",
                         buf.row_count);
  }
}

void FleetSim::handle_edge_crash(std::size_t edge_index) {
  net::NodeInfo& n = topo_.node(topo_.edge(edge_index));
  if (!n.up) return;  // already down (overlapping crash windows)
  n.up = false;
  ++report_.faults.edge_crashes;
  obs::registry().counter("sim.faults.edge_crash").add();
  // The black box survives the crash: dump the edge's recent events into
  // the fault ledger before its volatile state is wiped.
  flight_dump(topo_.edge(edge_index), "edge-crash", sched_.now_s());
  // Volatile state dies with the process: everything integrated since the
  // last checkpoint is gone. The checkpoint itself is durable storage.
  Buffer& buf = edge_buffers_[edge_index];
  const std::size_t persisted =
      std::min(edge_checkpoints_[edge_index].row_count, buf.row_count);
  report_.faults.rows_lost_to_crash += buf.row_count - persisted;
  obs::registry().counter("sim.faults.rows_lost_to_crash").add(buf.row_count - persisted);
  buf = Buffer{};
}

void FleetSim::handle_edge_restart(std::size_t edge_index) {
  net::NodeInfo& n = topo_.node(topo_.edge(edge_index));
  if (n.up) return;  // already restarted (overlapping crash windows)
  n.up = true;
  const Buffer& ckpt = edge_checkpoints_[edge_index];
  if (ckpt.row_count == 0) return;
  Buffer& buf = edge_buffers_[edge_index];
  IOTML_INTERNAL_CHECK(buf.row_count == 0,
                       "FleetSim: restart over a live edge buffer");
  buf.rows = ckpt.rows;
  buf.origin_s = ckpt.origin_s;
  buf.row_count = ckpt.row_count;
  buf.parents = ckpt.parents;
  buf.strata = ckpt.strata;
  ++report_.faults.checkpoints_restored;
  report_.faults.rows_recovered += ckpt.row_count;
  obs::registry().counter("sim.recovery.checkpoints_restored").add();
  obs::registry().counter("sim.recovery.rows_recovered").add(ckpt.row_count);
}

void FleetSim::set_partition(bool on) {
  if (partitioned_ == on) return;
  partitioned_ = on;
  if (on) {
    ++report_.faults.partitions;
    obs::registry().counter("sim.chaos.partitions").add();
    // The core just lost its edges: its recent traffic is the context an
    // operator wants first.
    flight_dump(topo_.core(), "partition", sched_.now_s());
  }
  // Sever (or restore) every edge<->core link, both directions. An ending
  // partition restores the links wholesale; an independent link outage
  // still active at that instant is subsumed (its up event was suppressed).
  for (std::size_t l = 0; l < topo_.num_links(); ++l) {
    if (core_link_[l] != 0) topo_.link(l).set_up(!on);
  }
}

void FleetSim::set_loss_burst(bool on) {
  if (on) {
    ++report_.faults.loss_bursts;
    obs::registry().counter("sim.chaos.loss_bursts").add();
  }
  // The burst hits the device radio tier: every link that is not an
  // edge<->core trunk (device uplinks, and edge->device downlinks if the
  // broadcast direction exists).
  for (std::size_t l = 0; l < topo_.num_links(); ++l) {
    if (core_link_[l] == 0) {
      topo_.link(l).set_drop_prob(on ? config_.chaos.burst_drop_prob
                                     : base_drop_prob_[l]);
    }
  }
}

void FleetSim::set_corruption_storm(bool on) {
  if (on) {
    ++report_.faults.corruption_storms;
    obs::registry().counter("sim.chaos.corruption_storms").add();
  }
  for (std::size_t l = 0; l < topo_.num_links(); ++l) {
    if (core_link_[l] == 0) {
      topo_.link(l).set_corrupt_prob(on ? config_.chaos.storm_corrupt_prob
                                        : base_corrupt_prob_[l]);
    }
  }
}

void FleetSim::store_and_forward(net::NodeId device, Buffer&& chunk) {
  std::deque<Buffer>& q = device_sf_[device];
  q.push_back(std::move(chunk));
  const std::size_t cap = config_.device_buffer_rows;
  std::size_t total = stored_rows(device);
  // Bounded buffer, oldest-first eviction: whole chunks while more than one
  // remains, then rows off the front of the survivor if it alone overflows.
  while (total > cap && q.size() > 1) {
    report_.faults.rows_buffer_evicted += q.front().row_count;
    obs::registry().counter("sim.recovery.rows_evicted").add(q.front().row_count);
    total -= q.front().row_count;
    q.pop_front();
  }
  if (total > cap) {
    Buffer& b = q.front();
    const std::size_t drop = total - cap;
    std::vector<std::size_t> keep(b.row_count - drop);
    std::iota(keep.begin(), keep.end(), drop);
    b.rows = b.rows.select_rows(keep);
    b.row_count -= drop;
    report_.faults.rows_buffer_evicted += drop;
    obs::registry().counter("sim.recovery.rows_evicted").add(drop);
  }
}

std::size_t FleetSim::stored_rows(net::NodeId device) const {
  std::size_t total = 0;
  for (const Buffer& b : device_sf_[device]) total += b.row_count;
  return total;
}

std::vector<std::uint8_t> FleetSim::telemetry_encode(
    net::NodeId device, const data::Dataset& ds,
    const std::vector<double>& origin_s) {
  if (!tdf_schema_) {
    tdf_schema_ = tdf::Schema::infer(ds, config_.telemetry.scale_bits);
    // The edge learns the schema from the session-open frame it decodes;
    // registering the same bytes here as well keeps decode independent of
    // arrival order under latency jitter (registration is idempotent, and
    // the ledger still charges every inline negotiation).
    tdf_registry_.add(*tdf_schema_);
    report_.telemetry.schema_id = tdf_schema_->id();
    report_.telemetry.schema_fields = tdf_schema_->size();
  }
  const bool include_schema = tdf_session_open_[device] == 0;
  return tdf::encode_frame(*tdf_schema_, ds, origin_s,
                           util::narrow_u32(device, "telemetry device id"),
                           tdf_seq_[device]++, include_schema);
}

void FleetSim::telemetry_store(net::NodeId device, Buffer&& chunk) {
  // Quantize on entry so the sizing encode sees exactly what a later send
  // re-encodes (quantization is idempotent).
  tdf::quantize(chunk.rows, config_.telemetry.scale_bits);
  for (double& o : chunk.origin_s) {
    o = tdf::quantize_value(o, config_.telemetry.scale_bits);
  }
  const std::vector<std::uint8_t> frame =
      telemetry_encode(device, chunk.rows, chunk.origin_s);
  const std::size_t rows = chunk.row_count;
  std::deque<Buffer>& q = device_sf_[device];
  tdf::DeviceLog& log = device_logs_[device];
  q.push_back(std::move(chunk));
  auto& t = report_.telemetry;
  auto drop_front = [&](std::size_t rows_evicted) {
    IOTML_INTERNAL_CHECK(
        !q.empty() && q.front().row_count == rows_evicted,
        "FleetSim: telemetry ring log out of step with store-and-forward");
    ++t.log_frames_evicted;
    t.log_rows_evicted += rows_evicted;
    report_.faults.rows_buffer_evicted += rows_evicted;
    obs::registry().counter("sim.recovery.rows_evicted").add(rows_evicted);
    q.pop_front();
  };
  // Byte bound: the ring evicts whole oldest frames until the new one fits.
  for (const tdf::DeviceLog::Entry& e : log.append(frame.size(), rows)) {
    drop_front(e.rows);
  }
  // The legacy row cap still applies, at whole-frame granularity — the log
  // pops in lockstep so bytes and rows stay two views of the same backlog.
  const std::size_t cap = config_.device_buffer_rows;
  while (stored_rows(device) > cap && q.size() > 1) {
    drop_front(log.pop_oldest().rows);
  }
}

void FleetSim::journey_arrive(std::uint64_t trace, obs::HopStream stream,
                              std::uint32_t hop, net::NodeId node, double t_s,
                              std::size_t rows, const char* outcome) {
  if (!obsy_) return;
  obs::HopRecord r;
  r.trace = trace;
  r.hop = hop;
  r.kind = obs::HopKind::kArrive;
  r.stream = stream;
  r.src = node;
  r.dst = node;
  r.t0_s = t_s;
  r.t1_s = t_s;
  r.rows = rows;
  r.outcome = outcome;
  obsy_->journeys().record(std::move(r));
}

void FleetSim::flight_dump(net::NodeId entity, const char* trigger, double t_s) {
  if (!obsy_) return;
  FaultLedger& faults = report_.faults;
  if (faults.flight_dumps.size() >= kMaxFlightDumps) {
    ++faults.flight_dumps_truncated;
    return;
  }
  FlightDump dump;
  dump.entity = topo_.node(entity).name;
  dump.trigger = trigger;
  dump.t_s = t_s;
  dump.events = obsy_->flight().dump_lines(entity);
  faults.flight_dumps.push_back(std::move(dump));
}

void FleetSim::finalize() {
  if (telemetry_on()) {
    for (const tdf::DeviceLog& log : device_logs_) {
      report_.telemetry.log_highwater_bytes = std::max<std::uint64_t>(
          report_.telemetry.log_highwater_bytes, log.highwater_bytes());
    }
  }
  for (const Buffer& buf : edge_buffers_) report_.rows_stranded += buf.row_count;
  // Undrained store-and-forward backlog is the device-side mirror of an
  // edge's stranded buffer.
  for (std::size_t dvc = 0; dvc < config_.devices; ++dvc) {
    report_.rows_stranded += stored_rows(dvc);
  }
  // Deploy runs keep post-window rows on-device for local scoring; they are
  // accounted as retained, not lost.
  if (config_.deploy.enabled) {
    for (std::size_t dvc = 0; dvc < config_.devices; ++dvc) {
      report_.faults.rows_retained += device_data_[dvc].rows() - device_cursor_[dvc];
    }
  }
  if (core_buffer_.row_count == 0) return;

  std::vector<std::size_t> order(core_buffer_.row_count);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const data::Column& ts = core_buffer_.rows.column(0);
  std::stable_sort(order.begin(), order.end(), [&ts](std::size_t a, std::size_t b) {
    return ts.numeric(a) < ts.numeric(b);
  });
  data::Dataset ds = core_buffer_.rows.select_rows(order);

  std::vector<int> labels;
  labels.reserve(ds.rows());
  for (std::size_t r = 0; r < ds.rows(); ++r) {
    labels.push_back(truth_label(ds.column(0).numeric(r)));
  }
  ds.set_labels(std::move(labels));

  ds = tiers_.core.run(std::move(ds), core_rng_);
  for (const StageReport& r : tiers_.core.reports()) {
    report_.stage_reports.push_back(r);
  }

  const std::int64_t start_us = obs::now_us();
  // Train on sensor features only: the label is a function of time inside
  // this window, so keeping the timestamp column would let the tree learn a
  // clock shortcut instead of the sensed world.
  std::vector<std::size_t> feature_cols;
  for (std::size_t c = 0; c < ds.num_columns(); ++c) {
    if (ds.column(c).name() != "timestamp") feature_cols.push_back(c);
  }
  const data::Dataset features =
      feature_cols.empty() || feature_cols.size() == ds.num_columns()
          ? ds
          : ds.select_columns(feature_cols);
  std::vector<std::size_t> train_idx;
  std::vector<std::size_t> test_idx;
  for (std::size_t i = 0; i < features.rows(); ++i) {
    (i % 4 == 3 ? test_idx : train_idx).push_back(i);
  }
  StageReport analytics;
  analytics.stage_name = "analytics(decision-tree)";
  analytics.player = "core-operator";
  analytics.tier = Tier::kCore;
  analytics.rows_in = ds.rows();
  analytics.rows_out = ds.rows();
  analytics.columns_out = ds.num_columns();
  analytics.missing_rate_in = ds.missing_rate();
  analytics.missing_rate_out = ds.missing_rate();
  if (!train_idx.empty() && !test_idx.empty()) {
    const data::Dataset train = features.select_rows(train_idx);
    const data::Dataset test = features.select_rows(test_idx);
    learners::DecisionTree tree;
    tree.fit(train);
    report_.accuracy = tree.accuracy(test);
    report_.train_rows = train.rows();
    report_.test_rows = test.rows();
    analytics.cost = static_cast<double>(tree.node_count());
    if (config_.deploy.enabled) {
      deploy_train_ = train;
      deploy_test_ = test;
    }
  }
  // det-sanctioned: wall_time_us is observability-only; to_json and the event log omit it
  analytics.wall_time_us = static_cast<std::uint64_t>(obs::now_us() - start_us);
  report_.stage_reports.push_back(std::move(analytics));
}

int FleetSim::truth_label(double time_s) const {
  // The analytics concept of the Fig. 1 example: "comfortable" iff the true
  // temperature at that instant lies in [20, 28].
  const double temp = truths_[0](time_s);
  return temp >= 20.0 && temp <= 28.0 ? 1 : 0;
}

namespace {

deploy::CompiledModel compile_for(deploy::ModelKind kind, const data::Dataset& train) {
  switch (kind) {
    case deploy::ModelKind::kTree: {
      learners::DecisionTree tree;
      tree.fit(train);
      return deploy::compile(tree, train);
    }
    case deploy::ModelKind::kLinear: {
      learners::LogisticRegression lr;
      lr.fit(train);
      return deploy::compile(lr, train);
    }
    case deploy::ModelKind::kNaiveBayes: {
      learners::NaiveBayes nb;
      nb.fit(train);
      return deploy::compile(nb, train);
    }
  }
  return {};
}

}  // namespace

void FleetSim::prepare_deploy() {
  obs::Span span("sim.deploy_prepare", "deploy");
  DeploySummary& d = report_.deploy;
  d.enabled = true;
  d.model = deploy::model_kind_name(config_.deploy.model);
  d.precision = deploy::precision_name(config_.deploy.precision);
  // Nothing reached the core, or the window saw a single class: no model
  // worth shipping. The summary stays enabled with every device missed.
  if (deploy_train_.rows() == 0 || deploy_test_.rows() == 0) return;

  deploy::CompiledModel f32 = compile_for(config_.deploy.model, deploy_train_);
  d.artifact_bytes_float32 = f32.size_bytes();
  if (config_.deploy.precision == deploy::Precision::kFloat32) {
    d.holdout_accuracy_float = deploy::holdout_accuracy(f32, deploy_test_);
    d.holdout_accuracy_deployed = d.holdout_accuracy_float;
    deployed_model_ = std::move(f32);
  } else {
    const deploy::QuantizationReport q = deploy::quantize_with_report(
        f32, config_.deploy.precision, deploy_test_, &deployed_model_);
    d.holdout_accuracy_float = q.holdout_accuracy_float;
    d.holdout_accuracy_deployed = q.holdout_accuracy_quantized;
  }
  d.artifact_bytes_deployed = deployed_model_.size_bytes();
  const deploy::InferenceCost cost = deployed_model_.cost_per_row();
  d.cost_multiply_adds = cost.multiply_adds;
  d.cost_comparisons = cost.comparisons;
  d.cost_table_lookups = cost.table_lookups;
  // The broadcast ships the real encoded bytes, framed like any message.
  artifact_wire_bytes_ = net::kMessageHeaderBytes + d.artifact_bytes_deployed;
  device_runtime_.emplace(deployed_model_);
  deploy_ready_ = true;

  if (config_.deploy.stale_fallback) {
    // The prior epoch's artifact: what the previous deployment round would
    // have compiled, here approximated as the model learned from the first
    // half of the training window. Devices the fresh broadcast never
    // reaches keep scoring with this instead of going dark.
    const std::size_t half = deploy_train_.rows() / 2;
    if (half >= 2) {
      std::vector<std::size_t> idx(half);
      std::iota(idx.begin(), idx.end(), std::size_t{0});
      deploy::CompiledModel prior =
          compile_for(config_.deploy.model, deploy_train_.select_rows(idx));
      if (config_.deploy.precision == deploy::Precision::kFloat32) {
        stale_model_ = std::move(prior);
      } else {
        deploy::quantize_with_report(prior, config_.deploy.precision, deploy_test_,
                                     &stale_model_);
      }
      stale_runtime_.emplace(stale_model_);
      stale_ready_ = true;
    }
  }
}

void FleetSim::run_deploy_phase() {
  prepare_deploy();
  if (deploy_ready_) {
    const double t0 = std::max(sched_.now_s(), config_.duration_s);
    sched_.push(t0, EventKind::kDeployBroadcast, topo_.core());
    if (config_.chaos.crash_during_broadcast && config_.edges > 0) {
      // The chaos harness's timed scenario: edge 0 dies the instant the
      // broadcast leaves the core and returns after the configured
      // downtime. Its devices miss the fresh artifact and must fall back
      // to the prior epoch's (DeployConfig::stale_fallback).
      sched_.push(t0, EventKind::kEdgeCrash, 0);
      sched_.push(t0 + config_.chaos.broadcast_crash_downtime_s,
                  EventKind::kEdgeRestart, 0);
    }
    while (!sched_.empty()) handle(sched_.pop());
  }
  if (stale_ready_) {
    // Degraded mode: every online device the fresh broadcast never reached
    // serves the prior epoch's artifact; staleness is ledgered.
    const double t1 = std::max(sched_.now_s(), config_.duration_s);
    for (std::size_t i = 0; i < config_.devices; ++i) {
      const net::NodeId dev = topo_.device(i);
      if (device_scored_[i] == 0 && topo_.node(dev).up) {
        score_on_device(dev, t1, /*stale=*/true);
      }
    }
    while (!sched_.empty()) handle(sched_.pop());
  }
  DeploySummary& d = report_.deploy;
  d.devices_missed = config_.devices - d.devices_deployed - d.devices_stale;
  d.device_accuracy =
      d.predictions_delivered == 0
          ? 0.0
          : static_cast<double>(d.predictions_correct) /
                static_cast<double>(d.predictions_delivered);
  report_.faults.stale_model_devices = d.devices_stale;
}

void FleetSim::handle_deploy_broadcast(const Event& event) {
  if (!topo_.node(topo_.core()).up) {
    // The core is down at broadcast time: no fresh artifact leaves it, and
    // the whole fleet serves the prior epoch's model (stale fallback).
    obs::registry().counter("deploy.broadcasts_skipped").add();
    return;
  }
  obs::registry().counter("deploy.broadcasts").add();
  // The broadcast's root trace id: every downlink frame of this epoch lists
  // it as parent, so fleetscope can reconstruct the artifact's journey.
  broadcast_trace_ = next_trace_++;
  if (obsy_) {
    obs::HopRecord origin;
    origin.trace = broadcast_trace_;
    origin.kind = obs::HopKind::kOrigin;
    origin.stream = obs::HopStream::kArtifact;
    origin.src = topo_.core();
    origin.dst = topo_.core();
    origin.t0_s = event.time_s;
    origin.t1_s = event.time_s;
    origin.bytes = artifact_wire_bytes_;
    obsy_->journeys().record(std::move(origin));
    obsy_->flight().note(topo_.core(), event.time_s, "broadcast", config_.edges,
                         artifact_wire_bytes_);
  }
  for (std::size_t j = 0; j < config_.edges; ++j) {
    send_artifact(topo_.edge(j), event.time_s);
  }
}

void FleetSim::send_artifact(net::NodeId to, double now_s) {
  const std::size_t link_index = topo_.downlink_index(to);
  // The sender's radio spends the bytes whether or not the wire delivers.
  report_.deploy.downlink_bytes += artifact_wire_bytes_;
  obs::registry().counter("deploy.artifact_sends").add();
  obs::registry().counter("deploy.downlink_bytes").add(artifact_wire_bytes_);
  const net::ChannelOutcome out =
      channels_[link_index].send(now_s, artifact_wire_bytes_, link_rngs_[link_index]);
  const std::uint64_t frame_trace = next_trace_++;
  auto record_artifact_send = [&](const char* outcome, double t1_s) {
    if (!obsy_) return;
    obs::HopRecord r;
    r.trace = frame_trace;
    r.hop = to >= config_.devices ? 0 : 1;  // core->edge, then edge->device
    r.kind = obs::HopKind::kSend;
    r.stream = obs::HopStream::kArtifact;
    r.src = to >= config_.devices ? topo_.core() : topo_.next_hop(to);
    r.dst = to;
    r.t0_s = now_s;
    r.t1_s = t1_s;
    r.bytes = artifact_wire_bytes_;
    r.attempts = out.attempts;
    r.outcome = outcome;
    r.parents = {broadcast_trace_};
    obsy_->journeys().record(std::move(r));
  };
  if (out.corrupted) {
    // The artifact frame fails its checksum at the receiver, which keeps
    // its prior model rather than binding corrupt parameters.
    obs::registry().counter("deploy.artifact_corrupt_rejected").add();
    record_artifact_send("corrupt", out.arrival_s);
    return;
  }
  if (!out.accepted || !out.delivered) {
    record_artifact_send(out.accepted ? "dropped" : "dead_letter", 0.0);
    return;
  }
  record_artifact_send("delivered", out.arrival_s);
  sched_.push(out.arrival_s, EventKind::kArtifactArrival, to);
  if (out.duplicated) {
    sched_.push(out.duplicate_arrival_s, EventKind::kArtifactArrival, to);
  }
}

void FleetSim::handle_artifact_arrival(const Event& event) {
  const net::NodeId node = event.target;
  const std::uint32_t hop = node >= config_.devices ? 0 : 1;
  if (artifact_seen_[node] != 0) {
    obs::registry().counter("deploy.duplicates_discarded").add();
    journey_arrive(broadcast_trace_, obs::HopStream::kArtifact, hop, node,
                   event.time_s, 0, "duplicate");
    return;
  }
  artifact_seen_[node] = 1;
  if (obsy_ && topo_.node(node).up) {
    obsy_->flight().note(node, event.time_s, "rx-artifact", artifact_wire_bytes_);
  }
  journey_arrive(broadcast_trace_, obs::HopStream::kArtifact, hop, node, event.time_s,
                 0, topo_.node(node).up ? "accepted" : "dead_receiver");
  if (node >= config_.devices) {
    // An edge: relay the artifact to every attached device (a down edge
    // strands the broadcast; its devices end up in devices_missed).
    if (!topo_.node(node).up) return;
    const std::size_t j = node - config_.devices;
    if (degrade_on() &&
        degrade_ctrl_[j].level() == approx::DegradeLevel::kSummary) {
      // L3 summary-only: the edge sheds artifact relays along with rows; its
      // devices keep serving the stale fallback (or land in devices_missed).
      ++report_.degradation.artifact_relays_skipped;
      obs::registry().counter("sim.degrade.artifact_relays_skipped").add();
      return;
    }
    for (std::size_t i = 0; i < config_.devices; ++i) {
      if (i % config_.edges == j) send_artifact(topo_.device(i), event.time_s);
    }
    return;
  }
  if (!topo_.node(node).up) return;  // churn: device offline at arrival
  score_on_device(node, event.time_s, /*stale=*/false);
}

void FleetSim::score_on_device(net::NodeId device, double now_s, bool stale) {
  DeploySummary& d = report_.deploy;
  std::optional<deploy::DeviceRuntime>& slot = stale ? stale_runtime_ : device_runtime_;
  IOTML_CHECK(slot.has_value(),
              "FleetSim::score_on_device: runtime not compiled before scoring");
  deploy::DeviceRuntime& runtime = *slot;
  if (stale) {
    ++d.devices_stale;
    obs::registry().counter("sim.recovery.stale_model_serves").add();
  } else {
    ++d.devices_deployed;
    device_scored_[device] = 1;
    obs::registry().counter("deploy.devices_deployed").add();
  }

  const data::Dataset& all = device_data_[device];
  const std::size_t begin = device_cursor_[device];
  const std::size_t count = all.rows() - begin;
  if (count == 0) return;

  runtime.bind(all);
  PredBatch batch;
  batch.device = device;
  batch.rows = count;
  for (std::size_t r = begin; r < all.rows(); ++r) {
    const int pred = runtime.predict_row(all, r);
    if (pred == truth_label(all.column(0).numeric(r))) ++batch.correct;
  }
  if (stale) {
    d.rows_scored_stale += count;
    obs::registry().counter("sim.recovery.rows_scored_stale").add(count);
  } else {
    d.rows_scored += count;
    obs::registry().counter("deploy.rows_scored").add(count);
  }

  // Counterfactual: what uplinking these raw rows (the pre-deployment
  // regime) would have cost. The payload crosses both hops; edge batching
  // would amortize the second header, which this deliberately ignores —
  // the payload bytes dominate.
  std::vector<std::size_t> idx(count);
  std::iota(idx.begin(), idx.end(), begin);
  net::Message raw;
  raw.payload = all.select_rows(idx);
  raw.origin_s = {now_s};
  d.uplink_raw_bytes += 2 * net::wire_size_bytes(raw);

  // One bit per prediction on the wire, plus a u32 row count. Ground truth
  // never travels: the core evaluates against labels it already knows.
  batch.wire_bytes = net::kMessageHeaderBytes + 4 + (count + 7) / 8;
  pred_batches_.push_back(batch);
  pred_traces_.push_back(next_trace_++);
  if (obsy_) {
    obs::HopRecord origin;
    origin.trace = pred_traces_.back();
    origin.kind = obs::HopKind::kOrigin;
    origin.stream = obs::HopStream::kPredictions;
    origin.src = device;
    origin.dst = device;
    origin.t0_s = now_s;
    origin.t1_s = now_s;
    origin.rows = count;
    origin.bytes = batch.wire_bytes;
    obsy_->journeys().record(std::move(origin));
    obsy_->flight().note(device, now_s, stale ? "score-stale" : "score", count);
  }
  send_predictions(device, pred_batches_.size() - 1, now_s);
}

void FleetSim::send_predictions(net::NodeId from, std::size_t batch, double now_s) {
  const std::size_t link_index = topo_.uplink_index(from);
  const std::size_t bytes = pred_batches_[batch].wire_bytes;
  const net::NodeId to = topo_.next_hop(from);
  report_.deploy.uplink_prediction_bytes += bytes;
  obs::registry().counter("deploy.prediction_bytes").add(bytes);
  const net::ChannelOutcome out =
      channels_[link_index].send(now_s, bytes, link_rngs_[link_index]);
  const std::uint64_t frame_trace = next_trace_++;
  auto record_pred_send = [&](const char* outcome, double t1_s) {
    if (!obsy_) return;
    obs::HopRecord r;
    r.trace = frame_trace;
    r.hop = from < config_.devices ? 0 : 1;
    r.kind = obs::HopKind::kSend;
    r.stream = obs::HopStream::kPredictions;
    r.src = from;
    r.dst = to;
    r.t0_s = now_s;
    r.t1_s = t1_s;
    r.rows = pred_batches_[batch].rows;
    r.bytes = bytes;
    r.attempts = out.attempts;
    r.outcome = outcome;
    r.parents = {pred_traces_[batch]};
    obsy_->journeys().record(std::move(r));
  };
  if (out.corrupted) {
    // A corrupt prediction batch is rejected at the receiver; predictions
    // are best-effort telemetry and are not retried in fire-and-forget mode.
    obs::registry().counter("deploy.prediction_corrupt_rejected").add();
    record_pred_send("corrupt", out.arrival_s);
    return;
  }
  if (!out.accepted || !out.delivered) {
    record_pred_send(out.accepted ? "dropped" : "dead_letter", 0.0);
    return;
  }
  record_pred_send("delivered", out.arrival_s);
  sched_.push(out.arrival_s, EventKind::kPredictionArrival, to, batch);
  if (out.duplicated) {
    sched_.push(out.duplicate_arrival_s, EventKind::kPredictionArrival, to, batch);
  }
}

void FleetSim::handle_prediction_arrival(const Event& event) {
  const net::NodeId node = event.target;
  const std::uint32_t hop = node == topo_.core() ? 1 : 0;
  if (!pred_seen_[node].insert(event.message).second) {
    obs::registry().counter("deploy.duplicates_discarded").add();
    journey_arrive(pred_traces_[event.message], obs::HopStream::kPredictions, hop,
                   node, event.time_s, pred_batches_[event.message].rows, "duplicate");
    return;
  }
  if (node == topo_.core()) {
    const PredBatch& batch = pred_batches_[event.message];
    report_.deploy.predictions_delivered += batch.rows;
    report_.deploy.predictions_correct += batch.correct;
    obs::registry().counter("deploy.predictions_delivered").add(batch.rows);
    journey_arrive(pred_traces_[event.message], obs::HopStream::kPredictions, hop,
                   node, event.time_s, batch.rows, "accepted");
    if (obsy_) {
      obsy_->flight().note(node, event.time_s, "rx-predictions", batch.rows);
    }
    return;
  }
  journey_arrive(pred_traces_[event.message], obs::HopStream::kPredictions, hop, node,
                 event.time_s, pred_batches_[event.message].rows,
                 topo_.node(node).up ? "accepted" : "dead_receiver");
  if (!topo_.node(node).up) return;  // stranded at a down edge
  send_predictions(node, event.message, event.time_s);
}

// ---- OTA delta updates (DESIGN.md §14) ------------------------------------

void FleetSim::schedule_ota_epochs() {
  // Epochs fire *inside* the learning window, evenly spaced at
  // duration * (e+1)/(epochs+1), plus a seeded jitter that desynchronizes
  // retrains from the flush schedule — so chaos windows genuinely overlap
  // patch transfers.
  for (int e = 0; e < config_.ota.epochs; ++e) {
    const double base = config_.duration_s * static_cast<double>(e + 1) /
                        static_cast<double>(config_.ota.epochs + 1);
    const double jitter = config_.ota.epoch_jitter_s > 0.0
                              ? epoch_rng_.uniform(0.0, config_.ota.epoch_jitter_s)
                              : 0.0;
    sched_.push(base + jitter, EventKind::kOtaEpoch, topo_.core(),
                static_cast<std::size_t>(e));
  }
}

void FleetSim::handle_ota_epoch(const Event& event) {
  OtaSummary& ota = report_.deploy.ota;
  const int epoch = static_cast<int>(event.message);

  // Newest version wins. In-flight transfers for older rollouts stop (their
  // chunks count as stale on arrival), and a rollout still waiting on its
  // verdict is superseded outright — its canaries simply join this epoch's
  // base population, one version behind.
  for (std::size_t d = 0; d < config_.devices; ++d) {
    const std::size_t t = ota_active_transfer_[d];
    if (t != kNoMessage) ota_transfers_[t].done = true;
  }
  for (OtaRollout& prior : ota_rollouts_) {
    if (!prior.verdict_issued) {
      prior.verdict_issued = true;
      ota.epochs_log[prior.entry].outcome = "superseded";
    }
  }

  ota.epochs_log.push_back({});
  OtaEpochEntry& entry = ota.epochs_log.back();
  entry.epoch = epoch;
  entry.t_s = event.time_s;

  if (!topo_.node(topo_.core()).up) {
    entry.outcome = "core-down";
    return;
  }
  if (core_buffer_.row_count < config_.ota.min_train_rows) {
    entry.outcome = "no-data";
    return;
  }

  // Retrain on everything the core has integrated so far, time-ordered and
  // labeled the same way finalize() does. The timestamp column is dropped
  // (same clock-shortcut reason); the full sensor schema is kept — no
  // per-epoch MI reduction — so the artifact schema stays stable across
  // epochs and consecutive images stay delta-friendly.
  std::vector<std::size_t> order(core_buffer_.row_count);
  std::iota(order.begin(), order.end(), std::size_t{0});
  {
    const data::Column& ts = core_buffer_.rows.column(0);
    std::stable_sort(order.begin(), order.end(), [&ts](std::size_t a, std::size_t b) {
      return ts.numeric(a) < ts.numeric(b);
    });
  }
  data::Dataset ds = core_buffer_.rows.select_rows(order);
  std::vector<int> labels;
  labels.reserve(ds.rows());
  for (std::size_t r = 0; r < ds.rows(); ++r) {
    labels.push_back(truth_label(ds.column(0).numeric(r)));
  }
  ds.set_labels(std::move(labels));
  std::vector<std::size_t> feature_cols;
  for (std::size_t c = 0; c < ds.num_columns(); ++c) {
    if (ds.column(c).name() != "timestamp") feature_cols.push_back(c);
  }
  const data::Dataset train =
      feature_cols.empty() || feature_cols.size() == ds.num_columns()
          ? ds
          : ds.select_columns(feature_cols);
  entry.train_rows = train.rows();

  deploy::CompiledModel model = compile_for(config_.deploy.model, train);
  if (config_.deploy.precision != deploy::Precision::kFloat32) {
    model = deploy::quantize(model, config_.deploy.precision);
  }
  std::vector<std::uint8_t> image = model.encode();
  const std::uint32_t target = ota::image_checksum(image);
  entry.image_bytes = image.size();

  // Counterfactual ledger: the naive pipeline re-ships the full image to
  // every device every epoch — no-change epochs included, it has no way to
  // know — over the same two unicast hops (core->edge, edge->device) the
  // real transport uses, chunked and framed identically.
  std::vector<std::uint8_t> full_bytes = ota::diff({}, image).encode();
  const std::uint64_t full_chunks =
      (full_bytes.size() + config_.ota.chunk_bytes - 1) / config_.ota.chunk_bytes;
  const std::uint64_t full_per_hop =
      full_bytes.size() +
      full_chunks * (ota::kChunkFramingBytes + net::kMessageHeaderBytes);
  entry.full_broadcast_bytes =
      full_per_hop * 2 * static_cast<std::uint64_t>(config_.devices);
  ota.full_broadcast_bytes += entry.full_broadcast_bytes;

  if (target == ota_chain_.head_checksum()) {
    // The retrain reproduced the promoted head byte-for-byte: nothing to
    // ship. (Devices behind the head stay behind until the next real
    // version; the histogram reveals them.)
    entry.outcome = "no-change";
    return;
  }

  OtaRollout ro;
  ro.epoch = epoch;
  ro.version_id = ota_next_version_++;
  ro.base_checksum = ota_chain_.head_checksum();
  ro.target_checksum = target;
  ro.provisioning = ota_chain_.empty();
  ro.full = ota::ChunkedPatch(std::move(full_bytes), config_.ota.chunk_bytes,
                              ro.version_id);
  if (!ro.provisioning) {
    // Ship whichever payload is cheaper on the wire. A retrain that merely
    // extends the data diffs to a fraction of the image, but one that
    // restructures the tree can produce a delta as large as the image
    // itself — then the full patch wins and the ledger records the
    // oversized delta that was not shipped (patch_bytes vs image_bytes).
    const ota::Patch delta = ota::diff(ota_head_image_, image);
    entry.patch_bytes = delta.size_bytes();
    std::vector<std::uint8_t> delta_bytes = delta.encode();
    if (delta_bytes.size() < ro.full.patch_bytes().size()) {
      ro.delta = ota::ChunkedPatch(std::move(delta_bytes),
                                   config_.ota.chunk_bytes, ro.version_id);
      ro.has_delta = true;
    }
  }
  ro.image = std::move(image);
  ro.entry = ota.epochs_log.size() - 1;
  entry.version_id = ro.version_id;

  ro.trace = next_trace_++;
  if (obsy_) {
    obs::HopRecord origin;
    origin.trace = ro.trace;
    origin.kind = obs::HopKind::kOrigin;
    origin.stream = obs::HopStream::kPatch;
    origin.src = topo_.core();
    origin.dst = topo_.core();
    origin.t0_s = event.time_s;
    origin.t1_s = event.time_s;
    origin.bytes = ro.full.patch_bytes().size();
    obsy_->journeys().record(std::move(origin));
    obsy_->flight().note(topo_.core(), event.time_s, "ota-build", ro.version_id,
                         ro.image.size());
  }

  const std::size_t r = ota_rollouts_.size();
  ota_rollouts_.push_back(std::move(ro));
  OtaRollout& rollout = ota_rollouts_[r];

  if (rollout.provisioning) {
    // First version: there is no running model to canary against, so it
    // promotes by construction and the whole fleet gets the full image.
    entry.outcome = "provision";
    rollout.verdict_issued = true;
    rollout.promoted = true;
    ota_chain_.append(rollout.version_id, rollout.target_checksum,
                      deploy::narrow_u32(rollout.image.size(), "ota image bytes"),
                      deploy::narrow_u32(rollout.full.patch_bytes().size(),
                                         "ota patch bytes"));
    ota_head_image_ = rollout.image;
    for (std::size_t d = 0; d < config_.devices; ++d) {
      start_ota_transfer(d, r, event.time_s);
    }
    return;
  }

  rollout.cohort = ota::pick_canaries(config_.devices, config_.ota, canary_rng_);
  entry.canary_devices = rollout.cohort.size();
  for (std::uint32_t d : rollout.cohort) {
    start_ota_transfer(d, r, event.time_s);
  }
  sched_.push(event.time_s + config_.ota.verdict_delay_s, EventKind::kOtaVerdict,
              topo_.core(), r);
}

void FleetSim::start_ota_transfer(std::size_t device_index,
                                  std::size_t rollout_index, double now_s) {
  const OtaRollout& ro = ota_rollouts_[rollout_index];
  OtaSummary& ota = report_.deploy.ota;
  if (ota_stores_[device_index].current_checksum() == ro.target_checksum) return;

  OtaTransfer t;
  t.rollout = rollout_index;
  t.device = static_cast<std::uint32_t>(device_index);
  t.canary = !ro.verdict_issued;
  // The delta only moves a device sitting exactly on the rollout's base; a
  // behind or unprovisioned device needs the full image from the start.
  const std::uint32_t have = ota_stores_[device_index].current_checksum();
  t.full = !ro.has_delta || have != ro.base_checksum;
  if (ro.has_delta && t.full) {
    ++ota.full_fallbacks;
    ++ota.epochs_log[ro.entry].full_fallbacks;
  }

  const std::size_t idx = ota_transfers_.size();
  ota_transfers_.push_back(std::move(t));
  ota_active_transfer_[device_index] = idx;
  const ota::ChunkedPatch& chunked =
      ota_transfers_[idx].full ? ro.full : ro.delta;
  std::vector<std::size_t> all(chunked.num_chunks());
  std::iota(all.begin(), all.end(), std::size_t{0});
  send_ota_chunks(idx, all, now_s);
  sched_.push(now_s + config_.ota.resume_timeout_s, EventKind::kOtaResume,
              topo_.device(device_index), idx);
}

void FleetSim::send_ota_chunks(std::size_t transfer_index,
                               const std::vector<std::size_t>& chunks,
                               double now_s) {
  const OtaTransfer& t = ota_transfers_[transfer_index];
  const net::NodeId edge = topo_.edge(t.device % config_.edges);
  for (std::size_t c : chunks) {
    const std::size_t record = ota_chunk_msgs_.size();
    ota_chunk_msgs_.push_back(
        {transfer_index, static_cast<std::uint32_t>(c), t.full});
    send_ota_chunk_hop(edge, record, now_s);
  }
}

void FleetSim::send_ota_chunk_hop(net::NodeId to, std::size_t record,
                                  double now_s) {
  const OtaChunkMsg& msg = ota_chunk_msgs_[record];
  const OtaTransfer& t = ota_transfers_[msg.transfer];
  const OtaRollout& ro = ota_rollouts_[t.rollout];
  const ota::ChunkedPatch& chunked = msg.full ? ro.full : ro.delta;
  const ota::ChunkFrame frame = chunked.frame(msg.chunk);
  const std::size_t bytes = net::kMessageHeaderBytes + frame.wire_bytes();

  OtaSummary& ota = report_.deploy.ota;
  ++ota.chunks_sent;
  // The radio spends the bytes whether or not the wire delivers; both the
  // run total and the per-epoch ledger count every hop transmission.
  ota.delta_downlink_bytes += bytes;
  ota.epochs_log[ro.entry].delta_downlink_bytes += bytes;
  obs::registry().counter("ota.chunk_sends").add();
  obs::registry().counter("ota.downlink_bytes").add(bytes);

  const std::size_t link_index = topo_.downlink_index(to);
  const net::ChannelOutcome out =
      channels_[link_index].send(now_s, bytes, link_rngs_[link_index]);
  const std::uint64_t frame_trace = next_trace_++;
  auto record_send = [&](const char* outcome, double t1_s) {
    if (!obsy_) return;
    obs::HopRecord r;
    r.trace = frame_trace;
    r.hop = to >= config_.devices ? 0 : 1;  // core->edge, then edge->device
    r.kind = obs::HopKind::kSend;
    r.stream = obs::HopStream::kPatch;
    r.src = to >= config_.devices ? topo_.core() : topo_.next_hop(to);
    r.dst = to;
    r.t0_s = now_s;
    r.t1_s = t1_s;
    r.bytes = bytes;
    r.attempts = out.attempts;
    r.outcome = outcome;
    r.parents = {ro.trace};
    obsy_->journeys().record(std::move(r));
  };
  if (out.corrupted) {
    // The chunk fails its FNV check at the receiver and is discarded; the
    // resume round re-requests it.
    ++ota.chunks_corrupt_rejected;
    obs::registry().counter("ota.chunk_corrupt_rejected").add();
    record_send("corrupt", out.arrival_s);
    return;
  }
  if (!out.accepted || !out.delivered) {
    record_send(out.accepted ? "dropped" : "dead_letter", 0.0);
    return;
  }
  record_send("delivered", out.arrival_s);
  sched_.push(out.arrival_s, EventKind::kOtaChunkArrival, to, record);
  if (out.duplicated) {
    sched_.push(out.duplicate_arrival_s, EventKind::kOtaChunkArrival, to, record);
  }
}

void FleetSim::handle_ota_chunk_arrival(const Event& event) {
  const net::NodeId node = event.target;
  const OtaChunkMsg& msg = ota_chunk_msgs_[event.message];
  OtaTransfer& t = ota_transfers_[msg.transfer];
  const OtaRollout& ro = ota_rollouts_[t.rollout];
  OtaSummary& ota = report_.deploy.ota;
  const std::uint32_t hop = node >= config_.devices ? 0 : 1;

  if (!topo_.node(node).up) {
    journey_arrive(ro.trace, obs::HopStream::kPatch, hop, node, event.time_s, 0,
                   "dead_receiver");
    return;
  }
  if (t.done || ota_active_transfer_[t.device] != msg.transfer ||
      msg.full != t.full) {
    // Superseded transfer, or a leftover delta chunk after the fall back to
    // the full image — either way the frame no longer indexes anything the
    // device wants.
    ++ota.chunks_stale;
    journey_arrive(ro.trace, obs::HopStream::kPatch, hop, node, event.time_s, 0,
                   "stale");
    return;
  }
  if (node >= config_.devices) {
    // Edge relay: one more downlink hop to the target device.
    journey_arrive(ro.trace, obs::HopStream::kPatch, hop, node, event.time_s, 0,
                   "accepted");
    send_ota_chunk_hop(topo_.device(t.device), event.message, event.time_s);
    return;
  }

  const ota::ChunkedPatch& chunked = msg.full ? ro.full : ro.delta;
  switch (t.applier.accept(chunked.frame(msg.chunk))) {
    case ota::PatchApplier::Accept::kAccepted:
      ++ota.chunks_delivered;
      journey_arrive(ro.trace, obs::HopStream::kPatch, hop, node, event.time_s,
                     0, "accepted");
      if (t.applier.complete()) ota_commit_device(msg.transfer, event.time_s);
      break;
    case ota::PatchApplier::Accept::kDuplicate:
      ++ota.chunk_duplicates;
      journey_arrive(ro.trace, obs::HopStream::kPatch, hop, node, event.time_s,
                     0, "duplicate");
      break;
    case ota::PatchApplier::Accept::kChecksumMismatch:
    case ota::PatchApplier::Accept::kShapeMismatch:
      ++ota.chunks_corrupt_rejected;
      journey_arrive(ro.trace, obs::HopStream::kPatch, hop, node, event.time_s,
                     0, "rejected");
      break;
  }
}

void FleetSim::ota_commit_device(std::size_t transfer_index, double now_s) {
  OtaTransfer& t = ota_transfers_[transfer_index];
  const OtaRollout& ro = ota_rollouts_[t.rollout];
  OtaSummary& ota = report_.deploy.ota;
  ota::DeviceImageStore& store = ota_stores_[t.device];
  t.done = true;

  const ota::Patch patch = ota::Patch::decode(t.applier.assemble());
  std::vector<std::uint8_t> image =
      patch.full_image() ? patch.apply({}) : patch.apply(store.current_image());

  // The canary A/B probe runs before the commit: the same recent rows,
  // scored by the running model and by the candidate, so the pooled verdict
  // compares the two on identical data. A device with no baseline (first
  // provision) has nothing to compare against.
  if (t.canary && !ro.verdict_issued && store.provisioned()) {
    const ota::CanaryProbe probe =
        ota_probe(t.device, store.current_image(), image, now_s);
    if (probe.rows > 0) {
      const std::size_t record = ota_report_msgs_.size();
      ota_report_msgs_.push_back({t.rollout, probe});
      send_ota_report_hop(topo_.device(t.device), record, now_s);
    }
  }

  // Commit is the only place the running image changes, and it requires the
  // full checksum to verify — a crash anywhere before this line leaves the
  // device on its previous consistent version.
  store.commit(ro.version_id, std::move(image), patch.target_checksum);
  ++ota.epochs_log[ro.entry].devices_updated;
  ota.last_commit_t_s = std::max(ota.last_commit_t_s, now_s);
  obs::registry().counter("ota.commits").add();
  if (obsy_) {
    obsy_->flight().note(topo_.device(t.device), now_s, "ota-commit",
                         ro.version_id, t.full ? 1 : 0);
  }
}

ota::CanaryProbe FleetSim::ota_probe(std::size_t device_index,
                                     const std::vector<std::uint8_t>& old_image,
                                     const std::vector<std::uint8_t>& new_image,
                                     double now_s) const {
  ota::CanaryProbe probe;
  probe.device = static_cast<std::uint32_t>(device_index);
  const data::Dataset& all = device_data_[device_index];
  std::size_t upto = 0;
  while (upto < all.rows() && all.column(0).numeric(upto) < now_s) ++upto;
  const std::size_t count = std::min(config_.ota.probe_rows, upto);
  if (count == 0) return probe;

  deploy::DeviceRuntime old_rt(deploy::CompiledModel::decode(old_image));
  deploy::DeviceRuntime new_rt(deploy::CompiledModel::decode(new_image));
  old_rt.bind(all);
  new_rt.bind(all);
  probe.rows = count;
  for (std::size_t r = upto - count; r < upto; ++r) {
    const int label = truth_label(all.column(0).numeric(r));
    if (old_rt.predict_row(all, r) == label) ++probe.correct_old;
    if (new_rt.predict_row(all, r) == label) ++probe.correct_new;
  }
  return probe;
}

void FleetSim::send_ota_report_hop(net::NodeId from, std::size_t record,
                                   double now_s) {
  const OtaReportMsg& msg = ota_report_msgs_[record];
  const OtaRollout& ro = ota_rollouts_[msg.rollout];
  // Version id + device + rows + two correct counts, each u32, framed.
  const std::size_t bytes = net::kMessageHeaderBytes + 20;
  OtaSummary& ota = report_.deploy.ota;
  ota.probe_uplink_bytes += bytes;
  obs::registry().counter("ota.probe_uplink_bytes").add(bytes);

  const std::size_t link_index = topo_.uplink_index(from);
  const net::NodeId to = topo_.next_hop(from);
  const net::ChannelOutcome out =
      channels_[link_index].send(now_s, bytes, link_rngs_[link_index]);
  const std::uint64_t frame_trace = next_trace_++;
  if (obsy_) {
    obs::HopRecord r;
    r.trace = frame_trace;
    r.hop = from < config_.devices ? 0 : 1;  // device->edge, then edge->core
    r.kind = obs::HopKind::kSend;
    r.stream = obs::HopStream::kPatch;
    r.src = from;
    r.dst = to;
    r.t0_s = now_s;
    r.t1_s = out.delivered ? out.arrival_s : 0.0;
    r.bytes = bytes;
    r.attempts = out.attempts;
    // A lost probe is tolerated, not retried: the verdict pools whatever
    // reports made it.
    r.outcome = out.corrupted                        ? "corrupt"
                : (!out.accepted || !out.delivered) ? "dropped"
                                                     : "delivered";
    r.parents = {ro.trace};
    obsy_->journeys().record(std::move(r));
  }
  if (out.corrupted || !out.accepted || !out.delivered) return;
  sched_.push(out.arrival_s, EventKind::kOtaReportArrival, to, record);
  if (out.duplicated) {
    sched_.push(out.duplicate_arrival_s, EventKind::kOtaReportArrival, to, record);
  }
}

void FleetSim::handle_ota_report_arrival(const Event& event) {
  const net::NodeId node = event.target;
  // Membership-only dedup (duplicate delivery of the same report record).
  if (!ota_report_seen_[node].insert(event.message).second) return;
  if (!topo_.node(node).up) return;
  if (node != topo_.core()) {
    // Edge relay toward the core.
    send_ota_report_hop(node, event.message, event.time_s);
    return;
  }
  const OtaReportMsg& msg = ota_report_msgs_[event.message];
  OtaRollout& ro = ota_rollouts_[msg.rollout];
  if (ro.verdict_issued) return;  // late probe, verdict already out
  ro.probes.push_back(msg.probe);
}

void FleetSim::handle_ota_resume(const Event& event) {
  const std::size_t idx = event.message;
  OtaTransfer& t = ota_transfers_[idx];
  if (t.done || t.stuck || ota_active_transfer_[t.device] != idx) return;
  const OtaRollout& ro = ota_rollouts_[t.rollout];
  if (ro.verdict_issued && !ro.promoted) {
    // The candidate was rolled back (or never promoted) while this canary
    // transfer was still moving: stop spending radio on it.
    t.done = true;
    return;
  }
  OtaSummary& ota = report_.deploy.ota;
  OtaEpochEntry& entry = ota.epochs_log[ro.entry];
  const ota::ChunkedPatch& chunked = t.full ? ro.full : ro.delta;
  std::vector<std::size_t> want;
  if (t.applier.started()) {
    want = t.applier.missing();
  } else {
    want.resize(chunked.num_chunks());
    std::iota(want.begin(), want.end(), std::size_t{0});
  }
  if (want.empty()) return;  // complete; the commit path already ran

  if (t.resume_rounds < config_.ota.max_resume_rounds) {
    ++t.resume_rounds;
    ++ota.resume_rounds;
    obs::registry().counter("ota.resume_rounds").add();
    send_ota_chunks(idx, want, event.time_s);
  } else if (!t.full) {
    // Delta rounds exhausted: fall back to the full image. The applier
    // resets (staged delta chunks are discarded); the running image is
    // untouched by construction.
    t.full = true;
    t.full_rounds = 1;
    t.resume_rounds = 0;
    t.applier.reset();
    ++ota.full_fallbacks;
    ++entry.full_fallbacks;
    obs::registry().counter("ota.full_fallbacks").add();
    std::vector<std::size_t> all(ro.full.num_chunks());
    std::iota(all.begin(), all.end(), std::size_t{0});
    send_ota_chunks(idx, all, event.time_s);
  } else if (t.full_rounds < config_.ota.max_full_rounds) {
    ++t.full_rounds;
    t.resume_rounds = 0;
    t.applier.reset();
    std::vector<std::size_t> all(ro.full.num_chunks());
    std::iota(all.begin(), all.end(), std::size_t{0});
    send_ota_chunks(idx, all, event.time_s);
  } else {
    // Every round exhausted: the device stays on its current verified
    // version for this epoch and is ledgered as stuck.
    t.stuck = true;
    t.done = true;
    ++entry.devices_stuck;
    obs::registry().counter("ota.devices_stuck").add();
    if (obsy_) {
      obsy_->flight().note(topo_.device(t.device), event.time_s, "ota-stuck",
                           ro.version_id);
    }
    return;
  }
  sched_.push(event.time_s + config_.ota.resume_timeout_s, EventKind::kOtaResume,
              topo_.device(t.device), idx);
}

void FleetSim::handle_ota_verdict(const Event& event) {
  const std::size_t r = event.message;
  OtaRollout& ro = ota_rollouts_[r];
  if (ro.verdict_issued) return;  // superseded by a later epoch
  ro.verdict_issued = true;
  OtaSummary& ota = report_.deploy.ota;
  OtaEpochEntry& entry = ota.epochs_log[ro.entry];

  auto cancel_cohort = [&]() {
    for (std::uint32_t d : ro.cohort) {
      const std::size_t active = ota_active_transfer_[d];
      if (active != kNoMessage && ota_transfers_[active].rollout == r) {
        ota_transfers_[active].done = true;
      }
    }
  };

  if (!topo_.node(topo_.core()).up) {
    // Nobody home to pool the probes: conservative skip, the candidate is
    // abandoned and canaries that committed it roll back locally next time
    // the core ships a version (they are off-head in the histogram).
    entry.outcome = "verdict-skipped";
    cancel_cohort();
    return;
  }

  const ota::CanaryVerdict verdict =
      ota::judge(ro.version_id, ro.epoch, ro.probes, config_.ota);
  entry.devices_reporting = verdict.devices_reporting;
  entry.pooled_rows = verdict.pooled_rows;
  entry.accuracy_old = verdict.accuracy_old;
  entry.accuracy_new = verdict.accuracy_new;

  if (verdict.promoted) {
    entry.outcome = "promote";
    ++ota.promotions;
    ro.promoted = true;
    ota_chain_.append(ro.version_id, ro.target_checksum,
                      deploy::narrow_u32(ro.image.size(), "ota image bytes"),
                      deploy::narrow_u32(ro.has_delta
                                             ? ro.delta.patch_bytes().size()
                                             : ro.full.patch_bytes().size(),
                                         "ota patch bytes"));
    ota_head_image_ = ro.image;
    obs::registry().counter("ota.promotions").add();
    if (obsy_) {
      obsy_->flight().note(topo_.core(), event.time_s, "ota-promote",
                           ro.version_id, verdict.pooled_rows);
    }
    // Ship to the rest of the fleet; canaries mid-transfer keep going.
    for (std::size_t d = 0; d < config_.devices; ++d) {
      const std::size_t active = ota_active_transfer_[d];
      if (active != kNoMessage && !ota_transfers_[active].done &&
          ota_transfers_[active].rollout == r) {
        continue;
      }
      start_ota_transfer(d, r, event.time_s);
    }
    return;
  }

  entry.outcome = "rollback";
  ++ota.rollbacks;
  obs::registry().counter("ota.rollbacks").add();
  if (obsy_) {
    obsy_->flight().note(topo_.core(), event.time_s, "ota-rollback",
                         ro.version_id, verdict.pooled_rows);
  }
  cancel_cohort();
  // Canaries that already committed the bad version get a rollback command;
  // the revert itself is local and free (the previous image is retained).
  for (std::uint32_t d : ro.cohort) {
    if (ota_stores_[d].current_checksum() == ro.target_checksum) {
      const std::size_t record = ota_control_msgs_.size();
      ota_control_msgs_.push_back({r, d});
      send_ota_control_hop(topo_.edge(d % config_.edges), record, event.time_s);
    }
  }
}

void FleetSim::send_ota_control_hop(net::NodeId to, std::size_t record,
                                    double now_s) {
  const OtaControlMsg& msg = ota_control_msgs_[record];
  const OtaRollout& ro = ota_rollouts_[msg.rollout];
  // Version id + command, framed — rollback ships no image bytes at all.
  const std::size_t bytes = net::kMessageHeaderBytes + 8;
  OtaSummary& ota = report_.deploy.ota;
  ota.delta_downlink_bytes += bytes;
  ota.epochs_log[ro.entry].delta_downlink_bytes += bytes;

  const std::size_t link_index = topo_.downlink_index(to);
  const net::ChannelOutcome out =
      channels_[link_index].send(now_s, bytes, link_rngs_[link_index]);
  const std::uint64_t frame_trace = next_trace_++;
  if (obsy_) {
    obs::HopRecord rec;
    rec.trace = frame_trace;
    rec.hop = to >= config_.devices ? 0 : 1;
    rec.kind = obs::HopKind::kSend;
    rec.stream = obs::HopStream::kPatch;
    rec.src = to >= config_.devices ? topo_.core() : topo_.next_hop(to);
    rec.dst = to;
    rec.t0_s = now_s;
    rec.t1_s = out.delivered ? out.arrival_s : 0.0;
    rec.bytes = bytes;
    rec.attempts = out.attempts;
    // A lost rollback command is visible, not fatal: the device stays on
    // the rolled-back version and the end-of-run histogram exposes it.
    rec.outcome = out.corrupted                        ? "corrupt"
                  : (!out.accepted || !out.delivered) ? "dropped"
                                                       : "delivered";
    rec.parents = {ro.trace};
    obsy_->journeys().record(std::move(rec));
  }
  if (out.corrupted || !out.accepted || !out.delivered) return;
  sched_.push(out.arrival_s, EventKind::kOtaControlArrival, to, record);
  if (out.duplicated) {
    sched_.push(out.duplicate_arrival_s, EventKind::kOtaControlArrival, to,
                record);
  }
}

void FleetSim::handle_ota_control_arrival(const Event& event) {
  const net::NodeId node = event.target;
  if (!topo_.node(node).up) return;
  const OtaControlMsg& msg = ota_control_msgs_[event.message];
  if (node >= config_.devices) {
    send_ota_control_hop(topo_.device(msg.device), event.message, event.time_s);
    return;
  }
  // Idempotent by construction: only a device still running the rolled-back
  // version reverts, so duplicate or late commands are no-ops.
  const OtaRollout& ro = ota_rollouts_[msg.rollout];
  ota::DeviceImageStore& store = ota_stores_[msg.device];
  if (store.current_id() != ro.version_id || !store.has_previous()) return;
  store.rollback();
  ++report_.deploy.ota.epochs_log[ro.entry].devices_rolled_back;
  obs::registry().counter("ota.device_rollbacks").add();
  if (obsy_) {
    obsy_->flight().note(node, event.time_s, "ota-revert", ro.version_id,
                         store.current_id());
  }
}

void FleetSim::finalize_ota() {
  OtaSummary& ota = report_.deploy.ota;
  ota.enabled = true;
  ota.epochs = config_.ota.epochs;
  ota.versions_published = ota_chain_.size();
  const std::uint32_t head = ota_chain_.head_id();
  for (std::size_t d = 0; d < config_.devices; ++d) {
    const ota::DeviceImageStore& store = ota_stores_[d];
    ++ota.version_histogram[store.current_id()];
    const std::size_t active = ota_active_transfer_[d];
    if (active != kNoMessage && ota_transfers_[active].stuck) {
      ++ota.devices_stuck;
    }
    if (!store.provisioned()) {
      ++ota.devices_unprovisioned;
      continue;
    }
    // The no-torn-patches invariant: every provisioned device's running
    // image re-hashes to the checksum its committed version was built with.
    bool verified = false;
    for (const OtaRollout& ro : ota_rollouts_) {
      if (ro.version_id == store.current_id()) {
        verified = ota::image_checksum(store.current_image()) == ro.target_checksum;
        break;
      }
    }
    if (!verified) ota.all_devices_verified = false;
    if (store.current_id() == head) {
      ++ota.devices_on_head;
    } else {
      ++ota.devices_behind;
    }
  }
  IOTML_INTERNAL_CHECK(ota.all_devices_verified,
                       "FleetSim: a device ended the run on an unverified image");
}

}  // namespace iotml::sim
