#include "sim/fleet.hpp"

#include <algorithm>
#include <limits>
#include <numbers>
#include <numeric>
#include <utility>

#include "deploy/compile.hpp"
#include "deploy/quantize.hpp"
#include "learners/decision_tree.hpp"
#include "learners/logistic.hpp"
#include "learners/naive_bayes.hpp"
#include "obs/obs.hpp"
#include "pipeline/integration.hpp"
#include "pipeline/preparation.hpp"
#include "pipeline/reduction.hpp"
#include "util/error.hpp"

namespace iotml::sim {

using pipeline::StageReport;
using pipeline::Tier;

namespace {

// Device tier: clean the freshly acquired window before it costs uplink
// bytes — gross outliers are suppressed to missing so the edge can repair
// them alongside genuine sensor dropout.
void add_clean_stage(pipeline::Pipeline& full) {
  full.add("clean(hampel)", [](data::Dataset& ds, Rng&) {
    std::size_t suppressed = 0;
    for (std::size_t f = 1; f < ds.num_columns(); ++f) {
      suppressed += pipeline::suppress_outliers(
          ds, f, pipeline::detect_outliers_hampel(ds.column(f), 4.0));
    }
    return 0.2 + 0.01 * static_cast<double>(suppressed);
  }, "device", Tier::kDevice);
}

// Edge tier: preparation over the integrated multi-device record stream.
void add_impute_stage(pipeline::Pipeline& full) {
  full.add("prepare(impute-linear)", [](data::Dataset& ds, Rng& rng) {
    const pipeline::ImputeReport r =
        pipeline::impute(ds, pipeline::ImputeStrategy::kLinear, rng);
    return 1.0 + 0.002 * static_cast<double>(r.cells_imputed);
  }, "edge-operator", Tier::kEdge);
}

void add_zscore_stage(pipeline::Pipeline& full) {
  full.add("prepare(normalize-zscore)", [](data::Dataset& ds, Rng&) {
    // Keep the timestamp column raw; normalize sensor columns only.
    std::vector<std::size_t> sensor_cols;
    for (std::size_t c = 1; c < ds.num_columns(); ++c) sensor_cols.push_back(c);
    if (sensor_cols.empty() || ds.rows() == 0) return 0.5;
    data::Dataset sensors_only = ds.select_columns(sensor_cols);
    pipeline::normalize(sensors_only, pipeline::NormalizeKind::kZScore);
    for (std::size_t c = 1; c < ds.num_columns(); ++c) {
      for (std::size_t r = 0; r < ds.rows(); ++r) {
        if (!sensors_only.column(c - 1).is_missing(r)) {
          ds.column(c).set_numeric(r, sensors_only.column(c - 1).numeric(r));
        }
      }
    }
    return 0.5;
  }, "edge-operator", Tier::kEdge);
}

// Core tier: data reduction before the learner.
void add_reduce_stage(pipeline::Pipeline& full, std::size_t keep) {
  full.add("reduce(mi-top" + std::to_string(keep) + ")",
           [keep](data::Dataset& ds, Rng&) {
    if (ds.has_labels() && ds.rows() > 0 && ds.num_columns() > keep) {
      ds = ds.select_columns(pipeline::select_by_mutual_information(ds, keep));
    }
    return 1.0;
  }, "core-operator", Tier::kCore);
}

}  // namespace

pipeline::Pipeline default_fleet_pipeline(const FleetConfig& config) {
  pipeline::Pipeline full;
  add_clean_stage(full);
  add_impute_stage(full);
  add_zscore_stage(full);
  add_reduce_stage(full, config.feature_keep);
  return full;
}

pipeline::Pipeline default_deploy_pipeline(const FleetConfig& config) {
  pipeline::Pipeline full;
  add_clean_stage(full);
  add_impute_stage(full);
  add_reduce_stage(full, config.feature_keep);
  return full;
}

FleetSim::FleetSim(FleetConfig config)
    : FleetSim(config, config.deploy.enabled ? default_deploy_pipeline(config)
                                             : default_fleet_pipeline(config)) {}

FleetSim::FleetSim(FleetConfig config, pipeline::Pipeline full_pipeline)
    : config_(config),
      topo_(net::Topology::fleet(config.devices, config.edges,
                                 config.device_edge_link, config.edge_core_link)),
      tiers_(split_by_tier(std::move(full_pipeline))) {
  IOTML_CHECK(config.duration_s > 0.0, "FleetSim: duration must be positive");
  IOTML_CHECK(config.device_flush_s > 0.0 && config.edge_flush_s > 0.0,
              "FleetSim: flush intervals must be positive");
  IOTML_CHECK(config.sensor_period_s > 0.0, "FleetSim: sensor period must be positive");
  IOTML_CHECK(config.sensor_dropout >= 0.0 && config.sensor_dropout <= 1.0,
              "FleetSim: sensor dropout outside [0, 1]");
  IOTML_CHECK(config.feature_keep >= 1, "FleetSim: feature_keep must be >= 1");
  if (config.deploy.enabled) {
    IOTML_CHECK(config.deploy.score_window_s > 0.0,
                "FleetSim: deploy score window must be positive");
    // Downlinks append after every uplink, so in the split loop below the
    // uplinks draw exactly the Rng streams a non-deploy run would assign.
    topo_.add_downlinks(config.deploy.edge_device_link, config.deploy.core_edge_link);
  }

  // Fixed derivation order: every stream of randomness is split off the
  // master seed before the event loop starts, so event handlers can draw in
  // any interleaving without perturbing each other's sequences.
  Rng master(config.seed);
  Rng fault_rng = master.split();
  device_rngs_.reserve(config.devices);
  for (std::size_t d = 0; d < config.devices; ++d) device_rngs_.push_back(master.split());
  edge_rngs_.reserve(config.edges);
  for (std::size_t e = 0; e < config.edges; ++e) edge_rngs_.push_back(master.split());
  core_rng_ = master.split();
  link_rngs_.reserve(topo_.num_links());
  for (std::size_t l = 0; l < topo_.num_links(); ++l) link_rngs_.push_back(master.split());

  // Temperature starts the window cold (phase -pi/2) and cycles fast enough
  // that even a short run sees both comfortable and uncomfortable spells —
  // the analytics labels must never collapse to a single class.
  truths_.push_back(
      pipeline::sine_signal(22.0, 6.0, 40.0, -std::numbers::pi / 2.0));
  truths_.push_back(pipeline::composite_signal(
      {pipeline::sine_signal(55.0, 10.0, 500.0), pipeline::trend_signal(0.0, -0.01)}));
  truths_.push_back(pipeline::sine_signal(4.0, 3.0, 120.0));

  report_.devices = config.devices;
  report_.edges = config.edges;
  report_.duration_s = config.duration_s;

  edge_buffers_.resize(config.edges);
  seen_.resize(topo_.num_nodes());
  artifact_seen_.assign(topo_.num_nodes(), 0);
  pred_seen_.resize(topo_.num_nodes());

  generate_device_data();

  const std::vector<net::Fault> plan =
      net::make_fault_plan(topo_, config.faults, config.duration_s, fault_rng);
  schedule_initial_events();
  for (const net::Fault& f : plan) {
    EventKind kind = EventKind::kLinkDown;
    switch (f.kind) {
      case net::FaultKind::kLinkDown: kind = EventKind::kLinkDown; break;
      case net::FaultKind::kLinkUp: kind = EventKind::kLinkUp; break;
      case net::FaultKind::kDeviceDown: kind = EventKind::kDeviceDown; break;
      case net::FaultKind::kDeviceUp: kind = EventKind::kDeviceUp; break;
    }
    sched_.push(f.time_s, kind, f.target);
  }
}

void FleetSim::generate_device_data() {
  static const char* kQuantity[3] = {"temperature", "humidity", "wind"};
  static constexpr double kNoiseScale[3] = {1.0, 2.5, 1.5};
  device_data_.resize(config_.devices);
  device_cursor_.assign(config_.devices, 0);
  // Deploy runs keep sensing past the learning window: those extra rows are
  // never flushed upstream — they are the data the deployed artifact scores.
  const double horizon_s =
      config_.duration_s +
      (config_.deploy.enabled ? config_.deploy.score_window_s : 0.0);
  for (std::size_t d = 0; d < config_.devices; ++d) {
    Rng& rng = device_rngs_[d];
    const std::int64_t start_us = obs::now_us();
    std::vector<pipeline::SensorStream> streams;
    std::size_t readings = 0;
    for (std::size_t q = 0; q < 3; ++q) {
      pipeline::SensorSpec spec;
      spec.name = kQuantity[q];
      spec.period_s = config_.sensor_period_s * rng.uniform(0.9, 1.1);
      spec.clock_jitter_s = 0.02;
      spec.noise_std = config_.sensor_noise * kNoiseScale[q];
      spec.dropout_prob = config_.sensor_dropout;
      streams.push_back(
          pipeline::simulate_sensor(spec, truths_[q], horizon_s, rng));
      readings += streams.back().readings.size();
    }
    pipeline::IntegrationResult integ = pipeline::integrate_streams(
        streams, {.merge_tolerance_s = 0.45 * config_.sensor_period_s});
    report_.rows_generated += integ.records.rows();

    StageReport acq;
    acq.stage_name = "acquisition";
    acq.player = "device";
    acq.tier = Tier::kDevice;
    acq.rows_in = readings;
    acq.rows_out = integ.records.rows();
    acq.columns_out = integ.records.num_columns();
    acq.missing_rate_out = integ.records.missing_rate();
    acq.cost = 0.05 + 0.01 * static_cast<double>(readings);
    acq.wall_time_us = static_cast<std::uint64_t>(obs::now_us() - start_us);
    report_.stage_reports.push_back(std::move(acq));

    device_data_[d] = std::move(integ.records);
  }
}

void FleetSim::schedule_initial_events() {
  for (std::size_t d = 0; d < config_.devices; ++d) {
    // Stagger flush phases deterministically so a big fleet does not report
    // in lockstep (real fleets desynchronize; ties would be FIFO anyway).
    const double phase =
        config_.device_flush_s * (static_cast<double>(d % 16) / 64.0);
    for (double t = phase + config_.device_flush_s; t < config_.duration_s;
         t += config_.device_flush_s) {
      sched_.push(t, EventKind::kDeviceFlush, topo_.device(d));
    }
    // Final flush drains whatever the window schedule left behind.
    sched_.push(config_.duration_s, EventKind::kDeviceFlush, topo_.device(d));
  }
  for (std::size_t e = 0; e < config_.edges; ++e) {
    for (double t = config_.edge_flush_s; t < config_.duration_s;
         t += config_.edge_flush_s) {
      sched_.push(t, EventKind::kEdgeFlush, topo_.edge(e));
    }
  }
}

FleetReport FleetSim::run() {
  IOTML_CHECK(!ran_, "FleetSim::run: already ran (FleetSim is one-shot)");
  ran_ = true;
  obs::Span run_span("sim.fleet_run", "sim");

  while (!sched_.empty()) handle(sched_.pop());

  // Drain: one last edge flush each, after every in-flight message has
  // landed, so late arrivals are not silently stranded by the periodic
  // schedule. Anything still buffered after this (an edge cut off by a
  // down link) is reported as stranded, not dropped on the floor.
  const double drain_s = std::max(sched_.now_s(), config_.duration_s);
  for (std::size_t e = 0; e < config_.edges; ++e) handle_edge_flush(e, drain_s);
  while (!sched_.empty()) handle(sched_.pop());

  finalize();
  if (config_.deploy.enabled) run_deploy_phase();

  report_.events = sched_.processed();
  for (std::size_t l = 0; l < topo_.num_links(); ++l) {
    report_.links.push_back({topo_.link(l).name(), topo_.link(l).stats()});
  }
  report_.latency = LatencySummary::from_samples(latencies_);
  if (run_span.active()) {
    run_span.arg("events", static_cast<std::uint64_t>(report_.events));
    run_span.arg("rows_delivered", static_cast<std::uint64_t>(report_.rows_delivered));
  }
  return report_;
}

void FleetSim::handle(const Event& event) {
  obs::Span span("sim.event:" + event_kind_name(event.kind), "sim");
  if (span.active()) {
    span.arg("t_s", event.time_s);
    span.arg("target", static_cast<std::uint64_t>(event.target));
  }
  obs::registry().counter("sim.events").add();
  switch (event.kind) {
    case EventKind::kDeviceFlush:
      handle_device_flush(event);
      break;
    case EventKind::kEdgeFlush:
      handle_edge_flush(event.target - config_.devices, event.time_s);
      break;
    case EventKind::kArrival:
      handle_arrival(event);
      break;
    case EventKind::kLinkDown:
      topo_.link(event.target).set_up(false);
      obs::registry().counter("sim.faults.link_down").add();
      break;
    case EventKind::kLinkUp:
      topo_.link(event.target).set_up(true);
      break;
    case EventKind::kDeviceDown:
      topo_.node(event.target).up = false;
      obs::registry().counter("sim.faults.device_down").add();
      break;
    case EventKind::kDeviceUp:
      topo_.node(event.target).up = true;
      break;
    case EventKind::kDeployBroadcast:
      handle_deploy_broadcast(event);
      break;
    case EventKind::kArtifactArrival:
      handle_artifact_arrival(event);
      break;
    case EventKind::kPredictionArrival:
      handle_prediction_arrival(event);
      break;
  }
}

void FleetSim::handle_device_flush(const Event& event) {
  const net::NodeId d = event.target;
  const data::Dataset& all = device_data_[d];
  const bool final_flush = event.time_s >= config_.duration_s;
  // The final flush drains everything — except in deploy mode, where rows
  // sensed after the learning window stay on the device for local scoring.
  const double cutoff =
      !final_flush ? event.time_s
      : config_.deploy.enabled ? config_.duration_s
                               : std::numeric_limits<double>::infinity();
  const std::size_t begin = device_cursor_[d];
  std::size_t end = begin;
  while (end < all.rows() && all.column(0).numeric(end) < cutoff) ++end;
  device_cursor_[d] = end;
  const std::size_t count = end - begin;
  if (count == 0) return;
  if (!topo_.node(d).up) {
    // Churn: the device was offline when its report window closed. The
    // window's rows are gone — devices in this model do not persist
    // unsent windows across outages.
    report_.rows_skipped += count;
    return;
  }
  std::vector<std::size_t> idx(count);
  std::iota(idx.begin(), idx.end(), begin);
  data::Dataset chunk = all.select_rows(idx);
  chunk = tiers_.device.run(std::move(chunk), device_rngs_[d]);
  for (const StageReport& r : tiers_.device.reports()) {
    report_.stage_reports.push_back(r);
  }
  Buffer out;
  out.row_count = chunk.rows();
  out.rows = std::move(chunk);
  out.origin_s = {event.time_s};
  send(d, std::move(out), event.time_s);
}

void FleetSim::handle_edge_flush(std::size_t edge_index, double now_s) {
  Buffer& buf = edge_buffers_[edge_index];
  if (buf.row_count == 0) return;
  const net::NodeId e = topo_.edge(edge_index);
  if (!topo_.node(e).up) return;  // hold the buffer until the edge recovers

  // Integration: merge the per-device chunks into one time-ordered record
  // stream (the §IV "ordered list of time-stamps" step, here across devices).
  const std::int64_t start_us = obs::now_us();
  std::vector<std::size_t> order(buf.row_count);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const data::Column& ts = buf.rows.column(0);
  std::stable_sort(order.begin(), order.end(), [&ts](std::size_t a, std::size_t b) {
    return ts.numeric(a) < ts.numeric(b);
  });
  data::Dataset merged = buf.rows.select_rows(order);

  StageReport integ;
  integ.stage_name = "integration";
  integ.player = "edge-operator";
  integ.tier = Tier::kEdge;
  integ.rows_in = buf.row_count;
  integ.rows_out = merged.rows();
  integ.columns_out = merged.num_columns();
  integ.missing_rate_in = merged.missing_rate();
  integ.missing_rate_out = merged.missing_rate();
  integ.cost = 0.2 + 0.001 * static_cast<double>(merged.rows());
  integ.wall_time_us = static_cast<std::uint64_t>(obs::now_us() - start_us);
  report_.stage_reports.push_back(std::move(integ));

  merged = tiers_.edge.run(std::move(merged), edge_rngs_[edge_index]);
  for (const StageReport& r : tiers_.edge.reports()) {
    report_.stage_reports.push_back(r);
  }

  Buffer out;
  out.row_count = merged.rows();
  out.rows = std::move(merged);
  out.origin_s = std::move(buf.origin_s);
  buf = Buffer{};
  send(e, std::move(out), now_s);
}

void FleetSim::send(net::NodeId from, Buffer&& chunk, double now_s) {
  net::Link& link = topo_.uplink(from);
  const std::size_t link_index = topo_.uplink_index(from);
  const net::NodeId to = topo_.next_hop(from);
  const std::size_t rows = chunk.row_count;

  net::Message msg;
  msg.src = from;
  msg.dst = to;
  msg.sent_s = now_s;
  msg.origin_s = std::move(chunk.origin_s);
  msg.payload = std::move(chunk.rows);
  const std::size_t bytes = net::wire_size_bytes(msg);

  const net::Delivery delivery = link.transmit(now_s, bytes, link_rngs_[link_index]);
  ++report_.messages_sent;
  obs::registry().counter("sim.net.messages").add();
  obs::registry().counter("sim.net.bytes").add(bytes);
  obs::registry().counter("net.link." + link.name() + ".bytes").add(bytes);
  if (!delivery.delivered) {
    ++report_.messages_dropped;
    report_.rows_lost += rows;
    obs::registry().counter("sim.net.dropped").add();
    return;
  }
  const std::size_t index = messages_.size();
  msg.id = index;
  messages_.push_back(std::move(msg));
  sched_.push(delivery.arrival_s, EventKind::kArrival, to, index);
  if (delivery.duplicated) {
    sched_.push(delivery.duplicate_arrival_s, EventKind::kArrival, to, index);
  }
}

void FleetSim::handle_arrival(const Event& event) {
  const net::NodeId node = event.target;
  const net::Message& msg = messages_[event.message];
  if (!seen_[node].insert(msg.id).second) {
    ++report_.duplicates_discarded;
    obs::registry().counter("sim.net.duplicates_discarded").add();
    return;
  }
  if (node == topo_.core()) {
    for (double origin : msg.origin_s) latencies_.push_back(event.time_s - origin);
    report_.rows_delivered += msg.payload.rows();
    core_buffer_.rows.append_rows(msg.payload);
    core_buffer_.row_count += msg.payload.rows();
  } else {
    Buffer& buf = edge_buffers_[node - config_.devices];
    buf.rows.append_rows(msg.payload);
    buf.origin_s.insert(buf.origin_s.end(), msg.origin_s.begin(), msg.origin_s.end());
    buf.row_count += msg.payload.rows();
  }
}

void FleetSim::finalize() {
  for (const Buffer& buf : edge_buffers_) report_.rows_stranded += buf.row_count;
  if (core_buffer_.row_count == 0) return;

  std::vector<std::size_t> order(core_buffer_.row_count);
  std::iota(order.begin(), order.end(), std::size_t{0});
  const data::Column& ts = core_buffer_.rows.column(0);
  std::stable_sort(order.begin(), order.end(), [&ts](std::size_t a, std::size_t b) {
    return ts.numeric(a) < ts.numeric(b);
  });
  data::Dataset ds = core_buffer_.rows.select_rows(order);

  std::vector<int> labels;
  labels.reserve(ds.rows());
  for (std::size_t r = 0; r < ds.rows(); ++r) {
    labels.push_back(truth_label(ds.column(0).numeric(r)));
  }
  ds.set_labels(std::move(labels));

  ds = tiers_.core.run(std::move(ds), core_rng_);
  for (const StageReport& r : tiers_.core.reports()) {
    report_.stage_reports.push_back(r);
  }

  const std::int64_t start_us = obs::now_us();
  // Train on sensor features only: the label is a function of time inside
  // this window, so keeping the timestamp column would let the tree learn a
  // clock shortcut instead of the sensed world.
  std::vector<std::size_t> feature_cols;
  for (std::size_t c = 0; c < ds.num_columns(); ++c) {
    if (ds.column(c).name() != "timestamp") feature_cols.push_back(c);
  }
  const data::Dataset features =
      feature_cols.empty() || feature_cols.size() == ds.num_columns()
          ? ds
          : ds.select_columns(feature_cols);
  std::vector<std::size_t> train_idx;
  std::vector<std::size_t> test_idx;
  for (std::size_t i = 0; i < features.rows(); ++i) {
    (i % 4 == 3 ? test_idx : train_idx).push_back(i);
  }
  StageReport analytics;
  analytics.stage_name = "analytics(decision-tree)";
  analytics.player = "core-operator";
  analytics.tier = Tier::kCore;
  analytics.rows_in = ds.rows();
  analytics.rows_out = ds.rows();
  analytics.columns_out = ds.num_columns();
  analytics.missing_rate_in = ds.missing_rate();
  analytics.missing_rate_out = ds.missing_rate();
  if (!train_idx.empty() && !test_idx.empty()) {
    const data::Dataset train = features.select_rows(train_idx);
    const data::Dataset test = features.select_rows(test_idx);
    learners::DecisionTree tree;
    tree.fit(train);
    report_.accuracy = tree.accuracy(test);
    report_.train_rows = train.rows();
    report_.test_rows = test.rows();
    analytics.cost = static_cast<double>(tree.node_count());
    if (config_.deploy.enabled) {
      deploy_train_ = train;
      deploy_test_ = test;
    }
  }
  analytics.wall_time_us = static_cast<std::uint64_t>(obs::now_us() - start_us);
  report_.stage_reports.push_back(std::move(analytics));
}

int FleetSim::truth_label(double time_s) const {
  // The analytics concept of the Fig. 1 example: "comfortable" iff the true
  // temperature at that instant lies in [20, 28].
  const double temp = truths_[0](time_s);
  return temp >= 20.0 && temp <= 28.0 ? 1 : 0;
}

void FleetSim::prepare_deploy() {
  obs::Span span("sim.deploy_prepare", "deploy");
  DeploySummary& d = report_.deploy;
  d.enabled = true;
  d.model = deploy::model_kind_name(config_.deploy.model);
  d.precision = deploy::precision_name(config_.deploy.precision);
  // Nothing reached the core, or the window saw a single class: no model
  // worth shipping. The summary stays enabled with every device missed.
  if (deploy_train_.rows() == 0 || deploy_test_.rows() == 0) return;

  deploy::CompiledModel f32;
  switch (config_.deploy.model) {
    case deploy::ModelKind::kTree: {
      learners::DecisionTree tree;
      tree.fit(deploy_train_);
      f32 = deploy::compile(tree, deploy_train_);
      break;
    }
    case deploy::ModelKind::kLinear: {
      learners::LogisticRegression lr;
      lr.fit(deploy_train_);
      f32 = deploy::compile(lr, deploy_train_);
      break;
    }
    case deploy::ModelKind::kNaiveBayes: {
      learners::NaiveBayes nb;
      nb.fit(deploy_train_);
      f32 = deploy::compile(nb, deploy_train_);
      break;
    }
  }
  d.artifact_bytes_float32 = f32.size_bytes();
  if (config_.deploy.precision == deploy::Precision::kFloat32) {
    d.holdout_accuracy_float = deploy::holdout_accuracy(f32, deploy_test_);
    d.holdout_accuracy_deployed = d.holdout_accuracy_float;
    deployed_model_ = std::move(f32);
  } else {
    const deploy::QuantizationReport q = deploy::quantize_with_report(
        f32, config_.deploy.precision, deploy_test_, &deployed_model_);
    d.holdout_accuracy_float = q.holdout_accuracy_float;
    d.holdout_accuracy_deployed = q.holdout_accuracy_quantized;
  }
  d.artifact_bytes_deployed = deployed_model_.size_bytes();
  const deploy::InferenceCost cost = deployed_model_.cost_per_row();
  d.cost_multiply_adds = cost.multiply_adds;
  d.cost_comparisons = cost.comparisons;
  d.cost_table_lookups = cost.table_lookups;
  // The broadcast ships the real encoded bytes, framed like any message.
  artifact_wire_bytes_ = net::kMessageHeaderBytes + d.artifact_bytes_deployed;
  device_runtime_.emplace(deployed_model_);
  deploy_ready_ = true;
}

void FleetSim::run_deploy_phase() {
  prepare_deploy();
  if (deploy_ready_) {
    sched_.push(std::max(sched_.now_s(), config_.duration_s),
                EventKind::kDeployBroadcast, topo_.core());
    while (!sched_.empty()) handle(sched_.pop());
  }
  DeploySummary& d = report_.deploy;
  d.devices_missed = config_.devices - d.devices_deployed;
  d.device_accuracy =
      d.predictions_delivered == 0
          ? 0.0
          : static_cast<double>(d.predictions_correct) /
                static_cast<double>(d.predictions_delivered);
}

void FleetSim::handle_deploy_broadcast(const Event& event) {
  obs::registry().counter("deploy.broadcasts").add();
  for (std::size_t j = 0; j < config_.edges; ++j) {
    send_artifact(topo_.edge(j), event.time_s);
  }
}

void FleetSim::send_artifact(net::NodeId to, double now_s) {
  net::Link& link = topo_.downlink(to);
  const std::size_t link_index = topo_.downlink_index(to);
  // The sender's radio spends the bytes whether or not the wire delivers.
  report_.deploy.downlink_bytes += artifact_wire_bytes_;
  obs::registry().counter("deploy.artifact_sends").add();
  obs::registry().counter("deploy.downlink_bytes").add(artifact_wire_bytes_);
  const net::Delivery delivery =
      link.transmit(now_s, artifact_wire_bytes_, link_rngs_[link_index]);
  if (!delivery.delivered) return;
  sched_.push(delivery.arrival_s, EventKind::kArtifactArrival, to);
  if (delivery.duplicated) {
    sched_.push(delivery.duplicate_arrival_s, EventKind::kArtifactArrival, to);
  }
}

void FleetSim::handle_artifact_arrival(const Event& event) {
  const net::NodeId node = event.target;
  if (artifact_seen_[node] != 0) {
    obs::registry().counter("deploy.duplicates_discarded").add();
    return;
  }
  artifact_seen_[node] = 1;
  if (node >= config_.devices) {
    // An edge: relay the artifact to every attached device (a down edge
    // strands the broadcast; its devices end up in devices_missed).
    if (!topo_.node(node).up) return;
    const std::size_t j = node - config_.devices;
    for (std::size_t i = 0; i < config_.devices; ++i) {
      if (i % config_.edges == j) send_artifact(topo_.device(i), event.time_s);
    }
    return;
  }
  if (!topo_.node(node).up) return;  // churn: device offline at arrival
  score_on_device(node, event.time_s);
}

void FleetSim::score_on_device(net::NodeId device, double now_s) {
  DeploySummary& d = report_.deploy;
  ++d.devices_deployed;
  obs::registry().counter("deploy.devices_deployed").add();

  const data::Dataset& all = device_data_[device];
  const std::size_t begin = device_cursor_[device];
  const std::size_t count = all.rows() - begin;
  if (count == 0) return;

  device_runtime_->bind(all);
  PredBatch batch;
  batch.device = device;
  batch.rows = count;
  for (std::size_t r = begin; r < all.rows(); ++r) {
    const int pred = device_runtime_->predict_row(all, r);
    if (pred == truth_label(all.column(0).numeric(r))) ++batch.correct;
  }
  d.rows_scored += count;
  obs::registry().counter("deploy.rows_scored").add(count);

  // Counterfactual: what uplinking these raw rows (the pre-deployment
  // regime) would have cost. The payload crosses both hops; edge batching
  // would amortize the second header, which this deliberately ignores —
  // the payload bytes dominate.
  std::vector<std::size_t> idx(count);
  std::iota(idx.begin(), idx.end(), begin);
  net::Message raw;
  raw.payload = all.select_rows(idx);
  raw.origin_s = {now_s};
  d.uplink_raw_bytes += 2 * net::wire_size_bytes(raw);

  // One bit per prediction on the wire, plus a u32 row count. Ground truth
  // never travels: the core evaluates against labels it already knows.
  batch.wire_bytes = net::kMessageHeaderBytes + 4 + (count + 7) / 8;
  pred_batches_.push_back(batch);
  send_predictions(device, pred_batches_.size() - 1, now_s);
}

void FleetSim::send_predictions(net::NodeId from, std::size_t batch, double now_s) {
  net::Link& link = topo_.uplink(from);
  const std::size_t link_index = topo_.uplink_index(from);
  const std::size_t bytes = pred_batches_[batch].wire_bytes;
  report_.deploy.uplink_prediction_bytes += bytes;
  obs::registry().counter("deploy.prediction_bytes").add(bytes);
  const net::Delivery delivery = link.transmit(now_s, bytes, link_rngs_[link_index]);
  if (!delivery.delivered) return;
  const net::NodeId to = topo_.next_hop(from);
  sched_.push(delivery.arrival_s, EventKind::kPredictionArrival, to, batch);
  if (delivery.duplicated) {
    sched_.push(delivery.duplicate_arrival_s, EventKind::kPredictionArrival, to, batch);
  }
}

void FleetSim::handle_prediction_arrival(const Event& event) {
  const net::NodeId node = event.target;
  if (!pred_seen_[node].insert(event.message).second) {
    obs::registry().counter("deploy.duplicates_discarded").add();
    return;
  }
  if (node == topo_.core()) {
    const PredBatch& batch = pred_batches_[event.message];
    report_.deploy.predictions_delivered += batch.rows;
    report_.deploy.predictions_correct += batch.correct;
    obs::registry().counter("deploy.predictions_delivered").add(batch.rows);
    return;
  }
  if (!topo_.node(node).up) return;  // stranded at a down edge
  send_predictions(node, event.message, event.time_s);
}

}  // namespace iotml::sim
