#pragma once

#include <cstddef>
#include <cstdint>
#include <queue>
#include <string>
#include <vector>

namespace iotml::sim {

/// Everything that can happen in the fleet simulation.
enum class EventKind {
  kDeviceFlush,  ///< a device packages its window and sends to its edge
  kEdgeFlush,    ///< an edge integrates its buffer and forwards to the core
  kArrival,      ///< a message reaches a node
  kLinkDown,     ///< fault injection: link goes down (target = link index)
  kLinkUp,       ///< fault injection: link recovers (target = link index)
  kDeviceDown,   ///< churn: device goes offline (target = node id)
  kDeviceUp,     ///< churn: device comes back (target = node id)
  kDeployBroadcast,    ///< the core pushes the compiled artifact fleet-wide
  kArtifactArrival,    ///< a compiled artifact reaches an edge or device
  kPredictionArrival,  ///< an on-device prediction batch reaches a node
  kEdgeCrash,          ///< edge loses volatile state (target = edge index)
  kEdgeRestart,        ///< edge restores its last checkpoint (target = edge index)
  kCoreCrash,          ///< core unreachable (its stored data stays durable)
  kCoreRestart,
  kPartitionStart,     ///< chaos: every edge<->core link severed
  kPartitionEnd,
  kLossBurstStart,     ///< chaos: device uplinks jump to burst drop prob
  kLossBurstEnd,
  kCorruptionStart,    ///< chaos: device uplinks corrupt payloads
  kCorruptionEnd,
  kCheckpoint,         ///< an edge persists its buffer (target = edge index)
  kCorruptArrival,     ///< a frame lands but fails its payload checksum
  // OTA delta-update loop (DESIGN.md §14) — scheduled only when
  // FleetConfig::ota.enabled, so legacy event logs are untouched.
  kOtaEpoch,           ///< the core retrains and starts a rollout (target = core)
  kOtaChunkArrival,    ///< a patch chunk frame reaches an edge or device
  kOtaResume,          ///< per-transfer resume timer (target = device index)
  kOtaReportArrival,   ///< a canary A/B probe report reaches an edge or the core
  kOtaVerdict,         ///< the core judges a canary cohort (target = core)
  kOtaControlArrival,  ///< a rollback command reaches an edge or device
  // Graceful-degradation ladder (DESIGN.md §16) — scheduled only when
  // chaos load storms or FleetConfig::degrade are enabled, so legacy
  // event logs are untouched.
  kLoadStormStart,     ///< chaos: device flush schedules compress
  kLoadStormEnd,
  kStormFlush,         ///< an extra storm-compressed device flush (target = device)
  kSummaryArrival      ///< an approximate window summary reaches the core
};

std::string event_kind_name(EventKind kind);

inline constexpr std::size_t kNoMessage = static_cast<std::size_t>(-1);

struct Event {
  double time_s = 0.0;
  std::uint64_t seq = 0;  ///< push order; breaks timestamp ties FIFO
  EventKind kind = EventKind::kDeviceFlush;
  std::size_t target = 0;             ///< node id (link index for link faults)
  std::size_t message = kNoMessage;   ///< message store index for kArrival
};

/// Deterministic discrete-event queue over a virtual clock. Events pop in
/// (time, push-order) order, so equal timestamps resolve FIFO and a run is
/// a pure function of the pushes — no wall-clock reads anywhere (lint rule
/// R6). Every pop appends one line to the event log, which the determinism
/// test compares byte-for-byte across runs.
class Scheduler {
 public:
  /// Throws InvalidArgument if `time_s` precedes the current virtual time
  /// (an event cannot be scheduled into the past).
  void push(double time_s, EventKind kind, std::size_t target,
            std::size_t message = kNoMessage);

  bool empty() const noexcept { return queue_.empty(); }
  std::size_t pending() const noexcept { return queue_.size(); }

  /// Pop the earliest event and advance the virtual clock to it. Throws
  /// InvalidArgument when the queue is empty.
  Event pop();

  /// Current virtual time: the timestamp of the last popped event.
  double now_s() const noexcept { return now_s_; }

  std::uint64_t processed() const noexcept { return processed_; }

  /// One line per popped event, in processing order.
  const std::vector<std::string>& log() const noexcept { return log_; }

 private:
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time_s != b.time_s) return a.time_s > b.time_s;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
  double now_s_ = 0.0;
  std::vector<std::string> log_;
};

}  // namespace iotml::sim
