#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "net/channel.hpp"
#include "net/link.hpp"
#include "obs/timeseries.hpp"
#include "pipeline/stage.hpp"

namespace iotml::sim {

/// Transport counters of one link, snapshot at the end of a run.
struct LinkReport {
  std::string name;
  net::LinkStats stats;
};

/// Deterministic summary of the end-to-end (device flush -> core arrival)
/// virtual-latency distribution.
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  double max_s = 0.0;

  /// Nearest-rank percentiles over a sorted copy of `samples`.
  static LatencySummary from_samples(std::vector<double> samples);

  /// Interpolated percentiles from a fixed-bucket histogram — the O(buckets)
  /// replacement for keeping every sample (see obs::LogHistogram).
  static LatencySummary from_histogram(const obs::LogHistogram& hist);
};

/// Per-tier latency distribution: the summary plus the log-scale bucket
/// table it came from, so the report carries the whole shape at fixed size.
/// `counts` has one more entry than `bounds_s`; the last is the overflow
/// bucket.
struct LatencyBreakdown {
  LatencySummary summary;
  std::vector<double> bounds_s;
  std::vector<std::uint64_t> counts;

  static LatencyBreakdown from_histogram(const obs::LogHistogram& hist);
};

/// Per-stage aggregate over every StageReport a fleet run produced, keyed
/// by stage name. Wall time is deliberately absent: it is measured real
/// time, which belongs in the obs metrics, while the FleetReport must be a
/// pure function of (config, seed) so determinism can be asserted.
struct StageTotals {
  std::string player;
  pipeline::Tier tier = pipeline::Tier::kEdge;
  std::size_t runs = 0;
  std::size_t rows_in = 0;
  std::size_t rows_out = 0;
  double cost = 0.0;
};

/// One epoch of the OTA delta-update loop (DESIGN.md §14): what the core
/// built, how it rolled out, what the canary cohort measured and what the
/// epoch cost on the downlinks vs the full-broadcast counterfactual.
struct OtaEpochEntry {
  int epoch = 0;
  double t_s = 0.0;         ///< virtual time the retrain fired
  std::uint32_t version_id = 0;  ///< 0 when no version was built
  /// "provision", "promote", "rollback", "no-change", "no-data",
  /// "core-down", "verdict-skipped" (core unreachable at verdict time) or
  /// "superseded" (a newer epoch fired before this one's verdict).
  std::string outcome;
  std::size_t train_rows = 0;
  std::size_t image_bytes = 0;  ///< encoded target artifact
  std::size_t patch_bytes = 0;  ///< encoded delta patch (0 when none built)

  std::uint64_t delta_downlink_bytes = 0;  ///< radio bytes actually spent
  std::uint64_t full_broadcast_bytes = 0;  ///< counterfactual: full image to all

  std::size_t canary_devices = 0;
  std::size_t devices_reporting = 0;  ///< probes that reached the core
  std::size_t pooled_rows = 0;
  double accuracy_old = 0.0;  ///< pooled canary probe, running model
  double accuracy_new = 0.0;  ///< pooled canary probe, candidate model

  std::size_t devices_updated = 0;      ///< committed this version
  std::size_t devices_rolled_back = 0;
  std::size_t full_fallbacks = 0;  ///< devices that needed a full image
  std::size_t devices_stuck = 0;   ///< transfers exhausted every round
};

/// Ledger of the OTA delta-update subsystem: version chain, chunk transport
/// counters, canary verdict timeline and the delta-vs-full-broadcast byte
/// comparison. All-zero unless FleetConfig::ota.enabled.
struct OtaSummary {
  bool enabled = false;
  int epochs = 0;

  std::size_t versions_published = 0;  ///< promoted chain links at the end

  std::uint64_t delta_downlink_bytes = 0;  ///< total radio bytes, all epochs
  std::uint64_t full_broadcast_bytes = 0;  ///< total counterfactual
  std::uint64_t probe_uplink_bytes = 0;    ///< canary A/B probe reports

  std::uint64_t chunks_sent = 0;
  std::uint64_t chunks_delivered = 0;
  std::uint64_t chunks_corrupt_rejected = 0;
  std::uint64_t chunk_duplicates = 0;
  std::uint64_t chunks_stale = 0;  ///< for a superseded transfer, ignored

  std::uint64_t resume_rounds = 0;
  std::uint64_t full_fallbacks = 0;

  std::size_t promotions = 0;
  std::size_t rollbacks = 0;

  /// Virtual time of the last successful device commit — when every device
  /// ends the run on the head version this is the time-to-full-fleet-
  /// convergence for the final promoted image.
  double last_commit_t_s = 0.0;

  // End-of-run fleet state, also rendered as version_histogram.
  std::size_t devices_on_head = 0;
  std::size_t devices_behind = 0;  ///< on an older (or retired) version
  std::size_t devices_unprovisioned = 0;
  std::size_t devices_stuck = 0;

  /// The no-torn-patches invariant, re-verified at the end of the run:
  /// every provisioned device's image re-hashes to its committed version's
  /// checksum. Asserted by FleetSim; carried here so reports show it.
  bool all_devices_verified = true;

  std::vector<OtaEpochEntry> epochs_log;  ///< one entry per epoch, in order
  std::map<std::uint32_t, std::size_t> version_histogram;  ///< id -> devices (0 = none)
};

/// Standalone JSON rendering of the OTA ledger — the ota.json artifact the
/// fleetscope `versions` view reads. Deterministic per seed (virtual times
/// and counters only, no wall clock).
std::string ota_to_json(const OtaSummary& ota);

/// Ledger of the optional deploy phase: the core compiles the analytics
/// model, broadcasts the artifact down the tree, devices score their
/// held-back window locally and uplink only predictions. `uplink_raw_bytes`
/// is the counterfactual — what shipping those same rows up the tree (the
/// pre-deployment regime) would have cost — so the report itself carries
/// the raw-row-uplink vs deploy-and-score comparison.
struct DeploySummary {
  bool enabled = false;
  std::string model;      ///< compiled artifact kind name
  std::string precision;  ///< deployed storage precision name

  std::size_t artifact_bytes_float32 = 0;  ///< encoded size before quantization
  std::size_t artifact_bytes_deployed = 0; ///< encoded size on the wire

  std::size_t devices_deployed = 0;  ///< devices holding a bound artifact
  std::size_t devices_missed = 0;    ///< broadcast never reached them
  std::size_t rows_scored = 0;       ///< rows classified on-device

  std::size_t predictions_delivered = 0;  ///< predictions that reached the core
  std::size_t predictions_correct = 0;    ///< ... matching the ground truth

  std::uint64_t downlink_bytes = 0;           ///< artifact broadcast traffic
  std::uint64_t uplink_prediction_bytes = 0;  ///< prediction batch traffic
  std::uint64_t uplink_raw_bytes = 0;         ///< counterfactual raw-row uplink

  double holdout_accuracy_float = 0.0;     ///< core holdout, float32 artifact
  double holdout_accuracy_deployed = 0.0;  ///< core holdout, deployed artifact
  double device_accuracy = 0.0;            ///< correct / delivered predictions

  // Per-row inference cost of the deployed artifact (deploy::InferenceCost).
  std::uint64_t cost_multiply_adds = 0;
  std::uint64_t cost_comparisons = 0;
  std::uint64_t cost_table_lookups = 0;

  // Degraded mode: devices the fresh broadcast never reached that scored
  // with the prior epoch's artifact instead (DeployConfig::stale_fallback).
  std::size_t devices_stale = 0;
  std::size_t rows_scored_stale = 0;

  /// The OTA delta-update ledger (all-zero unless FleetConfig::ota.enabled).
  OtaSummary ota;
};

/// Ledger of the telemetry wire subsystem (src/tdf/): what the device
/// uplinks actually cost as encoded TDF frames versus the abstract legacy
/// wire_size_bytes model for the same rows, how the frames fared on the
/// wire, and how full the on-device ring logs ran. All-zero unless
/// FleetConfig::telemetry.enabled.
struct TelemetrySummary {
  bool enabled = false;

  std::uint32_t schema_id = 0;      ///< the fleet's negotiated uplink schema
  std::size_t schema_fields = 0;
  std::uint64_t schema_negotiations = 0;  ///< session-open frames (schema inline)
  std::uint64_t schema_bytes = 0;         ///< negotiation blob bytes on the wire

  std::uint64_t frames_sent = 0;          ///< device frames a channel accepted
  std::uint64_t frames_delivered = 0;     ///< decoded intact at an edge
  std::uint64_t frames_rejected = 0;      ///< trailer-checksum rejects (wire damage)
  std::uint64_t frames_retransmitted = 0; ///< extra payload attempts (ack mode)

  std::uint64_t rows_encoded = 0;  ///< rows packed into accepted frames
  std::uint64_t rows_decoded = 0;  ///< rows recovered by edge decodes

  std::uint64_t encoded_wire_bytes = 0;  ///< header + frame, per accepted send
  std::uint64_t legacy_wire_bytes = 0;   ///< counterfactual: the abstract model

  std::uint64_t log_frames_evicted = 0;   ///< ring overflow, whole frames
  std::uint64_t log_rows_evicted = 0;
  std::uint64_t log_highwater_bytes = 0;  ///< max ring occupancy, any device

  /// Every edge decode re-hashed to the checksum stamped over the
  /// device-encoded rows. Asserted by FleetSim (IOTML_INTERNAL_CHECK);
  /// carried here so reports show it.
  bool decode_identity_ok = true;

  /// Mean encoded uplink bytes per row (0 when nothing was sent).
  double bytes_per_row() const noexcept {
    return rows_encoded == 0
               ? 0.0
               : static_cast<double>(encoded_wire_bytes) /
                     static_cast<double>(rows_encoded);
  }

  /// Mean counterfactual bytes per row under the legacy model.
  double legacy_bytes_per_row() const noexcept {
    return rows_encoded == 0
               ? 0.0
               : static_cast<double>(legacy_wire_bytes) /
                     static_cast<double>(rows_encoded);
  }
};

/// End-of-run backpressure watermarks for one edge: how deep its uplink and
/// device-side channel queues ever ran, how many sends were dead-lettered,
/// and the store-and-forward high water across its devices. These are the
/// trigger signals of the degradation ladder (DESIGN.md §16), surfaced as
/// diagnostics in FleetReport::faults.
struct BackpressureGauge {
  std::size_t edge = 0;
  std::size_t uplink_in_flight_highwater = 0;  ///< edge->core channel queue
  std::size_t device_in_flight_highwater = 0;  ///< max over device->edge channels
  std::uint64_t uplink_dead_letters = 0;
  std::uint64_t device_dead_letters = 0;       ///< summed over its devices
  std::size_t sf_rows_highwater = 0;           ///< store-and-forward occupancy
};

/// One ledgered ladder move of one edge (approx::LevelTransition plus the
/// edge index, flattened for the report).
struct DegradeTransitionEntry {
  std::size_t edge = 0;
  double t_s = 0.0;
  int from = 0;
  int to = 0;
};

/// Per-edge ladder timeline: where the edge ended, how long it spent at
/// each rung and every transition in order.
struct EdgeDegradeTimeline {
  std::size_t edge = 0;
  int final_level = 0;
  double time_at_level_s[4] = {0.0, 0.0, 0.0, 0.0};
  std::vector<DegradeTransitionEntry> transitions;
};

/// One approximately-answered flush window: the sampled mean of the first
/// sensor column with its 95% CI against the exact (counterfactual) mean
/// over the full window. `covered` is the realized CI-coverage bit the
/// bench gates on.
struct WindowEstimate {
  std::size_t edge = 0;
  double t_s = 0.0;
  int level = 0;               ///< ladder level that answered the window
  std::size_t rows_window = 0; ///< rows the window held
  std::size_t rows_used = 0;   ///< rows behind the estimate
  double estimate = 0.0;
  double half_width = 0.0;     ///< 95% CI half-width
  double exact = 0.0;          ///< full-window mean (computed out of band)
  bool covered = false;
};

/// Cap on WindowEstimate entries carried verbatim in the report; aggregate
/// counters (coverage, error sums) always cover every window.
inline constexpr std::size_t kMaxWindowEstimates = 64;

/// Ledger of the graceful-degradation contract (DESIGN.md §16): per-edge
/// ladder timelines, rows answered exactly vs approximately, realized error
/// against the exact counterfactual and CI coverage. All-zero unless
/// FleetConfig::degrade.enabled.
struct DegradationLedger {
  bool enabled = false;
  int pin_level = -1;  ///< >= 0 when the ladder was pinned for the run

  // Row disposition. rows_sampled_out joins the conservation ledger: rows a
  // sampled or sketch-only window answered approximately and did not
  // forward upstream.
  std::size_t rows_exact = 0;
  std::size_t rows_approx = 0;
  std::size_t rows_sampled_out = 0;

  std::uint64_t windows_exact = 0;
  std::uint64_t windows_sampled = 0;
  std::uint64_t windows_sketch = 0;
  std::uint64_t windows_summary = 0;

  std::uint64_t transitions_up = 0;
  std::uint64_t transitions_down = 0;

  std::uint64_t summaries_sent = 0;       ///< L2/L3 summary uplinks attempted
  std::uint64_t summaries_delivered = 0;  ///< ... that reached the core
  std::uint64_t summary_bytes = 0;        ///< encoded summary payload bytes

  /// L3 edges skip relaying fresh deploy artifacts; their devices serve the
  /// stale fallback instead (extends DeployConfig::stale_fallback).
  std::uint64_t artifact_relays_skipped = 0;

  double duration_s = 0.0;  ///< run length, for timeline rendering

  // Realized-error bookkeeping over every CI-carrying window.
  std::uint64_t ci_windows = 0;
  std::uint64_t ci_covered = 0;
  double ci_half_width_sum = 0.0;
  double abs_error_sum = 0.0;
  double max_abs_error = 0.0;

  std::vector<EdgeDegradeTimeline> edges;
  std::vector<WindowEstimate> windows;  ///< first kMaxWindowEstimates only
  std::uint64_t windows_truncated = 0;

  /// Fraction of CI-carrying windows whose interval covered the exact
  /// answer (1.0 when none were sampled — nothing to miss).
  double coverage() const noexcept {
    return ci_windows == 0
               ? 1.0
               : static_cast<double>(ci_covered) / static_cast<double>(ci_windows);
  }

  double mean_half_width() const noexcept {
    return ci_windows == 0 ? 0.0
                           : ci_half_width_sum / static_cast<double>(ci_windows);
  }

  double mean_abs_error() const noexcept {
    return ci_windows == 0 ? 0.0
                           : abs_error_sum / static_cast<double>(ci_windows);
  }
};

/// Standalone JSON rendering of the degradation ledger — the
/// degradation.json artifact the fleetscope `degradation` view reads.
/// Deterministic per seed (virtual times and counters only).
std::string degradation_to_json(const DegradationLedger& degradation);

/// One flight-recorder dump, captured at the instant a fault fired: the
/// affected entity's last ring of events, rendered as
/// "t=<sec> <kind> a=<n> b=<n>" lines (oldest -> newest). Only present when
/// the run had the observatory enabled.
struct FlightDump {
  std::string entity;   ///< topology node name ("edge-1", "core", ...)
  std::string trigger;  ///< "edge-crash", "core-crash", "partition", "dead-letter"
  double t_s = 0.0;     ///< virtual time the fault fired
  std::vector<std::string> events;
};

/// Cap on retained FlightDumps per run; later triggers only bump
/// FaultLedger::flight_dumps_truncated so a crash storm cannot balloon the
/// report.
inline constexpr std::size_t kMaxFlightDumps = 8;

/// Fault-and-recovery ledger: every row a fault touched is accounted in
/// exactly one bucket, so rows_generated always equals the sum of the
/// delivery buckets (FleetReport::rows_conserved). Event counts record how
/// much chaos actually fired; recovery counts are informational (recovered
/// rows re-enter the delivered/lost/stranded buckets downstream).
struct FaultLedger {
  std::size_t rows_corrupt_rejected = 0;  ///< checksum-mismatch frames discarded
  std::size_t rows_buffer_evicted = 0;    ///< pushed out of a bounded buffer
  std::size_t rows_lost_to_crash = 0;     ///< wiped volatile state / dead receiver
  std::size_t rows_retained = 0;          ///< kept on-device for deploy scoring
  std::size_t rows_recovered = 0;         ///< restored from an edge checkpoint

  std::uint64_t edge_crashes = 0;
  std::uint64_t core_crashes = 0;
  std::uint64_t partitions = 0;
  std::uint64_t loss_bursts = 0;
  std::uint64_t corruption_storms = 0;
  std::uint64_t load_storms = 0;  ///< rendered only when nonzero (legacy bytes)

  std::uint64_t checkpoints_written = 0;
  std::uint64_t checkpoints_restored = 0;
  std::size_t stale_model_devices = 0;    ///< mirror of deploy.devices_stale

  /// Flight-recorder context for the first kMaxFlightDumps fault triggers
  /// (empty unless the observatory was enabled).
  std::vector<FlightDump> flight_dumps;
  std::uint64_t flight_dumps_truncated = 0;

  /// Per-edge backpressure watermarks (the ladder's trigger signals),
  /// snapshot at end of run. Rendered only when the run had degradation
  /// enabled so legacy report JSON stays byte-identical.
  std::vector<BackpressureGauge> edge_gauges;
};

/// What a whole fleet run did: the union of every node's per-stage ledgers
/// (the same StageReport the in-process Pipeline emits) plus the transport
/// ledger the distributed runtime adds on top.
struct FleetReport {
  std::size_t devices = 0;
  std::size_t edges = 0;
  double duration_s = 0.0;
  std::uint64_t events = 0;

  // Row conservation: every generated row lands in exactly one bucket here
  // or in the fault ledger, whenever no stage changes the row count (the
  // default pipeline doesn't). See rows_accounted()/rows_conserved().
  std::size_t rows_generated = 0;   ///< integrated device rows at acquisition
  std::size_t rows_delivered = 0;   ///< rows that reached the core
  std::size_t rows_lost = 0;        ///< retransmits exhausted / dropped by a link
  std::size_t rows_skipped = 0;     ///< rows lost to device churn at flush
  std::size_t rows_stranded = 0;    ///< left in an edge or device buffer at the end

  std::uint64_t messages_sent = 0;
  std::uint64_t messages_dropped = 0;
  std::uint64_t duplicates_discarded = 0;  ///< deduplicated at the receiver

  FaultLedger faults;          ///< all-zero on a fault-free run
  net::ChannelStats channels;  ///< every channel's counters, summed

  std::vector<pipeline::StageReport> stage_reports;  ///< every stage run, in order
  std::vector<LinkReport> links;
  LatencySummary latency;  ///< end-to-end, mirror of latency_tiers["end-to-end"]

  /// Per-tier latency distributions keyed "device-edge", "edge-core",
  /// "end-to-end" — per-hop virtual wire latency and the full
  /// flush-to-core journey, each a fixed-size bucket table.
  std::map<std::string, LatencyBreakdown> latency_tiers;

  double accuracy = 0.0;  ///< core analytics on the delivered records
  std::size_t train_rows = 0;
  std::size_t test_rows = 0;

  DeploySummary deploy;  ///< all-zero unless the run had a deploy phase

  TelemetrySummary telemetry;  ///< all-zero unless telemetry was enabled

  DegradationLedger degradation;  ///< all-zero unless degradation was enabled

  /// Sum of every row bucket: delivered + lost + skipped + stranded plus the
  /// fault-ledger buckets (corrupt-rejected, buffer-evicted, lost-to-crash,
  /// retained-for-scoring) and the degradation ledger's rows_sampled_out.
  /// Excludes rows_recovered, which is informational.
  std::size_t rows_accounted() const noexcept;

  /// The conservation invariant the simulator asserts at the end of every
  /// run: rows_generated == rows_accounted().
  bool rows_conserved() const noexcept { return rows_accounted() == rows_generated; }

  /// Aggregate stage_reports by stage name (sums runs/rows/cost).
  std::map<std::string, StageTotals> stage_totals() const;

  /// Deterministic JSON rendering: stage totals, link stats, transport
  /// counts, latency summary and accuracy. Excludes measured wall times
  /// (see StageTotals) so two runs with the same seed render byte-identical.
  std::string to_json() const;
};

}  // namespace iotml::sim
