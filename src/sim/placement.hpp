#pragma once

#include "pipeline/stage.hpp"

namespace iotml::sim {

/// The per-tier sub-pipelines a full pipeline decomposes into.
struct TierPipelines {
  pipeline::Pipeline device;
  pipeline::Pipeline edge;
  pipeline::Pipeline core;
};

/// Partition a composed pipeline's stages onto the three tiers by each
/// stage's own Tier tag, preserving the relative order within every tier.
/// This is the placement step of Fig. 1: the same logical pipeline the
/// in-process runner executes end to end is re-hosted as a device-side,
/// an edge-side and a core-side sub-pipeline. The input pipeline is
/// consumed (its stages are moved, not copied).
TierPipelines split_by_tier(pipeline::Pipeline&& full);

}  // namespace iotml::sim
