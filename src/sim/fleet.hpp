#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_set>
#include <vector>

#include "approx/degradation.hpp"
#include "approx/sample.hpp"
#include "approx/sketch.hpp"
#include "data/dataset.hpp"
#include "deploy/compiled_model.hpp"
#include "deploy/runtime.hpp"
#include "net/channel.hpp"
#include "obs/observatory.hpp"
#include "net/faults.hpp"
#include "net/message.hpp"
#include "net/topology.hpp"
#include "ota/rollout.hpp"
#include "ota/transfer.hpp"
#include "ota/version.hpp"
#include "pipeline/sensors.hpp"
#include "sim/chaos.hpp"
#include "sim/placement.hpp"
#include "sim/report.hpp"
#include "sim/scheduler.hpp"
#include "tdf/codec.hpp"
#include "tdf/device_log.hpp"
#include "tdf/schema.hpp"
#include "util/rng.hpp"

namespace iotml::sim {

/// The optional deploy phase: after the learning window closes, the core
/// compiles its analytics model into a deploy::CompiledModel, quantizes it
/// to `precision`, and broadcasts the artifact down the tree over the
/// (lossy) downlinks. Devices that receive it score `score_window_s` of
/// subsequently sensed rows locally and uplink only predictions — the
/// paper's move from "ship every row to the core" to "ship the model to
/// the data".
struct DeployConfig {
  bool enabled = false;
  double score_window_s = 30.0;  ///< sensed seconds scored on-device
  deploy::ModelKind model = deploy::ModelKind::kTree;
  deploy::Precision precision = deploy::Precision::kInt8;

  /// Degraded mode: devices the fresh broadcast never reaches (crash during
  /// broadcast, corrupt or timed-out artifact frames) keep scoring with the
  /// prior epoch's artifact instead of going dark. The stale artifact is
  /// compiled from the first half of the training window — the model the
  /// previous deployment round would have shipped. Staleness is ledgered
  /// (DeploySummary::devices_stale, FaultLedger::stale_model_devices).
  bool stale_fallback = false;

  net::LinkParams edge_device_link{
      .latency_s = 0.02, .jitter_s = 0.005, .bandwidth_bytes_per_s = 125000.0,
      .drop_prob = 0.02, .duplicate_prob = 0.005, .max_retries = 1,
      .retry_backoff_s = 0.05};
  net::LinkParams core_edge_link{
      .latency_s = 0.005, .jitter_s = 0.001, .bandwidth_bytes_per_s = 1.25e6,
      .drop_prob = 0.002, .duplicate_prob = 0.0, .max_retries = 2,
      .retry_backoff_s = 0.02};
};

/// The fleet observatory (DESIGN.md §13): virtual-clock time-series, causal
/// journey tracing and per-entity flight recorders. Off by default. When on
/// it is purely observational — it draws no randomness, schedules nothing
/// and changes no wire byte, so a run emits byte-identical event logs and
/// rows/latency numbers with the observatory on or off.
struct ObservatoryConfig {
  bool enabled = false;
  std::size_t series_capacity = 512;       ///< samples kept per (metric, entity, tier)
  std::size_t flight_ring = 32;            ///< events kept per entity
  std::size_t journey_capacity = 1 << 20;  ///< hop records kept per run

  /// When non-empty, run() writes timeseries.json, journeys.jsonl,
  /// flightrec.json and events.log under this directory (created if
  /// missing) — the artifacts tools/fleetscope reads.
  std::string artifact_dir;
};

/// The telemetry wire subsystem (DESIGN.md §15): devices encode each uplink
/// window as a tagged TDF frame (src/tdf/) instead of the abstract
/// wire_size_bytes payload model. Readings are quantized to multiples of
/// 2^-scale_bits on-device, the frame crosses the (lossy) link as real
/// bytes, and the edge decodes it back to rows before its sub-pipeline —
/// the decode is load-bearing, checked byte-for-byte against the device's
/// encoding. Off by default: when off no frame is built, no codec byte is
/// charged and legacy runs stay byte-identical.
struct TelemetryConfig {
  bool enabled = false;

  /// Fixed-point resolution: readings are rounded to multiples of
  /// 2^-scale_bits before encoding. The default (1/256 ≈ 0.004) sits far
  /// below the configured sensor noise (0.4), so quantization is lossless
  /// relative to measurement error while the scaled-varint delta streams
  /// engage. Must be ≤ 52 (checked by FleetSim).
  std::uint8_t scale_bits = 8;

  /// Capacity of the on-device ring log that holds encoded frames while the
  /// device is offline (meshes with store-and-forward; active only when
  /// device_buffer_rows > 0). Overflow evicts whole frames oldest-first.
  std::size_t device_log_bytes = 16384;
};

/// The graceful-degradation contract (DESIGN.md §16): each edge watches its
/// own backpressure — uplink/device channel in-flight depth, dead-letter
/// growth, store-and-forward occupancy, checkpoint lag — and moves along a
/// 4-level ladder with hysteresis:
///
///   L0 exact    — today's pipeline, every row shipped (the default)
///   L1 sampled  — seeded per-device stratified sample of the flush window
///                 rides the normal pipeline; the rest is shed, the answer
///                 carries a 95% confidence interval
///   L2 sketch   — the window collapses to mergeable sketches (count-min +
///                 bottom-k quantile); only a fixed-size summary uplinks
///   L3 summary  — row counts only; deploy artifact relays pause so devices
///                 fall back to the stale model
///
/// Off by default. When off, no controller exists, no degrade stream is
/// drawn from, and runs are byte-identical to pre-ladder builds. When on
/// with pin_level = 0 the ladder never leaves L0, which must also reproduce
/// the legacy event log and report byte-for-byte (tested against goldens).
struct DegradeConfig {
  bool enabled = false;

  /// Pin the ladder to one level (0..3) for benchmarking; -1 lets the
  /// controller move freely.
  int pin_level = -1;

  /// Hysteresis bands and de-escalation dwell (see approx::DegradeThresholds).
  approx::DegradeThresholds thresholds;

  /// L1 per-stratum sampling rate in (0, 1].
  double sample_rate = 0.25;

  /// L2 sketch shapes.
  std::size_t sketch_capacity = 256;  ///< bottom-k quantile sample size
  std::size_t countmin_width = 64;
  std::size_t countmin_depth = 4;

  /// Signal normalization: dead letters per second that count as pressure
  /// 1.0, and un-checkpointed buffered rows that count as lag 1.0.
  double dead_letter_rate_ref = 1.0;
  std::size_t checkpoint_lag_rows = 4096;

  /// Virtual cost model of the L2 sketch reduce (edge tier), mirroring the
  /// integration stage's base + per-row shape. The degradation bench gates
  /// on the realized ratio against the exact pipeline.
  double sketch_cost_base = 0.02;
  double sketch_cost_per_row = 0.0005;
};

/// Everything a fleet run depends on. A (config, pipeline) pair fully
/// determines the run — same seed, byte-identical event log and report.
struct FleetConfig {
  std::size_t devices = 100;
  std::size_t edges = 4;
  double duration_s = 60.0;
  double device_flush_s = 5.0;  ///< device report interval
  double edge_flush_s = 10.0;   ///< edge batch-and-forward interval
  std::uint64_t seed = 42;

  net::LinkParams device_edge_link{
      .latency_s = 0.02, .jitter_s = 0.005, .bandwidth_bytes_per_s = 125000.0,
      .drop_prob = 0.02, .duplicate_prob = 0.005, .max_retries = 1,
      .retry_backoff_s = 0.05};
  net::LinkParams edge_core_link{
      .latency_s = 0.005, .jitter_s = 0.001, .bandwidth_bytes_per_s = 1.25e6,
      .drop_prob = 0.002, .duplicate_prob = 0.0, .max_retries = 2,
      .retry_backoff_s = 0.02};
  net::FaultParams faults;

  /// Transport policy applied to every link. The default (fire-and-forget)
  /// reproduces the legacy runtime byte-for-byte; kAckRetry turns each link
  /// into a stop-and-wait reliable channel (see net::Channel).
  net::ChannelParams channel;

  /// Compound failure scenarios layered on the fault plan (all off by default).
  ChaosParams chaos;

  /// Edge checkpointing period; 0 disables. A crashed edge restarts with the
  /// buffer its last checkpoint persisted; rows integrated since are lost to
  /// the crash (FaultLedger::rows_lost_to_crash).
  double checkpoint_interval_s = 0.0;

  /// Device store-and-forward capacity in rows; 0 disables. A device that is
  /// offline at flush time — or whose ack-mode send fails — buffers the
  /// window locally and drains it on reconnect instead of dropping it
  /// (legacy rows_skipped). Overflow evicts oldest-first into
  /// FaultLedger::rows_buffer_evicted.
  std::size_t device_buffer_rows = 0;

  double sensor_period_s = 0.5;  ///< nominal sampling period per sensor
  double sensor_dropout = 0.05;  ///< per-sample loss at the sensor itself
  double sensor_noise = 0.4;     ///< base measurement noise (scaled per quantity)
  std::size_t feature_keep = 3;  ///< core-side MI feature selection budget

  DeployConfig deploy;
  ObservatoryConfig observatory;
  TelemetryConfig telemetry;

  /// The OTA delta-update loop (DESIGN.md §14): epochal retrains during the
  /// learning window, chunked binary patches down the tree, seeded canary
  /// cohorts and automatic rollback. Uses DeployConfig's model/precision and
  /// downlink params. Off by default; when off, no OTA event is ever
  /// scheduled and no OTA stream is drawn from, so legacy event logs stay
  /// byte-identical.
  ota::OtaConfig ota;

  /// The graceful-degradation ladder (DESIGN.md §16). Off by default; when
  /// off no controller runs and no degrade RNG stream is drawn from, so
  /// legacy event logs and reports stay byte-identical.
  DegradeConfig degrade;
};

/// The default Fig. 1 pipeline, tagged for placement: device-side outlier
/// cleaning, edge-side imputation + normalization, core-side MI feature
/// selection. The simulator synthesizes acquisition, integration and
/// analytics reports around it, completing the paper's
/// acquisition -> integration -> preparation -> reduction -> analytics chain.
pipeline::Pipeline default_fleet_pipeline(const FleetConfig& config);

/// The deploy-mode variant of the default pipeline: identical placement but
/// without the edge z-score stage. Per-batch normalization cannot be
/// replayed on a device scoring rows one at a time, so deploy runs train in
/// raw sensor units and fold any standardization into the compiled artifact
/// instead (see deploy::compile).
pipeline::Pipeline default_deploy_pipeline(const FleetConfig& config);

/// Deterministic discrete-event simulator of the paper's Fig. 1: devices
/// sample noisy desynchronized sensors and flush windows to their edge over
/// lossy links; edges integrate, prepare and batch-forward to the core; the
/// core reduces the merged records and learns the analytics concept. All
/// time is virtual (the scheduler's clock); all randomness flows from the
/// config seed through split Rngs, so a run is reproducible bit-for-bit.
class FleetSim {
 public:
  /// Uses default_fleet_pipeline(config).
  /// Throws InvalidArgument on nonsensical config (no devices, more edges
  /// than devices, non-positive durations or intervals).
  explicit FleetSim(FleetConfig config);

  /// Host a custom pipeline instead; its stages are placed by tier.
  FleetSim(FleetConfig config, pipeline::Pipeline full_pipeline);

  /// Run the simulation to completion. One-shot: throws InvalidArgument on
  /// a second call (build a fresh FleetSim to re-run).
  FleetReport run();

  /// One line per processed event (see Scheduler::log); byte-identical
  /// across runs with the same config and pipeline.
  const std::vector<std::string>& event_log() const noexcept { return sched_.log(); }

  const net::Topology& topology() const noexcept { return topo_; }

  /// The run's observatory, or nullptr when config.observatory.enabled is
  /// false. Valid for the simulator's lifetime.
  const obs::Observatory* observatory() const noexcept {
    return obsy_ ? &*obsy_ : nullptr;
  }

 private:
  struct Buffer {
    data::Dataset rows;
    std::vector<double> origin_s;
    std::size_t row_count = 0;
    /// Origin-window trace ids folded into `rows`, in fold order — the
    /// causal provenance the journey log needs to survive edge batching,
    /// store-and-forward and checkpoint restore.
    std::vector<std::uint64_t> parents;
    /// Contiguous per-sender row runs (maintained only when degradation is
    /// enabled) — the strata L1 sampling draws from, so every device keeps
    /// representation in the sampled window.
    std::vector<approx::Stratum> strata;
  };

  void generate_device_data();
  void schedule_initial_events();
  void handle(const Event& event);
  void handle_device_flush(const Event& event);
  void handle_edge_flush(std::size_t edge_index, double now_s);
  void handle_arrival(const Event& event);
  void handle_corrupt_arrival(const Event& event);
  void send(net::NodeId from, Buffer&& chunk, double now_s);
  void finalize();
  int truth_label(double time_s) const;

  // Fault-tolerance machinery (see DESIGN.md §11).
  void handle_checkpoint(std::size_t edge_index);
  void handle_edge_crash(std::size_t edge_index);
  void handle_edge_restart(std::size_t edge_index);
  void set_partition(bool on);
  void set_loss_burst(bool on);
  void set_corruption_storm(bool on);
  void store_and_forward(net::NodeId device, Buffer&& chunk);
  std::size_t stored_rows(net::NodeId device) const;

  // Telemetry wire path (config_.telemetry.enabled; see DESIGN.md §15).
  bool telemetry_on() const noexcept { return config_.telemetry.enabled; }
  /// Encode `ds` (already quantized) as `device`'s next TDF frame. The
  /// schema rides inline until one frame is known delivered — the session
  /// negotiation — and is registered edge-side on first use.
  std::vector<std::uint8_t> telemetry_encode(net::NodeId device,
                                             const data::Dataset& ds,
                                             const std::vector<double>& origin_s);
  /// Buffer an offline/failed chunk through the device's ring log:
  /// store-and-forward keeps the rows, the log accounts the encoded bytes,
  /// and overflow evicts whole frames oldest-first (byte bound first, then
  /// the legacy row cap) keeping both structures in lockstep.
  void telemetry_store(net::NodeId device, Buffer&& chunk);

  // Deploy phase (config_.deploy.enabled): compile at the core, broadcast
  // down, score on-device, uplink predictions.
  void prepare_deploy();
  void run_deploy_phase();
  void handle_deploy_broadcast(const Event& event);
  void handle_artifact_arrival(const Event& event);
  void handle_prediction_arrival(const Event& event);
  void send_artifact(net::NodeId to, double now_s);
  void send_predictions(net::NodeId from, std::size_t batch, double now_s);
  void score_on_device(net::NodeId device, double now_s, bool stale);

  // OTA delta-update loop (config_.ota.enabled; see DESIGN.md §14). The
  // core retrains per epoch as rows arrive, diffs the new artifact against
  // the promoted head, ships chunked patches to a seeded canary cohort,
  // promotes on the pooled A/B probe and rolls back on regression.
  void schedule_ota_epochs();
  void handle_ota_epoch(const Event& event);
  void handle_ota_chunk_arrival(const Event& event);
  void handle_ota_resume(const Event& event);
  void handle_ota_report_arrival(const Event& event);
  void handle_ota_verdict(const Event& event);
  void handle_ota_control_arrival(const Event& event);
  void start_ota_transfer(std::size_t device_index, std::size_t rollout_index,
                          double now_s);
  void send_ota_chunk_hop(net::NodeId to, std::size_t record, double now_s);
  void send_ota_chunks(std::size_t transfer_index,
                       const std::vector<std::size_t>& chunks, double now_s);
  void send_ota_report_hop(net::NodeId from, std::size_t record, double now_s);
  void send_ota_control_hop(net::NodeId to, std::size_t record, double now_s);
  void ota_commit_device(std::size_t transfer_index, double now_s);
  /// The canary A/B probe: the device's most recent sensed rows (before
  /// now_s) scored by both the running and the candidate artifact.
  ota::CanaryProbe ota_probe(std::size_t device_index,
                             const std::vector<std::uint8_t>& old_image,
                             const std::vector<std::uint8_t>& new_image,
                             double now_s) const;
  void finalize_ota();

  // Graceful-degradation ladder (config_.degrade.enabled; DESIGN.md §16).
  bool degrade_on() const noexcept { return config_.degrade.enabled; }
  /// Measure this edge's backpressure signals on the virtual clock.
  approx::DegradeSignals degrade_signals(std::size_t edge_index, double now_s);
  /// Step the edge's controller, ledger any transition and return the level.
  int degrade_update(std::size_t edge_index, double now_s,
                     const approx::DegradeSignals& signals);
  /// L1: replace the edge buffer with a seeded stratified sample; records
  /// the window's confidence interval against the exact (counterfactual)
  /// window mean and ledgers the shed rows.
  void degrade_sample_window(std::size_t edge_index, double now_s);
  /// L2/L3: answer the window with sketches (or a bare count), shed every
  /// row and uplink a fixed-size summary instead of the batch.
  void degrade_summary_flush(std::size_t edge_index, double now_s, int level);
  void handle_summary_arrival(const Event& event);
  void set_load_storm(bool on, double now_s);
  void handle_storm_flush(const Event& event);
  /// Post-drain calm updates so every un-pinned edge walks back to L0 and
  /// the per-level time books close.
  void degrade_settle(double now_s);
  void finalize_degradation();

  // Observatory wiring (all no-ops when obsy_ is empty; see DESIGN.md §13).
  void journey_arrive(std::uint64_t trace, obs::HopStream stream, std::uint32_t hop,
                      net::NodeId node, double t_s, std::size_t rows,
                      const char* outcome);
  void flight_dump(net::NodeId entity, const char* trigger, double t_s);

  FleetConfig config_;
  net::Topology topo_;
  TierPipelines tiers_;
  Scheduler sched_;

  std::vector<Rng> device_rngs_;
  std::vector<Rng> edge_rngs_;
  // det-sanctioned: placeholder seed; reseeded from master.split() (rng-stream: core)
  Rng core_rng_{0};
  std::vector<Rng> link_rngs_;
  // det-sanctioned: placeholder; reseeded via master.split() last (rng-stream: chaos)
  Rng chaos_rng_{0};  ///< split last, so legacy streams stay byte-identical

  /// One transport per link, same index space; every simulator send goes
  /// through these (lint rule R8 bans direct Link transmits outside net/).
  std::vector<net::Channel> channels_;

  std::vector<pipeline::Signal> truths_;      ///< per measured quantity
  std::vector<data::Dataset> device_data_;    ///< pre-integrated full window
  std::vector<std::size_t> device_cursor_;    ///< next unflushed row

  std::vector<net::Message> messages_;
  /// Per-message parent origin-window ids, parallel to messages_. Kept off
  /// the wire struct: receivers inherit provenance locally, the frame only
  /// carries the 10-byte TraceContext.
  std::vector<std::vector<std::uint64_t>> msg_parents_;
  std::vector<Buffer> edge_buffers_;
  Buffer core_buffer_;
  // det-sanctioned: membership-only dedup set per node, never iterated
  std::vector<std::unordered_set<std::uint64_t>> seen_;

  /// Per-tier virtual-latency distributions at fixed memory — the
  /// observatory's replacement for an unbounded per-sample vector.
  obs::LogHistogram lat_device_edge_;
  obs::LogHistogram lat_edge_core_;
  obs::LogHistogram lat_end_to_end_;

  /// Monotone trace-id source for origin windows, wire frames and deploy
  /// broadcasts. Plain counter, never an RNG draw: ids are deterministic
  /// and cost nothing when the observatory is off.
  std::uint64_t next_trace_ = 1;
  std::optional<obs::Observatory> obsy_;

  std::vector<Buffer> edge_checkpoints_;  ///< last persisted buffer per edge
  std::vector<std::deque<Buffer>> device_sf_;  ///< store-and-forward chunks

  // ---- Telemetry wire state (empty unless config_.telemetry.enabled) ----
  tdf::SchemaRegistry tdf_registry_;       ///< edge-side schemas, keyed by id
  std::optional<tdf::Schema> tdf_schema_;  ///< the fleet's uplink schema
  std::vector<std::uint8_t> tdf_session_open_;  ///< device: schema delivered
  std::vector<std::uint32_t> tdf_seq_;          ///< per-device frame sequence
  std::vector<tdf::DeviceLog> device_logs_;     ///< per-device encoded ring
  bool partitioned_ = false;
  std::vector<std::uint8_t> core_link_;  ///< link index -> is edge<->core
  /// Pre-chaos drop/corrupt probabilities of every link, captured at start
  /// so burst/storm ends restore exactly the configured baseline.
  std::vector<double> base_drop_prob_;
  std::vector<double> base_corrupt_prob_;

  /// One on-device prediction batch in flight (device -> edge -> core).
  /// Ground truth is resolved at scoring time — the simulator knows it —
  /// so the wire carries one bit per prediction, never labels.
  struct PredBatch {
    net::NodeId device = 0;
    std::size_t rows = 0;
    std::size_t correct = 0;
    std::size_t wire_bytes = 0;
  };

  data::Dataset deploy_train_, deploy_test_;  ///< core split, kept for compile
  deploy::CompiledModel deployed_model_;
  std::optional<deploy::DeviceRuntime> device_runtime_;
  bool deploy_ready_ = false;
  std::size_t artifact_wire_bytes_ = 0;
  std::vector<PredBatch> pred_batches_;
  std::vector<std::uint64_t> pred_traces_;  ///< batch trace ids, parallel
  std::uint64_t broadcast_trace_ = 0;       ///< deploy broadcast trace id
  std::vector<std::uint8_t> artifact_seen_;  ///< dedup duplicate broadcasts
  // det-sanctioned: membership-only dedup set per edge, never iterated
  std::vector<std::unordered_set<std::uint64_t>> pred_seen_;

  deploy::CompiledModel stale_model_;  ///< prior epoch's artifact (fallback)
  std::optional<deploy::DeviceRuntime> stale_runtime_;
  bool stale_ready_ = false;
  std::vector<std::uint8_t> device_scored_;  ///< device index -> fresh artifact scored

  // ---- OTA delta-update state (empty unless config_.ota.enabled) --------

  /// One epoch's candidate rollout: the target image, its delta patch
  /// against the promoted head, the full-image patch (the resume fallback
  /// and the provisioning payload) and the canary bookkeeping.
  struct OtaRollout {
    int epoch = 0;
    std::uint32_t version_id = 0;
    std::uint32_t base_checksum = ota::kEmptyImageChecksum;  ///< delta base
    std::uint32_t target_checksum = ota::kEmptyImageChecksum;
    std::vector<std::uint8_t> image;  ///< encoded target artifact
    ota::ChunkedPatch delta;          ///< empty when provisioning
    ota::ChunkedPatch full;
    bool has_delta = false;
    bool provisioning = false;
    std::vector<std::uint32_t> cohort;  ///< canary device indices, ascending
    std::vector<ota::CanaryProbe> probes;
    bool verdict_issued = false;
    bool promoted = false;
    std::size_t entry = 0;     ///< index into the epochs_log ledger
    std::uint64_t trace = 0;   ///< journey root (stream kPatch)
  };

  /// One device's in-progress patch transfer. The applier stages verified
  /// chunks; the device image only changes at commit (never torn).
  struct OtaTransfer {
    std::size_t rollout = 0;
    std::uint32_t device = 0;  ///< device index
    bool full = false;         ///< shipping the full image, not the delta
    bool canary = false;
    int resume_rounds = 0;
    int full_rounds = 0;  ///< completed full-image rounds
    bool done = false;
    bool stuck = false;
    ota::PatchApplier applier;
  };

  struct OtaChunkMsg {
    std::size_t transfer = 0;
    std::uint32_t chunk = 0;
    /// Which patch the chunk belongs to, snapshot at send time — the
    /// transfer may fall back to the full image while frames are in flight,
    /// and a stale delta chunk must not index into the full patch.
    bool full = false;
  };
  struct OtaReportMsg {
    std::size_t rollout = 0;
    ota::CanaryProbe probe;
  };
  struct OtaControlMsg {
    std::size_t rollout = 0;
    std::uint32_t device = 0;  ///< device index to roll back
  };

  std::vector<OtaRollout> ota_rollouts_;
  std::vector<OtaTransfer> ota_transfers_;
  std::vector<std::size_t> ota_active_transfer_;  ///< device index -> transfer
  std::vector<OtaChunkMsg> ota_chunk_msgs_;
  std::vector<OtaReportMsg> ota_report_msgs_;
  std::vector<OtaControlMsg> ota_control_msgs_;
  // det-sanctioned: membership-only dedup set per node, never iterated
  std::vector<std::unordered_set<std::uint64_t>> ota_report_seen_;

  std::vector<ota::DeviceImageStore> ota_stores_;  ///< per device
  ota::VersionChain ota_chain_;                    ///< promoted versions only
  std::vector<std::uint8_t> ota_head_image_;       ///< promoted head's bytes
  std::uint32_t ota_next_version_ = 1;
  // det-sanctioned: placeholder; reseeded via master.split() (rng-stream: canary)
  Rng canary_rng_{0};  ///< canary cohort sampling; split after chaos
  // det-sanctioned: placeholder; reseeded via master.split() (rng-stream: epoch)
  Rng epoch_rng_{0};   ///< epoch retrain jitter; split after canary

  // ---- Degradation ladder state (empty unless config_.degrade.enabled) --

  /// One L2/L3 summary uplink in flight (edge -> core).
  struct DegradeSummary {
    std::size_t edge = 0;  ///< edge index
    int level = 0;
    std::size_t wire_bytes = 0;
    std::uint64_t rows_represented = 0;
    bool delivered = false;
  };

  // det-sanctioned: placeholder; reseeded via master.split() (rng-stream: degrade)
  Rng degrade_rng_{0};  ///< L1 stratified sampling; split last of all
  std::vector<approx::DegradationController> degrade_ctrl_;  ///< per edge
  std::vector<double> degrade_signal_t_;        ///< last controller update
  std::vector<std::uint64_t> degrade_dead_letters_;       ///< per-edge total
  std::vector<std::uint64_t> degrade_dead_letters_seen_;  ///< at last update
  /// Deepest in-flight/queue-capacity fraction observed on any of the
  /// edge's channels since its last controller update (reset on read).
  std::vector<double> degrade_queue_hint_;
  std::vector<std::uint64_t> degrade_sf_highwater_;  ///< rows, per edge
  std::vector<DegradeSummary> degrade_summaries_;
  bool load_storm_ = false;
  std::uint64_t storm_epoch_ = 0;  ///< invalidates stale kStormFlush chains

  FleetReport report_;
  bool ran_ = false;
};

}  // namespace iotml::sim
