#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "net/topology.hpp"
#include "util/rng.hpp"

namespace iotml::sim {

/// Compound scenarios the chaos harness layers on top of the base
/// net::FaultPlan. Every *Start is paired with its *End; magnitudes
/// (burst drop probability, storm corruption probability) live in
/// ChaosParams so an event stays a plain (time, kind, target) triple.
enum class ChaosKind {
  kPartitionStart,    ///< every edge<->core link severed (both directions)
  kPartitionEnd,
  kLossBurstStart,    ///< device->edge uplinks jump to burst_drop_prob
  kLossBurstEnd,
  kCorruptionStart,   ///< device->edge uplinks corrupt at storm_corrupt_prob
  kCorruptionEnd,
  kLoadStormStart,    ///< devices flush load_storm_factor times faster
  kLoadStormEnd
};

std::string chaos_kind_name(ChaosKind kind);

/// One scheduled chaos transition. Fleet-wide scenarios leave `target` 0.
struct ChaosEvent {
  double time_s = 0.0;
  ChaosKind kind = ChaosKind::kPartitionStart;
  std::size_t target = 0;
};

/// Intensity of the compound scenarios, expressed as expected occurrences
/// over the whole window (like net::FaultParams). Crash scenarios live in
/// FaultParams (kEdgeCrash/kCoreCrash); ChaosParams adds the scenarios that
/// mutate link behaviour rather than node liveness, plus the one timed
/// scenario the plan cannot know in advance: a crash during the deploy
/// broadcast, which FleetSim schedules itself at the broadcast instant.
struct ChaosParams {
  double partitions = 0.0;            ///< expected core partitions per window
  double partition_mean_s = 5.0;
  double loss_bursts = 0.0;           ///< expected fleet-wide loss bursts
  double burst_mean_s = 3.0;
  double burst_drop_prob = 0.5;       ///< device->edge drop prob during a burst
  double corruption_storms = 0.0;     ///< expected fleet-wide corruption storms
  double storm_mean_s = 3.0;
  double storm_corrupt_prob = 0.1;    ///< device->edge corrupt prob during a storm
  bool crash_during_broadcast = false; ///< crash edge 0 at deploy-broadcast time
  double broadcast_crash_downtime_s = 5.0;
  double load_storms = 0.0;           ///< expected fleet-wide flush storms
  double load_storm_mean_s = 4.0;
  double load_storm_factor = 4.0;     ///< flush-schedule compression (> 1)

  bool any() const noexcept {
    return partitions > 0.0 || loss_bursts > 0.0 || corruption_storms > 0.0 ||
           load_storms > 0.0 || crash_during_broadcast;
  }
};

/// Sample a reproducible chaos plan over [0, duration_s): exponential
/// inter-arrival times per scenario, exponential scenario lengths, every
/// start paired with its end, sorted by (time, kind, target). Layered on
/// the base fault plan — FleetSim schedules both streams into the same
/// event queue. Throws InvalidArgument unless duration_s > 0, the rates
/// and mean durations are non-negative and the burst/storm probabilities
/// lie in [0, 1].
std::vector<ChaosEvent> make_chaos_plan(const net::Topology& topo,
                                        const ChaosParams& params,
                                        double duration_s, Rng& rng);

}  // namespace iotml::sim
