#include "sim/report.hpp"

#include <algorithm>
#include <sstream>

#include "obs/json.hpp"

namespace iotml::sim {

LatencySummary LatencySummary::from_samples(std::vector<double> samples) {
  LatencySummary s;
  if (samples.empty()) return s;
  std::sort(samples.begin(), samples.end());
  s.count = samples.size();
  double sum = 0.0;
  for (double v : samples) sum += v;
  s.mean_s = sum / static_cast<double>(samples.size());
  auto nearest_rank = [&](double q) {
    const auto rank = static_cast<std::size_t>(q * static_cast<double>(samples.size() - 1) + 0.5);
    return samples[std::min(rank, samples.size() - 1)];
  };
  s.p50_s = nearest_rank(0.50);
  s.p95_s = nearest_rank(0.95);
  s.max_s = samples.back();
  return s;
}

LatencySummary LatencySummary::from_histogram(const obs::LogHistogram& hist) {
  LatencySummary s;
  s.count = hist.count();
  s.mean_s = hist.mean();
  s.p50_s = hist.quantile(0.50);
  s.p95_s = hist.quantile(0.95);
  s.max_s = hist.max();
  return s;
}

LatencyBreakdown LatencyBreakdown::from_histogram(const obs::LogHistogram& hist) {
  LatencyBreakdown b;
  b.summary = LatencySummary::from_histogram(hist);
  b.bounds_s = hist.bounds();
  b.counts = hist.buckets();
  return b;
}

namespace {

// Renders the OTA ledger object with `ind` as the indentation of its
// members — shared by the standalone ota.json artifact (ind = "  ") and the
// nested block inside FleetReport::to_json (ind = "    ").
void write_ota(std::ostream& out, const OtaSummary& ota, const std::string& ind) {
  using obs::json_escape;
  using obs::json_number;
  out << "{\n";
  out << ind << "\"enabled\": " << (ota.enabled ? "true" : "false") << ",\n";
  out << ind << "\"epochs\": " << ota.epochs << ",\n";
  out << ind << "\"versions_published\": " << ota.versions_published << ",\n";
  out << ind << "\"bytes\": {\"delta_downlink\": " << ota.delta_downlink_bytes
      << ", \"full_broadcast_counterfactual\": " << ota.full_broadcast_bytes
      << ", \"probe_uplink\": " << ota.probe_uplink_bytes << "},\n";
  out << ind << "\"chunks\": {\"sent\": " << ota.chunks_sent
      << ", \"delivered\": " << ota.chunks_delivered
      << ", \"corrupt_rejected\": " << ota.chunks_corrupt_rejected
      << ", \"duplicates\": " << ota.chunk_duplicates
      << ", \"stale\": " << ota.chunks_stale << "},\n";
  out << ind << "\"resume_rounds\": " << ota.resume_rounds << ",\n";
  out << ind << "\"full_fallbacks\": " << ota.full_fallbacks << ",\n";
  out << ind << "\"promotions\": " << ota.promotions << ",\n";
  out << ind << "\"rollbacks\": " << ota.rollbacks << ",\n";
  out << ind << "\"last_commit_t_s\": " << json_number(ota.last_commit_t_s)
      << ",\n";
  out << ind << "\"devices\": {\"on_head\": " << ota.devices_on_head
      << ", \"behind\": " << ota.devices_behind
      << ", \"unprovisioned\": " << ota.devices_unprovisioned
      << ", \"stuck\": " << ota.devices_stuck << "},\n";
  out << ind << "\"all_devices_verified\": "
      << (ota.all_devices_verified ? "true" : "false") << ",\n";
  out << ind << "\"version_histogram\": {";
  bool first = true;
  for (const auto& [id, count] : ota.version_histogram) {
    out << (first ? "" : ", ") << "\"" << id << "\": " << count;
    first = false;
  }
  out << "},\n";
  out << ind << "\"epochs_log\": [";
  for (std::size_t i = 0; i < ota.epochs_log.size(); ++i) {
    const OtaEpochEntry& e = ota.epochs_log[i];
    out << (i == 0 ? "" : ",") << "\n" << ind << "  {\"epoch\": " << e.epoch
        << ", \"t_s\": " << json_number(e.t_s)
        << ", \"version_id\": " << e.version_id
        << ", \"outcome\": \"" << json_escape(e.outcome) << "\""
        << ", \"train_rows\": " << e.train_rows
        << ", \"image_bytes\": " << e.image_bytes
        << ", \"patch_bytes\": " << e.patch_bytes
        << ", \"delta_downlink_bytes\": " << e.delta_downlink_bytes
        << ", \"full_broadcast_bytes\": " << e.full_broadcast_bytes
        << ", \"canary_devices\": " << e.canary_devices
        << ", \"devices_reporting\": " << e.devices_reporting
        << ", \"pooled_rows\": " << e.pooled_rows
        << ", \"accuracy_old\": " << json_number(e.accuracy_old)
        << ", \"accuracy_new\": " << json_number(e.accuracy_new)
        << ", \"devices_updated\": " << e.devices_updated
        << ", \"devices_rolled_back\": " << e.devices_rolled_back
        << ", \"full_fallbacks\": " << e.full_fallbacks
        << ", \"devices_stuck\": " << e.devices_stuck << "}";
  }
  if (!ota.epochs_log.empty()) out << "\n" << ind;
  out << "]\n";
}

// Renders the degradation ledger object with `ind` as the indentation of
// its members — shared by the standalone degradation.json artifact
// (ind = "  ") and the nested block inside FleetReport::to_json.
void write_degradation(std::ostream& out, const DegradationLedger& d,
                       const std::string& ind) {
  using obs::json_number;
  out << "{\n";
  out << ind << "\"enabled\": " << (d.enabled ? "true" : "false") << ",\n";
  out << ind << "\"pin_level\": " << d.pin_level << ",\n";
  out << ind << "\"duration_s\": " << json_number(d.duration_s) << ",\n";
  out << ind << "\"rows\": {\"exact\": " << d.rows_exact
      << ", \"approx\": " << d.rows_approx
      << ", \"sampled_out\": " << d.rows_sampled_out << "},\n";
  out << ind << "\"windows\": {\"exact\": " << d.windows_exact
      << ", \"sampled\": " << d.windows_sampled
      << ", \"sketch\": " << d.windows_sketch
      << ", \"summary\": " << d.windows_summary << "},\n";
  out << ind << "\"transitions\": {\"up\": " << d.transitions_up
      << ", \"down\": " << d.transitions_down << "},\n";
  out << ind << "\"summaries\": {\"sent\": " << d.summaries_sent
      << ", \"delivered\": " << d.summaries_delivered
      << ", \"bytes\": " << d.summary_bytes
      << ", \"artifact_relays_skipped\": " << d.artifact_relays_skipped
      << "},\n";
  out << ind << "\"ci\": {\"windows\": " << d.ci_windows
      << ", \"covered\": " << d.ci_covered
      << ", \"coverage\": " << json_number(d.coverage())
      << ", \"mean_half_width\": " << json_number(d.mean_half_width())
      << ", \"mean_abs_error\": " << json_number(d.mean_abs_error())
      << ", \"max_abs_error\": " << json_number(d.max_abs_error) << "},\n";
  out << ind << "\"edges\": [";
  for (std::size_t i = 0; i < d.edges.size(); ++i) {
    const EdgeDegradeTimeline& e = d.edges[i];
    out << (i == 0 ? "" : ",") << "\n" << ind << "  {\"edge\": " << e.edge
        << ", \"final_level\": " << e.final_level << ", \"time_at_level_s\": ["
        << json_number(e.time_at_level_s[0]) << ", "
        << json_number(e.time_at_level_s[1]) << ", "
        << json_number(e.time_at_level_s[2]) << ", "
        << json_number(e.time_at_level_s[3]) << "], \"transitions\": [";
    for (std::size_t j = 0; j < e.transitions.size(); ++j) {
      const DegradeTransitionEntry& t = e.transitions[j];
      out << (j == 0 ? "" : ", ") << "{\"t_s\": " << json_number(t.t_s)
          << ", \"from\": " << t.from << ", \"to\": " << t.to << "}";
    }
    out << "]}";
  }
  if (!d.edges.empty()) out << "\n" << ind;
  out << "],\n";
  out << ind << "\"windows_truncated\": " << d.windows_truncated << ",\n";
  out << ind << "\"window_estimates\": [";
  for (std::size_t i = 0; i < d.windows.size(); ++i) {
    const WindowEstimate& w = d.windows[i];
    out << (i == 0 ? "" : ",") << "\n" << ind << "  {\"edge\": " << w.edge
        << ", \"t_s\": " << json_number(w.t_s) << ", \"level\": " << w.level
        << ", \"rows_window\": " << w.rows_window
        << ", \"rows_used\": " << w.rows_used
        << ", \"estimate\": " << json_number(w.estimate)
        << ", \"half_width\": " << json_number(w.half_width)
        << ", \"exact\": " << json_number(w.exact)
        << ", \"covered\": " << (w.covered ? "true" : "false") << "}";
  }
  if (!d.windows.empty()) out << "\n" << ind;
  out << "]\n";
}

}  // namespace

std::string ota_to_json(const OtaSummary& ota) {
  std::ostringstream out;
  write_ota(out, ota, "  ");
  out << "}\n";
  return out.str();
}

std::string degradation_to_json(const DegradationLedger& degradation) {
  std::ostringstream out;
  write_degradation(out, degradation, "  ");
  out << "}\n";
  return out.str();
}

std::size_t FleetReport::rows_accounted() const noexcept {
  return rows_delivered + rows_lost + rows_skipped + rows_stranded +
         faults.rows_corrupt_rejected + faults.rows_buffer_evicted +
         faults.rows_lost_to_crash + faults.rows_retained +
         degradation.rows_sampled_out;
}

std::map<std::string, StageTotals> FleetReport::stage_totals() const {
  std::map<std::string, StageTotals> totals;
  for (const pipeline::StageReport& r : stage_reports) {
    StageTotals& t = totals[r.stage_name];
    if (t.runs == 0) {
      t.player = r.player;
      t.tier = r.tier;
    }
    ++t.runs;
    t.rows_in += r.rows_in;
    t.rows_out += r.rows_out;
    t.cost += r.cost;
  }
  return totals;
}

std::string FleetReport::to_json() const {
  using obs::json_escape;
  using obs::json_number;
  std::ostringstream out;
  out << "{\n";
  out << "  \"devices\": " << devices << ",\n";
  out << "  \"edges\": " << edges << ",\n";
  out << "  \"duration_s\": " << json_number(duration_s) << ",\n";
  out << "  \"events\": " << events << ",\n";
  out << "  \"rows\": {\"generated\": " << rows_generated
      << ", \"delivered\": " << rows_delivered << ", \"lost\": " << rows_lost
      << ", \"skipped\": " << rows_skipped << ", \"stranded\": " << rows_stranded
      << "},\n";
  out << "  \"messages\": {\"sent\": " << messages_sent
      << ", \"dropped\": " << messages_dropped
      << ", \"duplicates_discarded\": " << duplicates_discarded << "},\n";

  out << "  \"faults\": {\"rows_corrupt_rejected\": " << faults.rows_corrupt_rejected
      << ", \"rows_buffer_evicted\": " << faults.rows_buffer_evicted
      << ", \"rows_lost_to_crash\": " << faults.rows_lost_to_crash
      << ", \"rows_retained\": " << faults.rows_retained
      << ", \"rows_recovered\": " << faults.rows_recovered
      << ", \"edge_crashes\": " << faults.edge_crashes
      << ", \"core_crashes\": " << faults.core_crashes
      << ", \"partitions\": " << faults.partitions
      << ", \"loss_bursts\": " << faults.loss_bursts
      << ", \"corruption_storms\": " << faults.corruption_storms;
  // Load storms joined the chaos harness after the legacy goldens froze:
  // render the counter only when one actually fired.
  if (faults.load_storms > 0) {
    out << ", \"load_storms\": " << faults.load_storms;
  }
  out << ", \"checkpoints_written\": " << faults.checkpoints_written
      << ", \"checkpoints_restored\": " << faults.checkpoints_restored
      << ", \"stale_model_devices\": " << faults.stale_model_devices
      << ", \"rows_accounted\": " << rows_accounted()
      << ", \"conserved\": " << (rows_conserved() ? "true" : "false")
      << ", \"flight_dumps_truncated\": " << faults.flight_dumps_truncated
      << ", \"flight_dumps\": [";
  for (std::size_t i = 0; i < faults.flight_dumps.size(); ++i) {
    const FlightDump& fd = faults.flight_dumps[i];
    out << (i == 0 ? "" : ",") << "\n    {\"entity\": \"" << json_escape(fd.entity)
        << "\", \"trigger\": \"" << json_escape(fd.trigger)
        << "\", \"t_s\": " << json_number(fd.t_s) << ", \"events\": [";
    for (std::size_t j = 0; j < fd.events.size(); ++j) {
      out << (j == 0 ? "" : ", ") << "\"" << json_escape(fd.events[j]) << "\"";
    }
    out << "]}";
  }
  out << "]";
  // Backpressure gauges ride with the degradation contract; legacy runs
  // keep the historical faults object byte-for-byte.
  if (degradation.enabled && !faults.edge_gauges.empty()) {
    out << ", \"edge_gauges\": [";
    for (std::size_t i = 0; i < faults.edge_gauges.size(); ++i) {
      const BackpressureGauge& g = faults.edge_gauges[i];
      out << (i == 0 ? "" : ",") << "\n    {\"edge\": " << g.edge
          << ", \"uplink_in_flight_highwater\": " << g.uplink_in_flight_highwater
          << ", \"device_in_flight_highwater\": " << g.device_in_flight_highwater
          << ", \"uplink_dead_letters\": " << g.uplink_dead_letters
          << ", \"device_dead_letters\": " << g.device_dead_letters
          << ", \"sf_rows_highwater\": " << g.sf_rows_highwater << "}";
    }
    out << "]";
  }
  out << "},\n";

  out << "  \"channels\": {\"sends\": " << channels.sends
      << ", \"delivered\": " << channels.delivered
      << ", \"acks\": " << channels.acks
      << ", \"timeouts\": " << channels.timeouts
      << ", \"retransmits\": " << channels.retransmits
      << ", \"backoff_waits\": " << channels.backoff_waits
      << ", \"backoff_wait_s\": " << json_number(channels.backoff_wait_s)
      << ", \"dead_letters\": " << channels.dead_letters
      << ", \"corrupt_rejected\": " << channels.corrupt_rejected << "},\n";

  out << "  \"stages\": {";
  bool first = true;
  for (const auto& [name, t] : stage_totals()) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": {"
        << "\"player\": \"" << json_escape(t.player) << "\", \"tier\": \""
        << pipeline::tier_name(t.tier) << "\", \"runs\": " << t.runs
        << ", \"rows_in\": " << t.rows_in << ", \"rows_out\": " << t.rows_out
        << ", \"cost\": " << json_number(t.cost) << "}";
    first = false;
  }
  out << "\n  },\n";

  out << "  \"links\": {";
  first = true;
  for (const LinkReport& l : links) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(l.name) << "\": {"
        << "\"messages\": " << l.stats.messages << ", \"bytes\": " << l.stats.bytes
        << ", \"drops\": " << l.stats.drops
        << ", \"corrupted\": " << l.stats.corrupted
        << ", \"duplicates\": " << l.stats.duplicates
        << ", \"retransmits\": " << l.stats.retransmits << "}";
    first = false;
  }
  out << "\n  },\n";

  out << "  \"latency\": {\"count\": " << latency.count
      << ", \"mean_s\": " << json_number(latency.mean_s)
      << ", \"p50_s\": " << json_number(latency.p50_s)
      << ", \"p95_s\": " << json_number(latency.p95_s)
      << ", \"max_s\": " << json_number(latency.max_s) << "},\n";

  out << "  \"latency_tiers\": {";
  first = true;
  for (const auto& [tier, b] : latency_tiers) {
    out << (first ? "" : ",") << "\n    \"" << json_escape(tier) << "\": {"
        << "\"count\": " << b.summary.count
        << ", \"mean_s\": " << json_number(b.summary.mean_s)
        << ", \"p50_s\": " << json_number(b.summary.p50_s)
        << ", \"p95_s\": " << json_number(b.summary.p95_s)
        << ", \"max_s\": " << json_number(b.summary.max_s) << ", \"buckets\": [";
    for (std::size_t i = 0; i < b.counts.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"le\": ";
      if (i < b.bounds_s.size()) {
        out << json_number(b.bounds_s[i]);
      } else {
        out << "\"+inf\"";
      }
      out << ", \"count\": " << b.counts[i] << "}";
    }
    out << "]}";
    first = false;
  }
  out << "\n  },\n";
  out << "  \"accuracy\": " << json_number(accuracy) << ",\n";
  out << "  \"train_rows\": " << train_rows << ",\n";
  out << "  \"test_rows\": " << test_rows;
  // Telemetry and deploy blocks render only when their subsystem ran, so
  // legacy report JSON stays byte-identical.
  if (telemetry.enabled) {
    out << ",\n  \"telemetry\": {\n";
    out << "    \"enabled\": true,\n";
    out << "    \"schema\": {\"id\": " << telemetry.schema_id
        << ", \"fields\": " << telemetry.schema_fields
        << ", \"negotiations\": " << telemetry.schema_negotiations
        << ", \"bytes\": " << telemetry.schema_bytes << "},\n";
    out << "    \"frames\": {\"sent\": " << telemetry.frames_sent
        << ", \"delivered\": " << telemetry.frames_delivered
        << ", \"rejected\": " << telemetry.frames_rejected
        << ", \"retransmitted\": " << telemetry.frames_retransmitted << "},\n";
    out << "    \"rows\": {\"encoded\": " << telemetry.rows_encoded
        << ", \"decoded\": " << telemetry.rows_decoded << "},\n";
    out << "    \"bytes\": {\"encoded\": " << telemetry.encoded_wire_bytes
        << ", \"legacy_counterfactual\": " << telemetry.legacy_wire_bytes
        << ", \"per_row\": " << json_number(telemetry.bytes_per_row())
        << ", \"legacy_per_row\": "
        << json_number(telemetry.legacy_bytes_per_row()) << "},\n";
    out << "    \"device_log\": {\"frames_evicted\": "
        << telemetry.log_frames_evicted
        << ", \"rows_evicted\": " << telemetry.log_rows_evicted
        << ", \"highwater_bytes\": " << telemetry.log_highwater_bytes << "},\n";
    out << "    \"decode_identity_ok\": "
        << (telemetry.decode_identity_ok ? "true" : "false") << "\n";
    out << "  }";
  }
  // An OTA-only run still renders the deploy block (its ledger lives
  // there); legacy runs without either remain byte-identical.
  if (deploy.enabled || deploy.ota.enabled) {
    out << ",\n  \"deploy\": {\n";
    out << "    \"model\": \"" << json_escape(deploy.model) << "\",\n";
    out << "    \"precision\": \"" << json_escape(deploy.precision) << "\",\n";
    out << "    \"artifact_bytes\": {\"float32\": " << deploy.artifact_bytes_float32
        << ", \"deployed\": " << deploy.artifact_bytes_deployed << "},\n";
    out << "    \"devices\": {\"deployed\": " << deploy.devices_deployed
        << ", \"stale\": " << deploy.devices_stale
        << ", \"missed\": " << deploy.devices_missed << "},\n";
    out << "    \"rows_scored\": " << deploy.rows_scored << ",\n";
    out << "    \"rows_scored_stale\": " << deploy.rows_scored_stale << ",\n";
    out << "    \"predictions\": {\"delivered\": " << deploy.predictions_delivered
        << ", \"correct\": " << deploy.predictions_correct << "},\n";
    out << "    \"bytes\": {\"downlink\": " << deploy.downlink_bytes
        << ", \"uplink_predictions\": " << deploy.uplink_prediction_bytes
        << ", \"uplink_raw_counterfactual\": " << deploy.uplink_raw_bytes << "},\n";
    out << "    \"holdout_accuracy\": {\"float32\": "
        << json_number(deploy.holdout_accuracy_float)
        << ", \"deployed\": " << json_number(deploy.holdout_accuracy_deployed)
        << "},\n";
    out << "    \"device_accuracy\": " << json_number(deploy.device_accuracy) << ",\n";
    out << "    \"cost_per_row\": {\"multiply_adds\": " << deploy.cost_multiply_adds
        << ", \"comparisons\": " << deploy.cost_comparisons
        << ", \"table_lookups\": " << deploy.cost_table_lookups << "}";
    if (deploy.ota.enabled) {
      out << ",\n    \"ota\": ";
      write_ota(out, deploy.ota, "      ");
      out << "    }\n";
    } else {
      out << "\n";
    }
    out << "  }";
  }
  if (degradation.enabled) {
    out << ",\n  \"degradation\": ";
    write_degradation(out, degradation, "    ");
    out << "  }";
  }
  out << "\n}\n";
  return out.str();
}

}  // namespace iotml::sim
