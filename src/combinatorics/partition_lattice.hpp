#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "combinatorics/partition.hpp"

namespace iotml::comb {

/// Materialized partition lattice Pi_n with its Hasse diagram (Fig. 2 of the
/// paper is PartitionLattice(4)). Intended for small n (n <= 10); the search
/// strategies in src/core never materialize the lattice, they walk it.
class PartitionLattice {
 public:
  explicit PartitionLattice(std::size_t n);

  std::size_t ground_size() const noexcept { return n_; }
  std::size_t size() const noexcept { return elements_.size(); }

  /// Lattice rank = n - 1.
  std::size_t rank() const noexcept { return n_ - 1; }

  const std::vector<SetPartition>& elements() const noexcept { return elements_; }
  const SetPartition& element(std::size_t id) const { return elements_[id]; }

  /// Id of a partition (throws InvalidArgument if not from this ground set).
  std::size_t id_of(const SetPartition& p) const;

  /// Ids of partitions at the given rank (level of the Hasse diagram);
  /// level r has Stirling2(n, n - r) elements.
  const std::vector<std::size_t>& level(std::size_t rank) const;

  /// Upward covers in the Hasse diagram (ids of coarser partitions obtained
  /// by merging two blocks).
  const std::vector<std::size_t>& covers_above(std::size_t id) const;

  /// Downward covers (ids of finer partitions obtained by splitting a block
  /// in two).
  const std::vector<std::size_t>& covers_below(std::size_t id) const;

  /// Total number of covering pairs (edges of the Hasse diagram).
  std::size_t edge_count() const noexcept { return edges_; }

 private:
  std::size_t n_;
  std::vector<SetPartition> elements_;
  // det-sanctioned: partition -> id lookup only, never iterated; enumeration walks elements_
  std::unordered_map<SetPartition, std::size_t, SetPartitionHash> index_;
  std::vector<std::vector<std::size_t>> levels_;
  std::vector<std::vector<std::size_t>> up_;
  std::vector<std::vector<std::size_t>> down_;
  std::size_t edges_ = 0;
};

}  // namespace iotml::comb
