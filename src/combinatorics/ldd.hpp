#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "combinatorics/boolean_lattice.hpp"
#include "combinatorics/partition.hpp"

namespace iotml::comb {

/// The Loeb-Damiani-D'Antona encoding c(S) of a subset S of {1..n} as a
/// weight vector over n+1 slots [11].
///
/// Start with c = (1, 1, ..., 1) (n+1 ones). For each element k of S in
/// ascending order, merge the weight of slot k into slot k+1:
/// c[k+1] += c[k]; c[k] = 0. For n = 3 this reproduces the paper's Table I
/// column c(S): c(∅)=1111, c({1})=0211, c({2,3})=1003, ...
std::vector<unsigned> ldd_encoding(Subset s, unsigned n);

/// The partition *type* associated with S: the composition of n+1 obtained
/// by reading c(S) right-to-left and dropping zeros (Table I's arrow column:
/// 0031 -> 13, 1003 -> 31, 1021 -> 121, ...).
///
/// A partition of {1..n+1} "has type" a composition (t_1,...,t_m) when its
/// blocks, ordered by minimum element, have sizes t_1, ..., t_m. The map
/// S -> type(S) is a bijection between B_n and the compositions of n+1, so
/// the type classes partition Pi_{n+1}.
std::vector<std::size_t> ldd_type(Subset s, unsigned n);

/// Render a c(S) vector or a composition as a digit string ("1021", "121").
/// Multi-digit entries are separated by '.' (only needed for n+1 > 9).
std::string digits_to_string(const std::vector<unsigned>& digits);
std::string digits_to_string(const std::vector<std::size_t>& digits);

/// One row of a chain group: a subset S on a B_n chain together with its
/// encoding, its type, and every partition of Pi_{n+1} with that type.
struct LddRow {
  Subset set = 0;
  std::vector<unsigned> encoding;
  std::vector<std::size_t> type;
  std::vector<SetPartition> partitions;
};

/// All rows arising from one symmetric chain of B_n (the paper's Table I has
/// one group per chain C1, C2, C3).
struct LddChainGroup {
  std::vector<LddRow> rows;  ///< ascending along the B_n chain (coarsening)
};

/// A saturated chain of partitions in Pi_{n+1} assembled from consecutive
/// rows of one group.
struct PartitionChain {
  std::vector<SetPartition> partitions;  ///< finest first

  std::size_t length() const noexcept { return partitions.size(); }
  /// Symmetric about the middle rank of Pi_{n+1} (whose rank is n):
  /// rank(first) + rank(last) == n.
  bool is_symmetric(unsigned lattice_rank) const;
};

/// The Loeb-Damiani-D'Antona decomposition of Pi_{n+1} driven by the de
/// Bruijn decomposition of B_n [11], [12].
///
/// Construction: take the symmetric chain decomposition of B_n; each chain
/// yields a group of rows (one per subset) whose type classes tile
/// Pi_{n+1} exactly. Within each group, partitions at consecutive rows are
/// matched along covering relations (maximum bipartite matching with
/// priority to chains that started at lower rank), producing a collection of
/// disjoint saturated chains. LDD prove a maximal collection of *symmetric*
/// chains exists containing every partition of rank <= floor((n-1)/2); the
/// matching here realizes that collection and reports coverage statistics.
class LddDecomposition {
 public:
  /// Decompose Pi_{n+1} from the chain decomposition of B_n. Practical for
  /// n <= 9 (|Pi_10| = 115975).
  explicit LddDecomposition(unsigned n);

  unsigned n() const noexcept { return n_; }

  /// Rank of the lattice Pi_{n+1} (= n).
  unsigned lattice_rank() const noexcept { return n_; }

  const std::vector<LddChainGroup>& groups() const noexcept { return groups_; }
  const std::vector<PartitionChain>& partition_chains() const noexcept { return chains_; }

  /// Total partitions across all groups (equals Bell(n+1): the type classes
  /// tile the lattice).
  std::size_t covered_partitions() const noexcept { return covered_; }

  /// Number of chains that are symmetric.
  std::size_t symmetric_chain_count() const;

  /// True iff every partition of rank <= max_rank lies on a symmetric chain
  /// (the LDD guarantee holds for max_rank = floor((n-1)/2)).
  bool symmetric_below_rank(unsigned max_rank) const;

 private:
  unsigned n_;
  std::vector<LddChainGroup> groups_;
  std::vector<PartitionChain> chains_;
  std::size_t covered_ = 0;

  void build_chains_for_group(const LddChainGroup& group);
};

}  // namespace iotml::comb
