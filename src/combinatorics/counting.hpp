#pragma once

#include <cstdint>
#include <vector>

namespace iotml::comb {

/// Stirling number of the second kind S(n, k): partitions of an n-set into
/// exactly k blocks. Exact in uint64 for n <= 25 (S(25,12) < 2^63); throws
/// InvalidArgument beyond that.
std::uint64_t stirling2(unsigned n, unsigned k);

/// Bell number B(n) = sum_k S(n, k): total partitions of an n-set. Exact in
/// uint64 for n <= 25.
std::uint64_t bell_number(unsigned n);

/// Binomial coefficient C(n, k); exact in uint64 for the ranges used here.
std::uint64_t binomial(unsigned n, unsigned k);

/// Row n of the Stirling-2 triangle: {S(n,0), ..., S(n,n)}.
std::vector<std::uint64_t> stirling2_row(unsigned n);

/// Size of the "lower cone" explored by the paper's search (§III): partitions
/// of an n-set that keep a distinguished block K intact and refine the rest,
/// i.e. Bell(m) where m = |S - K|.
std::uint64_t lattice_cone_size(unsigned m);

}  // namespace iotml::comb
