#include "combinatorics/ldd.hpp"

#include <algorithm>
#include <numeric>
#include <unordered_set>

#include "util/error.hpp"

namespace iotml::comb {

std::vector<unsigned> ldd_encoding(Subset s, unsigned n) {
  IOTML_CHECK(n >= 1 && n <= 30, "ldd_encoding: n out of range");
  IOTML_CHECK(s < (Subset{1} << n), "ldd_encoding: subset out of range");
  // Slots 1..n+1 stored at indices 0..n.
  std::vector<unsigned> c(n + 1, 1);
  for (unsigned k = 1; k <= n; ++k) {
    if ((s >> (k - 1)) & 1u) {
      c[k] += c[k - 1];
      c[k - 1] = 0;
    }
  }
  return c;
}

std::vector<std::size_t> ldd_type(Subset s, unsigned n) {
  const std::vector<unsigned> c = ldd_encoding(s, n);
  std::vector<std::size_t> type;
  for (auto it = c.rbegin(); it != c.rend(); ++it) {
    if (*it != 0) type.push_back(*it);
  }
  return type;
}

namespace {

template <typename T>
std::string digits_impl(const std::vector<T>& digits) {
  bool wide = false;
  for (T d : digits) {
    if (d > 9) wide = true;
  }
  std::string out;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (wide && i > 0) out += '.';
    out += std::to_string(digits[i]);
  }
  return out;
}

}  // namespace

std::string digits_to_string(const std::vector<unsigned>& digits) {
  return digits_impl(digits);
}

std::string digits_to_string(const std::vector<std::size_t>& digits) {
  return digits_impl(digits);
}

bool PartitionChain::is_symmetric(unsigned lattice_rank) const {
  if (partitions.empty()) return false;
  return partitions.front().rank() + partitions.back().rank() == lattice_rank;
}

LddDecomposition::LddDecomposition(unsigned n) : n_(n) {
  IOTML_CHECK(n >= 1 && n <= 9, "LddDecomposition: n must be in [1, 9]");
  const BooleanChainDecomposition boolean(n);

  // Each B_n chain becomes one group of rows; the type classes of all rows
  // tile Pi_{n+1} (S -> type(S) is a bijection onto compositions of n+1).
  for (const BooleanChain& bchain : boolean.chains()) {
    LddChainGroup group;
    group.rows.reserve(bchain.sets.size());
    for (Subset s : bchain.sets) {
      LddRow row;
      row.set = s;
      row.encoding = ldd_encoding(s, n);
      row.type = ldd_type(s, n);
      row.partitions = partitions_of_type(row.type);
      covered_ += row.partitions.size();
      group.rows.push_back(std::move(row));
    }
    groups_.push_back(std::move(group));
  }

  for (const LddChainGroup& group : groups_) build_chains_for_group(group);
}

namespace {

/// Kuhn augmenting-path bipartite matching. Left vertices are processed in
/// the given priority order; because matchable left-vertex sets form a
/// transversal matroid, this greedy order yields a maximum matching that
/// prefers saturating high-priority vertices.
class BipartiteMatcher {
 public:
  BipartiteMatcher(std::size_t left, std::size_t right)
      : adj_(left), match_right_(right, SIZE_MAX), match_left_(left, SIZE_MAX) {}

  void add_edge(std::size_t l, std::size_t r) { adj_[l].push_back(r); }

  void run(const std::vector<std::size_t>& left_priority_order) {
    for (std::size_t l : left_priority_order) {
      std::vector<bool> visited(match_right_.size(), false);
      try_augment(l, visited);
    }
  }

  std::size_t match_of_left(std::size_t l) const { return match_left_[l]; }

 private:
  bool try_augment(std::size_t l, std::vector<bool>& visited) {
    for (std::size_t r : adj_[l]) {
      if (visited[r]) continue;
      visited[r] = true;
      if (match_right_[r] == SIZE_MAX || try_augment(match_right_[r], visited)) {
        match_right_[r] = l;
        match_left_[l] = r;
        return true;
      }
    }
    return false;
  }

  std::vector<std::vector<std::size_t>> adj_;
  std::vector<std::size_t> match_right_;
  std::vector<std::size_t> match_left_;
};

}  // namespace

void LddDecomposition::build_chains_for_group(const LddChainGroup& group) {
  if (group.rows.empty()) return;

  // chain_id[r][i]: index into `building` of the chain currently ending at
  // partition i of row r.
  std::vector<PartitionChain> building;
  std::vector<std::size_t> current_chain;  // for the active row
  current_chain.reserve(group.rows.front().partitions.size());
  for (const SetPartition& p : group.rows.front().partitions) {
    building.push_back(PartitionChain{{p}});
    current_chain.push_back(building.size() - 1);
  }

  for (std::size_t r = 0; r + 1 < group.rows.size(); ++r) {
    const auto& lower = group.rows[r].partitions;
    const auto& upper = group.rows[r + 1].partitions;
    const std::size_t lower_rank = lower.front().rank();

    // A symmetric chain starting at rank s must end exactly at rank n - s
    // (the lattice rank of Pi_{n+1} is n). Chains that reached their
    // symmetric target are retired here rather than extended greedily —
    // letting them run on would consume partitions that chains started at
    // higher rank need, breaking the LDD coverage guarantee.
    auto target_of = [&](std::size_t chain_id) {
      return static_cast<std::size_t>(n_) - building[chain_id].partitions.front().rank();
    };

    BipartiteMatcher matcher(lower.size(), upper.size());
    for (std::size_t i = 0; i < lower.size(); ++i) {
      if (target_of(current_chain[i]) <= lower_rank) continue;  // retired
      for (std::size_t j = 0; j < upper.size(); ++j) {
        if (lower[i].covered_by(upper[j])) matcher.add_edge(i, j);
      }
    }
    // Priority: extend chains whose start rank is lowest first, so the long
    // (symmetric) chains keep growing; ties by index for determinism.
    std::vector<std::size_t> order(lower.size());
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const std::size_t ra = building[current_chain[a]].partitions.front().rank();
      const std::size_t rb = building[current_chain[b]].partitions.front().rank();
      if (ra != rb) return ra < rb;
      return a < b;
    });
    matcher.run(order);

    std::vector<std::size_t> next_chain(upper.size(), SIZE_MAX);
    for (std::size_t i = 0; i < lower.size(); ++i) {
      const std::size_t j = matcher.match_of_left(i);
      if (j != SIZE_MAX) {
        building[current_chain[i]].partitions.push_back(upper[j]);
        next_chain[j] = current_chain[i];
      }
      // Unmatched lower partitions terminate their chain (already stored).
    }
    for (std::size_t j = 0; j < upper.size(); ++j) {
      if (next_chain[j] == SIZE_MAX) {
        building.push_back(PartitionChain{{upper[j]}});
        next_chain[j] = building.size() - 1;
      }
    }
    current_chain = std::move(next_chain);
  }

  for (PartitionChain& chain : building) chains_.push_back(std::move(chain));
}

std::size_t LddDecomposition::symmetric_chain_count() const {
  std::size_t count = 0;
  for (const PartitionChain& c : chains_) {
    if (c.is_symmetric(lattice_rank())) ++count;
  }
  return count;
}

bool LddDecomposition::symmetric_below_rank(unsigned max_rank) const {
  // det-sanctioned: membership probe only; every loop below walks chains_, not this set
  std::unordered_set<SetPartition, SetPartitionHash> on_symmetric;
  for (const PartitionChain& c : chains_) {
    if (!c.is_symmetric(lattice_rank())) continue;
    for (const SetPartition& p : c.partitions) on_symmetric.insert(p);
  }
  for (const PartitionChain& c : chains_) {
    for (const SetPartition& p : c.partitions) {
      if (p.rank() <= max_rank && !on_symmetric.contains(p)) return false;
    }
  }
  return true;
}

}  // namespace iotml::comb
