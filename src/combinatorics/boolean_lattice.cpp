#include "combinatorics/boolean_lattice.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace iotml::comb {

std::string subset_to_string(Subset s, unsigned n) {
  std::string out = "{";
  bool first = true;
  for (unsigned e = 1; e <= n; ++e) {
    if (s & (Subset{1} << (e - 1))) {
      if (!first) out += ',';
      out += std::to_string(e);
      first = false;
    }
  }
  out += '}';
  return out;
}

std::vector<unsigned> subset_elements(Subset s, unsigned n) {
  std::vector<unsigned> out;
  for (unsigned e = 1; e <= n; ++e) {
    if (s & (Subset{1} << (e - 1))) out.push_back(e);
  }
  return out;
}

BooleanChain BooleanChainDecomposition::chain_through(Subset s, unsigned n) {
  IOTML_CHECK(n >= 1 && n <= 24, "chain_through: n must be in [1, 24]");
  // Bracket matching: position i in {1..n}; membership = ')' and absence =
  // '('. Scan left to right with a stack of open positions; a ')' matches the
  // most recent unmatched '('.
  std::vector<bool> matched(n + 1, false);
  std::vector<unsigned> open_stack;
  for (unsigned i = 1; i <= n; ++i) {
    const bool in_set = (s >> (i - 1)) & 1u;
    if (!in_set) {
      open_stack.push_back(i);
    } else if (!open_stack.empty()) {
      matched[open_stack.back()] = true;
      matched[i] = true;
      open_stack.pop_back();
    }
  }

  // Unmatched positions, ascending. Unmatched members all precede unmatched
  // non-members (standard bracket-matching fact); the chain assigns the
  // unmatched positions the patterns 1^j 0^(u-j).
  std::vector<unsigned> unmatched;
  for (unsigned i = 1; i <= n; ++i) {
    if (!matched[i]) unmatched.push_back(i);
  }

  Subset frozen = 0;
  for (unsigned i = 1; i <= n; ++i) {
    if (matched[i] && ((s >> (i - 1)) & 1u)) frozen |= Subset{1} << (i - 1);
  }

  BooleanChain chain;
  chain.sets.reserve(unmatched.size() + 1);
  for (std::size_t j = 0; j <= unmatched.size(); ++j) {
    Subset member = frozen;
    for (std::size_t t = 0; t < j; ++t) {
      member |= Subset{1} << (unmatched[t] - 1);
    }
    chain.sets.push_back(member);
  }
  return chain;
}

BooleanChainDecomposition::BooleanChainDecomposition(unsigned n) : n_(n) {
  IOTML_CHECK(n >= 1 && n <= 24, "BooleanChainDecomposition: n must be in [1, 24]");
  const std::size_t universe = std::size_t{1} << n;
  chain_index_.assign(universe, SIZE_MAX);

  std::vector<BooleanChain> found;
  for (Subset s = 0; s < universe; ++s) {
    if (chain_index_[s] != SIZE_MAX) continue;
    BooleanChain chain = chain_through(s, n);
    const std::size_t idx = found.size();
    for (Subset member : chain.sets) {
      IOTML_CHECK(chain_index_[member] == SIZE_MAX || chain_index_[member] == idx,
                  "BooleanChainDecomposition: chains are not disjoint");
      chain_index_[member] = idx;
    }
    found.push_back(std::move(chain));
  }

  // Order: longest chain first (the one through the empty set), then by the
  // smallest mask of the chain's minimal element. For n=3 this yields the
  // paper's C1 = (∅,{1},{1,2},{1,2,3}), C2 = ({2},{2,3}), C3 = ({3},{1,3}).
  std::vector<std::size_t> order(found.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (found[a].sets.size() != found[b].sets.size()) {
      return found[a].sets.size() > found[b].sets.size();
    }
    return found[a].sets.front() < found[b].sets.front();
  });

  chains_.reserve(found.size());
  std::vector<std::size_t> new_index(found.size());
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    new_index[order[rank]] = rank;
    chains_.push_back(std::move(found[order[rank]]));
  }
  for (std::size_t s = 0; s < universe; ++s) {
    chain_index_[s] = new_index[chain_index_[s]];
  }
}

std::size_t BooleanChainDecomposition::chain_of(Subset s) const {
  IOTML_CHECK(s < (Subset{1} << n_), "chain_of: subset out of range");
  return chain_index_[s];
}

}  // namespace iotml::comb
