#include "combinatorics/partition_lattice.hpp"

#include "util/error.hpp"

namespace iotml::comb {

PartitionLattice::PartitionLattice(std::size_t n) : n_(n) {
  IOTML_CHECK(n >= 1 && n <= 10, "PartitionLattice: n must be in [1, 10]");
  elements_ = all_partitions(n);
  index_.reserve(elements_.size());
  for (std::size_t id = 0; id < elements_.size(); ++id) {
    index_.emplace(elements_[id], id);
  }

  levels_.assign(n, {});
  for (std::size_t id = 0; id < elements_.size(); ++id) {
    levels_[elements_[id].rank()].push_back(id);
  }

  up_.assign(elements_.size(), {});
  down_.assign(elements_.size(), {});
  for (std::size_t id = 0; id < elements_.size(); ++id) {
    for (const SetPartition& coarser : elements_[id].upward_covers()) {
      const std::size_t cid = index_.at(coarser);
      up_[id].push_back(cid);
      down_[cid].push_back(id);
      ++edges_;
    }
  }
}

std::size_t PartitionLattice::id_of(const SetPartition& p) const {
  auto it = index_.find(p);
  IOTML_CHECK(it != index_.end(), "PartitionLattice::id_of: partition not in lattice");
  return it->second;
}

const std::vector<std::size_t>& PartitionLattice::level(std::size_t rank) const {
  IOTML_CHECK(rank < levels_.size(), "PartitionLattice::level: rank out of range");
  return levels_[rank];
}

const std::vector<std::size_t>& PartitionLattice::covers_above(std::size_t id) const {
  IOTML_CHECK(id < up_.size(), "PartitionLattice::covers_above: id out of range");
  return up_[id];
}

const std::vector<std::size_t>& PartitionLattice::covers_below(std::size_t id) const {
  IOTML_CHECK(id < down_.size(), "PartitionLattice::covers_below: id out of range");
  return down_[id];
}

}  // namespace iotml::comb
