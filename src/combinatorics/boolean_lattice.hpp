#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iotml::comb {

/// A subset of {1, ..., n} stored as a bitmask (bit i-1 <=> element i).
/// One-based elements match the paper's Table I notation.
using Subset = std::uint32_t;

/// Pretty-print a subset of {1..n} as "{1,3}" ("{}" for the empty set).
std::string subset_to_string(Subset s, unsigned n);

/// Elements (1-based) of a subset, ascending.
std::vector<unsigned> subset_elements(Subset s, unsigned n);

/// A saturated chain in the Boolean lattice B_n: subsets ordered by
/// single-element insertions, sets.front() ⊂ ... ⊂ sets.back().
struct BooleanChain {
  std::vector<Subset> sets;

  std::size_t length() const noexcept { return sets.size(); }
};

/// Symmetric chain decomposition of B_n by the bracket-matching rule
/// (Greene-Kleitman), which reproduces the decomposition of de Bruijn, van
/// Ebbenhorst Tengbergen and Kruyswijk used by the paper [12].
///
/// For a subset S of {1..n}, read positions 1..n left to right, treating
/// membership as a closing bracket and absence as an opening bracket, and
/// match brackets. The matched positions are frozen; the chain through S is
/// obtained by setting the unmatched positions to 1^j 0^(u-j) for
/// j = 0..u. Each chain is saturated and symmetric about rank n/2, and the
/// chains partition B_n into C(n, floor(n/2)) chains.
class BooleanChainDecomposition {
 public:
  explicit BooleanChainDecomposition(unsigned n);

  unsigned n() const noexcept { return n_; }

  /// All chains, ordered with longest first then by minimal element, so that
  /// for n = 3 the chains appear exactly as the paper's C1, C2, C3.
  const std::vector<BooleanChain>& chains() const noexcept { return chains_; }

  /// Index of the chain containing subset s.
  std::size_t chain_of(Subset s) const;

  /// The canonical chain through s, computed directly from the bracket
  /// matching (no table lookup).
  static BooleanChain chain_through(Subset s, unsigned n);

 private:
  unsigned n_;
  std::vector<BooleanChain> chains_;
  std::vector<std::size_t> chain_index_;  // by subset mask
};

}  // namespace iotml::comb
