#include "combinatorics/counting.hpp"

#include "util/error.hpp"

namespace iotml::comb {

namespace {
constexpr unsigned kMaxExactN = 25;
}

std::uint64_t stirling2(unsigned n, unsigned k) {
  IOTML_CHECK(n <= kMaxExactN, "stirling2: n too large for exact uint64");
  if (k > n) return 0;
  if (n == 0) return k == 0 ? 1 : 0;
  if (k == 0) return 0;
  // Triangle recurrence S(n,k) = k*S(n-1,k) + S(n-1,k-1).
  std::vector<std::uint64_t> row(n + 1, 0);
  row[0] = 1;  // S(0,0)
  for (unsigned i = 1; i <= n; ++i) {
    for (unsigned j = i; j >= 1; --j) {
      row[j] = (j < i ? j * row[j] : 0) + row[j - 1];
    }
    row[0] = 0;
  }
  return row[k];
}

std::vector<std::uint64_t> stirling2_row(unsigned n) {
  IOTML_CHECK(n <= kMaxExactN, "stirling2_row: n too large for exact uint64");
  std::vector<std::uint64_t> row(n + 1, 0);
  row[0] = 1;
  for (unsigned i = 1; i <= n; ++i) {
    for (unsigned j = i; j >= 1; --j) {
      row[j] = (j < i ? j * row[j] : 0) + row[j - 1];
    }
    row[0] = 0;
  }
  return row;
}

std::uint64_t bell_number(unsigned n) {
  IOTML_CHECK(n <= kMaxExactN, "bell_number: n too large for exact uint64");
  // Bell triangle.
  std::vector<std::uint64_t> prev{1};
  if (n == 0) return 1;
  for (unsigned i = 1; i <= n; ++i) {
    std::vector<std::uint64_t> cur(i + 1);
    cur[0] = prev.back();
    for (unsigned j = 1; j <= i; ++j) cur[j] = cur[j - 1] + prev[j - 1];
    prev = std::move(cur);
  }
  return prev[0];
}

std::uint64_t binomial(unsigned n, unsigned k) {
  if (k > n) return 0;
  if (k > n - k) k = n - k;
  std::uint64_t result = 1;
  for (unsigned i = 1; i <= k; ++i) {
    // Multiply-then-divide stays exact because result is always an integer
    // binomial prefix; guard against overflow for the supported range.
    IOTML_CHECK(result <= UINT64_MAX / (n - k + i), "binomial: overflow");
    result = result * (n - k + i) / i;
  }
  return result;
}

std::uint64_t lattice_cone_size(unsigned m) { return bell_number(m); }

}  // namespace iotml::comb
