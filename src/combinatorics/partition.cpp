#include "combinatorics/partition.hpp"

#include <algorithm>
#include <map>
#include <numeric>

#include "combinatorics/counting.hpp"
#include "util/error.hpp"

namespace iotml::comb {

namespace {

/// Canonicalize an arbitrary block-label vector into a restricted growth
/// string (labels renumbered by order of first appearance).
std::vector<int> canonicalize(const std::vector<int>& assignment) {
  std::vector<int> rgs(assignment.size());
  std::map<int, int> relabel;
  int next = 0;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    auto [it, inserted] = relabel.try_emplace(assignment[i], next);
    if (inserted) ++next;
    rgs[i] = it->second;
  }
  return rgs;
}

}  // namespace

SetPartition::SetPartition(std::vector<int> rgs) : rgs_(std::move(rgs)) {
  int max_label = -1;
  for (int label : rgs_) {
    IOTML_CHECK(label >= 0 && label <= max_label + 1,
                "SetPartition: not a restricted growth string");
    max_label = std::max(max_label, label);
  }
  num_blocks_ = static_cast<std::size_t>(max_label + 1);
}

SetPartition SetPartition::discrete(std::size_t n) {
  std::vector<int> rgs(n);
  std::iota(rgs.begin(), rgs.end(), 0);
  return SetPartition(std::move(rgs));
}

SetPartition SetPartition::indiscrete(std::size_t n) {
  IOTML_CHECK(n > 0, "SetPartition::indiscrete: empty ground set");
  return SetPartition(std::vector<int>(n, 0));
}

SetPartition SetPartition::from_blocks(
    const std::vector<std::vector<std::size_t>>& blocks, std::size_t n) {
  std::vector<int> assignment(n, -1);
  for (std::size_t b = 0; b < blocks.size(); ++b) {
    IOTML_CHECK(!blocks[b].empty(), "SetPartition::from_blocks: empty block");
    for (std::size_t e : blocks[b]) {
      IOTML_CHECK(e < n, "SetPartition::from_blocks: element out of range");
      IOTML_CHECK(assignment[e] == -1, "SetPartition::from_blocks: overlapping blocks");
      assignment[e] = static_cast<int>(b);
    }
  }
  for (std::size_t e = 0; e < n; ++e) {
    IOTML_CHECK(assignment[e] != -1, "SetPartition::from_blocks: blocks do not cover set");
  }
  return SetPartition(canonicalize(assignment));
}

SetPartition SetPartition::from_assignment(const std::vector<int>& assignment) {
  IOTML_CHECK(!assignment.empty(), "SetPartition::from_assignment: empty assignment");
  return SetPartition(canonicalize(assignment));
}

int SetPartition::block_of(std::size_t i) const {
  IOTML_CHECK(i < rgs_.size(), "SetPartition::block_of: element out of range");
  return rgs_[i];
}

std::vector<std::vector<std::size_t>> SetPartition::blocks() const {
  std::vector<std::vector<std::size_t>> out(num_blocks_);
  for (std::size_t i = 0; i < rgs_.size(); ++i) {
    out[static_cast<std::size_t>(rgs_[i])].push_back(i);
  }
  return out;
}

bool SetPartition::together(std::size_t i, std::size_t j) const {
  IOTML_CHECK(i < rgs_.size() && j < rgs_.size(),
              "SetPartition::together: element out of range");
  return rgs_[i] == rgs_[j];
}

bool SetPartition::refines(const SetPartition& coarser) const {
  IOTML_CHECK(ground_size() == coarser.ground_size(),
              "SetPartition::refines: ground set mismatch");
  // this refines coarser iff rgs_ determines coarser.rgs_: elements in the
  // same block of this must be in the same block of coarser.
  std::vector<int> image(num_blocks_, -1);
  for (std::size_t i = 0; i < rgs_.size(); ++i) {
    int mine = rgs_[i];
    int theirs = coarser.rgs_[i];
    if (image[static_cast<std::size_t>(mine)] == -1) {
      image[static_cast<std::size_t>(mine)] = theirs;
    } else if (image[static_cast<std::size_t>(mine)] != theirs) {
      return false;
    }
  }
  return true;
}

SetPartition SetPartition::meet(const SetPartition& other) const {
  IOTML_CHECK(ground_size() == other.ground_size(),
              "SetPartition::meet: ground set mismatch");
  // Blocks of the meet are nonempty intersections: label each element by the
  // pair (block in this, block in other).
  std::vector<int> assignment(rgs_.size());
  const int stride = static_cast<int>(other.num_blocks_);
  for (std::size_t i = 0; i < rgs_.size(); ++i) {
    assignment[i] = rgs_[i] * stride + other.rgs_[i];
  }
  return from_assignment(assignment);
}

namespace {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }
  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

SetPartition SetPartition::join(const SetPartition& other) const {
  IOTML_CHECK(ground_size() == other.ground_size(),
              "SetPartition::join: ground set mismatch");
  const std::size_t n = rgs_.size();
  UnionFind uf(n);
  // Union consecutive elements of each block in both partitions; the
  // connected components are the join's blocks.
  std::vector<std::size_t> first_seen_this(num_blocks_, n);
  std::vector<std::size_t> first_seen_other(other.num_blocks_, n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& ft = first_seen_this[static_cast<std::size_t>(rgs_[i])];
    if (ft == n) ft = i; else uf.unite(ft, i);
    auto& fo = first_seen_other[static_cast<std::size_t>(other.rgs_[i])];
    if (fo == n) fo = i; else uf.unite(fo, i);
  }
  std::vector<int> assignment(n);
  for (std::size_t i = 0; i < n; ++i) assignment[i] = static_cast<int>(uf.find(i));
  return from_assignment(assignment);
}

bool SetPartition::covered_by(const SetPartition& coarser) const {
  if (ground_size() != coarser.ground_size()) return false;
  if (coarser.num_blocks_ + 1 != num_blocks_) return false;
  return refines(coarser);
}

SetPartition SetPartition::merge_blocks(std::size_t a, std::size_t b) const {
  IOTML_CHECK(a < num_blocks_ && b < num_blocks_ && a != b,
              "SetPartition::merge_blocks: bad block indices");
  std::vector<int> assignment = rgs_;
  for (int& label : assignment) {
    if (label == static_cast<int>(b)) label = static_cast<int>(a);
  }
  return from_assignment(assignment);
}

std::vector<SetPartition> SetPartition::upward_covers() const {
  std::vector<SetPartition> out;
  out.reserve(num_blocks_ * (num_blocks_ - 1) / 2);
  for (std::size_t a = 0; a < num_blocks_; ++a) {
    for (std::size_t b = a + 1; b < num_blocks_; ++b) {
      out.push_back(merge_blocks(a, b));
    }
  }
  return out;
}

std::vector<SetPartition> SetPartition::downward_covers() const {
  std::vector<SetPartition> out;
  const auto blks = blocks();
  for (std::size_t b = 0; b < blks.size(); ++b) {
    const auto& block = blks[b];
    if (block.size() < 2) continue;
    // Enumerate proper nonempty bipartitions of the block. Fix the first
    // element in side 0 to avoid double counting: 2^(m-1) - 1 splits.
    const std::size_t m = block.size();
    IOTML_CHECK(m <= 63, "SetPartition::downward_covers: block too large");
    const std::uint64_t limit = std::uint64_t{1} << (m - 1);
    for (std::uint64_t mask = 1; mask < limit; ++mask) {
      std::vector<int> assignment = rgs_;
      const int new_label = static_cast<int>(num_blocks_);
      for (std::size_t j = 1; j < m; ++j) {
        if (mask & (std::uint64_t{1} << (j - 1))) {
          assignment[block[j]] = new_label;
        }
      }
      out.push_back(from_assignment(assignment));
    }
  }
  return out;
}

std::vector<std::size_t> SetPartition::type() const {
  std::vector<std::size_t> sizes(num_blocks_, 0);
  for (int label : rgs_) ++sizes[static_cast<std::size_t>(label)];
  return sizes;
}

std::string SetPartition::to_string() const {
  const auto blks = blocks();
  std::string out;
  for (std::size_t b = 0; b < blks.size(); ++b) {
    if (b > 0) out += '/';
    for (std::size_t e : blks[b]) {
      if (e + 1 < 10) {
        out += static_cast<char>('1' + e);
      } else {
        if (!out.empty() && out.back() != '/') out += ',';
        out += std::to_string(e + 1);
      }
    }
  }
  return out;
}

std::size_t SetPartitionHash::operator()(const SetPartition& p) const noexcept {
  // FNV-1a over the RGS labels.
  std::size_t h = 1469598103934665603ull;
  for (int label : p.rgs_) {
    h ^= static_cast<std::size_t>(label) + 0x9e3779b97f4a7c15ull;
    h *= 1099511628211ull;
  }
  return h;
}

// ---- Enumeration -----------------------------------------------------------

PartitionEnumerator::PartitionEnumerator(std::size_t n) : n_(n) {
  IOTML_CHECK(n > 0, "PartitionEnumerator: empty ground set");
  reset();
}

void PartitionEnumerator::reset() {
  rgs_.assign(n_, 0);
  max_prefix_.assign(n_, 0);
  has_next_ = true;
}

SetPartition PartitionEnumerator::next() {
  IOTML_CHECK(has_next_, "PartitionEnumerator::next: exhausted");
  SetPartition current = SetPartition::from_assignment(rgs_);
  advance();
  return current;
}

void PartitionEnumerator::advance() {
  // Standard RGS successor: find the rightmost position that can be
  // incremented (rgs[i] <= max_prefix[i-1]), increment it, zero the suffix.
  for (std::size_t i = n_; i-- > 1;) {
    if (rgs_[i] <= max_prefix_[i - 1]) {
      ++rgs_[i];
      max_prefix_[i] = std::max(max_prefix_[i - 1], rgs_[i]);
      for (std::size_t j = i + 1; j < n_; ++j) {
        rgs_[j] = 0;
        max_prefix_[j] = max_prefix_[i];
      }
      return;
    }
  }
  has_next_ = false;
}

std::vector<SetPartition> all_partitions(std::size_t n) {
  IOTML_CHECK(n > 0 && n <= 14, "all_partitions: n must be in [1, 14]");
  std::vector<SetPartition> out;
  out.reserve(static_cast<std::size_t>(bell_number(static_cast<unsigned>(n))));
  PartitionEnumerator e(n);
  while (e.has_next()) out.push_back(e.next());
  return out;
}

std::vector<SetPartition> partitions_with_blocks(std::size_t n, std::size_t k) {
  IOTML_CHECK(k >= 1 && k <= n, "partitions_with_blocks: k out of range");
  std::vector<SetPartition> out;
  PartitionEnumerator e(n);
  while (e.has_next()) {
    SetPartition p = e.next();
    if (p.num_blocks() == k) out.push_back(std::move(p));
  }
  return out;
}

namespace {

/// Recursive enumeration of partitions of a fixed composition type: blocks in
/// min-element order; block i always claims the smallest unplaced element.
void enumerate_type(const std::vector<std::size_t>& composition, std::size_t depth,
                    std::vector<std::size_t>& remaining,
                    std::vector<std::vector<std::size_t>>& blocks_acc, std::size_t n,
                    std::vector<SetPartition>& out) {
  if (depth == composition.size()) {
    out.push_back(SetPartition::from_blocks(blocks_acc, n));
    return;
  }
  const std::size_t size = composition[depth];
  // The block must contain the minimum remaining element (min-ordering).
  const std::size_t anchor = remaining.front();
  std::vector<std::size_t> rest(remaining.begin() + 1, remaining.end());

  // Choose size-1 extra members from rest.
  std::vector<std::size_t> choice(size - 1);
  std::function<void(std::size_t, std::size_t)> choose = [&](std::size_t start,
                                                             std::size_t picked) {
    if (picked == size - 1) {
      std::vector<std::size_t> block{anchor};
      block.insert(block.end(), choice.begin(), choice.end());
      std::vector<std::size_t> next_remaining;
      std::size_t ci = 0;
      for (std::size_t e : rest) {
        if (ci < choice.size() && choice[ci] == e) {
          ++ci;
        } else {
          next_remaining.push_back(e);
        }
      }
      blocks_acc.push_back(std::move(block));
      std::swap(remaining, next_remaining);
      enumerate_type(composition, depth + 1, remaining, blocks_acc, n, out);
      std::swap(remaining, next_remaining);
      blocks_acc.pop_back();
      return;
    }
    for (std::size_t i = start; i < rest.size(); ++i) {
      choice[picked] = rest[i];
      choose(i + 1, picked + 1);
    }
  };
  choose(0, 0);
}

}  // namespace

std::vector<SetPartition> partitions_of_type(const std::vector<std::size_t>& composition) {
  std::size_t n = 0;
  for (std::size_t part : composition) {
    IOTML_CHECK(part >= 1, "partitions_of_type: composition parts must be >= 1");
    n += part;
  }
  IOTML_CHECK(n > 0, "partitions_of_type: empty composition");
  std::vector<std::size_t> remaining(n);
  std::iota(remaining.begin(), remaining.end(), std::size_t{0});
  std::vector<std::vector<std::size_t>> blocks_acc;
  std::vector<SetPartition> out;
  enumerate_type(composition, 0, remaining, blocks_acc, n, out);
  return out;
}

std::uint64_t count_partitions_of_type(const std::vector<std::size_t>& composition) {
  std::size_t n = 0;
  for (std::size_t part : composition) n += part;
  std::uint64_t count = 1;
  std::size_t remaining = n;
  for (std::size_t part : composition) {
    IOTML_CHECK(part >= 1 && part <= remaining, "count_partitions_of_type: bad composition");
    count *= binomial(static_cast<unsigned>(remaining - 1), static_cast<unsigned>(part - 1));
    remaining -= part;
  }
  return count;
}

}  // namespace iotml::comb
