#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace iotml::comb {

/// A partition of the ground set {0, 1, ..., n-1} into nonempty blocks.
///
/// Internally stored as a *restricted growth string* (RGS): `rgs[i]` is the
/// index of the block containing element i, with the canonicity constraint
/// rgs[0] == 0 and rgs[i] <= max(rgs[0..i-1]) + 1. This gives every partition
/// a unique representation, cheap equality/hashing, and a natural enumeration
/// order.
///
/// Terminology follows the paper (§III): a partition pi is *finer* than pi'
/// (pi <= pi') iff every block of pi' is a union of blocks of pi. The set
/// Pi(S) of all partitions ordered by refinement is a complete lattice.
/// The *rank* of a partition of an n-set with b blocks is n - b (so the
/// discrete partition has rank 0 and the one-block partition rank n-1).
class SetPartition {
 public:
  /// The discrete partition {0}/{1}/.../{n-1} (finest, rank 0).
  static SetPartition discrete(std::size_t n);

  /// The one-block partition {0,...,n-1} (coarsest, rank n-1).
  static SetPartition indiscrete(std::size_t n);

  /// Build from an explicit block list over ground set {0..n-1}. Blocks must
  /// be disjoint, nonempty, and cover the ground set; element order within
  /// blocks is irrelevant.
  static SetPartition from_blocks(const std::vector<std::vector<std::size_t>>& blocks,
                                  std::size_t n);

  /// Build from a (not necessarily canonical) block-assignment vector:
  /// assignment[i] = arbitrary label of the block containing i. Labels are
  /// renumbered into canonical RGS form.
  static SetPartition from_assignment(const std::vector<int>& assignment);

  SetPartition() = default;

  std::size_t ground_size() const noexcept { return rgs_.size(); }
  std::size_t num_blocks() const noexcept { return num_blocks_; }

  /// Lattice rank: ground_size() - num_blocks().
  std::size_t rank() const noexcept { return rgs_.size() - num_blocks_; }

  /// Block index (0-based, canonical order = order of first appearance) of
  /// element i.
  int block_of(std::size_t i) const;

  /// Blocks as sorted element lists, in canonical block order. Canonical
  /// order by construction equals ordering blocks by their minimum element.
  std::vector<std::vector<std::size_t>> blocks() const;

  /// The canonical restricted growth string.
  const std::vector<int>& rgs() const noexcept { return rgs_; }

  /// True iff elements i and j are in the same block.
  bool together(std::size_t i, std::size_t j) const;

  /// True iff *this is finer than or equal to `coarser` (every block of this
  /// is contained in a block of `coarser`).
  bool refines(const SetPartition& coarser) const;

  /// Lattice meet: the coarsest partition finer than both (common refinement;
  /// blocks are pairwise intersections).
  SetPartition meet(const SetPartition& other) const;

  /// Lattice join: the finest partition coarser than both (transitive closure
  /// of the union of the two equivalence relations).
  SetPartition join(const SetPartition& other) const;

  /// True iff `coarser` covers *this in the refinement order, i.e. `coarser`
  /// results from merging exactly two blocks of *this.
  bool covered_by(const SetPartition& coarser) const;

  /// All partitions covering *this (merge each pair of blocks): the upward
  /// covers in the Hasse diagram. There are b(b-1)/2 of them for b blocks.
  std::vector<SetPartition> upward_covers() const;

  /// All partitions covered by *this (split one block into two nonempty
  /// parts): the downward covers in the Hasse diagram.
  std::vector<SetPartition> downward_covers() const;

  /// Merge blocks a and b (block indices), yielding a coarser partition.
  SetPartition merge_blocks(std::size_t a, std::size_t b) const;

  /// Block sizes in canonical block order (the partition's *type* as a
  /// composition, used by the Loeb-Damiani-D'Antona construction).
  std::vector<std::size_t> type() const;

  /// Human-readable form using 1-based element labels, e.g. "12/3/4" for
  /// {{0,1},{2},{3}} — matching the paper's Table I notation.
  std::string to_string() const;

  bool operator==(const SetPartition& other) const noexcept { return rgs_ == other.rgs_; }
  bool operator!=(const SetPartition& other) const noexcept { return !(*this == other); }

  /// Total order for use in std::map / sorting (lexicographic on RGS).
  bool operator<(const SetPartition& other) const noexcept { return rgs_ < other.rgs_; }

 private:
  explicit SetPartition(std::vector<int> rgs);

  std::vector<int> rgs_;
  std::size_t num_blocks_ = 0;

  friend struct SetPartitionHash;
  friend class PartitionEnumerator;
};

/// Hash functor so SetPartition can key unordered containers.
struct SetPartitionHash {
  std::size_t operator()(const SetPartition& p) const noexcept;
};

/// Streaming enumerator over all partitions of an n-set in RGS lexicographic
/// order (Bell(n) of them). Usage:
///   PartitionEnumerator e(4);
///   while (e.has_next()) { SetPartition p = e.next(); ... }
class PartitionEnumerator {
 public:
  explicit PartitionEnumerator(std::size_t n);

  bool has_next() const noexcept { return has_next_; }
  SetPartition next();

  /// Restart from the discrete partition.
  void reset();

 private:
  std::size_t n_;
  std::vector<int> rgs_;
  std::vector<int> max_prefix_;  // max_prefix_[i] = max(rgs_[0..i])
  bool has_next_ = true;

  void advance();
};

/// Convenience: materialize all partitions of an n-set. Guarded against
/// blow-up: throws InvalidArgument for n > 14 (Bell(14) = 190'899'322).
std::vector<SetPartition> all_partitions(std::size_t n);

/// All partitions of an n-set with exactly k blocks (Stirling-many).
std::vector<SetPartition> partitions_with_blocks(std::size_t n, std::size_t k);

/// All partitions whose type (block sizes in canonical min-ordered block
/// order) equals the given composition of n. Used by the LDD decomposition.
std::vector<SetPartition> partitions_of_type(const std::vector<std::size_t>& composition);

/// Number of partitions of type `composition` without enumerating them:
/// prod_i C(r_i - 1, t_i - 1) with r_i the number of elements still unplaced.
std::uint64_t count_partitions_of_type(const std::vector<std::size_t>& composition);

}  // namespace iotml::comb
