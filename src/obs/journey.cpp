#include "obs/journey.hpp"

#include "obs/json.hpp"
#include "util/error.hpp"

namespace iotml::obs {

const char* hop_kind_name(HopKind kind) noexcept {
  switch (kind) {
    case HopKind::kOrigin:
      return "origin";
    case HopKind::kSend:
      return "send";
    case HopKind::kArrive:
      return "arrive";
  }
  return "?";
}

const char* hop_stream_name(HopStream stream) noexcept {
  switch (stream) {
    case HopStream::kRows:
      return "rows";
    case HopStream::kArtifact:
      return "artifact";
    case HopStream::kPredictions:
      return "predictions";
    case HopStream::kPatch:
      return "patch";
  }
  return "?";
}

JourneyLog::JourneyLog(std::size_t capacity) : capacity_(capacity) {
  IOTML_CHECK(capacity_ >= 1, "JourneyLog: capacity must be at least 1");
}

void JourneyLog::record(HopRecord r) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (records_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  records_.push_back(std::move(r));
}

std::size_t JourneyLog::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

std::uint64_t JourneyLog::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::vector<HopRecord> JourneyLog::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

void JourneyLog::write_jsonl(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  // First line is a meta record so readers know whether history was shed.
  out << "{\"meta\": {\"records\": " << records_.size() << ", \"dropped\": " << dropped_
      << "}}\n";
  for (const HopRecord& r : records_) {
    out << "{\"trace\": " << r.trace << ", \"kind\": \"" << hop_kind_name(r.kind)
        << "\", \"stream\": \"" << hop_stream_name(r.stream) << "\", \"hop\": " << r.hop
        << ", \"src\": " << r.src << ", \"dst\": " << r.dst
        << ", \"t0\": " << json_number(r.t0_s) << ", \"t1\": " << json_number(r.t1_s)
        << ", \"rows\": " << r.rows << ", \"bytes\": " << r.bytes
        << ", \"attempts\": " << r.attempts << ", \"outcome\": \"" << r.outcome
        << "\", \"parents\": [";
    for (std::size_t i = 0; i < r.parents.size(); ++i) {
      if (i > 0) out << ", ";
      out << r.parents[i];
    }
    out << "]}\n";
  }
}

void JourneyLog::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  records_.clear();
  dropped_ = 0;
}

}  // namespace iotml::obs
