#pragma once

#include <string>

namespace iotml::obs {

/// Escape `text` for embedding inside a JSON string literal (quotes are the
/// caller's job). Control characters become \uXXXX escapes.
std::string json_escape(const std::string& text);

/// Render a double as a JSON number token. JSON cannot represent NaN or
/// infinities, so non-finite values become 0.
std::string json_number(double value);

}  // namespace iotml::obs
