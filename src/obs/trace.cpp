#include "obs/trace.hpp"

#include <sstream>
#include <utility>

#include "obs/clock.hpp"
#include "obs/json.hpp"
#include "obs/obs.hpp"

namespace iotml::obs {

namespace {

std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

// Per-thread nesting depth of live spans; balanced by ctor/dtor pairs.
thread_local std::uint32_t t_span_depth = 0;

}  // namespace

void TraceCollector::record(TraceEvent event) {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::size_t TraceCollector::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::vector<TraceEvent> TraceCollector::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

void TraceCollector::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

void TraceCollector::write_chrome_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& e : events_) {
    out << (first ? "" : ",") << "\n{\"name\": \"" << json_escape(e.name) << "\", \"cat\": \""
        << json_escape(e.category) << "\", \"ph\": \"X\", \"pid\": 1, \"tid\": " << e.tid
        << ", \"ts\": " << e.ts_us << ", \"dur\": " << e.dur_us
        << ", \"args\": {\"depth\": " << e.depth;
    for (const TraceArg& a : e.args) {
      out << ", \"" << json_escape(a.key) << "\": ";
      if (a.is_number) {
        out << a.value;
      } else {
        out << "\"" << json_escape(a.value) << "\"";
      }
    }
    out << "}}";
    first = false;
  }
  out << "\n]}\n";
}

std::string TraceCollector::chrome_json() const {
  std::ostringstream out;
  write_chrome_json(out);
  return out.str();
}

Span::Span(TraceCollector& collector, std::string name, std::string category) {
  if (!collector.enabled()) return;
  collector_ = &collector;
  event_.name = std::move(name);
  event_.category = std::move(category);
  event_.tid = this_thread_id();
  event_.depth = t_span_depth++;
  event_.ts_us = now_us();  // read last so children start at or after parents
}

Span::Span(std::string name, std::string category)
    : Span(trace(), std::move(name), std::move(category)) {}

Span::~Span() {
  if (collector_ == nullptr) return;
  event_.dur_us = now_us() - event_.ts_us;
  --t_span_depth;
  collector_->record(std::move(event_));
}

void Span::arg(const std::string& key, double value) {
  if (collector_ == nullptr) return;
  event_.args.push_back({key, json_number(value), true});
}

void Span::arg(const std::string& key, std::int64_t value) {
  if (collector_ == nullptr) return;
  event_.args.push_back({key, std::to_string(value), true});
}

void Span::arg(const std::string& key, std::uint64_t value) {
  if (collector_ == nullptr) return;
  event_.args.push_back({key, std::to_string(value), true});
}

void Span::arg(const std::string& key, const std::string& value) {
  if (collector_ == nullptr) return;
  event_.args.push_back({key, value, false});
}

void Span::arg(const std::string& key, const char* value) {
  if (collector_ == nullptr) return;
  event_.args.push_back({key, std::string(value), false});
}

}  // namespace iotml::obs
