#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight_recorder.hpp"
#include "obs/journey.hpp"
#include "obs/timeseries.hpp"

namespace iotml::obs {

/// Sizing knobs for a fleet observatory. Defaults keep memory bounded at
/// fleet scale: every buffer is a ring or a capped log, never an unbounded
/// vector.
struct ObservatoryOptions {
  std::size_t series_capacity = 512;       ///< samples retained per (metric, entity, tier)
  std::size_t flight_ring = 32;            ///< events retained per entity
  std::size_t journey_capacity = 1 << 20;  ///< hop records retained per run
};

/// The fleet observatory: virtual-clock time-series, a causal journey log,
/// and per-entity flight recorders, composed behind one handle plus a
/// deterministic trace-id counter. Everything samples the sim's virtual
/// clock, draws nothing from any RNG and perturbs no scheduling, so a run
/// with the observatory on emits byte-identical event logs and reports to a
/// run with it off — it observes, it never participates.
class Observatory {
 public:
  explicit Observatory(std::size_t entities, ObservatoryOptions options = {});

  TimeSeriesStore& series() noexcept { return series_; }
  const TimeSeriesStore& series() const noexcept { return series_; }

  JourneyLog& journeys() noexcept { return journeys_; }
  const JourneyLog& journeys() const noexcept { return journeys_; }

  FlightRecorder& flight() noexcept { return flight_; }
  const FlightRecorder& flight() const noexcept { return flight_; }

  const ObservatoryOptions& options() const noexcept { return options_; }

  /// Writes timeseries.json, journeys.jsonl, flightrec.json and events.log
  /// under `dir` (created if missing). Returns false if any file could not
  /// be written.
  bool write_artifacts(const std::string& dir,
                       const std::vector<std::string>& event_log) const;

 private:
  ObservatoryOptions options_;
  TimeSeriesStore series_;
  JourneyLog journeys_;
  FlightRecorder flight_;
};

}  // namespace iotml::obs
