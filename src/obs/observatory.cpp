#include "obs/observatory.hpp"

#include <filesystem>
#include <fstream>

namespace iotml::obs {

Observatory::Observatory(std::size_t entities, ObservatoryOptions options)
    : options_(options),
      series_(options.series_capacity),
      journeys_(options.journey_capacity),
      flight_(entities, options.flight_ring) {}

bool Observatory::write_artifacts(const std::string& dir,
                                  const std::vector<std::string>& event_log) const {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) return false;

  const std::filesystem::path root(dir);
  {
    std::ofstream out(root / "timeseries.json");
    if (!out) return false;
    series_.write_json(out);
    if (!out) return false;
  }
  {
    std::ofstream out(root / "journeys.jsonl");
    if (!out) return false;
    journeys_.write_jsonl(out);
    if (!out) return false;
  }
  {
    std::ofstream out(root / "flightrec.json");
    if (!out) return false;
    flight_.write_json(out);
    if (!out) return false;
  }
  {
    std::ofstream out(root / "events.log");
    if (!out) return false;
    for (const std::string& line : event_log) out << line << "\n";
    if (!out) return false;
  }
  return true;
}

}  // namespace iotml::obs
