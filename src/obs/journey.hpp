#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace iotml::obs {

/// What a journey record describes.
enum class HopKind : std::uint8_t {
  kOrigin,  ///< a flush window was born at a device (rows entered the fleet)
  kSend,    ///< a message left a node (outcome says how the transfer ended)
  kArrive,  ///< a message reached a node (outcome says what the receiver did)
};

/// Which traffic class the record belongs to.
enum class HopStream : std::uint8_t {
  kRows,         ///< sensor rows, device -> edge -> core
  kArtifact,     ///< compiled model broadcast, core -> edge -> device
  kPredictions,  ///< on-device scores, device -> edge -> core
  kPatch,        ///< OTA delta-update chunks, core -> edge -> device
};

const char* hop_kind_name(HopKind kind) noexcept;
const char* hop_stream_name(HopStream stream) noexcept;

/// One per-hop trace record. `trace` identifies the message (or, for
/// kOrigin, the flush window); `parents` lists the origin-window trace ids
/// folded into the payload, which is what lets a reader reconstruct a row's
/// device -> edge -> core journey after edge-side batching merges windows.
/// All times are virtual-clock seconds, so the log is byte-deterministic
/// per seed.
struct HopRecord {
  std::uint64_t trace = 0;
  std::uint32_t hop = 0;  ///< 0 = first wire hop from the originator, 1 = second, ...
  HopKind kind = HopKind::kSend;
  HopStream stream = HopStream::kRows;
  std::size_t src = 0;
  std::size_t dst = 0;
  double t0_s = 0.0;  ///< sent / created time
  double t1_s = 0.0;  ///< arrival / event time (0 when the frame never landed)
  std::size_t rows = 0;
  std::size_t bytes = 0;
  std::uint32_t attempts = 0;  ///< 1 + retransmits for kSend
  const char* outcome = "";    ///< static string: delivered, dropped, dead_letter, ...
  std::vector<std::uint64_t> parents;
};

/// Bounded append-only log of hop records. Appends past `capacity` are
/// counted in dropped() rather than stored, so a runaway sim cannot OOM the
/// observatory. Thread-safe; write_jsonl emits one fixed-key-order JSON
/// object per line in append order.
class JourneyLog {
 public:
  explicit JourneyLog(std::size_t capacity);

  void record(HopRecord r);

  std::size_t size() const;
  std::uint64_t dropped() const;
  std::vector<HopRecord> snapshot() const;

  void write_jsonl(std::ostream& out) const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<HopRecord> records_;
  std::uint64_t dropped_ = 0;
};

}  // namespace iotml::obs
