#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace iotml::obs {

namespace {

// C++20 has std::atomic<double>::fetch_add, but CAS loops keep the intent
// explicit and work for min/max too.
void atomic_add(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v < cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& target, double v) noexcept {
  double cur = target.load(std::memory_order_relaxed);
  while (v > cur && !target.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1), min_(kInf), max_(-kInf) {
  IOTML_CHECK(!bounds_.empty(), "Histogram: need at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    IOTML_CHECK(bounds_[i - 1] < bounds_[i], "Histogram: bounds must be strictly increasing");
  }
}

std::vector<double> Histogram::exponential_bounds(double start, double factor, std::size_t count) {
  IOTML_CHECK(start > 0.0, "Histogram::exponential_bounds: start must be positive");
  IOTML_CHECK(factor > 1.0, "Histogram::exponential_bounds: factor must exceed 1");
  IOTML_CHECK(count >= 1, "Histogram::exponential_bounds: need at least one bound");
  std::vector<double> bounds;
  bounds.reserve(count);
  double edge = start;
  for (std::size_t i = 0; i < count; ++i) {
    bounds.push_back(edge);
    edge *= factor;
  }
  return bounds;
}

std::vector<double> Histogram::default_time_bounds_us() {
  return exponential_bounds(1.0, 2.0, 30);  // 1us .. 2^29us ~ 9min
}

void Histogram::record(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const auto idx = static_cast<std::size_t>(it - bounds_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, value);
  atomic_min(min_, value);
  atomic_max(max_, value);
}

std::uint64_t Histogram::count() const noexcept {
  return count_.load(std::memory_order_relaxed);
}

double Histogram::sum() const noexcept {
  return count() == 0 ? 0.0 : sum_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum_.load(std::memory_order_relaxed) / static_cast<double>(n);
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::percentile(double q) const {
  IOTML_CHECK(q >= 0.0 && q <= 1.0, "Histogram::percentile: q outside [0, 1]");
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;

  const double lo_all = min();
  const double hi_all = max();
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= target) {
      const double lower = i == 0 ? lo_all : std::max(lo_all, bounds_[i - 1]);
      const double upper = i < bounds_.size() ? std::min(hi_all, bounds_[i]) : hi_all;
      const double frac =
          std::clamp((target - cum) / static_cast<double>(counts[i]), 0.0, 1.0);
      return std::clamp(lower + (upper - lower) * frac, lo_all, hi_all);
    }
    cum = next;
  }
  return hi_all;
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(kInf, std::memory_order_relaxed);
  max_.store(-kInf, std::memory_order_relaxed);
}

void Registry::check_kind(const std::string& name, const char* kind) const {
  const bool as_counter = counters_.count(name) != 0;
  const bool as_gauge = gauges_.count(name) != 0;
  const bool as_histogram = histograms_.count(name) != 0;
  IOTML_CHECK(!as_counter || kind == std::string("counter"),
              "Registry: metric '" + name + "' already registered as a counter");
  IOTML_CHECK(!as_gauge || kind == std::string("gauge"),
              "Registry: metric '" + name + "' already registered as a gauge");
  IOTML_CHECK(!as_histogram || kind == std::string("histogram"),
              "Registry: metric '" + name + "' already registered as a histogram");
}

Counter& Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  check_kind(name, "counter");
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  check_kind(name, "gauge");
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mu_);
  check_kind(name, "histogram");
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>(Histogram::default_time_bounds_us());
  return *slot;
}

Histogram& Registry::histogram(const std::string& name, std::vector<double> upper_bounds) {
  const std::lock_guard<std::mutex> lock(mu_);
  check_kind(name, "histogram");
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(std::move(upper_bounds));
  } else {
    IOTML_CHECK(slot->bounds() == upper_bounds,
                "Registry: histogram '" + name + "' already registered with different bounds");
  }
  return *slot;
}

std::string Registry::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

void Registry::write_json(std::ostream& out) const {
  write_json(out, [](const std::string&) { return true; });
}

void Registry::write_json(std::ostream& out,
                          const std::function<bool(const std::string&)>& keep) const {
  const std::lock_guard<std::mutex> lock(mu_);
  out << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    if (!keep(name)) continue;
    out << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": " << counter->value();
    first = false;
  }
  out << "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    if (!keep(name)) continue;
    out << (first ? "" : ",") << "\n    \"" << json_escape(name)
        << "\": " << json_number(gauge->value());
    first = false;
  }
  out << "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    if (!keep(name)) continue;
    out << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": {"
        << "\"count\": " << hist->count() << ", \"sum\": " << json_number(hist->sum())
        << ", \"mean\": " << json_number(hist->mean())
        << ", \"min\": " << json_number(hist->min()) << ", \"max\": " << json_number(hist->max())
        << ", \"p50\": " << json_number(hist->percentile(0.50))
        << ", \"p95\": " << json_number(hist->percentile(0.95))
        << ", \"p99\": " << json_number(hist->percentile(0.99)) << ", \"buckets\": [";
    const std::vector<std::uint64_t> counts = hist->bucket_counts();
    const std::vector<double>& bounds = hist->bounds();
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"le\": ";
      if (i < bounds.size()) {
        out << json_number(bounds[i]);
      } else {
        out << "\"+inf\"";
      }
      out << ", \"count\": " << counts[i] << "}";
    }
    out << "]}";
    first = false;
  }
  out << "\n  }\n}\n";
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, counter] : counters_) counter->reset();
  for (const auto& [name, gauge] : gauges_) gauge->reset();
  for (const auto& [name, hist] : histograms_) hist->reset();
}

void Registry::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace iotml::obs
