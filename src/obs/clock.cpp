#include "obs/clock.hpp"

#include <chrono>

namespace iotml::obs {

std::int64_t now_us() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::int64_t unix_time_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

}  // namespace iotml::obs
