#pragma once

#include <cstdint>

namespace iotml::obs {

/// Monotonic timestamp in microseconds (arbitrary fixed epoch; only deltas
/// are meaningful). This is the one sanctioned clock in the tree: invariant
/// lint rule R6 (tools/lint_invariants.py) forbids raw std::chrono clock
/// reads outside src/obs/ so all timing flows through instrumentation that
/// can be audited (and, later, mocked) in one place.
std::int64_t now_us();

/// Wall-clock unix time in milliseconds — for stamping reports, never for
/// measuring durations (use now_us() deltas for those).
std::int64_t unix_time_ms();

}  // namespace iotml::obs
