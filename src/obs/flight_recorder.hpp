#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace iotml::obs {

/// One flight-recorder entry. `kind` must be a string literal (the recorder
/// stores the pointer, never copies); `a` and `b` are kind-specific details
/// (rows, bytes, message ids — DESIGN.md §13 documents each kind).
struct FlightEvent {
  double t_s = 0.0;
  const char* kind = "";
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

/// Per-entity ring of the last `ring_capacity` events, cheap enough to
/// leave on for every node in the fleet. When a fault fires (crash,
/// partition, dead-letter) the affected entity's ring is dumped into the
/// report so the operator sees what the node was doing just before it
/// failed — a black box, not a full log. Timestamps are virtual-clock
/// seconds; dumps are byte-deterministic per seed.
class FlightRecorder {
 public:
  FlightRecorder(std::size_t entities, std::size_t ring_capacity);

  void note(std::size_t entity, double t_s, const char* kind, std::uint64_t a = 0,
            std::uint64_t b = 0);

  std::size_t entities() const noexcept { return rings_.size(); }
  std::size_t ring_capacity() const noexcept { return capacity_; }
  std::uint64_t noted() const;  ///< events ever recorded across all rings

  /// Entity's retained events, oldest -> newest.
  std::vector<FlightEvent> dump(std::size_t entity) const;

  /// Rendered dump lines: "t=<sec> <kind> a=<a> b=<b>".
  std::vector<std::string> dump_lines(std::size_t entity) const;

  /// {"ring_capacity": N, "entities": [{"entity": i, "total": n, "events": [...]}]}
  /// — entities with no events are omitted.
  void write_json(std::ostream& out) const;

  void clear();

 private:
  struct Ring {
    std::vector<FlightEvent> events;
    std::size_t next = 0;       // overwrite position once full
    std::uint64_t total = 0;    // events ever noted on this entity
  };

  std::vector<FlightEvent> dump_locked(std::size_t entity) const;

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<Ring> rings_;
};

}  // namespace iotml::obs
