#pragma once

#include <string>

#include "obs/clock.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace iotml::obs {

/// Process-global trace collector. Tracing is enabled iff IOTML_TRACE=<file>
/// was set in the environment when the collector was first touched; the
/// Chrome trace JSON is written to that file at process exit (or on
/// flush()). With the variable unset every Span against this collector is a
/// no-op and no file is ever written.
TraceCollector& trace();

/// Process-global metrics registry. Instruments always record in memory
/// (lock-free and cheap — counters are one relaxed add); setting
/// IOTML_METRICS=<file> additionally writes the JSON snapshot at process
/// exit (or on flush()).
Registry& registry();

/// Configured sink paths; empty when the corresponding env var is unset.
const std::string& trace_path();
const std::string& metrics_path();

/// Write the configured sinks now. Called automatically at process exit;
/// harmless (and false) when no sink is configured.
bool flush();

}  // namespace iotml::obs
