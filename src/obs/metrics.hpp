#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace iotml::obs {

/// Monotonically increasing event count. Recording is a relaxed atomic add —
/// safe to call from any thread, cheap enough for per-operation accounting.
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-write-wins scalar (queue depths, cache sizes, config knobs).
class Gauge {
 public:
  void set(double value) noexcept { value_.store(value, std::memory_order_relaxed); }
  double value() const noexcept { return value_.load(std::memory_order_relaxed); }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket histogram with lock-free recording and interpolated
/// percentiles. Bucket i counts values in (bounds[i-1], bounds[i]]; one
/// implicit overflow bucket catches values above the last bound, so no
/// sample is ever dropped. Percentiles interpolate linearly inside the
/// winning bucket and are clamped to the observed [min, max], which makes
/// point masses exact regardless of bucket width.
class Histogram {
 public:
  /// Throws InvalidArgument unless `upper_bounds` is non-empty and strictly
  /// increasing.
  explicit Histogram(std::vector<double> upper_bounds);

  /// `count` log-spaced bounds: start, start*factor, start*factor^2, ...
  /// Throws InvalidArgument unless start > 0, factor > 1 and count >= 1.
  static std::vector<double> exponential_bounds(double start, double factor, std::size_t count);

  /// Default bounds for microsecond-scale latencies: 1us doubling up to ~9min.
  static std::vector<double> default_time_bounds_us();

  void record(double value) noexcept;

  std::uint64_t count() const noexcept;
  double sum() const noexcept;   ///< 0 when empty
  double mean() const noexcept;  ///< 0 when empty
  double min() const noexcept;   ///< 0 when empty
  double max() const noexcept;   ///< 0 when empty

  /// Interpolated q-quantile, q in [0, 1] — throws InvalidArgument
  /// otherwise. Returns 0 when the histogram is empty.
  double percentile(double q) const;

  const std::vector<double>& bounds() const noexcept { return bounds_; }

  /// Per-bucket counts; last entry is the overflow bucket.
  std::vector<std::uint64_t> bucket_counts() const;

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::atomic<std::uint64_t>> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

/// Named instruments, created on first use and stable for the registry's
/// lifetime — references returned by counter()/gauge()/histogram() never
/// dangle, so hot paths can cache them. Creation takes a mutex; recording on
/// the returned instruments is lock-free.
///
/// A name identifies exactly one instrument of exactly one kind: asking for
/// a counter under a name already registered as a gauge or histogram (or
/// vice versa) is an IOTML_CHECK failure, never a silent alias.
class Registry {
 public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);

  /// Get-or-create with the default microsecond bounds. Looking up an
  /// existing histogram never checks bounds — use this form on read paths.
  Histogram& histogram(const std::string& name);

  /// The first call for a name fixes its bucket bounds; a later call whose
  /// explicit `upper_bounds` differ from the registered ones is an
  /// IOTML_CHECK failure (two call sites disagreeing about a histogram's
  /// shape is aliasing, not sharing).
  Histogram& histogram(const std::string& name, std::vector<double> upper_bounds);

  /// Snapshot of every instrument as JSON (names sorted, machine-readable;
  /// the IOTML_METRICS sink writes exactly this).
  std::string to_json() const;
  void write_json(std::ostream& out) const;

  /// As write_json, but only instruments whose name `keep` accepts. The
  /// bench reports embed a registry snapshot in their JSON artifacts and use
  /// this to drop wall-clock instruments in deterministic mode.
  void write_json(std::ostream& out,
                  const std::function<bool(const std::string&)>& keep) const;

  /// Zero every instrument. Registration (and outstanding references)
  /// survive — intended for tests and phase-by-phase bench readings.
  void reset();

  /// Drop every instrument and registration. Outstanding references dangle,
  /// so this is for test fixtures that want a pristine registry between
  /// cases — never call it while other code holds cached instruments.
  void clear();

 private:
  void check_kind(const std::string& name, const char* kind) const;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace iotml::obs
