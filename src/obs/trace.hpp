#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace iotml::obs {

/// One key/value attached to a span. Numeric values are pre-rendered JSON
/// tokens so the exported args stay typed in about:tracing.
struct TraceArg {
  std::string key;
  std::string value;  ///< JSON number token when is_number, raw text otherwise
  bool is_number = false;
};

/// A completed span (Chrome trace_event "X" complete event).
struct TraceEvent {
  std::string name;
  std::string category;
  std::int64_t ts_us = 0;   ///< start timestamp, microseconds (monotonic)
  std::int64_t dur_us = 0;  ///< duration, microseconds
  std::uint32_t tid = 0;    ///< small per-thread id, assigned on first span
  std::uint32_t depth = 0;  ///< nesting depth on its thread (0 = root)
  std::vector<TraceArg> args;
};

/// Collects spans and exports Chrome `trace_event` JSON loadable in
/// chrome://tracing or Perfetto. A disabled collector (the default) makes
/// Span construction a single relaxed atomic load — the no-op fast path.
/// Thread-safe; spans may complete concurrently on any thread.
class TraceCollector {
 public:
  bool enabled() const noexcept { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }

  /// Append a completed span (called by Span's destructor).
  void record(TraceEvent event);

  std::size_t size() const;
  std::vector<TraceEvent> snapshot() const;
  void clear();

  /// Export as Chrome trace JSON: {"traceEvents": [...]} with "X" phase
  /// events; each event carries its nesting depth and user args.
  void write_chrome_json(std::ostream& out) const;
  std::string chrome_json() const;

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<TraceEvent> events_;
};

/// RAII trace span. If the collector is disabled at construction the span is
/// inert: no clock reads, no recording, arg() calls are dropped. Spans nest
/// naturally with scope; nesting depth is tracked per thread.
class Span {
 public:
  Span(TraceCollector& collector, std::string name, std::string category = "iotml");

  /// Convenience: span against the process-global collector (obs.hpp).
  explicit Span(std::string name, std::string category = "iotml");

  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&&) = delete;
  Span& operator=(Span&&) = delete;

  void arg(const std::string& key, double value);
  void arg(const std::string& key, std::int64_t value);
  void arg(const std::string& key, std::uint64_t value);
  void arg(const std::string& key, const std::string& value);
  void arg(const std::string& key, const char* value);

  bool active() const noexcept { return collector_ != nullptr; }

 private:
  TraceCollector* collector_ = nullptr;  // null when tracing was disabled
  TraceEvent event_;
};

}  // namespace iotml::obs
