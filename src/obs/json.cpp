#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace iotml::obs {

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

}  // namespace iotml::obs
