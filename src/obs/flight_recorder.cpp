#include "obs/flight_recorder.hpp"

#include <sstream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace iotml::obs {

FlightRecorder::FlightRecorder(std::size_t entities, std::size_t ring_capacity)
    : capacity_(ring_capacity), rings_(entities) {
  IOTML_CHECK(ring_capacity >= 1, "FlightRecorder: ring capacity must be at least 1");
}

void FlightRecorder::note(std::size_t entity, double t_s, const char* kind, std::uint64_t a,
                          std::uint64_t b) {
  const std::lock_guard<std::mutex> lock(mu_);
  IOTML_CHECK(entity < rings_.size(), "FlightRecorder::note: entity out of range");
  Ring& ring = rings_[entity];
  const FlightEvent event{t_s, kind, a, b};
  if (ring.events.size() < capacity_) {
    ring.events.push_back(event);
  } else {
    ring.events[ring.next] = event;
    ring.next = (ring.next + 1) % capacity_;
  }
  ++ring.total;
}

std::uint64_t FlightRecorder::noted() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const Ring& ring : rings_) total += ring.total;
  return total;
}

std::vector<FlightEvent> FlightRecorder::dump_locked(std::size_t entity) const {
  IOTML_CHECK(entity < rings_.size(), "FlightRecorder::dump: entity out of range");
  const Ring& ring = rings_[entity];
  std::vector<FlightEvent> out;
  out.reserve(ring.events.size());
  if (ring.events.size() < capacity_) {
    out = ring.events;
  } else {
    for (std::size_t i = 0; i < ring.events.size(); ++i) {
      out.push_back(ring.events[(ring.next + i) % ring.events.size()]);
    }
  }
  return out;
}

std::vector<FlightEvent> FlightRecorder::dump(std::size_t entity) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dump_locked(entity);
}

std::vector<std::string> FlightRecorder::dump_lines(std::size_t entity) const {
  const std::vector<FlightEvent> events = dump(entity);
  std::vector<std::string> lines;
  lines.reserve(events.size());
  for (const FlightEvent& e : events) {
    std::ostringstream line;
    line << "t=" << json_number(e.t_s) << " " << e.kind << " a=" << e.a << " b=" << e.b;
    lines.push_back(line.str());
  }
  return lines;
}

void FlightRecorder::write_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  out << "{\n  \"ring_capacity\": " << capacity_ << ",\n  \"entities\": [";
  bool first = true;
  for (std::size_t entity = 0; entity < rings_.size(); ++entity) {
    if (rings_[entity].total == 0) continue;
    out << (first ? "" : ",") << "\n    {\"entity\": " << entity
        << ", \"total\": " << rings_[entity].total << ", \"events\": [";
    const std::vector<FlightEvent> events = dump_locked(entity);
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (i > 0) out << ", ";
      out << "{\"t\": " << json_number(events[i].t_s) << ", \"kind\": \""
          << json_escape(events[i].kind) << "\", \"a\": " << events[i].a
          << ", \"b\": " << events[i].b << "}";
    }
    out << "]}";
    first = false;
  }
  out << "\n  ]\n}\n";
}

void FlightRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (Ring& ring : rings_) ring = Ring{};
}

}  // namespace iotml::obs
