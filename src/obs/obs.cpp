#include "obs/obs.hpp"

#include <cstdlib>
#include <fstream>

namespace iotml::obs {

namespace {

std::string env_or_empty(const char* name) {
  // Read once while constructing the magic static below; nothing in iotml
  // writes the environment, so the mt-unsafety of getenv is moot here.
  const char* value = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  return value == nullptr ? std::string() : std::string(value);
}

// The one process-wide instance. Sinks are flushed from the destructor, so
// even benches that never call flush() still emit their files at exit.
struct Global {
  TraceCollector trace_collector;
  Registry metrics_registry;
  std::string trace_file = env_or_empty("IOTML_TRACE");
  std::string metrics_file = env_or_empty("IOTML_METRICS");

  Global() { trace_collector.set_enabled(!trace_file.empty()); }

  Global(const Global&) = delete;
  Global& operator=(const Global&) = delete;

  ~Global() { write_sinks(); }

  bool write_sinks() {
    bool wrote = false;
    if (!trace_file.empty()) {
      std::ofstream out(trace_file);
      if (out) {
        trace_collector.write_chrome_json(out);
        wrote = true;
      }
    }
    if (!metrics_file.empty()) {
      std::ofstream out(metrics_file);
      if (out) {
        metrics_registry.write_json(out);
        wrote = true;
      }
    }
    return wrote;
  }
};

Global& global() {
  static Global g;
  return g;
}

}  // namespace

TraceCollector& trace() { return global().trace_collector; }

Registry& registry() { return global().metrics_registry; }

const std::string& trace_path() { return global().trace_file; }

const std::string& metrics_path() { return global().metrics_file; }

bool flush() { return global().write_sinks(); }

}  // namespace iotml::obs
