#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace iotml::obs {

/// Deterministic fixed-bucket histogram for virtual-time quantities. Same
/// bucket semantics as obs::Histogram (bucket i counts values in
/// (bounds[i-1], bounds[i]], implicit overflow bucket, interpolated
/// quantiles clamped to the observed [min, max]) but with plain counters:
/// recording is not thread-safe, summaries are byte-deterministic per seed,
/// and the whole object is copyable so reports can embed it by value.
/// Replaces unbounded per-sample vectors for per-tier latency — memory is
/// O(buckets) no matter how many samples land.
class LogHistogram {
 public:
  /// Default bounds for virtual-second latencies: 1ms doubling up to ~9min.
  LogHistogram();

  /// Throws InvalidArgument unless `upper_bounds` is non-empty and strictly
  /// increasing.
  explicit LogHistogram(std::vector<double> upper_bounds);

  /// `count` log-spaced bounds starting at 1ms, doubling: 0.001, 0.002, ...
  static std::vector<double> default_latency_bounds_s();

  void record(double value) noexcept;

  std::uint64_t count() const noexcept { return count_; }
  double sum() const noexcept { return count_ == 0 ? 0.0 : sum_; }
  double mean() const noexcept;
  double min() const noexcept { return count_ == 0 ? 0.0 : min_; }
  double max() const noexcept { return count_ == 0 ? 0.0 : max_; }

  /// Interpolated q-quantile, q in [0, 1] — throws InvalidArgument
  /// otherwise. Returns 0 when empty.
  double quantile(double q) const;

  const std::vector<double>& bounds() const noexcept { return bounds_; }

  /// Per-bucket counts; last entry is the overflow bucket.
  const std::vector<std::uint64_t>& buckets() const noexcept { return buckets_; }

  void reset() noexcept;

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> buckets_;  // bounds_.size() + 1
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One virtual-clock observation.
struct Sample {
  double t_s = 0.0;
  double value = 0.0;
};

/// Bounded ring of virtual-time samples. Once `capacity` samples have been
/// recorded the oldest is overwritten, so a sampler left on for the whole
/// run costs fixed memory. `total()` keeps counting past the cap so readers
/// can tell how much history was shed. Recording takes a mutex (samplers are
/// shared across sim threads in tests); the sim's single-threaded hot path
/// pays an uncontended lock.
class Sampler {
 public:
  explicit Sampler(std::size_t capacity);

  void record(double t_s, double value);

  std::size_t capacity() const noexcept { return capacity_; }
  std::uint64_t total() const;            ///< samples ever recorded
  std::vector<Sample> samples() const;    ///< oldest -> newest, size <= capacity

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<Sample> ring_;
  std::size_t next_ = 0;       // overwrite position once full
  std::uint64_t total_ = 0;
};

/// Series identity: what is measured, on which entity, at which tier.
struct SeriesKey {
  std::string metric;
  std::string entity;
  std::string tier;

  bool operator<(const SeriesKey& o) const noexcept {
    if (metric != o.metric) return metric < o.metric;
    if (entity != o.entity) return entity < o.entity;
    return tier < o.tier;
  }
  bool operator==(const SeriesKey& o) const noexcept {
    return metric == o.metric && entity == o.entity && tier == o.tier;
  }
};

/// Keyed collection of bounded samplers. Like obs::Registry, series are
/// created on first use and references stay valid for the store's lifetime,
/// so hot paths can cache the Sampler&. Keys live in a std::map so JSON
/// emission iterates in sorted order and output is byte-deterministic.
class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(std::size_t capacity_per_series = 512);

  Sampler& series(const std::string& metric, const std::string& entity,
                  const std::string& tier);

  std::size_t series_count() const;
  std::uint64_t samples_total() const;

  /// {"capacity": N, "series": [{metric, entity, tier, total, samples: [[t, v], ...]}]}
  /// sorted by (metric, entity, tier); samples oldest -> newest.
  void write_json(std::ostream& out) const;
  std::string to_json() const;

  void clear();

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::map<SeriesKey, std::unique_ptr<Sampler>> series_;
};

}  // namespace iotml::obs
