#include "obs/timeseries.hpp"

#include <algorithm>
#include <sstream>

#include "obs/json.hpp"
#include "util/error.hpp"

namespace iotml::obs {

LogHistogram::LogHistogram() : LogHistogram(default_latency_bounds_s()) {}

LogHistogram::LogHistogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds)), buckets_(bounds_.size() + 1, 0) {
  IOTML_CHECK(!bounds_.empty(), "LogHistogram: need at least one bucket bound");
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    IOTML_CHECK(bounds_[i - 1] < bounds_[i], "LogHistogram: bounds must be strictly increasing");
  }
}

std::vector<double> LogHistogram::default_latency_bounds_s() {
  std::vector<double> bounds;
  bounds.reserve(20);
  double edge = 1e-3;  // 1ms doubling: 0.001 .. 2^19ms ~ 9min
  for (std::size_t i = 0; i < 20; ++i) {
    bounds.push_back(edge);
    edge *= 2.0;
  }
  return bounds;
}

void LogHistogram::record(double value) noexcept {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++buckets_[static_cast<std::size_t>(it - bounds_.begin())];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

double LogHistogram::mean() const noexcept {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double LogHistogram::quantile(double q) const {
  IOTML_CHECK(q >= 0.0 && q <= 1.0, "LogHistogram::quantile: q outside [0, 1]");
  if (count_ == 0) return 0.0;

  const double lo_all = min_;
  const double hi_all = max_;
  const double target = q * static_cast<double>(count_);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (buckets_[i] == 0) continue;
    const double next = cum + static_cast<double>(buckets_[i]);
    if (next >= target) {
      const double lower = i == 0 ? lo_all : std::max(lo_all, bounds_[i - 1]);
      const double upper = i < bounds_.size() ? std::min(hi_all, bounds_[i]) : hi_all;
      const double frac =
          std::clamp((target - cum) / static_cast<double>(buckets_[i]), 0.0, 1.0);
      return std::clamp(lower + (upper - lower) * frac, lo_all, hi_all);
    }
    cum = next;
  }
  return hi_all;
}

void LogHistogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

Sampler::Sampler(std::size_t capacity) : capacity_(capacity) {
  IOTML_CHECK(capacity_ >= 1, "Sampler: capacity must be at least 1");
  ring_.reserve(std::min<std::size_t>(capacity_, 64));
}

void Sampler::record(double t_s, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(Sample{t_s, value});
  } else {
    ring_[next_] = Sample{t_s, value};
    next_ = (next_ + 1) % capacity_;
  }
  ++total_;
}

std::uint64_t Sampler::total() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

std::vector<Sample> Sampler::samples() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<Sample> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_ is the oldest slot once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % ring_.size()]);
    }
  }
  return out;
}

TimeSeriesStore::TimeSeriesStore(std::size_t capacity_per_series)
    : capacity_(capacity_per_series) {
  IOTML_CHECK(capacity_ >= 1, "TimeSeriesStore: capacity must be at least 1");
}

Sampler& TimeSeriesStore::series(const std::string& metric, const std::string& entity,
                                 const std::string& tier) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = series_[SeriesKey{metric, entity, tier}];
  if (!slot) slot = std::make_unique<Sampler>(capacity_);
  return *slot;
}

std::size_t TimeSeriesStore::series_count() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return series_.size();
}

std::uint64_t TimeSeriesStore::samples_total() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = 0;
  for (const auto& [key, sampler] : series_) total += sampler->total();
  return total;
}

void TimeSeriesStore::write_json(std::ostream& out) const {
  const std::lock_guard<std::mutex> lock(mu_);
  out << "{\n  \"capacity\": " << capacity_ << ",\n  \"series\": [";
  bool first = true;
  for (const auto& [key, sampler] : series_) {
    out << (first ? "" : ",") << "\n    {\"metric\": \"" << json_escape(key.metric)
        << "\", \"entity\": \"" << json_escape(key.entity) << "\", \"tier\": \""
        << json_escape(key.tier) << "\", \"total\": " << sampler->total()
        << ", \"samples\": [";
    const std::vector<Sample> samples = sampler->samples();
    for (std::size_t i = 0; i < samples.size(); ++i) {
      if (i > 0) out << ", ";
      out << "[" << json_number(samples[i].t_s) << ", " << json_number(samples[i].value) << "]";
    }
    out << "]}";
    first = false;
  }
  out << "\n  ]\n}\n";
}

std::string TimeSeriesStore::to_json() const {
  std::ostringstream out;
  write_json(out);
  return out.str();
}

void TimeSeriesStore::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  series_.clear();
}

}  // namespace iotml::obs
