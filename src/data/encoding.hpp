#pragma once

#include "data/dataset.hpp"

namespace iotml::data {

/// One-hot encode every categorical column into 0/1 numeric indicator
/// columns named "<col>=<category>"; numeric columns pass through unchanged.
/// A missing categorical cell yields missing indicators. Labels carry over.
///
/// This is the bridge from categorical IoT attributes to the kernel methods
/// (category *indices* are not metric; indicators are).
Dataset one_hot_encode(const Dataset& ds);

/// Standardize numeric columns in place to zero mean / unit variance using
/// statistics from `reference` (fit on train, apply to test). Column count
/// and types must match.
void standardize_like(Dataset& ds, const Dataset& reference);

}  // namespace iotml::data
