#include "data/encoding.hpp"

#include <cmath>

#include "util/error.hpp"

namespace iotml::data {

Dataset one_hot_encode(const Dataset& ds) {
  ds.validate();
  Dataset out;
  for (std::size_t f = 0; f < ds.num_columns(); ++f) {
    const Column& col = ds.column(f);
    if (col.type() == ColumnType::kNumeric) {
      Column& copy = out.add_numeric_column(col.name());
      for (std::size_t r = 0; r < col.size(); ++r) {
        if (col.is_missing(r)) {
          copy.push_missing();
        } else {
          copy.push_numeric(col.numeric(r));
        }
      }
      continue;
    }
    for (std::size_t c = 0; c < col.categories().size(); ++c) {
      Column& indicator = out.add_numeric_column(col.name() + "=" + col.categories()[c]);
      for (std::size_t r = 0; r < col.size(); ++r) {
        if (col.is_missing(r)) {
          indicator.push_missing();
        } else {
          indicator.push_numeric(col.category(r) == c ? 1.0 : 0.0);
        }
      }
    }
  }
  if (ds.has_labels()) out.set_labels(ds.labels());
  out.validate();
  return out;
}

void standardize_like(Dataset& ds, const Dataset& reference) {
  IOTML_CHECK(ds.num_columns() == reference.num_columns(),
              "standardize_like: column count mismatch");
  for (std::size_t f = 0; f < ds.num_columns(); ++f) {
    const Column& ref = reference.column(f);
    Column& col = ds.column(f);
    IOTML_CHECK(col.type() == ref.type(), "standardize_like: column type mismatch");
    if (ref.type() != ColumnType::kNumeric) continue;

    double sum = 0.0, sum2 = 0.0;
    std::size_t present = 0;
    for (std::size_t r = 0; r < ref.size(); ++r) {
      if (ref.is_missing(r)) continue;
      sum += ref.numeric(r);
      sum2 += ref.numeric(r) * ref.numeric(r);
      ++present;
    }
    if (present == 0) continue;
    const double mean = sum / static_cast<double>(present);
    const double var = sum2 / static_cast<double>(present) - mean * mean;
    const double std_dev = var > 1e-24 ? std::sqrt(var) : 1.0;
    for (std::size_t r = 0; r < col.size(); ++r) {
      if (!col.is_missing(r)) {
        col.set_numeric(r, (col.numeric(r) - mean) / std_dev);
      }
    }
  }
}

}  // namespace iotml::data
