#pragma once

#include <cstddef>
#include <vector>

#include "data/dataset.hpp"
#include "util/rng.hpp"

namespace iotml::data {

/// Specification of one *view* (facet) of a multi-view dataset — the natural
/// feature grouping the paper argues IoT data is endowed with (Section I):
/// features that come from one sensor/device and share statistical character.
struct ViewSpec {
  std::size_t dims = 2;       ///< number of features in the view
  double separation = 2.0;    ///< distance between class means along the view
  double noise = 1.0;         ///< within-class standard deviation
  bool informative = true;    ///< false: pure noise, carries no class signal
};

/// A dataset whose features carry a known facet structure.
struct FacetedData {
  Samples samples;
  /// views[v] lists the feature (column) indices of view v. The ground-truth
  /// partition of the feature set for partition-driven learning experiments.
  std::vector<std::vector<std::size_t>> views;
};

/// Binary-classification data with a faceted feature set (the paper's
/// person-identified-by-face+fingerprint+EEG+iris scenario, synthesized).
/// Each informative view places the two class means `separation` apart along
/// a random unit direction inside the view; features then receive isotropic
/// Gaussian noise. Non-informative views are noise-only. Labels are 0/1,
/// balanced.
///
/// NOTE: the signal directions are drawn fresh on every call, so two calls
/// produce two *different* concepts. To obtain matched train/test sets,
/// generate once and split rows (data::train_test_split + select_rows).
FacetedData make_faceted_gaussian(std::size_t n_samples,
                                  const std::vector<ViewSpec>& views, Rng& rng);

/// The exact 4-phone table from the paper's Section III:
///   ID | Battery Level | OS      | Available
///   1  | AVERAGE       | Android | N
///   2  | HIGH          | Android | Y
///   3  | AVERAGE       | iOS     | Y
///   4  | LOW           | Symbian | N
/// Columns: "battery", "os"; labels: Available (Y = 1, N = 0).
Dataset make_phone_fleet_paper();

/// A larger synthetic fleet in the same schema plus a "signal" column.
/// Ground truth: a phone is available when battery != LOW and os != Symbian
/// and signal != WEAK; each label is flipped with probability `label_noise`.
Dataset make_phone_fleet(std::size_t n, double label_noise, Rng& rng);

/// Two isotropic Gaussian blobs (one per class), `separation` apart.
Samples make_blobs(std::size_t n_samples, std::size_t dims, double separation,
                   double noise, Rng& rng);

/// 2-D XOR data: x uniform in [-1,1]^2, label = [x0 * x1 > 0], flipped with
/// probability `label_noise`. Not linearly separable — exercises kernels.
Samples make_xor(std::size_t n_samples, double label_noise, Rng& rng);

/// Concentric circles: class 0 at radius ~r0, class 1 at radius ~r1.
Samples make_circles(std::size_t n_samples, double r0, double r1, double noise, Rng& rng);

}  // namespace iotml::data
