#include "data/metrics.hpp"

#include <cmath>
#include <set>

#include "util/error.hpp"

namespace iotml::data {

double accuracy(const std::vector<int>& actual, const std::vector<int>& predicted) {
  IOTML_CHECK(actual.size() == predicted.size(), "accuracy: size mismatch");
  IOTML_CHECK(!actual.empty(), "accuracy: empty input");
  std::size_t hits = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] == predicted[i]) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(actual.size());
}

la::Matrix confusion_matrix(const std::vector<int>& actual,
                            const std::vector<int>& predicted,
                            std::size_t num_classes) {
  IOTML_CHECK(actual.size() == predicted.size(), "confusion_matrix: size mismatch");
  la::Matrix m(num_classes, num_classes);
  for (std::size_t i = 0; i < actual.size(); ++i) {
    IOTML_CHECK(actual[i] >= 0 && static_cast<std::size_t>(actual[i]) < num_classes,
                "confusion_matrix: actual label out of range");
    IOTML_CHECK(predicted[i] >= 0 && static_cast<std::size_t>(predicted[i]) < num_classes,
                "confusion_matrix: predicted label out of range");
    m(static_cast<std::size_t>(actual[i]), static_cast<std::size_t>(predicted[i])) += 1.0;
  }
  return m;
}

BinaryMetrics binary_metrics(const std::vector<int>& actual,
                             const std::vector<int>& predicted, int positive_class) {
  IOTML_CHECK(actual.size() == predicted.size(), "binary_metrics: size mismatch");
  BinaryMetrics m;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const bool a = actual[i] == positive_class;
    const bool p = predicted[i] == positive_class;
    if (a && p) ++m.true_positives;
    if (!a && p) ++m.false_positives;
    if (a && !p) ++m.false_negatives;
  }
  const double tp = static_cast<double>(m.true_positives);
  m.precision = (m.true_positives + m.false_positives) == 0
                    ? 0.0
                    : tp / static_cast<double>(m.true_positives + m.false_positives);
  m.recall = (m.true_positives + m.false_negatives) == 0
                 ? 0.0
                 : tp / static_cast<double>(m.true_positives + m.false_negatives);
  m.f1 = (m.precision + m.recall) == 0.0
             ? 0.0
             : 2.0 * m.precision * m.recall / (m.precision + m.recall);
  return m;
}

double macro_f1(const std::vector<int>& actual, const std::vector<int>& predicted) {
  std::set<int> classes(actual.begin(), actual.end());
  IOTML_CHECK(!classes.empty(), "macro_f1: empty input");
  double total = 0.0;
  for (int c : classes) total += binary_metrics(actual, predicted, c).f1;
  return total / static_cast<double>(classes.size());
}

double rmse(const std::vector<double>& actual, const std::vector<double>& predicted) {
  IOTML_CHECK(actual.size() == predicted.size(), "rmse: size mismatch");
  IOTML_CHECK(!actual.empty(), "rmse: empty input");
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = actual[i] - predicted[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(actual.size()));
}

double mae(const std::vector<double>& actual, const std::vector<double>& predicted) {
  IOTML_CHECK(actual.size() == predicted.size(), "mae: size mismatch");
  IOTML_CHECK(!actual.empty(), "mae: empty input");
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    acc += std::fabs(actual[i] - predicted[i]);
  }
  return acc / static_cast<double>(actual.size());
}

MeanStd mean_std(const std::vector<double>& values) {
  IOTML_CHECK(!values.empty(), "mean_std: empty input");
  MeanStd out;
  for (double v : values) out.mean += v;
  out.mean /= static_cast<double>(values.size());
  if (values.size() > 1) {
    double acc = 0.0;
    for (double v : values) acc += (v - out.mean) * (v - out.mean);
    out.stddev = std::sqrt(acc / static_cast<double>(values.size() - 1));
  }
  return out;
}

}  // namespace iotml::data
