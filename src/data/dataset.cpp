#include "data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "util/error.hpp"

namespace iotml::data {

Column::Column(std::string name, ColumnType type) : name_(std::move(name)), type_(type) {}

bool Column::is_missing(std::size_t row) const {
  IOTML_CHECK(row < values_.size(), "Column::is_missing: row out of range");
  return missing_[row];
}

void Column::set_missing(std::size_t row) {
  IOTML_CHECK(row < values_.size(), "Column::set_missing: row out of range");
  missing_[row] = true;
}

std::size_t Column::missing_count() const {
  return static_cast<std::size_t>(std::count(missing_.begin(), missing_.end(), true));
}

double Column::numeric(std::size_t row) const {
  IOTML_CHECK(row < values_.size(), "Column::numeric: row out of range");
  IOTML_CHECK(type_ == ColumnType::kNumeric, "Column::numeric: not a numeric column");
  IOTML_CHECK(!missing_[row], "Column::numeric: cell is missing");
  return values_[row];
}

void Column::push_numeric(double value) {
  IOTML_CHECK(type_ == ColumnType::kNumeric, "Column::push_numeric: not a numeric column");
  values_.push_back(value);
  missing_.push_back(false);
}

void Column::set_numeric(std::size_t row, double value) {
  IOTML_CHECK(row < values_.size(), "Column::set_numeric: row out of range");
  IOTML_CHECK(type_ == ColumnType::kNumeric, "Column::set_numeric: not a numeric column");
  values_[row] = value;
  missing_[row] = false;
}

std::size_t Column::category(std::size_t row) const {
  IOTML_CHECK(row < values_.size(), "Column::category: row out of range");
  IOTML_CHECK(type_ == ColumnType::kCategorical, "Column::category: not categorical");
  IOTML_CHECK(!missing_[row], "Column::category: cell is missing");
  return static_cast<std::size_t>(values_[row]);
}

const std::string& Column::category_label(std::size_t row) const {
  return categories_[category(row)];
}

std::size_t Column::intern(const std::string& label) {
  auto it = std::find(categories_.begin(), categories_.end(), label);
  if (it != categories_.end()) {
    return static_cast<std::size_t>(it - categories_.begin());
  }
  categories_.push_back(label);
  return categories_.size() - 1;
}

void Column::push_category(const std::string& label) {
  IOTML_CHECK(type_ == ColumnType::kCategorical, "Column::push_category: not categorical");
  values_.push_back(static_cast<double>(intern(label)));
  missing_.push_back(false);
}

void Column::set_category(std::size_t row, const std::string& label) {
  IOTML_CHECK(row < values_.size(), "Column::set_category: row out of range");
  IOTML_CHECK(type_ == ColumnType::kCategorical, "Column::set_category: not categorical");
  values_[row] = static_cast<double>(intern(label));
  missing_[row] = false;
}

void Column::push_missing() {
  values_.push_back(std::numeric_limits<double>::quiet_NaN());
  missing_.push_back(true);
}

// ---- Dataset ----------------------------------------------------------------

Column& Dataset::add_numeric_column(const std::string& name) {
  columns_.emplace_back(name, ColumnType::kNumeric);
  return columns_.back();
}

Column& Dataset::add_categorical_column(const std::string& name) {
  columns_.emplace_back(name, ColumnType::kCategorical);
  return columns_.back();
}

std::size_t Dataset::rows() const {
  if (columns_.empty()) return labels_.size();
  return columns_.front().size();
}

Column& Dataset::column(std::size_t i) {
  IOTML_CHECK(i < columns_.size(), "Dataset::column: index out of range");
  return columns_[i];
}

const Column& Dataset::column(std::size_t i) const {
  IOTML_CHECK(i < columns_.size(), "Dataset::column: index out of range");
  return columns_[i];
}

std::size_t Dataset::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name() == name) return i;
  }
  throw InvalidArgument("Dataset::column_index: no column named '" + name + "'");
}

void Dataset::set_labels(std::vector<int> labels) {
  for (int label : labels) {
    IOTML_CHECK(label >= 0, "Dataset::set_labels: labels must be non-negative");
  }
  labels_ = std::move(labels);
}

int Dataset::label(std::size_t row) const {
  IOTML_CHECK(row < labels_.size(), "Dataset::label: row out of range");
  return labels_[row];
}

std::size_t Dataset::num_classes() const {
  if (labels_.empty()) return 0;
  return static_cast<std::size_t>(*std::max_element(labels_.begin(), labels_.end())) + 1;
}

double Dataset::missing_rate() const {
  std::size_t cells = 0, missing = 0;
  for (const Column& c : columns_) {
    cells += c.size();
    missing += c.missing_count();
  }
  return cells == 0 ? 0.0 : static_cast<double>(missing) / static_cast<double>(cells);
}

void Dataset::validate() const {
  const std::size_t n = rows();
  for (const Column& c : columns_) {
    IOTML_CHECK(c.size() == n, "Dataset::validate: column '" + c.name() + "' length mismatch");
  }
  IOTML_CHECK(labels_.empty() || labels_.size() == n,
              "Dataset::validate: label length mismatch");
}

void Dataset::append_rows(const Dataset& other) {
  if (columns_.empty() && labels_.empty()) {
    *this = other;
    return;
  }
  IOTML_CHECK(other.num_columns() == num_columns(),
              "Dataset::append_rows: column count mismatch");
  IOTML_CHECK(other.has_labels() == has_labels(),
              "Dataset::append_rows: label presence mismatch");
  for (std::size_t c = 0; c < num_columns(); ++c) {
    const Column& src = other.columns_[c];
    Column& dst = columns_[c];
    IOTML_CHECK(src.name() == dst.name() && src.type() == dst.type(),
                "Dataset::append_rows: column '" + dst.name() + "' schema mismatch");
    for (std::size_t r = 0; r < src.size(); ++r) {
      if (src.is_missing(r)) {
        dst.push_missing();
      } else if (src.type() == ColumnType::kNumeric) {
        dst.push_numeric(src.numeric(r));
      } else {
        dst.push_category(src.category_label(r));
      }
    }
  }
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
}

Dataset Dataset::select_rows(const std::vector<std::size_t>& rows) const {
  Dataset out;
  for (const Column& c : columns_) {
    Column& nc = c.type() == ColumnType::kNumeric ? out.add_numeric_column(c.name())
                                                  : out.add_categorical_column(c.name());
    for (std::size_t r : rows) {
      IOTML_CHECK(r < c.size(), "Dataset::select_rows: row out of range");
      if (c.is_missing(r)) {
        nc.push_missing();
      } else if (c.type() == ColumnType::kNumeric) {
        nc.push_numeric(c.numeric(r));
      } else {
        nc.push_category(c.category_label(r));
      }
    }
  }
  if (has_labels()) {
    std::vector<int> new_labels;
    new_labels.reserve(rows.size());
    for (std::size_t r : rows) new_labels.push_back(label(r));
    out.set_labels(std::move(new_labels));
  }
  return out;
}

Dataset Dataset::select_columns(const std::vector<std::size_t>& cols) const {
  Dataset out;
  for (std::size_t c : cols) {
    const Column& src = column(c);
    Column& nc = src.type() == ColumnType::kNumeric ? out.add_numeric_column(src.name())
                                                    : out.add_categorical_column(src.name());
    for (std::size_t r = 0; r < src.size(); ++r) {
      if (src.is_missing(r)) {
        nc.push_missing();
      } else if (src.type() == ColumnType::kNumeric) {
        nc.push_numeric(src.numeric(r));
      } else {
        nc.push_category(src.category_label(r));
      }
    }
  }
  out.labels_ = labels_;
  return out;
}

// ---- Samples ----------------------------------------------------------------

Samples to_samples(const Dataset& ds, const std::vector<std::size_t>& feature_cols,
                   MissingPolicy policy) {
  ds.validate();
  const std::size_t n = ds.rows();
  Samples s;
  s.x = la::Matrix(n, feature_cols.size());
  for (std::size_t j = 0; j < feature_cols.size(); ++j) {
    const Column& c = ds.column(feature_cols[j]);
    double mean = 0.0;
    if (policy == MissingPolicy::kColumnMean) {
      std::size_t present = 0;
      for (std::size_t r = 0; r < n; ++r) {
        if (!c.is_missing(r)) {
          mean += c.raw()[r];
          ++present;
        }
      }
      mean = present > 0 ? mean / static_cast<double>(present) : 0.0;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (c.is_missing(r)) {
        switch (policy) {
          case MissingPolicy::kThrow:
            throw InvalidArgument("to_samples: missing cell in column '" + c.name() +
                                  "' (impute first or choose another MissingPolicy)");
          case MissingPolicy::kNan:
            s.x(r, j) = std::numeric_limits<double>::quiet_NaN();
            break;
          case MissingPolicy::kColumnMean:
            s.x(r, j) = mean;
            break;
        }
      } else {
        s.x(r, j) = c.raw()[r];
      }
    }
  }
  s.y = ds.labels();
  return s;
}

Samples to_samples(const Dataset& ds, MissingPolicy policy) {
  std::vector<std::size_t> cols(ds.num_columns());
  std::iota(cols.begin(), cols.end(), std::size_t{0});
  return to_samples(ds, cols, policy);
}

Dataset samples_to_dataset(const Samples& s) {
  Dataset out;
  for (std::size_t c = 0; c < s.dim(); ++c) {
    Column& col = out.add_numeric_column("f" + std::to_string(c));
    for (std::size_t r = 0; r < s.size(); ++r) col.push_numeric(s.x(r, c));
  }
  if (!s.y.empty()) out.set_labels(s.y);
  return out;
}

Samples select_rows(const Samples& s, const std::vector<std::size_t>& rows) {
  Samples out;
  out.x = la::Matrix(rows.size(), s.x.cols());
  out.y.reserve(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    IOTML_CHECK(rows[i] < s.x.rows(), "select_rows: row out of range");
    for (std::size_t j = 0; j < s.x.cols(); ++j) out.x(i, j) = s.x(rows[i], j);
    if (!s.y.empty()) out.y.push_back(s.y[rows[i]]);
  }
  return out;
}

}  // namespace iotml::data
