#include "data/synthetic.hpp"

#include <cmath>
#include <numbers>

#include "la/matrix.hpp"
#include "util/error.hpp"

namespace iotml::data {

FacetedData make_faceted_gaussian(std::size_t n_samples,
                                  const std::vector<ViewSpec>& views, Rng& rng) {
  IOTML_CHECK(n_samples >= 2, "make_faceted_gaussian: need at least 2 samples");
  IOTML_CHECK(!views.empty(), "make_faceted_gaussian: need at least one view");

  std::size_t total_dims = 0;
  for (const ViewSpec& v : views) {
    IOTML_CHECK(v.dims >= 1, "make_faceted_gaussian: view must have >= 1 dim");
    IOTML_CHECK(v.noise > 0.0, "make_faceted_gaussian: noise must be positive");
    total_dims += v.dims;
  }

  // Random unit direction per informative view; the class means sit at
  // +/- separation/2 along it.
  std::vector<std::vector<double>> directions;
  for (const ViewSpec& v : views) {
    std::vector<double> dir(v.dims, 0.0);
    if (v.informative) {
      double norm = 0.0;
      do {
        norm = 0.0;
        for (double& d : dir) {
          d = rng.normal();
          norm += d * d;
        }
        norm = std::sqrt(norm);
      } while (norm < 1e-9);
      for (double& d : dir) d /= norm;
    }
    directions.push_back(std::move(dir));
  }

  FacetedData out;
  out.samples.x = la::Matrix(n_samples, total_dims);
  out.samples.y.resize(n_samples);

  std::size_t offset = 0;
  for (std::size_t v = 0; v < views.size(); ++v) {
    out.views.emplace_back();
    for (std::size_t d = 0; d < views[v].dims; ++d) {
      out.views.back().push_back(offset + d);
    }
    offset += views[v].dims;
  }

  for (std::size_t i = 0; i < n_samples; ++i) {
    const int label = static_cast<int>(i % 2);  // balanced classes
    out.samples.y[i] = label;
    const double sign = label == 1 ? 1.0 : -1.0;
    for (std::size_t v = 0; v < views.size(); ++v) {
      const ViewSpec& spec = views[v];
      for (std::size_t d = 0; d < spec.dims; ++d) {
        const double mean =
            spec.informative ? sign * 0.5 * spec.separation * directions[v][d] : 0.0;
        out.samples.x(i, out.views[v][d]) = rng.normal(mean, spec.noise);
      }
    }
  }
  return out;
}

Dataset make_phone_fleet_paper() {
  Dataset ds;
  Column& battery = ds.add_categorical_column("battery");
  Column& os = ds.add_categorical_column("os");
  battery.push_category("AVERAGE");
  battery.push_category("HIGH");
  battery.push_category("AVERAGE");
  battery.push_category("LOW");
  os.push_category("Android");
  os.push_category("Android");
  os.push_category("iOS");
  os.push_category("Symbian");
  ds.set_labels({0, 1, 1, 0});  // Available: N Y Y N
  return ds;
}

Dataset make_phone_fleet(std::size_t n, double label_noise, Rng& rng) {
  IOTML_CHECK(n >= 1, "make_phone_fleet: need at least 1 row");
  IOTML_CHECK(label_noise >= 0.0 && label_noise <= 1.0,
              "make_phone_fleet: label_noise must be in [0, 1]");
  const std::vector<std::string> batteries{"LOW", "AVERAGE", "HIGH"};
  const std::vector<std::string> systems{"Android", "iOS", "Symbian"};
  const std::vector<std::string> signals{"WEAK", "GOOD", "STRONG"};

  Dataset ds;
  Column& battery = ds.add_categorical_column("battery");
  Column& os = ds.add_categorical_column("os");
  Column& signal = ds.add_categorical_column("signal");
  std::vector<int> labels;
  labels.reserve(n);

  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t b = rng.index(batteries.size());
    const std::size_t o = rng.index(systems.size());
    const std::size_t s = rng.index(signals.size());
    battery.push_category(batteries[b]);
    os.push_category(systems[o]);
    signal.push_category(signals[s]);
    int available = (batteries[b] != "LOW" && systems[o] != "Symbian" &&
                     signals[s] != "WEAK")
                        ? 1
                        : 0;
    if (rng.bernoulli(label_noise)) available = 1 - available;
    labels.push_back(available);
  }
  ds.set_labels(std::move(labels));
  return ds;
}

Samples make_blobs(std::size_t n_samples, std::size_t dims, double separation,
                   double noise, Rng& rng) {
  IOTML_CHECK(n_samples >= 2 && dims >= 1, "make_blobs: bad shape");
  Samples s;
  s.x = la::Matrix(n_samples, dims);
  s.y.resize(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    const int label = static_cast<int>(i % 2);
    s.y[i] = label;
    const double center = label == 1 ? separation / 2.0 : -separation / 2.0;
    for (std::size_t d = 0; d < dims; ++d) {
      // Only the first coordinate separates the blobs; others are noise.
      s.x(i, d) = rng.normal(d == 0 ? center : 0.0, noise);
    }
  }
  return s;
}

Samples make_xor(std::size_t n_samples, double label_noise, Rng& rng) {
  IOTML_CHECK(n_samples >= 2, "make_xor: need at least 2 samples");
  Samples s;
  s.x = la::Matrix(n_samples, 2);
  s.y.resize(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    double a = 0.0, b = 0.0;
    // Keep points away from the axes so the concept is well defined.
    do {
      a = rng.uniform(-1.0, 1.0);
      b = rng.uniform(-1.0, 1.0);
    } while (std::fabs(a) < 0.05 || std::fabs(b) < 0.05);
    s.x(i, 0) = a;
    s.x(i, 1) = b;
    int label = (a * b > 0.0) ? 1 : 0;
    if (rng.bernoulli(label_noise)) label = 1 - label;
    s.y[i] = label;
  }
  return s;
}

Samples make_circles(std::size_t n_samples, double r0, double r1, double noise,
                     Rng& rng) {
  IOTML_CHECK(n_samples >= 2, "make_circles: need at least 2 samples");
  IOTML_CHECK(r0 > 0.0 && r1 > 0.0, "make_circles: radii must be positive");
  Samples s;
  s.x = la::Matrix(n_samples, 2);
  s.y.resize(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    const int label = static_cast<int>(i % 2);
    s.y[i] = label;
    const double r = (label == 0 ? r0 : r1) + rng.normal(0.0, noise);
    const double theta = rng.uniform(0.0, 2.0 * std::numbers::pi);
    s.x(i, 0) = r * std::cos(theta);
    s.x(i, 1) = r * std::sin(theta);
  }
  return s;
}

}  // namespace iotml::data
