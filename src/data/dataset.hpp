#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "la/matrix.hpp"

namespace iotml::data {

/// Kind of a dataset column. IoT feature sets mix numeric sensor readings
/// with categorical device attributes (the paper's Section III table has
/// Battery Level / OS / Available, all categorical).
enum class ColumnType { kNumeric, kCategorical };

/// One feature column with per-cell missingness. Categorical values are
/// stored as indices into `categories`; numeric values as raw doubles.
class Column {
 public:
  Column(std::string name, ColumnType type);

  const std::string& name() const noexcept { return name_; }
  ColumnType type() const noexcept { return type_; }
  std::size_t size() const noexcept { return values_.size(); }

  bool is_missing(std::size_t row) const;
  void set_missing(std::size_t row);
  std::size_t missing_count() const;

  /// Numeric access (valid for kNumeric columns and present cells).
  double numeric(std::size_t row) const;
  void push_numeric(double value);
  void set_numeric(std::size_t row, double value);

  /// Categorical access: index + label. push_category interns the label.
  std::size_t category(std::size_t row) const;
  const std::string& category_label(std::size_t row) const;
  void push_category(const std::string& label);
  void set_category(std::size_t row, const std::string& label);
  const std::vector<std::string>& categories() const noexcept { return categories_; }

  /// Intern a label into the category dictionary (idempotent), returning
  /// its index. Public so wire codecs can pre-seed the dictionary in a
  /// pinned order and category codes replay exactly across encode/decode.
  std::size_t intern(const std::string& label);

  /// Append a missing cell.
  void push_missing();

  /// Raw storage (numeric value or category index; unspecified when missing).
  const std::vector<double>& raw() const noexcept { return values_; }

 private:
  std::string name_;
  ColumnType type_;
  std::vector<double> values_;
  std::vector<bool> missing_;
  std::vector<std::string> categories_;
};

/// A column-typed dataset with optional integer class labels.
///
/// This is the rich representation used by the preprocessing pipeline, rough
/// sets and decision trees; kernel methods consume the dense `Samples` view
/// produced by `to_samples()`.
class Dataset {
 public:
  Dataset() = default;

  /// Add a column; all columns must stay the same length (checked lazily by
  /// rows(), strictly by validate()). The returned reference stays valid as
  /// more columns are added (columns live in a deque).
  Column& add_numeric_column(const std::string& name);
  Column& add_categorical_column(const std::string& name);

  std::size_t num_columns() const noexcept { return columns_.size(); }
  std::size_t rows() const;

  Column& column(std::size_t i);
  const Column& column(std::size_t i) const;
  /// Lookup by name; throws InvalidArgument if absent.
  std::size_t column_index(const std::string& name) const;

  bool has_labels() const noexcept { return !labels_.empty(); }
  const std::vector<int>& labels() const noexcept { return labels_; }
  void set_labels(std::vector<int> labels);
  int label(std::size_t row) const;

  /// Number of distinct labels (max label + 1); 0 when unlabeled.
  std::size_t num_classes() const;

  /// Total missing cells / total cells.
  double missing_rate() const;

  /// Throws InvalidArgument if column lengths or label length disagree.
  void validate() const;

  /// Append every row of `other`, which must share this dataset's schema
  /// (column names, types and order) and agree on label presence; throws
  /// InvalidArgument on any mismatch. Appending to a default-constructed
  /// dataset copies `other` wholesale. This is how the fleet simulator's
  /// edge and core nodes accumulate records arriving from many sources.
  void append_rows(const Dataset& other);

  /// Extract rows by index into a new dataset (labels follow when present).
  Dataset select_rows(const std::vector<std::size_t>& rows) const;

  /// Extract a subset of columns (labels follow when present).
  Dataset select_columns(const std::vector<std::size_t>& cols) const;

 private:
  std::deque<Column> columns_;
  std::vector<int> labels_;
};

/// Dense numeric view for kernel methods and linear models: rows = samples.
struct Samples {
  la::Matrix x;
  std::vector<int> y;

  std::size_t size() const noexcept { return x.rows(); }
  std::size_t dim() const noexcept { return x.cols(); }
};

/// Policy for materializing missing cells into a dense matrix.
enum class MissingPolicy {
  kThrow,      ///< refuse: caller must have imputed already
  kNan,        ///< emit quiet NaN (caller handles)
  kColumnMean  ///< substitute the column mean of present cells
};

/// Convert (a subset of columns of) a dataset into dense samples. Categorical
/// columns are emitted as their category index (use one-hot encoding upstream
/// when that is inappropriate).
Samples to_samples(const Dataset& ds, const std::vector<std::size_t>& feature_cols,
                   MissingPolicy policy = MissingPolicy::kThrow);

/// All-columns convenience overload.
Samples to_samples(const Dataset& ds, MissingPolicy policy = MissingPolicy::kThrow);

/// Select rows of a Samples by index.
Samples select_rows(const Samples& s, const std::vector<std::size_t>& rows);

/// Wrap dense samples back into a Dataset (numeric columns "f0", "f1", ...;
/// labels copied when present). Bridge from kernel-side code to the
/// Dataset-based learners.
Dataset samples_to_dataset(const Samples& s);

}  // namespace iotml::data
