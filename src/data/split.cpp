#include "data/split.hpp"

#include <algorithm>
#include <map>

#include "util/error.hpp"

namespace iotml::data {

TrainTestIndices train_test_split(std::size_t n, double test_fraction, Rng& rng) {
  IOTML_CHECK(n >= 2, "train_test_split: need at least 2 rows");
  IOTML_CHECK(test_fraction > 0.0 && test_fraction < 1.0,
              "train_test_split: test_fraction must be in (0, 1)");
  auto order = rng.permutation(n);
  std::size_t n_test = static_cast<std::size_t>(static_cast<double>(n) * test_fraction);
  n_test = std::clamp<std::size_t>(n_test, 1, n - 1);
  TrainTestIndices out;
  out.test.assign(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n_test));
  out.train.assign(order.begin() + static_cast<std::ptrdiff_t>(n_test), order.end());
  return out;
}

TrainTestIndices stratified_split(const std::vector<int>& labels, double test_fraction,
                                  Rng& rng) {
  IOTML_CHECK(labels.size() >= 2, "stratified_split: need at least 2 rows");
  IOTML_CHECK(test_fraction > 0.0 && test_fraction < 1.0,
              "stratified_split: test_fraction must be in (0, 1)");
  std::map<int, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < labels.size(); ++i) by_class[labels[i]].push_back(i);

  TrainTestIndices out;
  for (auto& [label, members] : by_class) {
    rng.shuffle(members);
    std::size_t n_test =
        static_cast<std::size_t>(static_cast<double>(members.size()) * test_fraction);
    if (members.size() >= 2) n_test = std::clamp<std::size_t>(n_test, 1, members.size() - 1);
    for (std::size_t i = 0; i < members.size(); ++i) {
      (i < n_test ? out.test : out.train).push_back(members[i]);
    }
  }
  rng.shuffle(out.train);
  rng.shuffle(out.test);
  return out;
}

KFold::KFold(std::size_t n, std::size_t k, Rng& rng) : k_(k) {
  IOTML_CHECK(k >= 2, "KFold: k must be >= 2");
  IOTML_CHECK(n >= k, "KFold: need at least k rows");
  order_ = rng.permutation(n);
  fold_of_.resize(n);
  for (std::size_t i = 0; i < n; ++i) fold_of_[i] = i % k;
}

std::vector<std::size_t> KFold::test_indices(std::size_t fold) const {
  IOTML_CHECK(fold < k_, "KFold::test_indices: fold out of range");
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (fold_of_[i] == fold) out.push_back(order_[i]);
  }
  return out;
}

std::vector<std::size_t> KFold::train_indices(std::size_t fold) const {
  IOTML_CHECK(fold < k_, "KFold::train_indices: fold out of range");
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    if (fold_of_[i] != fold) out.push_back(order_[i]);
  }
  return out;
}

}  // namespace iotml::data
