#pragma once

#include <iosfwd>
#include <string>

#include "data/dataset.hpp"

namespace iotml::data {

/// CSV serialization for Dataset. Missing cells are written as "?"; a label
/// column named `label_column` is appended when the dataset is labeled.
/// Columns are written with a header row.
void write_csv(const Dataset& ds, std::ostream& out,
               const std::string& label_column = "label");
void write_csv_file(const Dataset& ds, const std::string& path,
                    const std::string& label_column = "label");

/// Parse a CSV with a header row. A column is inferred numeric when every
/// present cell parses as a double; otherwise categorical. "?" and empty
/// cells are missing. If `label_column` names a column, it is consumed as
/// integer class labels instead of a feature.
Dataset read_csv(std::istream& in, const std::string& label_column = "label");
Dataset read_csv_file(const std::string& path, const std::string& label_column = "label");

}  // namespace iotml::data
