#include "data/csv.hpp"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace iotml::data {

namespace {

bool parse_double(const std::string& text, double& value) {
  const char* begin = text.data();
  const char* end = begin + text.size();
  auto [ptr, ec] = std::from_chars(begin, end, value);
  return ec == std::errc{} && ptr == end;
}

std::string cell_text(const Column& c, std::size_t row) {
  if (c.is_missing(row)) return "?";
  if (c.type() == ColumnType::kNumeric) return format_double(c.numeric(row), 10);
  return c.category_label(row);
}

}  // namespace

void write_csv(const Dataset& ds, std::ostream& out, const std::string& label_column) {
  ds.validate();
  std::vector<std::string> header;
  for (std::size_t c = 0; c < ds.num_columns(); ++c) header.push_back(ds.column(c).name());
  if (ds.has_labels()) header.push_back(label_column);
  out << join(header, ",") << '\n';

  for (std::size_t r = 0; r < ds.rows(); ++r) {
    std::vector<std::string> cells;
    for (std::size_t c = 0; c < ds.num_columns(); ++c) {
      cells.push_back(cell_text(ds.column(c), r));
    }
    if (ds.has_labels()) cells.push_back(std::to_string(ds.label(r)));
    out << join(cells, ",") << '\n';
  }
}

void write_csv_file(const Dataset& ds, const std::string& path,
                    const std::string& label_column) {
  std::ofstream out(path);
  IOTML_CHECK(out.good(), "write_csv_file: cannot open '" + path + "'");
  write_csv(ds, out, label_column);
}

Dataset read_csv(std::istream& in, const std::string& label_column) {
  std::string line;
  IOTML_CHECK(static_cast<bool>(std::getline(in, line)), "read_csv: empty input");
  const std::vector<std::string> header = split(trim(line), ',');
  IOTML_CHECK(!header.empty(), "read_csv: empty header");

  std::vector<std::vector<std::string>> cells(header.size());
  while (std::getline(in, line)) {
    const std::string trimmed = trim(line);
    if (trimmed.empty()) continue;
    const std::vector<std::string> row = split(trimmed, ',');
    IOTML_CHECK(row.size() == header.size(), "read_csv: ragged row");
    for (std::size_t c = 0; c < row.size(); ++c) cells[c].push_back(trim(row[c]));
  }

  auto is_missing_text = [](const std::string& t) { return t.empty() || t == "?"; };

  Dataset ds;
  std::vector<int> labels;
  for (std::size_t c = 0; c < header.size(); ++c) {
    if (header[c] == label_column) {
      for (const std::string& t : cells[c]) {
        double v = 0.0;
        IOTML_CHECK(parse_double(t, v), "read_csv: non-integer label '" + t + "'");
        labels.push_back(static_cast<int>(v));
      }
      continue;
    }
    bool numeric = true;
    for (const std::string& t : cells[c]) {
      double v = 0.0;
      if (!is_missing_text(t) && !parse_double(t, v)) {
        numeric = false;
        break;
      }
    }
    Column& col = numeric ? ds.add_numeric_column(header[c])
                          : ds.add_categorical_column(header[c]);
    for (const std::string& t : cells[c]) {
      if (is_missing_text(t)) {
        col.push_missing();
      } else if (numeric) {
        double v = 0.0;
        parse_double(t, v);
        col.push_numeric(v);
      } else {
        col.push_category(t);
      }
    }
  }
  if (!labels.empty()) ds.set_labels(std::move(labels));
  ds.validate();
  return ds;
}

Dataset read_csv_file(const std::string& path, const std::string& label_column) {
  std::ifstream in(path);
  IOTML_CHECK(in.good(), "read_csv_file: cannot open '" + path + "'");
  return read_csv(in, label_column);
}

}  // namespace iotml::data
