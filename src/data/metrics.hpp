#pragma once

#include <cstddef>
#include <vector>

#include "la/matrix.hpp"

namespace iotml::data {

/// Fraction of positions where predicted == actual.
double accuracy(const std::vector<int>& actual, const std::vector<int>& predicted);

/// Confusion matrix with `num_classes` classes: entry (a, p) counts rows with
/// actual class a predicted as p.
la::Matrix confusion_matrix(const std::vector<int>& actual,
                            const std::vector<int>& predicted,
                            std::size_t num_classes);

/// Per-class metrics for one class treated as "positive".
struct BinaryMetrics {
  double precision = 0.0;
  double recall = 0.0;
  double f1 = 0.0;
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t false_negatives = 0;
};

BinaryMetrics binary_metrics(const std::vector<int>& actual,
                             const std::vector<int>& predicted, int positive_class);

/// Macro-averaged F1 over all classes present in `actual`.
double macro_f1(const std::vector<int>& actual, const std::vector<int>& predicted);

/// Root-mean-square error between two real-valued vectors.
double rmse(const std::vector<double>& actual, const std::vector<double>& predicted);

/// Mean absolute error.
double mae(const std::vector<double>& actual, const std::vector<double>& predicted);

/// Mean and sample standard deviation of a value list (for sweep reporting).
struct MeanStd {
  double mean = 0.0;
  double stddev = 0.0;
};
MeanStd mean_std(const std::vector<double>& values);

}  // namespace iotml::data
