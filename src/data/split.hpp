#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace iotml::data {

/// Index split into train and test.
struct TrainTestIndices {
  std::vector<std::size_t> train;
  std::vector<std::size_t> test;
};

/// Random shuffle split: `test_fraction` of rows go to test.
TrainTestIndices train_test_split(std::size_t n, double test_fraction, Rng& rng);

/// Stratified split: preserves class proportions per label.
TrainTestIndices stratified_split(const std::vector<int>& labels, double test_fraction,
                                  Rng& rng);

/// k-fold cross validation index generator.
class KFold {
 public:
  KFold(std::size_t n, std::size_t k, Rng& rng);

  std::size_t num_folds() const noexcept { return k_; }

  /// Held-out indices of fold `fold`.
  std::vector<std::size_t> test_indices(std::size_t fold) const;

  /// All indices not in fold `fold`.
  std::vector<std::size_t> train_indices(std::size_t fold) const;

 private:
  std::size_t k_;
  std::vector<std::size_t> order_;
  std::vector<std::size_t> fold_of_;  // position -> fold
};

}  // namespace iotml::data
