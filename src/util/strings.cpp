#include "util/strings.hpp"

#include <cctype>
#include <iomanip>
#include <sstream>

namespace iotml {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == sep) {
      out.push_back(current);
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  out.push_back(current);
  return out;
}

std::string join(const std::vector<std::string>& pieces, const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string trim(const std::string& text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string format_double(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::ostringstream os;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << "| " << std::left << std::setw(static_cast<int>(widths[c])) << cell << " ";
    }
    os << "|\n";
    return os.str();
  };
  std::string sep = "+";
  for (std::size_t w : widths) sep += std::string(w + 2, '-') + "+";
  sep += "\n";

  std::string out = sep + render_row(header) + sep;
  for (const auto& row : rows) out += render_row(row);
  out += sep;
  return out;
}

}  // namespace iotml
