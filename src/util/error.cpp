#include "util/error.hpp"

#include <sstream>

namespace iotml::detail {

void throw_check_failed(const char* expr, const char* file, int line,
                        const std::string& msg) {
  std::ostringstream os;
  os << msg << " (check `" << expr << "` failed at " << file << ":" << line << ")";
  throw InvalidArgument(os.str());
}

}  // namespace iotml::detail
