#include "util/error.hpp"

#include <sstream>

namespace iotml::detail {

namespace {

std::string format_check_message(const char* expr, const char* file, int line,
                                 const std::string& msg) {
  std::ostringstream os;
  os << msg << " (check `" << expr << "` failed at " << file << ":" << line << ")";
  return os.str();
}

}  // namespace

void throw_check_failed(const char* expr, const char* file, int line,
                        const std::string& msg) {
  throw InvalidArgument(format_check_message(expr, file, line, msg));
}

void throw_internal_check_failed(const char* expr, const char* file, int line,
                                 const std::string& msg) {
  throw InternalError(format_check_message(expr, file, line, msg));
}

}  // namespace iotml::detail
