#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <type_traits>
#include <vector>

#include "util/error.hpp"

namespace iotml::util {

/// The one sanctioned place for byte-level narrowing in wire serialization
/// (invariant lint rule R7 bans reinterpret_cast everywhere and unchecked
/// narrow casts in serialization code outside this file). Every multi-byte
/// value is written little-endian with explicit shifts, so the encoding is
/// identical on every architecture, compiler and sanitizer preset — the
/// deploy-artifact, ota-patch and tdf-frame golden bytes are all pinned in
/// tests/golden/ against this writer.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i8(std::int8_t v);
  void i16(std::int16_t v);
  void f32(float v);
  void f64(double v);

  /// u32 length prefix + raw UTF-8 bytes.
  void str(const std::string& s);

  /// LEB128 varint: 7 value bits per byte, low bits first, high bit set on
  /// every byte but the last. Small magnitudes cost one byte; a full
  /// 64-bit value costs ten. The telemetry codec's workhorse.
  void varint_u64(std::uint64_t v);

  /// ZigZag-mapped signed varint: 0, -1, 1, -2, ... -> 0, 1, 2, 3, ...,
  /// so small deltas of either sign stay one byte.
  void varint_i64(std::int64_t v);

  std::size_t size() const noexcept { return bytes_.size(); }
  const std::vector<std::uint8_t>& bytes() const noexcept { return bytes_; }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

/// Bounds-checked little-endian reader over an encoded artifact or frame.
/// Every read past the end throws InvalidArgument (a truncated or corrupt
/// buffer must never crash a device), so decode failures are catchable
/// library errors.
class ByteReader {
 public:
  ByteReader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {
    IOTML_CHECK(data != nullptr || size == 0, "ByteReader: null data with nonzero size");
  }
  explicit ByteReader(const std::vector<std::uint8_t>& bytes)
      : ByteReader(bytes.data(), bytes.size()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int8_t i8();
  std::int16_t i16();
  float f32();
  double f64();
  std::string str();

  /// LEB128 varint; throws InvalidArgument on truncation or a value wider
  /// than 64 bits (more than ten continuation bytes).
  std::uint64_t varint_u64();
  std::int64_t varint_i64();

  std::size_t position() const noexcept { return pos_; }
  std::size_t remaining() const noexcept { return size_ - pos_; }
  bool done() const noexcept { return pos_ == size_; }

 private:
  void need(std::size_t n) const;

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// Byte view of a uint8-backed enum for encoding. Lossless by construction;
/// lives here so rule R7 can ban bare narrowing static_casts in the rest of
/// the serialization code.
template <typename E>
constexpr std::uint8_t enum_u8(E e) noexcept {
  static_assert(std::is_enum_v<E> && sizeof(E) == 1);
  return static_cast<std::uint8_t>(e);  // codec-sanctioned
}

/// Checked narrowing for wire fields: throws InvalidArgument when the value
/// does not fit, instead of silently wrapping. Serialization code outside
/// this header must use these rather than bare static_casts (R7).
std::uint8_t narrow_u8(std::size_t v, const char* what);
std::uint16_t narrow_u16(std::size_t v, const char* what);
std::uint32_t narrow_u32(std::size_t v, const char* what);
std::int8_t narrow_i8(long long v, const char* what);
std::int16_t narrow_i16(long long v, const char* what);

/// FNV-1a over a byte range — the trailer checksum of every wire format in
/// the tree. Delegates to the shared iotml::fnv1a32 (src/util/fnv.hpp), the
/// one implementation the net payload checksum and the ota patch codec also
/// use.
std::uint32_t fnv1a(const std::uint8_t* data, std::size_t size);

}  // namespace iotml::util
