#pragma once

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "util/error.hpp"

namespace iotml {

/// Deterministic, seedable random source used throughout the library.
///
/// Every stochastic component in iotml takes an `Rng&` (or a seed) instead of
/// touching global state, so experiments are reproducible run-to-run. The
/// engine is mt19937_64; helper draws mirror the <random> distributions but
/// keep the call sites terse.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 42) : engine_(seed) {}

  /// Raw engine access for interoperating with <random> distributions.
  std::mt19937_64& engine() noexcept { return engine_; }

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive). Throws InvalidArgument if lo > hi.
  int uniform_int(int lo, int hi) {
    IOTML_CHECK(lo <= hi, "Rng::uniform_int: lo > hi");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  /// Uniform size_t index in [0, n). Throws InvalidArgument if n == 0.
  std::size_t index(std::size_t n) {
    IOTML_CHECK(n > 0, "Rng::index: n == 0");
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(engine_);
  }

  /// Normal draw.
  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) { return std::bernoulli_distribution(p)(engine_); }

  /// Exponential draw with given rate.
  double exponential(double rate) {
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Draw an index from an unnormalized non-negative weight vector.
  std::size_t categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  /// A random permutation of [0, n).
  std::vector<std::size_t> permutation(std::size_t n);

  /// Sample k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

  /// Derive an independent child generator (for parallel or per-component
  /// streams) without correlating with this one.
  Rng split() { return Rng(engine_()); }

 private:
  std::mt19937_64 engine_;
};

}  // namespace iotml
