#pragma once

#include <string>
#include <vector>

namespace iotml {

/// Split `text` on `sep`, keeping empty fields (CSV semantics).
std::vector<std::string> split(const std::string& text, char sep);

/// Join pieces with a separator.
std::string join(const std::vector<std::string>& pieces, const std::string& sep);

/// Strip ASCII whitespace from both ends.
std::string trim(const std::string& text);

/// Format a double with fixed precision, trimming to a compact form.
std::string format_double(double value, int precision = 4);

/// Render a simple fixed-width text table (used by bench harnesses to print
/// paper-style tables). Column widths are derived from content.
std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows);

}  // namespace iotml
