#pragma once

#include <cstddef>
#include <cstdint>

namespace iotml {

/// FNV-1a, the repo's one non-cryptographic integrity hash. Three call sites
/// share this header so their constants can never drift apart: the
/// net::Message payload checksum (64-bit, word-fed), the deploy artifact
/// trailer (32-bit over the encoded bytes) and the ota patch codec (32-bit
/// per chunk and per image). It catches truncation and bit rot on the
/// simulated wire; it is not a defense against an adversary.

inline constexpr std::uint32_t kFnv32Basis = 0x811C9DC5U;
inline constexpr std::uint32_t kFnv32Prime = 0x01000193U;
inline constexpr std::uint64_t kFnv64Basis = 1469598103934665603ULL;
inline constexpr std::uint64_t kFnv64Prime = 1099511628211ULL;

/// Fold one byte into a running 32-bit FNV-1a state.
inline constexpr std::uint32_t fnv1a32_byte(std::uint32_t h, std::uint8_t b) {
  return (h ^ b) * kFnv32Prime;
}

/// Fold one byte into a running 64-bit FNV-1a state.
inline constexpr std::uint64_t fnv1a64_byte(std::uint64_t h, std::uint8_t b) {
  return (h ^ b) * kFnv64Prime;
}

/// One-shot 32-bit FNV-1a over a byte range. Hash of the empty range is the
/// offset basis — the ota codec uses that as the "no base image" checksum.
inline constexpr std::uint32_t fnv1a32(const std::uint8_t* data, std::size_t size) {
  std::uint32_t h = kFnv32Basis;
  for (std::size_t i = 0; i < size; ++i) h = fnv1a32_byte(h, data[i]);
  return h;
}

/// One-shot 64-bit FNV-1a over a byte range.
inline constexpr std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t size) {
  std::uint64_t h = kFnv64Basis;
  for (std::size_t i = 0; i < size; ++i) h = fnv1a64_byte(h, data[i]);
  return h;
}

/// Fold a 64-bit word into a running 64-bit state, little-endian bytewise —
/// the feeding order net::payload_checksum has always used, kept stable so
/// checksums of identical payloads replay across PRs.
inline constexpr std::uint64_t fnv1a64_word(std::uint64_t h, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    h = fnv1a64_byte(h, static_cast<std::uint8_t>((v >> shift) & 0xFFU));
  }
  return h;
}

}  // namespace iotml
