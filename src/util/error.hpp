#pragma once

#include <stdexcept>
#include <string>

namespace iotml {

/// Base class for all iotml exceptions, so callers can catch library errors
/// distinctly from std errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A caller violated a documented precondition (bad shape, empty input, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// A numeric routine failed to converge or met a singular system.
class NumericError : public Error {
 public:
  explicit NumericError(const std::string& what) : Error(what) {}
};

/// Internal invariant violated — indicates a library bug, not caller misuse.
class InternalError : public Error {
 public:
  explicit InternalError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failed(const char* expr, const char* file, int line,
                                     const std::string& msg);
[[noreturn]] void throw_internal_check_failed(const char* expr, const char* file, int line,
                                              const std::string& msg);
}  // namespace detail

/// Precondition check that throws InvalidArgument with location context.
#define IOTML_CHECK(expr, msg)                                              \
  do {                                                                      \
    if (!(expr)) ::iotml::detail::throw_check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

/// Internal invariant check that throws InternalError with location context.
/// Use for "this cannot happen unless iotml itself has a bug" conditions,
/// never for validating caller input.
#define IOTML_INTERNAL_CHECK(expr, msg)                                     \
  do {                                                                      \
    if (!(expr))                                                            \
      ::iotml::detail::throw_internal_check_failed(#expr, __FILE__, __LINE__, (msg)); \
  } while (false)

}  // namespace iotml
