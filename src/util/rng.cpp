#include "util/rng.hpp"

#include <algorithm>
#include <numeric>

namespace iotml {

std::size_t Rng::categorical(const std::vector<double>& weights) {
  IOTML_CHECK(!weights.empty(), "Rng::categorical: empty weights");
  double total = 0.0;
  for (double w : weights) {
    IOTML_CHECK(w >= 0.0, "Rng::categorical: negative weight");
    total += w;
  }
  IOTML_CHECK(total > 0.0, "Rng::categorical: all-zero weights");
  double r = uniform(0.0, total);
  double acc = 0.0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;  // numeric edge: r landed on the upper boundary
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> p(n);
  std::iota(p.begin(), p.end(), std::size_t{0});
  std::shuffle(p.begin(), p.end(), engine_);
  return p;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n, std::size_t k) {
  IOTML_CHECK(k <= n, "Rng::sample_without_replacement: k > n");
  // Partial Fisher-Yates: O(n) memory, O(k) swaps.
  std::vector<std::size_t> pool(n);
  std::iota(pool.begin(), pool.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    std::size_t j = i + index(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace iotml
