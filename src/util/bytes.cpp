#include "util/bytes.hpp"

#include <bit>
#include <limits>

#include "util/error.hpp"
#include "util/fnv.hpp"

namespace iotml::util {

void ByteWriter::u16(std::uint16_t v) {
  bytes_.push_back(static_cast<std::uint8_t>(v & 0xFFU));
  bytes_.push_back(static_cast<std::uint8_t>((v >> 8) & 0xFFU));
}

void ByteWriter::u32(std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFFU));
  }
}

void ByteWriter::u64(std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    bytes_.push_back(static_cast<std::uint8_t>((v >> shift) & 0xFFU));
  }
}

void ByteWriter::i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
void ByteWriter::i16(std::int16_t v) { u16(static_cast<std::uint16_t>(v)); }
void ByteWriter::f32(float v) { u32(std::bit_cast<std::uint32_t>(v)); }
void ByteWriter::f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

void ByteWriter::str(const std::string& s) {
  u32(narrow_u32(s.size(), "string length"));
  for (char c : s) bytes_.push_back(static_cast<std::uint8_t>(c));
}

void ByteWriter::varint_u64(std::uint64_t v) {
  while (v >= 0x80U) {
    bytes_.push_back(static_cast<std::uint8_t>((v & 0x7FU) | 0x80U));
    v >>= 7;
  }
  bytes_.push_back(static_cast<std::uint8_t>(v));
}

void ByteWriter::varint_i64(std::int64_t v) {
  // ZigZag: arithmetic shift keeps the mapping branch-free and total.
  varint_u64((static_cast<std::uint64_t>(v) << 1) ^
             static_cast<std::uint64_t>(v >> 63));
}

void ByteReader::need(std::size_t n) const {
  IOTML_CHECK(n <= size_ - pos_, "ByteReader: truncated artifact (read past end)");
}

std::uint8_t ByteReader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint16_t ByteReader::u16() {
  need(2);
  const std::uint16_t v = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(data_[pos_]) |
      static_cast<std::uint16_t>(static_cast<std::uint16_t>(data_[pos_ + 1]) << 8));
  pos_ += 2;
  return v;
}

std::uint32_t ByteReader::u32() {
  need(4);
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  need(8);
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(data_[pos_ + static_cast<std::size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

std::int8_t ByteReader::i8() { return static_cast<std::int8_t>(u8()); }
std::int16_t ByteReader::i16() { return static_cast<std::int16_t>(u16()); }
float ByteReader::f32() { return std::bit_cast<float>(u32()); }
double ByteReader::f64() { return std::bit_cast<double>(u64()); }

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  need(n);
  std::string s(reinterpret_cast<const char*>(data_ + pos_), n);  // codec-sanctioned
  pos_ += n;
  return s;
}

std::uint64_t ByteReader::varint_u64() {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 70; shift += 7) {
    const std::uint8_t byte = u8();
    IOTML_CHECK(shift < 64, "ByteReader: varint wider than 64 bits");
    IOTML_CHECK(shift != 63 || (byte & 0x7EU) == 0,
                "ByteReader: varint overflows 64 bits");
    v |= static_cast<std::uint64_t>(byte & 0x7FU) << shift;
    if ((byte & 0x80U) == 0) return v;
  }
  throw InvalidArgument("ByteReader: unterminated varint");
}

std::int64_t ByteReader::varint_i64() {
  const std::uint64_t z = varint_u64();
  return static_cast<std::int64_t>((z >> 1) ^ (~(z & 1) + 1));
}

std::uint8_t narrow_u8(std::size_t v, const char* what) {
  IOTML_CHECK(v <= 0xFFU, std::string("narrow_u8: ") + what + " out of range");
  return static_cast<std::uint8_t>(v);
}

std::uint16_t narrow_u16(std::size_t v, const char* what) {
  IOTML_CHECK(v <= 0xFFFFU, std::string("narrow_u16: ") + what + " out of range");
  return static_cast<std::uint16_t>(v);
}

std::uint32_t narrow_u32(std::size_t v, const char* what) {
  IOTML_CHECK(v <= 0xFFFFFFFFU, std::string("narrow_u32: ") + what + " out of range");
  return static_cast<std::uint32_t>(v);
}

std::int8_t narrow_i8(long long v, const char* what) {
  IOTML_CHECK(v >= std::numeric_limits<std::int8_t>::min() &&
                  v <= std::numeric_limits<std::int8_t>::max(),
              std::string("narrow_i8: ") + what + " out of range");
  return static_cast<std::int8_t>(v);
}

std::int16_t narrow_i16(long long v, const char* what) {
  IOTML_CHECK(v >= std::numeric_limits<std::int16_t>::min() &&
                  v <= std::numeric_limits<std::int16_t>::max(),
              std::string("narrow_i16: ") + what + " out of range");
  return static_cast<std::int16_t>(v);
}

std::uint32_t fnv1a(const std::uint8_t* data, std::size_t size) {
  return iotml::fnv1a32(data, size);
}

}  // namespace iotml::util
