#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "data/dataset.hpp"

namespace iotml::learners {

/// Common interface for classifiers that operate directly on the rich
/// Dataset representation (mixed column types, missing cells). Kernel-based
/// models live in kernels:: and consume dense Samples instead.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Train on a labeled dataset. Throws InvalidArgument when unlabeled.
  virtual void fit(const data::Dataset& train) = 0;

  /// Predict the class of one row of `ds` (which may contain missing cells).
  virtual int predict_row(const data::Dataset& ds, std::size_t row) const = 0;

  virtual std::string name() const = 0;

  /// Batch prediction.
  std::vector<int> predict(const data::Dataset& ds) const;

  /// Accuracy against the dataset's own labels.
  double accuracy(const data::Dataset& test) const;
};

/// Factory used by ensembles that need many fresh base models.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

}  // namespace iotml::learners
