#pragma once

#include <vector>

#include "learners/classifier.hpp"

namespace iotml::learners {

struct LogisticParams {
  double learning_rate = 0.1;
  double l2 = 1e-4;
  std::size_t epochs = 300;
};

/// Binary L2-regularized logistic regression by full-batch gradient descent.
/// Features are standardized internally; categorical columns enter as their
/// category index (one-hot encode upstream when appropriate); missing cells
/// are imputed with the training column mean.
class LogisticRegression final : public Classifier {
 public:
  explicit LogisticRegression(LogisticParams params = {});

  void fit(const data::Dataset& train) override;
  int predict_row(const data::Dataset& ds, std::size_t row) const override;
  std::string name() const override { return "logistic"; }

  /// P(class = 1 | row).
  double probability(const data::Dataset& ds, std::size_t row) const;

  const std::vector<double>& weights() const noexcept { return w_; }
  double bias() const noexcept { return b_; }

  /// Training-time column means/stddevs — the standardization (and missing-
  /// cell imputation) the weights were learned under. Deployment compilation
  /// folds these into the artifact so devices score raw rows directly.
  const std::vector<double>& feature_means() const noexcept { return feature_mean_; }
  const std::vector<double>& feature_scales() const noexcept { return feature_scale_; }
  bool fitted() const noexcept { return fitted_; }

 private:
  LogisticParams params_;
  std::vector<double> w_;
  double b_ = 0.0;
  std::vector<double> feature_mean_, feature_scale_;
  bool fitted_ = false;

  double raw_score(const data::Dataset& ds, std::size_t row) const;
};

}  // namespace iotml::learners
