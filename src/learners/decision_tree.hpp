#pragma once

#include <memory>
#include <vector>

#include "learners/classifier.hpp"

namespace iotml::learners {

/// How the tree handles missing cells (the decision the paper's Section IV.A
/// frames as the single-player's strategic choice).
enum class MissingSplitPolicy {
  kMajorityBranch,  ///< missing rows follow the most populated child
  kOwnBranch        ///< missing values get a dedicated child branch
};

struct DecisionTreeParams {
  std::size_t max_depth = 12;
  std::size_t min_samples_leaf = 2;
  double min_gain = 1e-9;
  MissingSplitPolicy missing = MissingSplitPolicy::kMajorityBranch;
};

/// Pointer-free view of one trained tree node, for compilation into a
/// deployable artifact (src/deploy/). `children` holds indices into the
/// exported vector; kNoNode marks branches that were empty at training time
/// (prediction falls back to the node's own majority `label`).
struct ExportedTreeNode {
  static constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

  bool leaf = true;
  int label = 0;
  std::size_t feature = 0;
  bool numeric = false;
  double threshold = 0.0;
  std::vector<std::size_t> children;
  std::size_t missing_slot = 0;  ///< index into `children` for missing cells
};

/// Entropy-split decision tree over mixed numeric/categorical features.
/// Numeric features split on thresholds, categorical features split multiway
/// per category.
class DecisionTree final : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeParams params = {});
  ~DecisionTree() override;
  DecisionTree(DecisionTree&&) noexcept;
  DecisionTree& operator=(DecisionTree&&) noexcept;

  void fit(const data::Dataset& train) override;
  int predict_row(const data::Dataset& ds, std::size_t row) const override;
  std::string name() const override { return "decision-tree"; }

  /// Number of nodes in the trained tree (cost proxy in the experiments).
  std::size_t node_count() const;
  std::size_t depth() const;

  /// Flatten the trained tree into pointer-free pre-order nodes (element 0
  /// is the root) for deployment compilation. Throws InvalidArgument before
  /// fit().
  std::vector<ExportedTreeNode> export_nodes() const;

  /// Majority class of the training set (prediction fallback).
  int default_class() const noexcept { return default_class_; }

  /// Training-time category dictionaries, one per feature (empty for
  /// numeric features) — categorical split children are indexed by them.
  const std::vector<std::vector<std::string>>& train_category_labels() const noexcept {
    return train_categories_;
  }

 private:
  struct Node;
  DecisionTreeParams params_;
  std::unique_ptr<Node> root_;
  int default_class_ = 0;
  /// Category labels per feature as seen at training time. Prediction maps a
  /// test cell's label through this table, because category *indices* are
  /// interned per dataset and are not stable across datasets.
  std::vector<std::vector<std::string>> train_categories_;

  std::unique_ptr<Node> build(const data::Dataset& ds,
                              const std::vector<std::size_t>& rows, std::size_t depth);
  std::size_t flatten(const Node& node, std::vector<ExportedTreeNode>& out) const;
};

}  // namespace iotml::learners
