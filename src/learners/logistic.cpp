#include "learners/logistic.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace iotml::learners {

namespace {

double sigmoid(double z) {
  if (z >= 0.0) {
    const double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  const double e = std::exp(z);
  return e / (1.0 + e);
}

}  // namespace

LogisticRegression::LogisticRegression(LogisticParams params) : params_(params) {
  IOTML_CHECK(params.learning_rate > 0.0, "LogisticRegression: learning_rate must be > 0");
  IOTML_CHECK(params.l2 >= 0.0, "LogisticRegression: l2 must be >= 0");
  IOTML_CHECK(params.epochs >= 1, "LogisticRegression: epochs must be >= 1");
}

void LogisticRegression::fit(const data::Dataset& train) {
  train.validate();
  IOTML_CHECK(train.has_labels(), "LogisticRegression::fit: unlabeled dataset");
  IOTML_CHECK(train.num_classes() <= 2, "LogisticRegression::fit: binary only");
  const std::size_t n = train.rows();
  const std::size_t d = train.num_columns();
  IOTML_CHECK(n >= 2, "LogisticRegression::fit: need at least 2 rows");

  // Column means/scales over present cells (used for imputation + scaling).
  feature_mean_.assign(d, 0.0);
  feature_scale_.assign(d, 1.0);
  for (std::size_t f = 0; f < d; ++f) {
    const data::Column& col = train.column(f);
    double sum = 0.0, sum2 = 0.0;
    std::size_t present = 0;
    for (std::size_t r = 0; r < n; ++r) {
      if (col.is_missing(r)) continue;
      sum += col.raw()[r];
      sum2 += col.raw()[r] * col.raw()[r];
      ++present;
    }
    if (present > 0) {
      feature_mean_[f] = sum / static_cast<double>(present);
      const double var =
          sum2 / static_cast<double>(present) - feature_mean_[f] * feature_mean_[f];
      feature_scale_[f] = var > 1e-12 ? std::sqrt(var) : 1.0;
    }
  }

  // Standardized design matrix with mean imputation.
  std::vector<std::vector<double>> x(n, std::vector<double>(d));
  for (std::size_t f = 0; f < d; ++f) {
    const data::Column& col = train.column(f);
    for (std::size_t r = 0; r < n; ++r) {
      const double raw = col.is_missing(r) ? feature_mean_[f] : col.raw()[r];
      x[r][f] = (raw - feature_mean_[f]) / feature_scale_[f];
    }
  }

  w_.assign(d, 0.0);
  b_ = 0.0;
  const double lr = params_.learning_rate;
  for (std::size_t epoch = 0; epoch < params_.epochs; ++epoch) {
    std::vector<double> grad_w(d, 0.0);
    double grad_b = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
      double z = b_;
      for (std::size_t f = 0; f < d; ++f) z += w_[f] * x[r][f];
      const double err = sigmoid(z) - static_cast<double>(train.label(r));
      for (std::size_t f = 0; f < d; ++f) grad_w[f] += err * x[r][f];
      grad_b += err;
    }
    const double scale = 1.0 / static_cast<double>(n);
    for (std::size_t f = 0; f < d; ++f) {
      w_[f] -= lr * (grad_w[f] * scale + params_.l2 * w_[f]);
    }
    b_ -= lr * grad_b * scale;
  }
  fitted_ = true;
}

double LogisticRegression::raw_score(const data::Dataset& ds, std::size_t row) const {
  IOTML_CHECK(fitted_, "LogisticRegression: call fit() first");
  IOTML_CHECK(ds.num_columns() == w_.size(), "LogisticRegression: column count mismatch");
  double z = b_;
  for (std::size_t f = 0; f < w_.size(); ++f) {
    const data::Column& col = ds.column(f);
    const double raw = col.is_missing(row) ? feature_mean_[f] : col.raw()[row];
    z += w_[f] * (raw - feature_mean_[f]) / feature_scale_[f];
  }
  return z;
}

double LogisticRegression::probability(const data::Dataset& ds, std::size_t row) const {
  return sigmoid(raw_score(ds, row));
}

int LogisticRegression::predict_row(const data::Dataset& ds, std::size_t row) const {
  return raw_score(ds, row) >= 0.0 ? 1 : 0;
}

}  // namespace iotml::learners
