#include "learners/naive_bayes.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/error.hpp"

namespace iotml::learners {

NaiveBayes::NaiveBayes(double laplace_alpha) : alpha_(laplace_alpha) {
  IOTML_CHECK(laplace_alpha > 0.0, "NaiveBayes: laplace_alpha must be positive");
}

void NaiveBayes::fit(const data::Dataset& train) {
  train.validate();
  IOTML_CHECK(train.has_labels(), "NaiveBayes::fit: unlabeled dataset");
  IOTML_CHECK(train.rows() >= 1, "NaiveBayes::fit: empty dataset");

  num_classes_ = train.num_classes();
  const std::size_t n = train.rows();

  // Priors (Laplace smoothed so absent classes keep nonzero mass).
  std::vector<double> class_count(num_classes_, 0.0);
  for (std::size_t r = 0; r < n; ++r) class_count[train.label(r)] += 1.0;
  log_prior_.resize(num_classes_);
  for (std::size_t c = 0; c < num_classes_; ++c) {
    log_prior_[c] = std::log((class_count[c] + alpha_) /
                             (static_cast<double>(n) + alpha_ * static_cast<double>(num_classes_)));
  }

  categorical_.assign(train.num_columns(), {});
  train_categories_.assign(train.num_columns(), {});
  gaussian_.assign(train.num_columns(), {});
  column_types_.resize(train.num_columns());

  for (std::size_t f = 0; f < train.num_columns(); ++f) {
    const data::Column& col = train.column(f);
    column_types_[f] = col.type();
    if (col.type() == data::ColumnType::kCategorical) {
      train_categories_[f] = col.categories();
      const std::size_t cats = col.categories().size();
      std::vector<std::vector<double>> counts(num_classes_,
                                              std::vector<double>(cats, 0.0));
      std::vector<double> totals(num_classes_, 0.0);
      for (std::size_t r = 0; r < n; ++r) {
        if (col.is_missing(r)) continue;
        counts[train.label(r)][col.category(r)] += 1.0;
        totals[train.label(r)] += 1.0;
      }
      categorical_[f].assign(num_classes_, std::vector<double>(cats, 0.0));
      for (std::size_t c = 0; c < num_classes_; ++c) {
        for (std::size_t v = 0; v < cats; ++v) {
          categorical_[f][c][v] = std::log(
              (counts[c][v] + alpha_) / (totals[c] + alpha_ * static_cast<double>(cats)));
        }
      }
    } else {
      gaussian_[f].assign(num_classes_, Gaussian{});
      std::vector<double> sum(num_classes_, 0.0), sum2(num_classes_, 0.0);
      std::vector<std::size_t> count(num_classes_, 0);
      for (std::size_t r = 0; r < n; ++r) {
        if (col.is_missing(r)) continue;
        const double v = col.numeric(r);
        const int c = train.label(r);
        sum[c] += v;
        sum2[c] += v * v;
        ++count[c];
      }
      for (std::size_t c = 0; c < num_classes_; ++c) {
        Gaussian& g = gaussian_[f][c];
        g.count = count[c];
        if (count[c] >= 1) {
          g.mean = sum[c] / static_cast<double>(count[c]);
          const double raw_var =
              sum2[c] / static_cast<double>(count[c]) - g.mean * g.mean;
          g.variance = std::max(raw_var, 1e-9);  // floor for degenerate features
        }
      }
    }
  }
  fitted_ = true;
}

std::vector<double> NaiveBayes::log_posterior(const data::Dataset& ds,
                                              std::size_t row) const {
  IOTML_CHECK(fitted_, "NaiveBayes::log_posterior: call fit() first");
  IOTML_CHECK(ds.num_columns() == column_types_.size(),
              "NaiveBayes::log_posterior: column count mismatch");
  std::vector<double> scores = log_prior_;
  for (std::size_t f = 0; f < ds.num_columns(); ++f) {
    const data::Column& col = ds.column(f);
    if (col.is_missing(row)) continue;  // marginalize the feature out
    if (column_types_[f] == data::ColumnType::kCategorical) {
      // Map the test label to the training-time category index; categories
      // never seen in training contribute nothing (uniform across classes).
      const std::string& label = col.category_label(row);
      const auto& cats = train_categories_[f];
      const auto it = std::find(cats.begin(), cats.end(), label);
      if (it == cats.end()) continue;
      const std::size_t v = static_cast<std::size_t>(it - cats.begin());
      for (std::size_t c = 0; c < num_classes_; ++c) {
        scores[c] += categorical_[f][c][v];
      }
    } else {
      const double v = col.numeric(row);
      for (std::size_t c = 0; c < num_classes_; ++c) {
        const Gaussian& g = gaussian_[f][c];
        if (g.count == 0) continue;
        scores[c] += -0.5 * std::log(2.0 * std::numbers::pi * g.variance) -
                     (v - g.mean) * (v - g.mean) / (2.0 * g.variance);
      }
    }
  }
  return scores;
}

int NaiveBayes::predict_row(const data::Dataset& ds, std::size_t row) const {
  const std::vector<double> scores = log_posterior(ds, row);
  return static_cast<int>(
      std::max_element(scores.begin(), scores.end()) - scores.begin());
}

}  // namespace iotml::learners
