#pragma once

#include <map>
#include <vector>

#include "learners/classifier.hpp"

namespace iotml::learners {

/// Hybrid naive Bayes: categorical features use Laplace-smoothed frequency
/// tables, numeric features use per-class Gaussians. Missing cells are simply
/// skipped in both training counts and prediction products — naive Bayes'
/// native, cheap missing-data story (relevant to the Section IV.A tradeoff).
class NaiveBayes final : public Classifier {
 public:
  explicit NaiveBayes(double laplace_alpha = 1.0);

  void fit(const data::Dataset& train) override;
  int predict_row(const data::Dataset& ds, std::size_t row) const override;
  std::string name() const override { return "naive-bayes"; }

  /// Per-class log posterior (unnormalized) for diagnostics / co-training
  /// confidence.
  std::vector<double> log_posterior(const data::Dataset& ds, std::size_t row) const;

  struct Gaussian {
    double mean = 0.0;
    double variance = 1.0;
    std::size_t count = 0;
  };

  /// Export accessors for deployment compilation (src/deploy/): the fitted
  /// tables exactly as prediction uses them. All throw-free; callers gate on
  /// fitted().
  bool fitted() const noexcept { return fitted_; }
  std::size_t class_count() const noexcept { return num_classes_; }
  const std::vector<double>& log_priors() const noexcept { return log_prior_; }
  const std::vector<std::vector<std::vector<double>>>& categorical_tables() const noexcept {
    return categorical_;
  }
  const std::vector<std::vector<Gaussian>>& gaussians() const noexcept { return gaussian_; }
  const std::vector<std::vector<std::string>>& train_category_labels() const noexcept {
    return train_categories_;
  }
  const std::vector<data::ColumnType>& column_kinds() const noexcept {
    return column_types_;
  }

 private:
  double alpha_;
  std::size_t num_classes_ = 0;
  std::vector<double> log_prior_;
  // categorical_[feature][class][category] = smoothed log likelihood, indexed
  // by *training-time* category order; train_categories_ maps test labels in.
  std::vector<std::vector<std::vector<double>>> categorical_;
  std::vector<std::vector<std::string>> train_categories_;
  // gaussian_[feature][class]
  std::vector<std::vector<Gaussian>> gaussian_;
  std::vector<data::ColumnType> column_types_;
  bool fitted_ = false;
};

}  // namespace iotml::learners
