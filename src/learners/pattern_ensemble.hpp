#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "learners/classifier.hpp"

namespace iotml::learners {

/// The Section IV.A alternative to imputation: "avoid missing data imputation
/// altogether and learn as many different models as the combination of
/// available features".
///
/// One base model is trained per *availability pattern* (the set of features
/// a row actually has). The model for pattern P is trained on the columns of
/// P, using every training row whose available features include P. At
/// prediction time a row is routed to the model of its own pattern; if that
/// pattern was never trained (or had too few rows), the largest trained
/// sub-pattern of the row's available features is used, falling back to the
/// majority class when nothing matches.
///
/// The exponential model count this can require is exactly the cost the
/// single player of Section IV.A must weigh against imputation inaccuracy —
/// `bench_missing_models` measures both sides.
class PatternEnsemble final : public Classifier {
 public:
  PatternEnsemble(ClassifierFactory factory, std::size_t min_rows_per_pattern = 5);

  void fit(const data::Dataset& train) override;
  int predict_row(const data::Dataset& ds, std::size_t row) const override;
  std::string name() const override { return "pattern-ensemble"; }

  /// Number of trained base models (the cost the paper trades off).
  std::size_t num_models() const noexcept { return models_.size(); }

  /// Total training rows consumed across all base models.
  std::size_t total_training_rows() const noexcept { return total_training_rows_; }

  /// Fraction of predict_row calls (since fit) that fell back past an exact
  /// pattern match. Diagnostic; not thread-safe.
  double fallback_rate() const;

 private:
  using PatternMask = std::uint64_t;

  struct PatternModel {
    std::unique_ptr<Classifier> model;
    std::vector<std::size_t> columns;  // dataset column indices of the pattern
  };

  ClassifierFactory factory_;
  std::size_t min_rows_;
  std::map<PatternMask, PatternModel> models_;
  int default_class_ = 0;
  std::size_t total_training_rows_ = 0;
  mutable std::size_t predictions_ = 0;
  mutable std::size_t fallbacks_ = 0;

  static PatternMask pattern_of(const data::Dataset& ds, std::size_t row);
};

}  // namespace iotml::learners
