#include "learners/online.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "util/error.hpp"

namespace iotml::learners {

// ---- IncrementalNaiveBayes -----------------------------------------------------

void IncrementalNaiveBayes::Welford::add(double value) {
  ++count;
  const double delta = value - mean;
  mean += delta / static_cast<double>(count);
  m2 += delta * (value - mean);
}

double IncrementalNaiveBayes::Welford::variance() const {
  if (count < 2) return 1.0;  // weak prior until evidence arrives
  return std::max(m2 / static_cast<double>(count - 1), 1e-9);
}

IncrementalNaiveBayes::IncrementalNaiveBayes(std::size_t dims) : dims_(dims) {
  IOTML_CHECK(dims >= 1, "IncrementalNaiveBayes: dims must be >= 1");
}

void IncrementalNaiveBayes::observe(const std::vector<double>& x, int label) {
  IOTML_CHECK(x.size() == dims_, "IncrementalNaiveBayes::observe: dimension mismatch");
  IOTML_CHECK(label >= 0, "IncrementalNaiveBayes::observe: negative label");
  ClassStats& stats = stats_[label];
  if (stats.features.empty()) stats.features.resize(dims_);
  ++stats.count;
  ++total_;
  for (std::size_t f = 0; f < dims_; ++f) stats.features[f].add(x[f]);
}

std::vector<double> IncrementalNaiveBayes::log_posterior(
    const std::vector<double>& x) const {
  IOTML_CHECK(x.size() == dims_, "IncrementalNaiveBayes: dimension mismatch");
  IOTML_CHECK(!stats_.empty(), "IncrementalNaiveBayes: no observations yet");
  std::vector<double> out;
  out.reserve(stats_.size());
  for (const auto& [label, stats] : stats_) {
    double lp = std::log(static_cast<double>(stats.count) /
                         static_cast<double>(total_));
    for (std::size_t f = 0; f < dims_; ++f) {
      const Welford& w = stats.features[f];
      const double var = w.variance();
      lp += -0.5 * std::log(2.0 * std::numbers::pi * var) -
            (x[f] - w.mean) * (x[f] - w.mean) / (2.0 * var);
    }
    out.push_back(lp);
  }
  return out;
}

int IncrementalNaiveBayes::predict(const std::vector<double>& x) const {
  const std::vector<double> lp = log_posterior(x);
  std::size_t best = 0;
  for (std::size_t i = 1; i < lp.size(); ++i) {
    if (lp[i] > lp[best]) best = i;
  }
  auto it = stats_.begin();
  std::advance(it, static_cast<std::ptrdiff_t>(best));
  return it->first;
}

void IncrementalNaiveBayes::reset() {
  stats_.clear();
  total_ = 0;
}

// ---- DriftDetector ----------------------------------------------------------------

DriftDetector::DriftDetector(double warn_sigmas, double drift_sigmas,
                             std::size_t min_observations)
    : warn_sigmas_(warn_sigmas),
      drift_sigmas_(drift_sigmas),
      min_observations_(min_observations) {
  IOTML_CHECK(warn_sigmas > 0.0 && drift_sigmas > warn_sigmas,
              "DriftDetector: need 0 < warn_sigmas < drift_sigmas");
  IOTML_CHECK(min_observations >= 5, "DriftDetector: min_observations must be >= 5");
}

DriftDetector::State DriftDetector::observe(bool error) {
  ++count_;
  if (error) ++errors_;
  if (count_ < min_observations_) return state_ = State::kStable;

  // Laplace-smoothed error rate and a floored deviation: the textbook DDM
  // degenerates when a lucky error-free warmup records p_min = s_min = 0
  // (any later error then reads as drift). Smoothing keeps p away from 0 and
  // the floor keeps the band from collapsing on long stable streams.
  const double n = static_cast<double>(count_);
  const double p = (static_cast<double>(errors_) + 1.0) / (n + 2.0);
  const double s = std::max(std::sqrt(p * (1.0 - p) / n), 1.0 / n);
  if (p + s < best_p_plus_s_) {
    best_p_plus_s_ = p + s;
    best_p_ = p;
    best_s_ = s;
  }
  // Compare the smoothed cumulative rate against the recorded minimum using
  // the *combined* deviation of the two estimates: the textbook p_min + k*s_min
  // band fires spuriously whenever the minimum was recorded during an
  // unluckily-quiet stretch and the rate later regresses to its true mean.
  const double band = std::sqrt(best_s_ * best_s_ + s * s);
  if (p > best_p_ + drift_sigmas_ * band) {
    state_ = State::kDrift;
  } else if (p > best_p_ + warn_sigmas_ * band) {
    state_ = State::kWarning;
  } else {
    state_ = State::kStable;
  }
  return state_;
}

double DriftDetector::error_rate() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(errors_) / static_cast<double>(count_);
}

void DriftDetector::reset() {
  count_ = 0;
  errors_ = 0;
  best_p_plus_s_ = 1e18;
  best_p_ = 0.0;
  best_s_ = 0.0;
  state_ = State::kStable;
}

// ---- AdaptiveStreamClassifier --------------------------------------------------------

AdaptiveStreamClassifier::AdaptiveStreamClassifier(std::size_t dims,
                                                   DriftDetector detector)
    : model_(dims), detector_(detector) {}

int AdaptiveStreamClassifier::process(const std::vector<double>& x, int label) {
  // Test-then-train: score the prediction made *before* seeing the label.
  int prediction = label;  // before any class is known, count as correct
  if (model_.num_classes() >= 2) {
    prediction = model_.predict(x);
  }
  ++seen_;
  const bool correct = prediction == label;
  if (correct) ++correct_;

  if (model_.num_classes() >= 2 &&
      detector_.observe(!correct) == DriftDetector::State::kDrift) {
    ++drifts_;
    model_.reset();
    detector_.reset();
  }
  model_.observe(x, label);
  return prediction;
}

double AdaptiveStreamClassifier::running_accuracy() const {
  return seen_ == 0 ? 0.0
                    : static_cast<double>(correct_) / static_cast<double>(seen_);
}

}  // namespace iotml::learners
