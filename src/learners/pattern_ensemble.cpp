#include "learners/pattern_ensemble.hpp"

#include <algorithm>
#include <bit>

#include "util/error.hpp"

namespace iotml::learners {

PatternEnsemble::PatternEnsemble(ClassifierFactory factory,
                                 std::size_t min_rows_per_pattern)
    : factory_(std::move(factory)), min_rows_(min_rows_per_pattern) {
  IOTML_CHECK(factory_ != nullptr, "PatternEnsemble: null factory");
  IOTML_CHECK(min_rows_ >= 1, "PatternEnsemble: min_rows_per_pattern must be >= 1");
}

PatternEnsemble::PatternMask PatternEnsemble::pattern_of(const data::Dataset& ds,
                                                         std::size_t row) {
  IOTML_CHECK(ds.num_columns() <= 64, "PatternEnsemble: at most 64 feature columns");
  PatternMask mask = 0;
  for (std::size_t f = 0; f < ds.num_columns(); ++f) {
    if (!ds.column(f).is_missing(row)) mask |= PatternMask{1} << f;
  }
  return mask;
}

void PatternEnsemble::fit(const data::Dataset& train) {
  train.validate();
  IOTML_CHECK(train.has_labels(), "PatternEnsemble::fit: unlabeled dataset");
  IOTML_CHECK(train.rows() >= 1, "PatternEnsemble::fit: empty dataset");

  models_.clear();
  total_training_rows_ = 0;
  predictions_ = 0;
  fallbacks_ = 0;

  // Majority class fallback.
  std::vector<std::size_t> class_count(train.num_classes(), 0);
  for (std::size_t r = 0; r < train.rows(); ++r) ++class_count[train.label(r)];
  default_class_ = static_cast<int>(
      std::max_element(class_count.begin(), class_count.end()) - class_count.begin());

  // Distinct availability patterns present in the training data.
  std::map<PatternMask, std::size_t> pattern_counts;
  std::vector<PatternMask> row_pattern(train.rows());
  for (std::size_t r = 0; r < train.rows(); ++r) {
    row_pattern[r] = pattern_of(train, r);
    ++pattern_counts[row_pattern[r]];
  }

  for (const auto& [mask, count] : pattern_counts) {
    if (mask == 0) continue;  // rows with no data can't support a model

    // Training rows for pattern P: every row whose availability includes P.
    std::vector<std::size_t> rows;
    for (std::size_t r = 0; r < train.rows(); ++r) {
      if ((row_pattern[r] & mask) == mask) rows.push_back(r);
    }
    if (rows.size() < min_rows_) continue;

    std::vector<std::size_t> columns;
    for (std::size_t f = 0; f < train.num_columns(); ++f) {
      if (mask & (PatternMask{1} << f)) columns.push_back(f);
    }

    data::Dataset subset = train.select_rows(rows).select_columns(columns);
    // A one-class subset cannot train most models; keep the fallback instead.
    if (subset.num_classes() < 2) continue;

    PatternModel pm;
    pm.model = factory_();
    pm.model->fit(subset);
    pm.columns = std::move(columns);
    total_training_rows_ += rows.size();
    models_.emplace(mask, std::move(pm));
  }
}

int PatternEnsemble::predict_row(const data::Dataset& ds, std::size_t row) const {
  IOTML_CHECK(!models_.empty() || default_class_ >= 0,
              "PatternEnsemble::predict_row: call fit() first");
  ++predictions_;
  const PatternMask available = pattern_of(ds, row);

  // Exact pattern first, else the largest trained sub-pattern.
  const PatternModel* chosen = nullptr;
  if (auto it = models_.find(available); it != models_.end()) {
    chosen = &it->second;
  } else {
    ++fallbacks_;
    int best_bits = -1;
    for (const auto& [mask, pm] : models_) {
      if ((mask & available) != mask) continue;  // needs a missing feature
      const int bits = std::popcount(mask);
      if (bits > best_bits) {
        best_bits = bits;
        chosen = &pm;
      }
    }
  }
  if (chosen == nullptr) return default_class_;

  data::Dataset projected = ds.select_columns(chosen->columns);
  return chosen->model->predict_row(projected, row);
}

double PatternEnsemble::fallback_rate() const {
  return predictions_ == 0
             ? 0.0
             : static_cast<double>(fallbacks_) / static_cast<double>(predictions_);
}

}  // namespace iotml::learners
