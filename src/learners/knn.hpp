#pragma once

#include <vector>

#include "learners/classifier.hpp"

namespace iotml::learners {

/// k-nearest-neighbour classifier with a missing-aware heterogeneous metric:
/// numeric features contribute scaled squared differences, categorical
/// features contribute 0/1 mismatch, and dimensions missing on either side
/// are skipped with the total rescaled to the number of comparable
/// dimensions (Gower-style distance).
class KnnClassifier final : public Classifier {
 public:
  explicit KnnClassifier(std::size_t k = 5);

  void fit(const data::Dataset& train) override;
  int predict_row(const data::Dataset& ds, std::size_t row) const override;
  std::string name() const override { return "knn"; }

 private:
  std::size_t k_;
  data::Dataset train_;
  std::vector<double> feature_range_;  // for numeric scaling
  bool fitted_ = false;

  double distance(const data::Dataset& ds, std::size_t row, std::size_t train_row) const;
};

}  // namespace iotml::learners
