#include "learners/classifier.hpp"

#include "data/metrics.hpp"
#include "util/error.hpp"

namespace iotml::learners {

std::vector<int> Classifier::predict(const data::Dataset& ds) const {
  std::vector<int> out;
  out.reserve(ds.rows());
  for (std::size_t r = 0; r < ds.rows(); ++r) out.push_back(predict_row(ds, r));
  return out;
}

double Classifier::accuracy(const data::Dataset& test) const {
  IOTML_CHECK(test.has_labels(), "Classifier::accuracy: test set is unlabeled");
  return data::accuracy(test.labels(), predict(test));
}

}  // namespace iotml::learners
