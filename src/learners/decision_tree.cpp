#include "learners/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "obs/obs.hpp"
#include "util/error.hpp"

namespace iotml::learners {

namespace {

double entropy_of_counts(const std::map<int, std::size_t>& counts, std::size_t total) {
  if (total == 0) return 0.0;
  double h = 0.0;
  for (const auto& [label, count] : counts) {
    const double p = static_cast<double>(count) / static_cast<double>(total);
    if (p > 0.0) h -= p * std::log2(p);
  }
  return h;
}

double label_entropy(const data::Dataset& ds, const std::vector<std::size_t>& rows) {
  std::map<int, std::size_t> counts;
  for (std::size_t r : rows) ++counts[ds.label(r)];
  return entropy_of_counts(counts, rows.size());
}

int majority_label(const data::Dataset& ds, const std::vector<std::size_t>& rows) {
  std::map<int, std::size_t> counts;
  for (std::size_t r : rows) ++counts[ds.label(r)];
  int best = 0;
  std::size_t best_count = 0;
  for (const auto& [label, count] : counts) {
    if (count > best_count) {
      best = label;
      best_count = count;
    }
  }
  return best;
}

bool is_pure(const data::Dataset& ds, const std::vector<std::size_t>& rows) {
  for (std::size_t i = 1; i < rows.size(); ++i) {
    if (ds.label(rows[i]) != ds.label(rows[0])) return false;
  }
  return true;
}

}  // namespace

/// Internal node. Numeric splits: children[0] = (value <= threshold),
/// children[1] = (value > threshold). Categorical splits: one child per
/// category index (children may be null for unseen categories -> leaf
/// fallback). `missing_child` routes rows whose split feature is missing.
struct DecisionTree::Node {
  bool leaf = true;
  int label = 0;

  std::size_t feature = 0;
  bool numeric = false;
  double threshold = 0.0;
  std::vector<std::unique_ptr<Node>> children;
  std::size_t missing_child = 0;

  std::size_t count_nodes() const {
    std::size_t total = 1;
    for (const auto& c : children) {
      if (c) total += c->count_nodes();
    }
    return total;
  }
  std::size_t max_depth() const {
    std::size_t deepest = 0;
    for (const auto& c : children) {
      if (c) deepest = std::max(deepest, c->max_depth());
    }
    return deepest + 1;
  }
};

DecisionTree::DecisionTree(DecisionTreeParams params) : params_(params) {
  IOTML_CHECK(params.max_depth >= 1, "DecisionTree: max_depth must be >= 1");
  IOTML_CHECK(params.min_samples_leaf >= 1, "DecisionTree: min_samples_leaf must be >= 1");
}

DecisionTree::~DecisionTree() = default;
DecisionTree::DecisionTree(DecisionTree&&) noexcept = default;
DecisionTree& DecisionTree::operator=(DecisionTree&&) noexcept = default;

namespace {

struct SplitCandidate {
  double gain = -1.0;
  std::size_t feature = 0;
  bool numeric = false;
  double threshold = 0.0;
  // Partition of rows into children; last entry = missing rows (for
  // kOwnBranch) or empty (missing rows were merged into a child already).
  std::vector<std::vector<std::size_t>> child_rows;
  std::size_t missing_child = 0;
};

/// Split rows on a categorical feature: one bucket per category. Missing rows
/// go to `missing_rows`.
void bucket_categorical(const data::Dataset& ds, std::size_t feature,
                        const std::vector<std::size_t>& rows,
                        std::vector<std::vector<std::size_t>>& buckets,
                        std::vector<std::size_t>& missing_rows) {
  const data::Column& col = ds.column(feature);
  buckets.assign(col.categories().size(), {});
  missing_rows.clear();
  for (std::size_t r : rows) {
    if (col.is_missing(r)) {
      missing_rows.push_back(r);
    } else {
      buckets[col.category(r)].push_back(r);
    }
  }
}

double weighted_child_entropy(const data::Dataset& ds,
                              const std::vector<std::vector<std::size_t>>& buckets,
                              std::size_t total) {
  double h = 0.0;
  for (const auto& bucket : buckets) {
    if (bucket.empty()) continue;
    h += (static_cast<double>(bucket.size()) / static_cast<double>(total)) *
         label_entropy(ds, bucket);
  }
  return h;
}

/// Append missing rows either to the largest child or to a dedicated child,
/// returning the index of the child that absorbs future missing values.
std::size_t attach_missing(std::vector<std::vector<std::size_t>>& children,
                           std::vector<std::size_t> missing_rows,
                           MissingSplitPolicy policy) {
  if (policy == MissingSplitPolicy::kOwnBranch && !missing_rows.empty()) {
    children.push_back(std::move(missing_rows));
    return children.size() - 1;
  }
  std::size_t largest = 0;
  for (std::size_t i = 1; i < children.size(); ++i) {
    if (children[i].size() > children[largest].size()) largest = i;
  }
  children[largest].insert(children[largest].end(), missing_rows.begin(),
                           missing_rows.end());
  return largest;
}

}  // namespace

std::unique_ptr<DecisionTree::Node> DecisionTree::build(
    const data::Dataset& ds, const std::vector<std::size_t>& rows, std::size_t depth) {
  auto node = std::make_unique<Node>();
  node->label = majority_label(ds, rows);
  if (depth >= params_.max_depth || rows.size() < 2 * params_.min_samples_leaf ||
      is_pure(ds, rows)) {
    return node;
  }

  const double parent_entropy = label_entropy(ds, rows);
  SplitCandidate best;

  for (std::size_t f = 0; f < ds.num_columns(); ++f) {
    const data::Column& col = ds.column(f);
    std::vector<std::size_t> missing_rows;

    if (col.type() == data::ColumnType::kCategorical) {
      std::vector<std::vector<std::size_t>> buckets;
      bucket_categorical(ds, f, rows, buckets, missing_rows);
      std::size_t nonempty = 0;
      for (const auto& b : buckets) {
        if (!b.empty()) ++nonempty;
      }
      if (nonempty < 2) continue;

      std::vector<std::vector<std::size_t>> children = buckets;
      const std::size_t missing_child =
          attach_missing(children, missing_rows, params_.missing);
      const double h = weighted_child_entropy(ds, children, rows.size());
      const double gain = parent_entropy - h;
      if (gain > best.gain) {
        best = SplitCandidate{gain, f, false, 0.0, std::move(children), missing_child};
      }
    } else {
      // Numeric: sort present values, try midpoints between distinct
      // neighbouring values.
      std::vector<std::size_t> present;
      for (std::size_t r : rows) {
        if (col.is_missing(r)) {
          missing_rows.push_back(r);
        } else {
          present.push_back(r);
        }
      }
      if (present.size() < 2) continue;
      std::sort(present.begin(), present.end(), [&](std::size_t a, std::size_t b) {
        return col.numeric(a) < col.numeric(b);
      });
      for (std::size_t i = 1; i < present.size(); ++i) {
        const double lo = col.numeric(present[i - 1]);
        const double hi = col.numeric(present[i]);
        if (hi <= lo) continue;
        const double threshold = 0.5 * (lo + hi);
        std::vector<std::vector<std::size_t>> children(2);
        for (std::size_t r : present) {
          children[col.numeric(r) <= threshold ? 0 : 1].push_back(r);
        }
        const std::size_t missing_child =
            attach_missing(children, missing_rows, params_.missing);
        const double h = weighted_child_entropy(ds, children, rows.size());
        const double gain = parent_entropy - h;
        if (gain > best.gain) {
          best = SplitCandidate{gain, f, true, threshold, children, missing_child};
        }
      }
    }
  }

  if (best.gain < params_.min_gain) return node;
  // Refuse splits that produce an undersized nonempty child.
  for (const auto& child : best.child_rows) {
    if (!child.empty() && child.size() < params_.min_samples_leaf) return node;
  }

  static obs::Counter& tree_splits = obs::registry().counter("learners.tree_splits");
  tree_splits.add();
  node->leaf = false;
  node->feature = best.feature;
  node->numeric = best.numeric;
  node->threshold = best.threshold;
  node->missing_child = best.missing_child;
  node->children.resize(best.child_rows.size());
  for (std::size_t i = 0; i < best.child_rows.size(); ++i) {
    if (!best.child_rows[i].empty()) {
      node->children[i] = build(ds, best.child_rows[i], depth + 1);
    }
  }
  return node;
}

void DecisionTree::fit(const data::Dataset& train) {
  static obs::Counter& tree_fits = obs::registry().counter("learners.tree_fits");
  tree_fits.add();
  train.validate();
  IOTML_CHECK(train.has_labels(), "DecisionTree::fit: unlabeled dataset");
  IOTML_CHECK(train.rows() >= 1, "DecisionTree::fit: empty dataset");
  std::vector<std::size_t> rows(train.rows());
  std::iota(rows.begin(), rows.end(), std::size_t{0});
  default_class_ = majority_label(train, rows);
  train_categories_.assign(train.num_columns(), {});
  for (std::size_t f = 0; f < train.num_columns(); ++f) {
    if (train.column(f).type() == data::ColumnType::kCategorical) {
      train_categories_[f] = train.column(f).categories();
    }
  }
  root_ = build(train, rows, 0);
}

int DecisionTree::predict_row(const data::Dataset& ds, std::size_t row) const {
  IOTML_CHECK(root_ != nullptr, "DecisionTree::predict_row: call fit() first");
  const Node* node = root_.get();
  while (!node->leaf) {
    const data::Column& col = ds.column(node->feature);
    std::size_t child;
    if (col.is_missing(row)) {
      child = node->missing_child;
    } else if (node->numeric) {
      child = col.numeric(row) <= node->threshold ? 0 : 1;
    } else {
      // Map the cell's label to the training-time category index; unseen
      // labels fall through to the local-majority return below.
      const std::string& label = col.category_label(row);
      const auto& cats = train_categories_[node->feature];
      const auto it = std::find(cats.begin(), cats.end(), label);
      child = it == cats.end() ? cats.size() : static_cast<std::size_t>(it - cats.begin());
    }
    if (child >= node->children.size() || !node->children[child]) {
      return node->label;  // unseen category or empty branch: local majority
    }
    node = node->children[child].get();
  }
  return node->label;
}

std::size_t DecisionTree::flatten(const Node& node,
                                  std::vector<ExportedTreeNode>& out) const {
  const std::size_t id = out.size();
  out.emplace_back();
  out[id].leaf = node.leaf;
  out[id].label = node.label;
  out[id].feature = node.feature;
  out[id].numeric = node.numeric;
  out[id].threshold = node.threshold;
  out[id].missing_slot = node.missing_child;
  out[id].children.assign(node.children.size(), ExportedTreeNode::kNoNode);
  for (std::size_t c = 0; c < node.children.size(); ++c) {
    if (node.children[c]) out[id].children[c] = flatten(*node.children[c], out);
  }
  return id;
}

std::vector<ExportedTreeNode> DecisionTree::export_nodes() const {
  IOTML_CHECK(root_ != nullptr, "DecisionTree::export_nodes: call fit() first");
  std::vector<ExportedTreeNode> out;
  flatten(*root_, out);
  return out;
}

std::size_t DecisionTree::node_count() const {
  return root_ ? root_->count_nodes() : 0;
}

std::size_t DecisionTree::depth() const { return root_ ? root_->max_depth() : 0; }

}  // namespace iotml::learners
