#include "learners/knn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "util/error.hpp"

namespace iotml::learners {

KnnClassifier::KnnClassifier(std::size_t k) : k_(k) {
  IOTML_CHECK(k >= 1, "KnnClassifier: k must be >= 1");
}

void KnnClassifier::fit(const data::Dataset& train) {
  train.validate();
  IOTML_CHECK(train.has_labels(), "KnnClassifier::fit: unlabeled dataset");
  IOTML_CHECK(train.rows() >= 1, "KnnClassifier::fit: empty dataset");
  train_ = train;

  feature_range_.assign(train.num_columns(), 1.0);
  for (std::size_t f = 0; f < train.num_columns(); ++f) {
    const data::Column& col = train.column(f);
    if (col.type() != data::ColumnType::kNumeric) continue;
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (std::size_t r = 0; r < train.rows(); ++r) {
      if (col.is_missing(r)) continue;
      lo = std::min(lo, col.numeric(r));
      hi = std::max(hi, col.numeric(r));
    }
    feature_range_[f] = (hi > lo) ? (hi - lo) : 1.0;
  }
  fitted_ = true;
}

double KnnClassifier::distance(const data::Dataset& ds, std::size_t row,
                               std::size_t train_row) const {
  double total = 0.0;
  std::size_t comparable = 0;
  for (std::size_t f = 0; f < train_.num_columns(); ++f) {
    const data::Column& a = ds.column(f);
    const data::Column& b = train_.column(f);
    if (a.is_missing(row) || b.is_missing(train_row)) continue;
    ++comparable;
    if (b.type() == data::ColumnType::kNumeric) {
      const double d = (a.numeric(row) - b.numeric(train_row)) / feature_range_[f];
      total += d * d;
    } else {
      // Compare by label so categories interned in different order still match.
      total += a.category_label(row) == b.category_label(train_row) ? 0.0 : 1.0;
    }
  }
  if (comparable == 0) return std::numeric_limits<double>::infinity();
  return total * static_cast<double>(train_.num_columns()) /
         static_cast<double>(comparable);
}

int KnnClassifier::predict_row(const data::Dataset& ds, std::size_t row) const {
  IOTML_CHECK(fitted_, "KnnClassifier::predict_row: call fit() first");
  IOTML_CHECK(ds.num_columns() == train_.num_columns(),
              "KnnClassifier::predict_row: column count mismatch");

  const std::size_t n = train_.rows();
  std::vector<std::pair<double, std::size_t>> scored;
  scored.reserve(n);
  for (std::size_t t = 0; t < n; ++t) scored.emplace_back(distance(ds, row, t), t);
  const std::size_t k = std::min(k_, n);
  std::partial_sort(scored.begin(), scored.begin() + static_cast<std::ptrdiff_t>(k),
                    scored.end());

  std::map<int, std::size_t> votes;
  for (std::size_t i = 0; i < k; ++i) ++votes[train_.label(scored[i].second)];
  int best = 0;
  std::size_t best_votes = 0;
  for (const auto& [label, count] : votes) {
    if (count > best_votes) {
      best = label;
      best_votes = count;
    }
  }
  return best;
}

}  // namespace iotml::learners
